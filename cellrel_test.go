package cellrel

import (
	"strings"
	"testing"
)

func TestPublicAPIPipeline(t *testing.T) {
	m, opt, enh, err := FullPipeline(Scenario{Seed: 9, NumDevices: 800, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Fleet.Dataset.Len() == 0 {
		t.Fatal("no events")
	}
	if opt.Result.Improvement() <= 0 {
		t.Errorf("TIMP improvement = %v", opt.Result.Improvement())
	}
	out := RenderEnhancement(enh.Report)
	if !strings.Contains(out, "5G frequency") {
		t.Errorf("render: %q", out)
	}
}

func TestRunAndAnalyze(t *testing.T) {
	res, err := Run(Scenario{Seed: 4, NumDevices: 300, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := FromResult(res)
	if in.Dataset.Len() != res.Dataset.Len() {
		t.Error("input/dataset mismatch")
	}
	if len(Catalogue()) != 34 {
		t.Error("catalogue size")
	}
}

func TestExportedConstants(t *testing.T) {
	if PaperTIMPTrigger.Name() != "timp" || DefaultFixedTrigger.Name() != "fixed" {
		t.Error("trigger exports broken")
	}
	if PolicyVanilla.String() != "vanilla" || PolicyStability.String() != "stability-compatible" {
		t.Error("policy exports broken")
	}
	if EightMonths <= 0 {
		t.Error("window export broken")
	}
	if DefaultTIMPOptions().OpSuccess[0] != 0.75 {
		t.Error("TIMP options export broken")
	}
}

func TestGuidelinesFacade(t *testing.T) {
	res, err := Run(Scenario{Seed: 6, NumDevices: 1200, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	gs := Guidelines(FromResult(res))
	if len(gs) == 0 {
		t.Fatal("no guidelines from a standard fleet")
	}
	if !strings.Contains(RenderGuidelines(gs), "advice") {
		t.Error("render broken")
	}
}
