// Command collector runs the backend trace collector: a TCP server that
// receives compressed failure-event batches from devices (or cellsim
// shards with -upload) and makes every admitted batch crash-durable in
// an append-only segment store before acknowledging it.
//
// The store lives under -store-dir: admitted batches are appended as v3
// wire frames to fixed-size segment files (rolled at -segment-size,
// sealed segments immutable), and a checkpoint of the per-device
// sequence high-water marks is written every -checkpoint alongside them.
// On boot the collector replays the store — sealed segments verbatim, a
// torn tail frame truncated away — so a restarted process resumes with
// the full dataset and the dedup marks of everything it ever acked:
// devices retrying batches whose acks were lost by a crash are deduped,
// not double-stored. Acks are written only after the durable append, so
// a batch acknowledged to a device can never be lost by a crash.
//
// A side HTTP listener exports runtime metrics (collector batch/byte
// counters, dataset size, segment-store appends/seals/checkpoints) at
// /metrics in Prometheus text exposition (append ?format=json for the
// JSON dump); -pprof additionally mounts the net/http/pprof handlers
// under /debug/pprof/. The same listener serves the segment store
// read-only: /api/segments (the segment index), /api/segments/events
// (decoded rows from a sealed segment), and /api/segments/data (raw v3
// frames) — all reading immutable sealed files, so queries never block
// ingest. With -live, admitted batches additionally feed the streaming
// analysis engine and the listener serves /api/live/figures,
// /api/live/claims, /api/live/window and /api/live/status — live
// figures that, post-drain, are byte-identical to
// `cellanalyze -figures-json` over the stored events.
//
// The collector speaks all three wire dialects, distinguished by the
// frame's first byte: legacy length-prefixed gob batches (one-byte
// ack), v2 versioned gob frames, and the v3 binary codec (varints,
// per-frame intern tables, optional gzip) — v2 and v3 acks carry the
// batch sequence number, with per-device dedup making retried uploads
// idempotent. Admission is sharded by device (-admit-shards) so
// concurrent connections do not serialize on one dedup lock.
// -max-conns bounds concurrent uploads; excess connections are shed in
// their own dialect (a retry-after nack for v2/v3 clients, a bare close
// for legacy ones) and -read-timeout reclaims connections from silent
// devices.
//
// On SIGINT/SIGTERM the collector shuts down cleanly: the TCP listener
// closes and in-flight uploads get -drain-grace to finish at a batch
// boundary; then the store seals its tail segment and writes a final
// checkpoint. A SIGKILL instead leaves at most one torn, unacked frame
// — which boot-time replay truncates and the device's retry restores.
//
// Several collectors form an ingestion fleet with -fleet-self and
// -fleet-peers: every member builds the same consistent-hash ring
// (same -ring-seed/-ring-vnodes and membership ⇒ identical placement),
// and each refuses batches from devices the ring assigns elsewhere with
// a wrong-collector redirect nack — ring-aware uploaders re-resolve and
// retry at the owner, so a batch is never stored by two members.
//
// Usage:
//
//	collector -listen 127.0.0.1:9230 -store-dir collector-store
//	collector -segment-size 8388608 -checkpoint 2s
//	collector -max-conns 512 -read-timeout 90s -drain-grace 10s
//	collector -http 127.0.0.1:9231 -pprof
//	collector -live -live-context run.snap.gz
//	collector -fleet-self col-0 -fleet-peers col-1=10.0.0.2:9230,col-2=10.0.0.3:9230
//	curl localhost:9231/metrics
//	curl localhost:9231/api/segments
//	curl localhost:9231/api/live/figures
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/trace/ring"

	// Blank import registers the monitor metric family, so this
	// process's /metrics renders the full catalogue (zero-valued until
	// shards run in-process) and dashboards stay uniform across binaries.
	_ "repro/internal/monitor"
)

func main() {
	log.SetFlags(0)
	var (
		listen      = flag.String("listen", "127.0.0.1:9230", "listen address")
		storeDir    = flag.String("store-dir", "collector-store", "segment store directory (created if missing; replayed on boot)")
		segSize     = flag.Int64("segment-size", 0, "bytes after which the active segment seals and a new one opens (0: default 8 MiB)")
		checkpoint  = flag.Duration("checkpoint", 0, "high-water-mark checkpoint cadence (0: default 2s)")
		maxConns    = flag.Int("max-conns", 0, "max concurrently served upload connections; excess is shed in its own dialect (0: default 256)")
		admitShards = flag.Int("admit-shards", 0, "device-keyed admit shards (dedup map, byte accounting, latency sketch); 0: default")
		readTimeout = flag.Duration("read-timeout", 0, "per-read idle deadline on upload connections (0: default 2m)")
		drainGrace  = flag.Duration("drain-grace", 10*time.Second, "how long in-flight uploads may finish after SIGINT/SIGTERM")
		httpAddr    = flag.String("http", "127.0.0.1:9231", "metrics/query HTTP listen address (empty to disable)")
		withPprof   = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/ on the metrics listener")
		live        = flag.Bool("live", false, "stream admitted events into live analysis accumulators and serve /api/live/* on the HTTP listener")
		liveContext = flag.String("live-context", "", "snapshot whose population/dwell/transition context feeds denominator-based live figures")
		liveBuckets = flag.Int("live-buckets", 0, "sliding-window bucket count for live analysis (0: default 60)")
		liveBucket  = flag.Duration("live-bucket", 0, "sliding-window bucket width in virtual time (0: default 1h)")
		fleetSelf   = flag.String("fleet-self", "", "this collector's fleet member name; enables ring ownership enforcement")
		fleetPeers  = flag.String("fleet-peers", "", "comma-separated name=addr peer list forming the rest of the ring (requires -fleet-self)")
		ringSeed    = flag.Int64("ring-seed", 0, "consistent-hash ring seed; must match across the fleet")
		ringVNodes  = flag.Int("ring-vnodes", 0, "virtual nodes per ring member (0: default; must match across the fleet)")
	)
	flag.Parse()

	ds := trace.NewDataset()
	opt := trace.CollectorOptions{
		MaxConns:    *maxConns,
		ReadTimeout: *readTimeout,
		AdmitShards: *admitShards,
	}

	// Fleet mode: build the shared ring and refuse devices the ring
	// assigns to a peer. Every member must be constructed with the same
	// seed, vnode count, and membership, or placements will disagree.
	if *fleetPeers != "" && *fleetSelf == "" {
		log.Fatal("collector: -fleet-peers requires -fleet-self")
	}
	if *fleetSelf != "" {
		rt := ring.NewRouter(*ringSeed, *ringVNodes)
		rt.Add(*fleetSelf, *listen)
		if *fleetPeers != "" {
			for _, p := range strings.Split(*fleetPeers, ",") {
				name, addr, ok := strings.Cut(strings.TrimSpace(p), "=")
				if !ok || name == "" || addr == "" {
					log.Fatalf("collector: -fleet-peers entry %q: want name=addr", p)
				}
				if name == *fleetSelf {
					continue
				}
				rt.Add(name, addr)
			}
		}
		opt.Owns = rt.Owns(*fleetSelf)
		fmt.Printf("fleet member %q on a %d-member ring (seed %d)\n",
			*fleetSelf, len(rt.Members()), *ringSeed)
	}

	// Live mode feeds the analysis accumulators straight off the admit
	// path: the hook enqueues the chunk into the engine's bounded queue
	// and returns, so uploads never wait on analysis.
	var eng *analysis.Streaming
	liveIn := analysis.LiveInput(ds)
	if *live {
		if *liveContext != "" {
			res, err := fleet.LoadResult(*liveContext)
			if err != nil {
				log.Fatalf("collector: live-context: %v", err)
			}
			liveIn = analysis.FromResult(res)
			liveIn.Dataset = ds
		}
		eng = analysis.NewStreaming(liveIn, analysis.StreamingOptions{
			WindowBuckets: *liveBuckets,
			WindowBucket:  *liveBucket,
		})
		opt.OnAdmit = eng.Ingest
	}

	// Boot-time replay: rebuild the dataset (and, in live mode, the
	// streaming accumulators) from the store before accepting uploads.
	onBatch := trace.ReplayInto(ds)
	if eng != nil {
		replay := onBatch
		onBatch = func(b *trace.Batch) {
			replay(b)
			eng.Ingest(b.Events)
		}
	}
	store, err := trace.OpenSegStore(*storeDir, trace.SegStoreOptions{
		SegmentSize: *segSize,
		Checkpoint:  *checkpoint,
	}, onBatch)
	if err != nil {
		log.Fatalf("collector: store: %v", err)
	}
	opt.Store = store
	if eng != nil && ds.Len() > 0 {
		// Settle the replayed backlog; if the bounded queue shed any of
		// it, rebuild the accumulators from the authoritative dataset.
		if err := eng.WaitIdle(time.Minute); err != nil {
			log.Printf("collector: live replay: %v", err)
		}
		eng.Sync(liveIn)
	}
	ds.ExposeSize()
	if n := ds.Len(); n > 0 {
		fmt.Printf("replayed %d events from %s\n", n, *storeDir)
	}

	col, err := trace.NewCollectorWith(*listen, ds, opt)
	if err != nil {
		log.Fatalf("collector: %v", err)
	}
	fmt.Printf("collector listening on %s, storing segments under %s\n", col.Addr(), *storeDir)

	var httpSrv *http.Server
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		if *withPprof {
			metrics.RegisterPprof(mux)
		}
		trace.NewStoreAPI(store).Routes(mux)
		if eng != nil {
			analysis.NewLiveAPI(eng, core.Catalogue()).Routes(mux)
			trace.NewQueryAPI(ds).Routes(mux)
		}
		httpSrv = &http.Server{Addr: *httpAddr, Handler: mux}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("collector: metrics http: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics, segments on http://%s/api/segments\n", *httpAddr, *httpAddr)
		if eng != nil {
			fmt.Printf("live figures on http://%s/api/live/figures\n", *httpAddr)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	// Shutdown order matters: stop accepting, give in-flight uploads the
	// grace window to conclude at a batch boundary (Drain waits for
	// them), settle the streaming side, and close the store last — the
	// sealed segments then provably contain every acknowledged batch.
	if err := col.Drain(*drainGrace); err != nil {
		log.Printf("collector: drain: %v", err)
	}
	if eng != nil {
		if err := eng.WaitIdle(*drainGrace); err != nil {
			log.Printf("collector: live: %v", err)
		}
		if eng.Sync(liveIn) {
			log.Printf("collector: live: resynced accumulators from dataset")
		}
	}
	if err := store.Close(); err != nil {
		log.Printf("collector: store close: %v", err)
	}
	batches, rx := col.Stats()
	fmt.Printf("stored %d events across %d segments (%d batches, ~%d bytes received, %d dedup hits, %d nacks)\n",
		ds.Len(), len(store.Segments()), batches, rx, col.DedupHits(), col.Nacks())
	if httpSrv != nil {
		httpSrv.Close()
	}
}
