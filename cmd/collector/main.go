// Command collector runs the backend trace collector: a TCP server that
// receives compressed failure-event batches from devices (or cellsim
// shards with -upload) and periodically persists the dataset.
//
// Usage:
//
//	collector -listen 127.0.0.1:9230 -o dataset.gob.gz
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	var (
		listen   = flag.String("listen", "127.0.0.1:9230", "listen address")
		out      = flag.String("o", "dataset.gob.gz", "dataset output path")
		interval = flag.Duration("flush", 30*time.Second, "persist interval")
	)
	flag.Parse()

	ds := trace.NewDataset()
	col, err := trace.NewCollector(*listen, ds)
	if err != nil {
		log.Fatalf("collector: %v", err)
	}
	fmt.Printf("collector listening on %s, writing %s every %v\n", col.Addr(), *out, *interval)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	tick := time.NewTicker(*interval)
	defer tick.Stop()

	persist := func() {
		if err := ds.SaveFile(*out); err != nil {
			log.Printf("collector: persist: %v", err)
			return
		}
		batches, rx := col.Stats()
		fmt.Printf("persisted %d events (%d batches, ~%d bytes received)\n", ds.Len(), batches, rx)
	}

	for {
		select {
		case <-tick.C:
			persist()
		case <-stop:
			persist()
			col.Close()
			return
		}
	}
}
