// Command collector runs the backend trace collector: a TCP server that
// receives compressed failure-event batches from devices (or cellsim
// shards with -upload) and periodically persists the dataset.
//
// A side HTTP listener exports runtime metrics (collector batch/byte
// counters, dataset size, and the fleet/monitor families when shards
// run in-process) at /metrics in Prometheus text exposition (append
// ?format=json for the JSON dump); -pprof additionally mounts the
// net/http/pprof handlers under /debug/pprof/. With -live, admitted
// batches additionally feed the streaming analysis engine and the same
// listener serves /api/live/figures, /api/live/claims, /api/live/window
// and /api/live/status — live figures that, post-drain, are
// byte-identical to `cellanalyze -figures-json` over the persisted
// dataset.
//
// The collector speaks all three wire dialects, distinguished by the
// frame's first byte: legacy length-prefixed gob batches (one-byte
// ack), v2 versioned gob frames, and the v3 binary codec (varints,
// per-frame intern tables, optional gzip) — v2 and v3 acks carry the
// batch sequence number, with per-device dedup making retried uploads
// idempotent. Admission is sharded by device (-admit-shards) so
// concurrent connections do not serialize on one dedup lock.
// -max-conns bounds concurrent uploads (excess connections are shed
// with a nack carrying a retry-after hint) and -read-timeout reclaims
// connections from silent devices.
//
// On SIGINT/SIGTERM the collector shuts down cleanly: the persist
// ticker stops, the TCP listener closes, and in-flight uploads get
// -drain-grace to finish at a batch boundary (every batch acked before
// the deadline is in the final persist); only then does the final
// persist run — so no acknowledged batch can race past the last flush.
//
// Usage:
//
//	collector -listen 127.0.0.1:9230 -o dataset.gob.gz
//	collector -max-conns 512 -read-timeout 90s -drain-grace 10s
//	collector -http 127.0.0.1:9231 -pprof
//	collector -live -live-context run.snap.gz
//	curl localhost:9231/metrics
//	curl localhost:9231/api/live/figures
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/trace"

	// Blank import registers the monitor metric family, so this
	// process's /metrics renders the full catalogue (zero-valued until
	// shards run in-process) and dashboards stay uniform across binaries.
	_ "repro/internal/monitor"
)

func main() {
	log.SetFlags(0)
	var (
		listen      = flag.String("listen", "127.0.0.1:9230", "listen address")
		out         = flag.String("o", "dataset.gob.gz", "dataset output path")
		interval    = flag.Duration("flush", 30*time.Second, "persist interval")
		maxConns    = flag.Int("max-conns", 0, "max concurrently served upload connections; excess is shed with a retry-after nack (0: default 256)")
		admitShards = flag.Int("admit-shards", 0, "device-keyed admit shards (dedup map, byte accounting, latency sketch); 0: default")
		readTimeout = flag.Duration("read-timeout", 0, "per-read idle deadline on upload connections (0: default 2m)")
		drainGrace  = flag.Duration("drain-grace", 10*time.Second, "how long in-flight uploads may finish after SIGINT/SIGTERM")
		httpAddr    = flag.String("http", "127.0.0.1:9231", "metrics HTTP listen address (empty to disable)")
		withPprof   = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/ on the metrics listener")
		live        = flag.Bool("live", false, "stream admitted events into live analysis accumulators and serve /api/live/* on the HTTP listener")
		liveContext = flag.String("live-context", "", "snapshot whose population/dwell/transition context feeds denominator-based live figures")
		liveBuckets = flag.Int("live-buckets", 0, "sliding-window bucket count for live analysis (0: default 60)")
		liveBucket  = flag.Duration("live-bucket", 0, "sliding-window bucket width in virtual time (0: default 1h)")
	)
	flag.Parse()

	ds := trace.NewDataset()
	opt := trace.CollectorOptions{
		MaxConns:    *maxConns,
		ReadTimeout: *readTimeout,
		AdmitShards: *admitShards,
	}

	// Live mode feeds the analysis accumulators straight off the admit
	// path: the hook enqueues the chunk into the engine's bounded queue
	// and returns, so uploads never wait on analysis.
	var eng *analysis.Streaming
	liveIn := analysis.LiveInput(ds)
	if *live {
		if *liveContext != "" {
			res, err := fleet.LoadResult(*liveContext)
			if err != nil {
				log.Fatalf("collector: live-context: %v", err)
			}
			liveIn = analysis.FromResult(res)
			liveIn.Dataset = ds
		}
		eng = analysis.NewStreaming(liveIn, analysis.StreamingOptions{
			WindowBuckets: *liveBuckets,
			WindowBucket:  *liveBucket,
		})
		opt.OnAdmit = eng.Ingest
	}

	col, err := trace.NewCollectorWith(*listen, ds, opt)
	if err != nil {
		log.Fatalf("collector: %v", err)
	}
	fmt.Printf("collector listening on %s, writing %s every %v\n", col.Addr(), *out, *interval)

	var httpSrv *http.Server
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		if *withPprof {
			metrics.RegisterPprof(mux)
		}
		if eng != nil {
			analysis.NewLiveAPI(eng, core.Catalogue()).Routes(mux)
			trace.NewQueryAPI(ds).Routes(mux)
		}
		httpSrv = &http.Server{Addr: *httpAddr, Handler: mux}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("collector: metrics http: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", *httpAddr)
		if eng != nil {
			fmt.Printf("live figures on http://%s/api/live/figures\n", *httpAddr)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()

	persist := func() {
		if err := ds.SaveFile(*out); err != nil {
			log.Printf("collector: persist: %v", err)
			return
		}
		batches, rx := col.Stats()
		fmt.Printf("persisted %d events (%d batches, ~%d bytes received, %d dedup hits, %d nacks)\n",
			ds.Len(), batches, rx, col.DedupHits(), col.Nacks())
	}

	for {
		select {
		case <-tick.C:
			persist()
		case <-stop:
			// Shutdown order matters: stop the ticker, stop accepting,
			// give in-flight uploads the grace window to conclude at a
			// batch boundary (Drain waits for them), and persist last —
			// the final snapshot then provably contains every
			// acknowledged batch.
			tick.Stop()
			if err := col.Drain(*drainGrace); err != nil {
				log.Printf("collector: drain: %v", err)
			}
			if eng != nil {
				// Post-drain, settle the streaming side: apply queued
				// chunks, then rebuild from the (authoritative) dataset if
				// anything was shed — the final live figures now equal a
				// batch pass over the persisted dataset.
				if err := eng.WaitIdle(*drainGrace); err != nil {
					log.Printf("collector: live: %v", err)
				}
				if eng.Sync(liveIn) {
					log.Printf("collector: live: resynced accumulators from dataset")
				}
			}
			persist()
			if httpSrv != nil {
				httpSrv.Close()
			}
			return
		}
	}
}
