package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/fleet"
)

// runChaos executes `cellcheck chaos`: a calm baseline run, the same
// scenario under a fault campaign, and the recovery invariants that make
// fault injection trustworthy as a regression harness:
//
//	I1  every injected outage resolves — per rule, at least one episode ran
//	    (for episode-bearing classes) and injected == recovered.
//	I2  no device wedges outside the Figure-1 state machine — the data
//	    connection of every device ends in Inactive or Active and no setup
//	    episode is left in flight.
//	I3  the failure-class mix shifts in the expected direction — for each
//	    fault class in the campaign, the faulted run records at least as
//	    many events of the class's failure kind as the calm baseline.
func runChaos(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	var (
		devices = fs.Int("devices", 2000, "fleet size")
		seed    = fs.Int64("seed", 7, "simulation seed")
		workers = fs.Int("workers", 8, "worker shards")
		months  = fs.Float64("months", 4, "measurement window in months")
		faults  = fs.String("faults", "", "JSON fault-campaign file (default: the bundled BS-blackout campaign)")
	)
	_ = fs.Parse(args)

	scenario := fleet.Scenario{
		Seed:       *seed,
		NumDevices: *devices,
		Workers:    *workers,
		Window:     time.Duration(*months * 30 * 24 * float64(time.Hour)),
	}

	var campaign *faultinject.Campaign
	if *faults != "" {
		var err error
		campaign, err = faultinject.LoadCampaign(*faults)
		if err != nil {
			log.Fatalf("cellcheck chaos: %v", err)
		}
	} else {
		campaign = faultinject.DefaultBlackoutCampaign(scenario.Window)
	}

	fmt.Printf("chaos: campaign %q over %d devices, %.1f months, seed %d\n",
		campaign.Name, scenario.NumDevices, scenario.Window.Hours()/24/30, scenario.Seed)

	baseline, err := fleet.Run(scenario)
	if err != nil {
		log.Fatalf("cellcheck chaos: baseline run: %v", err)
	}
	faulted := scenario
	faulted.Faults = campaign
	res, err := fleet.Run(faulted)
	if err != nil {
		log.Fatalf("cellcheck chaos: faulted run: %v", err)
	}

	fmt.Printf("%s\n", res.Faults)

	checks := chaosInvariants(campaign, baseline, res)
	failures := 0
	for _, c := range checks {
		status := "PASS"
		if !c.pass {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %-14s %s — %s\n", status, c.id, c.text, c.detail)
	}
	if failures > 0 {
		fmt.Printf("chaos: %d/%d invariants failed\n", failures, len(checks))
		os.Exit(1)
	}
	fmt.Printf("chaos: all %d invariants hold\n", len(checks))
}

type chaosCheck struct {
	id     string
	text   string
	pass   bool
	detail string
}

func chaosInvariants(campaign *faultinject.Campaign, baseline, res *fleet.Result) []chaosCheck {
	var checks []chaosCheck

	// I1: per-rule episode accounting.
	byName := make(map[string]faultinject.RuleReport)
	for _, rr := range res.Faults.Rules {
		byName[rr.Name] = rr
	}
	for _, rule := range campaign.Rules {
		rr := byName[rule.Name]
		_, bearing := rule.Class.ExpectedKind()
		pass := rr.Injected == rr.Recovered && (!bearing || rr.Injected > 0)
		checks = append(checks, chaosCheck{
			id:   "I1/" + rule.Name,
			text: "every injected outage resolves",
			pass: pass,
			detail: fmt.Sprintf("injected=%d recovered=%d dropped=%d",
				rr.Injected, rr.Recovered, rr.Dropped),
		})
	}

	// I2: state-machine integrity.
	checks = append(checks, chaosCheck{
		id:   "I2/integrity",
		text: "no device wedges outside the Figure-1 state machine",
		pass: res.Integrity.Clean(),
		detail: fmt.Sprintf("wedged=%d open-setups=%d open-episodes=%d",
			res.Integrity.Wedged, res.Integrity.OpenSetups, res.Integrity.OpenEpisodes),
	})

	// I3: the failure-class mix shifts toward the injected classes.
	baseKinds := kindCounts(baseline)
	faultKinds := kindCounts(res)
	seenKind := map[failure.Kind]bool{}
	for _, rule := range campaign.Rules {
		kind, ok := rule.Class.ExpectedKind()
		if !ok || seenKind[kind] {
			continue
		}
		seenKind[kind] = true
		checks = append(checks, chaosCheck{
			id:   "I3/" + kind.String(),
			text: "failure-class mix shifts in the expected direction",
			pass: faultKinds[kind] > baseKinds[kind],
			detail: fmt.Sprintf("baseline=%d faulted=%d",
				baseKinds[kind], faultKinds[kind]),
		})
	}
	return checks
}

func kindCounts(res *fleet.Result) map[failure.Kind]int {
	out := make(map[failure.Kind]int)
	res.Dataset.Each(func(e *failure.Event) { out[e.Kind]++ })
	return out
}
