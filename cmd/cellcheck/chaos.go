package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/trace/ring"
)

// runChaos executes `cellcheck chaos`: a calm baseline run, the same
// scenario under a fault campaign, and the recovery invariants that make
// fault injection trustworthy as a regression harness:
//
//	I1  every injected outage resolves — per rule, at least one episode ran
//	    (for episode-bearing classes) and injected == recovered.
//	I2  no device wedges outside the Figure-1 state machine — the data
//	    connection of every device ends in Inactive or Active and no setup
//	    episode is left in flight.
//	I3  the failure-class mix shifts in the expected direction — for each
//	    fault class in the campaign, the faulted run records at least as
//	    many events of the class's failure kind as the calm baseline.
//	I4  ingestion is exactly-once (campaigns with network rules, or
//	    -network): with every event routed through an in-process collector
//	    under injected dial failures, lost acks, and flaky links, the
//	    collector dataset's event multiset equals the union of what the
//	    devices recorded — nothing lost, nothing duplicated — and is
//	    byte-identical across worker counts.
//	I5  streaming equals batch (upload mode): a live analysis engine fed
//	    from the collector's admit path serves /api/live/figures while the
//	    faulted fleet uploads, and after the drain the live figures and
//	    claims JSON are byte-identical to a batch pass over the collected
//	    dataset — and identical across worker counts.
//	I6  crash durability (-restart, or -fleet's merged variant): the
//	    collector — backed by a segment store — is SIGKILLed mid-campaign
//	    and rebooted from disk; the devices' backoff/WAL retries carry
//	    everything across the outage, so I4/I5 must still hold
//	    end-to-end, the store's segments must answer queries while ingest
//	    continues, and the post-drain segment contents must reproduce the
//	    stored multiset and batch figures byte-for-byte.
//	I7  failover exactly-once (-fleet N -failover): with the uploaders
//	    routed across N store-backed collectors by a consistent-hash
//	    ring, one collector is SIGKILLed mid-campaign; its devices reroute
//	    to the survivors, whose dedup gates are seeded from the dead
//	    member's replayed marks. The stored union across all members —
//	    served through the merged segment API, the dead member's segments
//	    via a read-only adoption of its directory — must equal the
//	    recorded multiset even though the collector a device talks to
//	    changed mid-run, and must match a single-collector run of the
//	    same scenario byte-for-byte.
func runChaos(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	var (
		devices  = fs.Int("devices", 2000, "fleet size")
		seed     = fs.Int64("seed", 7, "simulation seed")
		workers  = fs.Int("workers", 8, "worker shards")
		months   = fs.Float64("months", 4, "measurement window in months")
		faults   = fs.String("faults", "", "JSON fault-campaign file (default: the bundled BS-blackout campaign, or the bundled network campaign with -network)")
		network  = fs.Bool("network", false, "upload events through an in-process collector under transport faults and check the exactly-once invariant I4")
		restart  = fs.Bool("restart", false, "SIGKILL the segment-store-backed collector mid-campaign, reboot it from disk, and check exactly-once across the restart (implies upload mode)")
		dialect  = fs.String("dialect", "", "upload-mode wire dialect: v3 (default, binary codec) or v2 (gob frames)")
		fleetN   = fs.Int("fleet", 0, "route uploads across N store-backed collectors behind a consistent-hash ring (implies upload mode; N >= 2)")
		failover = fs.Bool("failover", false, "SIGKILL one fleet collector mid-campaign and check exactly-once across the takeover (invariant I7; implies -fleet 3)")
	)
	_ = fs.Parse(args)
	if *failover && *fleetN < 2 {
		*fleetN = 3
	}
	if *fleetN == 1 {
		log.Fatal("cellcheck chaos: -fleet needs at least 2 collectors")
	}
	if *restart && *fleetN > 1 {
		log.Fatal("cellcheck chaos: -restart and -fleet are mutually exclusive (use -fleet -failover for crash durability across a fleet)")
	}

	scenario := fleet.Scenario{
		Seed:          *seed,
		NumDevices:    *devices,
		Workers:       *workers,
		Window:        time.Duration(*months * 30 * 24 * float64(time.Hour)),
		UploadDialect: *dialect,
	}

	var campaign *faultinject.Campaign
	if *faults != "" {
		var err error
		campaign, err = faultinject.LoadCampaign(*faults)
		if err != nil {
			log.Fatalf("cellcheck chaos: %v", err)
		}
	} else if *network || *restart || *fleetN > 1 {
		campaign = faultinject.DefaultNetworkCampaign(scenario.Window)
	} else {
		campaign = faultinject.DefaultBlackoutCampaign(scenario.Window)
	}
	uploadMode := *network || *restart || *fleetN > 1 || campaign.HasNetworkRules()

	fmt.Printf("chaos: campaign %q over %d devices, %.1f months, seed %d\n",
		campaign.Name, scenario.NumDevices, scenario.Window.Hours()/24/30, scenario.Seed)

	baseline, err := fleet.Run(scenario)
	if err != nil {
		log.Fatalf("cellcheck chaos: baseline run: %v", err)
	}

	// runFaultedFleet executes the campaign with the shard uploaders
	// routed across *fleetN store-backed collectors by a consistent-hash
	// ring (Scenario.UploadRouter). All members admit into one shared
	// dataset and one live streaming engine; the merged segment API serves
	// the union of their stores. With -failover, a monitor SIGKILLs the
	// collector owning device 0 once a quarter of the baseline event count
	// has been admitted: the ring reroutes its devices to the survivors,
	// whose dedup gates were seeded from the dead member's replayed marks
	// (invariant I7), while merged segment queries keep answering — the
	// dead member's segments through a read-only adoption of its
	// directory.
	runFaultedFleet := func(workers int) (*fleet.Result, *liveRun) {
		faulted := scenario
		faulted.Workers = workers
		faulted.Faults = campaign

		ds := trace.NewDataset()
		eng := analysis.NewStreaming(analysis.LiveInput(ds), analysis.StreamingOptions{})
		defer eng.Close()

		storeDir, err := os.MkdirTemp("", "cellcheck-chaos-fleet-*")
		if err != nil {
			log.Fatalf("cellcheck chaos: fleet store dir: %v", err)
		}
		defer os.RemoveAll(storeDir)
		fc, err := ring.StartFleet(*fleetN, ds, ring.FleetOptions{
			Seed:      scenario.Seed,
			Dir:       storeDir,
			Collector: trace.CollectorOptions{OnAdmit: eng.Ingest},
		})
		if err != nil {
			log.Fatalf("cellcheck chaos: fleet: %v", err)
		}
		defer fc.Close()
		faulted.UploadRouter = fc.Router()

		mux := http.NewServeMux()
		analysis.NewLiveAPI(eng, core.Catalogue()).Routes(mux)
		trace.NewMergeAPI(fc.Sources).Routes(mux)
		srv := httptest.NewServer(mux)
		defer srv.Close()

		live := &liveRun{fleetSize: *fleetN}
		reroutes0 := chaosMetric("trace_uploader_reroutes_total")
		takeovers0 := chaosMetric("trace_collector_takeover_devices")

		var failMu sync.Mutex
		var failInfo struct {
			fired            bool
			victim, killedAt int
		}
		monitorStop := make(chan struct{})
		monitorDone := make(chan struct{})
		if *failover {
			target := baseline.Dataset.Len() / 4
			if target < 1 {
				target = 1
			}
			go func() {
				defer close(monitorDone)
				for ds.Len() < target {
					select {
					case <-monitorStop:
						return
					case <-time.After(2 * time.Millisecond):
					}
				}
				victim := fc.OwnerIndex(0)
				if victim < 0 {
					victim = 0
				}
				if err := fc.Fail(victim); err != nil {
					log.Fatalf("cellcheck chaos: failover: %v", err)
				}
				killedAt := ds.Len()
				failMu.Lock()
				failInfo.fired, failInfo.victim, failInfo.killedAt = true, victim, killedAt
				failMu.Unlock()
				fmt.Printf("fleet (workers=%d): killed col-%d at %d events, survivors seeded and rerouting\n",
					workers, victim, killedAt)
			}()
		} else {
			close(monitorDone)
		}

		done := make(chan *fleet.Result, 1)
		go func() {
			res, err := fleet.Run(faulted)
			if err != nil {
				log.Fatalf("cellcheck chaos: faulted fleet run (workers=%d): %v", workers, err)
			}
			done <- res
		}()
		var res *fleet.Result
		for res == nil {
			select {
			case res = <-done:
			case <-time.After(5 * time.Millisecond):
				liveFetch(srv, "/api/live/figures")
				liveFetch(srv, "/api/live/status")
				live.queries += 2
				if liveFetch(srv, "/api/segments") != nil {
					live.segQueries++
				}
			}
		}
		close(monitorStop)
		<-monitorDone
		failMu.Lock()
		live.failoverFired, live.fleetVictim, live.fleetKilledAt = failInfo.fired, failInfo.victim, failInfo.killedAt
		failMu.Unlock()

		if err := fc.Drain(5 * time.Second); err != nil {
			log.Fatalf("cellcheck chaos: fleet drain: %v", err)
		}
		res.Dataset = ds
		live.fleetEnd = ds.Len()
		live.reroutes = chaosMetric("trace_uploader_reroutes_total") - reroutes0
		live.takeovers = chaosMetric("trace_collector_takeover_devices") - takeovers0
		fmt.Printf("fleet (workers=%d): %d events across %d collectors, %d dedup hits, %d redirects, digest %s\n",
			workers, ds.Len(), *fleetN, fc.DedupHits(), fc.Redirects(), ds.MultisetDigest())

		captureStreaming(live, eng, srv, res, ds)

		// Seal every live store, then rebuild the dataset from the merged
		// segment API — the union of all members, the dead one included via
		// its adopted read-only store — and render figures from it: the
		// durable fleet-wide bytes must reproduce the stored multiset and
		// the batch figures bit-for-bit.
		if err := fc.CloseStores(); err != nil {
			log.Fatalf("cellcheck chaos: fleet store close: %v", err)
		}
		live.storedEvents = ds.Len()
		live.storedDigest = ds.MultisetDigest()
		segDs := trace.NewDataset()
		replay := trace.ReplayInto(segDs)
		var idx []trace.MergedSegmentInfo
		if err := json.Unmarshal(liveFetch(srv, "/api/segments"), &idx); err != nil {
			log.Fatalf("cellcheck chaos: merged segment index: %v", err)
		}
		for _, info := range idx {
			raw := liveFetch(srv, fmt.Sprintf("/api/segments/data?collector=%s&id=%d", info.Collector, info.ID))
			br := bufio.NewReader(bytes.NewReader(raw))
			for {
				if _, err := br.Peek(1); err == io.EOF {
					break
				}
				b, _, _, err := trace.ReadBatchAny(br)
				if err != nil {
					log.Fatalf("cellcheck chaos: %s segment %d decode: %v", info.Collector, info.ID, err)
				}
				replay(b)
			}
		}
		live.segEvents = segDs.Len()
		live.segDigest = segDs.MultisetDigest()
		segIn := analysis.FromResult(res)
		segIn.Dataset = segDs
		if live.segFigures, err = analysis.NewPass(segIn).FiguresJSON(core.Catalogue()); err != nil {
			log.Fatalf("cellcheck chaos: merged segment figures: %v", err)
		}
		return res, live
	}

	// runFaulted executes the campaign, in upload mode routing every event
	// through a fresh in-process collector so transport faults have a real
	// TCP path to break; the result's Dataset is then the collector's copy
	// — exactly what a production deployment would have persisted. A live
	// streaming engine rides the collector's admit path and its endpoints
	// are queried mid-run, so invariant I5 exercises live analysis under
	// the same transport chaos. With -restart the collector is backed by a
	// segment store and SIGKILLed mid-campaign: a monitor goroutine kills
	// it once a quarter of the baseline event count has been admitted,
	// reboots a new collector from the replayed store on the same address,
	// and the devices' retries carry the rest of the campaign across the
	// outage (invariant I6).
	runFaulted := func(workers int) (*fleet.Result, *liveRun) {
		if *fleetN > 1 {
			return runFaultedFleet(workers)
		}
		faulted := scenario
		faulted.Workers = workers
		faulted.Faults = campaign
		if !uploadMode {
			res, err := fleet.Run(faulted)
			if err != nil {
				log.Fatalf("cellcheck chaos: faulted run: %v", err)
			}
			return res, nil
		}
		ds := trace.NewDataset()
		eng := analysis.NewStreaming(analysis.LiveInput(ds), analysis.StreamingOptions{})
		defer eng.Close()

		// cur tracks the collector/dataset/store generation: the restart
		// monitor swaps in the rebooted trio mid-campaign.
		cur := &struct {
			mu        sync.Mutex
			col       *trace.Collector
			ds        *trace.Dataset
			st        *trace.SegStore
			restarted bool
			killedAt  int
		}{ds: ds}

		var storeDir string
		if *restart {
			var err error
			storeDir, err = os.MkdirTemp("", "cellcheck-chaos-store-*")
			if err != nil {
				log.Fatalf("cellcheck chaos: store dir: %v", err)
			}
			defer os.RemoveAll(storeDir)
			cur.st, err = trace.OpenSegStore(storeDir, trace.SegStoreOptions{}, nil)
			if err != nil {
				log.Fatalf("cellcheck chaos: store: %v", err)
			}
		}
		col, err := trace.NewCollectorWith("127.0.0.1:0", ds, trace.CollectorOptions{
			OnAdmit: eng.Ingest,
			Store:   cur.st,
		})
		if err != nil {
			log.Fatalf("cellcheck chaos: collector: %v", err)
		}
		cur.col = col
		addr := col.Addr()
		faulted.UploadAddr = addr

		mux := http.NewServeMux()
		analysis.NewLiveAPI(eng, core.Catalogue()).Routes(mux)
		if *restart {
			// The store handle changes at the restart, so the segment API
			// resolves the current generation per request.
			segments := func(w http.ResponseWriter, r *http.Request) {
				cur.mu.Lock()
				st := cur.st
				cur.mu.Unlock()
				inner := http.NewServeMux()
				trace.NewStoreAPI(st).Routes(inner)
				inner.ServeHTTP(w, r)
			}
			mux.HandleFunc("/api/segments", segments)
			mux.HandleFunc("/api/segments/", segments)
		}
		srv := httptest.NewServer(mux)
		defer srv.Close()

		live := &liveRun{}
		monitorStop := make(chan struct{})
		monitorDone := make(chan struct{})
		if *restart {
			// Kill once the campaign is well underway: a quarter of the
			// baseline's event count has been admitted and made durable.
			target := baseline.Dataset.Len() / 4
			if target < 1 {
				target = 1
			}
			go func() {
				defer close(monitorDone)
				for ds.Len() < target {
					select {
					case <-monitorStop:
						return
					case <-time.After(2 * time.Millisecond):
					}
				}
				// SIGKILL approximation: no drain, no acks, no final
				// checkpoint or seal. Collector first (its wg.Wait lets
				// in-flight appends finish), then the store fd.
				col.Kill()
				cur.st.Kill()
				killedAt := ds.Len()

				ds2 := trace.NewDataset()
				st2, err := trace.OpenSegStore(storeDir, trace.SegStoreOptions{}, trace.ReplayInto(ds2))
				if err != nil {
					log.Fatalf("cellcheck chaos: store reboot: %v", err)
				}
				// Reboot on the same address so the devices' retries land
				// without reconfiguration. The old listener is closed, but
				// give the kernel a beat to release the port if needed.
				var col2 *trace.Collector
				for i := 0; i < 200; i++ {
					col2, err = trace.NewCollectorWith(addr, ds2, trace.CollectorOptions{
						OnAdmit: eng.Ingest,
						Store:   st2,
					})
					if err == nil {
						break
					}
					time.Sleep(10 * time.Millisecond)
				}
				if err != nil {
					log.Fatalf("cellcheck chaos: collector reboot: %v", err)
				}
				cur.mu.Lock()
				cur.col, cur.ds, cur.st = col2, ds2, st2
				cur.restarted, cur.killedAt = true, killedAt
				cur.mu.Unlock()
				fmt.Printf("collector (workers=%d): killed at %d events, rebooted from %d replayed\n",
					workers, killedAt, ds2.Len())
			}()
		} else {
			close(monitorDone)
		}

		done := make(chan *fleet.Result, 1)
		go func() {
			res, err := fleet.Run(faulted)
			if err != nil {
				log.Fatalf("cellcheck chaos: faulted run (workers=%d): %v", workers, err)
			}
			done <- res
		}()
		var res *fleet.Result
		for res == nil {
			select {
			case res = <-done:
			case <-time.After(5 * time.Millisecond):
				liveFetch(srv, "/api/live/figures")
				liveFetch(srv, "/api/live/status")
				live.queries += 2
				if *restart {
					if liveFetch(srv, "/api/segments") != nil {
						live.segQueries++
					}
				}
			}
		}
		close(monitorStop)
		<-monitorDone
		cur.mu.Lock()
		col, ds = cur.col, cur.ds
		st := cur.st
		live.restarted, live.killedAt = cur.restarted, cur.killedAt
		cur.mu.Unlock()

		col.Drain(5 * time.Second)
		fmt.Printf("collector (workers=%d): %d events, %d dedup hits, %d nacks, digest %s\n",
			workers, ds.Len(), col.DedupHits(), col.Nacks(), ds.MultisetDigest())
		res.Dataset = ds

		// Settle the streaming side with the run's final context, then
		// capture both sides of the streaming=batch comparison.
		captureStreaming(live, eng, srv, res, ds)

		if *restart {
			// Close the store (sealing the tail), download every segment
			// over HTTP, and rebuild the dataset from the raw frames: the
			// durable bytes must reproduce the stored multiset and the
			// batch figures bit-for-bit.
			if err := st.Close(); err != nil {
				log.Fatalf("cellcheck chaos: store close: %v", err)
			}
			live.storedEvents = ds.Len()
			live.storedDigest = ds.MultisetDigest()
			segDs := trace.NewDataset()
			replay := trace.ReplayInto(segDs)
			var idx []trace.SegmentInfo
			if err := json.Unmarshal(liveFetch(srv, "/api/segments"), &idx); err != nil {
				log.Fatalf("cellcheck chaos: segment index: %v", err)
			}
			for _, info := range idx {
				raw := liveFetch(srv, fmt.Sprintf("/api/segments/data?id=%d", info.ID))
				br := bufio.NewReader(bytes.NewReader(raw))
				for {
					if _, err := br.Peek(1); err == io.EOF {
						break
					}
					b, _, _, err := trace.ReadBatchAny(br)
					if err != nil {
						log.Fatalf("cellcheck chaos: segment %d decode: %v", info.ID, err)
					}
					replay(b)
				}
			}
			live.segEvents = segDs.Len()
			live.segDigest = segDs.MultisetDigest()
			segIn := analysis.FromResult(res)
			segIn.Dataset = segDs
			if live.segFigures, err = analysis.NewPass(segIn).FiguresJSON(core.Catalogue()); err != nil {
				log.Fatalf("cellcheck chaos: segment figures: %v", err)
			}
		}
		return res, live
	}

	res, live := runFaulted(*workers)
	fmt.Printf("%s\n", res.Faults)

	checks := chaosInvariants(campaign, baseline, res)
	if uploadMode {
		res1, live1 := res, live
		if *workers != 1 {
			res1, live1 = runFaulted(1)
		}
		checks = append(checks, ingestInvariants(res, res1)...)
		checks = append(checks, streamingInvariants(live, live1)...)
		if *restart {
			checks = append(checks, restartInvariants(live, live1)...)
		}
		if *fleetN > 1 {
			// Single-collector reference arm: the same scenario and campaign
			// through one plain collector. The merged fleet union must land
			// on exactly this dataset digest.
			refDs := trace.NewDataset()
			refCol, err := trace.NewCollector("127.0.0.1:0", refDs)
			if err != nil {
				log.Fatalf("cellcheck chaos: reference collector: %v", err)
			}
			refScenario := scenario
			refScenario.Faults = campaign
			refScenario.UploadAddr = refCol.Addr()
			if _, err := fleet.Run(refScenario); err != nil {
				log.Fatalf("cellcheck chaos: reference run: %v", err)
			}
			refCol.Drain(5 * time.Second)
			fmt.Printf("reference (single collector): %d events, digest %s\n", refDs.Len(), refDs.MultisetDigest())
			checks = append(checks, fleetInvariants(live, live1, refDs, *failover)...)
			refCol.Close()
		}
	}
	failures := 0
	for _, c := range checks {
		status := "PASS"
		if !c.pass {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %-14s %s — %s\n", status, c.id, c.text, c.detail)
	}
	if failures > 0 {
		fmt.Printf("chaos: %d/%d invariants failed\n", failures, len(checks))
		os.Exit(1)
	}
	fmt.Printf("chaos: all %d invariants hold\n", len(checks))
}

type chaosCheck struct {
	id     string
	text   string
	pass   bool
	detail string
}

// liveRun captures one faulted upload run's live-analysis observations:
// how many mid-run queries the live endpoints answered, the post-drain
// streaming bytes, and the batch bytes they must equal. With -restart it
// also records the kill/reboot and the segment-store round trip.
type liveRun struct {
	queries      int
	resynced     bool
	status       analysis.StreamingStatus
	figures      []byte
	claims       []byte
	batchFigures []byte
	batchClaims  []byte

	// -restart observations.
	restarted    bool
	killedAt     int // events admitted when the collector was killed
	segQueries   int // mid-run /api/segments responses while ingest ran
	storedEvents int
	storedDigest trace.Digest
	segEvents    int // events rebuilt from downloaded segment frames
	segDigest    trace.Digest
	segFigures   []byte

	// -fleet observations.
	fleetSize     int
	failoverFired bool
	fleetVictim   int
	fleetKilledAt int     // shared-dataset size when the victim was killed
	fleetEnd      int     // shared-dataset size after the drain
	reroutes      float64 // delta of trace_uploader_reroutes_total over the run
	takeovers     float64 // delta of trace_collector_takeover_devices over the run
}

// captureStreaming settles the live engine with the run's final context
// and captures both sides of the streaming=batch comparison (I5).
func captureStreaming(live *liveRun, eng *analysis.Streaming, srv *httptest.Server, res *fleet.Result, ds *trace.Dataset) {
	if err := eng.WaitIdle(10 * time.Second); err != nil {
		log.Fatalf("cellcheck chaos: live engine: %v", err)
	}
	in := analysis.FromResult(res)
	in.Dataset = ds
	live.resynced = eng.Sync(in)
	live.status = eng.Status()
	live.figures = liveFetch(srv, "/api/live/figures")
	live.claims = liveFetch(srv, "/api/live/claims")
	pass := analysis.NewPass(in)
	var err error
	if live.batchFigures, err = pass.FiguresJSON(core.Catalogue()); err != nil {
		log.Fatalf("cellcheck chaos: batch figures: %v", err)
	}
	if live.batchClaims, err = pass.ClaimsJSON(); err != nil {
		log.Fatalf("cellcheck chaos: batch claims: %v", err)
	}
}

// chaosMetric reads one counter from the process-wide registry (0 if it
// has not been registered yet).
func chaosMetric(name string) float64 {
	v, _ := metrics.Default().Value(name)
	return v
}

// liveFetch GETs one live endpoint, returning the body (nil on error —
// mid-run probes are best-effort; the post-drain fetch is checked by I5).
func liveFetch(srv *httptest.Server, path string) []byte {
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	return b
}

// streamingInvariants is invariant I5: live figures served off the admit
// path during the chaos run must, post-drain, be byte-identical to the
// batch renderer over the collected dataset, and identical across worker
// counts; the mid-run queries prove the endpoints answered while uploads
// were in flight.
func streamingInvariants(live, live1 *liveRun) []chaosCheck {
	degraded := ""
	if live.status.Shed > 0 || live.resynced {
		degraded = fmt.Sprintf(" (shed=%d resynced=%v)", live.status.Shed, live.resynced)
	}
	return []chaosCheck{
		{
			id:   "I5/streaming-batch",
			text: "post-drain live figures and claims equal the batch renderer byte-for-byte",
			pass: len(live.figures) > 0 && bytes.Equal(live.figures, live.batchFigures) &&
				bytes.Equal(live.claims, live.batchClaims),
			detail: fmt.Sprintf("live=%dB batch=%dB claims live=%dB batch=%dB events=%d%s",
				len(live.figures), len(live.batchFigures), len(live.claims), len(live.batchClaims),
				live.status.Events, degraded),
		},
		{
			id:     "I5/live-served",
			text:   "live endpoints answered while the fleet was still uploading",
			pass:   live.queries > 0,
			detail: fmt.Sprintf("mid-run queries=%d", live.queries),
		},
		{
			id:   "I5/worker-independence",
			text: "live figures are byte-identical across worker counts",
			pass: bytes.Equal(live.figures, live1.figures) && bytes.Equal(live.claims, live1.claims),
			detail: fmt.Sprintf("workers=N: %dB; workers=1: %dB",
				len(live.figures), len(live1.figures)),
		},
	}
}

// restartInvariants is invariant I6, checked on -restart runs: the kill
// and reboot must actually have happened mid-campaign (in both worker
// arms — otherwise the cross-restart exactly-once claim is vacuous), the
// segment API must have answered queries while ingest was live, and the
// dataset rebuilt from the downloaded segment frames must reproduce the
// stored multiset and the batch figures byte-for-byte. Together with
// I4/I5 — which run on the same datasets — this is exactly-once across
// SIGKILL plus reboot-from-disk.
func restartInvariants(live, live1 *liveRun) []chaosCheck {
	return []chaosCheck{
		{
			id:   "I6/restart-fired",
			text: "the collector was killed mid-campaign and rebooted from its store",
			pass: live.restarted && live1.restarted && live.killedAt > 0 && live1.killedAt > 0,
			detail: fmt.Sprintf("workers=N killed at %d events; workers=1 killed at %d",
				live.killedAt, live1.killedAt),
		},
		{
			id:     "I6/segments-live",
			text:   "the segment index answered queries while ingest continued",
			pass:   live.segQueries > 0 && live1.segQueries > 0,
			detail: fmt.Sprintf("mid-run segment queries: workers=N %d, workers=1 %d", live.segQueries, live1.segQueries),
		},
		{
			id:   "I6/segments-batch-equal",
			text: "segments downloaded over HTTP reproduce the stored multiset and batch figures",
			pass: live.segEvents == live.storedEvents && live.segDigest == live.storedDigest &&
				live1.segEvents == live1.storedEvents && live1.segDigest == live1.storedDigest &&
				len(live.segFigures) > 0 && bytes.Equal(live.segFigures, live.batchFigures) &&
				bytes.Equal(live1.segFigures, live1.batchFigures),
			detail: fmt.Sprintf("segments=%d events digest=%s stored=%d digest=%s figures=%dB",
				live.segEvents, live.segDigest, live.storedEvents, live.storedDigest, len(live.segFigures)),
		},
	}
}

// fleetInvariants covers the -fleet arms: the merged-segment variant of
// I6 (the fleet-wide durable union answers queries mid-run and
// reproduces the stored multiset and batch figures), and — with
// -failover — invariant I7: the takeover actually happened mid-campaign
// in both worker arms, devices rerouted and kept uploading past the
// kill, the survivors' seeded dedup gates absorbed the replays, and the
// stored union matches the single-collector reference run of the same
// scenario byte-for-byte.
func fleetInvariants(live, live1 *liveRun, refDs *trace.Dataset, failover bool) []chaosCheck {
	checks := []chaosCheck{
		{
			id:     "I6/segments-live",
			text:   "the merged segment index answered queries while ingest continued",
			pass:   live.segQueries > 0 && live1.segQueries > 0,
			detail: fmt.Sprintf("mid-run merged queries: workers=N %d, workers=1 %d", live.segQueries, live1.segQueries),
		},
		{
			id:   "I6/segments-batch-equal",
			text: "the merged segment union reproduces the stored multiset and batch figures",
			pass: live.segEvents == live.storedEvents && live.segDigest == live.storedDigest &&
				live1.segEvents == live1.storedEvents && live1.segDigest == live1.storedDigest &&
				len(live.segFigures) > 0 && bytes.Equal(live.segFigures, live.batchFigures) &&
				bytes.Equal(live1.segFigures, live1.batchFigures),
			detail: fmt.Sprintf("union=%d events digest=%s stored=%d digest=%s figures=%dB",
				live.segEvents, live.segDigest, live.storedEvents, live.storedDigest, len(live.segFigures)),
		},
	}
	if failover {
		checks = append(checks,
			chaosCheck{
				id:   "I7/failover-fired",
				text: "one collector was SIGKILLed mid-campaign in both worker arms",
				pass: live.failoverFired && live1.failoverFired && live.fleetKilledAt > 0 && live1.fleetKilledAt > 0,
				detail: fmt.Sprintf("workers=N killed col-%d at %d events; workers=1 killed col-%d at %d",
					live.fleetVictim, live.fleetKilledAt, live1.fleetVictim, live1.fleetKilledAt),
			},
			chaosCheck{
				id:   "I7/takeover-reroute",
				text: "devices rerouted to survivors whose dedup gates were seeded from the dead member's marks",
				// Post-kill dataset growth is reported but not required: a
				// campaign outage can buffer the whole tail of a run into one
				// pre-kill flush, leaving nothing to deliver afterwards. The
				// reroute and seeded-mark counters prove the takeover path ran.
				pass: live.reroutes > 0 && live1.reroutes > 0 &&
					live.takeovers > 0 && live1.takeovers > 0,
				detail: fmt.Sprintf("reroutes=%.0f/%.0f takeover-devices=%.0f/%.0f events %d→%d / %d→%d",
					live.reroutes, live1.reroutes, live.takeovers, live1.takeovers,
					live.fleetKilledAt, live.fleetEnd, live1.fleetKilledAt, live1.fleetEnd),
			},
			chaosCheck{
				id:   "I7/union-exactly-once",
				text: "stored union across collectors is identical in both worker arms despite mid-run ownership changes",
				pass: live.storedDigest == live1.storedDigest && live.storedEvents == live1.storedEvents &&
					live.storedEvents > 0,
				detail: fmt.Sprintf("workers=N: %d events %s; workers=1: %d events %s",
					live.storedEvents, live.storedDigest, live1.storedEvents, live1.storedDigest),
			},
		)
	}
	checks = append(checks, chaosCheck{
		id:   "I7/single-collector-equal",
		text: "the fleet's stored union equals a single-collector run of the same scenario",
		pass: refDs.Len() == live.storedEvents && refDs.MultisetDigest() == live.storedDigest,
		detail: fmt.Sprintf("fleet=%d events %s; single=%d events %s",
			live.storedEvents, live.storedDigest, refDs.Len(), refDs.MultisetDigest()),
	})
	return checks
}

func chaosInvariants(campaign *faultinject.Campaign, baseline, res *fleet.Result) []chaosCheck {
	var checks []chaosCheck

	// I1: per-rule episode accounting.
	byName := make(map[string]faultinject.RuleReport)
	for _, rr := range res.Faults.Rules {
		byName[rr.Name] = rr
	}
	for _, rule := range campaign.Rules {
		rr := byName[rule.Name]
		_, bearing := rule.Class.ExpectedKind()
		pass := rr.Injected == rr.Recovered && (!bearing || rr.Injected > 0)
		checks = append(checks, chaosCheck{
			id:   "I1/" + rule.Name,
			text: "every injected outage resolves",
			pass: pass,
			detail: fmt.Sprintf("injected=%d recovered=%d dropped=%d",
				rr.Injected, rr.Recovered, rr.Dropped),
		})
	}

	// I2: state-machine integrity.
	checks = append(checks, chaosCheck{
		id:   "I2/integrity",
		text: "no device wedges outside the Figure-1 state machine",
		pass: res.Integrity.Clean(),
		detail: fmt.Sprintf("wedged=%d open-setups=%d open-episodes=%d",
			res.Integrity.Wedged, res.Integrity.OpenSetups, res.Integrity.OpenEpisodes),
	})

	// I3: the failure-class mix shifts toward the injected classes.
	baseKinds := kindCounts(baseline)
	faultKinds := kindCounts(res)
	seenKind := map[failure.Kind]bool{}
	for _, rule := range campaign.Rules {
		kind, ok := rule.Class.ExpectedKind()
		if !ok || seenKind[kind] {
			continue
		}
		seenKind[kind] = true
		checks = append(checks, chaosCheck{
			id:   "I3/" + kind.String(),
			text: "failure-class mix shifts in the expected direction",
			pass: faultKinds[kind] > baseKinds[kind],
			detail: fmt.Sprintf("baseline=%d faulted=%d",
				baseKinds[kind], faultKinds[kind]),
		})
	}
	return checks
}

func kindCounts(res *fleet.Result) map[failure.Kind]int {
	out := make(map[failure.Kind]int)
	res.Dataset.Each(func(e *failure.Event) { out[e.Kind]++ })
	return out
}

// ingestInvariants is invariant I4, checked on the upload-mode faulted
// runs: the collector's dataset must be the exact multiset the devices
// recorded, the transport faults must actually have fired (otherwise the
// invariant was vacuous), and the stored multiset must not depend on the
// worker count.
func ingestInvariants(res, res1 *fleet.Result) []chaosCheck {
	var checks []chaosCheck
	var netInjected int64
	for _, rr := range res.Faults.Rules {
		if class, err := faultinject.ParseClass(rr.Class); err == nil && class.IsNetwork() {
			netInjected += rr.Injected
		}
	}
	up, rec := res.Dataset.MultisetDigest(), res.RecordedDigest
	checks = append(checks,
		chaosCheck{
			id:   "I4/exactly-once",
			text: "collector multiset equals the device-recorded multiset",
			pass: res.RecordedEvents > 0 && int64(res.Dataset.Len()) == res.RecordedEvents && up == rec,
			detail: fmt.Sprintf("stored=%d recorded=%d digest=%s recorded-digest=%s",
				res.Dataset.Len(), res.RecordedEvents, up, rec),
		},
		chaosCheck{
			id:     "I4/stressed",
			text:   "transport faults actually fired during upload",
			pass:   netInjected > 0,
			detail: fmt.Sprintf("network-fault episodes injected=%d", netInjected),
		},
		chaosCheck{
			id:   "I4/worker-independence",
			text: "stored multiset is byte-identical across worker counts",
			pass: res1.Dataset.MultisetDigest() == up && res1.Dataset.Len() == res.Dataset.Len(),
			detail: fmt.Sprintf("workers=%d: %d events %s; workers=1: %d events %s",
				res.Scenario.Workers, res.Dataset.Len(), up,
				res1.Dataset.Len(), res1.Dataset.MultisetDigest()),
		},
	)
	return checks
}
