package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/trace"
)

// runChaos executes `cellcheck chaos`: a calm baseline run, the same
// scenario under a fault campaign, and the recovery invariants that make
// fault injection trustworthy as a regression harness:
//
//	I1  every injected outage resolves — per rule, at least one episode ran
//	    (for episode-bearing classes) and injected == recovered.
//	I2  no device wedges outside the Figure-1 state machine — the data
//	    connection of every device ends in Inactive or Active and no setup
//	    episode is left in flight.
//	I3  the failure-class mix shifts in the expected direction — for each
//	    fault class in the campaign, the faulted run records at least as
//	    many events of the class's failure kind as the calm baseline.
//	I4  ingestion is exactly-once (campaigns with network rules, or
//	    -network): with every event routed through an in-process collector
//	    under injected dial failures, lost acks, and flaky links, the
//	    collector dataset's event multiset equals the union of what the
//	    devices recorded — nothing lost, nothing duplicated — and is
//	    byte-identical across worker counts.
func runChaos(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	var (
		devices = fs.Int("devices", 2000, "fleet size")
		seed    = fs.Int64("seed", 7, "simulation seed")
		workers = fs.Int("workers", 8, "worker shards")
		months  = fs.Float64("months", 4, "measurement window in months")
		faults  = fs.String("faults", "", "JSON fault-campaign file (default: the bundled BS-blackout campaign, or the bundled network campaign with -network)")
		network = fs.Bool("network", false, "upload events through an in-process collector under transport faults and check the exactly-once invariant I4")
	)
	_ = fs.Parse(args)

	scenario := fleet.Scenario{
		Seed:       *seed,
		NumDevices: *devices,
		Workers:    *workers,
		Window:     time.Duration(*months * 30 * 24 * float64(time.Hour)),
	}

	var campaign *faultinject.Campaign
	if *faults != "" {
		var err error
		campaign, err = faultinject.LoadCampaign(*faults)
		if err != nil {
			log.Fatalf("cellcheck chaos: %v", err)
		}
	} else if *network {
		campaign = faultinject.DefaultNetworkCampaign(scenario.Window)
	} else {
		campaign = faultinject.DefaultBlackoutCampaign(scenario.Window)
	}
	uploadMode := *network || campaign.HasNetworkRules()

	fmt.Printf("chaos: campaign %q over %d devices, %.1f months, seed %d\n",
		campaign.Name, scenario.NumDevices, scenario.Window.Hours()/24/30, scenario.Seed)

	baseline, err := fleet.Run(scenario)
	if err != nil {
		log.Fatalf("cellcheck chaos: baseline run: %v", err)
	}

	// runFaulted executes the campaign, in upload mode routing every event
	// through a fresh in-process collector so transport faults have a real
	// TCP path to break; the result's Dataset is then the collector's copy
	// — exactly what a production deployment would have persisted.
	runFaulted := func(workers int) *fleet.Result {
		faulted := scenario
		faulted.Workers = workers
		faulted.Faults = campaign
		if !uploadMode {
			res, err := fleet.Run(faulted)
			if err != nil {
				log.Fatalf("cellcheck chaos: faulted run: %v", err)
			}
			return res
		}
		ds := trace.NewDataset()
		col, err := trace.NewCollector("127.0.0.1:0", ds)
		if err != nil {
			log.Fatalf("cellcheck chaos: collector: %v", err)
		}
		faulted.UploadAddr = col.Addr()
		res, err := fleet.Run(faulted)
		col.Drain(5 * time.Second)
		if err != nil {
			log.Fatalf("cellcheck chaos: faulted run (workers=%d): %v", workers, err)
		}
		fmt.Printf("collector (workers=%d): %d events, %d dedup hits, %d nacks, digest %s\n",
			workers, ds.Len(), col.DedupHits(), col.Nacks(), ds.MultisetDigest())
		res.Dataset = ds
		return res
	}

	res := runFaulted(*workers)
	fmt.Printf("%s\n", res.Faults)

	checks := chaosInvariants(campaign, baseline, res)
	if uploadMode {
		res1 := res
		if *workers != 1 {
			res1 = runFaulted(1)
		}
		checks = append(checks, ingestInvariants(res, res1)...)
	}
	failures := 0
	for _, c := range checks {
		status := "PASS"
		if !c.pass {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %-14s %s — %s\n", status, c.id, c.text, c.detail)
	}
	if failures > 0 {
		fmt.Printf("chaos: %d/%d invariants failed\n", failures, len(checks))
		os.Exit(1)
	}
	fmt.Printf("chaos: all %d invariants hold\n", len(checks))
}

type chaosCheck struct {
	id     string
	text   string
	pass   bool
	detail string
}

func chaosInvariants(campaign *faultinject.Campaign, baseline, res *fleet.Result) []chaosCheck {
	var checks []chaosCheck

	// I1: per-rule episode accounting.
	byName := make(map[string]faultinject.RuleReport)
	for _, rr := range res.Faults.Rules {
		byName[rr.Name] = rr
	}
	for _, rule := range campaign.Rules {
		rr := byName[rule.Name]
		_, bearing := rule.Class.ExpectedKind()
		pass := rr.Injected == rr.Recovered && (!bearing || rr.Injected > 0)
		checks = append(checks, chaosCheck{
			id:   "I1/" + rule.Name,
			text: "every injected outage resolves",
			pass: pass,
			detail: fmt.Sprintf("injected=%d recovered=%d dropped=%d",
				rr.Injected, rr.Recovered, rr.Dropped),
		})
	}

	// I2: state-machine integrity.
	checks = append(checks, chaosCheck{
		id:   "I2/integrity",
		text: "no device wedges outside the Figure-1 state machine",
		pass: res.Integrity.Clean(),
		detail: fmt.Sprintf("wedged=%d open-setups=%d open-episodes=%d",
			res.Integrity.Wedged, res.Integrity.OpenSetups, res.Integrity.OpenEpisodes),
	})

	// I3: the failure-class mix shifts toward the injected classes.
	baseKinds := kindCounts(baseline)
	faultKinds := kindCounts(res)
	seenKind := map[failure.Kind]bool{}
	for _, rule := range campaign.Rules {
		kind, ok := rule.Class.ExpectedKind()
		if !ok || seenKind[kind] {
			continue
		}
		seenKind[kind] = true
		checks = append(checks, chaosCheck{
			id:   "I3/" + kind.String(),
			text: "failure-class mix shifts in the expected direction",
			pass: faultKinds[kind] > baseKinds[kind],
			detail: fmt.Sprintf("baseline=%d faulted=%d",
				baseKinds[kind], faultKinds[kind]),
		})
	}
	return checks
}

func kindCounts(res *fleet.Result) map[failure.Kind]int {
	out := make(map[failure.Kind]int)
	res.Dataset.Each(func(e *failure.Event) { out[e.Kind]++ })
	return out
}

// ingestInvariants is invariant I4, checked on the upload-mode faulted
// runs: the collector's dataset must be the exact multiset the devices
// recorded, the transport faults must actually have fired (otherwise the
// invariant was vacuous), and the stored multiset must not depend on the
// worker count.
func ingestInvariants(res, res1 *fleet.Result) []chaosCheck {
	var checks []chaosCheck
	var netInjected int64
	for _, rr := range res.Faults.Rules {
		if class, err := faultinject.ParseClass(rr.Class); err == nil && class.IsNetwork() {
			netInjected += rr.Injected
		}
	}
	up, rec := res.Dataset.MultisetDigest(), res.RecordedDigest
	checks = append(checks,
		chaosCheck{
			id:   "I4/exactly-once",
			text: "collector multiset equals the device-recorded multiset",
			pass: res.RecordedEvents > 0 && int64(res.Dataset.Len()) == res.RecordedEvents && up == rec,
			detail: fmt.Sprintf("stored=%d recorded=%d digest=%s recorded-digest=%s",
				res.Dataset.Len(), res.RecordedEvents, up, rec),
		},
		chaosCheck{
			id:     "I4/stressed",
			text:   "transport faults actually fired during upload",
			pass:   netInjected > 0,
			detail: fmt.Sprintf("network-fault episodes injected=%d", netInjected),
		},
		chaosCheck{
			id:   "I4/worker-independence",
			text: "stored multiset is byte-identical across worker counts",
			pass: res1.Dataset.MultisetDigest() == up && res1.Dataset.Len() == res.Dataset.Len(),
			detail: fmt.Sprintf("workers=%d: %d events %s; workers=1: %d events %s",
				res.Scenario.Workers, res.Dataset.Len(), up,
				res1.Dataset.Len(), res1.Dataset.MultisetDigest()),
		},
	)
	return checks
}
