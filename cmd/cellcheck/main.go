// Command cellcheck is the reproduction scorecard: it simulates a vanilla
// measurement fleet (or loads a snapshot) and verifies every checkable
// claim of the paper against the dataset, claim by claim. The chaos
// subcommand instead runs a fault campaign and asserts the recovery
// invariants (see runChaos).
//
// Usage:
//
//	cellcheck -devices 4000 -seed 7
//	cellcheck -in run.snap.gz
//	cellcheck chaos                          # bundled BS-blackout campaign
//	cellcheck chaos -network                 # + transport faults, exactly-once invariant I4
//	cellcheck chaos -network -restart        # + mid-campaign collector SIGKILL/reboot, invariant I6
//	cellcheck chaos -faults campaign.json -devices 3000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/fleet"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		runChaos(os.Args[2:])
		return
	}
	var (
		devices = flag.Int("devices", 4000, "fleet size (ignored with -in)")
		seed    = flag.Int64("seed", 7, "simulation seed")
		workers = flag.Int("workers", 8, "worker shards")
		inPath  = flag.String("in", "", "check a saved snapshot instead of simulating")
	)
	flag.Parse()

	var res *fleet.Result
	var err error
	if *inPath != "" {
		res, err = fleet.LoadResult(*inPath)
	} else {
		res, err = fleet.Run(fleet.Scenario{Seed: *seed, NumDevices: *devices, Workers: *workers})
	}
	if err != nil {
		log.Fatalf("cellcheck: %v", err)
	}

	results := analysis.CheckClaims(analysis.FromResult(res))
	fmt.Print(analysis.RenderClaims(results))
	for _, r := range results {
		if !r.Pass {
			os.Exit(1)
		}
	}
}
