// Command cellsim runs the fleet measurement study — the simulated stand-in
// for the paper's 70M-device Android-MOD deployment — and writes the
// collected dataset to disk for analysis with cellanalyze.
//
// Usage:
//
//	cellsim -devices 4000 -months 8 -seed 1 -o run.snap.gz
//	cellsim -devices 4000 -patched -o patched.snap.gz   # §4.2 enhancements on
//	cellsim -devices 1000 -upload 127.0.0.1:9230        # stream to a collector
//	cellsim -devices 100000 -progress 5s                # periodic progress on stderr
//
// After the run a one-line metrics summary (the fleet_*, monitor_*, and
// trace_* counter/gauge families) is printed to stderr; -progress N
// additionally reports devices done, recorded events, and events/sec
// every N while the fleet simulates.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/android"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	var (
		config   = flag.String("config", "", "JSON scenario file (overrides the other scenario flags)")
		devices  = flag.Int("devices", 4000, "fleet size")
		months   = flag.Float64("months", 8, "measurement window in months")
		seed     = flag.Int64("seed", 1, "simulation seed")
		numBS    = flag.Int("bs", 0, "base stations (default devices/2)")
		workers  = flag.Int("workers", 8, "simulation worker shards")
		patched  = flag.Bool("patched", false, "enable the §4.2 enhancements (stability-compatible RAT policy, dual connectivity, TIMP trigger)")
		faults   = flag.String("faults", "", "JSON fault-campaign file to superimpose on the run (see internal/faultinject)")
		upload   = flag.String("upload", "", "collector address to upload events to over TCP")
		dialect  = flag.String("dialect", "", "with -upload: wire dialect, v3 (default, binary codec) or v2 (gob frames)")
		buffer   = flag.Int("buffer", 0, "with -upload: max buffered events per shard before spilling or shedding (0: unbounded)")
		spill    = flag.String("spill", "", "with -upload: directory for per-shard spill WALs once -buffer is exceeded (empty: shed oldest)")
		out      = flag.String("o", "run.snap.gz", "output snapshot path (empty to skip)")
		progress = flag.Duration("progress", 0, "print periodic progress (devices done, events/sec) to stderr; 0 disables")
	)
	flag.Parse()

	var scenario fleet.Scenario
	if *config != "" {
		var err error
		scenario, err = fleet.LoadScenario(*config)
		if err != nil {
			log.Fatalf("cellsim: %v", err)
		}
	} else {
		scenario = fleet.Scenario{
			Seed:              *seed,
			NumDevices:        *devices,
			Window:            time.Duration(*months * 30 * 24 * float64(time.Hour)),
			NumBS:             *numBS,
			Workers:           *workers,
			UploadAddr:        *upload,
			UploadDialect:     *dialect,
			UploadBufferLimit: *buffer,
			UploadSpillDir:    *spill,
		}
		if *patched {
			scenario = scenario.Patched(android.PaperTIMPTrigger)
		}
	}
	if *faults != "" {
		campaign, err := faultinject.LoadCampaign(*faults)
		if err != nil {
			log.Fatalf("cellsim: %v", err)
		}
		scenario.Faults = campaign
	}

	var stopProgress chan struct{}
	if *progress > 0 {
		stopProgress = make(chan struct{})
		// Report against the normalized scenario: a -config file may omit
		// NumDevices (Run fills in the default), and the raw config value
		// would show a 0 total forever.
		go reportProgress(*progress, scenario.Normalized().NumDevices, stopProgress)
	}

	start := time.Now()
	res, err := fleet.Run(scenario)
	if err != nil {
		log.Fatalf("cellsim: %v", err)
	}
	elapsed := time.Since(start)
	if stopProgress != nil {
		close(stopProgress)
	}

	fmt.Printf("%s\n", res)
	fmt.Printf("simulated %.1f months of %d devices in %v\n",
		res.Scenario.Window.Hours()/24/30, res.Population.Total, elapsed.Round(time.Millisecond))
	fmt.Printf("monitor: recorded=%d filtered-setup=%d filtered-stalls=%d probe-rounds=%d legacy-fallbacks=%d\n",
		res.Monitor.Recorded, res.Monitor.FilteredSetup, res.Monitor.FilteredStalls,
		res.Monitor.ProbeRounds, res.Monitor.LegacyFallbacks)
	fmt.Printf("overhead: mean CPU %.3f%%, max CPU %.3f%%, max storage %d B, max net %d B\n",
		res.Overhead.MeanCPUUtilization*100, res.Overhead.MaxCPUUtilization*100,
		res.Overhead.MaxStorageBytes, res.Overhead.MaxNetworkBytes)
	if res.Faults != nil {
		fmt.Printf("faults: %s\n  unresolved=%d wedged=%d open-setups=%d\n",
			res.Faults, res.Faults.Unresolved(), res.Integrity.Wedged, res.Integrity.OpenSetups)
	}

	// One-line runtime metrics summary on stderr: the same counters the
	// /metrics endpoints export, so scripted runs can grep pipeline
	// health (uploader retries, filtered classes, shard counts) without
	// standing up an HTTP listener.
	simEvents, _ := metrics.Default().Value("fleet_sim_events_total")
	fmt.Fprintf(os.Stderr, "metrics: %s sim_events/s=%.0f\n",
		metrics.Default().Summary("fleet_", "monitor_", "trace_", "faultinject_"), simEvents/elapsed.Seconds())

	if *out != "" {
		if err := fleet.SaveResult(*out, res); err != nil {
			log.Fatalf("cellsim: save: %v", err)
		}
		st, _ := os.Stat(*out)
		fmt.Printf("wrote %s (%d bytes)\n", *out, st.Size())
	}
}

// reportProgress prints a progress line to stderr every interval until
// done closes, reading the live fleet/monitor counters: devices finished
// so far (each worker lane bumps the counter per device, so the count
// moves throughout the run instead of jumping at shard completion),
// failure events recorded so far, and the recent recording rate.
func reportProgress(interval time.Duration, totalDevices int, done <-chan struct{}) {
	reg := metrics.Default()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	lastEvents, lastAt := 0.0, time.Now()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			devices, _ := reg.Value("fleet_devices_simulated_total")
			events, _ := reg.Value("monitor_events_recorded_total")
			queued, _ := reg.Value("fleet_shard_queue_depth")
			now := time.Now()
			rate := (events - lastEvents) / now.Sub(lastAt).Seconds()
			lastEvents, lastAt = events, now
			fmt.Fprintf(os.Stderr, "progress: devices %.0f/%d, events=%.0f (%.0f events/s), queued=%.0f\n",
				devices, totalDevices, events, rate, queued)
		}
	}
}
