// Command cellserve exposes a saved fleet snapshot over HTTP: the JSON
// query API plus a minimal dashboard page — the centralized-analysis
// service a deployment would put in front of the collected dataset.
//
// The process also exports its runtime metrics (fleet, trace, and
// monitor families) at /metrics in Prometheus text exposition (append
// ?format=json for the JSON dump), and -pprof additionally mounts the
// net/http/pprof profiling handlers under /debug/pprof/.
//
// Usage:
//
//	cellserve -in run.snap.gz -listen 127.0.0.1:8080
//	cellserve -in run.snap.gz -pprof   # enable /debug/pprof/
//	curl localhost:8080/api/stats
//	curl localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"

	"repro/internal/analysis"
	"repro/internal/failure"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/trace"
)

var page = template.Must(template.New("index").Parse(`<!doctype html>
<title>cellrel dashboard</title>
<style>body{font-family:monospace;margin:2em}td,th{padding:2px 12px;text-align:right}</style>
<h1>cellrel — cellular reliability dashboard</h1>
<p>{{.Events}} failures from {{.Devices}} devices ({{.Prevalence}} prevalence, {{.Frequency}} failures/phone)</p>
<h2>By kind</h2>
<table><tr><th>kind</th><th>events</th></tr>
{{range .Kinds}}<tr><td>{{.Name}}</td><td>{{.N}}</td></tr>{{end}}</table>
<h2>By ISP</h2>
<table><tr><th>ISP</th><th>prevalence</th><th>frequency</th></tr>
{{range .ISPs}}<tr><td>{{.Name}}</td><td>{{printf "%.1f%%" .Prev}}</td><td>{{printf "%.1f" .Freq}}</td></tr>{{end}}</table>
<p>JSON API: <a href="/api/stats">/api/stats</a> · <a href="/api/by-model">/api/by-model</a> ·
<a href="/api/by-isp">/api/by-isp</a> · <a href="/api/events?limit=20">/api/events</a> ·
<a href="/api/digest">/api/digest</a> · <a href="/metrics">/metrics</a></p>
`))

func main() {
	log.SetFlags(0)
	var (
		inPath    = flag.String("in", "run.snap.gz", "input snapshot")
		listen    = flag.String("listen", "127.0.0.1:8080", "listen address")
		withPprof = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	)
	flag.Parse()

	res, err := fleet.LoadResult(*inPath)
	if err != nil {
		log.Fatalf("cellserve: %v", err)
	}
	in := analysis.FromResult(res)
	res.Dataset.ExposeSize()

	// One fused engine pass at startup; request handlers only render the
	// precomputed figures instead of rescanning the dataset per hit.
	pass := analysis.NewPass(in)
	f3 := pass.Figure3()
	type kindRow struct {
		Name string
		N    int
	}
	kinds := map[failure.Kind]int{}
	res.Dataset.Each(func(e *failure.Event) { kinds[e.Kind]++ })
	var kindRows []kindRow
	for k := failure.Kind(0); k < failure.NumKinds; k++ {
		if kinds[k] > 0 {
			kindRows = append(kindRows, kindRow{k.String(), kinds[k]})
		}
	}
	type ispRow struct {
		Name       string
		Prev, Freq float64
	}
	var ispRows []ispRow
	for _, g := range pass.ByISP() {
		ispRows = append(ispRows, ispRow{g.Name, g.Prevalence * 100, g.Frequency})
	}

	mux := http.NewServeMux()
	trace.NewQueryAPI(res.Dataset).Routes(mux)
	mux.Handle("/metrics", metrics.Handler())
	if *withPprof {
		metrics.RegisterPprof(mux)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		page.Execute(w, map[string]any{
			"Events":     res.Dataset.Len(),
			"Devices":    res.Population.Total,
			"Prevalence": fmt.Sprintf("%.1f%%", (1-f3.ZeroShare)*100),
			"Frequency":  fmt.Sprintf("%.1f", f3.Mean),
			"Kinds":      kindRows,
			"ISPs":       ispRows,
		})
	})
	fmt.Printf("cellserve on http://%s (snapshot %s: %d events)\n", *listen, *inPath, res.Dataset.Len())
	log.Fatal(http.ListenAndServe(*listen, mux))
}
