// Command cellserve exposes a fleet dataset over HTTP: the JSON query
// API, the canonical figures/claims documents, and a minimal dashboard
// page — the centralized-analysis service a deployment would put in
// front of the collected dataset.
//
// Two modes:
//
//   - Snapshot mode (default): load a saved run, compute one fused
//     engine pass at startup, serve the precomputed figures.
//
//   - Live mode (-live): start an in-process upload collector and feed
//     the streaming analysis engine from its admit path; /api/live/*
//     serves figures and claims that update while devices are still
//     uploading. After the fleet drains, /api/live/figures is
//     byte-identical to `cellanalyze -figures-json` over the collected
//     dataset (the streaming=batch contract).
//
// The process also exports its runtime metrics (fleet, trace, analysis,
// and monitor families) at /metrics in Prometheus text exposition
// (append ?format=json for the JSON dump), and -pprof additionally
// mounts the net/http/pprof profiling handlers under /debug/pprof/.
//
// Usage:
//
//	cellserve -in run.snap.gz -listen 127.0.0.1:8080
//	cellserve -live -collector 127.0.0.1:9230 -context run.snap.gz
//	cellserve -live -fleet 3 -store-dir fleet-store -ring-seed 7
//	curl localhost:8080/api/stats
//	curl localhost:8080/api/live/figures
//	curl localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/trace/ring"
)

var page = template.Must(template.New("index").Parse(`<!doctype html>
<title>cellrel dashboard</title>
<style>body{font-family:monospace;margin:2em}td,th{padding:2px 12px;text-align:right}</style>
<h1>cellrel — cellular reliability dashboard</h1>
<p>{{.Events}} failures from {{.Devices}} devices ({{.Prevalence}} prevalence, {{.Frequency}} failures/phone)</p>
<h2>By kind</h2>
<table><tr><th>kind</th><th>events</th></tr>
{{range .Kinds}}<tr><td>{{.Name}}</td><td>{{.N}}</td></tr>{{end}}</table>
<h2>By ISP</h2>
<table><tr><th>ISP</th><th>prevalence</th><th>frequency</th></tr>
{{range .ISPs}}<tr><td>{{.Name}}</td><td>{{printf "%.1f%%" .Prev}}</td><td>{{printf "%.1f" .Freq}}</td></tr>{{end}}</table>
<p>JSON API: <a href="/api/stats">/api/stats</a> · <a href="/api/by-model">/api/by-model</a> ·
<a href="/api/by-isp">/api/by-isp</a> · <a href="/api/events?limit=20">/api/events</a> ·
<a href="/api/digest">/api/digest</a> · <a href="/metrics">/metrics</a></p>
`))

func main() {
	log.SetFlags(0)
	var (
		inPath      = flag.String("in", "run.snap.gz", "input snapshot")
		listen      = flag.String("listen", "127.0.0.1:8080", "listen address")
		withPprof   = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		live        = flag.Bool("live", false, "run an in-process upload collector and serve live streaming figures instead of a snapshot")
		colListen   = flag.String("collector", "127.0.0.1:9230", "upload collector listen address (live mode)")
		storeDir    = flag.String("store-dir", "", "segment store directory for the live collector (live mode; empty: in-memory only)")
		ctxPath     = flag.String("context", "", "snapshot providing population/dwell/transition context for live figures")
		drainGrace  = flag.Duration("drain-grace", 10*time.Second, "how long in-flight uploads may finish after SIGINT/SIGTERM (live mode)")
		liveBuckets = flag.Int("live-buckets", 0, "sliding-window bucket count (0: default 60)")
		liveBucket  = flag.Duration("live-bucket", 0, "sliding-window bucket width in virtual time (0: default 1h)")
		fleetN      = flag.Int("fleet", 0, "run N store-backed collectors behind a consistent-hash ring instead of one (live mode; requires -store-dir)")
		ringSeed    = flag.Int64("ring-seed", 0, "consistent-hash ring seed for -fleet")
	)
	flag.Parse()

	if *live {
		runLive(*listen, *colListen, *storeDir, *ctxPath, *drainGrace, *liveBuckets, *liveBucket, *withPprof, *fleetN, *ringSeed)
		return
	}

	res, err := fleet.LoadResult(*inPath)
	if err != nil {
		log.Fatalf("cellserve: %v", err)
	}
	in := analysis.FromResult(res)
	res.Dataset.ExposeSize()

	// One fused engine pass at startup; request handlers only render the
	// precomputed figures instead of rescanning the dataset per hit.
	pass := analysis.NewPass(in)
	f3 := pass.Figure3()
	type kindRow struct {
		Name string
		N    int
	}
	kinds := map[failure.Kind]int{}
	res.Dataset.Each(func(e *failure.Event) { kinds[e.Kind]++ })
	var kindRows []kindRow
	for k := failure.Kind(0); k < failure.NumKinds; k++ {
		if kinds[k] > 0 {
			kindRows = append(kindRows, kindRow{k.String(), kinds[k]})
		}
	}
	type ispRow struct {
		Name       string
		Prev, Freq float64
	}
	var ispRows []ispRow
	for _, g := range pass.ByISP() {
		ispRows = append(ispRows, ispRow{g.Name, g.Prevalence * 100, g.Frequency})
	}

	mux := http.NewServeMux()
	trace.NewQueryAPI(res.Dataset).Routes(mux)
	mux.Handle("/metrics", metrics.Handler())
	if *withPprof {
		metrics.RegisterPprof(mux)
	}

	// Canonical figure/claims documents, rendered once at startup — the
	// same bytes `cellanalyze -figures-json`/`-claims-json` writes.
	figuresJSON, err := pass.FiguresJSON(core.Catalogue())
	if err != nil {
		log.Fatalf("cellserve: figures: %v", err)
	}
	claimsJSON, err := pass.ClaimsJSON()
	if err != nil {
		log.Fatalf("cellserve: claims: %v", err)
	}
	serveRaw := func(b []byte) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write(b)
		}
	}
	mux.HandleFunc("/api/figures", serveRaw(figuresJSON))
	mux.HandleFunc("/api/claims", serveRaw(claimsJSON))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		page.Execute(w, map[string]any{
			"Events":     res.Dataset.Len(),
			"Devices":    res.Population.Total,
			"Prevalence": fmt.Sprintf("%.1f%%", (1-f3.ZeroShare)*100),
			"Frequency":  fmt.Sprintf("%.1f", f3.Mean),
			"Kinds":      kindRows,
			"ISPs":       ispRows,
		})
	})
	fmt.Printf("cellserve on http://%s (snapshot %s: %d events)\n", *listen, *inPath, res.Dataset.Len())
	log.Fatal(http.ListenAndServe(*listen, mux))
}

// runLive serves streaming analysis off an in-process upload collector:
// devices (or cellsim shards with -upload) point at colAddr, and every
// admitted batch feeds the live accumulators behind the dedup gate. With
// a store directory, admitted batches are crash-durable and the segment
// index is queryable at /api/segments while ingest continues. With
// -fleet N (requires -store-dir), N store-backed collectors run behind a
// consistent-hash ring, all feeding the same dataset and engine, and
// /api/segments serves the merged union of their stores.
func runLive(listen, colAddr, storeDir, ctxPath string, drainGrace time.Duration, buckets int, bucket time.Duration, withPprof bool, fleetN int, ringSeed int64) {
	ds := trace.NewDataset()
	ds.ExposeSize()

	in := analysis.LiveInput(ds)
	if ctxPath != "" {
		res, err := fleet.LoadResult(ctxPath)
		if err != nil {
			log.Fatalf("cellserve: context: %v", err)
		}
		in = analysis.FromResult(res)
		in.Dataset = ds
	}
	eng := analysis.NewStreaming(in, analysis.StreamingOptions{
		WindowBuckets: buckets,
		WindowBucket:  bucket,
	})
	if fleetN > 1 {
		runLiveFleet(listen, storeDir, drainGrace, withPprof, fleetN, ringSeed, ds, eng, in)
		return
	}
	if fleetN == 1 {
		log.Fatal("cellserve: -fleet needs at least 2 collectors")
	}
	opt := trace.CollectorOptions{OnAdmit: eng.Ingest}
	var store *trace.SegStore
	if storeDir != "" {
		replay := trace.ReplayInto(ds)
		var err error
		store, err = trace.OpenSegStore(storeDir, trace.SegStoreOptions{}, func(b *trace.Batch) {
			replay(b)
			eng.Ingest(b.Events)
		})
		if err != nil {
			log.Fatalf("cellserve: store: %v", err)
		}
		opt.Store = store
		if ds.Len() > 0 {
			if err := eng.WaitIdle(time.Minute); err != nil {
				log.Printf("cellserve: live replay: %v", err)
			}
			eng.Sync(in)
			fmt.Printf("replayed %d events from %s\n", ds.Len(), storeDir)
		}
		ds.ExposeSize()
	}
	col, err := trace.NewCollectorWith(colAddr, ds, opt)
	if err != nil {
		log.Fatalf("cellserve: collector: %v", err)
	}

	mux := http.NewServeMux()
	analysis.NewLiveAPI(eng, core.Catalogue()).Routes(mux)
	trace.NewQueryAPI(ds).Routes(mux)
	if store != nil {
		trace.NewStoreAPI(store).Routes(mux)
	}
	mux.Handle("/metrics", metrics.Handler())
	if withPprof {
		metrics.RegisterPprof(mux)
	}
	srv := &http.Server{Addr: listen, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("cellserve: http: %v", err)
		}
	}()
	fmt.Printf("cellserve live on http://%s (collector %s)\n", listen, col.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	// Drain the collector first so every acked batch is stored, then
	// settle the streaming side; the final /api/live/figures response
	// equals a batch pass over the drained dataset.
	if err := col.Drain(drainGrace); err != nil {
		log.Printf("cellserve: drain: %v", err)
	}
	if err := eng.WaitIdle(drainGrace); err != nil {
		log.Printf("cellserve: live: %v", err)
	}
	if eng.Sync(in) {
		log.Printf("cellserve: live: resynced accumulators from dataset")
	}
	if store != nil {
		if err := store.Close(); err != nil {
			log.Printf("cellserve: store close: %v", err)
		}
	}
	eng.Close()
	srv.Close()
}

// runLiveFleet is live mode behind a collector fleet: N store-backed
// collectors on ephemeral ports joined to one consistent-hash ring, all
// admitting into the shared dataset and streaming engine. Boot replays
// every member's directory (dataset + accumulators) before the fleet
// accepts uploads; /api/segments serves the merged union of all
// members' sealed segments. Point ring-aware uploaders at the printed
// member addresses (Scenario.UploadRouter builds the same ring from the
// same seed and membership).
func runLiveFleet(listen, storeDir string, drainGrace time.Duration, withPprof bool, fleetN int, ringSeed int64, ds *trace.Dataset, eng *analysis.Streaming, in analysis.Input) {
	if storeDir == "" {
		log.Fatal("cellserve: -fleet requires -store-dir (the fleet is store-backed)")
	}
	replayDs := trace.ReplayInto(ds)
	fc, err := ring.StartFleet(fleetN, ds, ring.FleetOptions{
		Seed:      ringSeed,
		Dir:       storeDir,
		Collector: trace.CollectorOptions{OnAdmit: eng.Ingest},
		Replay: func(b *trace.Batch) {
			replayDs(b)
			eng.Ingest(b.Events)
		},
	})
	if err != nil {
		log.Fatalf("cellserve: fleet: %v", err)
	}
	if ds.Len() > 0 {
		if err := eng.WaitIdle(time.Minute); err != nil {
			log.Printf("cellserve: live replay: %v", err)
		}
		eng.Sync(in)
		fmt.Printf("replayed %d events from %s\n", ds.Len(), storeDir)
	}
	ds.ExposeSize()

	mux := http.NewServeMux()
	analysis.NewLiveAPI(eng, core.Catalogue()).Routes(mux)
	trace.NewQueryAPI(ds).Routes(mux)
	trace.NewMergeAPI(fc.Sources).Routes(mux)
	mux.Handle("/metrics", metrics.Handler())
	if withPprof {
		metrics.RegisterPprof(mux)
	}
	srv := &http.Server{Addr: listen, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("cellserve: http: %v", err)
		}
	}()
	fmt.Printf("cellserve live on http://%s (fleet of %d, ring seed %d)\n", listen, fleetN, ringSeed)
	for i := 0; i < fc.Len(); i++ {
		fmt.Printf("  col-%d on %s\n", i, fc.Addr(i))
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	// Drain every member so acked batches are durable, settle the
	// streaming side, then seal the stores; the merged segment API then
	// provably serves every acknowledged batch.
	if err := fc.Drain(drainGrace); err != nil {
		log.Printf("cellserve: drain: %v", err)
	}
	if err := eng.WaitIdle(drainGrace); err != nil {
		log.Printf("cellserve: live: %v", err)
	}
	if eng.Sync(in) {
		log.Printf("cellserve: live: resynced accumulators from dataset")
	}
	if err := fc.CloseStores(); err != nil {
		log.Printf("cellserve: store close: %v", err)
	}
	fc.Close()
	eng.Close()
	srv.Close()
}
