// Command cellanalyze computes the paper's tables and figures from a saved
// fleet snapshot.
//
// Usage:
//
//	cellanalyze -in run.snap.gz table1
//	cellanalyze -in run.snap.gz fig4 fig10 fig15
//	cellanalyze -in run.snap.gz all
//	cellanalyze -in vanilla.snap.gz -patched patched.snap.gz enhancement
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fleet"
	"repro/internal/telephony"
)

func main() {
	log.SetFlags(0)
	var (
		inPath      = flag.String("in", "run.snap.gz", "input snapshot")
		patchedPath = flag.String("patched", "", "patched snapshot (for 'enhancement')")
		csvOut      = flag.String("csv", "", "export the dataset as CSV to this path")
		jsonlOut    = flag.String("jsonl", "", "export the dataset as JSON Lines to this path")
		figuresOut  = flag.String("figures-json", "", "write the canonical figures JSON document to this path (\"-\" for stdout)")
		claimsOut   = flag.String("claims-json", "", "write the claims scorecard JSON to this path (\"-\" for stdout)")
	)
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 && *csvOut == "" && *jsonlOut == "" && *figuresOut == "" && *claimsOut == "" {
		targets = []string{"all"}
	}

	res, err := fleet.LoadResult(*inPath)
	if err != nil {
		log.Fatalf("cellanalyze: %v", err)
	}
	in := analysis.FromResult(res)
	// One fused engine pass feeds every figure target below; only the
	// parameterized time series runs its own sweep.
	pass := analysis.NewPass(in)

	if *csvOut != "" {
		if err := exportTo(*csvOut, res.Dataset.WriteCSV); err != nil {
			log.Fatalf("cellanalyze: csv: %v", err)
		}
		fmt.Printf("wrote %s\n", *csvOut)
	}
	if *jsonlOut != "" {
		if err := exportTo(*jsonlOut, res.Dataset.WriteJSONL); err != nil {
			log.Fatalf("cellanalyze: jsonl: %v", err)
		}
		fmt.Printf("wrote %s\n", *jsonlOut)
	}
	// The canonical JSON exports share their renderer with the live
	// /api/live endpoints: a post-drain live query and this batch export
	// must be byte-identical (invariant I5).
	if *figuresOut != "" {
		b, err := pass.FiguresJSON(core.Catalogue())
		if err != nil {
			log.Fatalf("cellanalyze: figures-json: %v", err)
		}
		if err := writeOut(*figuresOut, b); err != nil {
			log.Fatalf("cellanalyze: figures-json: %v", err)
		}
	}
	if *claimsOut != "" {
		b, err := pass.ClaimsJSON()
		if err != nil {
			log.Fatalf("cellanalyze: claims-json: %v", err)
		}
		if err := writeOut(*claimsOut, b); err != nil {
			log.Fatalf("cellanalyze: claims-json: %v", err)
		}
	}
	if len(flag.Args()) == 0 && (*csvOut != "" || *jsonlOut != "" || *figuresOut != "" || *claimsOut != "") {
		return
	}

	all := map[string]func(){
		"table1": func() { fmt.Print(analysis.RenderTable1(pass.Table1(core.Catalogue()))) },
		"table2": func() { fmt.Print(analysis.RenderTable2(pass.Table2(10))) },
		"fig3": func() {
			f := pass.Figure3()
			fmt.Printf("Failures per phone: mean %.1f, max %.0f, %.1f%% of phones failure-free, %.1f%% OOS-free\n",
				f.Mean, f.Max, f.ZeroShare*100, f.OOSFreeShare*100)
			for _, k := range []failure.Kind{failure.DataSetupError, failure.DataStall, failure.OutOfService} {
				fmt.Printf("  mean %v per phone: %.1f\n", k, f.MeanPerKind[k])
			}
		},
		"fig4": func() {
			d := pass.Figure4()
			fmt.Printf("Failure durations: mean %v, median %v, max %v, %.1f%% under 30s, stall share of duration %.1f%%\n",
				d.Mean, d.Median, d.Max, d.Under30*100, d.StallShareOfDuration*100)
			fmt.Print(analysis.RenderCDF("duration CDF", "s", d.CDF, 12))
		},
		"fig6": func() {
			f, n := pass.By5G()
			fmt.Print(analysis.RenderGroups("5G vs non-5G (Figures 6/7)", []analysis.GroupStats{f, n}))
		},
		"fig8": func() {
			a9, a10 := pass.ByAndroidVersion()
			fmt.Print(analysis.RenderGroups("Android version (Figures 8/9)", []analysis.GroupStats{a9, a10}))
		},
		"fig10": func() {
			f := pass.Figure10()
			fmt.Printf("Data_Stall self-recovery: %.1f%% within 10s (paper 60%%), %.1f%% within 300s, first-op fix rate %.1f%% (paper 75%%)\n",
				f.Under10*100, f.Under300*100, f.FirstOpFixRate*100)
			fmt.Print(analysis.RenderCDF("auto-fix CDF", "s", f.CDF, 10))
		},
		"fig11": func() { fmt.Print(analysis.RenderRanking(pass.Figure11(100))) },
		"fig12": func() {
			g := pass.ByISP()
			fmt.Print(analysis.RenderGroups("ISP discrepancy (Figures 12/13)", g[:]))
		},
		"fig14": func() {
			fmt.Println("Failure prevalence by BS RAT (failures per 1000 connected hours):")
			for _, r := range pass.Figure14() {
				fmt.Printf("  %v: %.2f (events %d, dwell %.0f h, %d BSes)\n", r.RAT, r.Prevalence, r.Events, r.DwellHours, r.BSes)
			}
		},
		"fig15": func() {
			fmt.Print(analysis.RenderLevels("Normalized prevalence by signal level (Figure 15)", pass.Figure15()))
		},
		"fig16": func() {
			fmt.Print(analysis.RenderLevels("4G (Figure 16)", pass.Figure16(telephony.RAT4G)))
			fmt.Print(analysis.RenderLevels("5G (Figure 16)", pass.Figure16(telephony.RAT5G)))
		},
		"fig17": func() {
			for _, pair := range analysis.Figure17Pairs() {
				fmt.Print(analysis.RenderHeatmap(pass.Figure17(pair[0], pair[1])))
			}
		},
		"timeseries": func() {
			series := analysis.TimeSeries(in, 7*24*time.Hour)
			fmt.Printf("Weekly failure counts (spike index %.1f):\n", analysis.SpikeIndex(series))
			maxT := 0
			for _, b := range series {
				if b.Total > maxT {
					maxT = b.Total
				}
			}
			for i, b := range series {
				bars := 0
				if maxT > 0 {
					bars = b.Total * 40 / maxT
				}
				fmt.Printf("  week %2d |%-40s| %d\n", i+1, strings.Repeat("#", bars), b.Total)
			}
		},
		"claims": func() {
			fmt.Print(analysis.RenderClaims(pass.Claims()))
		},
		"regions": func() {
			fmt.Print(analysis.RenderRegions(pass.ByRegion()))
		},
		"guidelines": func() {
			fmt.Print(analysis.RenderGuidelines(pass.Guidelines()))
		},
		"correlation": func() {
			fmt.Print(analysis.RenderCorrelation(pass.HardwareCorrelation(core.Catalogue())))
		},
		"overhead": func() {
			o := res.Overhead
			rep := analysis.CheckOverhead(o.MeanCPUUtilization, o.MaxCPUUtilization, o.MaxMemoryBytes, o.MaxStorageBytes, o.MaxNetworkBytes, 8)
			fmt.Printf("Overhead: mean CPU %.3f%% max %.3f%%, mem %d B, storage %d B, net %d B; typical budget ok=%v worst ok=%v\n",
				rep.MeanCPUUtilization*100, rep.MaxCPUUtilization*100, rep.MaxMemoryBytes, rep.MaxStorageBytes, rep.MaxNetworkBytes,
				rep.WithinTypicalBudget, rep.WithinWorstBudget)
		},
	}
	order := []string{"table1", "table2", "correlation", "timeseries", "guidelines", "regions", "claims", "fig3", "fig4", "fig6", "fig8", "fig10", "fig11", "fig12", "fig14", "fig15", "fig16", "fig17", "overhead"}

	for _, target := range targets {
		switch target {
		case "all":
			for _, name := range order {
				fmt.Printf("== %s ==\n", name)
				all[name]()
				fmt.Println()
			}
		case "enhancement":
			if *patchedPath == "" {
				log.Fatal("cellanalyze: 'enhancement' needs -patched")
			}
			pres, err := fleet.LoadResult(*patchedPath)
			if err != nil {
				log.Fatalf("cellanalyze: %v", err)
			}
			rep := analysis.CompareEnhancement(in, analysis.FromResult(pres))
			fmt.Print(analysis.RenderEnhancement(rep))
		default:
			fn, ok := all[target]
			if !ok {
				log.Fatalf("cellanalyze: unknown target %q (known: %s, all, enhancement)", target, strings.Join(order, ", "))
			}
			fn()
		}
	}
}

// writeOut writes rendered bytes to a file, or stdout for "-".
func writeOut(path string, b []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// exportTo streams a dataset export to a file.
func exportTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}
