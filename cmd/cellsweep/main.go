// Command cellsweep runs the ablation sweeps DESIGN.md calls out: RAT
// policy variants, dual connectivity, recovery triggers, and false-positive
// filtering, printing a comparison table.
//
// Usage:
//
//	cellsweep -devices 1500 -seed 7
//	cellsweep -devices 1500 -sweep trigger
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/android"
	"repro/internal/fleet"
)

func main() {
	log.SetFlags(0)
	var (
		devices = flag.Int("devices", 1500, "fleet size per variant")
		seed    = flag.Int64("seed", 7, "simulation seed (shared across variants)")
		workers = flag.Int("workers", 8, "worker shards")
		sweep   = flag.String("sweep", "policy", "which sweep: policy | trigger | fpfilter | all")
	)
	flag.Parse()

	base := fleet.Scenario{Seed: *seed, NumDevices: *devices, Workers: *workers}

	sweeps := map[string][]fleet.SweepPoint{
		"policy": {
			{Name: "vanilla (Android 9/10 stock)", Scenario: base},
			{Name: "stability-compatible", Scenario: with(base, func(s *fleet.Scenario) { s.Policy = fleet.PolicyStability })},
			{Name: "stability + dual connectivity", Scenario: with(base, func(s *fleet.Scenario) {
				s.Policy = fleet.PolicyStability
				s.DualConnectivity = true
			})},
			{Name: "never-5G", Scenario: with(base, func(s *fleet.Scenario) { s.Policy = fleet.PolicyNever5G })},
		},
		"trigger": {
			{Name: "fixed 60s probations (vanilla)", Scenario: base},
			{Name: "TIMP 21/6/16s (paper)", Scenario: with(base, func(s *fleet.Scenario) { s.Trigger = android.PaperTIMPTrigger })},
			{Name: "aggressive 5/5/5s", Scenario: with(base, func(s *fleet.Scenario) {
				s.Trigger = android.ProfileTrigger{5 * time.Second, 5 * time.Second, 5 * time.Second}
			})},
		},
		"fpfilter": {
			{Name: "filtering on (Android-MOD)", Scenario: base},
			{Name: "filtering off (ablation)", Scenario: with(base, func(s *fleet.Scenario) { s.DisableFPFilter = true })},
		},
	}

	names := []string{*sweep}
	if *sweep == "all" {
		names = []string{"policy", "trigger", "fpfilter"}
	}
	for _, name := range names {
		points, ok := sweeps[name]
		if !ok {
			log.Fatalf("cellsweep: unknown sweep %q", name)
		}
		fmt.Printf("== %s sweep (%d devices, seed %d) ==\n", name, *devices, *seed)
		start := time.Now()
		rows, err := fleet.Sweep(points)
		if err != nil {
			log.Fatalf("cellsweep: %v", err)
		}
		fmt.Printf("%-32s %8s %10s %10s %12s %9s\n",
			"variant", "events", "prevalence", "5G freq", "mean stall", "filtered")
		for _, r := range rows {
			fmt.Printf("%-32s %8d %9.1f%% %10.1f %11.1fs %9d\n",
				r.Name, r.Events, r.Prevalence*100, r.FiveGFrequency, r.MeanStallSeconds, r.FilteredFalsePositives)
		}
		fmt.Printf("(%v)\n", time.Since(start).Round(time.Millisecond))
		if name == "trigger" {
			fmt.Println("note: raw stall duration favors near-zero probations; the TIMP objective")
			fmt.Println("additionally charges each executed operation's user-disruption penalty,")
			fmt.Println("which is why the deployed optimum is interior (see DESIGN.md).")
		}
		fmt.Println()
	}
}

func with(s fleet.Scenario, mutate func(*fleet.Scenario)) fleet.Scenario {
	mutate(&s)
	return s
}
