// Command liveprobe runs Android-MOD's network-state probing round against
// real sockets: a loopback reachability check plus ICMP-style reachability
// and a hand-rolled RFC 1035 DNS query to each configured server, with the
// paper's 1 s / 5 s timeouts — the deployable counterpart of the simulated
// prober.
//
// With no flags it demonstrates all four verdicts against local test
// servers; point -dns at real resolvers to probe an actual network.
//
// Usage:
//
//	liveprobe                         # self-contained demo of every verdict
//	liveprobe -dns 8.8.8.8:53 -name example.com
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/netprobe"
)

func main() {
	log.SetFlags(0)
	var (
		dns  = flag.String("dns", "", "comma-separated DNS servers (host:port); empty runs the local demo")
		name = flag.String("name", "probe.cellrel.test", "test server domain name to resolve")
	)
	flag.Parse()

	if *dns != "" {
		loop, err := netprobe.NewLoopbackResponder()
		if err != nil {
			log.Fatal(err)
		}
		defer loop.Close()
		p := netprobe.NewLiveProber(loop.Addr(), strings.Split(*dns, ","), *name)
		r := p.Round()
		fmt.Printf("round: loopback=%v dns-reachable=%d resolved=%d elapsed=%v\n",
			r.LoopbackOK, r.ICMPOK, r.DNSOK, r.Elapsed)
		fmt.Printf("verdict: %v\n", r.Verdict())
		return
	}

	// Demo: reproduce each §2.2 classification against local servers.
	loop, err := netprobe.NewLoopbackResponder()
	if err != nil {
		log.Fatal(err)
	}
	defer loop.Close()
	srv, err := netprobe.NewTestDNSServer(netprobe.DNSAnswer)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	cases := []struct {
		title string
		setup func(p *netprobe.LiveProber)
	}{
		{"healthy network (stall fixed)", func(p *netprobe.LiveProber) { srv.SetMode(netprobe.DNSAnswer) }},
		{"DNS resolution unavailable (false positive)", func(p *netprobe.LiveProber) { srv.SetMode(netprobe.DNSFail) }},
		{"network-side stall (nothing answers)", func(p *netprobe.LiveProber) { srv.SetMode(netprobe.DNSSilent) }},
		{"system-side fault (loopback dead, false positive)", func(p *netprobe.LiveProber) {
			p.LoopbackAddr = "127.0.0.1:1"
		}},
	}
	for _, c := range cases {
		p := netprobe.NewLiveProber(loop.Addr(), []string{srv.Addr()}, *name)
		p.ICMPTimeout = p.ICMPTimeout / 2
		p.DNSTimeout = p.DNSTimeout / 2
		c.setup(p)
		r := p.Round()
		fmt.Printf("%-48s -> %-28v (loopback=%v reach=%d resolve=%d, %v)\n",
			c.title, r.Verdict(), r.LoopbackOK, r.ICMPOK, r.DNSOK, r.Elapsed.Round(1e6))
	}
}
