// Command cellrepro regenerates every table and figure of the paper end to
// end: it simulates the vanilla measurement fleet, analyzes the dataset,
// fits and anneals the TIMP recovery model, simulates the patched fleet,
// and prints a paper-vs-measured report (markdown) for each experiment.
//
// Usage:
//
//	cellrepro -devices 6000 -seed 7 > EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fleet"
)

func main() {
	log.SetFlags(0)
	var (
		devices = flag.Int("devices", 6000, "fleet size")
		seed    = flag.Int64("seed", 7, "simulation seed")
		workers = flag.Int("workers", 8, "worker shards")
	)
	flag.Parse()

	start := time.Now()
	scenario := fleet.Scenario{Seed: *seed, NumDevices: *devices, Workers: *workers}
	m, opt, enh, err := core.FullPipeline(scenario)
	if err != nil {
		log.Fatalf("cellrepro: %v", err)
	}

	o := m.Fleet.Overhead
	overhead := analysis.CheckOverhead(o.MeanCPUUtilization, o.MaxCPUUtilization,
		o.MaxMemoryBytes, o.MaxStorageBytes, o.MaxNetworkBytes,
		m.Fleet.Scenario.Window.Hours()/24/30)

	fpClasses := map[string]int{}
	for c := failure.FalsePositiveClass(1); c < failure.NumFalsePositiveClasses; c++ {
		fpClasses[c.String()] = m.Fleet.Monitor.ByFPClass[c]
	}

	patched := analysis.FromResult(enh.Patched)
	report := analysis.BuildReport(m.Input, &patched, analysis.ReportConfig{
		Devices:   *devices,
		Months:    m.Fleet.Scenario.Window.Hours() / 24 / 30,
		Seed:      *seed,
		Catalogue: core.Catalogue(),
		TIMP: &analysis.TIMPSummary{
			Probations:  opt.Result.Probations,
			Cost:        opt.Result.Cost,
			DefaultCost: opt.Result.DefaultCost,
			Improvement: opt.Result.Improvement(),
			Samples:     opt.Samples,
		},
		Overhead:  &overhead,
		FPClasses: fpClasses,
		Recorded:  m.Fleet.Monitor.Recorded,
	})
	fmt.Print(report.Markdown(time.Since(start)))
}
