// Fleet study with a live collection pipeline: starts a TCP trace
// collector (the "backend server"), runs the measurement fleet with each
// shard uploading its compressed event batches over the network, and
// analyzes the centrally collected dataset — the full §2.2/§2.3
// architecture in one process.
//
//	go run ./examples/fleetstudy
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/analysis"
	"repro/internal/simnet"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	// Backend: the centralized dataset and its TCP collector.
	backend := trace.NewDataset()
	collector, err := trace.NewCollector("127.0.0.1:0", backend)
	if err != nil {
		log.Fatal(err)
	}
	defer collector.Close()
	fmt.Printf("collector listening on %s\n", collector.Addr())

	// Fleet: every worker shard batches, compresses and uploads its
	// devices' events when "WiFi" is available, like Android-MOD.
	scenario := cellrel.Scenario{
		Seed:       8,
		NumDevices: 1500,
		UploadAddr: collector.Addr(),
	}
	res, err := cellrel.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}
	batches, rx := collector.Stats()
	fmt.Printf("fleet done: %d devices, %d batches uploaded (~%d bytes), backend holds %d events\n",
		res.Population.Total, batches, rx, backend.Len())

	// Analysis runs on the *collected* dataset, proving the pipeline
	// delivered everything.
	in := analysis.Input{
		Dataset:     backend,
		Population:  res.Population,
		Transitions: &res.Transitions,
		Dwell:       &res.Dwell,
		Network:     res.Network,
	}
	groups := analysis.ByISP(in)
	fmt.Println("\nISP landscape from the collected dataset (Figures 12/13):")
	for _, g := range groups {
		fmt.Printf("  %-6s prevalence %5.1f%%, frequency %5.1f (devices %d)\n",
			g.Name, g.Prevalence*100, g.Frequency, g.Devices)
	}
	b := groups[simnet.ISPB]
	a := groups[simnet.ISPA]
	c := groups[simnet.ISPC]
	fmt.Printf("ordering B > A > C holds: %v (paper: 27.1%% / 20.1%% / 14.7%%)\n",
		b.Prevalence > a.Prevalence && a.Prevalence > c.Prevalence)

	rank := analysis.Figure11(in, 50)
	fmt.Printf("\nBS failure ranking (Figure 11): %s", analysis.RenderRanking(rank))

	// Persist for cellanalyze.
	if err := backend.SaveFile("fleetstudy-dataset.gob.gz"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsaved fleetstudy-dataset.gob.gz")
}
