// Stall-recovery walkthrough: watch one Data_Stall episode flow through
// the whole machinery — detector, prober, three-stage recovery engine —
// under vanilla Android's one-minute trigger and under the TIMP-optimized
// trigger; then fit the TIMP model to fleet data and re-derive the optimal
// probations the way §4.2 does.
//
//	go run ./examples/stallrecovery
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/android"
	"repro/internal/netprobe"
	"repro/internal/simclock"
)

// episode simulates one stall that would self-heal after autoFix, with a
// first-stage recovery op that always works, and returns how long the
// outage lasted under the given trigger.
func episode(trigger android.Trigger, autoFix time.Duration) (time.Duration, android.ResolvedBy) {
	clock := simclock.NewScheduler()
	host := netprobe.NewSimHost(clock)

	var res android.Resolution
	exec := execFunc(func(op android.RecoveryOp, done func(bool)) {
		clock.After(time.Second, func() {
			host.SetCondition(netprobe.Healthy) // the cleanup works
			done(true)
		})
	})
	engine := android.NewRecoveryEngine(clock, trigger, exec, func(r android.Resolution) { res = r })

	detector := android.NewStallDetector(clock, android.DefaultStallDetectorConfig(), nil)
	detector.OnStall = func() { engine.Start() }

	// The stall begins: outbound TCP goes unanswered.
	host.SetCondition(netprobe.NetworkDown)
	detector.Start()
	detector.RecordTx(12)
	// Natural recovery, if the engine doesn't get there first: inbound
	// traffic resumes, which both clears the kernel statistic and tells
	// the engine the episode is over.
	clock.After(autoFix, func() {
		if host.ConditionNow() != netprobe.Healthy {
			host.SetCondition(netprobe.Healthy)
			detector.RecordRx(5)
			engine.NotifyResolved(android.ResolvedAuto)
		}
	})
	clock.Run(time.Hour)
	return res.Duration, res.By
}

type execFunc func(android.RecoveryOp, func(bool))

func (f execFunc) Execute(op android.RecoveryOp, done func(bool)) { f(op, done) }

func main() {
	log.SetFlags(0)

	fmt.Println("One stall that would naturally heal after 10 minutes:")
	for _, tc := range []struct {
		name    string
		trigger android.Trigger
	}{
		{"vanilla (60s probations)", android.DefaultFixedTrigger},
		{"TIMP (21s, 6s, 16s)", android.PaperTIMPTrigger},
	} {
		d, by := episode(tc.trigger, 10*time.Minute)
		fmt.Printf("  %-26s outage %v (resolved by %v)\n", tc.name, d, by)
	}
	fmt.Println("  (the TIMP trigger executes the cleanup ~39 s sooner)")

	fmt.Println("\nA stall that self-heals in 8 s never even escalates:")
	for _, trigger := range []android.Trigger{android.DefaultFixedTrigger, android.PaperTIMPTrigger} {
		d, by := episode(trigger, 8*time.Second)
		if by == android.ResolvedNone {
			fmt.Printf("  %-8s inbound traffic resumed before detection; no recovery needed\n", trigger.Name())
		} else {
			fmt.Printf("  %-8s outage %v (resolved by %v)\n", trigger.Name(), d, by)
		}
	}

	// --- Re-derive the optimal probations from fleet data ----------------
	fmt.Println("\nFitting TIMP to fleet-measured self-recovery times (§4.2):")
	m, err := cellrel.Study{Scenario: cellrel.Scenario{Seed: 5, NumDevices: 1500}}.Measure()
	if err != nil {
		log.Fatal(err)
	}
	opt, err := cellrel.OptimizeRecovery(m, 99)
	if err != nil {
		log.Fatal(err)
	}
	p := opt.Result.Probations
	fmt.Printf("  %d samples -> optimal probations %.1fs, %.1fs, %.1fs (paper: 21s, 6s, 16s)\n",
		opt.Samples, p[0], p[1], p[2])
	fmt.Printf("  expected recovery cost %.1fs vs %.1fs for the one-minute default (%.0f%% better)\n",
		opt.Result.Cost, opt.Result.DefaultCost, opt.Result.Improvement()*100)
}
