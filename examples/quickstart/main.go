// Quickstart: run a small measurement fleet, print the headline statistics
// of the paper's §3.1, and show the top failure causes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/analysis"
)

func main() {
	log.SetFlags(0)

	// A 1000-device fleet over the paper's 8-month window. The simulator
	// stands in for the 70M-phone Android-MOD deployment; every device
	// runs the real connection state machine, stall detector, prober and
	// recovery engine.
	study := cellrel.Study{Scenario: cellrel.Scenario{Seed: 42, NumDevices: 1000}}
	m, err := study.Measure()
	if err != nil {
		log.Fatal(err)
	}

	f3 := analysis.Figure3(m.Input)
	f4 := analysis.Figure4(m.Input)
	fmt.Printf("collected %d cellular failures from %d devices\n",
		m.Fleet.Dataset.Len(), m.Fleet.Population.Total)
	fmt.Printf("prevalence: %.1f%% of phones had at least one failure (paper: 23%%)\n",
		(1-f3.ZeroShare)*100)
	fmt.Printf("frequency:  %.1f failures per phone (paper: 33)\n", f3.Mean)
	fmt.Printf("durations:  mean %v, %.1f%% under 30 s (paper: 70.8%%)\n",
		f4.Mean, f4.Under30*100)

	fmt.Println("\ntop Data_Setup_Error causes (Table 2):")
	fmt.Print(analysis.RenderTable2(analysis.Table2(m.Input, 5)))

	fmt.Println("\nmonitoring overhead (paper budget: <2% CPU within failures):")
	o := m.Fleet.Overhead
	fmt.Printf("  mean CPU %.4f%%, max storage %d B, max network %d B\n",
		o.MeanCPUUtilization*100, o.MaxStorageBytes, o.MaxNetworkBytes)

	fmt.Println("\nguidance derived from the data (§4.1):")
	fmt.Print(cellrel.RenderGuidelines(cellrel.Guidelines(m.Input)))
}
