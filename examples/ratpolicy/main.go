// RAT-policy comparison: the paper's motivating scenario. A 5G phone
// repeatedly chooses between a strong 4G cell and a weak 5G cell; Android
// 10's blind 5G preference racks up failures while the paper's
// stability-compatible policy avoids them. The example then runs both
// policies fleet-wide and reports the Figure 19/20 effect.
//
//	go run ./examples/ratpolicy
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/analysis"
	"repro/internal/android"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

func main() {
	log.SetFlags(0)

	// --- Micro view: one decision, three policies -----------------------
	fmt.Println("One decision: strong 4G (level-4) vs weak 5G (level-0):")
	options := []android.RATOption{
		{RAT: telephony.RAT4G, Level: telephony.Level4},
		{RAT: telephony.RAT5G, Level: telephony.Level0},
	}
	current := options[0] // currently camped on the strong 4G cell
	risk := func(o android.RATOption) float64 {
		h := simnet.LevelHazard(o.Level)
		if o.RAT == telephony.RAT5G {
			h *= simnet.ContentionFactor[telephony.RAT5G]
		}
		return h
	}
	policies := []android.RATPolicy{
		android.Android9Policy{},
		android.Android10Policy{},
		android.StabilityCompatiblePolicy{Risk: risk},
	}
	for _, p := range policies {
		pick := options[p.Select(&current, options)]
		fmt.Printf("  %-22s -> %v %v (failure risk %.2f)\n", p.Name(), pick.RAT, pick.Level, risk(pick))
	}
	fmt.Println("  (Android 10 takes the weak 5G cell — the paper's root cause for 5G-phone failures)")

	// --- Dual connectivity ----------------------------------------------
	dual := android.DualConnectivity{Enabled: true}
	base := cellrel.DefaultTIMPOptions() // placeholder to show import; not used below
	_ = base
	fmt.Printf("\n4G/5G dual connectivity shortens the transition window: 8s -> %v\n",
		dual.TransitionWindow(8e9, telephony.RAT4G, telephony.RAT5G))

	// --- Fleet view: Figures 19/20 --------------------------------------
	fmt.Println("\nFleet A/B (vanilla vs stability-compatible + dual connectivity + TIMP):")
	m, err := cellrel.Study{Scenario: cellrel.Scenario{Seed: 11, NumDevices: 2000}}.Measure()
	if err != nil {
		log.Fatal(err)
	}
	enh, err := cellrel.EvaluateEnhancements(m, cellrel.PaperTIMPTrigger)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cellrel.RenderEnhancement(enh.Report))

	vg, _ := analysis.By5G(m.Input)
	pg, _ := analysis.By5G(cellrel.FromResult(enh.Patched))
	fmt.Printf("\n5G phones: %.1f -> %.1f failures per device over the window\n",
		vg.Frequency, pg.Frequency)
}
