// Outage injection: schedule a week-long infrastructure failure in the
// urban region mid-study and watch it surface as a correlated spike in the
// weekly failure time series — the §3.1 "BSes long neglected and in
// disrepair" scenario, made reproducible.
//
//	go run ./examples/outage
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/fleet"
	"repro/internal/geo"
)

func main() {
	log.SetFlags(0)

	scenario := fleet.Scenario{
		Seed:       21,
		NumDevices: 1200,
		Outages: []fleet.Outage{{
			Region:            geo.Urban,
			Start:             100 * 24 * time.Hour, // ~week 15
			Window:            7 * 24 * time.Hour,
			EpisodesPerDevice: 5,
		}},
	}
	res, err := fleet.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}
	in := analysis.FromResult(res)
	series := analysis.TimeSeries(in, 7*24*time.Hour)
	fmt.Printf("weekly failures with an injected urban outage (spike index %.1f):\n",
		analysis.SpikeIndex(series))
	maxT := 0
	for _, b := range series {
		if b.Total > maxT {
			maxT = b.Total
		}
	}
	for i, b := range series {
		bars := 0
		if maxT > 0 {
			bars = b.Total * 44 / maxT
		}
		marker := ""
		if b.Start >= 98*24*time.Hour && b.Start < 108*24*time.Hour {
			marker = "  <- outage window"
		}
		fmt.Printf("week %2d |%-44s| %5d%s\n", i+1, strings.Repeat("#", bars), b.Total, marker)
	}

	regions := analysis.ByRegion(in)
	fmt.Println("\nper-region landscape:")
	for _, r := range regions {
		fmt.Printf("  %-13s events %6d  mean duration %8.1fs  max %v\n",
			r.Region, r.Events, r.MeanDuration.Seconds(), r.MaxDuration.Round(time.Second))
	}
	fmt.Println("\n(remote failures are few but last orders of magnitude longer — the")
	fmt.Println(" paper's 25.5-hour maximum comes from exactly this neglected tail)")
}
