// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
//
// Each experiment benchmark reports the paper-relevant metric via
// b.ReportMetric alongside the usual ns/op of regenerating it; the fleet
// datasets are simulated once per process and shared.
//
//	go test -bench=. -benchmem
package cellrel

import (
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/android"
	"repro/internal/anneal"
	"repro/internal/failure"
	"repro/internal/fleet"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/telephony"
	"repro/internal/timp"
	"repro/internal/trace"
)

var (
	benchOnce    sync.Once
	benchVanilla *fleet.Result
	benchPatched *fleet.Result
	benchIn      analysis.Input
	benchPatIn   analysis.Input
)

const benchDevices = 3000

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		base := fleet.Scenario{Seed: 7, NumDevices: benchDevices, Workers: 8}
		var err error
		benchVanilla, err = fleet.Run(base)
		if err != nil {
			panic(err)
		}
		benchPatched, err = fleet.Run(base.Patched(android.PaperTIMPTrigger))
		if err != nil {
			panic(err)
		}
		benchIn = analysis.FromResult(benchVanilla)
		benchPatIn = analysis.FromResult(benchPatched)
	})
	b.ResetTimer()
}

// --- Tables ---------------------------------------------------------------

// BenchmarkTable1ModelCatalogue regenerates Table 1 (per-model prevalence
// and frequency) and reports the fleet-weighted prevalence.
func BenchmarkTable1ModelCatalogue(b *testing.B) {
	benchSetup(b)
	var rows []analysis.ModelRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Table1(benchIn, Catalogue())
	}
	var prev float64
	for _, r := range rows {
		prev += r.Prevalence * float64(r.Devices)
	}
	b.ReportMetric(prev/float64(benchVanilla.Population.Total)*100, "prevalence_%")
}

// BenchmarkTable2ErrorCodes regenerates Table 2 and reports the top-10
// share (paper: 46.7%).
func BenchmarkTable2ErrorCodes(b *testing.B) {
	benchSetup(b)
	var rows []analysis.CauseRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Table2(benchIn, 10)
	}
	var share float64
	for _, r := range rows {
		share += r.Share
	}
	b.ReportMetric(share*100, "top10_share_%")
}

// --- Figures ----------------------------------------------------------------

// BenchmarkFigure2Prevalence regenerates the per-model prevalence bars.
func BenchmarkFigure2Prevalence(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		_ = analysis.Table1(benchIn, Catalogue())
	}
}

// BenchmarkFigure3FailuresPerPhone reports the mean failures per phone
// (paper: 33).
func BenchmarkFigure3FailuresPerPhone(b *testing.B) {
	benchSetup(b)
	var f analysis.FailuresPerPhone
	for i := 0; i < b.N; i++ {
		f = analysis.Figure3(benchIn)
	}
	b.ReportMetric(f.Mean, "failures/phone")
	b.ReportMetric(f.ZeroShare*100, "failure_free_%")
}

// BenchmarkFigure4Duration reports the share of failures under 30 s
// (paper: 70.8%).
func BenchmarkFigure4Duration(b *testing.B) {
	benchSetup(b)
	var d analysis.DurationStats
	for i := 0; i < b.N; i++ {
		d = analysis.Figure4(benchIn)
	}
	b.ReportMetric(d.Under30*100, "under30s_%")
	b.ReportMetric(d.Mean.Seconds(), "mean_s")
}

// BenchmarkFigure5Frequency regenerates the per-model frequency bars.
func BenchmarkFigure5Frequency(b *testing.B) {
	benchSetup(b)
	var rows []analysis.ModelRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Table1(benchIn, Catalogue())
	}
	var freq float64
	for _, r := range rows {
		freq += r.Frequency * float64(r.Devices)
	}
	b.ReportMetric(freq/float64(benchVanilla.Population.Total), "failures/phone")
}

// BenchmarkFigure6And7FiveG reports the 5G/non-5G frequency ratio
// (paper: 5G clearly higher).
func BenchmarkFigure6And7FiveG(b *testing.B) {
	benchSetup(b)
	var fiveG, non5G analysis.GroupStats
	for i := 0; i < b.N; i++ {
		fiveG, non5G = analysis.By5G(benchIn)
	}
	b.ReportMetric(fiveG.Frequency/non5G.Frequency, "5g_freq_ratio")
}

// BenchmarkFigure8And9AndroidVersion reports the Android 10/9 frequency
// ratio (paper: 10 clearly higher).
func BenchmarkFigure8And9AndroidVersion(b *testing.B) {
	benchSetup(b)
	var a9, a10 analysis.GroupStats
	for i := 0; i < b.N; i++ {
		a9, a10 = analysis.ByAndroidVersion(benchIn)
	}
	b.ReportMetric(a10.Frequency/a9.Frequency, "a10_freq_ratio")
}

// BenchmarkFigure10StallAutoFix reports the 10-second self-fix fraction
// (paper: 60%).
func BenchmarkFigure10StallAutoFix(b *testing.B) {
	benchSetup(b)
	var f analysis.StallAutoFix
	for i := 0; i < b.N; i++ {
		f = analysis.Figure10(benchIn)
	}
	b.ReportMetric(f.Under10*100, "fixed_in_10s_%")
	b.ReportMetric(f.FirstOpFixRate*100, "op1_fix_%")
}

// BenchmarkFigure11BSRanking reports the fitted Zipf exponent
// (paper: a = 0.82 at 5.3M BSes; steeper at simulation scale).
func BenchmarkFigure11BSRanking(b *testing.B) {
	benchSetup(b)
	var r analysis.BSRanking
	for i := 0; i < b.N; i++ {
		r = analysis.Figure11(benchIn, 100)
	}
	b.ReportMetric(r.Fit.A, "zipf_a")
}

// BenchmarkFigure12And13ISP reports ISP-B's prevalence lead over ISP-C
// (paper: 27.1% vs 14.7%).
func BenchmarkFigure12And13ISP(b *testing.B) {
	benchSetup(b)
	var g [3]analysis.GroupStats
	for i := 0; i < b.N; i++ {
		g = analysis.ByISP(benchIn)
	}
	b.ReportMetric(g[1].Prevalence/g[2].Prevalence, "B_over_C_prevalence")
}

// BenchmarkFigure14RAT reports 3G's failure-rate discount versus 4G
// (paper: 3G lowest).
func BenchmarkFigure14RAT(b *testing.B) {
	benchSetup(b)
	var rows []analysis.RATPrevalence
	for i := 0; i < b.N; i++ {
		rows = analysis.Figure14(benchIn)
	}
	byRAT := map[telephony.RAT]float64{}
	for _, r := range rows {
		byRAT[r.RAT] = r.Prevalence
	}
	b.ReportMetric(byRAT[telephony.RAT3G]/byRAT[telephony.RAT4G], "3g_over_4g_rate")
}

// BenchmarkFigure15SignalLevel reports the level-5 anomaly magnitude:
// normalized prevalence at level 5 over level 4 (paper: >1).
func BenchmarkFigure15SignalLevel(b *testing.B) {
	benchSetup(b)
	var levels [telephony.NumSignalLevels]analysis.LevelPrevalence
	for i := 0; i < b.N; i++ {
		levels = analysis.Figure15(benchIn)
	}
	b.ReportMetric(levels[5].Normalized/levels[4].Normalized, "lvl5_over_lvl4")
}

// BenchmarkFigure16RATSignal regenerates the per-RAT signal-level panels.
func BenchmarkFigure16RATSignal(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		_ = analysis.Figure16(benchIn, telephony.RAT4G)
		_ = analysis.Figure16(benchIn, telephony.RAT5G)
	}
}

// BenchmarkFigure17Transitions regenerates all six transition panels and
// reports the worst 4G→5G increase (paper: +0.37 into level 0).
func BenchmarkFigure17Transitions(b *testing.B) {
	benchSetup(b)
	var panel analysis.TransitionIncrease
	for i := 0; i < b.N; i++ {
		for _, pair := range analysis.Figure17Pairs() {
			p := analysis.Figure17(benchIn, pair[0], pair[1])
			if pair[0] == telephony.RAT4G && pair[1] == telephony.RAT5G {
				panel = p
			}
		}
	}
	worst := 0.0
	for i := 0; i < telephony.NumSignalLevels; i++ {
		if panel.Observed[i][0] && panel.Increase[i][0] > worst {
			worst = panel.Increase[i][0]
		}
	}
	b.ReportMetric(worst, "worst_4g_to_5g_lvl0")
}

// BenchmarkTIMPOptimization fits the TIMP model to the measured stall
// self-recovery times and anneals the probation triple (Figure 18/Eq. 1).
func BenchmarkTIMPOptimization(b *testing.B) {
	benchSetup(b)
	var samples []float64
	benchIn.Dataset.Each(func(e *failure.Event) {
		if e.Kind == failure.DataStall && e.AutoFixTime > 0 {
			samples = append(samples, e.AutoFixTime.Seconds())
		}
	})
	b.ResetTimer()
	var res timp.OptimizeResult
	for i := 0; i < b.N; i++ {
		model, err := timp.New(samples, timp.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		res = model.Optimize(rng.New(int64(i)), anneal.Config{Iterations: 8000, Restarts: 2})
	}
	b.ReportMetric(res.Probations[0], "pro0_s")
	b.ReportMetric(res.Improvement()*100, "improvement_%")
}

// BenchmarkFigure19And20RATEnhancement reports the 5G failure-frequency
// reduction from the stability-compatible policy (paper: −40.3%).
func BenchmarkFigure19And20RATEnhancement(b *testing.B) {
	benchSetup(b)
	var rep analysis.EnhancementReport
	for i := 0; i < b.N; i++ {
		rep = analysis.CompareEnhancement(benchIn, benchPatIn)
	}
	b.ReportMetric(rep.FiveGFrequencyChange*100, "5g_freq_change_%")
	b.ReportMetric(rep.FiveGPrevalenceChange*100, "5g_prev_change_%")
}

// BenchmarkFigure21RecoveryEnhancement reports the Data_Stall duration
// reduction from the TIMP trigger (paper: −38%).
func BenchmarkFigure21RecoveryEnhancement(b *testing.B) {
	benchSetup(b)
	var rep analysis.EnhancementReport
	for i := 0; i < b.N; i++ {
		rep = analysis.CompareEnhancement(benchIn, benchPatIn)
	}
	b.ReportMetric(rep.StallDurationChange*100, "stall_dur_change_%")
	b.ReportMetric(rep.TotalDurationChange*100, "total_dur_change_%")
}

// BenchmarkMonitorOverhead reports the monitoring CPU utilization within
// failures (paper budget: <2%).
func BenchmarkMonitorOverhead(b *testing.B) {
	benchSetup(b)
	var rep analysis.OverheadReport
	for i := 0; i < b.N; i++ {
		o := benchVanilla.Overhead
		rep = analysis.CheckOverhead(o.MeanCPUUtilization, o.MaxCPUUtilization,
			o.MaxMemoryBytes, o.MaxStorageBytes, o.MaxNetworkBytes, 8)
	}
	b.ReportMetric(rep.MeanCPUUtilization*100, "mean_cpu_%")
	b.ReportMetric(rep.MaxCPUUtilization*100, "max_cpu_%")
}

// --- Simulation throughput ---------------------------------------------------

// BenchmarkFleetSimulation measures raw simulation throughput: one
// device-month of virtual time per op.
func BenchmarkFleetSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.Run(fleet.Scenario{
			Seed: int64(i), NumDevices: 200, Workers: 4,
			Window: 30 * 24 * time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// --- Ablations ----------------------------------------------------------------

// BenchmarkAblationProbation sweeps probation triples through the fitted
// TIMP model, reporting the expected recovery cost for the vanilla
// one-minute trigger, the paper's triple, and zero probations.
func BenchmarkAblationProbation(b *testing.B) {
	benchSetup(b)
	var samples []float64
	benchIn.Dataset.Each(func(e *failure.Event) {
		if e.Kind == failure.DataStall && e.AutoFixTime > 0 {
			samples = append(samples, e.AutoFixTime.Seconds())
		}
	})
	model, err := timp.New(samples, timp.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var def, paper, zero float64
	for i := 0; i < b.N; i++ {
		def = model.ExpectedCost(timp.Probations{60, 60, 60})
		paper = model.ExpectedCost(timp.Probations{21, 6, 16})
		zero = model.ExpectedCost(timp.Probations{0, 0, 0})
	}
	b.ReportMetric(def, "cost_60s_s")
	b.ReportMetric(paper, "cost_paper_s")
	b.ReportMetric(zero, "cost_zero_s")
}

// ablationFleet runs a small fleet variant and returns 5G failures per
// 5G device.
func ablationFleet(b *testing.B, mutate func(*fleet.Scenario)) float64 {
	b.Helper()
	s := fleet.Scenario{Seed: 77, NumDevices: 1200, Workers: 8}
	mutate(&s)
	res, err := fleet.Run(s)
	if err != nil {
		b.Fatal(err)
	}
	events := 0
	res.Dataset.Each(func(e *failure.Event) {
		if e.FiveGCapable {
			events++
		}
	})
	return float64(events) / float64(res.Population.FiveG)
}

// BenchmarkAblationRATPolicy compares vanilla, stability-compatible, and
// never-5G policies on 5G-device failure frequency.
func BenchmarkAblationRATPolicy(b *testing.B) {
	var vanilla, stability, never float64
	for i := 0; i < b.N; i++ {
		vanilla = ablationFleet(b, func(s *fleet.Scenario) {})
		stability = ablationFleet(b, func(s *fleet.Scenario) {
			s.Policy = fleet.PolicyStability
			s.DualConnectivity = true
		})
		never = ablationFleet(b, func(s *fleet.Scenario) { s.Policy = fleet.PolicyNever5G })
	}
	b.ReportMetric(vanilla, "vanilla_5g_freq")
	b.ReportMetric(stability, "stability_5g_freq")
	b.ReportMetric(never, "never5g_5g_freq")
}

// BenchmarkAblationDualConnectivity isolates the 4G/5G dual-connectivity
// contribution within the stability policy.
func BenchmarkAblationDualConnectivity(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		without = ablationFleet(b, func(s *fleet.Scenario) { s.Policy = fleet.PolicyStability })
		with = ablationFleet(b, func(s *fleet.Scenario) {
			s.Policy = fleet.PolicyStability
			s.DualConnectivity = true
		})
	}
	b.ReportMetric(without, "no_dual_5g_freq")
	b.ReportMetric(with, "dual_5g_freq")
}

// BenchmarkAblationFalsePositiveFilter quantifies dataset pollution when
// the §2.2 filters are disabled.
func BenchmarkAblationFalsePositiveFilter(b *testing.B) {
	run := func(disable bool) int {
		s := fleet.Scenario{Seed: 99, NumDevices: 800, Workers: 8, DisableFPFilter: disable}
		res, err := fleet.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		return res.Dataset.Len()
	}
	var filtered, unfiltered int
	for i := 0; i < b.N; i++ {
		filtered = run(false)
		unfiltered = run(true)
	}
	b.ReportMetric(float64(filtered), "events_filtered")
	b.ReportMetric(float64(unfiltered), "events_unfiltered")
	b.ReportMetric(float64(unfiltered-filtered)/float64(unfiltered)*100, "pollution_%")
}

// BenchmarkAblationProbeBackoff compares probing with and without the
// multiplicative timeout backoff on a long stall (rounds issued).
func BenchmarkAblationProbeBackoff(b *testing.B) {
	benchSetup(b)
	legacy := 0
	benchIn.Dataset.Each(func(e *failure.Event) {
		if e.Kind == failure.DataStall && e.Duration > 1200*time.Second {
			legacy++
		}
	})
	b.ReportMetric(float64(benchVanilla.Monitor.ProbeRounds), "probe_rounds")
	b.ReportMetric(float64(benchVanilla.Monitor.LegacyFallbacks), "legacy_fallbacks")
	for i := 0; i < b.N; i++ {
		_ = analysis.Figure10(benchIn)
	}
}

// --- Infrastructure throughput ------------------------------------------------

// BenchmarkCollectorThroughput measures end-to-end events/sec through the
// TCP trace pipeline (encode, compress, upload, ack, decode, store).
func BenchmarkCollectorThroughput(b *testing.B) {
	benchSetup(b)
	events := benchVanilla.Dataset.Events()
	if len(events) > 20000 {
		events = events[:20000]
	}
	ds := trace.NewDataset()
	col, err := trace.NewCollector("127.0.0.1:0", ds)
	if err != nil {
		b.Fatal(err)
	}
	defer col.Close()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		up := trace.NewUploader(col.Addr(), uint64(i))
		up.FlushThreshold = 2048
		up.SetWiFi(true)
		for _, e := range events {
			up.Record(e)
		}
		if err := up.Flush(); err != nil {
			b.Fatal(err)
		}
		total += len(events)
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkBatchEncode measures the wire encoder alone.
func BenchmarkBatchEncode(b *testing.B) {
	benchSetup(b)
	events := benchVanilla.Dataset.Events()
	if len(events) > 4096 {
		events = events[:4096]
	}
	batch := &trace.Batch{DeviceID: 1, Events: events}
	b.ResetTimer()
	b.ReportAllocs()
	var sink discard
	bytes := 0
	for i := 0; i < b.N; i++ {
		n, err := trace.WriteBatch(&sink, batch)
		if err != nil {
			b.Fatal(err)
		}
		bytes = n
	}
	b.ReportMetric(float64(bytes)/float64(len(events)), "wire_B/event")
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkP2Sketch compares the streaming quantile sketch against exact
// ECDF quantiles on the measured duration stream.
func BenchmarkP2Sketch(b *testing.B) {
	benchSetup(b)
	var xs []float64
	benchIn.Dataset.Each(func(e *failure.Event) { xs = append(xs, e.Duration.Seconds()) })
	b.ResetTimer()
	var est float64
	for i := 0; i < b.N; i++ {
		qs, err := stats.NewQuantileSet(0.5, 0.9, 0.99)
		if err != nil {
			b.Fatal(err)
		}
		for _, x := range xs {
			qs.Add(x)
		}
		est = qs.Quantiles()[0]
	}
	b.StopTimer()
	exact := stats.NewECDF(xs).Quantile(0.5)
	b.ReportMetric(est, "p50_est_s")
	b.ReportMetric(exact, "p50_exact_s")
}

// BenchmarkClaimsScorecard regenerates the full claim scorecard.
func BenchmarkClaimsScorecard(b *testing.B) {
	benchSetup(b)
	passed := 0
	for i := 0; i < b.N; i++ {
		passed = 0
		for _, r := range analysis.CheckClaims(benchIn) {
			if r.Pass {
				passed++
			}
		}
	}
	b.ReportMetric(float64(passed), "claims_pass")
}
