// Package cellrel is a Go reproduction of "A Nationwide Study on Cellular
// Reliability: Measurement, Analysis, and Enhancements" (SIGCOMM 2021).
//
// The library rebuilds every system the paper describes or depends on:
//
//   - the Android-like cellular connection management internals — the
//     data-connection state machine, RAT selection policies (Android 9,
//     Android 10's blind 5G preference, and the paper's
//     stability-compatible enhancement), the Data_Stall detector, and the
//     three-stage progressive recovery engine with pluggable probation
//     triggers;
//   - Android-MOD, the monitoring infrastructure: failure capture with
//     in-situ radio context, false-positive filtering, and the
//     ICMP/DNS probing component that measures stall durations to within
//     five seconds;
//   - a simulated nationwide radio environment (three ISPs, Zipf-loaded
//     multi-RAT base stations, signal model, transport-hub interference)
//     and a discrete-event fleet of Table-1 phones standing in for the
//     paper's 70M-device deployment;
//   - the trace pipeline (gzip+gob batches over TCP to a collector);
//   - the analysis suite that recomputes every table and figure; and
//   - the enhancements: the stability-compatible RAT transition policy
//     with 4G/5G dual connectivity, and the TIMP (time-inhomogeneous
//     Markov process) recovery model optimized with simulated annealing.
//
// Quick start:
//
//	study := cellrel.Study{Scenario: cellrel.Scenario{Seed: 1, NumDevices: 2000}}
//	m, _ := study.Measure()
//	opt, _ := cellrel.OptimizeRecovery(m, 2)
//	enh, _ := cellrel.EvaluateEnhancements(m, opt.Trigger)
//	fmt.Println(cellrel.RenderEnhancement(enh.Report))
package cellrel

import (
	"repro/internal/analysis"
	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/timp"
	"repro/internal/trace"
)

// Scenario configures a fleet run; see fleet.Scenario for every knob.
type Scenario = fleet.Scenario

// Result is a completed fleet run.
type Result = fleet.Result

// Study runs the reproduction pipeline.
type Study = core.Study

// MeasurementResult is the §3 measurement outcome.
type MeasurementResult = core.MeasurementResult

// RecoveryOptimization is the fitted-and-annealed TIMP outcome.
type RecoveryOptimization = core.RecoveryOptimization

// EnhancementResult is the §4.3 A/B evaluation outcome.
type EnhancementResult = core.EnhancementResult

// EnhancementReport summarizes the patched-vs-vanilla comparison.
type EnhancementReport = analysis.EnhancementReport

// Input is an analysis-ready view of a fleet run.
type Input = analysis.Input

// Dataset stores collected failure events.
type Dataset = trace.Dataset

// ProfileTrigger is a per-stage probation trigger for the recovery engine.
type ProfileTrigger = android.ProfileTrigger

// Policy modes for Scenario.Policy.
const (
	PolicyVanilla   = fleet.PolicyVanilla
	PolicyStability = fleet.PolicyStability
	PolicyNever5G   = fleet.PolicyNever5G
)

// EightMonths is the paper's measurement window.
const EightMonths = fleet.EightMonths

// PaperTIMPTrigger is the probation profile the paper deployed:
// 21 s, 6 s, 16 s.
var PaperTIMPTrigger = android.PaperTIMPTrigger

// DefaultFixedTrigger is vanilla Android's one-minute trigger.
var DefaultFixedTrigger = android.DefaultFixedTrigger

// Run executes a fleet scenario (measurement only).
func Run(s Scenario) (*Result, error) { return fleet.Run(s) }

// FromResult adapts a fleet result for analysis.
func FromResult(res *Result) Input { return analysis.FromResult(res) }

// OptimizeRecovery fits TIMP to measured stall self-recovery times and
// anneals the probation triple (§4.2).
func OptimizeRecovery(m *MeasurementResult, seed int64) (*RecoveryOptimization, error) {
	return core.OptimizeRecovery(m, seed)
}

// EvaluateEnhancements runs the patched fleet and compares (§4.3).
func EvaluateEnhancements(m *MeasurementResult, trigger ProfileTrigger) (*EnhancementResult, error) {
	return core.EvaluateEnhancements(m, trigger)
}

// FullPipeline is measure → optimize → evaluate in one call.
func FullPipeline(s Scenario) (*MeasurementResult, *RecoveryOptimization, *EnhancementResult, error) {
	return core.FullPipeline(s)
}

// Catalogue returns the Table-1 phone model catalogue.
func Catalogue() []analysis.ModelCatalogueEntry { return core.Catalogue() }

// RenderEnhancement formats an enhancement report for a terminal.
func RenderEnhancement(rep EnhancementReport) string { return analysis.RenderEnhancement(rep) }

// Guidelines derives the paper's §4.1 per-stakeholder recommendations from
// a measured dataset, each backed by the dataset's own evidence.
func Guidelines(in Input) []analysis.Guideline { return analysis.Guidelines(in) }

// RenderGuidelines formats recommendations for a terminal.
func RenderGuidelines(gs []analysis.Guideline) string { return analysis.RenderGuidelines(gs) }

// DefaultTIMPOptions returns the recovery-model calibration.
func DefaultTIMPOptions() timp.Options { return timp.DefaultOptions() }

// CheckClaims verifies every checkable paper claim against a dataset and
// returns the per-claim scorecard.
func CheckClaims(in Input) []analysis.ClaimResult { return analysis.CheckClaims(in) }

// RenderClaims formats a claim scorecard for a terminal.
func RenderClaims(rs []analysis.ClaimResult) string { return analysis.RenderClaims(rs) }

// BuildReport assembles the full paper-vs-measured report.
func BuildReport(vanilla Input, patched *Input, cfg analysis.ReportConfig) *analysis.Report {
	return analysis.BuildReport(vanilla, patched, cfg)
}
