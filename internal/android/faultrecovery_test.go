package android

import (
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/telephony"
)

// chaosRadio is a radio whose health can be toggled mid-test: while
// failing, every setup attempt completes with the configured cause.
type chaosRadio struct {
	clock   *simclock.Scheduler
	latency time.Duration
	failing bool
	cause   telephony.FailCause
	setups  int
}

func (r *chaosRadio) Setup(done func(SetupOutcome)) {
	r.setups++
	out := SetupOutcome{Success: true}
	if r.failing {
		out = SetupOutcome{Success: false, Cause: r.cause}
	}
	r.clock.After(r.latency, func() { done(out) })
}

func (r *chaosRadio) Teardown(done func()) {
	r.clock.After(r.latency, done)
}

// TestStateMachineRecoversFromEveryFaultClass is the Figure-1 invariant
// table: from every data-connection state, under every fault class the
// injection subsystem can produce, the machine must settle into a legal
// terminal state (Inactive or Active) within a bounded amount of virtual
// time, and once the fault clears a fresh setup must reach Active again.
// No combination may wedge the machine in Activating, Retrying, or
// Disconnect.
func TestStateMachineRecoversFromEveryFaultClass(t *testing.T) {
	// settleBound comfortably covers the full default retry schedule
	// (1+2+4+8+16s plus per-attempt latency) with slack.
	const settleBound = 5 * time.Minute

	type env struct {
		clock *simclock.Scheduler
		radio *chaosRadio
		dc    *DataConnection
	}

	// One driver per Figure-1 state, leaving the machine exactly there.
	states := []struct {
		name  string
		state DcState
		enter func(*env)
	}{
		{"Inactive", DcInactive, func(e *env) {}},
		{"Activating", DcActivating, func(e *env) {
			e.dc.RequestSetup()
		}},
		{"Retrying", DcRetrying, func(e *env) {
			e.radio.failing = true
			e.radio.cause = telephony.CauseNoService
			e.dc.RequestSetup()
			e.clock.Run(e.radio.latency) // first attempt fails, retry pending
			e.radio.failing = false
		}},
		{"Active", DcActive, func(e *env) {
			e.dc.RequestSetup()
			e.clock.RunAll()
		}},
		{"Disconnect", DcDisconnecting, func(e *env) {
			e.dc.RequestSetup()
			e.clock.RunAll()
			e.dc.Teardown()
		}},
	}

	// One perturbation per fault class, phrased as what the class does to
	// a device: blackouts and flaps kill service under an active
	// connection, setup storms fail every attempt with a protocol cause,
	// RSS degradation and RAT downgrades surface as signal loss, and stall
	// storms trigger the recovery engine's teardown/re-setup cycle.
	faults := []struct {
		name   string
		inject func(*env)
	}{
		{"bs-blackout", func(e *env) {
			e.radio.failing = true
			e.radio.cause = telephony.CauseNoService
			e.dc.ConnectionLost(telephony.CauseSignalLost)
		}},
		{"bs-flap", func(e *env) {
			// Two down/up cycles in quick succession.
			for i := 0; i < 2; i++ {
				e.radio.failing = true
				e.radio.cause = telephony.CauseNoService
				e.dc.ConnectionLost(telephony.CauseSignalLost)
				if e.dc.State() == DcInactive {
					e.dc.RequestSetup()
				}
				e.clock.Run(2 * e.radio.latency)
				e.radio.failing = false
				e.clock.Run(30 * time.Second)
			}
		}},
		{"rss-degrade", func(e *env) {
			e.dc.ConnectionLost(telephony.CauseSignalLost)
		}},
		{"setup-storm", func(e *env) {
			e.radio.failing = true
			e.radio.cause = telephony.CauseEMMAccessBarred
			e.dc.ConnectionLost(telephony.CauseEMMAccessBarred)
			if e.dc.State() == DcInactive {
				e.dc.RequestSetup()
			}
		}},
		{"rat-downgrade", func(e *env) {
			e.dc.ConnectionLost(telephony.CauseSignalLost)
			if e.dc.State() == DcInactive {
				e.dc.RequestSetup()
			}
		}},
		{"stall-storm", func(e *env) {
			// The recovery engine's cleanup: tear down, then re-establish.
			e.dc.Teardown()
			e.clock.Run(2 * e.radio.latency)
			if e.dc.State() == DcInactive {
				e.dc.RequestSetup()
			}
		}},
	}

	for _, st := range states {
		for _, f := range faults {
			t.Run(st.name+"/"+f.name, func(t *testing.T) {
				e := &env{clock: simclock.NewScheduler()}
				e.radio = &chaosRadio{clock: e.clock, latency: 200 * time.Millisecond}
				e.dc = NewDataConnection(e.clock, e.radio, DefaultDataConnectionConfig(), Hooks{})

				st.enter(e)
				if e.dc.State() != st.state {
					t.Fatalf("driver left machine in %v, want %v", e.dc.State(), st.state)
				}

				start := e.clock.Now()
				f.inject(e)
				e.clock.RunAll()

				// Invariant 1: the machine settles into a legal terminal
				// state — it never wedges mid-transition.
				switch e.dc.State() {
				case DcInactive, DcActive:
				default:
					t.Fatalf("machine wedged in %v after %s", e.dc.State(), f.name)
				}

				// Invariant 2: settling is bounded in virtual time.
				if settled := e.clock.Now() - start; settled > settleBound {
					t.Fatalf("took %v of virtual time to settle, bound is %v", settled, settleBound)
				}

				// Invariant 3: once the fault clears, a fresh setup must
				// reach Active — the fault left no residue.
				e.radio.failing = false
				if e.dc.State() == DcActive {
					e.dc.Teardown()
					e.clock.RunAll()
				}
				if err := e.dc.RequestSetup(); err != nil {
					t.Fatalf("post-fault RequestSetup rejected: %v", err)
				}
				e.clock.RunAll()
				if e.dc.State() != DcActive {
					t.Fatalf("post-fault recovery ended in %v, want Active", e.dc.State())
				}
			})
		}
	}
}
