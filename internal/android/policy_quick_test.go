package android

import (
	"testing"
	"testing/quick"

	"repro/internal/telephony"
)

// genOptions converts fuzz bytes into a non-empty, valid option list.
func genOptions(raw []byte) []RATOption {
	if len(raw) == 0 {
		raw = []byte{0}
	}
	opts := make([]RATOption, 0, len(raw))
	for _, b := range raw {
		opts = append(opts, RATOption{
			RAT:   telephony.AllRATs[int(b>>4)%len(telephony.AllRATs)],
			Level: telephony.SignalLevel(int(b) % int(telephony.NumSignalLevels)),
		})
	}
	return opts
}

// Property: every policy returns an in-range index for arbitrary inputs,
// with and without a current option.
func TestPoliciesTotalOnArbitraryOptions(t *testing.T) {
	risk := func(o RATOption) float64 {
		return float64(6-int(o.Level)) * float64(o.RAT.Generation())
	}
	policies := []RATPolicy{
		Android9Policy{},
		Android10Policy{},
		Never5GPolicy{},
		StabilityCompatiblePolicy{Risk: risk},
		StabilityCompatiblePolicy{Risk: func(RATOption) float64 { return 0 }}, // degenerate risk
	}
	f := func(raw []byte, curByte byte, haveCur bool) bool {
		opts := genOptions(raw)
		var cur *RATOption
		if haveCur {
			c := genOptions([]byte{curByte})[0]
			cur = &c
		}
		for _, p := range policies {
			idx := p.Select(cur, opts)
			if idx < 0 || idx >= len(opts) {
				t.Logf("policy %s returned %d for %d options", p.Name(), idx, len(opts))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Android 10 picks 5G whenever any 5G option exists.
func TestAndroid10Always5GWhenAvailable(t *testing.T) {
	p := Android10Policy{}
	f := func(raw []byte, lvl byte) bool {
		opts := genOptions(raw)
		opts = append(opts, RATOption{RAT: telephony.RAT5G, Level: telephony.SignalLevel(int(lvl) % 6)})
		return opts[p.Select(nil, opts)].RAT == telephony.RAT5G
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Never5G never selects 5G unless nothing else exists.
func TestNever5GProperty(t *testing.T) {
	p := Never5GPolicy{}
	f := func(raw []byte) bool {
		opts := genOptions(raw)
		pick := opts[p.Select(nil, opts)]
		if pick.RAT != telephony.RAT5G {
			return true
		}
		for _, o := range opts {
			if o.RAT != telephony.RAT5G {
				return false // a non-5G option existed but 5G was chosen
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the stability policy never moves from a usable current camp
// into a level-0 target when any alternative (including staying) exists.
func TestStabilityNeverIntoLevelZeroProperty(t *testing.T) {
	risk := func(o RATOption) float64 { return float64(6 - int(o.Level)) }
	p := StabilityCompatiblePolicy{Risk: risk}
	f := func(raw []byte) bool {
		opts := genOptions(raw)
		cur := RATOption{RAT: telephony.RAT4G, Level: telephony.Level3}
		opts = append(opts, cur) // staying is possible
		pick := opts[p.Select(&cur, opts)]
		return !(pick.Level == telephony.Level0 && !(pick.RAT == cur.RAT && pick.Level == cur.Level))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
