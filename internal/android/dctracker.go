package android

import (
	"fmt"
	"sort"

	"repro/internal/simclock"
	"repro/internal/telephony"
)

// RadioFactory creates the radio backend for one APN context. Real Android
// multiplexes PDP contexts over one modem; the simulator gives each APN a
// scripted radio.
type RadioFactory func(apn telephony.APN) Radio

// TrackerHooks observe all APN contexts. Nil fields are skipped.
type TrackerHooks struct {
	// OnStateChange fires on any APN connection's transition.
	OnStateChange func(apn telephony.APN, from, to DcState)
	// OnSetupError fires per failed attempt on any APN.
	OnSetupError func(apn telephony.APN, cause telephony.FailCause, attempt int)
	// OnConnected fires when an APN reaches Active.
	OnConnected func(apn telephony.APN)
	// OnAbandoned fires when an APN exhausts its retries.
	OnAbandoned func(apn telephony.APN, lastCause telephony.FailCause)
}

// DcTracker manages the per-APN data connections of one device, mirroring
// Android's DcTracker: the default internet APN, IMS, MMS and others each
// get their own connection state machine sharing the retry configuration.
type DcTracker struct {
	clock   *simclock.Scheduler
	factory RadioFactory
	cfg     DataConnectionConfig
	hooks   TrackerHooks

	conns map[telephony.APN]*DataConnection
}

// NewDcTracker builds an empty tracker.
func NewDcTracker(clock *simclock.Scheduler, factory RadioFactory, cfg DataConnectionConfig, hooks TrackerHooks) *DcTracker {
	if clock == nil || factory == nil {
		panic("android: nil clock or radio factory")
	}
	return &DcTracker{
		clock:   clock,
		factory: factory,
		cfg:     cfg,
		hooks:   hooks,
		conns:   make(map[telephony.APN]*DataConnection),
	}
}

// EnableAPN creates (if needed) and establishes the APN's connection.
func (t *DcTracker) EnableAPN(apn telephony.APN) error {
	dc, ok := t.conns[apn]
	if !ok {
		apn := apn
		dc = NewDataConnection(t.clock, t.factory(apn), t.cfg, Hooks{
			OnStateChange: func(from, to DcState) {
				if t.hooks.OnStateChange != nil {
					t.hooks.OnStateChange(apn, from, to)
				}
			},
			OnSetupError: func(cause telephony.FailCause, attempt int) {
				if t.hooks.OnSetupError != nil {
					t.hooks.OnSetupError(apn, cause, attempt)
				}
			},
			OnConnected: func() {
				if t.hooks.OnConnected != nil {
					t.hooks.OnConnected(apn)
				}
			},
			OnSetupAbandoned: func(cause telephony.FailCause) {
				if t.hooks.OnAbandoned != nil {
					t.hooks.OnAbandoned(apn, cause)
				}
			},
		})
		t.conns[apn] = dc
	}
	if dc.State() != DcInactive {
		return fmt.Errorf("android: APN %q already %v", apn, dc.State())
	}
	return dc.RequestSetup()
}

// DisableAPN tears the APN's connection down (no-op if unknown).
func (t *DcTracker) DisableAPN(apn telephony.APN) {
	if dc, ok := t.conns[apn]; ok {
		dc.Teardown()
	}
}

// Connection returns the APN's state machine, or nil if never enabled.
func (t *DcTracker) Connection(apn telephony.APN) *DataConnection { return t.conns[apn] }

// State returns the APN's connection state (Inactive if never enabled).
func (t *DcTracker) State(apn telephony.APN) DcState {
	if dc, ok := t.conns[apn]; ok {
		return dc.State()
	}
	return DcInactive
}

// ActiveAPNs lists APNs whose connection is Active, sorted for determinism.
func (t *DcTracker) ActiveAPNs() []telephony.APN {
	var out []telephony.APN
	for apn, dc := range t.conns {
		if dc.State() == DcActive {
			out = append(out, apn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AnyActive reports whether any APN carries data.
func (t *DcTracker) AnyActive() bool {
	for _, dc := range t.conns {
		if dc.State() == DcActive {
			return true
		}
	}
	return false
}

// TeardownAll disconnects every APN (e.g. airplane mode).
func (t *DcTracker) TeardownAll() {
	for _, dc := range t.conns {
		dc.Teardown()
	}
}

// LoseAll signals radio-level loss to every active APN (e.g. SIGNAL_LOST):
// all PDP contexts ride the same radio link.
func (t *DcTracker) LoseAll(cause telephony.FailCause) {
	for _, dc := range t.conns {
		dc.ConnectionLost(cause)
	}
}
