package android_test

import (
	"fmt"
	"time"

	"repro/internal/android"
	"repro/internal/simclock"
	"repro/internal/telephony"
)

// The paper's motivating decision: a strong 4G cell versus a weak 5G cell.
// Android 10 blindly takes the 5G; the stability-compatible policy does not.
func ExampleAndroid10Policy_Select() {
	options := []android.RATOption{
		{RAT: telephony.RAT4G, Level: telephony.Level4},
		{RAT: telephony.RAT5G, Level: telephony.Level0},
	}
	current := options[0]
	risk := func(o android.RATOption) float64 {
		return []float64{3.2, 2.1, 1.5, 1.1, 0.75, 0.55}[o.Level]
	}

	a10 := android.Android10Policy{}
	stable := android.StabilityCompatiblePolicy{Risk: risk}
	fmt.Println("android10 picks:", options[a10.Select(&current, options)].RAT)
	fmt.Println("stability picks:", options[stable.Select(&current, options)].RAT)
	// Output:
	// android10 picks: 5G
	// stability picks: 4G
}

// The three-stage recovery engine under vanilla Android's one-minute
// probations: a stall that never self-heals is fixed by the first-stage
// cleanup, one minute plus the operation's overhead after detection.
func ExampleRecoveryEngine() {
	clock := simclock.NewScheduler()
	exec := execFunc(func(op android.RecoveryOp, done func(bool)) {
		clock.After(500*time.Millisecond, func() { done(true) })
	})
	engine := android.NewRecoveryEngine(clock, android.DefaultFixedTrigger, exec,
		func(res android.Resolution) {
			fmt.Printf("resolved by %v after %v (%d op)\n", res.By, res.Duration, res.OpsExecuted)
		})
	engine.Start()
	clock.RunAll()
	// Output:
	// resolved by op1-cleanup after 1m0.5s (1 op)
}

type execFunc func(android.RecoveryOp, func(bool))

func (f execFunc) Execute(op android.RecoveryOp, done func(bool)) { f(op, done) }

// Dual connectivity shortens only the 4G/5G transition window.
func ExampleDualConnectivity_TransitionWindow() {
	d := android.DualConnectivity{Enabled: true}
	fmt.Println(d.TransitionWindow(8*time.Second, telephony.RAT4G, telephony.RAT5G))
	fmt.Println(d.TransitionWindow(8*time.Second, telephony.RAT3G, telephony.RAT4G))
	// Output:
	// 2s
	// 8s
}
