package android

import (
	"testing"
	"time"

	"repro/internal/simclock"
)

func newDetector(t *testing.T) (*simclock.Scheduler, *StallDetector, *int) {
	t.Helper()
	clock := simclock.NewScheduler()
	stalls := 0
	d := NewStallDetector(clock, DefaultStallDetectorConfig(), nil)
	d.OnStall = func() { stalls++ }
	return clock, d, &stalls
}

func TestStallDetectedOverThresholdNoInbound(t *testing.T) {
	clock, d, stalls := newDetector(t)
	d.Start()
	// 11 outbound segments (> 10), zero inbound.
	clock.After(time.Second, func() { d.RecordTx(11) })
	clock.Run(70 * time.Second)
	if *stalls != 1 {
		t.Fatalf("stalls = %d, want 1", *stalls)
	}
	if !d.Stalled() {
		t.Error("detector should be flagged stalled")
	}
}

func TestNoStallAtThreshold(t *testing.T) {
	clock, d, stalls := newDetector(t)
	d.Start()
	// Exactly 10 outbound is NOT "over 10 outbound TCP segments".
	clock.After(time.Second, func() { d.RecordTx(10) })
	clock.Run(70 * time.Second)
	if *stalls != 0 {
		t.Fatalf("stalls = %d, want 0 at exact threshold", *stalls)
	}
}

func TestNoStallWithAnyInbound(t *testing.T) {
	clock, d, stalls := newDetector(t)
	d.Start()
	clock.After(time.Second, func() { d.RecordTx(50) })
	clock.After(2*time.Second, func() { d.RecordRx(1) })
	clock.Run(70 * time.Second)
	if *stalls != 0 {
		t.Fatalf("stalls = %d; a single inbound segment must prevent detection", *stalls)
	}
}

func TestStallDetectionWithinWindow(t *testing.T) {
	clock, d, stalls := newDetector(t)
	d.Start()
	clock.After(time.Second, func() { d.RecordTx(20) })
	// Detection happens at the first check tick where the window condition
	// holds, i.e. by 10s (check interval), well before the minute is out.
	clock.Run(10 * time.Second)
	if *stalls != 1 {
		t.Fatalf("stall not detected at first evaluation tick, stalls=%d", *stalls)
	}
}

func TestOldSamplesPrunedOutsideWindow(t *testing.T) {
	clock, d, stalls := newDetector(t)
	d.Start()
	clock.After(time.Second, func() { d.RecordTx(6) })
	// Second burst 90s later: the first burst is out of the 60s window,
	// so the combined count never exceeds 10 within one window.
	clock.After(91*time.Second, func() { d.RecordTx(6) })
	clock.Run(200 * time.Second)
	if *stalls != 0 {
		t.Fatalf("stalls = %d; bursts in disjoint windows must not add up", *stalls)
	}
}

func TestBurstsWithinWindowAccumulate(t *testing.T) {
	clock, d, stalls := newDetector(t)
	d.Start()
	clock.After(time.Second, func() { d.RecordTx(6) })
	clock.After(20*time.Second, func() { d.RecordTx(6) })
	clock.Run(40 * time.Second)
	if *stalls != 1 {
		t.Fatalf("stalls = %d; bursts within one window must accumulate", *stalls)
	}
}

func TestStallReportedOncePerEpisode(t *testing.T) {
	clock, d, stalls := newDetector(t)
	d.Start()
	clock.After(time.Second, func() { d.RecordTx(100) })
	clock.Run(5 * time.Minute)
	if *stalls != 1 {
		t.Fatalf("stalls = %d, want exactly 1 per episode", *stalls)
	}
}

func TestInboundClearsStallAndAllowsNewEpisode(t *testing.T) {
	clock, d, stalls := newDetector(t)
	d.Start()
	clock.After(time.Second, func() { d.RecordTx(20) })
	clock.Run(15 * time.Second) // detected
	if *stalls != 1 || !d.Stalled() {
		t.Fatalf("first episode not detected")
	}
	// Traffic resumes: stall clears.
	clock.After(time.Second, func() { d.RecordRx(5) })
	clock.Run(clock.Now() + 80*time.Second)
	if d.Stalled() {
		t.Fatal("inbound traffic should clear the stall flag")
	}
	// New stall much later: must be reported again.
	clock.After(time.Second, func() { d.RecordTx(20) })
	clock.Run(clock.Now() + 70*time.Second)
	if *stalls != 2 {
		t.Fatalf("stalls = %d, want 2 after a second episode", *stalls)
	}
}

func TestStopHaltsEvaluation(t *testing.T) {
	clock, d, stalls := newDetector(t)
	d.Start()
	clock.After(time.Second, func() {
		d.RecordTx(100)
		d.Stop()
	})
	clock.Run(5 * time.Minute)
	if *stalls != 0 {
		t.Fatalf("stalls = %d after Stop, want 0", *stalls)
	}
	if d.Running() {
		t.Error("detector still running after Stop")
	}
}

func TestRecordIgnoredWhileStopped(t *testing.T) {
	clock, d, stalls := newDetector(t)
	d.RecordTx(100) // not started
	d.Start()
	clock.Run(2 * time.Minute)
	if *stalls != 0 {
		t.Fatalf("pre-start samples counted: stalls = %d", *stalls)
	}
	_ = clock
}

func TestStartIsIdempotent(t *testing.T) {
	clock, d, stalls := newDetector(t)
	d.Start()
	d.Start()
	clock.After(time.Second, func() { d.RecordTx(20) })
	clock.Run(15 * time.Second)
	if *stalls != 1 {
		t.Fatalf("double Start broke detection: stalls = %d", *stalls)
	}
}

func TestInvalidConfigFallsBackToDefault(t *testing.T) {
	clock := simclock.NewScheduler()
	d := NewStallDetector(clock, StallDetectorConfig{}, nil)
	if d.cfg.Window != time.Minute || d.cfg.TxThreshold != 10 {
		t.Errorf("invalid config not defaulted: %+v", d.cfg)
	}
}

func TestClearStallAllowsRedetection(t *testing.T) {
	clock, d, stalls := newDetector(t)
	d.Start()
	clock.After(time.Second, func() { d.RecordTx(20) })
	clock.Run(15 * time.Second)
	if *stalls != 1 {
		t.Fatal("setup failed")
	}
	d.ClearStall()
	// The same window still matches: it should fire again on next tick
	// (recovery engine cleared the flag after fixing, fresh stall begins).
	clock.Run(clock.Now() + 10*time.Second)
	if *stalls != 2 {
		t.Fatalf("stalls = %d after ClearStall, want redetection", *stalls)
	}
}

func TestNegativeCountsIgnored(t *testing.T) {
	clock, d, stalls := newDetector(t)
	d.Start()
	clock.After(time.Second, func() {
		d.RecordTx(-5)
		d.RecordRx(-5)
		d.RecordTx(0)
	})
	clock.Run(2 * time.Minute)
	if *stalls != 0 {
		t.Fatalf("non-positive counts should be ignored")
	}
}
