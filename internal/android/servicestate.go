package android

import (
	"time"

	"repro/internal/simclock"
	"repro/internal/telephony"
)

// ServiceHooks receives service-state events. Nil fields are skipped.
type ServiceHooks struct {
	// OnStateChange fires on every registration-state transition.
	OnStateChange func(from, to telephony.ServiceState)
	// OnOutOfServiceEnd fires when service returns, with the outage
	// duration — the Out_of_Service episode the monitoring service
	// records.
	OnOutOfServiceEnd func(duration time.Duration)
}

// ServiceTracker mirrors Android's ServiceStateTracker: it maintains the
// device's registration state and reports Out_of_Service episodes. Vanilla
// Android exposes the Out_of_Service checker to apps (§2.1); the episode
// timing, however, needs the system-level hooks this tracker provides.
type ServiceTracker struct {
	clock *simclock.Scheduler
	hooks ServiceHooks

	state      telephony.ServiceState
	oosStart   simclock.Time
	recoverTmr *simclock.Timer
}

// NewServiceTracker starts in-service.
func NewServiceTracker(clock *simclock.Scheduler, hooks ServiceHooks) *ServiceTracker {
	if clock == nil {
		panic("android: nil clock")
	}
	return &ServiceTracker{clock: clock, hooks: hooks, state: telephony.StateInService}
}

// State returns the current registration state.
func (t *ServiceTracker) State() telephony.ServiceState { return t.state }

// InService reports whether cellular service is available.
func (t *ServiceTracker) InService() bool { return t.state == telephony.StateInService }

func (t *ServiceTracker) setState(s telephony.ServiceState) {
	if t.state == s {
		return
	}
	from := t.state
	t.state = s
	if t.hooks.OnStateChange != nil {
		t.hooks.OnStateChange(from, s)
	}
	switch {
	case s == telephony.StateOutOfService || s == telephony.StateEmergencyOnly:
		if from == telephony.StateInService {
			t.oosStart = t.clock.Now()
		}
	case s == telephony.StateInService && (from == telephony.StateOutOfService || from == telephony.StateEmergencyOnly):
		if t.hooks.OnOutOfServiceEnd != nil {
			t.hooks.OnOutOfServiceEnd(t.clock.Now() - t.oosStart)
		}
	}
}

// LoseService drops registration; if expectedOutage is positive, service
// returns automatically after it (the network side healing). A zero
// expectedOutage leaves the device out of service until RegainService.
func (t *ServiceTracker) LoseService(expectedOutage time.Duration, emergencyOnly bool) {
	if t.state == telephony.StatePowerOff {
		return
	}
	target := telephony.StateOutOfService
	if emergencyOnly {
		target = telephony.StateEmergencyOnly
	}
	t.setState(target)
	if t.recoverTmr != nil {
		t.recoverTmr.Stop()
	}
	if expectedOutage > 0 {
		t.recoverTmr = t.clock.After(expectedOutage, func() { t.RegainService() })
	}
}

// RegainService restores registration (no-op when powered off or already
// in service).
func (t *ServiceTracker) RegainService() {
	if t.state == telephony.StatePowerOff {
		return
	}
	if t.recoverTmr != nil {
		t.recoverTmr.Stop()
	}
	t.setState(telephony.StateInService)
}

// PowerOff models airplane mode / radio power-down; a pending automatic
// recovery is cancelled and the interrupted outage is not reported (the
// user turned the radio off — a false positive the monitor must not see).
func (t *ServiceTracker) PowerOff() {
	if t.recoverTmr != nil {
		t.recoverTmr.Stop()
	}
	// Suppress the OOS-end report: go to PowerOff directly.
	from := t.state
	t.state = telephony.StatePowerOff
	if from != telephony.StatePowerOff && t.hooks.OnStateChange != nil {
		t.hooks.OnStateChange(from, telephony.StatePowerOff)
	}
}

// PowerOn restores the radio into service.
func (t *ServiceTracker) PowerOn() {
	if t.state != telephony.StatePowerOff {
		return
	}
	from := t.state
	t.state = telephony.StateInService
	if t.hooks.OnStateChange != nil {
		t.hooks.OnStateChange(from, telephony.StateInService)
	}
}
