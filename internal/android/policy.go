package android

import (
	"math"
	"time"

	"repro/internal/telephony"
)

// RATOption is one camping choice available to the RAT selection policy:
// a radio access technology with its current signal level.
type RATOption struct {
	RAT   telephony.RAT
	Level telephony.SignalLevel
}

// RiskFunc estimates the relative likelihood of cellular failures for an
// option. The stability-compatible policy consults it; the fleet wires it
// to the simulated environment's calibrated hazards (Figure 16).
type RiskFunc func(RATOption) float64

// RATPolicy decides which available option a device camps on. current is
// nil when the device is acquiring service from scratch. Select returns an
// index into opts, which is always non-empty.
type RATPolicy interface {
	Name() string
	Select(current *RATOption, opts []RATOption) int
}

// Android9Policy is the pre-5G policy: prefer the highest generation the
// device supports (at most 4G — Android 9 does not support 5G), breaking
// ties by signal level.
type Android9Policy struct{}

// Name implements RATPolicy.
func (Android9Policy) Name() string { return "android9" }

// Select implements RATPolicy.
func (Android9Policy) Select(_ *RATOption, opts []RATOption) int {
	best := -1
	for i, o := range opts {
		if o.RAT == telephony.RAT5G {
			continue // not supported by Android 9
		}
		if best < 0 || betterByGenerationThenLevel(o, opts[best]) {
			best = i
		}
	}
	if best < 0 {
		best = 0 // only 5G offered; camp anyway rather than lose service
	}
	return best
}

// Android10Policy reproduces the RAT selection the paper criticizes: 5G is
// blindly preferred over every other RAT regardless of signal level, to
// maximize potential peak bandwidth (§3.2).
type Android10Policy struct{}

// Name implements RATPolicy.
func (Android10Policy) Name() string { return "android10" }

// Select implements RATPolicy.
func (Android10Policy) Select(_ *RATOption, opts []RATOption) int {
	best := -1
	for i, o := range opts {
		if o.RAT == telephony.RAT5G {
			if best < 0 || opts[best].RAT != telephony.RAT5G || o.Level > opts[best].Level {
				best = i
			}
		}
	}
	if best >= 0 {
		return best
	}
	for i, o := range opts {
		if best < 0 || betterByGenerationThenLevel(o, opts[best]) {
			best = i
		}
	}
	return best
}

// Never5GPolicy is an ablation policy that always avoids 5G.
type Never5GPolicy struct{}

// Name implements RATPolicy.
func (Never5GPolicy) Name() string { return "never5g" }

// Select implements RATPolicy.
func (Never5GPolicy) Select(cur *RATOption, opts []RATOption) int {
	return Android9Policy{}.Select(cur, opts)
}

// StabilityCompatiblePolicy is the paper's enhancement (§4.2): it
// judiciously weighs the likelihood of cellular failures against the
// potential data-rate gain instead of blindly preferring 5G. In
// particular it refuses the four drastic transitions 4G level-1..4 →
// 5G level-0 (Figure 17f) and, generally, any transition into level-0
// signal when the current option has usable signal — such transitions
// raise failure likelihood sharply while the extremely weak target signal
// cannot deliver a better data rate anyway.
type StabilityCompatiblePolicy struct {
	// Risk estimates failure likelihood per option; required.
	Risk RiskFunc
	// RiskTolerance is the multiplicative risk increase accepted in
	// exchange for one RAT generation upgrade (default 1.35).
	RiskTolerance float64
}

// Name implements RATPolicy.
func (p StabilityCompatiblePolicy) Name() string { return "stability-compatible" }

// Select implements RATPolicy.
func (p StabilityCompatiblePolicy) Select(current *RATOption, opts []RATOption) int {
	tol := p.RiskTolerance
	if tol <= 0 {
		tol = 1.35
	}
	best := -1
	var bestScore float64
	for i, o := range opts {
		// Undesirable transition: target has level-0 RSS while we hold a
		// usable connection. Skip unless nothing else exists.
		if current != nil && o.Level == telephony.Level0 && current.Level > telephony.Level0 &&
			!(o.RAT == current.RAT && o.Level == current.Level) {
			continue
		}
		score := p.score(o, tol)
		if best < 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		// Everything was filtered; fall back to lowest-risk option.
		for i, o := range opts {
			r := p.Risk(o)
			if best < 0 || r < bestScore {
				best, bestScore = i, r
			}
		}
	}
	return best
}

// score trades generation (throughput potential) against failure risk:
// each generation step is worth a tol× risk increase, so
// score = gen − log(risk)/log(tol).
func (p StabilityCompatiblePolicy) score(o RATOption, tol float64) float64 {
	risk := p.Risk(o)
	if risk <= 0 {
		risk = 1e-9
	}
	return float64(o.RAT.Generation()) - math.Log(risk)/math.Log(tol)
}

func betterByGenerationThenLevel(a, b RATOption) bool {
	if a.RAT.Generation() != b.RAT.Generation() {
		return a.RAT.Generation() > b.RAT.Generation()
	}
	return a.Level > b.Level
}

// DualConnectivity models the 3GPP 4G/5G dual-connectivity mechanism
// (TS 37.340): compatible devices keep control-plane connections to a 4G
// and a 5G BS simultaneously, with the master also carrying data-plane
// traffic, so a decided RAT transition completes much faster.
type DualConnectivity struct {
	// Enabled marks device support (all four 5G models in Table 1).
	Enabled bool
	// SpeedUp divides the transition window when dual connectivity
	// applies (default 4).
	SpeedUp float64
}

// TransitionWindow returns the duration during which a RAT transition
// exposes the device to transition failures. Dual connectivity shortens
// the 4G↔5G window by SpeedUp.
func (d DualConnectivity) TransitionWindow(base time.Duration, from, to telephony.RAT) time.Duration {
	if !d.Enabled {
		return base
	}
	pair := func(a, b telephony.RAT) bool {
		return (from == a && to == b) || (from == b && to == a)
	}
	if pair(telephony.RAT4G, telephony.RAT5G) {
		s := d.SpeedUp
		if s <= 1 {
			s = 4
		}
		return time.Duration(float64(base) / s)
	}
	return base
}
