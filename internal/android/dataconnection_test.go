package android

import (
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/telephony"
)

// scriptRadio completes setup attempts after latency with scripted outcomes.
type scriptRadio struct {
	clock    *simclock.Scheduler
	latency  time.Duration
	outcomes []SetupOutcome
	next     int
	setups   int
}

func (r *scriptRadio) Setup(done func(SetupOutcome)) {
	r.setups++
	out := SetupOutcome{Success: true}
	if r.next < len(r.outcomes) {
		out = r.outcomes[r.next]
		r.next++
	}
	r.clock.After(r.latency, func() { done(out) })
}

func (r *scriptRadio) Teardown(done func()) {
	r.clock.After(r.latency/2, func() { done() })
}

type eventLog struct {
	states      []DcState
	setupErrors []telephony.FailCause
	connected   int
	disconnects int
	lost        int
	abandoned   int
}

func (l *eventLog) hooks() Hooks {
	return Hooks{
		OnStateChange: func(_, to DcState) { l.states = append(l.states, to) },
		OnSetupError:  func(c telephony.FailCause, _ int) { l.setupErrors = append(l.setupErrors, c) },
		OnConnected:   func() { l.connected++ },
		OnDisconnected: func(lost bool, _ telephony.FailCause) {
			l.disconnects++
			if lost {
				l.lost++
			}
		},
		OnSetupAbandoned: func(telephony.FailCause) { l.abandoned++ },
	}
}

func TestSetupSuccessPath(t *testing.T) {
	clock := simclock.NewScheduler()
	radio := &scriptRadio{clock: clock, latency: 500 * time.Millisecond}
	log := &eventLog{}
	dc := NewDataConnection(clock, radio, DefaultDataConnectionConfig(), log.hooks())
	if dc.State() != DcInactive {
		t.Fatalf("initial state %v", dc.State())
	}
	if err := dc.RequestSetup(); err != nil {
		t.Fatal(err)
	}
	if dc.State() != DcActivating {
		t.Fatalf("state after request %v, want Activating", dc.State())
	}
	clock.RunAll()
	if dc.State() != DcActive || log.connected != 1 {
		t.Fatalf("state %v connected %d, want Active/1", dc.State(), log.connected)
	}
	want := []DcState{DcActivating, DcActive}
	for i, s := range want {
		if log.states[i] != s {
			t.Fatalf("state sequence %v, want %v", log.states, want)
		}
	}
}

func TestSetupRetryThenSuccess(t *testing.T) {
	clock := simclock.NewScheduler()
	radio := &scriptRadio{
		clock:   clock,
		latency: 100 * time.Millisecond,
		outcomes: []SetupOutcome{
			{Success: false, Cause: telephony.CauseSignalLost},
			{Success: false, Cause: telephony.CausePPPTimeout},
			{Success: true},
		},
	}
	log := &eventLog{}
	dc := NewDataConnection(clock, radio, DefaultDataConnectionConfig(), log.hooks())
	dc.RequestSetup()
	clock.RunAll()
	if dc.State() != DcActive {
		t.Fatalf("state %v, want Active", dc.State())
	}
	if len(log.setupErrors) != 2 {
		t.Fatalf("setup errors %v, want 2", log.setupErrors)
	}
	if log.setupErrors[0] != telephony.CauseSignalLost || log.setupErrors[1] != telephony.CausePPPTimeout {
		t.Fatalf("causes %v", log.setupErrors)
	}
	if radio.setups != 3 {
		t.Fatalf("radio setups = %d, want 3", radio.setups)
	}
	// Retry schedule: attempt at 0, fail at 0.1, retry at 1.1, fail 1.2,
	// retry at 3.2, success at 3.3.
	if clock.Now() != 3300*time.Millisecond {
		t.Errorf("completion at %v, want 3.3s per retry schedule", clock.Now())
	}
}

func TestSetupAbandonedAfterAllRetries(t *testing.T) {
	clock := simclock.NewScheduler()
	fail := SetupOutcome{Success: false, Cause: telephony.CauseNoService}
	radio := &scriptRadio{clock: clock, latency: 10 * time.Millisecond,
		outcomes: []SetupOutcome{fail, fail, fail, fail, fail, fail, fail}}
	log := &eventLog{}
	cfg := DataConnectionConfig{RetryDelays: []time.Duration{time.Second, time.Second}}
	dc := NewDataConnection(clock, radio, cfg, log.hooks())
	dc.RequestSetup()
	clock.RunAll()
	if dc.State() != DcInactive {
		t.Fatalf("state %v, want Inactive after abandoning", dc.State())
	}
	if log.abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", log.abandoned)
	}
	if radio.setups != 3 {
		t.Fatalf("setups = %d, want 3 (1 + 2 retries)", radio.setups)
	}
	if len(log.setupErrors) != 3 {
		t.Fatalf("every failed attempt should report Data_Setup_Error, got %d", len(log.setupErrors))
	}
	// A fresh RequestSetup must be accepted after abandonment.
	radio.outcomes = nil
	if err := dc.RequestSetup(); err != nil {
		t.Fatalf("re-setup rejected: %v", err)
	}
	clock.RunAll()
	if dc.State() != DcActive {
		t.Fatalf("state %v after re-setup, want Active", dc.State())
	}
}

func TestRequestSetupWhileBusy(t *testing.T) {
	clock := simclock.NewScheduler()
	radio := &scriptRadio{clock: clock, latency: time.Second}
	dc := NewDataConnection(clock, radio, DefaultDataConnectionConfig(), Hooks{})
	dc.RequestSetup()
	if err := dc.RequestSetup(); err == nil {
		t.Error("RequestSetup while Activating should error")
	}
	clock.RunAll()
	if err := dc.RequestSetup(); err == nil {
		t.Error("RequestSetup while Active should error")
	}
}

func TestTeardownFromActive(t *testing.T) {
	clock := simclock.NewScheduler()
	radio := &scriptRadio{clock: clock, latency: 100 * time.Millisecond}
	log := &eventLog{}
	dc := NewDataConnection(clock, radio, DefaultDataConnectionConfig(), log.hooks())
	dc.RequestSetup()
	clock.RunAll()
	dc.Teardown()
	if dc.State() != DcDisconnecting {
		t.Fatalf("state %v, want Disconnect", dc.State())
	}
	clock.RunAll()
	if dc.State() != DcInactive || log.disconnects != 1 || log.lost != 0 {
		t.Fatalf("state %v disconnects %d lost %d", dc.State(), log.disconnects, log.lost)
	}
}

func TestTeardownCancelsPendingSetup(t *testing.T) {
	clock := simclock.NewScheduler()
	radio := &scriptRadio{clock: clock, latency: time.Second,
		outcomes: []SetupOutcome{{Success: true}}}
	log := &eventLog{}
	dc := NewDataConnection(clock, radio, DefaultDataConnectionConfig(), log.hooks())
	dc.RequestSetup()
	dc.Teardown() // abort while Activating
	if dc.State() != DcInactive {
		t.Fatalf("state %v, want Inactive", dc.State())
	}
	clock.RunAll() // stale radio callback must be ignored
	if log.connected != 0 {
		t.Error("stale setup outcome connected a torn-down connection")
	}
	if dc.State() != DcInactive {
		t.Fatalf("stale callback moved state to %v", dc.State())
	}
}

func TestTeardownDuringRetryWait(t *testing.T) {
	clock := simclock.NewScheduler()
	radio := &scriptRadio{clock: clock, latency: 10 * time.Millisecond,
		outcomes: []SetupOutcome{{Success: false, Cause: telephony.CauseNoService}}}
	dc := NewDataConnection(clock, radio, DefaultDataConnectionConfig(), Hooks{})
	dc.RequestSetup()
	clock.Run(50 * time.Millisecond) // first attempt failed, now Retrying
	if dc.State() != DcRetrying {
		t.Fatalf("state %v, want Retrying", dc.State())
	}
	dc.Teardown()
	if dc.State() != DcInactive {
		t.Fatalf("state %v, want Inactive", dc.State())
	}
	before := radio.setups
	clock.RunAll()
	if radio.setups != before {
		t.Error("retry fired after teardown")
	}
}

func TestConnectionLost(t *testing.T) {
	clock := simclock.NewScheduler()
	radio := &scriptRadio{clock: clock, latency: 10 * time.Millisecond}
	log := &eventLog{}
	dc := NewDataConnection(clock, radio, DefaultDataConnectionConfig(), log.hooks())
	dc.RequestSetup()
	clock.RunAll()
	dc.ConnectionLost(telephony.CauseSignalLost)
	if dc.State() != DcInactive || log.lost != 1 {
		t.Fatalf("state %v lost %d, want Inactive/1", dc.State(), log.lost)
	}
	// Lost while not active is a no-op.
	dc.ConnectionLost(telephony.CauseSignalLost)
	if log.lost != 1 {
		t.Error("ConnectionLost while Inactive should be ignored")
	}
}

func TestTeardownIdempotent(t *testing.T) {
	clock := simclock.NewScheduler()
	radio := &scriptRadio{clock: clock, latency: 10 * time.Millisecond}
	log := &eventLog{}
	dc := NewDataConnection(clock, radio, DefaultDataConnectionConfig(), log.hooks())
	dc.RequestSetup()
	clock.RunAll()
	dc.Teardown()
	dc.Teardown() // second call during Disconnecting is a no-op
	clock.RunAll()
	if log.disconnects != 1 {
		t.Fatalf("disconnects = %d, want 1", log.disconnects)
	}
	dc.Teardown() // from Inactive: no-op
	if log.disconnects != 1 {
		t.Error("Teardown from Inactive should be a no-op")
	}
}

func TestNilDependenciesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil radio did not panic")
		}
	}()
	NewDataConnection(simclock.NewScheduler(), nil, DefaultDataConnectionConfig(), Hooks{})
}

func TestStateStrings(t *testing.T) {
	want := map[DcState]string{
		DcInactive: "Inactive", DcActivating: "Activating", DcRetrying: "Retrying",
		DcActive: "Active", DcDisconnecting: "Disconnect", DcState(99): "?",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}

func TestNoRetriesConfig(t *testing.T) {
	clock := simclock.NewScheduler()
	radio := &scriptRadio{clock: clock, latency: 10 * time.Millisecond,
		outcomes: []SetupOutcome{{Success: false, Cause: telephony.CauseNoService}}}
	log := &eventLog{}
	dc := NewDataConnection(clock, radio, DataConnectionConfig{}, log.hooks())
	dc.RequestSetup()
	clock.RunAll()
	// With no retry delays, a single failed attempt abandons immediately.
	if log.abandoned != 1 || radio.setups != 1 {
		t.Errorf("abandoned=%d setups=%d, want immediate abandonment", log.abandoned, radio.setups)
	}
	if dc.State() != DcInactive {
		t.Errorf("state = %v", dc.State())
	}
}

func TestAttemptCounterResets(t *testing.T) {
	clock := simclock.NewScheduler()
	radio := &scriptRadio{clock: clock, latency: 10 * time.Millisecond,
		outcomes: []SetupOutcome{{Success: false, Cause: telephony.CauseNoService}, {Success: true}}}
	dc := NewDataConnection(clock, radio, DefaultDataConnectionConfig(), Hooks{})
	dc.RequestSetup()
	clock.RunAll()
	if dc.State() != DcActive || dc.Attempt() != 2 {
		t.Fatalf("state=%v attempt=%d", dc.State(), dc.Attempt())
	}
	dc.Teardown()
	clock.RunAll()
	if dc.Attempt() != 0 {
		t.Errorf("attempt counter not reset: %d", dc.Attempt())
	}
}
