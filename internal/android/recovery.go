package android

import (
	"fmt"
	"time"

	"repro/internal/simclock"
)

// RecoveryOp identifies one of Android's three progressive Data_Stall
// recovery operations.
type RecoveryOp int

// Recovery operations, in escalation order (§3.2): light (cleaning up and
// restarting the current connection), moderate (re-registering into the
// network), heavy (restarting the radio component).
const (
	OpCleanupConnection RecoveryOp = iota + 1
	OpReregister
	OpRestartRadio

	NumRecoveryOps = 3
)

func (op RecoveryOp) String() string {
	switch op {
	case OpCleanupConnection:
		return "cleanup-connection"
	case OpReregister:
		return "re-register"
	case OpRestartRadio:
		return "restart-radio"
	default:
		return fmt.Sprintf("op-%d", int(op))
	}
}

// Trigger supplies the probation durations Pro_0..Pro_2: how long the
// engine passively watches for self-recovery before entering each stage.
type Trigger interface {
	Name() string
	// Probation returns Pro_i, the wait before executing operation i+1;
	// stage is 0-based (0, 1, 2).
	Probation(stage int) time.Duration
}

// FixedTrigger is vanilla Android's trigger: one minute before every stage.
type FixedTrigger time.Duration

// Name implements Trigger.
func (f FixedTrigger) Name() string { return "fixed" }

// Probation implements Trigger.
func (f FixedTrigger) Probation(int) time.Duration { return time.Duration(f) }

// DefaultFixedTrigger is Android's one-minute probation.
const DefaultFixedTrigger = FixedTrigger(time.Minute)

// ProfileTrigger holds per-stage probations; the TIMP optimization produces
// one (the paper's optimum is 21 s, 6 s, 16 s).
type ProfileTrigger [NumRecoveryOps]time.Duration

// Name implements Trigger.
func (p ProfileTrigger) Name() string { return "timp" }

// Probation implements Trigger.
func (p ProfileTrigger) Probation(stage int) time.Duration {
	if stage < 0 || stage >= NumRecoveryOps {
		return p[NumRecoveryOps-1]
	}
	return p[stage]
}

// PaperTIMPTrigger is the probation profile the paper deployed.
var PaperTIMPTrigger = ProfileTrigger{21 * time.Second, 6 * time.Second, 16 * time.Second}

// OpExecutor carries out a recovery operation. The fleet simulator's
// executor takes O_i of virtual time and succeeds with the operation's
// empirical fix rate (75% for the first-stage cleanup, per §3.2).
type OpExecutor interface {
	// Execute runs op and calls done(fixed) once, on the simulation clock,
	// after the operation's execution overhead has elapsed.
	Execute(op RecoveryOp, done func(fixed bool))
}

// ResolvedBy records what ended a Data_Stall episode.
type ResolvedBy uint8

// Resolution sources.
const (
	ResolvedNone      ResolvedBy = iota
	ResolvedAuto                 // self-recovered during a probation (Case-1 of the TIMP model)
	ResolvedOp1                  // fixed by cleanup
	ResolvedOp2                  // fixed by re-registration
	ResolvedOp3                  // fixed by radio restart
	ResolvedUserReset            // the user manually reset the data connection (~30 s tolerance)
	ResolvedGiveUp               // all stages exhausted; waited for eventual network recovery
)

func (r ResolvedBy) String() string {
	switch r {
	case ResolvedAuto:
		return "auto"
	case ResolvedOp1:
		return "op1-cleanup"
	case ResolvedOp2:
		return "op2-reregister"
	case ResolvedOp3:
		return "op3-radio-restart"
	case ResolvedUserReset:
		return "user-reset"
	case ResolvedGiveUp:
		return "gave-up"
	default:
		return "none"
	}
}

// Resolution summarizes a completed recovery episode.
type Resolution struct {
	// Duration is the stall's total duration from detection to resolution.
	Duration time.Duration
	// By is the resolution source.
	By ResolvedBy
	// OpsExecuted counts recovery operations run (successful or not).
	OpsExecuted int
}

// RecoveryEngine drives Android's three-stage progressive Data_Stall
// recovery as the state process of Figure 18: S0 (stall detected) →
// S1/S2/S3 (operations) → Se (resolved). Probation timing is delegated to
// a Trigger, which is exactly the knob the paper's TIMP enhancement turns.
type RecoveryEngine struct {
	clock   *simclock.Scheduler
	trigger Trigger
	exec    OpExecutor
	// OnResolved fires once per episode.
	OnResolved func(Resolution)

	active    bool
	startedAt simclock.Time
	stage     int // next op index (0-based); 0 means in S0 probation
	ops       int
	timer     *simclock.Timer
	executing bool
}

// NewRecoveryEngine builds an engine. trigger and exec must be non-nil.
func NewRecoveryEngine(clock *simclock.Scheduler, trigger Trigger, exec OpExecutor, onResolved func(Resolution)) *RecoveryEngine {
	if clock == nil || trigger == nil || exec == nil {
		panic("android: nil recovery engine dependency")
	}
	return &RecoveryEngine{clock: clock, trigger: trigger, exec: exec, OnResolved: onResolved}
}

// Active reports whether an episode is in progress.
func (e *RecoveryEngine) Active() bool { return e.active }

// Trigger returns the engine's probation trigger.
func (e *RecoveryEngine) Trigger() Trigger { return e.trigger }

// Start begins an episode at stall-detection time. Starting while active
// is ignored (detector reports each episode once).
func (e *RecoveryEngine) Start() {
	if e.active {
		return
	}
	e.active = true
	e.startedAt = e.clock.Now()
	e.stage = 0
	e.ops = 0
	e.executing = false
	e.armProbation()
}

// NotifyResolved signals external resolution: the device self-recovered
// (inbound traffic resumed) or the user manually reset the connection.
func (e *RecoveryEngine) NotifyResolved(by ResolvedBy) {
	if !e.active {
		return
	}
	e.finish(by)
}

func (e *RecoveryEngine) armProbation() {
	pro := e.trigger.Probation(e.stage)
	e.timer = e.clock.After(pro, func() {
		if !e.active || e.executing {
			return
		}
		e.runOp()
	})
}

func (e *RecoveryEngine) runOp() {
	op := RecoveryOp(e.stage + 1)
	e.ops++
	e.executing = true
	e.exec.Execute(op, func(fixed bool) {
		if !e.active {
			return
		}
		e.executing = false
		if fixed {
			e.finish(ResolvedOp1 + ResolvedBy(e.stage))
			return
		}
		e.stage++
		if e.stage >= NumRecoveryOps {
			// All stages exhausted; remain active until NotifyResolved.
			return
		}
		e.armProbation()
	})
}

func (e *RecoveryEngine) finish(by ResolvedBy) {
	if e.timer != nil {
		e.timer.Stop()
	}
	res := Resolution{
		Duration:    e.clock.Now() - e.startedAt,
		By:          by,
		OpsExecuted: e.ops,
	}
	e.active = false
	e.executing = false
	if by == ResolvedNone && e.stage >= NumRecoveryOps {
		res.By = ResolvedGiveUp
	}
	if e.OnResolved != nil {
		e.OnResolved(res)
	}
}
