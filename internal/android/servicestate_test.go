package android

import (
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/telephony"
)

func newTracker(t *testing.T) (*simclock.Scheduler, *ServiceTracker, *[]time.Duration, *[][2]telephony.ServiceState) {
	t.Helper()
	clock := simclock.NewScheduler()
	var outages []time.Duration
	var transitions [][2]telephony.ServiceState
	tr := NewServiceTracker(clock, ServiceHooks{
		OnStateChange: func(from, to telephony.ServiceState) {
			transitions = append(transitions, [2]telephony.ServiceState{from, to})
		},
		OnOutOfServiceEnd: func(d time.Duration) { outages = append(outages, d) },
	})
	return clock, tr, &outages, &transitions
}

func TestServiceTrackerAutoRecovery(t *testing.T) {
	clock, tr, outages, _ := newTracker(t)
	if !tr.InService() {
		t.Fatal("should start in service")
	}
	clock.At(time.Minute, func() { tr.LoseService(45*time.Second, false) })
	clock.RunAll()
	if !tr.InService() {
		t.Fatal("service did not auto-recover")
	}
	if len(*outages) != 1 || (*outages)[0] != 45*time.Second {
		t.Errorf("outages = %v, want one 45s episode", *outages)
	}
}

func TestServiceTrackerManualRecovery(t *testing.T) {
	clock, tr, outages, _ := newTracker(t)
	clock.At(time.Second, func() { tr.LoseService(0, false) })
	clock.At(31*time.Second, func() { tr.RegainService() })
	clock.RunAll()
	if len(*outages) != 1 || (*outages)[0] != 30*time.Second {
		t.Errorf("outages = %v, want one 30s episode", *outages)
	}
}

func TestServiceTrackerEmergencyOnlyCountsAsOutage(t *testing.T) {
	clock, tr, outages, _ := newTracker(t)
	clock.At(time.Second, func() { tr.LoseService(10*time.Second, true) })
	clock.Run(2 * time.Second)
	if tr.State() != telephony.StateEmergencyOnly {
		t.Fatalf("state = %v", tr.State())
	}
	clock.RunAll()
	if len(*outages) != 1 || (*outages)[0] != 10*time.Second {
		t.Errorf("outages = %v", *outages)
	}
}

func TestServiceTrackerPowerOffSuppressesReport(t *testing.T) {
	clock, tr, outages, _ := newTracker(t)
	clock.At(time.Second, func() { tr.LoseService(time.Hour, false) })
	clock.At(10*time.Second, func() { tr.PowerOff() })
	clock.RunAll()
	if len(*outages) != 0 {
		t.Errorf("power-off should suppress the OOS report, got %v", *outages)
	}
	if tr.State() != telephony.StatePowerOff {
		t.Errorf("state = %v", tr.State())
	}
	// While off, losing/regaining service is a no-op.
	tr.LoseService(time.Second, false)
	if tr.State() != telephony.StatePowerOff {
		t.Error("LoseService while off changed state")
	}
	tr.RegainService()
	if tr.State() != telephony.StatePowerOff {
		t.Error("RegainService while off changed state")
	}
	tr.PowerOn()
	if !tr.InService() {
		t.Error("PowerOn should restore service")
	}
	// The pending auto-recovery timer must not fire a stale report.
	clock.RunAll()
	if len(*outages) != 0 {
		t.Errorf("stale recovery fired: %v", *outages)
	}
}

func TestServiceTrackerRepeatedLoseExtends(t *testing.T) {
	clock, tr, outages, _ := newTracker(t)
	clock.At(time.Second, func() { tr.LoseService(10*time.Second, false) })
	// A second loss report at t=5s extends the outage; the episode is one.
	clock.At(5*time.Second, func() { tr.LoseService(20*time.Second, false) })
	clock.RunAll()
	if len(*outages) != 1 {
		t.Fatalf("outages = %v, want a single merged episode", *outages)
	}
	if (*outages)[0] != 24*time.Second {
		t.Errorf("merged outage = %v, want 24s (1s..25s)", (*outages)[0])
	}
}

func TestServiceTrackerTransitionsObserved(t *testing.T) {
	clock, tr, _, transitions := newTracker(t)
	clock.At(time.Second, func() { tr.LoseService(2*time.Second, false) })
	clock.RunAll()
	want := [][2]telephony.ServiceState{
		{telephony.StateInService, telephony.StateOutOfService},
		{telephony.StateOutOfService, telephony.StateInService},
	}
	if len(*transitions) != len(want) {
		t.Fatalf("transitions = %v", *transitions)
	}
	for i := range want {
		if (*transitions)[i] != want[i] {
			t.Errorf("transition %d = %v, want %v", i, (*transitions)[i], want[i])
		}
	}
	_ = tr
}

func TestServiceTrackerNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil clock did not panic")
		}
	}()
	NewServiceTracker(nil, ServiceHooks{})
}

func TestServiceTrackerPowerOnWhenOnIsNoOp(t *testing.T) {
	_, tr, _, transitions := newTracker(t)
	tr.PowerOn()
	if len(*transitions) != 0 {
		t.Error("PowerOn while in service should be a no-op")
	}
}

func TestDiagnosticsManagerFanOut(t *testing.T) {
	clock := simclock.NewScheduler()
	m := NewDiagnosticsManager(clock)
	var stalls1, stalls2 int
	var states []telephony.ServiceState
	h1 := m.Register(DiagnosticsCallback{
		OnDataStallSuspected:  func(DataStallReport) { stalls1++ },
		OnServiceStateChanged: func(s telephony.ServiceState) { states = append(states, s) },
	})
	m.Register(DiagnosticsCallback{
		OnDataStallSuspected: func(DataStallReport) { stalls2++ },
	})
	if m.Registered() != 2 {
		t.Fatalf("registered = %d", m.Registered())
	}

	m.NotifyDataStall(telephony.RAT4G, telephony.Level2)
	if stalls1 != 1 || stalls2 != 1 {
		t.Errorf("fan-out: %d, %d", stalls1, stalls2)
	}

	m.NotifyServiceState(telephony.StateOutOfService)
	m.NotifyServiceState(telephony.StateOutOfService) // duplicate suppressed
	m.NotifyServiceState(telephony.StateInService)
	if len(states) != 2 {
		t.Errorf("states = %v, want OOS then in-service", states)
	}

	m.Unregister(h1)
	m.Unregister(999) // unknown: no-op
	m.NotifyDataStall(telephony.RAT5G, telephony.Level0)
	if stalls1 != 1 || stalls2 != 2 {
		t.Errorf("after unregister: %d, %d", stalls1, stalls2)
	}
}

func TestDiagnosticsReportFields(t *testing.T) {
	clock := simclock.NewScheduler()
	m := NewDiagnosticsManager(clock)
	var got DataStallReport
	m.Register(DiagnosticsCallback{OnDataStallSuspected: func(r DataStallReport) { got = r }})
	clock.At(time.Minute, func() { m.NotifyDataStall(telephony.RAT5G, telephony.Level1) })
	clock.RunAll()
	if got.DetectedAt != time.Minute || got.RAT != telephony.RAT5G || got.Level != telephony.Level1 {
		t.Errorf("report = %+v", got)
	}
	clock.At(90*time.Second, func() {
		if age := m.StallAge(got); age != 30*time.Second {
			t.Errorf("StallAge = %v", age)
		}
	})
	clock.RunAll()
}
