package android

import (
	"testing"
	"time"

	"repro/internal/telephony"
)

func opt(rat telephony.RAT, lvl telephony.SignalLevel) RATOption {
	return RATOption{RAT: rat, Level: lvl}
}

// testRisk mirrors the shape of the measured hazards: risk falls with
// signal level; 5G carries extra risk.
func testRisk(o RATOption) float64 {
	base := []float64{3.2, 2.1, 1.5, 1.1, 0.75, 0.55}[o.Level]
	if o.RAT == telephony.RAT5G {
		base *= 1.6
	}
	return base
}

func TestAndroid9Ignores5G(t *testing.T) {
	p := Android9Policy{}
	opts := []RATOption{
		opt(telephony.RAT5G, telephony.Level5),
		opt(telephony.RAT4G, telephony.Level2),
		opt(telephony.RAT3G, telephony.Level5),
	}
	if got := p.Select(nil, opts); opts[got].RAT != telephony.RAT4G {
		t.Errorf("Android 9 selected %v, want 4G", opts[got].RAT)
	}
}

func TestAndroid9TieBreakByLevel(t *testing.T) {
	p := Android9Policy{}
	opts := []RATOption{
		opt(telephony.RAT4G, telephony.Level1),
		opt(telephony.RAT4G, telephony.Level4),
	}
	if got := p.Select(nil, opts); got != 1 {
		t.Errorf("selected level-%d, want the stronger 4G cell", opts[got].Level)
	}
}

func TestAndroid9Only5GAvailable(t *testing.T) {
	p := Android9Policy{}
	opts := []RATOption{opt(telephony.RAT5G, telephony.Level3)}
	if got := p.Select(nil, opts); got != 0 {
		t.Error("with only 5G offered, must still return a valid index")
	}
}

func TestAndroid10BlindlyPrefers5G(t *testing.T) {
	p := Android10Policy{}
	// The paper's motivating case: weak 5G vs strong 4G. Android 10 picks
	// the weak 5G anyway.
	opts := []RATOption{
		opt(telephony.RAT4G, telephony.Level4),
		opt(telephony.RAT5G, telephony.Level0),
	}
	if got := p.Select(&opts[0], opts); opts[got].RAT != telephony.RAT5G {
		t.Error("Android 10 must blindly prefer 5G")
	}
}

func TestAndroid10FallsBackWithout5G(t *testing.T) {
	p := Android10Policy{}
	opts := []RATOption{
		opt(telephony.RAT2G, telephony.Level5),
		opt(telephony.RAT4G, telephony.Level1),
	}
	if got := p.Select(nil, opts); opts[got].RAT != telephony.RAT4G {
		t.Errorf("without 5G, Android 10 behaves like 9; got %v", opts[got].RAT)
	}
}

func TestAndroid10PicksStrongest5G(t *testing.T) {
	p := Android10Policy{}
	opts := []RATOption{
		opt(telephony.RAT5G, telephony.Level1),
		opt(telephony.RAT5G, telephony.Level4),
	}
	if got := p.Select(nil, opts); got != 1 {
		t.Error("should pick the stronger 5G cell")
	}
}

func TestStabilityCompatibleAvoidsBadTransitions(t *testing.T) {
	p := StabilityCompatiblePolicy{Risk: testRisk}
	// All four drastic cases of Figure 17f: 4G level 1-4 → 5G level-0.
	for lvl := telephony.Level1; lvl <= telephony.Level4; lvl++ {
		cur := opt(telephony.RAT4G, lvl)
		opts := []RATOption{cur, opt(telephony.RAT5G, telephony.Level0)}
		if got := p.Select(&cur, opts); opts[got].RAT == telephony.RAT5G {
			t.Errorf("accepted 4G level-%d → 5G level-0 transition", lvl)
		}
	}
}

func TestStabilityCompatibleAccepts5GWithGoodSignal(t *testing.T) {
	p := StabilityCompatiblePolicy{Risk: testRisk}
	cur := opt(telephony.RAT4G, telephony.Level2)
	opts := []RATOption{cur, opt(telephony.RAT5G, telephony.Level4)}
	if got := p.Select(&cur, opts); opts[got].RAT != telephony.RAT5G {
		t.Error("should upgrade to strong 5G (no stability downside)")
	}
}

func TestStabilityCompatibleNoCurrentConnection(t *testing.T) {
	p := StabilityCompatiblePolicy{Risk: testRisk}
	// From scratch (current == nil) even a level-0 option is allowed if
	// it is all there is.
	opts := []RATOption{opt(telephony.RAT4G, telephony.Level0)}
	if got := p.Select(nil, opts); got != 0 {
		t.Error("must return a valid index for the only option")
	}
}

func TestStabilityCompatibleAllFiltered(t *testing.T) {
	p := StabilityCompatiblePolicy{Risk: testRisk}
	cur := opt(telephony.RAT4G, telephony.Level3)
	// Every alternative is level-0; fall back to lowest risk rather than
	// returning an invalid index. (current itself stays selectable.)
	opts := []RATOption{
		opt(telephony.RAT5G, telephony.Level0),
		opt(telephony.RAT2G, telephony.Level0),
	}
	got := p.Select(&cur, opts)
	if got < 0 || got >= len(opts) {
		t.Fatalf("invalid index %d", got)
	}
	if opts[got].RAT != telephony.RAT2G {
		t.Errorf("fallback should pick lowest-risk option, got %v", opts[got].RAT)
	}
}

func TestStabilityCompatiblePrefersLowRiskAtEqualGen(t *testing.T) {
	p := StabilityCompatiblePolicy{Risk: testRisk}
	opts := []RATOption{
		opt(telephony.RAT4G, telephony.Level1),
		opt(telephony.RAT4G, telephony.Level4),
	}
	if got := p.Select(nil, opts); got != 1 {
		t.Error("equal generation: lower risk must win")
	}
}

func TestStabilityCompatibleRejectsRiskyUpgrade(t *testing.T) {
	// Weak 5G (level-1) vs strong 4G (level-4): risk ratio
	// (2.1*1.6)/0.75 ≈ 4.5 exceeds one generation's tolerance.
	p := StabilityCompatiblePolicy{Risk: testRisk, RiskTolerance: 1.35}
	cur := opt(telephony.RAT4G, telephony.Level4)
	opts := []RATOption{cur, opt(telephony.RAT5G, telephony.Level1)}
	if got := p.Select(&cur, opts); opts[got].RAT == telephony.RAT5G {
		t.Error("risky 5G upgrade should be rejected")
	}
}

func TestNever5G(t *testing.T) {
	p := Never5GPolicy{}
	opts := []RATOption{
		opt(telephony.RAT5G, telephony.Level5),
		opt(telephony.RAT3G, telephony.Level1),
	}
	if got := p.Select(nil, opts); opts[got].RAT == telephony.RAT5G {
		t.Error("Never5G selected 5G")
	}
}

func TestPolicyNames(t *testing.T) {
	if (Android9Policy{}).Name() != "android9" ||
		(Android10Policy{}).Name() != "android10" ||
		(StabilityCompatiblePolicy{}).Name() != "stability-compatible" ||
		(Never5GPolicy{}).Name() != "never5g" {
		t.Error("unexpected policy names")
	}
}

func TestDualConnectivityWindow(t *testing.T) {
	base := 8 * time.Second
	off := DualConnectivity{}
	if off.TransitionWindow(base, telephony.RAT4G, telephony.RAT5G) != base {
		t.Error("disabled dual connectivity must not shorten the window")
	}
	on := DualConnectivity{Enabled: true}
	if got := on.TransitionWindow(base, telephony.RAT4G, telephony.RAT5G); got != 2*time.Second {
		t.Errorf("4G→5G window = %v, want base/4", got)
	}
	if got := on.TransitionWindow(base, telephony.RAT5G, telephony.RAT4G); got != 2*time.Second {
		t.Errorf("5G→4G window = %v, want base/4", got)
	}
	if got := on.TransitionWindow(base, telephony.RAT3G, telephony.RAT4G); got != base {
		t.Errorf("3G→4G window = %v; dual connectivity only covers 4G/5G", got)
	}
	custom := DualConnectivity{Enabled: true, SpeedUp: 2}
	if got := custom.TransitionWindow(base, telephony.RAT4G, telephony.RAT5G); got != 4*time.Second {
		t.Errorf("custom speed-up window = %v, want base/2", got)
	}
}
