package android

import (
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/telephony"
)

// trackerEnv builds a tracker whose per-APN radios are scripted.
func trackerEnv(t *testing.T, scripts map[telephony.APN][]SetupOutcome) (*simclock.Scheduler, *DcTracker, *trackerLog) {
	t.Helper()
	clock := simclock.NewScheduler()
	log := &trackerLog{}
	factory := func(apn telephony.APN) Radio {
		return &scriptRadio{clock: clock, latency: 100 * time.Millisecond, outcomes: scripts[apn]}
	}
	tr := NewDcTracker(clock, factory, DefaultDataConnectionConfig(), TrackerHooks{
		OnStateChange: func(apn telephony.APN, from, to DcState) {
			log.transitions = append(log.transitions, apn)
		},
		OnSetupError: func(apn telephony.APN, cause telephony.FailCause, attempt int) {
			log.errors = append(log.errors, apn)
		},
		OnConnected: func(apn telephony.APN) { log.connected = append(log.connected, apn) },
		OnAbandoned: func(apn telephony.APN, cause telephony.FailCause) { log.abandoned = append(log.abandoned, apn) },
	})
	return clock, tr, log
}

type trackerLog struct {
	transitions []telephony.APN
	errors      []telephony.APN
	connected   []telephony.APN
	abandoned   []telephony.APN
}

func TestDcTrackerMultipleAPNs(t *testing.T) {
	fail := SetupOutcome{Success: false, Cause: telephony.CausePPPTimeout}
	clock, tr, log := trackerEnv(t, map[telephony.APN][]SetupOutcome{
		telephony.APNDefault: {},                                         // connects first try
		telephony.APNIMS:     {fail},                                     // one retry
		telephony.APNMMS:     {fail, fail, fail, fail, fail, fail, fail}, // abandons
	})
	for _, apn := range []telephony.APN{telephony.APNDefault, telephony.APNIMS, telephony.APNMMS} {
		if err := tr.EnableAPN(apn); err != nil {
			t.Fatal(err)
		}
	}
	clock.RunAll()
	if tr.State(telephony.APNDefault) != DcActive || tr.State(telephony.APNIMS) != DcActive {
		t.Fatalf("states: default=%v ims=%v", tr.State(telephony.APNDefault), tr.State(telephony.APNIMS))
	}
	if tr.State(telephony.APNMMS) != DcInactive {
		t.Fatalf("mms state = %v, want Inactive after abandoning", tr.State(telephony.APNMMS))
	}
	active := tr.ActiveAPNs()
	if len(active) != 2 || active[0] != telephony.APNDefault || active[1] != telephony.APNIMS {
		t.Errorf("ActiveAPNs = %v", active)
	}
	if len(log.abandoned) != 1 || log.abandoned[0] != telephony.APNMMS {
		t.Errorf("abandoned = %v", log.abandoned)
	}
	if len(log.connected) != 2 {
		t.Errorf("connected = %v", log.connected)
	}
	// IMS failed once, MMS six+ times; default never.
	imsErrs, mmsErrs := 0, 0
	for _, apn := range log.errors {
		switch apn {
		case telephony.APNIMS:
			imsErrs++
		case telephony.APNMMS:
			mmsErrs++
		case telephony.APNDefault:
			t.Error("default APN reported a setup error")
		}
	}
	if imsErrs != 1 || mmsErrs != 6 {
		t.Errorf("errors ims=%d mms=%d", imsErrs, mmsErrs)
	}
}

func TestDcTrackerEnableWhileBusy(t *testing.T) {
	clock, tr, _ := trackerEnv(t, nil)
	if err := tr.EnableAPN(telephony.APNDefault); err != nil {
		t.Fatal(err)
	}
	if err := tr.EnableAPN(telephony.APNDefault); err == nil {
		t.Error("double enable should error")
	}
	clock.RunAll()
	if err := tr.EnableAPN(telephony.APNDefault); err == nil {
		t.Error("enable while Active should error")
	}
	// Disable then re-enable works.
	tr.DisableAPN(telephony.APNDefault)
	clock.RunAll()
	if err := tr.EnableAPN(telephony.APNDefault); err != nil {
		t.Errorf("re-enable after disable: %v", err)
	}
	clock.RunAll()
	if !tr.AnyActive() {
		t.Error("not active after re-enable")
	}
}

func TestDcTrackerLoseAll(t *testing.T) {
	clock, tr, _ := trackerEnv(t, nil)
	tr.EnableAPN(telephony.APNDefault)
	tr.EnableAPN(telephony.APNIMS)
	clock.RunAll()
	if len(tr.ActiveAPNs()) != 2 {
		t.Fatal("setup failed")
	}
	tr.LoseAll(telephony.CauseSignalLost)
	if tr.AnyActive() {
		t.Error("connections survived radio loss")
	}
	for _, apn := range []telephony.APN{telephony.APNDefault, telephony.APNIMS} {
		if tr.State(apn) != DcInactive {
			t.Errorf("%v state = %v", apn, tr.State(apn))
		}
	}
}

func TestDcTrackerTeardownAll(t *testing.T) {
	clock, tr, _ := trackerEnv(t, nil)
	tr.EnableAPN(telephony.APNDefault)
	tr.EnableAPN(telephony.APNSUPL)
	clock.RunAll()
	tr.TeardownAll()
	clock.RunAll()
	if tr.AnyActive() {
		t.Error("connections survived TeardownAll")
	}
}

func TestDcTrackerUnknownAPN(t *testing.T) {
	_, tr, _ := trackerEnv(t, nil)
	if tr.Connection("nope") != nil {
		t.Error("unknown APN should have nil connection")
	}
	if tr.State("nope") != DcInactive {
		t.Error("unknown APN state should be Inactive")
	}
	tr.DisableAPN("nope") // no-op, must not panic
}

func TestDcTrackerNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil factory did not panic")
		}
	}()
	NewDcTracker(simclock.NewScheduler(), nil, DefaultDataConnectionConfig(), TrackerHooks{})
}
