package android

import (
	"testing"
	"time"

	"repro/internal/simclock"
)

// scriptExecutor executes ops with scripted outcomes after fixed overheads.
type scriptExecutor struct {
	clock     *simclock.Scheduler
	overheads [NumRecoveryOps]time.Duration
	outcomes  []bool // per executed op, in order
	executed  []RecoveryOp
}

func (e *scriptExecutor) Execute(op RecoveryOp, done func(bool)) {
	e.executed = append(e.executed, op)
	fixed := false
	if len(e.executed)-1 < len(e.outcomes) {
		fixed = e.outcomes[len(e.executed)-1]
	}
	e.clock.After(e.overheads[op-1], func() { done(fixed) })
}

func defaultOverheads() [NumRecoveryOps]time.Duration {
	return [NumRecoveryOps]time.Duration{500 * time.Millisecond, 2 * time.Second, 6 * time.Second}
}

func newEngine(t *testing.T, trig Trigger, outcomes []bool) (*simclock.Scheduler, *RecoveryEngine, *scriptExecutor, *[]Resolution) {
	t.Helper()
	clock := simclock.NewScheduler()
	exec := &scriptExecutor{clock: clock, overheads: defaultOverheads(), outcomes: outcomes}
	var resolutions []Resolution
	e := NewRecoveryEngine(clock, trig, exec, func(r Resolution) { resolutions = append(resolutions, r) })
	return clock, e, exec, &resolutions
}

func TestAutoRecoveryDuringFirstProbation(t *testing.T) {
	clock, e, exec, res := newEngine(t, DefaultFixedTrigger, nil)
	e.Start()
	clock.After(10*time.Second, func() { e.NotifyResolved(ResolvedAuto) })
	clock.RunAll()
	if len(*res) != 1 {
		t.Fatalf("resolutions = %d, want 1", len(*res))
	}
	r := (*res)[0]
	if r.By != ResolvedAuto || r.Duration != 10*time.Second || r.OpsExecuted != 0 {
		t.Errorf("resolution = %+v", r)
	}
	if len(exec.executed) != 0 {
		t.Error("no op should have run before the probation expired")
	}
	if e.Active() {
		t.Error("engine still active after resolution")
	}
}

func TestFirstStageFixes(t *testing.T) {
	clock, e, exec, res := newEngine(t, DefaultFixedTrigger, []bool{true})
	e.Start()
	clock.RunAll()
	if len(*res) != 1 {
		t.Fatalf("resolutions = %d", len(*res))
	}
	r := (*res)[0]
	if r.By != ResolvedOp1 || r.OpsExecuted != 1 {
		t.Errorf("resolution = %+v, want op1 fix", r)
	}
	// Duration = Pro0 (60s) + O1 (0.5s).
	if r.Duration != 60*time.Second+500*time.Millisecond {
		t.Errorf("duration = %v, want 60.5s", r.Duration)
	}
	if len(exec.executed) != 1 || exec.executed[0] != OpCleanupConnection {
		t.Errorf("executed = %v", exec.executed)
	}
}

func TestProgressionThroughAllStages(t *testing.T) {
	clock, e, exec, res := newEngine(t, DefaultFixedTrigger, []bool{false, false, true})
	e.Start()
	clock.RunAll()
	if len(exec.executed) != 3 {
		t.Fatalf("executed ops = %v, want all three stages", exec.executed)
	}
	want := []RecoveryOp{OpCleanupConnection, OpReregister, OpRestartRadio}
	for i, op := range want {
		if exec.executed[i] != op {
			t.Fatalf("op order = %v, want %v", exec.executed, want)
		}
	}
	r := (*res)[0]
	if r.By != ResolvedOp3 || r.OpsExecuted != 3 {
		t.Errorf("resolution = %+v", r)
	}
	// Duration = 60 + 0.5 + 60 + 2 + 60 + 6 = 188.5s. The vanilla default
	// takes over three minutes to escalate — the inefficiency the paper
	// measures.
	wantDur := 188*time.Second + 500*time.Millisecond
	if r.Duration != wantDur {
		t.Errorf("duration = %v, want %v", r.Duration, wantDur)
	}
}

func TestTIMPTriggerShortensRecovery(t *testing.T) {
	clock, e, _, res := newEngine(t, PaperTIMPTrigger, []bool{true})
	e.Start()
	clock.RunAll()
	r := (*res)[0]
	// Duration = Pro0 (21s) + O1 (0.5s).
	if r.Duration != 21*time.Second+500*time.Millisecond {
		t.Errorf("duration = %v, want 21.5s with the TIMP trigger", r.Duration)
	}
}

func TestAllStagesFailThenExternalRecovery(t *testing.T) {
	clock, e, exec, res := newEngine(t, PaperTIMPTrigger, []bool{false, false, false})
	e.Start()
	clock.RunAll() // all ops executed and failed; engine waits
	if len(*res) != 0 {
		t.Fatal("episode should still be open after all ops fail")
	}
	if !e.Active() {
		t.Fatal("engine should remain active")
	}
	clock.After(time.Hour, func() { e.NotifyResolved(ResolvedAuto) })
	clock.RunAll()
	if len(*res) != 1 {
		t.Fatalf("resolutions = %d", len(*res))
	}
	if (*res)[0].OpsExecuted != 3 {
		t.Errorf("OpsExecuted = %d, want 3", (*res)[0].OpsExecuted)
	}
	_ = exec
}

func TestUserResetDuringProbation(t *testing.T) {
	clock, e, _, res := newEngine(t, DefaultFixedTrigger, nil)
	e.Start()
	clock.After(30*time.Second, func() { e.NotifyResolved(ResolvedUserReset) })
	clock.RunAll()
	r := (*res)[0]
	if r.By != ResolvedUserReset || r.Duration != 30*time.Second {
		t.Errorf("resolution = %+v", r)
	}
}

func TestExternalResolutionWhileOpExecuting(t *testing.T) {
	clock, e, _, res := newEngine(t, ProfileTrigger{time.Second, time.Second, time.Second}, []bool{true})
	e.Start()
	// Op starts at t=1s, completes at 1.5s; auto-recovery lands at 1.2s.
	clock.After(1200*time.Millisecond, func() { e.NotifyResolved(ResolvedAuto) })
	clock.RunAll()
	if len(*res) != 1 {
		t.Fatalf("resolutions = %d, want exactly 1 (op completion ignored)", len(*res))
	}
	if (*res)[0].By != ResolvedAuto {
		t.Errorf("resolved by %v, want auto", (*res)[0].By)
	}
}

func TestNotifyResolvedWhenIdleIsNoOp(t *testing.T) {
	_, e, _, res := newEngine(t, DefaultFixedTrigger, nil)
	e.NotifyResolved(ResolvedAuto)
	if len(*res) != 0 {
		t.Error("idle NotifyResolved produced a resolution")
	}
}

func TestStartIdempotentWhileActive(t *testing.T) {
	clock, e, exec, _ := newEngine(t, ProfileTrigger{time.Second, time.Second, time.Second}, []bool{true})
	e.Start()
	clock.Run(500 * time.Millisecond)
	e.Start() // ignored; must not reset the probation
	clock.RunAll()
	if len(exec.executed) != 1 {
		t.Fatalf("double Start perturbed the engine: %v", exec.executed)
	}
}

func TestEngineReusableAcrossEpisodes(t *testing.T) {
	clock, e, _, res := newEngine(t, PaperTIMPTrigger, []bool{true, true})
	e.Start()
	clock.RunAll()
	e.Start()
	clock.RunAll()
	if len(*res) != 2 {
		t.Fatalf("resolutions = %d, want 2", len(*res))
	}
	if (*res)[1].By != ResolvedOp1 {
		t.Errorf("second episode resolution = %+v", (*res)[1])
	}
}

func TestTriggerAccessors(t *testing.T) {
	if DefaultFixedTrigger.Probation(0) != time.Minute || DefaultFixedTrigger.Probation(2) != time.Minute {
		t.Error("fixed trigger should always return one minute")
	}
	if DefaultFixedTrigger.Name() != "fixed" || PaperTIMPTrigger.Name() != "timp" {
		t.Error("bad trigger names")
	}
	if PaperTIMPTrigger.Probation(0) != 21*time.Second ||
		PaperTIMPTrigger.Probation(1) != 6*time.Second ||
		PaperTIMPTrigger.Probation(2) != 16*time.Second {
		t.Error("paper TIMP trigger values wrong")
	}
	// Out-of-range stages clamp to the last probation.
	if PaperTIMPTrigger.Probation(5) != 16*time.Second || PaperTIMPTrigger.Probation(-1) != 16*time.Second {
		t.Error("out-of-range stage should clamp")
	}
}

func TestRecoveryOpStrings(t *testing.T) {
	if OpCleanupConnection.String() != "cleanup-connection" ||
		OpReregister.String() != "re-register" ||
		OpRestartRadio.String() != "restart-radio" {
		t.Error("bad op strings")
	}
	if RecoveryOp(9).String() != "op-9" {
		t.Error("unknown op string")
	}
}

func TestResolvedByStrings(t *testing.T) {
	cases := map[ResolvedBy]string{
		ResolvedAuto: "auto", ResolvedOp1: "op1-cleanup", ResolvedOp2: "op2-reregister",
		ResolvedOp3: "op3-radio-restart", ResolvedUserReset: "user-reset",
		ResolvedGiveUp: "gave-up", ResolvedNone: "none",
	}
	for by, s := range cases {
		if by.String() != s {
			t.Errorf("%d.String() = %q, want %q", by, by.String(), s)
		}
	}
}

func TestNilEngineDependenciesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil trigger did not panic")
		}
	}()
	NewRecoveryEngine(simclock.NewScheduler(), nil, &scriptExecutor{}, nil)
}
