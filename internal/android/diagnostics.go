package android

import (
	"time"

	"repro/internal/simclock"
	"repro/internal/telephony"
)

// DataStallReport mirrors Android's ConnectivityDiagnosticsManager
// DataStallReport: what user-space apps are allowed to see about a stall
// (§2.1: the Data_Stall notifier and Out_of_Service checker are exposed to
// apps; Data_Setup_Error is not).
type DataStallReport struct {
	// DetectedAt is when the stall was flagged.
	DetectedAt simclock.Time
	// RAT and Level are the camped radio conditions at detection.
	RAT   telephony.RAT
	Level telephony.SignalLevel
}

// DiagnosticsCallback receives app-visible connectivity events.
type DiagnosticsCallback struct {
	// OnDataStallSuspected fires when the platform detects a stall.
	OnDataStallSuspected func(DataStallReport)
	// OnServiceStateChanged fires on registration-state changes
	// (the Out_of_Service checker).
	OnServiceStateChanged func(telephony.ServiceState)
}

// DiagnosticsManager fans platform events out to registered app callbacks
// — the user-space notification surface the paper's monitoring service
// could NOT rely on (it needed framework instrumentation for everything
// else), reproduced here for completeness.
type DiagnosticsManager struct {
	clock     *simclock.Scheduler
	callbacks map[int]DiagnosticsCallback
	nextID    int

	lastState telephony.ServiceState
}

// NewDiagnosticsManager builds an empty manager.
func NewDiagnosticsManager(clock *simclock.Scheduler) *DiagnosticsManager {
	if clock == nil {
		panic("android: nil clock")
	}
	return &DiagnosticsManager{
		clock:     clock,
		callbacks: make(map[int]DiagnosticsCallback),
		lastState: telephony.StateInService,
	}
}

// Register adds an app callback and returns a handle for Unregister.
func (m *DiagnosticsManager) Register(cb DiagnosticsCallback) int {
	m.nextID++
	m.callbacks[m.nextID] = cb
	return m.nextID
}

// Unregister removes a callback; unknown handles are ignored.
func (m *DiagnosticsManager) Unregister(handle int) { delete(m.callbacks, handle) }

// Registered returns the number of live callbacks.
func (m *DiagnosticsManager) Registered() int { return len(m.callbacks) }

// NotifyDataStall publishes a stall report to every app callback.
func (m *DiagnosticsManager) NotifyDataStall(rat telephony.RAT, level telephony.SignalLevel) {
	report := DataStallReport{DetectedAt: m.clock.Now(), RAT: rat, Level: level}
	for _, cb := range m.callbacks {
		if cb.OnDataStallSuspected != nil {
			cb.OnDataStallSuspected(report)
		}
	}
}

// NotifyServiceState publishes a registration-state change; repeated
// identical states are suppressed like the platform does.
func (m *DiagnosticsManager) NotifyServiceState(s telephony.ServiceState) {
	if s == m.lastState {
		return
	}
	m.lastState = s
	for _, cb := range m.callbacks {
		if cb.OnServiceStateChanged != nil {
			cb.OnServiceStateChanged(s)
		}
	}
}

// StallAge is a convenience for app code: how long ago a report fired.
func (m *DiagnosticsManager) StallAge(r DataStallReport) time.Duration {
	return m.clock.Now() - r.DetectedAt
}
