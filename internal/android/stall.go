package android

import (
	"time"

	"repro/internal/simclock"
)

// StallDetectorConfig tunes Data_Stall detection.
type StallDetectorConfig struct {
	// Window is the observation window; Android uses one minute.
	Window time.Duration
	// CheckInterval is how often the window is evaluated.
	CheckInterval time.Duration
	// TxThreshold is the minimum outbound TCP segment count that, combined
	// with zero inbound segments, declares a stall; Android uses 10.
	TxThreshold int
}

// DefaultStallDetectorConfig returns Android's parameters: a Data_Stall is
// reported when there have been over 10 outbound TCP segments but not a
// single inbound segment during the last minute (statistics kept by the
// kernel's network stack).
func DefaultStallDetectorConfig() StallDetectorConfig {
	return StallDetectorConfig{
		Window:        time.Minute,
		CheckInterval: 10 * time.Second,
		TxThreshold:   10,
	}
}

// StallDetector watches TCP segment counters for the Data_Stall condition.
// It reproduces the detection granularity problem the paper fixes in
// Android-MOD: detection lags the actual stall onset by up to Window, so
// durations measured from detection alone carry non-trivial error (§2.2).
type StallDetector struct {
	clock *simclock.Scheduler
	cfg   StallDetectorConfig
	// OnStall fires once per stall episode at detection time.
	OnStall func()

	running bool
	stalled bool
	ticker  *simclock.Timer
	samples []segSample
}

type segSample struct {
	at     simclock.Time
	tx, rx int
}

// NewStallDetector creates a detector; call Start when the data connection
// becomes active.
func NewStallDetector(clock *simclock.Scheduler, cfg StallDetectorConfig, onStall func()) *StallDetector {
	if cfg.Window <= 0 || cfg.CheckInterval <= 0 || cfg.TxThreshold <= 0 {
		cfg = DefaultStallDetectorConfig()
	}
	return &StallDetector{clock: clock, cfg: cfg, OnStall: onStall}
}

// Start begins periodic evaluation. Counters are cleared.
func (d *StallDetector) Start() {
	if d.running {
		return
	}
	d.running = true
	d.stalled = false
	d.samples = d.samples[:0]
	d.scheduleTick()
}

// Stop halts evaluation (connection torn down).
func (d *StallDetector) Stop() {
	d.running = false
	d.stalled = false
	if d.ticker != nil {
		d.ticker.Stop()
	}
	d.samples = d.samples[:0]
}

// Running reports whether the detector is active.
func (d *StallDetector) Running() bool { return d.running }

// Stalled reports whether a stall is currently flagged.
func (d *StallDetector) Stalled() bool { return d.stalled }

// RecordTx accounts n outbound TCP segments.
func (d *StallDetector) RecordTx(n int) {
	if !d.running || n <= 0 {
		return
	}
	d.samples = append(d.samples, segSample{at: d.clock.Now(), tx: n})
}

// RecordRx accounts n inbound TCP segments. Any inbound traffic clears a
// flagged stall: the kernel statistics no longer match the condition.
func (d *StallDetector) RecordRx(n int) {
	if !d.running || n <= 0 {
		return
	}
	d.samples = append(d.samples, segSample{at: d.clock.Now(), rx: n})
	if d.stalled {
		d.stalled = false
	}
}

// ClearStall resets the stall flag after recovery so a subsequent episode
// is reported again.
func (d *StallDetector) ClearStall() { d.stalled = false }

func (d *StallDetector) scheduleTick() {
	d.ticker = d.clock.After(d.cfg.CheckInterval, func() {
		if !d.running {
			return
		}
		d.evaluate()
		d.scheduleTick()
	})
}

func (d *StallDetector) evaluate() {
	cutoff := d.clock.Now() - d.cfg.Window
	// Prune samples older than the window.
	keep := d.samples[:0]
	tx, rx := 0, 0
	for _, s := range d.samples {
		if s.at < cutoff {
			continue
		}
		keep = append(keep, s)
		tx += s.tx
		rx += s.rx
	}
	d.samples = keep
	if d.stalled {
		return
	}
	if tx > d.cfg.TxThreshold && rx == 0 {
		d.stalled = true
		if d.OnStall != nil {
			d.OnStall()
		}
	}
}
