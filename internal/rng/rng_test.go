package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent1, parent2 := New(7), New(7)
	c1 := parent1.Split("devices")
	c2 := parent2.Split("devices")
	for i := 0; i < 100; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("Split with same label from same parent state diverged")
		}
	}
	d1 := New(7).Split("devices")
	d2 := New(7).Split("basestations")
	same := true
	for i := 0; i < 10; i++ {
		if d1.Float64() != d2.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different labels produced identical streams")
	}
}

func TestSplitIndexed(t *testing.T) {
	a := SplitIndexed(99, "device", 5)
	b := SplitIndexed(99, "device", 5)
	c := SplitIndexed(99, "device", 6)
	diverged := false
	for i := 0; i < 50; i++ {
		av, cv := a.Float64(), c.Float64()
		if av != b.Float64() {
			t.Fatal("identical (seed,label,index) diverged")
		}
		if av != cv {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different indices produced identical streams")
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(2)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %.4f, want ~0.30", got)
	}
}

func TestExpMean(t *testing.T) {
	s := New(3)
	n, sum := 200000, 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(42)
	}
	mean := sum / float64(n)
	if math.Abs(mean-42) > 1 {
		t.Errorf("Exp(42) sample mean = %.2f, want ~42", mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	s := New(3)
	if s.Exp(0) != 0 || s.Exp(-5) != 0 {
		t.Error("Exp with non-positive mean should return 0")
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(4)
	n := 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.LogNormal(2, 1.5) // median should be e^2 ≈ 7.389
	}
	// crude median: count below e^2
	below := 0
	for _, x := range xs {
		if x < math.Exp(2) {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("LogNormal median check: %.4f below e^mu, want ~0.5", frac)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(5)
	f := func(seed int64) bool {
		v := s.Uniform(10, 20)
		return v >= 10 && v < 20
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(6)
	for i := 0; i < 10000; i++ {
		v := s.Pareto(1.2, 1, 1000)
		if v < 1-1e-9 || v > 1000+1e-9 {
			t.Fatalf("Pareto variate %v outside [1,1000]", v)
		}
	}
}

func TestParetoDegenerate(t *testing.T) {
	s := New(6)
	if got := s.Pareto(1.2, 0, 10); got != 0 {
		t.Errorf("Pareto with lo=0 = %v, want 0", got)
	}
	if got := s.Pareto(1.2, 5, 5); got != 5 {
		t.Errorf("Pareto with hi==lo = %v, want 5", got)
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(7)
	z := s.Zipf(1.3, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Rank()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[500] {
		t.Errorf("Zipf not skewed: c0=%d c10=%d c500=%d", counts[0], counts[10], counts[500])
	}
}

func TestZipfAlphaClamp(t *testing.T) {
	s := New(8)
	z := s.Zipf(0.5, 100) // alpha <= 1 must be clamped, not panic
	for i := 0; i < 1000; i++ {
		if r := z.Rank(); r >= 100 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestCategoricalProportions(t *testing.T) {
	s := New(9)
	c := NewCategorical([]float64{1, 2, 7})
	counts := make([]int, 3)
	n := 200000
	for i := 0; i < n; i++ {
		counts[c.Draw(s)]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i, w := range want {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-w) > 0.01 {
			t.Errorf("category %d frequency %.4f, want ~%.2f", i, got, w)
		}
	}
	for i, w := range want {
		if math.Abs(c.Prob(i)-w) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want %v", i, c.Prob(i), w)
		}
	}
}

func TestCategoricalNegativeWeightTreatedAsZero(t *testing.T) {
	s := New(10)
	c := NewCategorical([]float64{-1, 0, 5})
	for i := 0; i < 1000; i++ {
		if got := c.Draw(s); got != 2 {
			t.Fatalf("Draw() = %d, want 2 (only positive weight)", got)
		}
	}
}

func TestCategoricalAllZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("all-zero weights did not panic")
		}
	}()
	NewCategorical([]float64{0, 0})
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}
