// Package rng provides deterministic, stream-splittable random number
// generation and the samplers the fleet simulator draws from: exponential
// inter-arrival times, lognormal durations, Zipf popularity, and weighted
// categorical choices.
//
// Every stochastic component in the simulator takes an explicit *Source so
// experiments are reproducible from a single scenario seed, and so device
// shards sharded across goroutines never contend on a shared generator.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// Source is a deterministic random source with distribution helpers.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream from a label. Identical
// (parent seed, label) pairs always produce the same stream, so adding a
// consumer never perturbs the draws of existing consumers.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(int64(h.Sum64()) ^ s.r.Int63())
}

// SplitIndexed derives an independent child stream from a label and index,
// e.g. one stream per simulated device.
func SplitIndexed(seed int64, label string, index int) *Source {
	return New(IndexedSeed(seed, label, index))
}

// IndexedSeed is the seed SplitIndexed derives from (seed, label, index).
// Exposing it lets a caller Reseed an existing Source onto the same stream
// SplitIndexed would have created, without allocating a new generator.
func IndexedSeed(seed int64, label string, index int) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
		buf[8+i] = byte(index >> (8 * i))
	}
	h.Write(buf[:])
	return int64(h.Sum64())
}

// Reseed re-seeds the Source in place. The subsequent draw sequence is
// identical to New(seed)'s, so a worker lane can reuse one Source across
// many simulated devices instead of allocating a generator per device.
func (s *Source) Reseed(seed int64) { s.r.Seed(seed) }

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform value in [0,n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Exp returns an exponential variate with the given mean (not rate).
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.r.ExpFloat64() * mean
}

// Normal returns a normal variate with the given mean and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return s.r.NormFloat64()*stddev + mean
}

// LogNormal returns a lognormal variate where mu and sigma are the mean and
// standard deviation of the variate's natural logarithm. Cellular failure
// durations are heavy-tailed; the paper reports 70.8% of failures under 30 s
// with a maximum of 25.5 hours, which a lognormal reproduces well.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.r.NormFloat64()*sigma + mu)
}

// Pareto returns a bounded Pareto variate on [lo, hi] with tail index alpha.
func (s *Source) Pareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		return lo
	}
	u := s.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Zipf returns a sampler of ranks in [0, n) with exponent alpha (>1 means
// steeper skew). The paper observes a Zipf-like distribution of failures
// across base stations (Figure 11).
func (s *Source) Zipf(alpha float64, n uint64) *Zipf {
	if alpha <= 1 {
		alpha = 1.0001
	}
	return &Zipf{z: rand.NewZipf(s.r, alpha, 1, n-1)}
}

// Zipf samples Zipf-distributed ranks.
type Zipf struct {
	z *rand.Zipf
}

// Rank returns the next rank (0 is the most popular).
func (z *Zipf) Rank() uint64 { return z.z.Uint64() }

// Categorical samples indices proportionally to fixed weights. It holds no
// randomness of its own, so one table can be shared across many sources.
type Categorical struct {
	cum []float64
}

// NewCategorical builds a sampler over weights (non-negative, not all zero).
func NewCategorical(weights []float64) *Categorical {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("rng: categorical weights sum to zero")
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Categorical{cum: cum}
}

// Draw returns an index with probability proportional to its weight.
func (c *Categorical) Draw(r *Source) int {
	u := r.Float64()
	return sort.SearchFloat64s(c.cum, u)
}

// Len returns the number of categories.
func (c *Categorical) Len() int { return len(c.cum) }

// Prob returns the normalized probability of index i.
func (c *Categorical) Prob(i int) float64 {
	if i == 0 {
		return c.cum[0]
	}
	return c.cum[i] - c.cum[i-1]
}

// BuildCum fills cum (reusing its storage) with the cumulative normalized
// distribution NewCategorical would build from weights. Draws via DrawCum
// are bit-identical to NewCategorical(weights).Draw, but the table lives
// in caller-owned scratch instead of a fresh allocation per build.
func BuildCum(cum, weights []float64) []float64 {
	cum = append(cum[:0], weights...)
	total := 0.0
	for i, w := range cum {
		if w < 0 {
			w = 0
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("rng: categorical weights sum to zero")
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

// DrawCum draws an index from a cumulative table built by BuildCum.
func DrawCum(r *Source, cum []float64) int {
	u := r.Float64()
	return sort.SearchFloat64s(cum, u)
}

// Shuffle pseudorandomly permutes the first n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Perm returns a pseudorandom permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }
