package telephony

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRATStringAndGeneration(t *testing.T) {
	cases := []struct {
		rat RAT
		s   string
		gen int
	}{
		{RAT2G, "2G", 2}, {RAT3G, "3G", 3}, {RAT4G, "4G", 4}, {RAT5G, "5G", 5},
		{RATUnknown, "unknown", 0}, {RAT(99), "unknown", 0},
	}
	for _, c := range cases {
		if c.rat.String() != c.s {
			t.Errorf("%v.String() = %q, want %q", uint8(c.rat), c.rat.String(), c.s)
		}
		if c.rat.Generation() != c.gen {
			t.Errorf("%v.Generation() = %d, want %d", c.rat, c.rat.Generation(), c.gen)
		}
	}
	if len(AllRATs) != 4 {
		t.Errorf("AllRATs has %d entries, want 4", len(AllRATs))
	}
}

func TestSignalLevelValid(t *testing.T) {
	for l := Level0; l <= Level5; l++ {
		if !l.Valid() {
			t.Errorf("level %d should be valid", l)
		}
	}
	if SignalLevel(6).Valid() {
		t.Error("level 6 should be invalid")
	}
	if Level3.String() != "level-3" {
		t.Errorf("String = %q", Level3.String())
	}
}

func TestCellIdentityGlobalIDUnique(t *testing.T) {
	a := CellIdentity{MCC: 460, MNC: 0, LAC: 4521, CID: 8811}
	b := CellIdentity{MCC: 460, MNC: 0, LAC: 4521, CID: 8812}
	c := a
	c.CDMA = true
	if a.GlobalID() == b.GlobalID() {
		t.Error("different cells share a GlobalID")
	}
	if a.GlobalID() == c.GlobalID() {
		t.Error("CDMA flag not reflected in GlobalID")
	}
	if a.String() == c.String() {
		t.Error("CDMA flag not reflected in String")
	}
}

func TestCellIdentityGlobalIDProperty(t *testing.T) {
	f := func(mcc, mnc uint16, lac, cid uint16, cdma bool) bool {
		a := CellIdentity{MCC: mcc, MNC: mnc, LAC: uint32(lac), CID: uint32(cid), CDMA: cdma}
		b := a
		return a.GlobalID() == b.GlobalID()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServiceStateString(t *testing.T) {
	if StateInService.String() != "IN_SERVICE" || StateOutOfService.String() != "OUT_OF_SERVICE" {
		t.Error("bad service state strings")
	}
	if ServiceState(99).String() != "UNKNOWN" {
		t.Error("unknown state should stringify to UNKNOWN")
	}
}

func TestTable2CausesMatchPaper(t *testing.T) {
	top := Table2Causes()
	if len(top) != 10 {
		t.Fatalf("Table2Causes returned %d codes, want 10", len(top))
	}
	if top[0].Cause != CauseGPRSRegistrationFail || top[0].Table2Share != 12.8 {
		t.Errorf("top cause = %v (%.1f%%), want GPRS_REGISTRATION_FAIL 12.8%%", top[0].Name, top[0].Table2Share)
	}
	var total float64
	for i, info := range top {
		total += info.Table2Share
		if i > 0 && info.Table2Share > top[i-1].Table2Share {
			t.Error("Table2Causes not in descending share order")
		}
	}
	if math.Abs(total-46.7) > 0.01 {
		t.Errorf("Table 2 shares sum to %.2f%%, want 46.7%%", total)
	}
}

func TestTable2LayersSpanStack(t *testing.T) {
	// §3.2: causes cover physical (SIGNAL_LOST, IRAT_HANDOVER_FAILED),
	// link/MAC (PPP_TIMEOUT) and network (INVALID_EMM_STATE) layers.
	if CauseSignalLost.CauseLayer() != LayerPhysical {
		t.Error("SIGNAL_LOST should be physical layer")
	}
	if CausePPPTimeout.CauseLayer() != LayerLinkMAC {
		t.Error("PPP_TIMEOUT should be link/MAC layer")
	}
	if CauseInvalidEMMState.CauseLayer() != LayerNetwork {
		t.Error("INVALID_EMM_STATE should be network layer")
	}
	seen := map[Layer]bool{}
	for _, info := range Table2Causes() {
		seen[info.Layer] = true
	}
	for _, l := range []Layer{LayerPhysical, LayerLinkMAC, LayerNetwork} {
		if !seen[l] {
			t.Errorf("Table 2 causes missing layer %v", l)
		}
	}
}

func TestFalsePositiveClassification(t *testing.T) {
	fps := []FailCause{
		CauseCongestion, CauseInsufficientResources, CauseVoiceCallPreemption,
		CauseBillingSuspension, CauseManualDetach, CauseRadioPowerOff,
	}
	for _, c := range fps {
		if !c.IsFalsePositive() {
			t.Errorf("%v should be a false positive", c)
		}
	}
	for _, info := range Table2Causes() {
		if info.Cause.IsFalsePositive() {
			t.Errorf("Table 2 cause %v must not be a false positive", info.Name)
		}
	}
}

func TestInfoUnknownCause(t *testing.T) {
	info := Info(FailCause(999999))
	if info.Name != "UNKNOWN" || info.FalsePositive || info.Layer != LayerUnknown {
		t.Errorf("unknown cause info = %+v", info)
	}
	if FailCause(999999).String() != "UNKNOWN" {
		t.Error("unknown cause should stringify to UNKNOWN")
	}
}

func TestAllCausesSortedAndUnique(t *testing.T) {
	all := AllCauses()
	if len(all) < 40 {
		t.Fatalf("registry has %d causes, want a substantial subset (>=40)", len(all))
	}
	seen := map[FailCause]bool{}
	for i, info := range all {
		if seen[info.Cause] {
			t.Errorf("duplicate cause %v", info.Cause)
		}
		seen[info.Cause] = true
		if i > 0 && all[i-1].Cause >= info.Cause {
			t.Error("AllCauses not strictly sorted")
		}
	}
}

func TestTrueAndFalsePartition(t *testing.T) {
	all := AllCauses()
	tc, fc := TrueCauses(), FalsePositiveCauses()
	if len(tc)+len(fc) != len(all) {
		t.Errorf("partition sizes %d+%d != %d", len(tc), len(fc), len(all))
	}
	for _, info := range tc {
		if info.FalsePositive {
			t.Errorf("TrueCauses contains FP %v", info.Name)
		}
	}
	for _, info := range fc {
		if !info.FalsePositive {
			t.Errorf("FalsePositiveCauses contains non-FP %v", info.Name)
		}
	}
}

func TestGeneratorWeights(t *testing.T) {
	causes, weights := GeneratorWeights()
	if len(causes) != len(weights) {
		t.Fatal("length mismatch")
	}
	var total float64
	shareOf := map[FailCause]float64{}
	for i, c := range causes {
		if c.IsFalsePositive() {
			t.Errorf("generator includes false positive %v", c)
		}
		if weights[i] <= 0 {
			t.Errorf("cause %v has non-positive weight %v", c, weights[i])
		}
		total += weights[i]
		shareOf[c] = weights[i]
	}
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("weights sum to %v, want 100", total)
	}
	// Table-2 causes must carry exactly their published share.
	if math.Abs(shareOf[CauseGPRSRegistrationFail]-12.8) > 1e-9 {
		t.Errorf("GPRS_REGISTRATION_FAIL weight = %v, want 12.8", shareOf[CauseGPRSRegistrationFail])
	}
	if math.Abs(shareOf[CauseIRATHandoverFailed]-1.6) > 1e-9 {
		t.Errorf("IRAT_HANDOVER_FAILED weight = %v, want 1.6", shareOf[CauseIRATHandoverFailed])
	}
}

func TestAPNConstants(t *testing.T) {
	if APNDefault != "default" || APNIMS != "ims" {
		t.Error("unexpected APN constants")
	}
}
