// Package telephony defines the cellular domain vocabulary shared by the
// whole reproduction: radio access technologies, signal levels, cell
// identity, APNs, service state, and the data-connection failure-cause
// registry modeled on Android's DataFailCause.
//
// Android defines 344 data-fail-cause codes; the paper's Table 2 lists the
// ten most common ones (46.7% of all Data_Setup_Error failures after
// false-positive removal) plus codes correlated with false positives, such
// as base-station overload rejections. This package carries the subset the
// study's analysis depends on, with the metadata (protocol layer, false
// positive correlation) that the monitoring service uses to filter events.
package telephony

import "fmt"

// RAT is a radio access technology generation.
type RAT uint8

// Radio access technologies in increasing generation order.
const (
	RATUnknown RAT = iota
	RAT2G
	RAT3G
	RAT4G
	RAT5G
)

// AllRATs lists the concrete RATs in generation order.
var AllRATs = []RAT{RAT2G, RAT3G, RAT4G, RAT5G}

func (r RAT) String() string {
	switch r {
	case RAT2G:
		return "2G"
	case RAT3G:
		return "3G"
	case RAT4G:
		return "4G"
	case RAT5G:
		return "5G"
	default:
		return "unknown"
	}
}

// Generation returns the numeric generation (2..5), or 0 if unknown.
func (r RAT) Generation() int {
	switch r {
	case RAT2G:
		return 2
	case RAT3G:
		return 3
	case RAT4G:
		return 4
	case RAT5G:
		return 5
	default:
		return 0
	}
}

// SignalLevel is Android's 0 (worst) to 5 (excellent) signal bucketing.
// The paper's Figures 15-17 are keyed on these levels.
type SignalLevel uint8

// Signal levels. LevelExcellent (5) is the counter-intuitive bucket the
// paper studies: dense transport-hub deployments give excellent RSS yet a
// higher failure likelihood than levels 1-4.
const (
	Level0 SignalLevel = iota // none / worst
	Level1
	Level2
	Level3
	Level4
	Level5 // excellent

	NumSignalLevels = 6
)

func (l SignalLevel) String() string { return fmt.Sprintf("level-%d", uint8(l)) }

// Valid reports whether the level is within Android's 0-5 range.
func (l SignalLevel) Valid() bool { return l < NumSignalLevels }

// CellIdentity identifies a base station. GSM/LTE/NR cells carry
// MCC/MNC/LAC/CID; CDMA cells instead carry SID/NID/BID (footnote 3 of the
// paper), distinguished by CDMA.
type CellIdentity struct {
	MCC  uint16 // mobile country code
	MNC  uint16 // mobile network code (or CDMA SID)
	LAC  uint32 // location area code (or CDMA NID)
	CID  uint32 // cell identity (or CDMA BID)
	CDMA bool
}

func (c CellIdentity) String() string {
	if c.CDMA {
		return fmt.Sprintf("cdma:%d-%d-%d-%d", c.MCC, c.MNC, c.LAC, c.CID)
	}
	return fmt.Sprintf("cell:%d-%d-%d-%d", c.MCC, c.MNC, c.LAC, c.CID)
}

// GlobalID packs the identity into a comparable 64-bit key for maps.
func (c CellIdentity) GlobalID() uint64 {
	id := uint64(c.MCC)<<48 | uint64(c.MNC)<<32 | uint64(c.LAC&0xFFFF)<<16 | uint64(c.CID&0xFFFF)
	if c.CDMA {
		id |= 1 << 63
	}
	return id
}

// APN is an access point name.
type APN string

// Common APN types carried in trace records.
const (
	APNDefault APN = "default"
	APNIMS     APN = "ims"
	APNMMS     APN = "mms"
	APNSUPL    APN = "supl"
)

// ServiceState mirrors Android's ServiceState voice/data registration state.
type ServiceState uint8

// Service states.
const (
	StateInService ServiceState = iota
	StateOutOfService
	StateEmergencyOnly
	StatePowerOff
)

func (s ServiceState) String() string {
	switch s {
	case StateInService:
		return "IN_SERVICE"
	case StateOutOfService:
		return "OUT_OF_SERVICE"
	case StateEmergencyOnly:
		return "EMERGENCY_ONLY"
	case StatePowerOff:
		return "POWER_OFF"
	default:
		return "UNKNOWN"
	}
}
