// Package failure defines the cellular failure event model of the study:
// the three dominant failure kinds (Data_Setup_Error, Out_of_Service,
// Data_Stall) plus the long tail of legacy service failures, the in-situ
// context recorded with each event (§2.2), and the false-positive classes
// the monitoring service filters out.
package failure

import (
	"time"

	"repro/internal/android"
	"repro/internal/geo"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// Kind is the failure category.
type Kind uint8

// Failure kinds. The first three cover >99% of collected events; the
// remainder relate to legacy short-message and voice services (§3.1).
const (
	DataSetupError Kind = iota
	OutOfService
	DataStall
	SMSSendFail
	VoiceFailure

	NumKinds = 5
)

func (k Kind) String() string {
	switch k {
	case DataSetupError:
		return "Data_Setup_Error"
	case OutOfService:
		return "Out_of_Service"
	case DataStall:
		return "Data_Stall"
	case SMSSendFail:
		return "SMS_Send_Fail"
	case VoiceFailure:
		return "Voice_Failure"
	default:
		return "Unknown"
	}
}

// TransitionInfo records the RAT transition that immediately preceded a
// failure, if any — the context behind Figure 17's per-transition failure
// increases.
type TransitionInfo struct {
	FromRAT   telephony.RAT
	ToRAT     telephony.RAT
	FromLevel telephony.SignalLevel
	ToLevel   telephony.SignalLevel
}

// Event is one captured cellular failure with the in-situ information
// Android-MOD records: RAT, RSS, APN, BS identity, protocol error code,
// and (for stalls) the recovery outcome.
type Event struct {
	Kind Kind

	// Device context.
	DeviceID       uint64
	ModelID        int
	AndroidVersion int // 9 or 10
	FiveGCapable   bool

	// Radio / BS context.
	ISP     simnet.ISPID
	Cell    telephony.CellIdentity
	Region  geo.Region
	DenseBS bool
	RAT     telephony.RAT
	Level   telephony.SignalLevel
	APN     telephony.APN
	Cause   telephony.FailCause

	// Timing. Start is virtual time since the measurement began.
	Start    time.Duration
	Duration time.Duration

	// Data_Stall recovery outcome.
	ResolvedBy  android.ResolvedBy
	OpsExecuted int
	// AutoFixTime is the stall's natural self-recovery time, measured by
	// the Android-MOD probing component (Figure 10's distribution). Zero
	// for non-stall events or stalls fixed by an operation first.
	AutoFixTime time.Duration

	// Transition is non-nil when the failure occurred within the
	// post-transition observation window.
	Transition *TransitionInfo
}

// FalsePositiveClass labels why a suspicious event was discarded (§2.2).
type FalsePositiveClass uint8

// False positive classes.
const (
	FPNone             FalsePositiveClass = iota
	FPVoiceCall                           // connection disruption by an incoming voice call
	FPBalance                             // service suspension due to insufficient account balance
	FPManualDisconnect                    // the user disconnected the network manually
	FPBSOverload                          // rational setup rejection by an overloaded BS
	FPSystemSide                          // probe: loopback ICMP timed out (firewall/proxy/driver)
	FPDNSOnly                             // probe: only DNS resolution is unavailable

	NumFalsePositiveClasses = 7
)

func (c FalsePositiveClass) String() string {
	switch c {
	case FPNone:
		return "none"
	case FPVoiceCall:
		return "incoming-voice-call"
	case FPBalance:
		return "insufficient-balance"
	case FPManualDisconnect:
		return "manual-disconnect"
	case FPBSOverload:
		return "bs-overload"
	case FPSystemSide:
		return "system-side"
	case FPDNSOnly:
		return "dns-unavailable"
	default:
		return "unknown"
	}
}

// ClassifySetupError inspects a Data_Setup_Error's protocol error code and
// reports the false-positive class, or FPNone for a true failure. This is
// the registry-driven filter of §2.2: 344 error codes were analyzed for
// correlation with false positives.
func ClassifySetupError(cause telephony.FailCause) FalsePositiveClass {
	if !cause.IsFalsePositive() {
		return FPNone
	}
	switch cause {
	case telephony.CauseVoiceCallPreemption, telephony.CauseTetheredCallActive:
		return FPVoiceCall
	case telephony.CauseBillingSuspension, telephony.CauseServiceOptionNotSubscribed:
		return FPBalance
	case telephony.CauseManualDetach, telephony.CauseRegularDeactivation, telephony.CauseRadioPowerOff:
		return FPManualDisconnect
	case telephony.CauseCongestion, telephony.CauseInsufficientResources:
		return FPBSOverload
	default:
		return FPBSOverload
	}
}

// IsDataFailure reports whether the kind is one of the three data
// connection failures the study focuses on.
func (k Kind) IsDataFailure() bool {
	return k == DataSetupError || k == OutOfService || k == DataStall
}
