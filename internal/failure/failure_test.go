package failure

import (
	"testing"

	"repro/internal/telephony"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		DataSetupError: "Data_Setup_Error",
		OutOfService:   "Out_of_Service",
		DataStall:      "Data_Stall",
		SMSSendFail:    "SMS_Send_Fail",
		VoiceFailure:   "Voice_Failure",
		Kind(99):       "Unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestIsDataFailure(t *testing.T) {
	for _, k := range []Kind{DataSetupError, OutOfService, DataStall} {
		if !k.IsDataFailure() {
			t.Errorf("%v should be a data failure", k)
		}
	}
	for _, k := range []Kind{SMSSendFail, VoiceFailure} {
		if k.IsDataFailure() {
			t.Errorf("%v should not be a data failure", k)
		}
	}
}

func TestClassifySetupErrorTrueFailures(t *testing.T) {
	for _, info := range telephony.Table2Causes() {
		if got := ClassifySetupError(info.Cause); got != FPNone {
			t.Errorf("Table-2 cause %v classified as %v, want FPNone", info.Name, got)
		}
	}
}

func TestClassifySetupErrorFalsePositives(t *testing.T) {
	cases := map[telephony.FailCause]FalsePositiveClass{
		telephony.CauseVoiceCallPreemption:        FPVoiceCall,
		telephony.CauseTetheredCallActive:         FPVoiceCall,
		telephony.CauseBillingSuspension:          FPBalance,
		telephony.CauseServiceOptionNotSubscribed: FPBalance,
		telephony.CauseManualDetach:               FPManualDisconnect,
		telephony.CauseRegularDeactivation:        FPManualDisconnect,
		telephony.CauseRadioPowerOff:              FPManualDisconnect,
		telephony.CauseCongestion:                 FPBSOverload,
		telephony.CauseInsufficientResources:      FPBSOverload,
	}
	for cause, want := range cases {
		if got := ClassifySetupError(cause); got != want {
			t.Errorf("ClassifySetupError(%v) = %v, want %v", cause, got, want)
		}
	}
}

func TestEveryRegisteredFalsePositiveHasAClass(t *testing.T) {
	for _, info := range telephony.FalsePositiveCauses() {
		if got := ClassifySetupError(info.Cause); got == FPNone {
			t.Errorf("false-positive cause %v classified FPNone", info.Name)
		}
	}
}

func TestFalsePositiveClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := FalsePositiveClass(0); c < NumFalsePositiveClasses; c++ {
		s := c.String()
		if s == "unknown" || seen[s] {
			t.Errorf("class %d has bad or duplicate string %q", c, s)
		}
		seen[s] = true
	}
	if FalsePositiveClass(99).String() != "unknown" {
		t.Error("out-of-range class should be unknown")
	}
}
