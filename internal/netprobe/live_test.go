package netprobe

import (
	"testing"
	"time"
)

func liveSetup(t *testing.T, mode DNSServerMode) (*LiveProber, *TestDNSServer, func()) {
	t.Helper()
	loop, err := NewLoopbackResponder()
	if err != nil {
		t.Fatal(err)
	}
	dns, err := NewTestDNSServer(mode)
	if err != nil {
		loop.Close()
		t.Fatal(err)
	}
	p := NewLiveProber(loop.Addr(), []string{dns.Addr()}, "probe.cellrel.test")
	p.ICMPTimeout = 400 * time.Millisecond
	p.DNSTimeout = 600 * time.Millisecond
	return p, dns, func() {
		loop.Close()
		dns.Close()
	}
}

func TestLiveRoundHealthy(t *testing.T) {
	p, _, cleanup := liveSetup(t, DNSAnswer)
	defer cleanup()
	r := p.Round()
	if !r.LoopbackOK || r.ICMPOK != 1 || r.DNSOK != 1 {
		t.Fatalf("round = %+v", r)
	}
	if got := r.Verdict(); got != VerdictRecovered {
		t.Errorf("verdict = %v, want recovered", got)
	}
	if r.Elapsed > 2*time.Second {
		t.Errorf("healthy round took %v", r.Elapsed)
	}
}

func TestLiveRoundDNSResolutionUnavailable(t *testing.T) {
	p, _, cleanup := liveSetup(t, DNSFail)
	defer cleanup()
	r := p.Round()
	// Server reachable (responds) but resolution fails: the paper's
	// DNS-unavailable false positive.
	if !r.LoopbackOK || r.ICMPOK != 1 || r.DNSOK != 0 {
		t.Fatalf("round = %+v", r)
	}
	if got := r.Verdict(); got != VerdictDNSFP {
		t.Errorf("verdict = %v, want DNS false positive", got)
	}
}

func TestLiveRoundNetworkSilent(t *testing.T) {
	p, _, cleanup := liveSetup(t, DNSSilent)
	defer cleanup()
	r := p.Round()
	// Nothing answers on the network side: a true stall.
	if !r.LoopbackOK || r.ICMPOK != 0 || r.DNSOK != 0 {
		t.Fatalf("round = %+v", r)
	}
	if got := r.Verdict(); got != VerdictStillStalled {
		t.Errorf("verdict = %v, want still-stalled", got)
	}
	// The round is time-bounded by the DNS timeout (paper: ≤ 5 s).
	if r.Elapsed > p.DNSTimeout+400*time.Millisecond {
		t.Errorf("silent round took %v (timeout %v)", r.Elapsed, p.DNSTimeout)
	}
}

func TestLiveRoundSystemSide(t *testing.T) {
	p, _, cleanup := liveSetup(t, DNSAnswer)
	defer cleanup()
	p.LoopbackAddr = "127.0.0.1:1" // nothing listens: local stack "broken"
	r := p.Round()
	if r.LoopbackOK {
		t.Fatal("loopback reported reachable")
	}
	if got := r.Verdict(); got != VerdictSystemSideFP {
		t.Errorf("verdict = %v, want system-side false positive", got)
	}
}

func TestLiveRoundModeSwitch(t *testing.T) {
	p, dns, cleanup := liveSetup(t, DNSSilent)
	defer cleanup()
	if v := p.Round().Verdict(); v != VerdictStillStalled {
		t.Fatalf("initial verdict %v", v)
	}
	dns.SetMode(DNSAnswer) // the "network" heals
	if v := p.Round().Verdict(); v != VerdictRecovered {
		t.Errorf("post-heal verdict %v, want recovered", v)
	}
}

func TestDNSWireRoundTrip(t *testing.T) {
	q, err := encodeDNSQuery(0x1234, "probe.cellrel.test")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := buildDNSResponse(q, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := decodeDNSResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.ID != 0x1234 || parsed.RCode != 0 || parsed.Answers != 2 {
		t.Errorf("parsed = %+v", parsed)
	}
}

func TestDNSWireServfail(t *testing.T) {
	q, _ := encodeDNSQuery(7, "x.test")
	resp, err := buildDNSResponse(q, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := decodeDNSResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.RCode != 2 || parsed.Answers != 0 {
		t.Errorf("parsed = %+v", parsed)
	}
}

func TestDNSNameValidation(t *testing.T) {
	cases := []struct {
		name string
		ok   bool
	}{
		{"example.com", true},
		{"example.com.", true},
		{"a.b.c.d.e", true},
		{"", false},
		{"..", false},
		{"a..b", false},
		{string(make([]byte, 70)) + ".com", false}, // label > 63
	}
	for _, c := range cases {
		_, err := encodeDNSName(c.name)
		if (err == nil) != c.ok {
			t.Errorf("encodeDNSName(%q) err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
	long := ""
	for i := 0; i < 50; i++ {
		long += "abcde."
	}
	if _, err := encodeDNSName(long + "com"); err == nil {
		t.Error("overlong name accepted")
	}
}

func TestDecodeDNSResponseMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 12), // a query, not a response (QR unset)
	}
	for i, c := range cases {
		if _, err := decodeDNSResponse(c); err == nil {
			t.Errorf("case %d: malformed message accepted", i)
		}
	}
	// Truncated question section.
	q, _ := encodeDNSQuery(1, "example.com")
	resp, _ := buildDNSResponse(q, 0, 0)
	if _, err := decodeDNSResponse(resp[:14]); err == nil {
		t.Error("truncated question accepted")
	}
}

func TestSkipDNSNameCompression(t *testing.T) {
	// Name that is just a compression pointer.
	msg := make([]byte, 20)
	msg[12] = 0xC0
	msg[13] = 0x04
	off, err := skipDNSName(msg, 12)
	if err != nil || off != 14 {
		t.Errorf("off=%d err=%v", off, err)
	}
	// Label overrunning the buffer.
	bad := []byte{63}
	if _, err := skipDNSName(bad, 0); err == nil {
		t.Error("overrun accepted")
	}
}

func TestLoopbackResponderCloseIdempotent(t *testing.T) {
	r, err := NewLoopbackResponder()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestMeasureStallLive(t *testing.T) {
	p, dns, cleanup := liveSetup(t, DNSSilent)
	defer cleanup()
	p.ICMPTimeout = 150 * time.Millisecond
	p.DNSTimeout = 200 * time.Millisecond
	go func() {
		time.Sleep(700 * time.Millisecond)
		dns.SetMode(DNSAnswer)
	}()
	out := p.MeasureStall(5*time.Second, 0)
	if out.Verdict != VerdictRecovered {
		t.Fatalf("verdict = %v", out.Verdict)
	}
	if out.Rounds < 2 {
		t.Errorf("rounds = %d, want several while stalled", out.Rounds)
	}
	if out.Duration < 400*time.Millisecond || out.Duration > 3*time.Second {
		t.Errorf("measured %v for a ~0.7s stall", out.Duration)
	}
}

func TestMeasureStallTimesOut(t *testing.T) {
	p, _, cleanup := liveSetup(t, DNSSilent)
	defer cleanup()
	p.ICMPTimeout = 100 * time.Millisecond
	p.DNSTimeout = 120 * time.Millisecond
	out := p.MeasureStall(500*time.Millisecond, 200*time.Millisecond)
	if out.Verdict != VerdictStillStalled {
		t.Fatalf("verdict = %v, want still-stalled at deadline", out.Verdict)
	}
	if out.Duration < 500*time.Millisecond {
		t.Errorf("returned before the deadline: %v", out.Duration)
	}
	// Backoff must not leak into the prober's configuration.
	if p.DNSTimeout != 120*time.Millisecond {
		t.Errorf("timeouts leaked: %v", p.DNSTimeout)
	}
}
