package netprobe

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// LiveProber is the deployable counterpart of the simulated Prober: it runs
// one §2.2 probing round against real sockets. The loopback reachability
// check uses a TCP dial to a local responder instead of a raw ICMP echo
// (ICMP requires privileges Android-MOD has but a test process does not —
// the classification signal, "can the local stack move packets at all", is
// the same); DNS-server reachability and resolution use real UDP with
// hand-rolled RFC 1035 messages.
type LiveProber struct {
	// LoopbackAddr is the local TCP responder standing in for 127.0.0.1
	// ICMP (e.g. a LoopbackResponder's address).
	LoopbackAddr string
	// DNSServers are "host:port" UDP resolver addresses.
	DNSServers []string
	// TestName is the dedicated test server's domain name to resolve.
	TestName string
	// ICMPTimeout and DNSTimeout mirror the paper's 1 s / 5 s.
	ICMPTimeout time.Duration
	DNSTimeout  time.Duration
}

// NewLiveProber returns a prober with the paper's timeouts.
func NewLiveProber(loopbackAddr string, dnsServers []string, testName string) *LiveProber {
	return &LiveProber{
		LoopbackAddr: loopbackAddr,
		DNSServers:   dnsServers,
		TestName:     testName,
		ICMPTimeout:  time.Second,
		DNSTimeout:   5 * time.Second,
	}
}

// RoundResult is one live probing round's raw observations.
type RoundResult struct {
	LoopbackOK bool
	// ICMPOK and DNSOK count reachable servers and successful resolutions.
	ICMPOK int
	DNSOK  int
	// Elapsed is the wall-clock cost of the round (≤ max timeout).
	Elapsed time.Duration
}

// Verdict classifies the round exactly like the simulated prober.
func (r RoundResult) Verdict() Verdict {
	switch {
	case !r.LoopbackOK:
		return VerdictSystemSideFP
	case r.DNSOK > 0:
		return VerdictRecovered
	case r.ICMPOK > 0:
		return VerdictDNSFP
	default:
		return VerdictStillStalled
	}
}

// Round runs one probing round: all probes issued concurrently, results
// gathered at their timeouts.
func (p *LiveProber) Round() RoundResult {
	start := time.Now()
	var mu sync.Mutex
	var res RoundResult
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		ok := p.pingLoopback()
		mu.Lock()
		res.LoopbackOK = ok
		mu.Unlock()
	}()
	for _, server := range p.DNSServers {
		server := server
		wg.Add(2)
		go func() {
			defer wg.Done()
			if p.pingDNSServer(server) {
				mu.Lock()
				res.ICMPOK++
				mu.Unlock()
			}
		}()
		go func() {
			defer wg.Done()
			if p.queryDNS(server) {
				mu.Lock()
				res.DNSOK++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res
}

// pingLoopback checks that the local network stack can complete a
// connection to the loopback responder within the ICMP timeout.
func (p *LiveProber) pingLoopback() bool {
	conn, err := net.DialTimeout("tcp", p.LoopbackAddr, p.ICMPTimeout)
	if err != nil {
		return false
	}
	conn.Close()
	return true
}

// pingDNSServer checks UDP reachability of a DNS server by sending a
// query and accepting *any* response bytes within the ICMP timeout — the
// reachability analogue of an ICMP echo when raw sockets are unavailable.
func (p *LiveProber) pingDNSServer(server string) bool {
	_, err := p.exchange(server, p.ICMPTimeout, false)
	return err == nil
}

// queryDNS requires a well-formed DNS response with NOERROR and at least
// one answer within the DNS timeout.
func (p *LiveProber) queryDNS(server string) bool {
	resp, err := p.exchange(server, p.DNSTimeout, true)
	if err != nil {
		return false
	}
	return resp.RCode == 0 && resp.Answers > 0
}

// exchange sends one query and reads one datagram. parse toggles full
// response validation.
func (p *LiveProber) exchange(server string, timeout time.Duration, parse bool) (dnsResponse, error) {
	id := uint16(rand.Int())
	query, err := encodeDNSQuery(id, p.TestName)
	if err != nil {
		return dnsResponse{}, err
	}
	conn, err := net.DialTimeout("udp", server, timeout)
	if err != nil {
		return dnsResponse{}, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	conn.SetDeadline(deadline)
	if _, err := conn.Write(query); err != nil {
		return dnsResponse{}, err
	}
	buf := make([]byte, maxDNSMessage)
	n, err := conn.Read(buf)
	if err != nil {
		return dnsResponse{}, err
	}
	if !parse {
		return dnsResponse{}, nil
	}
	resp, err := decodeDNSResponse(buf[:n])
	if err != nil {
		return dnsResponse{}, err
	}
	if resp.ID != id {
		return dnsResponse{}, fmt.Errorf("netprobe: DNS response ID mismatch")
	}
	return resp, nil
}

// LoopbackResponder is the tiny local TCP service the live prober's
// loopback check dials (accept-and-close).
type LoopbackResponder struct {
	ln   net.Listener
	wg   sync.WaitGroup
	once sync.Once
}

// NewLoopbackResponder listens on 127.0.0.1 (port 0 = ephemeral).
func NewLoopbackResponder() (*LoopbackResponder, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &LoopbackResponder{ln: ln}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	return r, nil
}

// Addr returns the responder's address.
func (r *LoopbackResponder) Addr() string { return r.ln.Addr().String() }

// Close stops the responder.
func (r *LoopbackResponder) Close() error {
	var err error
	r.once.Do(func() {
		err = r.ln.Close()
		r.wg.Wait()
	})
	return err
}

// DNSServerMode controls a test DNS server's behaviour.
type DNSServerMode int

// Test-server behaviours mirroring the stall fault classes.
const (
	DNSAnswer DNSServerMode = iota // resolve normally
	DNSFail                        // respond SERVFAIL (resolution unavailable)
	DNSSilent                      // reachable transport, no response
)

// TestDNSServer is a minimal UDP DNS server for exercising the live
// prober (and for the examples' local "dedicated test server").
type TestDNSServer struct {
	pc   net.PacketConn
	mode DNSServerMode
	mu   sync.Mutex
	wg   sync.WaitGroup
	once sync.Once
}

// NewTestDNSServer starts a UDP DNS server on 127.0.0.1.
func NewTestDNSServer(mode DNSServerMode) (*TestDNSServer, error) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &TestDNSServer{pc: pc, mode: mode}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the server's address.
func (s *TestDNSServer) Addr() string { return s.pc.LocalAddr().String() }

// SetMode changes behaviour at runtime.
func (s *TestDNSServer) SetMode(m DNSServerMode) {
	s.mu.Lock()
	s.mode = m
	s.mu.Unlock()
}

// Close stops the server.
func (s *TestDNSServer) Close() error {
	var err error
	s.once.Do(func() {
		err = s.pc.Close()
		s.wg.Wait()
	})
	return err
}

func (s *TestDNSServer) serve() {
	defer s.wg.Done()
	buf := make([]byte, maxDNSMessage)
	for {
		n, addr, err := s.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		s.mu.Lock()
		mode := s.mode
		s.mu.Unlock()
		if mode == DNSSilent {
			continue
		}
		var resp []byte
		if mode == DNSFail {
			resp, err = buildDNSResponse(buf[:n], 0, 2) // SERVFAIL
		} else {
			resp, err = buildDNSResponse(buf[:n], 1, 0)
		}
		if err != nil {
			continue
		}
		s.pc.WriteTo(resp, addr)
	}
}

// MeasureOutcome is the result of a live stall measurement session.
type MeasureOutcome struct {
	Verdict  Verdict
	Duration time.Duration
	Rounds   int
}

// MeasureStall runs live probing rounds until the stall resolves, is
// classified a false positive, or maxDuration elapses — the wall-clock
// counterpart of the simulated prober's episode loop, with the same
// multiplicative backoff once the stall outlives backoffAfter.
func (p *LiveProber) MeasureStall(maxDuration, backoffAfter time.Duration) MeasureOutcome {
	start := time.Now()
	icmpTO, dnsTO := p.ICMPTimeout, p.DNSTimeout
	defer func() { p.ICMPTimeout, p.DNSTimeout = icmpTO, dnsTO }()
	rounds := 0
	for {
		rounds++
		r := p.Round()
		v := r.Verdict()
		if v != VerdictStillStalled {
			return MeasureOutcome{Verdict: v, Duration: time.Since(start) - r.Elapsed, Rounds: rounds}
		}
		if elapsed := time.Since(start); elapsed >= maxDuration {
			return MeasureOutcome{Verdict: VerdictStillStalled, Duration: elapsed, Rounds: rounds}
		} else if backoffAfter > 0 && elapsed > backoffAfter {
			p.ICMPTimeout *= 2
			p.DNSTimeout *= 2
		}
	}
}
