// Package netprobe implements Android-MOD's network-state probing component
// (§2.2) against a simulated host network stack.
//
// When a suspicious Data_Stall is detected, the prober simultaneously sends
// an ICMP message to the local loopback address, plus an ICMP message and a
// DNS query to each assigned DNS server. The reply pattern classifies the
// episode:
//
//   - loopback ICMP timeout → the problem is on the system side (erroneous
//     firewall configuration, problematic proxy settings, modem driver
//     failure) — a false positive;
//   - all DNS queries time out and the DNS-server ICMPs time out too → a
//     true network-side stall;
//   - only the DNS queries time out → the DNS resolution service is
//     unavailable — also a false positive;
//   - everything answers → the stall has been fixed.
//
// Timeouts are 1 s for ICMP and 5 s for DNS, so a probing round costs at
// most five seconds and the duration measurement error is ≤ 5 s (versus up
// to a minute for vanilla Android). Past 1200 s of stall the timeouts are
// doubled every round to bound overhead, and once either timeout exceeds
// one minute the prober reverts to Android's legacy one-minute estimation.
package netprobe

import (
	"time"

	"repro/internal/simclock"
)

// Condition is the simulated host/network state underlying an apparent
// stall.
type Condition uint8

// Host conditions.
const (
	Healthy Condition = iota
	NetworkDown
	FirewallMisconfig
	ProxyProblem
	ModemDriverFailure
	DNSUnavailable
)

func (c Condition) String() string {
	switch c {
	case Healthy:
		return "healthy"
	case NetworkDown:
		return "network-down"
	case FirewallMisconfig:
		return "firewall-misconfig"
	case ProxyProblem:
		return "proxy-problem"
	case ModemDriverFailure:
		return "modem-driver-failure"
	case DNSUnavailable:
		return "dns-unavailable"
	default:
		return "unknown"
	}
}

// SystemSide reports whether the condition blocks even loopback delivery.
func (c Condition) SystemSide() bool {
	return c == FirewallMisconfig || c == ProxyProblem || c == ModemDriverFailure
}

// SimHost simulates the device's network stack as seen by the prober.
type SimHost struct {
	clock *simclock.Scheduler
	cond  Condition
	// NumDNSServers is the number of assigned DNS servers (>=1).
	NumDNSServers int
	// Latencies for healthy replies.
	LoopbackRTT time.Duration
	ICMPRTT     time.Duration
	DNSRTT      time.Duration
}

// NewSimHost returns a healthy host with typical latencies.
func NewSimHost(clock *simclock.Scheduler) *SimHost {
	return &SimHost{
		clock:         clock,
		cond:          Healthy,
		NumDNSServers: 2,
		LoopbackRTT:   time.Millisecond,
		ICMPRTT:       30 * time.Millisecond,
		DNSRTT:        60 * time.Millisecond,
	}
}

// SetCondition changes the host/network state.
func (h *SimHost) SetCondition(c Condition) { h.cond = c }

// ConditionNow returns the current state.
func (h *SimHost) ConditionNow() Condition { return h.cond }

// pingLoopback answers an ICMP echo to 127.0.0.1. done(ok) fires at reply
// time or at the timeout. System-side faults black-hole loopback probes.
func (h *SimHost) pingLoopback(timeout time.Duration, done func(ok bool)) {
	if h.cond.SystemSide() {
		h.clock.After(timeout, func() { done(false) })
		return
	}
	h.answer(h.LoopbackRTT, timeout, done)
}

// pingDNS answers an ICMP echo to an assigned DNS server.
func (h *SimHost) pingDNS(timeout time.Duration, done func(ok bool)) {
	switch h.cond {
	case NetworkDown:
		h.clock.After(timeout, func() { done(false) })
	case FirewallMisconfig, ProxyProblem, ModemDriverFailure:
		h.clock.After(timeout, func() { done(false) })
	default: // Healthy, DNSUnavailable: network reachable
		h.answer(h.ICMPRTT, timeout, done)
	}
}

// queryDNS answers a DNS query for the dedicated test server's name.
func (h *SimHost) queryDNS(timeout time.Duration, done func(ok bool)) {
	switch h.cond {
	case Healthy:
		h.answer(h.DNSRTT, timeout, done)
	default:
		h.clock.After(timeout, func() { done(false) })
	}
}

func (h *SimHost) answer(rtt, timeout time.Duration, done func(bool)) {
	if rtt >= timeout {
		h.clock.After(timeout, func() { done(false) })
		return
	}
	h.clock.After(rtt, func() { done(true) })
}

// Verdict is a probing round's classification.
type Verdict uint8

// Verdicts.
const (
	VerdictStillStalled Verdict = iota // network-side problem persists
	VerdictRecovered
	VerdictSystemSideFP
	VerdictDNSFP
)

func (v Verdict) String() string {
	switch v {
	case VerdictStillStalled:
		return "still-stalled"
	case VerdictRecovered:
		return "recovered"
	case VerdictSystemSideFP:
		return "system-side-false-positive"
	case VerdictDNSFP:
		return "dns-false-positive"
	default:
		return "unknown"
	}
}

// Config holds the probing schedule.
type Config struct {
	ICMPTimeout     time.Duration // paper: 1 s (RFC 5508 guidance)
	DNSTimeout      time.Duration // paper: 5 s (RFC 1536 guidance)
	BackoffAfter    time.Duration // paper: 1200 s
	BackoffFactor   float64       // paper: ×2
	RevertThreshold time.Duration // paper: 1 minute
	LegacyInterval  time.Duration // vanilla Android's detection granularity
}

// DefaultConfig returns the paper's schedule.
func DefaultConfig() Config {
	return Config{
		ICMPTimeout:     time.Second,
		DNSTimeout:      5 * time.Second,
		BackoffAfter:    1200 * time.Second,
		BackoffFactor:   2,
		RevertThreshold: time.Minute,
		LegacyInterval:  time.Minute,
	}
}

// Outcome summarizes a completed probe episode.
type Outcome struct {
	// Verdict is the terminal classification (never StillStalled).
	Verdict Verdict
	// Duration is the measured stall duration: the elapsed time from probe
	// start to the start of the round that observed recovery.
	Duration time.Duration
	// Rounds is the number of probing rounds issued.
	Rounds int
	// RevertedToLegacy reports whether timeout growth forced fallback to
	// Android's original one-minute estimation.
	RevertedToLegacy bool
	// MaxError bounds the measurement error of Duration.
	MaxError time.Duration
}

// Prober runs probing rounds until the stall resolves or is classified as
// a false positive.
type Prober struct {
	clock *simclock.Scheduler
	host  *SimHost
	cfg   Config
	// OnDone fires exactly once per Start.
	OnDone func(Outcome)

	active      bool
	start       simclock.Time
	rounds      int
	icmpTimeout time.Duration
	dnsTimeout  time.Duration
	legacy      bool
	legacyTimer *simclock.Timer
}

// NewProber builds a prober over the host.
func NewProber(clock *simclock.Scheduler, host *SimHost, cfg Config, onDone func(Outcome)) *Prober {
	if cfg.ICMPTimeout <= 0 || cfg.DNSTimeout <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.BackoffFactor < 1 {
		cfg.BackoffFactor = 2
	}
	return &Prober{clock: clock, host: host, cfg: cfg, OnDone: onDone}
}

// Active reports whether an episode is being probed.
func (p *Prober) Active() bool { return p.active }

// Start begins probing a suspicious stall. Starting while active is ignored.
func (p *Prober) Start() {
	if p.active {
		return
	}
	p.active = true
	p.start = p.clock.Now()
	p.rounds = 0
	p.icmpTimeout = p.cfg.ICMPTimeout
	p.dnsTimeout = p.cfg.DNSTimeout
	p.legacy = false
	p.round()
}

// Abort cancels probing without an outcome (e.g. connection torn down).
func (p *Prober) Abort() {
	p.active = false
	if p.legacyTimer != nil {
		p.legacyTimer.Stop()
	}
}

func (p *Prober) round() {
	if !p.active {
		return
	}
	roundStart := p.clock.Now()
	p.rounds++

	// Past the backoff point, double timeouts each round; past the revert
	// threshold, fall back to legacy estimation.
	if roundStart-p.start > p.cfg.BackoffAfter && p.rounds > 1 {
		p.icmpTimeout = time.Duration(float64(p.icmpTimeout) * p.cfg.BackoffFactor)
		p.dnsTimeout = time.Duration(float64(p.dnsTimeout) * p.cfg.BackoffFactor)
	}
	if p.icmpTimeout > p.cfg.RevertThreshold || p.dnsTimeout > p.cfg.RevertThreshold {
		p.revertToLegacy()
		return
	}

	n := p.host.NumDNSServers
	if n < 1 {
		n = 1
	}
	var (
		pending    = 1 + 2*n
		loopbackOK bool
		icmpOK     int
		dnsOK      int
	)
	complete := func() {
		if !p.active {
			return
		}
		switch {
		case !loopbackOK:
			p.finish(VerdictSystemSideFP, roundStart)
		case dnsOK > 0:
			p.finish(VerdictRecovered, roundStart)
		case icmpOK > 0:
			p.finish(VerdictDNSFP, roundStart)
		default:
			// All DNS queries and DNS-server ICMPs timed out: genuine
			// network-side stall; probe again.
			p.round()
		}
	}
	collect := func(set func(bool)) func(bool) {
		return func(ok bool) {
			set(ok)
			pending--
			if pending == 0 {
				complete()
			}
		}
	}
	p.host.pingLoopback(p.icmpTimeout, collect(func(ok bool) { loopbackOK = ok }))
	for i := 0; i < n; i++ {
		p.host.pingDNS(p.icmpTimeout, collect(func(ok bool) {
			if ok {
				icmpOK++
			}
		}))
		p.host.queryDNS(p.dnsTimeout, collect(func(ok bool) {
			if ok {
				dnsOK++
			}
		}))
	}
}

// revertToLegacy polls at Android's one-minute granularity until healthy.
func (p *Prober) revertToLegacy() {
	p.legacy = true
	var poll func()
	poll = func() {
		if !p.active {
			return
		}
		if p.host.ConditionNow() == Healthy {
			p.finish(VerdictRecovered, p.clock.Now())
			return
		}
		p.legacyTimer = p.clock.After(p.cfg.LegacyInterval, poll)
	}
	poll()
}

func (p *Prober) finish(v Verdict, observedAt simclock.Time) {
	p.active = false
	maxErr := p.dnsTimeout
	if p.legacy {
		maxErr = p.cfg.LegacyInterval
	}
	out := Outcome{
		Verdict:          v,
		Duration:         observedAt - p.start,
		Rounds:           p.rounds,
		RevertedToLegacy: p.legacy,
		MaxError:         maxErr,
	}
	if p.OnDone != nil {
		p.OnDone(out)
	}
}
