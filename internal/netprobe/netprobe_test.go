package netprobe

import (
	"testing"
	"time"

	"repro/internal/simclock"
)

func newProbe(t *testing.T, cond Condition) (*simclock.Scheduler, *SimHost, *Prober, *[]Outcome) {
	t.Helper()
	clock := simclock.NewScheduler()
	host := NewSimHost(clock)
	host.SetCondition(cond)
	var outs []Outcome
	p := NewProber(clock, host, DefaultConfig(), func(o Outcome) { outs = append(outs, o) })
	return clock, host, p, &outs
}

func TestHealthyHostRecoversImmediately(t *testing.T) {
	clock, _, p, outs := newProbe(t, Healthy)
	p.Start()
	clock.RunAll()
	if len(*outs) != 1 {
		t.Fatalf("outcomes = %d, want 1", len(*outs))
	}
	o := (*outs)[0]
	if o.Verdict != VerdictRecovered || o.Rounds != 1 || o.Duration != 0 {
		t.Errorf("outcome = %+v", o)
	}
}

func TestSystemSideFaultsClassifiedAsFalsePositive(t *testing.T) {
	for _, cond := range []Condition{FirewallMisconfig, ProxyProblem, ModemDriverFailure} {
		clock, _, p, outs := newProbe(t, cond)
		p.Start()
		clock.RunAll()
		if len(*outs) != 1 || (*outs)[0].Verdict != VerdictSystemSideFP {
			t.Errorf("%v: outcome = %+v, want system-side FP", cond, *outs)
		}
		if !cond.SystemSide() {
			t.Errorf("%v.SystemSide() = false", cond)
		}
	}
}

func TestDNSOnlyFailureClassified(t *testing.T) {
	clock, _, p, outs := newProbe(t, DNSUnavailable)
	p.Start()
	clock.RunAll()
	if len(*outs) != 1 || (*outs)[0].Verdict != VerdictDNSFP {
		t.Fatalf("outcome = %+v, want DNS FP", *outs)
	}
	// Classification takes one round: DNS timeout of 5 s dominates.
	if got := (*outs)[0].Duration; got != 0 {
		t.Errorf("duration = %v, want 0 (single round verdict)", got)
	}
}

func TestNetworkStallMeasuredWithinFiveSeconds(t *testing.T) {
	clock, host, p, outs := newProbe(t, NetworkDown)
	p.Start()
	trueDuration := 47 * time.Second
	clock.At(trueDuration, func() { host.SetCondition(Healthy) })
	clock.RunAll()
	if len(*outs) != 1 {
		t.Fatalf("outcomes = %d", len(*outs))
	}
	o := (*outs)[0]
	if o.Verdict != VerdictRecovered {
		t.Fatalf("verdict = %v", o.Verdict)
	}
	if o.Duration < trueDuration-5*time.Second || o.Duration > trueDuration+5*time.Second {
		t.Errorf("measured %v for a %v stall; error must be ≤ 5 s", o.Duration, trueDuration)
	}
	if o.MaxError > 5*time.Second {
		t.Errorf("MaxError = %v, want ≤ 5 s before backoff", o.MaxError)
	}
	if o.Rounds < 5 {
		t.Errorf("rounds = %d; a 47 s network stall needs ~10 rounds", o.Rounds)
	}
	if o.RevertedToLegacy {
		t.Error("short stall must not revert to legacy")
	}
}

func TestShortStallFineGranularity(t *testing.T) {
	clock, host, p, outs := newProbe(t, NetworkDown)
	p.Start()
	clock.At(7*time.Second, func() { host.SetCondition(Healthy) })
	clock.RunAll()
	o := (*outs)[0]
	// Vanilla Android would report ≥ 60 s here; the prober must do much
	// better (the paper's whole point for short stalls).
	if o.Duration > 12*time.Second {
		t.Errorf("measured %v for a 7 s stall", o.Duration)
	}
}

func TestBackoffDoublesTimeoutsPast1200s(t *testing.T) {
	clock, host, p, outs := newProbe(t, NetworkDown)
	p.Start()
	clock.At(1300*time.Second, func() { host.SetCondition(Healthy) })
	clock.RunAll()
	o := (*outs)[0]
	if o.Verdict != VerdictRecovered {
		t.Fatalf("verdict = %v", o.Verdict)
	}
	// Before 1200 s: 5 s rounds → 240 rounds. After: doubling rounds.
	// Total rounds must be far below 260 (pure 5 s rounds would need 260).
	if o.Rounds >= 260 {
		t.Errorf("rounds = %d; backoff should have reduced round count", o.Rounds)
	}
	// Doubling reaches the one-minute revert threshold within ~75 s past
	// the backoff point (10+20+40 s rounds, then DNS timeout 80 s > 60 s),
	// so the error bound is the legacy one minute.
	if o.Duration < 1240*time.Second || o.Duration > 1360*time.Second {
		t.Errorf("measured %v for a 1300 s stall; must be within legacy error", o.Duration)
	}
}

func TestRevertToLegacyOnVeryLongStall(t *testing.T) {
	clock, host, p, outs := newProbe(t, NetworkDown)
	p.Start()
	trueDuration := 4000 * time.Second
	clock.At(trueDuration, func() { host.SetCondition(Healthy) })
	clock.RunAll()
	o := (*outs)[0]
	if !o.RevertedToLegacy {
		t.Fatalf("a %v stall should force legacy fallback, got %+v", trueDuration, o)
	}
	if o.Verdict != VerdictRecovered {
		t.Errorf("verdict = %v", o.Verdict)
	}
	if o.MaxError != time.Minute {
		t.Errorf("legacy MaxError = %v, want 1 minute", o.MaxError)
	}
	if o.Duration < trueDuration-time.Minute || o.Duration > trueDuration+time.Minute {
		t.Errorf("legacy-measured %v for a %v stall", o.Duration, trueDuration)
	}
}

func TestAbortSuppressesOutcome(t *testing.T) {
	clock, _, p, outs := newProbe(t, NetworkDown)
	p.Start()
	clock.At(12*time.Second, func() { p.Abort() })
	clock.Run(100 * time.Second)
	if len(*outs) != 0 {
		t.Fatalf("aborted probe produced outcome %+v", *outs)
	}
	if p.Active() {
		t.Error("prober still active after abort")
	}
}

func TestStartIdempotentWhileActive(t *testing.T) {
	clock, host, p, outs := newProbe(t, NetworkDown)
	p.Start()
	clock.At(2*time.Second, func() { p.Start() }) // ignored
	clock.At(9*time.Second, func() { host.SetCondition(Healthy) })
	clock.RunAll()
	if len(*outs) != 1 {
		t.Fatalf("outcomes = %d, want 1", len(*outs))
	}
}

func TestProberReusable(t *testing.T) {
	clock, host, p, outs := newProbe(t, NetworkDown)
	p.Start()
	clock.At(6*time.Second, func() { host.SetCondition(Healthy) })
	clock.RunAll()
	host.SetCondition(NetworkDown)
	p.Start()
	clock.At(clock.Now()+11*time.Second, func() { host.SetCondition(Healthy) })
	clock.RunAll()
	if len(*outs) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(*outs))
	}
	if (*outs)[1].Duration > 16*time.Second {
		t.Errorf("second episode measured %v, want ≈11 s", (*outs)[1].Duration)
	}
}

func TestZeroDNSServersClampedToOne(t *testing.T) {
	clock, host, p, outs := newProbe(t, Healthy)
	host.NumDNSServers = 0
	p.Start()
	clock.RunAll()
	if len(*outs) != 1 || (*outs)[0].Verdict != VerdictRecovered {
		t.Fatalf("outcome = %+v", *outs)
	}
}

func TestInvalidConfigDefaults(t *testing.T) {
	clock := simclock.NewScheduler()
	p := NewProber(clock, NewSimHost(clock), Config{}, nil)
	if p.cfg.ICMPTimeout != time.Second || p.cfg.DNSTimeout != 5*time.Second {
		t.Errorf("config not defaulted: %+v", p.cfg)
	}
}

func TestConditionStrings(t *testing.T) {
	for c := Healthy; c <= DNSUnavailable; c++ {
		if c.String() == "unknown" {
			t.Errorf("condition %d has no string", c)
		}
	}
	if Condition(99).String() != "unknown" {
		t.Error("out-of-range condition should be unknown")
	}
	for v := VerdictStillStalled; v <= VerdictDNSFP; v++ {
		if v.String() == "unknown" {
			t.Errorf("verdict %d has no string", v)
		}
	}
	if Verdict(99).String() != "unknown" {
		t.Error("out-of-range verdict should be unknown")
	}
}

func TestOnDoneNilIsSafe(t *testing.T) {
	clock := simclock.NewScheduler()
	p := NewProber(clock, NewSimHost(clock), DefaultConfig(), nil)
	p.Start()
	clock.RunAll() // must not panic
}
