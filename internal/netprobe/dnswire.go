package netprobe

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Minimal DNS wire-format encoding/decoding (RFC 1035) for the live
// prober's queries. Only what the probing component needs: building an A
// query for the dedicated test server's name and checking that a response
// parses and answers the same question.

// DNS constants.
const (
	dnsTypeA   = 1
	dnsClassIN = 1
	// dnsFlagsRD is a standard query with recursion desired.
	dnsFlagsRD = 0x0100
	// maxDNSMessage bounds a UDP DNS message.
	maxDNSMessage = 512
)

// errDNSFormat reports a malformed message.
var errDNSFormat = errors.New("netprobe: malformed DNS message")

// encodeDNSQuery builds an A/IN query for name with the given ID.
func encodeDNSQuery(id uint16, name string) ([]byte, error) {
	qname, err := encodeDNSName(name)
	if err != nil {
		return nil, err
	}
	msg := make([]byte, 0, 12+len(qname)+4)
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[0:], id)
	binary.BigEndian.PutUint16(hdr[2:], dnsFlagsRD)
	binary.BigEndian.PutUint16(hdr[4:], 1) // QDCOUNT
	msg = append(msg, hdr[:]...)
	msg = append(msg, qname...)
	var tail [4]byte
	binary.BigEndian.PutUint16(tail[0:], dnsTypeA)
	binary.BigEndian.PutUint16(tail[2:], dnsClassIN)
	msg = append(msg, tail[:]...)
	return msg, nil
}

// encodeDNSName converts "a.example.com" to length-prefixed labels.
func encodeDNSName(name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return nil, fmt.Errorf("netprobe: empty DNS name")
	}
	var out []byte
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("netprobe: bad DNS label %q", label)
		}
		out = append(out, byte(len(label)))
		out = append(out, label...)
	}
	if len(out) > 253 {
		return nil, fmt.Errorf("netprobe: DNS name too long")
	}
	return append(out, 0), nil
}

// dnsResponse is the subset of a parsed response the prober cares about.
type dnsResponse struct {
	ID      uint16
	RCode   uint8
	Answers int
}

// decodeDNSResponse parses a response header and skips the question
// section; it does not need the answer bodies, only their count and the
// response code.
func decodeDNSResponse(msg []byte) (dnsResponse, error) {
	if len(msg) < 12 {
		return dnsResponse{}, errDNSFormat
	}
	flags := binary.BigEndian.Uint16(msg[2:])
	if flags&0x8000 == 0 {
		return dnsResponse{}, fmt.Errorf("netprobe: not a DNS response")
	}
	resp := dnsResponse{
		ID:      binary.BigEndian.Uint16(msg[0:]),
		RCode:   uint8(flags & 0xF),
		Answers: int(binary.BigEndian.Uint16(msg[6:])),
	}
	// Validate that the question section parses.
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	off := 12
	for q := 0; q < qd; q++ {
		var err error
		off, err = skipDNSName(msg, off)
		if err != nil {
			return dnsResponse{}, err
		}
		off += 4 // QTYPE + QCLASS
		if off > len(msg) {
			return dnsResponse{}, errDNSFormat
		}
	}
	return resp, nil
}

// skipDNSName advances past a (possibly compressed) name.
func skipDNSName(msg []byte, off int) (int, error) {
	for {
		if off >= len(msg) {
			return 0, errDNSFormat
		}
		l := int(msg[off])
		switch {
		case l == 0:
			return off + 1, nil
		case l&0xC0 == 0xC0: // compression pointer ends the name
			if off+2 > len(msg) {
				return 0, errDNSFormat
			}
			return off + 2, nil
		case l > 63:
			return 0, errDNSFormat
		default:
			off += 1 + l
		}
	}
}

// buildDNSResponse creates a minimal valid response to a query: same ID,
// same question, nAnswers fake A records. Used by the test DNS server and
// by examples; a real resolver's response parses the same way.
func buildDNSResponse(query []byte, nAnswers int, rcode uint8) ([]byte, error) {
	if len(query) < 12 {
		return nil, errDNSFormat
	}
	qend, err := skipDNSName(query, 12)
	if err != nil {
		return nil, err
	}
	qend += 4
	if qend > len(query) {
		return nil, errDNSFormat
	}
	resp := make([]byte, 0, qend+nAnswers*16)
	resp = append(resp, query[:qend]...)
	binary.BigEndian.PutUint16(resp[2:], 0x8180|uint16(rcode)) // QR|RD|RA
	binary.BigEndian.PutUint16(resp[6:], uint16(nAnswers))
	for i := 0; i < nAnswers; i++ {
		// Compressed pointer to the question name at offset 12.
		resp = append(resp, 0xC0, 12)
		var rr [10]byte
		binary.BigEndian.PutUint16(rr[0:], dnsTypeA)
		binary.BigEndian.PutUint16(rr[2:], dnsClassIN)
		binary.BigEndian.PutUint32(rr[4:], 60) // TTL
		binary.BigEndian.PutUint16(rr[8:], 4)  // RDLENGTH
		resp = append(resp, rr[:]...)
		resp = append(resp, 127, 0, 0, byte(1+i))
	}
	return resp, nil
}
