package netprobe

import (
	"testing"
)

// FuzzDecodeDNSResponse hardens the hand-rolled RFC 1035 parser against
// arbitrary datagrams: it must never panic and never claim success on
// garbage that lacks the response bit.
func FuzzDecodeDNSResponse(f *testing.F) {
	q, _ := encodeDNSQuery(42, "probe.cellrel.test")
	ok, _ := buildDNSResponse(q, 1, 0)
	f.Add(ok)
	f.Add(q)
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0x0C})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := decodeDNSResponse(data)
		if err != nil {
			return
		}
		if len(data) < 12 {
			t.Fatalf("accepted %d-byte message", len(data))
		}
		if data[2]&0x80 == 0 {
			t.Fatal("accepted a message without the response bit")
		}
		if resp.Answers < 0 {
			t.Fatal("negative answer count")
		}
	})
}

// FuzzSkipDNSName must terminate and stay in bounds for any input.
func FuzzSkipDNSName(f *testing.F) {
	f.Add([]byte{5, 'a', 'b', 'c', 'd', 'e', 0}, 0)
	f.Add([]byte{0xC0, 0x04}, 0)
	f.Add([]byte{63}, 0)
	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 {
			off = 0
		}
		end, err := skipDNSName(data, off)
		if err == nil && (end < 0 || end > len(data)+2) {
			t.Fatalf("end %d out of bounds for %d bytes", end, len(data))
		}
	})
}

// FuzzEncodeDNSName: any accepted name must round-trip through the label
// encoding without panicking, and reject over-limit labels.
func FuzzEncodeDNSName(f *testing.F) {
	f.Add("example.com")
	f.Add("a..b")
	f.Add("")
	f.Fuzz(func(t *testing.T, name string) {
		out, err := encodeDNSName(name)
		if err != nil {
			return
		}
		if len(out) == 0 || out[len(out)-1] != 0 {
			t.Fatal("encoded name not zero-terminated")
		}
		if len(out) > 255 {
			t.Fatalf("encoded name %d bytes", len(out))
		}
	})
}
