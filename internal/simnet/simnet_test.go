package simnet

import (
	"math"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/telephony"
)

func testNetwork(t *testing.T, numBS int) *Network {
	t.Helper()
	n, err := Generate(DefaultDeployment(numBS), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestISPParameters(t *testing.T) {
	isps := ISPs()
	var bsShare, userShare float64
	for i, isp := range isps {
		if isp.ID != ISPID(i) {
			t.Errorf("ISP at index %d has ID %v", i, isp.ID)
		}
		bsShare += isp.BSShare
		userShare += isp.UserShare
	}
	if math.Abs(bsShare-1) > 1e-9 {
		t.Errorf("BS shares sum to %v", bsShare)
	}
	if math.Abs(userShare-1) > 1e-9 {
		t.Errorf("user shares sum to %v", userShare)
	}
	// Paper: ISP-B's BSes use a higher radio frequency than C's than A's.
	if !(isps[ISPB].MedianFreqMHz > isps[ISPC].MedianFreqMHz && isps[ISPC].MedianFreqMHz > isps[ISPA].MedianFreqMHz) {
		t.Error("median frequency ordering should be B > C > A")
	}
	// Hazard ordering drives Figure 12 (prevalence B > A > C).
	if !(isps[ISPB].HazardFactor > isps[ISPA].HazardFactor && isps[ISPA].HazardFactor > isps[ISPC].HazardFactor) {
		t.Error("hazard ordering should be B > A > C")
	}
	if ISPA.String() != "ISP-A" || ISPID(9).String() != "ISP-?" {
		t.Error("bad ISP strings")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(DeploymentConfig{NumBS: 0}, rng.New(1)); err == nil {
		t.Error("NumBS=0 should error")
	}
	n, err := Generate(DeploymentConfig{NumBS: 10, ZipfSkew: -1}, rng.New(1))
	if err != nil || len(n.Stations) != 10 {
		t.Errorf("negative skew should default, got err=%v n=%d", err, len(n.Stations))
	}
}

func TestDeploymentShares(t *testing.T) {
	n := testNetwork(t, 30000)
	ispCount := map[ISPID]int{}
	regionCount := map[geo.Region]int{}
	ratCount := map[telephony.RAT]int{}
	for _, bs := range n.Stations {
		ispCount[bs.ISP]++
		regionCount[bs.Region]++
		for _, rat := range bs.RATs {
			ratCount[rat]++
		}
		if len(bs.RATs) == 0 {
			t.Fatal("BS with no RATs")
		}
	}
	total := float64(len(n.Stations))
	for id, isp := range ISPs() {
		got := float64(ispCount[ISPID(id)]) / total
		if math.Abs(got-isp.BSShare) > 0.02 {
			t.Errorf("%v BS share = %.3f, want ~%.3f", isp.ID, got, isp.BSShare)
		}
	}
	for _, p := range geo.Profiles() {
		got := float64(regionCount[p.Region]) / total
		if math.Abs(got-p.BSShare) > 0.02 {
			t.Errorf("%v region share = %.3f, want ~%.3f", p.Region, got, p.BSShare)
		}
	}
	// Marginal RAT shares: 4G dominant, 3G smallest of the legacy RATs.
	if ratCount[telephony.RAT4G] < ratCount[telephony.RAT2G] || ratCount[telephony.RAT2G] < ratCount[telephony.RAT3G] {
		t.Errorf("RAT share ordering wrong: %v", ratCount)
	}
	got4g := float64(ratCount[telephony.RAT4G]) / total
	if math.Abs(got4g-RATShares[telephony.RAT4G]) > 0.03 {
		t.Errorf("4G share = %.3f, want ~%.3f", got4g, RATShares[telephony.RAT4G])
	}
}

func TestCellIdentitiesUnique(t *testing.T) {
	n := testNetwork(t, 5000)
	seen := map[uint64]bool{}
	for _, bs := range n.Stations {
		id := bs.Identity.GlobalID()
		if seen[id] {
			t.Fatalf("duplicate cell identity %v", bs.Identity)
		}
		seen[id] = true
	}
}

func TestLoadWeightsZipf(t *testing.T) {
	n := testNetwork(t, 2000)
	ws := make([]float64, 0, len(n.Stations))
	for _, bs := range n.Stations {
		ws = append(ws, bs.LoadWeight)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
	// The sorted weights should follow rank^-0.82; fit and check.
	counts := make([]uint64, len(ws))
	for i, w := range ws {
		counts[i] = uint64(w * 1e9)
	}
	fit, err := stats.FitZipf(counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-0.82) > 0.02 {
		t.Errorf("load-weight Zipf exponent = %.3f, want ~0.82", fit.A)
	}
}

func TestAttachRespectsISPAndRAT(t *testing.T) {
	n := testNetwork(t, 5000)
	r := rng.New(2)
	for i := 0; i < 2000; i++ {
		att, err := n.Attach(r, ISPB, geo.Urban, telephony.RAT4G)
		if err != nil {
			t.Fatal(err)
		}
		if att.BS.ISP != ISPB {
			t.Fatalf("attached to %v, want ISPB", att.BS.ISP)
		}
		if att.RAT == telephony.RATUnknown {
			t.Fatal("attachment has unknown RAT")
		}
		if !att.BS.Supports(att.RAT) {
			t.Fatalf("BS does not support camped RAT %v", att.RAT)
		}
		if !att.Level.Valid() {
			t.Fatalf("invalid signal level %d", att.Level)
		}
	}
}

func TestAttachFallsBackWhenRegionEmpty(t *testing.T) {
	// Tiny deployment: some (ISP, region) cells will be empty.
	n := testNetwork(t, 6)
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		for isp := ISPID(0); isp < NumISPs; isp++ {
			att, err := n.Attach(r, isp, geo.TransportHub, telephony.RAT4G)
			if err != nil {
				// Acceptable only if the ISP has no stations at all.
				has := false
				for _, bs := range n.Stations {
					if bs.ISP == isp {
						has = true
					}
				}
				if has {
					t.Fatalf("Attach failed despite stations existing: %v", err)
				}
				continue
			}
			if att.BS == nil {
				t.Fatal("nil BS on successful attach")
			}
		}
	}
}

func TestAttachLoadSkew(t *testing.T) {
	n := testNetwork(t, 2000)
	r := rng.New(4)
	counts := map[uint64]int{}
	for i := 0; i < 50000; i++ {
		att, err := n.Attach(r, ISPA, geo.Urban, telephony.RAT4G)
		if err != nil {
			t.Fatal(err)
		}
		counts[att.BS.Identity.GlobalID()]++
	}
	var cs []int
	for _, c := range counts {
		cs = append(cs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(cs)))
	// Top station should absorb far more attachments than the median.
	if cs[0] < 5*cs[len(cs)/2] {
		t.Errorf("attachment counts insufficiently skewed: top=%d median=%d", cs[0], cs[len(cs)/2])
	}
}

func TestSampleLevelCoverageOrdering(t *testing.T) {
	n := testNetwork(t, 3000)
	meanLevel := func(isp ISPID) float64 {
		r := rng.New(5)
		sum, cnt := 0.0, 0
		for _, bs := range n.Stations {
			if bs.ISP != isp || bs.Region != geo.Suburban {
				continue
			}
			for i := 0; i < 50; i++ {
				sum += float64(n.SampleLevel(r, bs, telephony.RAT4G))
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	if a, b := meanLevel(ISPA), meanLevel(ISPB); a <= b {
		t.Errorf("ISP-A mean level %.2f should exceed ISP-B %.2f (inferior coverage)", a, b)
	}
}

func TestSampleLevelHubMostlyExcellent(t *testing.T) {
	n := testNetwork(t, 5000)
	r := rng.New(6)
	lvl5, total := 0, 0
	for _, bs := range n.Stations {
		if bs.Region != geo.TransportHub {
			continue
		}
		for i := 0; i < 30; i++ {
			if n.SampleLevel(r, bs, telephony.RAT4G) == telephony.Level5 {
				lvl5++
			}
			total++
		}
	}
	if total == 0 {
		t.Skip("no hub BSes generated")
	}
	if frac := float64(lvl5) / float64(total); frac < 0.4 {
		t.Errorf("hub level-5 fraction = %.2f, want >= 0.4", frac)
	}
}

func TestSampleLevel3GWorseThan2G(t *testing.T) {
	n := testNetwork(t, 3000)
	mean := func(rat telephony.RAT) float64 {
		r := rng.New(7)
		sum, cnt := 0.0, 0
		for _, bs := range n.Stations {
			if bs.Region != geo.Rural {
				continue
			}
			for i := 0; i < 30; i++ {
				sum += float64(n.SampleLevel(r, bs, rat))
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	if g2, g3 := mean(telephony.RAT2G), mean(telephony.RAT3G); g3 >= g2 {
		t.Errorf("3G mean level %.2f should be below 2G %.2f", g3, g2)
	}
}

func TestHazardOrderings(t *testing.T) {
	n := testNetwork(t, 1000)
	var normalBS, hubBS *BaseStation
	for _, bs := range n.Stations {
		if bs.Region == geo.Urban && normalBS == nil {
			normalBS = bs
		}
		if bs.Dense && hubBS == nil {
			hubBS = bs
		}
	}
	if normalBS == nil || hubBS == nil {
		t.Skip("deployment lacks needed regions")
	}
	att := func(bs *BaseStation, rat telephony.RAT, lvl telephony.SignalLevel) Attachment {
		return Attachment{BS: bs, RAT: rat, Level: lvl}
	}
	// Monotone decrease over levels 0..4 on a normal BS.
	prev := math.Inf(1)
	for l := telephony.Level0; l <= telephony.Level4; l++ {
		h := n.Hazard(ISPA, att(normalBS, telephony.RAT4G, l))
		if h >= prev {
			t.Errorf("hazard not decreasing at level %d: %v >= %v", l, h, prev)
		}
		prev = h
	}
	// Level-5 on a normal BS is the lowest; on a hub BS it jumps above
	// levels 1-4 (Figure 15 anomaly).
	normal5 := n.Hazard(ISPA, att(normalBS, telephony.RAT4G, telephony.Level5))
	if normal5 >= prev {
		t.Error("normal-BS level-5 hazard should be the lowest")
	}
	hub5 := n.Hazard(ISPA, att(hubBS, telephony.RAT4G, telephony.Level5))
	for l := telephony.Level1; l <= telephony.Level4; l++ {
		if hub5 <= n.Hazard(ISPA, att(hubBS, telephony.RAT4G, l)) {
			t.Errorf("hub level-5 hazard %v should exceed level-%d", hub5, l)
		}
	}
	// RAT ordering: 3G < 2G < 4G < 5G at fixed level/BS.
	h := func(rat telephony.RAT) float64 { return n.Hazard(ISPA, att(normalBS, rat, telephony.Level3)) }
	if !(h(telephony.RAT3G) < h(telephony.RAT2G) && h(telephony.RAT2G) < h(telephony.RAT4G) && h(telephony.RAT4G) < h(telephony.RAT5G)) {
		t.Error("RAT hazard ordering should be 3G < 2G < 4G < 5G")
	}
	// ISP ordering at fixed context: B > A > C.
	ha := n.Hazard(ISPA, att(normalBS, telephony.RAT4G, telephony.Level3))
	hb := n.Hazard(ISPB, att(normalBS, telephony.RAT4G, telephony.Level3))
	hc := n.Hazard(ISPC, att(normalBS, telephony.RAT4G, telephony.Level3))
	if !(hb > ha && ha > hc) {
		t.Errorf("ISP hazard ordering B>A>C violated: %v %v %v", hb, ha, hc)
	}
	// Nil attachment is harmless.
	if n.Hazard(ISPA, Attachment{}) != 0 {
		t.Error("nil attachment hazard should be 0")
	}
}

func TestLevelHazardAccessors(t *testing.T) {
	if LevelHazard(telephony.Level0) <= LevelHazard(telephony.Level4) {
		t.Error("LevelHazard should decrease with level")
	}
	if LevelHazard(telephony.SignalLevel(99)) != 0 {
		t.Error("invalid level should have zero hazard")
	}
	if HubLevel5Hazard() <= LevelHazard(telephony.Level4) {
		t.Error("hub level-5 hazard should exceed level-4 hazard")
	}
}

func TestSampleSetupCauseHubSkew(t *testing.T) {
	r := rng.New(8)
	hub := &BaseStation{Dense: true}
	normal := &BaseStation{}
	emm := func(bs *BaseStation) float64 {
		hits := 0
		n := 20000
		for i := 0; i < n; i++ {
			c := SampleSetupCause(r, Attachment{BS: bs, Level: telephony.Level5})
			if c == telephony.CauseEMMAccessBarred || c == telephony.CauseInvalidEMMState {
				hits++
			}
			if c.IsFalsePositive() {
				t.Fatalf("sampled false-positive cause %v", c)
			}
		}
		return float64(hits) / float64(n)
	}
	hubFrac, normFrac := emm(hub), emm(normal)
	if hubFrac < 0.5 {
		t.Errorf("hub EMM cause fraction = %.2f, want >= 0.5", hubFrac)
	}
	if normFrac > 0.2 {
		t.Errorf("normal EMM cause fraction = %.2f, want small", normFrac)
	}
}

func TestSampleSetupCauseMatchesTable2(t *testing.T) {
	r := rng.New(9)
	n := 300000
	counts := map[telephony.FailCause]int{}
	for i := 0; i < n; i++ {
		counts[SampleSetupCause(r, Attachment{BS: &BaseStation{}})]++
	}
	got := float64(counts[telephony.CauseGPRSRegistrationFail]) / float64(n) * 100
	if math.Abs(got-12.8) > 0.5 {
		t.Errorf("GPRS_REGISTRATION_FAIL share = %.2f%%, want ~12.8%%", got)
	}
}

func TestBestRAT(t *testing.T) {
	bs := &BaseStation{RATs: []telephony.RAT{telephony.RAT2G, telephony.RAT4G, telephony.RAT3G}}
	if bs.BestRAT() != telephony.RAT4G {
		t.Errorf("BestRAT = %v, want 4G", bs.BestRAT())
	}
	if (&BaseStation{}).BestRAT() != telephony.RATUnknown {
		t.Error("empty RAT set should report unknown")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(DefaultDeployment(500), rng.New(77))
	b, _ := Generate(DefaultDeployment(500), rng.New(77))
	for i := range a.Stations {
		x, y := a.Stations[i], b.Stations[i]
		if x.Identity != y.Identity || x.ISP != y.ISP || x.Region != y.Region || x.LoadWeight != y.LoadWeight {
			t.Fatalf("station %d differs between identical seeds", i)
		}
	}
}

func TestFromStationsRebuildsPools(t *testing.T) {
	orig := testNetwork(t, 800)
	stations := make([]*BaseStation, len(orig.Stations))
	copy(stations, orig.Stations)
	rebuilt := FromStations(stations)
	if len(rebuilt.Stations) != len(orig.Stations) {
		t.Fatalf("stations = %d", len(rebuilt.Stations))
	}
	r := rng.New(9)
	for i := 0; i < 200; i++ {
		att, err := rebuilt.Attach(r, ISPA, geo.Urban, telephony.RAT4G)
		if err != nil {
			t.Fatal(err)
		}
		if att.BS == nil || att.BS.ISP != ISPA {
			t.Fatalf("bad attachment %+v", att)
		}
	}
	if rebuilt.ISP(ISPB).HazardFactor != ISPs()[ISPB].HazardFactor {
		t.Error("ISP table not restored")
	}
}

func TestTransitionHazardShape(t *testing.T) {
	bs := &BaseStation{}
	dense := &BaseStation{Dense: true}
	att := func(b *BaseStation, rat telephony.RAT, l telephony.SignalLevel) Attachment {
		return Attachment{BS: b, RAT: rat, Level: l}
	}
	// Monotone decreasing in destination level.
	prev := math.Inf(1)
	for l := telephony.Level0; l <= telephony.Level5; l++ {
		h := TransitionHazard(att(bs, telephony.RAT4G, l))
		if h >= prev {
			t.Errorf("transition hazard not decreasing at level %d", l)
		}
		prev = h
	}
	// Level-0 must dwarf everything (Figure 17's dark cells).
	if TransitionHazard(att(bs, telephony.RAT4G, telephony.Level0)) < 3*TransitionHazard(att(bs, telephony.RAT4G, telephony.Level1)) {
		t.Error("level-0 transition hazard should dwarf level-1")
	}
	// Destination contention: handing into idle 3G is safer than into 5G.
	if TransitionHazard(att(bs, telephony.RAT3G, telephony.Level2)) >= TransitionHazard(att(bs, telephony.RAT5G, telephony.Level2)) {
		t.Error("3G destination should be safer than 5G at equal level")
	}
	// Dense-deployment EMM churn raises it.
	if TransitionHazard(att(dense, telephony.RAT4G, telephony.Level2)) <= TransitionHazard(att(bs, telephony.RAT4G, telephony.Level2)) {
		t.Error("dense BS should raise transition hazard")
	}
	// Degenerate attachments are harmless.
	if TransitionHazard(Attachment{}) != 0 {
		t.Error("nil BS should have zero transition hazard")
	}
	if TransitionHazard(att(bs, telephony.RAT4G, telephony.SignalLevel(99))) != 0 {
		t.Error("invalid level should have zero transition hazard")
	}
}
