// Package simnet simulates the nationwide cellular radio environment the
// paper's fleet measured: three mobile ISPs, a Zipf-skewed population of
// multi-RAT base stations across region types, a received-signal-strength
// model, and the relative failure hazards that drive every landscape
// finding in §3.3 (ISP discrepancy, RAT discrepancy, the level-5 RSS
// anomaly at transport hubs).
package simnet

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/telephony"
)

// ISPID identifies one of the three studied carriers.
type ISPID uint8

// The three ISPs of the study. A maps to the largest carrier, B to the one
// with inferior signal coverage (higher radio frequency), C to the smallest.
const (
	ISPA ISPID = iota
	ISPB
	ISPC

	NumISPs = 3
)

func (id ISPID) String() string {
	switch id {
	case ISPA:
		return "ISP-A"
	case ISPB:
		return "ISP-B"
	case ISPC:
		return "ISP-C"
	default:
		return "ISP-?"
	}
}

// ISP describes a carrier.
type ISP struct {
	ID ISPID
	// BSShare is the fraction of all BSes (paper: 44.8%, 29.4%, 25.8%).
	BSShare float64
	// UserShare is the fraction of devices subscribed to this ISP.
	UserShare float64
	// MedianFreqMHz orders the carriers' radio bands (B's > C's > A's);
	// higher frequency means smaller per-BS coverage.
	MedianFreqMHz float64
	// CoverageFactor scales the signal-level distribution; <1 shifts
	// levels down (ISP-B's inferior coverage).
	CoverageFactor float64
	// HazardFactor is the relative failure-rate multiplier for users of
	// this ISP, calibrated so per-context failure intensity orders
	// B > A > C.
	HazardFactor float64
	// PrevalenceFactor scales a subscriber's probability of experiencing
	// any failure at all, reproducing Figure 12's per-ISP prevalences
	// (27.1% B, 20.1% A, 14.7% C against the 23% fleet average).
	PrevalenceFactor float64
}

// ISPs returns the three carriers with paper-calibrated parameters.
func ISPs() [NumISPs]ISP {
	return [NumISPs]ISP{
		ISPA: {ID: ISPA, BSShare: 0.448, UserShare: 0.58, MedianFreqMHz: 1900, CoverageFactor: 1.00, HazardFactor: 1.00, PrevalenceFactor: 0.97},
		ISPB: {ID: ISPB, BSShare: 0.294, UserShare: 0.24, MedianFreqMHz: 2400, CoverageFactor: 0.80, HazardFactor: 1.45, PrevalenceFactor: 1.30},
		ISPC: {ID: ISPC, BSShare: 0.258, UserShare: 0.18, MedianFreqMHz: 2100, CoverageFactor: 1.08, HazardFactor: 0.70, PrevalenceFactor: 0.71},
	}
}

// RATShares is the fraction of BSes supporting each RAT (paper §3.3:
// 23.4% 2G, 10.2% 3G, 65.2% 4G, 7.3% 5G; multi-RAT BSes overlap).
var RATShares = map[telephony.RAT]float64{
	telephony.RAT2G: 0.234,
	telephony.RAT3G: 0.102,
	telephony.RAT4G: 0.652,
	telephony.RAT5G: 0.073,
}

// ContentionFactor is the per-RAT resource-contention hazard multiplier.
// 3G is "relatively idle" (not preferred when 4G is available, worse
// coverage than 2G otherwise) so it sees the lowest failure prevalence;
// 5G modules are immature and heavily loaded, so they see the highest
// (Figures 14, 6, 7).
var ContentionFactor = map[telephony.RAT]float64{
	telephony.RAT2G: 1.00,
	telephony.RAT3G: 0.18,
	telephony.RAT4G: 1.05,
	telephony.RAT5G: 1.60,
}

// levelHazard is the relative failure hazard per signal level for BSes
// outside dense deployments: monotonically decreasing as signal improves
// (Figure 15, levels 0-4).
var levelHazard = [telephony.NumSignalLevels]float64{3.2, 2.1, 1.5, 1.1, 0.75, 0.55}

// transitionLevelHazard is the relative failure hazard of a RAT
// *transition* as a function of the post-transition signal level. It is
// far more peaked at level-0 than the steady-state hazard: a handover into
// a target with no usable signal fails outright (Figure 17's dark cells:
// transitions into level-0 raise the normalized failure prevalence by up
// to +0.37, while transitions into levels 1-5 barely move it).
var transitionLevelHazard = [telephony.NumSignalLevels]float64{40, 12, 4, 1.5, 0.8, 0.5}

// TransitionHazard returns the relative failure hazard of camping on the
// given attachment immediately after a RAT transition. The destination's
// signal level dominates; the destination RAT's contention scales it
// (handing into an idle 3G network is far safer than into a loaded 5G
// cell at the same level).
func TransitionHazard(att Attachment) float64 {
	if att.BS == nil || !att.Level.Valid() {
		return 0
	}
	h := transitionLevelHazard[att.Level] * ContentionFactor[att.RAT]
	if att.BS.Dense {
		h *= 1.5 // dense-deployment mobility management (EMM) churn
	}
	return h
}

// hubLevel5Hazard is the hazard at excellent RSS on densely deployed
// transport-hub BSes, where adjacent-channel interference and complex LTE
// mobility management cause frequent EMM failures despite level-5 signal.
// It exceeds the level-1..4 hazards, producing the Figure 15 jump.
const hubLevel5Hazard = 8.0

// BaseStation is one simulated cell site.
type BaseStation struct {
	Identity telephony.CellIdentity
	ISP      ISPID
	Region   geo.Region
	// RATs lists supported access technologies (at least one).
	RATs []telephony.RAT
	// LoadWeight is the relative attachment popularity; Zipf-distributed
	// across the deployment so failure counts per BS reproduce Figure 11.
	LoadWeight float64
	// Dense marks membership in an uncoordinated dense cluster (hubs).
	Dense bool
}

// Supports reports whether the BS offers the given RAT.
func (b *BaseStation) Supports(rat telephony.RAT) bool {
	for _, r := range b.RATs {
		if r == rat {
			return true
		}
	}
	return false
}

// BestRAT returns the highest-generation RAT the BS supports.
func (b *BaseStation) BestRAT() telephony.RAT {
	best := telephony.RATUnknown
	for _, r := range b.RATs {
		if r.Generation() > best.Generation() {
			best = r
		}
	}
	return best
}

// DeploymentConfig controls deployment generation.
type DeploymentConfig struct {
	// NumBS is the total number of base stations to generate.
	NumBS int
	// ZipfSkew is the exponent of the per-BS load weights (paper fit:
	// a = 0.82 in Figure 11).
	ZipfSkew float64
}

// DefaultDeployment returns the configuration used by the standard fleet
// scenario: numBS stations with the Figure 11 skew.
func DefaultDeployment(numBS int) DeploymentConfig {
	return DeploymentConfig{NumBS: numBS, ZipfSkew: 0.82}
}

// Network is a generated radio environment.
type Network struct {
	Stations []*BaseStation
	isps     [NumISPs]ISP

	// byCell indexes stations by (ISP, region); each entry carries a
	// categorical sampler over station load weights.
	byCell map[cellKey]*stationPool
}

type cellKey struct {
	isp    ISPID
	region geo.Region
}

type stationPool struct {
	stations []*BaseStation
	weights  []float64
	// prefix holds the running sums of weights, built once after the pool
	// stops growing, so pick is a binary search instead of a linear scan.
	prefix []float64
}

// finalize precomputes the prefix sums. Must be called after the last
// station is added and before any concurrent pick.
func (p *stationPool) finalize() {
	p.prefix = make([]float64, len(p.weights))
	total := 0.0
	for i, w := range p.weights {
		total += w
		p.prefix[i] = total
	}
}

// Generate builds a deployment. Stations are distributed across ISPs by BS
// share and across regions by regional BS share; RAT support is sampled to
// match the paper's marginal shares; load weights follow a Zipf law.
func Generate(cfg DeploymentConfig, r *rng.Source) (*Network, error) {
	if cfg.NumBS <= 0 {
		return nil, fmt.Errorf("simnet: NumBS must be positive, got %d", cfg.NumBS)
	}
	if cfg.ZipfSkew <= 0 {
		cfg.ZipfSkew = 0.82
	}
	n := &Network{isps: ISPs(), byCell: make(map[cellKey]*stationPool)}

	ispWeights := make([]float64, NumISPs)
	for i, isp := range n.isps {
		ispWeights[i] = isp.BSShare
	}
	ispPick := rng.NewCategorical(ispWeights)

	profiles := geo.Profiles()
	regionWeights := make([]float64, geo.NumRegions)
	for i, p := range profiles {
		regionWeights[i] = p.BSShare
	}
	regionPick := rng.NewCategorical(regionWeights)

	// Zipf load weights assigned over a random permutation so rank is not
	// correlated with ISP or region.
	perm := r.Perm(cfg.NumBS)

	for i := 0; i < cfg.NumBS; i++ {
		isp := ISPID(ispPick.Draw(r))
		region := geo.Region(regionPick.Draw(r))
		bs := &BaseStation{
			Identity: telephony.CellIdentity{
				MCC: 460,
				MNC: uint16(isp),
				LAC: uint32(1 + i/1024),
				CID: uint32(1 + i%1024 + (i/1024)<<10),
			},
			ISP:        isp,
			Region:     region,
			RATs:       sampleRATs(r, region),
			LoadWeight: math.Pow(float64(perm[i]+1), -cfg.ZipfSkew),
			Dense:      region.Profile().DenseDeployment,
		}
		n.Stations = append(n.Stations, bs)
		key := cellKey{isp, region}
		pool := n.byCell[key]
		if pool == nil {
			pool = &stationPool{}
			n.byCell[key] = pool
		}
		pool.stations = append(pool.stations, bs)
		pool.weights = append(pool.weights, bs.LoadWeight)
	}
	for _, pool := range n.byCell {
		pool.finalize()
	}
	return n, nil
}

// ratPrimaryPick draws each BS's guaranteed primary RAT with probabilities
// proportional to the marginal shares.
var ratPrimaryPick = func() *rng.Categorical {
	ws := make([]float64, len(telephony.AllRATs))
	for i, rat := range telephony.AllRATs {
		ws[i] = RATShares[rat]
	}
	return rng.NewCategorical(ws)
}()

// sampleRATs draws a BS's supported RAT set. Each BS gets exactly one
// primary RAT (categorical over the marginal shares) plus independent
// secondary RATs with probabilities solved so the overall marginals match
// the paper's 23.4%/10.2%/65.2%/7.3%. 5G rollout concentrates in cities:
// rural/remote 5G primaries are demoted to 4G and urban/hub BSes add 5G as
// a secondary more often.
func sampleRATs(r *rng.Source, region geo.Region) []telephony.RAT {
	shareSum := 0.0
	for _, rat := range telephony.AllRATs {
		shareSum += RATShares[rat]
	}
	primary := telephony.AllRATs[ratPrimaryPick.Draw(r)]
	if primary == telephony.RAT5G && (region == geo.Remote || region == geo.Rural) && r.Bool(0.85) {
		primary = telephony.RAT4G
	}
	rats := []telephony.RAT{primary}
	for _, rat := range telephony.AllRATs {
		if rat == primary {
			continue
		}
		prim := RATShares[rat] / shareSum
		q := (RATShares[rat] - prim) / (1 - prim)
		if rat == telephony.RAT5G {
			switch region {
			case geo.Urban, geo.TransportHub:
				q *= 4 // cities host the 5G build-out
			case geo.Rural, geo.Remote:
				q = 0
			}
		}
		if r.Bool(q) {
			rats = append(rats, rat)
		}
	}
	return rats
}

// ISP returns the carrier descriptor.
func (n *Network) ISP(id ISPID) ISP { return n.isps[id] }

// Attachment describes a device camped on a BS with a specific RAT and
// signal level.
type Attachment struct {
	BS    *BaseStation
	RAT   telephony.RAT
	Level telephony.SignalLevel
}

// Overlay adjusts the radio environment as a function of virtual time. The
// fault-injection subsystem implements it to superimpose degradation
// windows and capability outages on a generated deployment without
// regenerating it; a nil Overlay leaves the environment untouched and the
// attach path draw-for-draw identical to the unfaulted one.
type Overlay interface {
	// LevelShift returns how many signal levels to subtract for a device
	// of the given ISP camped in the given region at virtual time at
	// (0 = no degradation; results clamp at level 0).
	LevelShift(isp ISPID, region geo.Region, at time.Duration) int
	// RATBlocked reports whether the RAT is unusable for the ISP at
	// virtual time at (a capability outage: the fleet-wide loss of one
	// access technology, e.g. a 5G core failure).
	RATBlocked(isp ISPID, rat telephony.RAT, at time.Duration) bool
}

// Attach selects a base station for a device of the given ISP in the given
// region (weighted by BS load) and samples its signal level. wantRAT is the
// RAT the device's selection policy requested; if the chosen BS does not
// support it, the best supported RAT is used instead, mirroring a fallback
// camp.
func (n *Network) Attach(r *rng.Source, isp ISPID, region geo.Region, wantRAT telephony.RAT) (Attachment, error) {
	return n.AttachAt(r, isp, region, wantRAT, 0, nil)
}

// AttachAt is Attach under a fault overlay at virtual time at: blocked
// RATs cannot be camped on (the device falls back to the best unblocked
// RAT the BS supports, or fails to attach if there is none), and regional
// RSS degradation shifts the sampled signal level down. A nil overlay
// reduces to Attach and consumes exactly the same random draws.
func (n *Network) AttachAt(r *rng.Source, isp ISPID, region geo.Region, wantRAT telephony.RAT, at time.Duration, ov Overlay) (Attachment, error) {
	pool := n.byCell[cellKey{isp, region}]
	if pool == nil || len(pool.stations) == 0 {
		// Sparse deployments may lack a region; fall back to any region
		// for this ISP.
		for reg := geo.Region(0); reg < geo.NumRegions; reg++ {
			if p := n.byCell[cellKey{isp, reg}]; p != nil && len(p.stations) > 0 {
				pool = p
				break
			}
		}
		if pool == nil {
			return Attachment{}, fmt.Errorf("simnet: no stations for %v", isp)
		}
	}
	bs := pool.pick(r)
	rat := wantRAT
	if !bs.Supports(rat) || (ov != nil && ov.RATBlocked(isp, rat, at)) {
		rat = bestUnblockedRAT(bs, isp, at, ov)
		if rat == telephony.RATUnknown {
			return Attachment{}, fmt.Errorf("simnet: every RAT of the chosen BS is blocked")
		}
	}
	level := n.SampleLevel(r, bs, rat)
	if ov != nil {
		if shift := ov.LevelShift(isp, bs.Region, at); shift > 0 {
			if int(level) <= shift {
				level = telephony.SignalLevel(0)
			} else {
				level -= telephony.SignalLevel(shift)
			}
		}
	}
	return Attachment{BS: bs, RAT: rat, Level: level}, nil
}

// bestUnblockedRAT returns the highest-generation supported RAT that the
// overlay does not block (RATUnknown if all are blocked).
func bestUnblockedRAT(bs *BaseStation, isp ISPID, at time.Duration, ov Overlay) telephony.RAT {
	best := telephony.RATUnknown
	for _, rat := range bs.RATs {
		if ov != nil && ov.RATBlocked(isp, rat, at) {
			continue
		}
		if rat.Generation() > best.Generation() {
			best = rat
		}
	}
	return best
}

// pick draws a station proportionally to load weight: binary search over
// the precomputed prefix sums. The prefix array accumulates weights in the
// same left-to-right order the old linear scan did, and the search returns
// the first index whose running sum exceeds u, so the draw is bit-identical
// to the scan for every RNG value.
func (p *stationPool) pick(r *rng.Source) *BaseStation {
	u := r.Float64() * p.prefix[len(p.prefix)-1]
	i := sort.Search(len(p.prefix), func(i int) bool { return p.prefix[i] > u })
	if i >= len(p.stations) {
		i = len(p.stations) - 1
	}
	return p.stations[i]
}

// baseLevelWeights is the signal-level distribution by region before ISP
// coverage adjustment. Transport hubs overwhelmingly deliver excellent RSS.
var baseLevelWeights = map[geo.Region][telephony.NumSignalLevels]float64{
	geo.Urban:        {0.02, 0.08, 0.16, 0.33, 0.35, 0.06},
	geo.Suburban:     {0.04, 0.12, 0.22, 0.33, 0.26, 0.03},
	geo.Rural:        {0.10, 0.22, 0.28, 0.25, 0.14, 0.01},
	geo.Remote:       {0.30, 0.30, 0.20, 0.13, 0.065, 0.005},
	geo.TransportHub: {0.01, 0.02, 0.05, 0.12, 0.20, 0.60},
}

// SampleLevel draws a signal level for a device camped on bs with rat.
// ISP coverage (B inferior) shifts the distribution down, as does 3G's
// poor coverage and 5G's shorter range.
func (n *Network) SampleLevel(r *rng.Source, bs *BaseStation, rat telephony.RAT) telephony.SignalLevel {
	weights := baseLevelWeights[bs.Region]
	cov := n.isps[bs.ISP].CoverageFactor
	switch rat {
	case telephony.RAT3G:
		cov *= 0.80 // 3G coverage much worse than 2G when 4G unavailable
	case telephony.RAT5G:
		cov *= 0.60 // mmWave/sub-6 far shorter range than LTE; weak 5G is common
	case telephony.RAT2G:
		cov *= 1.10
	}
	// Shift probability mass toward lower levels when coverage < 1 by
	// exponential tilting: w'_l = w_l * cov^l.
	var tilted [telephony.NumSignalLevels]float64
	total := 0.0
	for l := 0; l < telephony.NumSignalLevels; l++ {
		tilted[l] = weights[l] * math.Pow(cov, float64(l))
		total += tilted[l]
	}
	u := r.Float64() * total
	acc := 0.0
	for l := 0; l < telephony.NumSignalLevels; l++ {
		acc += tilted[l]
		if u < acc {
			return telephony.SignalLevel(l)
		}
	}
	return telephony.Level5
}

// Hazard returns the relative failure-rate multiplier for a device of the
// given ISP camped as att. It composes the ISP factor, RAT contention,
// signal-level hazard (with the dense-deployment level-5 anomaly), and
// regional interference.
func (n *Network) Hazard(isp ISPID, att Attachment) float64 {
	if att.BS == nil {
		return 0
	}
	lh := levelHazard[att.Level]
	if att.BS.Dense && att.Level == telephony.Level5 {
		lh = hubLevel5Hazard
	}
	h := n.isps[isp].HazardFactor * ContentionFactor[att.RAT] * lh
	h *= math.Sqrt(att.BS.Region.Profile().InterferenceFactor)
	return h
}

// LevelHazard exposes the calibrated per-level hazard used by Hazard for a
// non-dense BS; the RAT-transition analysis (Figure 17) normalizes against
// it.
func LevelHazard(l telephony.SignalLevel) float64 {
	if !l.Valid() {
		return 0
	}
	return levelHazard[l]
}

// HubLevel5Hazard exposes the dense-deployment level-5 hazard.
func HubLevel5Hazard() float64 { return hubLevel5Hazard }

var setupCauses, setupCausePick = func() ([]telephony.FailCause, *rng.Categorical) {
	causes, weights := telephony.GeneratorWeights()
	return causes, rng.NewCategorical(weights)
}()

// SampleSetupCause draws a Data_Setup_Error fail cause for the attachment
// context. Dense transport-hub failures skew heavily toward EMM mobility
// management causes (EMM_ACCESS_BARRED, INVALID_EMM_STATE), reproducing the
// paper's root-cause finding for the level-5 anomaly.
func SampleSetupCause(r *rng.Source, att Attachment) telephony.FailCause {
	if att.BS != nil && att.BS.Dense && r.Bool(0.55) {
		if r.Bool(0.5) {
			return telephony.CauseEMMAccessBarred
		}
		return telephony.CauseInvalidEMMState
	}
	return setupCauses[setupCausePick.Draw(r)]
}

// FromStations rebuilds a Network around an existing census (e.g. loaded
// from a saved dataset), reconstructing the per-(ISP, region) pools.
func FromStations(stations []*BaseStation) *Network {
	n := &Network{isps: ISPs(), byCell: make(map[cellKey]*stationPool)}
	for _, bs := range stations {
		n.Stations = append(n.Stations, bs)
		key := cellKey{bs.ISP, bs.Region}
		pool := n.byCell[key]
		if pool == nil {
			pool = &stationPool{}
			n.byCell[key] = pool
		}
		pool.stations = append(pool.stations, bs)
		pool.weights = append(pool.weights, bs.LoadWeight)
	}
	for _, pool := range n.byCell {
		pool.finalize()
	}
	return n
}
