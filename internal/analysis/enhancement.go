package analysis

import (
	"time"

	"repro/internal/failure"
	"repro/internal/stats"
)

// KindDelta is the per-kind prevalence/frequency change of Figures 19/20.
type KindDelta struct {
	Kind failure.Kind
	// PrevalenceChange and FrequencyChange are relative (negative =
	// reduction), computed over 5G devices.
	PrevalenceChange float64
	FrequencyChange  float64
}

// EnhancementReport reproduces the §4.3 evaluation: the effect of the
// stability-compatible RAT transition and TIMP-based recovery on 5G-phone
// failures and on failure durations.
type EnhancementReport struct {
	// FiveGPrevalenceChange is the relative change in the share of 5G
	// phones with at least one failure (paper: −10%).
	FiveGPrevalenceChange float64
	// FiveGFrequencyChange is the relative change in failures per 5G
	// phone (paper: −40.3%).
	FiveGFrequencyChange float64
	// ByKind breaks the 5G-phone changes down per failure kind.
	ByKind []KindDelta
	// StallDurationChange is the relative change in mean Data_Stall
	// duration across all phones (paper: −38%).
	StallDurationChange float64
	// TotalDurationChange is the relative change in total failure
	// duration across all phones (paper: −36%).
	TotalDurationChange float64
	// MedianDurationBefore/After are the all-failure medians (paper:
	// 6 s → 2 s).
	MedianDurationBefore time.Duration
	MedianDurationAfter  time.Duration
	// StallKS is the Kolmogorov–Smirnov distance between the vanilla and
	// patched Data_Stall duration distributions — how much of the CDF
	// (Figure 21's x-axis) the trigger change actually moved.
	StallKS float64
}

// CompareEnhancement evaluates a patched run against a vanilla run.
// Both inputs must come from fleets with the same scenario shape.
func CompareEnhancement(vanilla, patched Input) EnhancementReport {
	return compareEnhancementFrom(NewPass(vanilla), NewPass(patched))
}

func compareEnhancementFrom(vanilla, patched source) EnhancementReport {
	rep := EnhancementReport{}

	vg, _ := vanilla.By5G()
	pg, _ := patched.By5G()
	rep.FiveGPrevalenceChange = stats.RelativeChange(vg.Prevalence, pg.Prevalence)
	rep.FiveGFrequencyChange = stats.RelativeChange(vg.Frequency, pg.Frequency)

	rep.ByKind = kindDeltasFrom(vanilla, patched)

	vd, pd := vanilla.Figure4(), patched.Figure4()
	rep.MedianDurationBefore = vd.Median
	rep.MedianDurationAfter = pd.Median

	// Duration comparisons use winsorized means (99th percentile cap): a
	// simulation-scale fleet cannot average away the multi-hour remote
	// tail the way the paper's 2.3B events do, and a handful of 25-hour
	// outages landing in one arm would otherwise drown the recovery
	// trigger's effect.
	const winsorQ = 0.99
	rep.StallDurationChange = stats.RelativeChange(
		winsorizedMeanOf(vanilla.kindDurations(failure.DataStall), winsorQ),
		winsorizedMeanOf(patched.kindDurations(failure.DataStall), winsorQ))
	rep.TotalDurationChange = stats.RelativeChange(
		winsorizedTotalPerDevice(vanilla, winsorQ),
		winsorizedTotalPerDevice(patched, winsorQ))
	if ks, err := stats.KolmogorovSmirnov(
		vanilla.kindDurations(failure.DataStall),
		patched.kindDurations(failure.DataStall)); err == nil {
		rep.StallKS = ks
	}
	return rep
}

func winsorizedMeanOf(xs []float64, q float64) float64 {
	m, err := stats.WinsorizedMean(xs, q)
	if err != nil {
		return 0
	}
	return m
}

// winsorizedTotalPerDevice is total (winsorized) failure seconds per device.
func winsorizedTotalPerDevice(src source, q float64) float64 {
	xs := src.allDurations()
	m, err := stats.WinsorizedMean(xs, q)
	if err != nil || src.input().Population.Total == 0 {
		return 0
	}
	return m * float64(len(xs)) / float64(src.input().Population.Total)
}

func kindDeltasFrom(vanilla, patched source) []KindDelta {
	vm, vPop := vanilla.fiveGKindStats(), vanilla.input().Population.FiveG
	pm, pPop := patched.fiveGKindStats(), patched.input().Population.FiveG
	kinds := []failure.Kind{failure.DataSetupError, failure.DataStall, failure.OutOfService}
	out := make([]KindDelta, 0, len(kinds))
	for _, k := range kinds {
		d := KindDelta{Kind: k}
		var vp, vf, pp, pf float64
		if a, ok := vm[k]; ok && vPop > 0 {
			vp = float64(a.devices) / float64(vPop)
			vf = float64(a.events) / float64(vPop)
		}
		if a, ok := pm[k]; ok && pPop > 0 {
			pp = float64(a.devices) / float64(pPop)
			pf = float64(a.events) / float64(pPop)
		}
		d.PrevalenceChange = stats.RelativeChange(vp, pp)
		d.FrequencyChange = stats.RelativeChange(vf, pf)
		out = append(out, d)
	}
	return out
}

// OverheadReport checks the monitoring overhead against the paper's §2.2
// and §4.3 budgets.
type OverheadReport struct {
	MeanCPUUtilization float64
	MaxCPUUtilization  float64
	MaxMemoryBytes     int64
	MaxStorageBytes    int64
	MaxNetworkBytes    int64
	// Budget verdicts.
	WithinTypicalBudget bool // <2% CPU, <40 KB mem, <100 KB storage
	WithinWorstBudget   bool // <8% CPU, <2 MB mem (patched: ~3 MB), <20 MB storage, ~20 MB net/month
}

// CheckOverhead evaluates an overhead summary against the paper's budgets
// over a window of the given number of months.
func CheckOverhead(mean, maxCPU float64, maxMem, maxStorage, maxNet int64, months float64) OverheadReport {
	if months <= 0 {
		months = 8
	}
	rep := OverheadReport{
		MeanCPUUtilization: mean,
		MaxCPUUtilization:  maxCPU,
		MaxMemoryBytes:     maxMem,
		MaxStorageBytes:    maxStorage,
		MaxNetworkBytes:    maxNet,
	}
	rep.WithinTypicalBudget = mean < 0.02
	netPerMonth := float64(maxNet) / months
	rep.WithinWorstBudget = maxCPU < 0.08 &&
		maxMem < 3<<20 &&
		maxStorage < 20<<20 &&
		netPerMonth < 22<<20
	return rep
}
