package analysis

import "repro/internal/metrics"

// Engine metrics: one pass may feed many figures, so throughput here is
// the number the sharded-store refactor is accountable to.
var (
	mPasses = metrics.NewCounter("analysis_passes_total",
		"Single-pass engine executions over a dataset.")
	mPassSeconds = metrics.NewHistogram("analysis_pass_seconds",
		"Wall-clock seconds per engine pass (visit plus merge).")
	mEventsVisited = metrics.NewCounter("analysis_events_visited_total",
		"Events delivered to visitor sets by the engine.")
	mEventsPerSec = metrics.NewGauge("analysis_events_per_second",
		"Event throughput of the most recent engine pass.")
	mPassWorkers = metrics.NewGauge("analysis_pass_workers",
		"Shard workers used by the most recent engine pass.")
)

// Live (streaming) engine metrics: the ingest-path accumulators that keep
// figures current while the fleet is still uploading.
var (
	mLiveEvents = metrics.NewCounter("analysis_live_events_total",
		"Events applied to the streaming accumulators.")
	mLiveChunks = metrics.NewCounter("analysis_live_chunks_total",
		"Event chunks handed off from the ingest path.")
	mLiveShed = metrics.NewCounter("analysis_live_chunks_shed_total",
		"Event chunks dropped because the hand-off queue was full.")
	mLiveResyncs = metrics.NewCounter("analysis_live_resyncs_total",
		"Full accumulator rebuilds from the authoritative dataset.")
	mLiveQueueDepth = metrics.NewGauge("analysis_live_queue_depth",
		"Chunks waiting in the streaming hand-off queue.")
	mLiveLateDrops = metrics.NewCounter("analysis_live_window_late_total",
		"Window-accumulator events older than the sliding-window floor.")
	mLiveQueries = metrics.NewCounter("analysis_live_queries_total",
		"Live figure/claims/window snapshot queries served.")
)
