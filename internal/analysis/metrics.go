package analysis

import "repro/internal/metrics"

// Engine metrics: one pass may feed many figures, so throughput here is
// the number the sharded-store refactor is accountable to.
var (
	mPasses = metrics.NewCounter("analysis_passes_total",
		"Single-pass engine executions over a dataset.")
	mPassSeconds = metrics.NewHistogram("analysis_pass_seconds",
		"Wall-clock seconds per engine pass (visit plus merge).")
	mEventsVisited = metrics.NewCounter("analysis_events_visited_total",
		"Events delivered to visitor sets by the engine.")
	mEventsPerSec = metrics.NewGauge("analysis_events_per_second",
		"Event throughput of the most recent engine pass.")
	mPassWorkers = metrics.NewGauge("analysis_pass_workers",
		"Shard workers used by the most recent engine pass.")
)
