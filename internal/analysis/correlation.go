package analysis

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// FeatureCorrelation is one row of the §3.2 hardware-configuration
// analysis: the Pearson correlation of a per-model feature with the
// measured prevalence and frequency across the 34 models.
type FeatureCorrelation struct {
	Feature        string
	WithPrevalence float64
	WithFrequency  float64
}

// HardwareCorrelation reproduces the paper's §3.2 examination: "we examine
// the correlation between each feature and the prevalence/frequency of
// cellular failures, finding that two features, i.e., 5G capability and
// Android version, have significant influence" — while better CPU, memory
// and storage do not relieve the situation (they correlate positively too,
// because high-end phones carry 5G modems and Android 10).
func HardwareCorrelation(in Input, catalogue []ModelCatalogueEntry) []FeatureCorrelation {
	return hardwareCorrelationFromRows(Table1(in, catalogue), catalogue)
}

// hardwareCorrelationFromRows computes the correlations from an already
// extracted Table 1, so a fused pass needs no second scan.
func hardwareCorrelationFromRows(rows []ModelRow, catalogue []ModelCatalogueEntry) []FeatureCorrelation {
	byID := map[int]ModelRow{}
	for _, r := range rows {
		byID[r.ModelID] = r
	}
	var prev, freq []float64
	features := map[string][]float64{
		"cpu_ghz": nil, "memory_gb": nil, "storage_gb": nil,
		"5g_capable": nil, "android10": nil,
	}
	for _, m := range catalogue {
		r, ok := byID[m.ID]
		if !ok || r.Devices < 5 {
			continue // too few devices for a usable estimate
		}
		prev = append(prev, r.Prevalence)
		freq = append(freq, r.Frequency)
		features["cpu_ghz"] = append(features["cpu_ghz"], m.CPUGHz)
		features["memory_gb"] = append(features["memory_gb"], float64(m.MemoryGB))
		features["storage_gb"] = append(features["storage_gb"], float64(m.StorageGB))
		features["5g_capable"] = append(features["5g_capable"], boolTo01(m.FiveG))
		features["android10"] = append(features["android10"], boolTo01(m.Android >= 10))
	}
	order := []string{"cpu_ghz", "memory_gb", "storage_gb", "5g_capable", "android10"}
	out := make([]FeatureCorrelation, 0, len(order))
	for _, name := range order {
		cp, _ := stats.Pearson(features[name], prev)
		cf, _ := stats.Pearson(features[name], freq)
		out = append(out, FeatureCorrelation{Feature: name, WithPrevalence: cp, WithFrequency: cf})
	}
	return out
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// RenderCorrelation prints the feature-correlation table.
func RenderCorrelation(rows []FeatureCorrelation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %14s\n", "Feature", "r(prevalence)", "r(frequency)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %+14.2f %+14.2f\n", r.Feature, r.WithPrevalence, r.WithFrequency)
	}
	return b.String()
}
