package analysis

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/trace"
)

// liveGet fetches one live endpoint's raw bytes.
func liveGet(t *testing.T, srv *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return b
}

// uploadRunLive runs a fleet scenario uploading through a live in-process
// collector whose admit path feeds a streaming engine, queries the live
// endpoints mid-run, then drains and settles. It returns the final live
// figure/claims bytes plus the engine and the collector's dataset.
func uploadRunLive(t *testing.T, scenario fleet.Scenario) (fig, claims []byte, eng *Streaming, ds *trace.Dataset, res *fleet.Result) {
	t.Helper()
	ds = trace.NewDataset()
	eng = NewStreaming(LiveInput(ds), StreamingOptions{})
	col, err := trace.NewCollectorWith("127.0.0.1:0", ds, trace.CollectorOptions{OnAdmit: eng.Ingest})
	if err != nil {
		t.Fatalf("collector: %v", err)
	}
	scenario.UploadAddr = col.Addr()

	srv := httptest.NewServer(func() http.Handler {
		mux := http.NewServeMux()
		NewLiveAPI(eng, catalogueCE).Routes(mux)
		return mux
	}())
	defer srv.Close()

	// Query the live endpoints while the fleet is still uploading — the
	// mid-run responses only need to be servable; equality is asserted
	// post-drain.
	done := make(chan *fleet.Result, 1)
	go func() {
		r, err := fleet.Run(scenario)
		if err != nil {
			t.Errorf("fleet run: %v", err)
		}
		done <- r
	}()
	for {
		select {
		case res = <-done:
		case <-time.After(2 * time.Millisecond):
			liveGet(t, srv, "/api/live/figures")
			liveGet(t, srv, "/api/live/status")
			continue
		}
		break
	}
	if res == nil {
		t.Fatal("fleet run failed")
	}
	if err := col.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := eng.WaitIdle(10 * time.Second); err != nil {
		t.Fatalf("wait idle: %v", err)
	}

	in := FromResult(res)
	in.Dataset = ds
	if eng.Sync(in) {
		t.Fatalf("engine resynced — live path was not exercised (shed=%d)", eng.Status().Shed)
	}
	st := eng.Status()
	if st.Shed != 0 || st.Resyncs != 0 {
		t.Fatalf("live path degraded: %+v", st)
	}
	if st.Events != int64(ds.Len()) {
		t.Fatalf("engine applied %d events, collector stored %d", st.Events, ds.Len())
	}

	fig = liveGet(t, srv, "/api/live/figures")
	claims = liveGet(t, srv, "/api/live/claims")
	t.Cleanup(eng.Close)
	return fig, claims, eng, ds, res
}

// batchJSON renders the batch pass over the collector's final dataset with
// the run's context — the oracle the live bytes must equal.
func batchJSON(t *testing.T, res *fleet.Result, ds *trace.Dataset) (fig, claims []byte) {
	t.Helper()
	in := FromResult(res)
	in.Dataset = ds
	pass := NewPass(in)
	fig, err := pass.FiguresJSON(catalogueCE)
	if err != nil {
		t.Fatalf("batch figures: %v", err)
	}
	claims, err = pass.ClaimsJSON()
	if err != nil {
		t.Fatalf("batch claims: %v", err)
	}
	return fig, claims
}

// TestStreamingEqualsBatchEndToEnd is the headline contract: a fleet run
// uploading through a live in-process collector, with figures streamed off
// the admit path, must end byte-identical to the batch renderer over the
// final dataset — on calm and faulted (network-chaos) arms, at one and
// four workers. The faulted arm's ack-loss faults produce real duplicate
// deliveries, so the dedup gate in front of the engine is load-bearing.
func TestStreamingEqualsBatchEndToEnd(t *testing.T) {
	setup(t)
	base := fleet.Scenario{
		Seed:       41,
		NumDevices: 500,
		Window:     45 * 24 * time.Hour,
	}

	arms := []struct {
		name    string
		faulted bool
		workers int
	}{
		{"calm/workers=1", false, 1},
		{"calm/workers=4", false, 4},
		{"faulted/workers=1", true, 1},
		{"faulted/workers=4", true, 4},
	}
	liveBytes := map[string][]byte{}
	for _, arm := range arms {
		arm := arm
		t.Run(arm.name, func(t *testing.T) {
			scenario := base
			scenario.Workers = arm.workers
			if arm.faulted {
				scenario.Faults = faultinject.DefaultNetworkCampaign(scenario.Window)
			}
			fig, claims, _, ds, res := uploadRunLive(t, scenario)
			wantFig, wantClaims := batchJSON(t, res, ds)
			if !bytes.Equal(fig, wantFig) {
				t.Errorf("live figures JSON != batch figures JSON (live %d bytes, batch %d bytes)\nlive:  %.200s\nbatch: %.200s",
					len(fig), len(wantFig), firstDiff(fig, wantFig), firstDiff(wantFig, fig))
			}
			if !bytes.Equal(claims, wantClaims) {
				t.Errorf("live claims JSON != batch claims JSON (live %d bytes, batch %d bytes)", len(claims), len(wantClaims))
			}
			if arm.faulted && ds.Len() == 0 {
				t.Error("faulted arm stored no events — invariant vacuous")
			}
			key := map[bool]string{false: "calm", true: "faulted"}[arm.faulted]
			if prev, ok := liveBytes[key]; ok {
				if !bytes.Equal(prev, fig) {
					t.Errorf("%s live figures differ across worker counts", key)
				}
			} else {
				liveBytes[key] = fig
			}
		})
	}
}

// firstDiff returns a window of a around the first byte where a and b
// differ, for readable failure output.
func firstDiff(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 40
	if lo < 0 {
		lo = 0
	}
	hi := i + 160
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}

// TestStreamingPermutationProperty feeds the same event multiset to the
// engine in arbitrary arrival permutations and chunkings — including
// duplicate deliveries rejected by a collector-style per-device seq gate —
// and requires the rendered state to match one batch Pass exactly.
func TestStreamingPermutationProperty(t *testing.T) {
	van, _ := setup(t)
	var events []failure.Event
	van.Dataset.Each(func(e *failure.Event) { events = append(events, *e) })
	if len(events) == 0 {
		t.Fatal("empty dataset")
	}
	pass := NewPass(van)
	wantFig, err := pass.FiguresJSON(catalogueCE)
	if err != nil {
		t.Fatal(err)
	}
	wantClaims, err := pass.ClaimsJSON()
	if err != nil {
		t.Fatal(err)
	}

	feed := func(t *testing.T, chunks [][]failure.Event) {
		t.Helper()
		eng := NewStreaming(van, StreamingOptions{QueueChunks: len(chunks) + 1})
		defer eng.Close()
		for _, c := range chunks {
			eng.Ingest(c)
		}
		if err := eng.WaitIdle(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		gotFig, err := eng.FiguresJSON(catalogueCE)
		if err != nil {
			t.Fatal(err)
		}
		gotClaims, err := eng.ClaimsJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotFig, wantFig) {
			t.Errorf("permuted streaming figures != batch figures\nnear: %.200s", firstDiff(gotFig, wantFig))
		}
		if !bytes.Equal(gotClaims, wantClaims) {
			t.Error("permuted streaming claims != batch claims")
		}
		if st := eng.Status(); st.Shed != 0 {
			t.Errorf("property feed shed chunks: %+v", st)
		}
	}

	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run("shuffle", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			perm := make([]failure.Event, len(events))
			for i, j := range rng.Perm(len(events)) {
				perm[i] = events[j]
			}
			var chunks [][]failure.Event
			for len(perm) > 0 {
				n := 1 + rng.Intn(2048)
				if n > len(perm) {
					n = len(perm)
				}
				chunks = append(chunks, append([]failure.Event(nil), perm[:n]...))
				perm = perm[n:]
			}
			feed(t, chunks)
		})
	}

	t.Run("dedup-gate", func(t *testing.T) {
		// Batches carry (device, seq) like the wire protocol; devices
		// interleave arbitrarily, each batch may be redelivered (a retry
		// after a lost ack), and the collector's high-water rule decides
		// admission. Only admitted chunks reach the engine.
		rng := rand.New(rand.NewSource(99))
		byDev := map[uint64][]failure.Event{}
		var devs []uint64
		for _, e := range events {
			if _, ok := byDev[e.DeviceID]; !ok {
				devs = append(devs, e.DeviceID)
			}
			byDev[e.DeviceID] = append(byDev[e.DeviceID], e)
		}
		type batch struct {
			dev    uint64
			seq    uint64
			events []failure.Event
		}
		queues := map[uint64][]batch{}
		for _, d := range devs {
			rest := byDev[d]
			var seq uint64
			for len(rest) > 0 {
				n := 1 + rng.Intn(64)
				if n > len(rest) {
					n = len(rest)
				}
				seq++
				queues[d] = append(queues[d], batch{d, seq, append([]failure.Event(nil), rest[:n]...)})
				rest = rest[n:]
			}
		}
		var admitted [][]failure.Event
		lastSeq := map[uint64]uint64{}
		deliver := func(b batch) {
			if b.seq <= lastSeq[b.dev] {
				return // duplicate: rejected by the gate, never reaches the engine
			}
			lastSeq[b.dev] = b.seq
			admitted = append(admitted, b.events)
		}
		var sent []batch
		remaining := append([]uint64(nil), devs...)
		for len(remaining) > 0 {
			i := rng.Intn(len(remaining))
			d := remaining[i]
			b := queues[d][0]
			queues[d] = queues[d][1:]
			deliver(b)
			sent = append(sent, b)
			if rng.Intn(5) == 0 { // retry after a lost ack: duplicate delivery
				deliver(sent[rng.Intn(len(sent))])
			}
			if len(queues[d]) == 0 {
				remaining[i] = remaining[len(remaining)-1]
				remaining = remaining[:len(remaining)-1]
			}
		}
		var total int
		for _, c := range admitted {
			total += len(c)
		}
		if total != len(events) {
			t.Fatalf("gate admitted %d events, want %d", total, len(events))
		}
		feed(t, admitted)
	})
}

// TestStreamingMidRenderDoesNotPerturb renders live JSON halfway through a
// feed and asserts the final state still equals batch — extraction must
// never mutate accumulator state.
func TestStreamingMidRenderDoesNotPerturb(t *testing.T) {
	van, _ := setup(t)
	var events []failure.Event
	van.Dataset.Each(func(e *failure.Event) { events = append(events, *e) })
	pass := NewPass(van)
	want, err := pass.FiguresJSON(catalogueCE)
	if err != nil {
		t.Fatal(err)
	}

	eng := NewStreaming(van, StreamingOptions{})
	defer eng.Close()
	half := len(events) / 2
	eng.Ingest(append([]failure.Event(nil), events[:half]...))
	if err := eng.WaitIdle(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.FiguresJSON(catalogueCE); err != nil {
		t.Fatalf("mid-feed render: %v", err)
	}
	if _, err := eng.ClaimsJSON(); err != nil {
		t.Fatalf("mid-feed claims: %v", err)
	}
	eng.Window()
	eng.Ingest(append([]failure.Event(nil), events[half:]...))
	if err := eng.WaitIdle(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := eng.FiguresJSON(catalogueCE)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("mid-run render perturbed final state\nnear: %.200s", firstDiff(got, want))
	}
}

// TestStreamingOverflowResync forces hand-off shedding (tiny queue, stalled
// applier) and asserts (a) Ingest never blocks, (b) the shed is counted,
// and (c) Sync rebuilds state equal to a batch pass over the authoritative
// dataset.
func TestStreamingOverflowResync(t *testing.T) {
	van, _ := setup(t)
	var events []failure.Event
	van.Dataset.Each(func(e *failure.Event) { events = append(events, *e) })
	if len(events) < 3 {
		t.Fatal("need at least 3 events")
	}

	eng := NewStreaming(van, StreamingOptions{QueueChunks: 1})
	defer eng.Close()

	// Stall the applier: it drains the queue immediately but blocks on the
	// state lock while applying, so the (capacity-1) queue refills and
	// overflows deterministically.
	eng.smu.Lock()
	eng.Ingest(events[0:1])
	deadline := time.Now().Add(5 * time.Second)
	for {
		eng.qmu.Lock()
		depth := len(eng.queue)
		eng.qmu.Unlock()
		if depth == 0 {
			break // applier picked the chunk up and is parked on smu
		}
		if time.Now().After(deadline) {
			eng.smu.Unlock()
			t.Fatal("applier never picked up the first chunk")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	eng.Ingest(events[1:2]) // queued (capacity 1)
	eng.Ingest(events[2:3]) // over capacity: shed
	if blocked := time.Since(start); blocked > time.Second {
		t.Fatalf("Ingest blocked for %v with a stalled applier", blocked)
	}
	eng.smu.Unlock()

	if err := eng.WaitIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := eng.Status()
	if st.Shed == 0 {
		t.Fatal("expected a shed chunk")
	}
	if st.Events != 2 {
		t.Fatalf("applied %d events, want 2 (one chunk shed)", st.Events)
	}

	if !eng.Sync(van) {
		t.Fatal("Sync did not rebuild despite shed chunks")
	}
	got, err := eng.FiguresJSON(catalogueCE)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewPass(van).FiguresJSON(catalogueCE)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("post-resync figures != batch figures\nnear: %.200s", firstDiff(got, want))
	}
	if st := eng.Status(); st.Resyncs != 1 || st.Events != int64(len(events)) {
		t.Errorf("post-resync status: %+v", st)
	}
	// A second Sync with nothing shed since must be a no-op.
	if eng.Sync(van) {
		t.Error("Sync rebuilt again with no shed since the last rebuild")
	}
}

// TestStreamingEmptyContextSafe renders figures, claims and window from a
// zero-value live context (no population, no dwell, no network) — the
// state a live collector serves before any context snapshot is installed.
func TestStreamingEmptyContextSafe(t *testing.T) {
	eng := NewStreaming(LiveInput(trace.NewDataset()), StreamingOptions{})
	defer eng.Close()
	if _, err := eng.FiguresJSON(nil); err != nil {
		t.Fatalf("empty figures: %v", err)
	}
	if _, err := eng.ClaimsJSON(); err != nil {
		t.Fatalf("empty claims: %v", err)
	}
	if snap := eng.Window(); snap.Events != 0 || snap.Samples != 0 {
		t.Fatalf("empty window: %+v", snap)
	}
	if st := eng.Status(); st.Events != 0 || st.Shed != 0 {
		t.Fatalf("empty status: %+v", st)
	}
}

// TestStreamingRaceSoak hammers the engine from concurrent producers and
// live-endpoint readers, then drains and shuts down, asserting no torn
// reads (under -race) and a goroutine-leak-free shutdown (Close joins the
// applier; the HTTP server joins its handlers).
func TestStreamingRaceSoak(t *testing.T) {
	van, _ := setup(t)
	var events []failure.Event
	van.Dataset.Each(func(e *failure.Event) { events = append(events, *e) })
	if len(events) > 20000 {
		events = events[:20000]
	}

	eng := NewStreaming(van, StreamingOptions{QueueChunks: 1 << 16})
	srv := httptest.NewServer(func() http.Handler {
		mux := http.NewServeMux()
		NewLiveAPI(eng, catalogueCE).Routes(mux)
		return mux
	}())

	var wg sync.WaitGroup
	const producers = 4
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := p; i < len(events); i += producers {
				n := 1 + rng.Intn(64)
				hi := i + n*producers
				if hi > len(events) {
					hi = len(events)
				}
				var chunk []failure.Event
				for j := i; j < hi; j += producers {
					chunk = append(chunk, events[j])
				}
				i = hi - producers
				eng.Ingest(chunk)
			}
		}()
	}
	stopRead := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/api/live/figures", "/api/live/claims", "/api/live/window", "/api/live/status"}
			for i := 0; ; i++ {
				select {
				case <-stopRead:
					return
				default:
				}
				resp, err := http.Get(srv.URL + paths[i%len(paths)])
				if err != nil {
					t.Errorf("live query: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	// Drain concurrently with the readers, like a collector shutdown with
	// dashboards still attached.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond)
		close(stopRead)
	}()
	wg.Wait()
	<-done
	if err := eng.WaitIdle(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := eng.Status(); st.Shed != 0 {
		t.Errorf("soak shed chunks: %+v", st)
	}
	eng.Close()
	// Close is idempotent and must not hang after the applier exited.
	eng.Close()
	srv.Close()
}

// TestWindowAccum pins the sliding-window boundary arithmetic: bucket
// assignment, head advance, lazy slot reclamation, and late-event drops.
func TestWindowAccum(t *testing.T) {
	w := newWindowAccum(3, time.Hour)
	ev := func(start time.Duration, dur time.Duration) *failure.Event {
		return &failure.Event{Kind: failure.DataStall, Start: start, Duration: dur}
	}
	w.Add(ev(30*time.Minute, 10*time.Second))  // bucket 0
	w.Add(ev(90*time.Minute, 20*time.Second))  // bucket 1
	w.Add(ev(150*time.Minute, 30*time.Second)) // bucket 2
	snap := w.snapshot()
	if snap.Events != 3 || snap.LateDrops != 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap.FromSeconds != 0 || snap.ToSeconds != (3*time.Hour).Seconds() {
		t.Fatalf("window bounds: %+v", snap)
	}
	if snap.DurMax != 30 || snap.Samples != 3 {
		t.Fatalf("duration summary: %+v", snap)
	}

	// Advancing to bucket 3 evicts bucket 0; a bucket-0 event is now late.
	w.Add(ev(3*time.Hour+time.Minute, 40*time.Second))
	w.Add(ev(30*time.Minute, 50*time.Second))
	snap = w.snapshot()
	if snap.Events != 3 { // buckets 1,2,3
		t.Fatalf("after advance: %+v", snap)
	}
	if snap.LateDrops != 1 {
		t.Fatalf("late drops: %+v", snap)
	}
	if snap.FromSeconds != (1 * time.Hour).Seconds() {
		t.Fatalf("floor after advance: %+v", snap)
	}

	// A jump far beyond the ring staleness-invalidates every old slot.
	w.Add(ev(100*time.Hour, time.Second))
	snap = w.snapshot()
	if snap.Events != 1 {
		t.Fatalf("after far jump: %+v", snap)
	}
	if got, want := snap.ToSeconds, (101 * time.Hour).Seconds(); got != want {
		t.Fatalf("head after far jump: got %v want %v", got, want)
	}

	// Negative starts clamp to bucket zero and are late once evicted.
	lateBefore := w.late
	w.Add(ev(-time.Hour, time.Second))
	if w.late != lateBefore+1 {
		t.Fatalf("negative start not treated as late: late=%d", w.late)
	}
}
