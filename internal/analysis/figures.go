package analysis

import (
	"sort"
	"time"

	"repro/internal/android"
	"repro/internal/failure"
	"repro/internal/geo"
	"repro/internal/stats"
	"repro/internal/telephony"
)

// StallAutoFix reproduces Figure 10: how quickly Data_Stall failures fix
// themselves without intervention.
type StallAutoFix struct {
	CDF *stats.ECDF // seconds
	// Under10 is the fraction self-fixed within 10 s (paper: 60%).
	Under10 float64
	// Under300 is the fraction under 300 s (paper: >80%).
	Under300 float64
	// FirstOpFixRate is the share of executed first-stage cleanups that
	// fixed the stall (paper: 75%).
	FirstOpFixRate float64
}

// Figure10 computes the stall self-recovery distribution from the probing
// component's AutoFixTime measurements.
func Figure10(in Input) StallAutoFix {
	var xs []float64
	var op1Exec, op1Fix int
	in.Dataset.Each(func(e *failure.Event) {
		if e.Kind != failure.DataStall {
			return
		}
		if e.AutoFixTime > 0 {
			xs = append(xs, e.AutoFixTime.Seconds())
		}
		if e.OpsExecuted >= 1 {
			op1Exec++
			if e.ResolvedBy == android.ResolvedOp1 {
				op1Fix++
			}
		}
	})
	out := StallAutoFix{CDF: stats.NewECDF(xs)}
	if len(xs) > 0 {
		out.Under10 = out.CDF.P(10)
		out.Under300 = out.CDF.P(300)
	}
	if op1Exec > 0 {
		out.FirstOpFixRate = float64(op1Fix) / float64(op1Exec)
	}
	return out
}

// BSRanking reproduces Figure 11: base stations ranked by experienced
// failures, with the fitted Zipf parameters (paper: a = 0.82, b = 17.12;
// median 1, mean 444, max 8,941,860).
type BSRanking struct {
	Counts []uint64 // descending
	Fit    stats.ZipfFit
	Median float64
	Mean   float64
	Max    uint64
	// TopUrbanShare is the fraction of the top-ranked BSes located in
	// crowded urban areas or transport hubs (the paper's root cause).
	TopUrbanShare float64
}

// Figure11 ranks BSes by failure count.
func Figure11(in Input, topN int) BSRanking {
	counts := map[uint64]uint64{}
	urban := map[uint64]bool{}
	in.Dataset.Each(func(e *failure.Event) {
		id := e.Cell.GlobalID()
		counts[id]++
		if e.Region == geo.Urban || e.Region == geo.TransportHub {
			urban[id] = true
		}
	})
	type kv struct {
		id uint64
		n  uint64
	}
	list := make([]kv, 0, len(counts))
	for id, n := range counts {
		list = append(list, kv{id, n})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].n > list[j].n })

	out := BSRanking{}
	var sum uint64
	xs := make([]float64, len(list))
	for i, e := range list {
		out.Counts = append(out.Counts, e.n)
		sum += e.n
		xs[i] = float64(e.n)
		if e.n > out.Max {
			out.Max = e.n
		}
	}
	if len(list) > 0 {
		out.Mean = float64(sum) / float64(len(list))
		ecdf := stats.NewECDF(xs)
		out.Median = ecdf.Quantile(0.5)
		if fit, err := stats.FitZipf(out.Counts); err == nil {
			out.Fit = fit
		}
		if topN > len(list) {
			topN = len(list)
		}
		urbanTop := 0
		for _, e := range list[:topN] {
			if urban[e.id] {
				urbanTop++
			}
		}
		if topN > 0 {
			out.TopUrbanShare = float64(urbanTop) / float64(topN)
		}
	}
	return out
}

// RATPrevalence reproduces Figure 14: the prevalence of cellular failures
// on BSes of each access technology, measured as failures per thousand
// connected hours on that RAT (a fleet of our size saturates the paper's
// raw per-BS fraction, so we report the dwell-normalized rate — the
// quantity the ordering claim is actually about: 3G networks face less
// resource contention and manifest fewer failures than 2G or 4G; 5G is
// worst).
type RATPrevalence struct {
	RAT        telephony.RAT
	Events     int64
	DwellHours float64
	// Prevalence is failures per 1000 connected hours.
	Prevalence float64
	// BSes is the census count of stations supporting the RAT.
	BSes int64
}

// Figure14 computes per-RAT normalized failure prevalence.
func Figure14(in Input) []RATPrevalence {
	var events [5]int64
	in.Dataset.Each(func(e *failure.Event) {
		if int(e.RAT) < len(events) {
			events[e.RAT]++
		}
	})
	out := make([]RATPrevalence, 0, len(telephony.AllRATs))
	for _, rat := range telephony.AllRATs {
		row := RATPrevalence{RAT: rat, Events: events[rat]}
		for l := 0; l < telephony.NumSignalLevels; l++ {
			row.DwellHours += in.Dwell.Seconds[rat][l] / 3600
		}
		for _, bs := range in.Network.Stations {
			if bs.Supports(rat) {
				row.BSes++
			}
		}
		if row.DwellHours > 0 {
			row.Prevalence = float64(row.Events) / row.DwellHours * 1000
		}
		out = append(out, row)
	}
	return out
}

// LevelPrevalence reproduces Figures 15 and 16: normalized prevalence
// (prevalence divided by mean connected time, the paper's fairness
// correction for unequal dwell) per signal level.
type LevelPrevalence struct {
	Level telephony.SignalLevel
	// Raw is devices failing at this level / devices exposed to it.
	Raw float64
	// Normalized divides Raw by the mean dwell hours per exposed device.
	Normalized float64
	Exposed    int64
}

// Figure15 computes normalized prevalence per signal level across RATs.
func Figure15(in Input) [telephony.NumSignalLevels]LevelPrevalence {
	failing := [telephony.NumSignalLevels]map[uint64]bool{}
	for l := range failing {
		failing[l] = map[uint64]bool{}
	}
	in.Dataset.Each(func(e *failure.Event) {
		if e.Level.Valid() {
			failing[e.Level][e.DeviceID] = true
		}
	})
	var out [telephony.NumSignalLevels]LevelPrevalence
	for l := 0; l < telephony.NumSignalLevels; l++ {
		var exposed int64
		var seconds float64
		for rat := 0; rat < 5; rat++ {
			exposed += in.Dwell.DevicesExposed[rat][l]
			seconds += in.Dwell.Seconds[rat][l]
		}
		row := LevelPrevalence{Level: telephony.SignalLevel(l), Exposed: exposed}
		if exposed > 0 {
			row.Raw = float64(len(failing[l])) / float64(exposed)
			meanHours := seconds / float64(exposed) / 3600
			if meanHours > 0 {
				row.Normalized = row.Raw / meanHours
			}
		}
		out[l] = row
	}
	return out
}

// Figure16 computes normalized prevalence per signal level for one RAT
// (the paper contrasts 4G and 5G).
func Figure16(in Input, rat telephony.RAT) [telephony.NumSignalLevels]LevelPrevalence {
	failing := [telephony.NumSignalLevels]map[uint64]bool{}
	for l := range failing {
		failing[l] = map[uint64]bool{}
	}
	in.Dataset.Each(func(e *failure.Event) {
		if e.RAT == rat && e.Level.Valid() {
			failing[e.Level][e.DeviceID] = true
		}
	})
	var out [telephony.NumSignalLevels]LevelPrevalence
	for l := 0; l < telephony.NumSignalLevels; l++ {
		exposed := in.Dwell.DevicesExposed[rat][l]
		seconds := in.Dwell.Seconds[rat][l]
		row := LevelPrevalence{Level: telephony.SignalLevel(l), Exposed: exposed}
		if exposed > 0 {
			row.Raw = float64(len(failing[l])) / float64(exposed)
			meanHours := seconds / float64(exposed) / 3600
			if meanHours > 0 {
				row.Normalized = row.Raw / meanHours
			}
		}
		out[l] = row
	}
	return out
}

// TransitionIncrease reproduces one panel of Figure 17: the increase of
// failure likelihood for RAT transitions from fromRAT level-i to toRAT
// level-j, relative to the mean transition failure rate.
type TransitionIncrease struct {
	FromRAT, ToRAT telephony.RAT
	// Increase[i][j] is rate(i→j) − meanRate; NaN-free (unobserved cells
	// are zero with Observed[i][j] false).
	Increase [telephony.NumSignalLevels][telephony.NumSignalLevels]float64
	Observed [telephony.NumSignalLevels][telephony.NumSignalLevels]bool
	MeanRate float64
}

// Figure17 computes the transition-failure increase panel for a RAT pair.
func Figure17(in Input, fromRAT, toRAT telephony.RAT) TransitionIncrease {
	out := TransitionIncrease{FromRAT: fromRAT, ToRAT: toRAT}
	var exp, fails int64
	for i := 0; i < telephony.NumSignalLevels; i++ {
		for j := 0; j < telephony.NumSignalLevels; j++ {
			exp += in.Transitions.Exposure[fromRAT][i][toRAT][j]
			fails += in.Transitions.Failures[fromRAT][i][toRAT][j]
		}
	}
	if exp > 0 {
		out.MeanRate = float64(fails) / float64(exp)
	}
	for i := 0; i < telephony.NumSignalLevels; i++ {
		for j := 0; j < telephony.NumSignalLevels; j++ {
			rate, ok := in.Transitions.FailureRate(fromRAT, telephony.SignalLevel(i), toRAT, telephony.SignalLevel(j))
			if !ok {
				continue
			}
			out.Observed[i][j] = true
			out.Increase[i][j] = rate - out.MeanRate
		}
	}
	return out
}

// Figure17Pairs returns the six RAT pairs of Figure 17a-f.
func Figure17Pairs() [6][2]telephony.RAT {
	return [6][2]telephony.RAT{
		{telephony.RAT2G, telephony.RAT3G},
		{telephony.RAT2G, telephony.RAT4G},
		{telephony.RAT2G, telephony.RAT5G},
		{telephony.RAT3G, telephony.RAT4G},
		{telephony.RAT3G, telephony.RAT5G},
		{telephony.RAT4G, telephony.RAT5G},
	}
}

// DurationByKind splits duration statistics per failure kind, used by the
// enhancement evaluation.
func DurationByKind(in Input) map[failure.Kind]DurationStats {
	byKind := map[failure.Kind][]float64{}
	totals := map[failure.Kind]time.Duration{}
	in.Dataset.Each(func(e *failure.Event) {
		byKind[e.Kind] = append(byKind[e.Kind], e.Duration.Seconds())
		totals[e.Kind] += e.Duration
	})
	out := map[failure.Kind]DurationStats{}
	for kind, xs := range byKind {
		cdf := stats.NewECDF(xs)
		out[kind] = DurationStats{
			CDF:    cdf,
			Mean:   time.Duration(cdf.Mean() * float64(time.Second)),
			Median: time.Duration(cdf.Quantile(0.5) * float64(time.Second)),
			Max:    time.Duration(cdf.Max() * float64(time.Second)),
		}
	}
	return out
}

// RegionStats summarizes failures per deployment region (§3.1/§3.3: top
// failing BSes sit in crowded urban areas; the longest outages come from
// long-neglected remote infrastructure).
type RegionStats struct {
	Region       geo.Region
	Events       int
	MeanDuration time.Duration
	MaxDuration  time.Duration
}

// ByRegion computes per-region failure statistics.
func ByRegion(in Input) []RegionStats {
	var events [geo.NumRegions]int
	var total [geo.NumRegions]time.Duration
	var maxd [geo.NumRegions]time.Duration
	in.Dataset.Each(func(e *failure.Event) {
		r := e.Region
		if int(r) >= geo.NumRegions {
			return
		}
		events[r]++
		total[r] += e.Duration
		if e.Duration > maxd[r] {
			maxd[r] = e.Duration
		}
	})
	out := make([]RegionStats, 0, geo.NumRegions)
	for r := geo.Region(0); r < geo.NumRegions; r++ {
		rs := RegionStats{Region: r, Events: events[r], MaxDuration: maxd[r]}
		if events[r] > 0 {
			rs.MeanDuration = total[r] / time.Duration(events[r])
		}
		out = append(out, rs)
	}
	return out
}

// OpSuccessEstimate is the measured per-stage recovery-operation fix rate.
type OpSuccessEstimate struct {
	// Rates[i] is the fraction of stage-i executions that fixed the stall.
	Rates [3]float64
	// Executions[i] counts stage-i executions observed.
	Executions [3]int
}

// EstimateOpSuccess measures each recovery operation's effectiveness from
// the dataset's stall resolutions: stage i executed whenever OpsExecuted
// > i, and fixed the stall when ResolvedBy records it. The paper measured
// 75% for the first-stage cleanup the same way; the TIMP fit should use
// these measured rates rather than assumptions.
func EstimateOpSuccess(in Input) OpSuccessEstimate {
	var est OpSuccessEstimate
	var fixed [3]int
	in.Dataset.Each(func(e *failure.Event) {
		if e.Kind != failure.DataStall {
			return
		}
		for stage := 0; stage < 3 && stage < e.OpsExecuted; stage++ {
			est.Executions[stage]++
		}
		switch e.ResolvedBy {
		case android.ResolvedOp1:
			fixed[0]++
		case android.ResolvedOp2:
			fixed[1]++
		case android.ResolvedOp3:
			fixed[2]++
		}
	})
	for i := 0; i < 3; i++ {
		if est.Executions[i] > 0 {
			est.Rates[i] = float64(fixed[i]) / float64(est.Executions[i])
		}
	}
	return est
}
