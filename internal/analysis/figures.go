package analysis

import (
	"time"

	"repro/internal/failure"
	"repro/internal/geo"
	"repro/internal/stats"
	"repro/internal/telephony"
)

// StallAutoFix reproduces Figure 10: how quickly Data_Stall failures fix
// themselves without intervention.
type StallAutoFix struct {
	CDF *stats.ECDF // seconds
	// Under10 is the fraction self-fixed within 10 s (paper: 60%).
	Under10 float64
	// Under300 is the fraction under 300 s (paper: >80%).
	Under300 float64
	// FirstOpFixRate is the share of executed first-stage cleanups that
	// fixed the stall (paper: 75%).
	FirstOpFixRate float64
}

// Figure10 computes the stall self-recovery distribution from the probing
// component's AutoFixTime measurements.
func Figure10(in Input) StallAutoFix {
	return runOne(in.Dataset, newStallVisitor).figure10()
}

// BSRanking reproduces Figure 11: base stations ranked by experienced
// failures, with the fitted Zipf parameters (paper: a = 0.82, b = 17.12;
// median 1, mean 444, max 8,941,860).
type BSRanking struct {
	Counts []uint64 // descending
	Fit    stats.ZipfFit
	Median float64
	Mean   float64
	Max    uint64
	// TopUrbanShare is the fraction of the top-ranked BSes located in
	// crowded urban areas or transport hubs (the paper's root cause).
	TopUrbanShare float64
}

// Figure11 ranks BSes by failure count.
func Figure11(in Input, topN int) BSRanking {
	return runOne(in.Dataset, func() *bsVisitor { return newBSVisitor(passHint(in.Dataset)) }).figure11(topN)
}

// RATPrevalence reproduces Figure 14: the prevalence of cellular failures
// on BSes of each access technology, measured as failures per thousand
// connected hours on that RAT (a fleet of our size saturates the paper's
// raw per-BS fraction, so we report the dwell-normalized rate — the
// quantity the ordering claim is actually about: 3G networks face less
// resource contention and manifest fewer failures than 2G or 4G; 5G is
// worst).
type RATPrevalence struct {
	RAT        telephony.RAT
	Events     int64
	DwellHours float64
	// Prevalence is failures per 1000 connected hours.
	Prevalence float64
	// BSes is the census count of stations supporting the RAT.
	BSes int64
}

// Figure14 computes per-RAT normalized failure prevalence.
func Figure14(in Input) []RATPrevalence {
	return runOne(in.Dataset, newRATVisitor).figure14(in.Dwell, in.Network)
}

// LevelPrevalence reproduces Figures 15 and 16: normalized prevalence
// (prevalence divided by mean connected time, the paper's fairness
// correction for unequal dwell) per signal level.
type LevelPrevalence struct {
	Level telephony.SignalLevel
	// Raw is devices failing at this level / devices exposed to it.
	Raw float64
	// Normalized divides Raw by the mean dwell hours per exposed device.
	Normalized float64
	Exposed    int64
}

// Figure15 computes normalized prevalence per signal level across RATs.
func Figure15(in Input) [telephony.NumSignalLevels]LevelPrevalence {
	return runOne(in.Dataset, func() *deviceVisitor { return newDeviceVisitor(passHint(in.Dataset)) }).figure15(in.Dwell)
}

// Figure16 computes normalized prevalence per signal level for one RAT
// (the paper contrasts 4G and 5G).
func Figure16(in Input, rat telephony.RAT) [telephony.NumSignalLevels]LevelPrevalence {
	return runOne(in.Dataset, func() *deviceVisitor { return newDeviceVisitor(passHint(in.Dataset)) }).figure16(in.Dwell, rat)
}

// TransitionIncrease reproduces one panel of Figure 17: the increase of
// failure likelihood for RAT transitions from fromRAT level-i to toRAT
// level-j, relative to the mean transition failure rate.
type TransitionIncrease struct {
	FromRAT, ToRAT telephony.RAT
	// Increase[i][j] is rate(i→j) − meanRate; NaN-free (unobserved cells
	// are zero with Observed[i][j] false).
	Increase [telephony.NumSignalLevels][telephony.NumSignalLevels]float64
	Observed [telephony.NumSignalLevels][telephony.NumSignalLevels]bool
	MeanRate float64
}

// Figure17 computes the transition-failure increase panel for a RAT pair.
// It reads only the transition matrix, not the event stream, so it needs
// no engine pass.
func Figure17(in Input, fromRAT, toRAT telephony.RAT) TransitionIncrease {
	out := TransitionIncrease{FromRAT: fromRAT, ToRAT: toRAT}
	var exp, fails int64
	for i := 0; i < telephony.NumSignalLevels; i++ {
		for j := 0; j < telephony.NumSignalLevels; j++ {
			exp += in.Transitions.Exposure[fromRAT][i][toRAT][j]
			fails += in.Transitions.Failures[fromRAT][i][toRAT][j]
		}
	}
	if exp > 0 {
		out.MeanRate = float64(fails) / float64(exp)
	}
	for i := 0; i < telephony.NumSignalLevels; i++ {
		for j := 0; j < telephony.NumSignalLevels; j++ {
			rate, ok := in.Transitions.FailureRate(fromRAT, telephony.SignalLevel(i), toRAT, telephony.SignalLevel(j))
			if !ok {
				continue
			}
			out.Observed[i][j] = true
			out.Increase[i][j] = rate - out.MeanRate
		}
	}
	return out
}

// Figure17Pairs returns the six RAT pairs of Figure 17a-f.
func Figure17Pairs() [6][2]telephony.RAT {
	return [6][2]telephony.RAT{
		{telephony.RAT2G, telephony.RAT3G},
		{telephony.RAT2G, telephony.RAT4G},
		{telephony.RAT2G, telephony.RAT5G},
		{telephony.RAT3G, telephony.RAT4G},
		{telephony.RAT3G, telephony.RAT5G},
		{telephony.RAT4G, telephony.RAT5G},
	}
}

// DurationByKind splits duration statistics per failure kind, used by the
// enhancement evaluation.
func DurationByKind(in Input) map[failure.Kind]DurationStats {
	return runOne(in.Dataset, func() *kindDurationVisitor { return newKindDurationVisitor(passHint(in.Dataset)) }).durationByKind()
}

// RegionStats summarizes failures per deployment region (§3.1/§3.3: top
// failing BSes sit in crowded urban areas; the longest outages come from
// long-neglected remote infrastructure).
type RegionStats struct {
	Region       geo.Region
	Events       int
	MeanDuration time.Duration
	MaxDuration  time.Duration
}

// ByRegion computes per-region failure statistics.
func ByRegion(in Input) []RegionStats {
	return runOne(in.Dataset, newRegionVisitor).byRegion()
}

// OpSuccessEstimate is the measured per-stage recovery-operation fix rate.
type OpSuccessEstimate struct {
	// Rates[i] is the fraction of stage-i executions that fixed the stall.
	Rates [3]float64
	// Executions[i] counts stage-i executions observed.
	Executions [3]int
}

// EstimateOpSuccess measures each recovery operation's effectiveness from
// the dataset's stall resolutions: stage i executed whenever OpsExecuted
// > i, and fixed the stall when ResolvedBy records it. The paper measured
// 75% for the first-stage cleanup the same way; the TIMP fit should use
// these measured rates rather than assumptions.
func EstimateOpSuccess(in Input) OpSuccessEstimate {
	return runOne(in.Dataset, newStallVisitor).opSuccess()
}
