package analysis

import (
	"errors"
	"sync"
	"time"

	"repro/internal/failure"
	"repro/internal/fleet"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// LiveInput builds a zero-value-safe figure context around a live dataset
// for deployments where the run's population/dwell/transition context is
// not yet known (denominator-based figures read as zero until SetContext
// or Sync installs the real context).
func LiveInput(ds *trace.Dataset) Input {
	return Input{
		Dataset:     ds,
		Transitions: &fleet.TransitionMatrix{},
		Dwell:       &fleet.DwellStats{},
		Network:     &simnet.Network{},
	}
}

// StreamingOptions configures the live analysis engine.
type StreamingOptions struct {
	// WindowBuckets is the number of sliding-window buckets (default 60).
	WindowBuckets int
	// WindowBucket is the virtual-time width of one bucket (default 1h).
	WindowBucket time.Duration
	// QueueChunks bounds the ingest hand-off queue, in chunks. When the
	// queue is full Ingest sheds the chunk instead of blocking (default
	// 1024); a later Sync rebuilds from the authoritative dataset.
	QueueChunks int
	// Hint pre-sizes the cumulative accumulators (expected event count).
	Hint int
}

func (o StreamingOptions) withDefaults() StreamingOptions {
	if o.WindowBuckets <= 0 {
		o.WindowBuckets = 60
	}
	if o.WindowBucket <= 0 {
		o.WindowBucket = time.Hour
	}
	if o.QueueChunks <= 0 {
		o.QueueChunks = 1024
	}
	if o.Hint <= 0 {
		o.Hint = 1 << 12
	}
	return o
}

// StreamingStatus reports the engine's ingest accounting.
type StreamingStatus struct {
	Events     int64 `json:"events"`
	Chunks     int64 `json:"chunks"`
	Shed       int64 `json:"shed"`
	Resyncs    int64 `json:"resyncs"`
	QueueDepth int   `json:"queue_depth"`
	LateDrops  int64 `json:"window_late_drops"`
}

// Streaming feeds the batch engine's visitor accumulators directly from
// the collector's admit path, so figures and claims are queryable while
// the fleet is still uploading.
//
// The contract has two halves:
//
//   - The ingest hot path never blocks on analysis. Ingest appends the
//     chunk to a bounded queue under a mutex held for O(1) work; a
//     dedicated applier goroutine drains the queue into the accumulators.
//     If the queue is full the chunk is shed (counted, never silently) —
//     the collector's dataset remains authoritative, and Sync rebuilds
//     the accumulators from it, so correctness degrades to "rebuild
//     later", never to "block the wire" or "wrong forever".
//
//   - At end of run, after the collector has drained and Sync has been
//     given the final context, the streaming state renders byte-identical
//     figures/claims JSON to a batch Pass over the final dataset. This
//     holds because every figure extraction is order-independent over the
//     event multiset (ECDFs sort copies, per-device state is keyed by
//     device ID, rankings break ties on stable keys), and the dedup gate
//     guarantees the admitted multiset equals the stored multiset.
type Streaming struct {
	opts StreamingOptions

	qmu       sync.Mutex
	queue     [][]failure.Event
	shedQ     int64 // chunks shed since the last resync
	shedTotal int64 // chunks shed over the engine's lifetime
	closed    bool
	wake      chan struct{}
	idle      *sync.Cond // broadcast when the applier goes idle
	busy      bool       // applier is mid-drain

	smu     sync.RWMutex
	in      Input
	cum     *passVisitor
	win     *windowAccum
	events  int64
	chunks  int64
	resyncs int64

	done chan struct{}
}

// NewStreaming builds a live engine with the given figure context (the
// context's Population/Dwell/Transitions/Network feed denominator-based
// figures; its Dataset is the authoritative store Sync rebuilds from).
// Call Close when done to stop the applier goroutine.
func NewStreaming(in Input, opts StreamingOptions) *Streaming {
	opts = opts.withDefaults()
	s := &Streaming{
		opts: opts,
		in:   in,
		cum:  newPassVisitor(opts.Hint),
		win:  newWindowAccum(opts.WindowBuckets, opts.WindowBucket),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	s.idle = sync.NewCond(&s.qmu)
	go s.apply()
	return s
}

// Ingest hands one chunk of admitted events to the engine. It never
// blocks on analysis: the chunk is queued under a briefly-held mutex, and
// shed (counted) if the queue is full. The caller must not retain or
// mutate the slice afterwards. Safe for concurrent use.
func (s *Streaming) Ingest(events []failure.Event) {
	if len(events) == 0 {
		return
	}
	s.qmu.Lock()
	if s.closed || len(s.queue) >= s.opts.QueueChunks {
		// Shed accounting stays under qmu: the shed path must not touch
		// the state lock, or a long render could block the ingest caller.
		dropped := !s.closed
		if dropped {
			s.shedQ++
			s.shedTotal++
		}
		s.qmu.Unlock()
		if dropped {
			mLiveShed.Inc()
		}
		return
	}
	s.queue = append(s.queue, events)
	depth := len(s.queue)
	s.qmu.Unlock()
	mLiveQueueDepth.Set(float64(depth))
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// apply is the engine's only writer of accumulator state outside Sync.
func (s *Streaming) apply() {
	defer close(s.done)
	for {
		s.qmu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.busy = false
			s.idle.Broadcast()
			s.qmu.Unlock()
			<-s.wake
			s.qmu.Lock()
		}
		if len(s.queue) == 0 && s.closed {
			s.busy = false
			s.idle.Broadcast()
			s.qmu.Unlock()
			return
		}
		batch := s.queue
		s.queue = nil
		s.busy = true
		s.qmu.Unlock()
		mLiveQueueDepth.Set(0)

		for _, chunk := range batch {
			s.smu.Lock()
			lateBefore := s.win.late
			for i := range chunk {
				s.cum.Visit(&chunk[i])
				s.win.Add(&chunk[i])
			}
			s.events += int64(len(chunk))
			s.chunks++
			lateDelta := s.win.late - lateBefore
			s.smu.Unlock()
			mLiveEvents.Add(int64(len(chunk)))
			mLiveChunks.Inc()
			if lateDelta > 0 {
				mLiveLateDrops.Add(lateDelta)
			}
		}
	}
}

// WaitIdle blocks until every queued chunk has been applied (or the
// timeout elapses). It does not prevent new chunks from arriving — call
// it after the producer has stopped (e.g. post collector drain).
func (s *Streaming) WaitIdle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		// Wake the cond wait on timeout; Broadcast is harmless if the
		// wait already finished.
		select {
		case <-time.After(timeout):
			s.idle.Broadcast()
		case <-stop:
		}
	}()
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for len(s.queue) > 0 || s.busy {
		if time.Now().After(deadline) {
			return errors.New("analysis: streaming engine still busy after " + timeout.String())
		}
		s.idle.Wait()
	}
	return nil
}

// Close stops the applier goroutine after draining queued chunks.
func (s *Streaming) Close() {
	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	s.qmu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	<-s.done
}

// SetContext replaces the figure context (population, dwell, transitions,
// network, authoritative dataset). Call it when the run's final context
// is known, before rendering end-of-run figures.
func (s *Streaming) SetContext(in Input) {
	s.smu.Lock()
	s.in = in
	s.smu.Unlock()
}

// Sync installs the final context and, if any chunk was shed since the
// last rebuild, reconstructs the cumulative and window accumulators from
// the authoritative dataset in one sequential scan. Call after WaitIdle.
// It returns whether a rebuild happened.
func (s *Streaming) Sync(in Input) bool {
	s.qmu.Lock()
	shed := s.shedQ
	s.shedQ = 0
	s.qmu.Unlock()

	s.smu.Lock()
	defer s.smu.Unlock()
	s.in = in
	if shed == 0 {
		return false
	}
	cum := newPassVisitor(passHint(in.Dataset))
	win := newWindowAccum(s.opts.WindowBuckets, s.opts.WindowBucket)
	var events int64
	in.Dataset.Each(func(e *failure.Event) {
		cum.Visit(e)
		win.Add(e)
		events++
	})
	s.cum, s.win, s.events = cum, win, events
	s.resyncs++
	mLiveResyncs.Inc()
	return true
}

// pass snapshots the engine as a Pass under the read lock. Extraction
// methods never mutate visitor state (finishers copy), so concurrent
// readers are safe; the applier blocks for the duration of a render.
func (s *Streaming) pass() (*Pass, func()) {
	s.smu.RLock()
	return &Pass{in: s.in, passVisitor: s.cum}, s.smu.RUnlock
}

// FiguresJSON renders the canonical figures document from live state.
func (s *Streaming) FiguresJSON(catalogue []ModelCatalogueEntry) ([]byte, error) {
	p, release := s.pass()
	defer release()
	mLiveQueries.Inc()
	return p.FiguresJSON(catalogue)
}

// ClaimsJSON renders the claims scorecard from live state.
func (s *Streaming) ClaimsJSON() ([]byte, error) {
	p, release := s.pass()
	defer release()
	mLiveQueries.Inc()
	return p.ClaimsJSON()
}

// Window returns the sliding-window summary.
func (s *Streaming) Window() WindowSnapshot {
	s.smu.RLock()
	defer s.smu.RUnlock()
	mLiveQueries.Inc()
	return s.win.snapshot()
}

// Status reports ingest accounting.
func (s *Streaming) Status() StreamingStatus {
	s.smu.RLock()
	st := StreamingStatus{
		Events:    s.events,
		Chunks:    s.chunks,
		Resyncs:   s.resyncs,
		LateDrops: s.win.late,
	}
	s.smu.RUnlock()
	s.qmu.Lock()
	st.Shed = s.shedTotal
	st.QueueDepth = len(s.queue)
	s.qmu.Unlock()
	return st
}
