package analysis

import (
	"fmt"
	"strings"

	"repro/internal/failure"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// Claim is one falsifiable statement from the paper that the reproduction
// must satisfy in shape.
type Claim struct {
	ID    string
	Text  string
	check func(src source) (bool, string)
}

// ClaimResult is a checked claim.
type ClaimResult struct {
	ID     string
	Text   string
	Pass   bool
	Detail string
}

// Claims returns the paper's checkable findings, in paper order.
func Claims() []Claim {
	return []Claim{
		{"3.1-prevalence", "cellular failures are prevalent: ~23% of devices see at least one (0.15%–45% per model)",
			func(src source) (bool, string) {
				f := src.Figure3()
				p := 1 - f.ZeroShare
				return p > 0.14 && p < 0.32, fmt.Sprintf("prevalence %.1f%%", p*100)
			}},
		{"3.1-frequency", "an average of ~33 failures occur per device over the window",
			func(src source) (bool, string) {
				f := src.Figure3()
				return f.Mean > 15 && f.Mean < 70, fmt.Sprintf("%.1f failures/phone", f.Mean)
			}},
		{"3.1-kind-mix", "16 setup / 14 stall / 3 OOS per phone on average (setup > stall > OOS)",
			func(src source) (bool, string) {
				f := src.Figure3()
				s, st, o := f.MeanPerKind[failure.DataSetupError], f.MeanPerKind[failure.DataStall], f.MeanPerKind[failure.OutOfService]
				return s > st && st > o, fmt.Sprintf("%.1f / %.1f / %.1f", s, st, o)
			}},
		{"3.1-oos-rare", "95% of phones never see an Out_of_Service event",
			func(src source) (bool, string) {
				f := src.Figure3()
				return f.OOSFreeShare > 0.90, fmt.Sprintf("%.1f%% OOS-free", f.OOSFreeShare*100)
			}},
		{"3.1-duration-skew", "durations are highly skewed: most failures short, multi-hour tail",
			func(src source) (bool, string) {
				d := src.Figure4()
				return d.Under30 > 0.6 && d.Max > 100*d.Median,
					fmt.Sprintf("%.1f%% under 30s, max %v vs median %v", d.Under30*100, d.Max, d.Median)
			}},
		{"3.1-stall-dominates", "Data_Stall dominates total failure duration",
			func(src source) (bool, string) {
				d := src.Figure4()
				return d.StallShareOfDuration > 0.5, fmt.Sprintf("stall share %.1f%%", d.StallShareOfDuration*100)
			}},
		{"3.2-5g-worse", "5G phones fail more prevalently and frequently than non-5G phones",
			func(src source) (bool, string) {
				f, n := src.By5G()
				return f.Prevalence > n.Prevalence && f.Frequency > n.Frequency,
					fmt.Sprintf("5G %.1f%%/%.1f vs non-5G %.1f%%/%.1f", f.Prevalence*100, f.Frequency, n.Prevalence*100, n.Frequency)
			}},
		{"3.2-android10-worse", "Android 10 phones fail more than Android 9 phones",
			func(src source) (bool, string) {
				a9, a10 := src.ByAndroidVersion()
				return a10.Prevalence > a9.Prevalence && a10.Frequency > a9.Frequency,
					fmt.Sprintf("A10 %.1f%%/%.1f vs A9 %.1f%%/%.1f", a10.Prevalence*100, a10.Frequency, a9.Prevalence*100, a9.Frequency)
			}},
		{"3.2-table2-top", "GPRS_REGISTRATION_FAIL is the most common setup-error code (~12.8%)",
			func(src source) (bool, string) {
				rows := src.Table2(3)
				for _, r := range rows {
					if r.Cause == telephony.CauseGPRSRegistrationFail {
						return r.Share > 0.08, fmt.Sprintf("share %.1f%% (rank within top 3)", r.Share*100)
					}
				}
				return false, "not in the top 3"
			}},
		{"3.2-stall-autofix", "~60% of Data_Stall failures fix themselves within 10 seconds",
			func(src source) (bool, string) {
				f := src.Figure10()
				return f.Under10 > 0.5 && f.Under10 < 0.72, fmt.Sprintf("%.1f%% within 10s", f.Under10*100)
			}},
		{"3.2-op1-effective", "the first-stage cleanup fixes ~75% of stalls once executed",
			func(src source) (bool, string) {
				f := src.Figure10()
				return f.FirstOpFixRate > 0.6 && f.FirstOpFixRate < 0.9, fmt.Sprintf("%.1f%%", f.FirstOpFixRate*100)
			}},
		{"3.3-zipf", "failures per BS follow a Zipf-like skewed distribution",
			func(src source) (bool, string) {
				r := src.Figure11(100)
				return r.Fit.A > 0.3 && r.Fit.R2 > 0.5 && float64(r.Max) > 10*r.Mean,
					fmt.Sprintf("a=%.2f R²=%.2f max/mean=%.0f", r.Fit.A, r.Fit.R2, float64(r.Max)/r.Mean)
			}},
		{"3.3-isp-order", "ISP prevalence orders B > A > C (27.1 / 20.1 / 14.7 in the paper)",
			func(src source) (bool, string) {
				g := src.ByISP()
				a, b, c := g[simnet.ISPA], g[simnet.ISPB], g[simnet.ISPC]
				return b.Prevalence > a.Prevalence && a.Prevalence > c.Prevalence,
					fmt.Sprintf("B %.1f%% A %.1f%% C %.1f%%", b.Prevalence*100, a.Prevalence*100, c.Prevalence*100)
			}},
		{"3.3-idle-3g", "3G BSes see lower failure prevalence than 2G and 4G; 5G highest",
			func(src source) (bool, string) {
				m := map[telephony.RAT]float64{}
				for _, r := range src.Figure14() {
					m[r.RAT] = r.Prevalence
				}
				ok := m[telephony.RAT3G] < m[telephony.RAT2G] &&
					m[telephony.RAT3G] < m[telephony.RAT4G] &&
					m[telephony.RAT5G] > m[telephony.RAT4G]
				return ok, fmt.Sprintf("2G %.1f 3G %.1f 4G %.1f 5G %.1f /1000h",
					m[telephony.RAT2G], m[telephony.RAT3G], m[telephony.RAT4G], m[telephony.RAT5G])
			}},
		{"3.3-level5-anomaly", "normalized prevalence falls from level 0 to 4, then jumps at level 5",
			func(src source) (bool, string) {
				lv := src.Figure15()
				for l := 1; l <= 4; l++ {
					if lv[l].Normalized >= lv[l-1].Normalized {
						return false, fmt.Sprintf("not decreasing at level %d", l)
					}
				}
				for l := 1; l <= 4; l++ {
					if lv[5].Normalized <= lv[l].Normalized {
						return false, fmt.Sprintf("level-5 below level-%d", l)
					}
				}
				return true, fmt.Sprintf("level-5 %.4f vs level-4 %.4f", lv[5].Normalized, lv[4].Normalized)
			}},
		{"4.2-transition-cliff", "4G→5G transitions into level-0 raise failure likelihood drastically",
			func(src source) (bool, string) {
				p := Figure17(src.input(), telephony.RAT4G, telephony.RAT5G)
				var maxJ0, maxRest float64
				for i := 0; i < telephony.NumSignalLevels; i++ {
					if p.Observed[i][0] && p.Increase[i][0] > maxJ0 {
						maxJ0 = p.Increase[i][0]
					}
					for j := 1; j < telephony.NumSignalLevels; j++ {
						if p.Observed[i][j] && p.Increase[i][j] > maxRest {
							maxRest = p.Increase[i][j]
						}
					}
				}
				return maxJ0 > maxRest, fmt.Sprintf("level-0 column max %+.3f vs others %+.3f", maxJ0, maxRest)
			}},
	}
}

// CheckClaims evaluates every claim against the dataset with one fused
// engine pass.
func CheckClaims(in Input) []ClaimResult {
	return checkClaimsFrom(NewPass(in))
}

func checkClaimsFrom(src source) []ClaimResult {
	claims := Claims()
	out := make([]ClaimResult, 0, len(claims))
	for _, c := range claims {
		ok, detail := c.check(src)
		out = append(out, ClaimResult{ID: c.ID, Text: c.Text, Pass: ok, Detail: detail})
	}
	return out
}

// RenderClaims prints the scorecard.
func RenderClaims(rs []ClaimResult) string {
	var b strings.Builder
	pass := 0
	for _, r := range rs {
		mark := "FAIL"
		if r.Pass {
			mark = "PASS"
			pass++
		}
		fmt.Fprintf(&b, "[%s] %-22s %s\n%24s measured: %s\n", mark, r.ID, r.Text, "", r.Detail)
	}
	fmt.Fprintf(&b, "%d/%d claims reproduced\n", pass, len(rs))
	return b.String()
}
