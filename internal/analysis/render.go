package analysis

import (
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/telephony"
)

// RenderTable1 prints the reproduced Table 1 with paper-vs-measured columns.
func RenderTable1(rows []ModelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-4s %-8s %8s | %11s %11s | %11s %11s\n",
		"Model", "5G", "Android", "Devices", "Prev(paper)", "Prev(ours)", "Freq(paper)", "Freq(ours)")
	for _, r := range rows {
		g := "-"
		if r.FiveG {
			g = "YES"
		}
		fmt.Fprintf(&b, "%-6d %-4s %-8d %8d | %10.1f%% %10.1f%% | %11.1f %11.1f\n",
			r.ModelID, g, r.Android, r.Devices,
			r.PaperPrevalence*100, r.Prevalence*100, r.PaperFrequency, r.Frequency)
	}
	return b.String()
}

// RenderTable2 prints the reproduced Table 2.
func RenderTable2(rows []CauseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12s %12s  %s\n", "Error Code", "Share(paper)", "Share(ours)", "Description")
	for _, r := range rows {
		paper := "-"
		if r.PaperShare > 0 {
			paper = fmt.Sprintf("%.1f%%", r.PaperShare*100)
		}
		fmt.Fprintf(&b, "%-28s %12s %11.1f%%  %s\n", r.Name, paper, r.Share*100, r.Description)
	}
	return b.String()
}

// RenderCDF prints an ASCII CDF with n sample points.
func RenderCDF(title, unit string, cdf *stats.ECDF, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (N=%d)\n", title, cdf.N())
	pts := cdf.Points(n)
	const width = 50
	for _, p := range pts {
		bars := int(p[1] * width)
		fmt.Fprintf(&b, "%10.1f %-4s |%s %5.1f%%\n", p[0], unit, strings.Repeat("#", bars), p[1]*100)
	}
	return b.String()
}

// RenderGroups prints prevalence/frequency bars for device groups.
func RenderGroups(title string, groups []GroupStats) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	maxPrev, maxFreq := 0.0, 0.0
	for _, g := range groups {
		if g.Prevalence > maxPrev {
			maxPrev = g.Prevalence
		}
		if g.Frequency > maxFreq {
			maxFreq = g.Frequency
		}
	}
	for _, g := range groups {
		pb, fb := 0, 0
		if maxPrev > 0 {
			pb = int(g.Prevalence / maxPrev * 30)
		}
		if maxFreq > 0 {
			fb = int(g.Frequency / maxFreq * 30)
		}
		fmt.Fprintf(&b, "  %-22s prev %5.1f%% |%-30s| freq %6.1f |%-30s|\n",
			g.Name, g.Prevalence*100, strings.Repeat("#", pb), g.Frequency, strings.Repeat("#", fb))
	}
	return b.String()
}

// RenderLevels prints the normalized prevalence per signal level
// (Figures 15/16).
func RenderLevels(title string, levels [telephony.NumSignalLevels]LevelPrevalence) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	maxN := 0.0
	for _, l := range levels {
		if l.Normalized > maxN {
			maxN = l.Normalized
		}
	}
	for _, l := range levels {
		bars := 0
		if maxN > 0 {
			bars = int(l.Normalized / maxN * 40)
		}
		fmt.Fprintf(&b, "  level-%d |%-40s| %.4f (raw %5.1f%%, exposed %d)\n",
			l.Level, strings.Repeat("#", bars), l.Normalized, l.Raw*100, l.Exposed)
	}
	return b.String()
}

// RenderHeatmap prints one Figure 17 panel: rows are from-levels, columns
// to-levels, cells show the failure-rate increase; '.' marks unobserved
// cells.
func RenderHeatmap(p TransitionIncrease) string {
	var b strings.Builder
	fmt.Fprintf(&b, "RAT transition %v level-i -> %v level-j (mean rate %.3f)\n", p.FromRAT, p.ToRAT, p.MeanRate)
	fmt.Fprintf(&b, "      ")
	for j := 0; j < telephony.NumSignalLevels; j++ {
		fmt.Fprintf(&b, "   j=%d  ", j)
	}
	fmt.Fprintln(&b)
	for i := 0; i < telephony.NumSignalLevels; i++ {
		fmt.Fprintf(&b, "  i=%d ", i)
		for j := 0; j < telephony.NumSignalLevels; j++ {
			if !p.Observed[i][j] {
				fmt.Fprintf(&b, "%7s ", ".")
				continue
			}
			fmt.Fprintf(&b, "%+7.3f ", p.Increase[i][j])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RenderRanking prints the Figure 11 summary.
func RenderRanking(r BSRanking) string {
	return fmt.Sprintf(
		"BS ranking by failures: %d BSes, Zipf fit a=%.2f b=%.2f (R²=%.2f), median=%.0f mean=%.1f max=%d, top urban/hub share=%.0f%%\n",
		len(r.Counts), r.Fit.A, r.Fit.B, r.Fit.R2, r.Median, r.Mean, r.Max, r.TopUrbanShare*100)
}

// RenderEnhancement prints the §4.3 comparison with paper targets.
func RenderEnhancement(rep EnhancementReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Enhancement evaluation (patched vs vanilla):\n")
	fmt.Fprintf(&b, "  5G prevalence change: %+6.1f%%   (paper: -10%%)\n", rep.FiveGPrevalenceChange*100)
	fmt.Fprintf(&b, "  5G frequency  change: %+6.1f%%   (paper: -40.3%%)\n", rep.FiveGFrequencyChange*100)
	for _, kd := range rep.ByKind {
		fmt.Fprintf(&b, "    %-18s prev %+6.1f%%, freq %+6.1f%%\n", kd.Kind, kd.PrevalenceChange*100, kd.FrequencyChange*100)
	}
	fmt.Fprintf(&b, "  mean Data_Stall duration change: %+6.1f%%   (paper: -38%%)\n", rep.StallDurationChange*100)
	fmt.Fprintf(&b, "  total failure duration change:   %+6.1f%%   (paper: -36%%)\n", rep.TotalDurationChange*100)
	fmt.Fprintf(&b, "  median failure duration: %v -> %v   (paper: 6s -> 2s)\n", rep.MedianDurationBefore, rep.MedianDurationAfter)
	fmt.Fprintf(&b, "  Data_Stall duration CDF shift (KS distance): %.3f\n", rep.StallKS)
	return b.String()
}

// RenderRegions prints the per-region failure landscape.
func RenderRegions(rows []RegionStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %14s %14s\n", "Region", "Events", "MeanDuration", "MaxDuration")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %13.1fs %14s\n",
			r.Region, r.Events, r.MeanDuration.Seconds(), r.MaxDuration.Round(1e9))
	}
	return b.String()
}
