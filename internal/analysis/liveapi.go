package analysis

import (
	"encoding/json"
	"net/http"
)

// LiveAPI serves the streaming engine's figures, claims, sliding-window
// summary and ingest status over HTTP. Figure and claim responses are the
// *raw bytes* of the canonical renderer — the same bytes `cellanalyze`
// writes in batch mode — so the streaming=batch contract is observable
// with curl + cmp, not just inside tests.
//
//	GET /api/live/figures — canonical figures document (live state)
//	GET /api/live/claims  — claims scorecard (live state)
//	GET /api/live/window  — sliding-window summary
//	GET /api/live/status  — ingest accounting (events, shed, resyncs)
type LiveAPI struct {
	s *Streaming
	// Catalogue feeds Table 1 and the hardware correlation; the cmd layer
	// passes it in because analysis cannot import the device catalogue.
	catalogue []ModelCatalogueEntry
}

// NewLiveAPI wraps a streaming engine.
func NewLiveAPI(s *Streaming, catalogue []ModelCatalogueEntry) *LiveAPI {
	return &LiveAPI{s: s, catalogue: catalogue}
}

// Routes registers the live endpoints on mux.
func (a *LiveAPI) Routes(mux *http.ServeMux) {
	mux.HandleFunc("/api/live/figures", a.handleFigures)
	mux.HandleFunc("/api/live/claims", a.handleClaims)
	mux.HandleFunc("/api/live/window", a.handleWindow)
	mux.HandleFunc("/api/live/status", a.handleStatus)
}

func (a *LiveAPI) writeRendered(w http.ResponseWriter, b []byte, err error) {
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (a *LiveAPI) handleFigures(w http.ResponseWriter, r *http.Request) {
	b, err := a.s.FiguresJSON(a.catalogue)
	a.writeRendered(w, b, err)
}

func (a *LiveAPI) handleClaims(w http.ResponseWriter, r *http.Request) {
	b, err := a.s.ClaimsJSON()
	a.writeRendered(w, b, err)
}

func (a *LiveAPI) handleWindow(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(a.s.Window())
}

func (a *LiveAPI) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(a.s.Status())
}
