package analysis

import (
	"sort"
	"time"

	"repro/internal/android"
	"repro/internal/failure"
	"repro/internal/geo"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telephony"
)

// legacySource is the pre-engine implementation of the figure-extraction
// surface: every method runs its own sequential Dataset.Each scan, exactly
// as the package did before the single-pass engine. It is kept as the
// oracle the fused Pass must match byte for byte. The only deliberate
// differences from the historical code are the deterministic tie-breaks in
// Table2 and Figure11, which were added to both paths at the same time.
type legacySource struct {
	in Input
}

func (s legacySource) input() Input { return s.in }

func (s legacySource) scan() map[uint64]*perDevice {
	devs := make(map[uint64]*perDevice)
	s.in.Dataset.Each(func(e *failure.Event) {
		d := devs[e.DeviceID]
		if d == nil {
			d = &perDevice{modelID: e.ModelID, fiveG: e.FiveGCapable, android: e.AndroidVersion, isp: e.ISP}
			devs[e.DeviceID] = d
		}
		d.total++
		if int(e.Kind) < len(d.byKind) {
			d.byKind[e.Kind]++
		}
	})
	return devs
}

func (s legacySource) Table1(catalogue []ModelCatalogueEntry) []ModelRow {
	failing := make(map[int]int)
	events := make(map[int]int)
	for _, d := range s.scan() {
		failing[d.modelID]++
		events[d.modelID] += d.total
	}
	rows := make([]ModelRow, 0, len(catalogue))
	for _, m := range catalogue {
		devices := s.in.Population.ByModel[m.ID]
		row := ModelRow{
			ModelID: m.ID, FiveG: m.FiveG, Android: m.Android,
			Devices:         devices,
			PaperPrevalence: m.Prevalence,
			PaperFrequency:  m.Frequency,
		}
		if devices > 0 {
			row.Prevalence = float64(failing[m.ID]) / float64(devices)
			row.Frequency = float64(events[m.ID]) / float64(devices)
		}
		rows = append(rows, row)
	}
	return rows
}

func (s legacySource) Table2(topN int) []CauseRow {
	counts := map[telephony.FailCause]int{}
	total := 0
	s.in.Dataset.Each(func(e *failure.Event) {
		if e.Kind == failure.DataSetupError {
			counts[e.Cause]++
			total++
		}
	})
	rows := make([]CauseRow, 0, len(counts))
	for cause, n := range counts {
		info := telephony.Info(cause)
		rows = append(rows, CauseRow{
			Cause:       cause,
			Name:        info.Name,
			Description: info.Description,
			Share:       float64(n) / float64(max(total, 1)),
			PaperShare:  info.Table2Share / 100,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Share != rows[j].Share {
			return rows[i].Share > rows[j].Share
		}
		return rows[i].Cause < rows[j].Cause
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

func (s legacySource) Figure3() FailuresPerPhone {
	devs := s.scan()
	total := s.in.Population.Total
	out := FailuresPerPhone{MeanPerKind: map[failure.Kind]float64{}}
	counts := make([]float64, 0, total)
	oosDevices := 0
	var sum float64
	kindSums := map[failure.Kind]float64{}
	for _, d := range devs {
		c := float64(d.total)
		counts = append(counts, c)
		sum += c
		if c > out.Max {
			out.Max = c
		}
		for k, n := range d.byKind {
			kindSums[failure.Kind(k)] += float64(n)
		}
		if d.byKind[failure.OutOfService] > 0 {
			oosDevices++
		}
	}
	for i := len(devs); i < total; i++ {
		counts = append(counts, 0)
	}
	out.CDF = stats.NewECDF(counts)
	if total > 0 {
		out.Mean = sum / float64(total)
		out.ZeroShare = float64(total-len(devs)) / float64(total)
		out.OOSFreeShare = float64(total-oosDevices) / float64(total)
		for k, ks := range kindSums {
			out.MeanPerKind[k] = ks / float64(total)
		}
	}
	return out
}

func (s legacySource) Figure4() DurationStats {
	var durs []float64
	var total, stall time.Duration
	var maxDur time.Duration
	s.in.Dataset.Each(func(e *failure.Event) {
		durs = append(durs, e.Duration.Seconds())
		total += e.Duration
		if e.Kind == failure.DataStall {
			stall += e.Duration
		}
		if e.Duration > maxDur {
			maxDur = e.Duration
		}
	})
	out := DurationStats{CDF: stats.NewECDF(durs), Max: maxDur}
	if len(durs) > 0 {
		out.Mean = time.Duration(out.CDF.Mean() * float64(time.Second))
		out.Median = time.Duration(out.CDF.Quantile(0.5) * float64(time.Second))
		out.Under30 = out.CDF.P(30)
	}
	if total > 0 {
		out.StallShareOfDuration = float64(stall) / float64(total)
	}
	return out
}

func (s legacySource) By5G() (fiveG, non5G GroupStats) {
	devs := s.scan()
	var f5, e5, f10, e10 int
	for _, d := range devs {
		switch {
		case d.fiveG:
			f5++
			e5 += d.total
		case d.android == 10:
			f10++
			e10 += d.total
		}
	}
	return makeGroup("5G", s.in.Population.FiveG, f5, e5),
		makeGroup("non-5G (Android 10)", s.in.Population.Android10No5G, f10, e10)
}

func (s legacySource) ByAndroidVersion() (android9, android10 GroupStats) {
	devs := s.scan()
	var f9, e9, f10, e10 int
	for _, d := range devs {
		switch {
		case d.android == 9:
			f9++
			e9 += d.total
		case !d.fiveG:
			f10++
			e10 += d.total
		}
	}
	return makeGroup("Android 9", s.in.Population.Android9, f9, e9),
		makeGroup("Android 10 (non-5G)", s.in.Population.Android10No5G, f10, e10)
}

func (s legacySource) ByISP() [simnet.NumISPs]GroupStats {
	devs := s.scan()
	var failing, events [simnet.NumISPs]int
	for _, d := range devs {
		failing[d.isp]++
		events[d.isp] += d.total
	}
	var out [simnet.NumISPs]GroupStats
	for i := range out {
		id := simnet.ISPID(i)
		out[i] = makeGroup(id.String(), s.in.Population.ByISP[i], failing[i], events[i])
	}
	return out
}

func (s legacySource) Figure10() StallAutoFix {
	var xs []float64
	var op1Exec, op1Fix int
	s.in.Dataset.Each(func(e *failure.Event) {
		if e.Kind != failure.DataStall {
			return
		}
		if e.AutoFixTime > 0 {
			xs = append(xs, e.AutoFixTime.Seconds())
		}
		if e.OpsExecuted >= 1 {
			op1Exec++
			if e.ResolvedBy == android.ResolvedOp1 {
				op1Fix++
			}
		}
	})
	out := StallAutoFix{CDF: stats.NewECDF(xs)}
	if len(xs) > 0 {
		out.Under10 = out.CDF.P(10)
		out.Under300 = out.CDF.P(300)
	}
	if op1Exec > 0 {
		out.FirstOpFixRate = float64(op1Fix) / float64(op1Exec)
	}
	return out
}

func (s legacySource) Figure11(topN int) BSRanking {
	counts := map[uint64]uint64{}
	urban := map[uint64]bool{}
	s.in.Dataset.Each(func(e *failure.Event) {
		id := e.Cell.GlobalID()
		counts[id]++
		if e.Region == geo.Urban || e.Region == geo.TransportHub {
			urban[id] = true
		}
	})
	type kv struct {
		id uint64
		n  uint64
	}
	list := make([]kv, 0, len(counts))
	for id, n := range counts {
		list = append(list, kv{id, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].id < list[j].id
	})

	out := BSRanking{}
	var sum uint64
	xs := make([]float64, len(list))
	for i, e := range list {
		out.Counts = append(out.Counts, e.n)
		sum += e.n
		xs[i] = float64(e.n)
		if e.n > out.Max {
			out.Max = e.n
		}
	}
	if len(list) > 0 {
		out.Mean = float64(sum) / float64(len(list))
		ecdf := stats.NewECDF(xs)
		out.Median = ecdf.Quantile(0.5)
		if fit, err := stats.FitZipf(out.Counts); err == nil {
			out.Fit = fit
		}
		if topN > len(list) {
			topN = len(list)
		}
		urbanTop := 0
		for _, e := range list[:topN] {
			if urban[e.id] {
				urbanTop++
			}
		}
		if topN > 0 {
			out.TopUrbanShare = float64(urbanTop) / float64(topN)
		}
	}
	return out
}

func (s legacySource) Figure14() []RATPrevalence {
	var events [5]int64
	s.in.Dataset.Each(func(e *failure.Event) {
		if int(e.RAT) < len(events) {
			events[e.RAT]++
		}
	})
	out := make([]RATPrevalence, 0, len(telephony.AllRATs))
	for _, rat := range telephony.AllRATs {
		row := RATPrevalence{RAT: rat, Events: events[rat]}
		for l := 0; l < telephony.NumSignalLevels; l++ {
			row.DwellHours += s.in.Dwell.Seconds[rat][l] / 3600
		}
		for _, bs := range s.in.Network.Stations {
			if bs.Supports(rat) {
				row.BSes++
			}
		}
		if row.DwellHours > 0 {
			row.Prevalence = float64(row.Events) / row.DwellHours * 1000
		}
		out = append(out, row)
	}
	return out
}

func (s legacySource) Figure15() [telephony.NumSignalLevels]LevelPrevalence {
	failing := [telephony.NumSignalLevels]map[uint64]bool{}
	for l := range failing {
		failing[l] = map[uint64]bool{}
	}
	s.in.Dataset.Each(func(e *failure.Event) {
		if e.Level.Valid() {
			failing[e.Level][e.DeviceID] = true
		}
	})
	var out [telephony.NumSignalLevels]LevelPrevalence
	for l := 0; l < telephony.NumSignalLevels; l++ {
		var exposed int64
		var seconds float64
		for rat := 0; rat < 5; rat++ {
			exposed += s.in.Dwell.DevicesExposed[rat][l]
			seconds += s.in.Dwell.Seconds[rat][l]
		}
		row := LevelPrevalence{Level: telephony.SignalLevel(l), Exposed: exposed}
		if exposed > 0 {
			row.Raw = float64(len(failing[l])) / float64(exposed)
			meanHours := seconds / float64(exposed) / 3600
			if meanHours > 0 {
				row.Normalized = row.Raw / meanHours
			}
		}
		out[l] = row
	}
	return out
}

func (s legacySource) Figure16(rat telephony.RAT) [telephony.NumSignalLevels]LevelPrevalence {
	failing := [telephony.NumSignalLevels]map[uint64]bool{}
	for l := range failing {
		failing[l] = map[uint64]bool{}
	}
	s.in.Dataset.Each(func(e *failure.Event) {
		if e.RAT == rat && e.Level.Valid() {
			failing[e.Level][e.DeviceID] = true
		}
	})
	var out [telephony.NumSignalLevels]LevelPrevalence
	for l := 0; l < telephony.NumSignalLevels; l++ {
		exposed := s.in.Dwell.DevicesExposed[rat][l]
		seconds := s.in.Dwell.Seconds[rat][l]
		row := LevelPrevalence{Level: telephony.SignalLevel(l), Exposed: exposed}
		if exposed > 0 {
			row.Raw = float64(len(failing[l])) / float64(exposed)
			meanHours := seconds / float64(exposed) / 3600
			if meanHours > 0 {
				row.Normalized = row.Raw / meanHours
			}
		}
		out[l] = row
	}
	return out
}

func (s legacySource) kindDurations(kind failure.Kind) []float64 {
	var xs []float64
	s.in.Dataset.Each(func(e *failure.Event) {
		if e.Kind == kind {
			xs = append(xs, e.Duration.Seconds())
		}
	})
	return xs
}

func (s legacySource) allDurations() []float64 {
	var xs []float64
	s.in.Dataset.Each(func(e *failure.Event) { xs = append(xs, e.Duration.Seconds()) })
	return xs
}

func (s legacySource) fiveGKindStats() map[failure.Kind]kindAgg {
	type agg struct {
		devs   map[uint64]bool
		events int
	}
	m := map[failure.Kind]*agg{}
	s.in.Dataset.Each(func(e *failure.Event) {
		if !e.FiveGCapable {
			return
		}
		a := m[e.Kind]
		if a == nil {
			a = &agg{devs: map[uint64]bool{}}
			m[e.Kind] = a
		}
		a.devs[e.DeviceID] = true
		a.events++
	})
	out := make(map[failure.Kind]kindAgg, len(m))
	for k, a := range m {
		out[k] = kindAgg{devices: len(a.devs), events: a.events}
	}
	return out
}

// legacyTimeSeries is the original two-pass bucketing.
func legacyTimeSeries(in Input, bucket time.Duration) []TimeBucket {
	if bucket <= 0 {
		bucket = 7 * 24 * time.Hour
	}
	var maxStart time.Duration
	in.Dataset.Each(func(e *failure.Event) {
		if e.Start > maxStart {
			maxStart = e.Start
		}
	})
	n := int(maxStart/bucket) + 1
	out := make([]TimeBucket, n)
	for i := range out {
		out[i] = TimeBucket{Start: time.Duration(i) * bucket, ByKind: map[failure.Kind]int{}}
	}
	in.Dataset.Each(func(e *failure.Event) {
		i := int(e.Start / bucket)
		if i >= 0 && i < n {
			out[i].Total++
			out[i].ByKind[e.Kind]++
		}
	})
	return out
}

// legacyDurationByKind is the original per-kind duration scan.
func legacyDurationByKind(in Input) map[failure.Kind]DurationStats {
	byKind := map[failure.Kind][]float64{}
	in.Dataset.Each(func(e *failure.Event) {
		byKind[e.Kind] = append(byKind[e.Kind], e.Duration.Seconds())
	})
	out := map[failure.Kind]DurationStats{}
	for kind, xs := range byKind {
		cdf := stats.NewECDF(xs)
		out[kind] = DurationStats{
			CDF:    cdf,
			Mean:   time.Duration(cdf.Mean() * float64(time.Second)),
			Median: time.Duration(cdf.Quantile(0.5) * float64(time.Second)),
			Max:    time.Duration(cdf.Max() * float64(time.Second)),
		}
	}
	return out
}

// legacyByRegion is the original per-region scan.
func legacyByRegion(in Input) []RegionStats {
	var events [geo.NumRegions]int
	var total [geo.NumRegions]time.Duration
	var maxd [geo.NumRegions]time.Duration
	in.Dataset.Each(func(e *failure.Event) {
		r := e.Region
		if int(r) >= geo.NumRegions {
			return
		}
		events[r]++
		total[r] += e.Duration
		if e.Duration > maxd[r] {
			maxd[r] = e.Duration
		}
	})
	out := make([]RegionStats, 0, geo.NumRegions)
	for r := geo.Region(0); r < geo.NumRegions; r++ {
		rs := RegionStats{Region: r, Events: events[r], MaxDuration: maxd[r]}
		if events[r] > 0 {
			rs.MeanDuration = total[r] / time.Duration(events[r])
		}
		out = append(out, rs)
	}
	return out
}

// legacyEstimateOpSuccess is the original recovery-stage scan.
func legacyEstimateOpSuccess(in Input) OpSuccessEstimate {
	var est OpSuccessEstimate
	var fixed [3]int
	in.Dataset.Each(func(e *failure.Event) {
		if e.Kind != failure.DataStall {
			return
		}
		for stage := 0; stage < 3 && stage < e.OpsExecuted; stage++ {
			est.Executions[stage]++
		}
		switch e.ResolvedBy {
		case android.ResolvedOp1:
			fixed[0]++
		case android.ResolvedOp2:
			fixed[1]++
		case android.ResolvedOp3:
			fixed[2]++
		}
	})
	for i := 0; i < 3; i++ {
		if est.Executions[i] > 0 {
			est.Rates[i] = float64(fixed[i]) / float64(est.Executions[i])
		}
	}
	return est
}
