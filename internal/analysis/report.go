package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/failure"
	"repro/internal/telephony"
)

// PaperReference holds the published value a measured metric is compared
// against.
type PaperReference struct {
	Metric   string
	Paper    string
	Measured string
}

// Report is the complete paper-vs-measured reproduction report: every
// experiment's key numbers plus the rendered sections, ready to print as
// markdown.
type Report struct {
	Devices     int
	Months      float64
	Seed        int64
	GeneralRows []PaperReference
	Sections    []ReportSection
}

// ReportSection is one experiment's block.
type ReportSection struct {
	Title string
	Intro string
	Rows  []PaperReference // empty for free-form sections
	Body  string           // preformatted block (tables, CDFs, heatmaps)
}

// ReportConfig identifies the runs being compared.
type ReportConfig struct {
	Devices int
	Months  float64
	Seed    int64
	// Catalogue is the Table-1 model list.
	Catalogue []ModelCatalogueEntry
	// TIMP carries the recovery-optimization outcome, if available.
	TIMP *TIMPSummary
	// Overhead carries the vanilla run's monitoring overhead.
	Overhead *OverheadReport
	// FPClasses is the vanilla monitor's false-positive histogram and the
	// recorded-event count.
	FPClasses map[string]int
	Recorded  int
}

// TIMPSummary carries the §4.2 optimization outcome for the report.
type TIMPSummary struct {
	Probations  [3]float64
	Cost        float64
	DefaultCost float64
	Improvement float64
	Samples     int
}

// BuildReport assembles the full reproduction report from a vanilla input
// and (optionally) a patched input for the enhancement section. Each input
// is scanned exactly once by the fused engine pass.
func BuildReport(vanilla Input, patched *Input, cfg ReportConfig) *Report {
	var psrc source
	if patched != nil {
		psrc = NewPass(*patched)
	}
	return buildReportFrom(NewPass(vanilla), psrc, cfg)
}

func buildReportFrom(vanilla, patched source, cfg ReportConfig) *Report {
	r := &Report{Devices: cfg.Devices, Months: cfg.Months, Seed: cfg.Seed}

	f3 := vanilla.Figure3()
	f4 := vanilla.Figure4()
	r.GeneralRows = []PaperReference{
		{"Mean failures per phone", "33", fmt.Sprintf("%.1f", f3.Mean)},
		{"Data_Setup_Error per phone", "16", fmt.Sprintf("%.1f", f3.MeanPerKind[failure.DataSetupError])},
		{"Data_Stall per phone", "14", fmt.Sprintf("%.1f", f3.MeanPerKind[failure.DataStall])},
		{"Out_of_Service per phone", "3", fmt.Sprintf("%.1f", f3.MeanPerKind[failure.OutOfService])},
		{"Phones with no failures", "77%", fmt.Sprintf("%.1f%%", f3.ZeroShare*100)},
		{"Phones with no Out_of_Service", "95%", fmt.Sprintf("%.1f%%", f3.OOSFreeShare*100)},
		{"Max failures on one phone", "198,228", fmt.Sprintf("%.0f", f3.Max)},
		{"Failures under 30 s", "70.8%", fmt.Sprintf("%.1f%%", f4.Under30*100)},
		{"Mean failure duration", "188 s", fmt.Sprintf("%.1f s", f4.Mean.Seconds())},
		{"Max failure duration", "91,770 s", fmt.Sprintf("%.0f s", f4.Max.Seconds())},
		{"Data_Stall share of total duration", "94%", fmt.Sprintf("%.1f%%", f4.StallShareOfDuration*100)},
	}

	table1 := vanilla.Table1(cfg.Catalogue)
	r.addSection("Table 1 — per-model prevalence and frequency", "",
		nil, RenderTable1(table1))
	r.addSection("Table 2 — top Data_Setup_Error codes", "",
		nil, RenderTable2(vanilla.Table2(10)))
	r.addSection("Hardware-configuration correlation (§3.2)",
		"Better hardware does not relieve failures; 5G capability and Android version drive them.",
		nil, RenderCorrelation(hardwareCorrelationFromRows(table1, cfg.Catalogue)))

	f5g, fn5g := vanilla.By5G()
	a9, a10 := vanilla.ByAndroidVersion()
	r.addSection("Figures 6–9 — 5G and Android-version landscape",
		"Paper: 5G phones fail more than non-5G; Android 10 more than Android 9.",
		groupRows([]GroupStats{f5g, fn5g, a9, a10}), "")

	f10 := vanilla.Figure10()
	r.addSection("Figure 10 — Data_Stall self-recovery", "", []PaperReference{
		{"Fixed within 10 s", "60%", fmt.Sprintf("%.1f%%", f10.Under10*100)},
		{"Fixed within 300 s", ">80%", fmt.Sprintf("%.1f%%", f10.Under300*100)},
		{"First-stage cleanup fix rate", "75%", fmt.Sprintf("%.1f%%", f10.FirstOpFixRate*100)},
	}, "")

	f11 := vanilla.Figure11(100)
	r.addSection("Figure 11 — BS ranking by failures",
		"At simulation scale the fit is steeper and the median higher than the paper's 5.3M-BS census; the Zipf shape holds.",
		[]PaperReference{
			{"Zipf a", "0.82", fmt.Sprintf("%.2f", f11.Fit.A)},
			{"Zipf b", "17.12", fmt.Sprintf("%.2f", f11.Fit.B)},
			{"Median failures per BS", "1", fmt.Sprintf("%.0f", f11.Median)},
			{"Mean failures per BS", "444", fmt.Sprintf("%.1f", f11.Mean)},
			{"Max failures per BS", "8,941,860", fmt.Sprintf("%d", f11.Max)},
			{"Top-100 BSes in crowded areas", "mostly", fmt.Sprintf("%.0f%%", f11.TopUrbanShare*100)},
		}, "")

	isps := vanilla.ByISP()
	paperISP := []string{"20.1%", "27.1%", "14.7%"}
	var ispRows []PaperReference
	for i, g := range isps {
		ispRows = append(ispRows, PaperReference{
			Metric:   g.Name + " prevalence",
			Paper:    paperISP[i],
			Measured: fmt.Sprintf("%.1f%% (frequency %.1f)", g.Prevalence*100, g.Frequency),
		})
	}
	r.addSection("Figures 12/13 — ISP discrepancy", "Ordering B > A > C.", ispRows, "")

	var ratRows []PaperReference
	for _, row := range vanilla.Figure14() {
		ratRows = append(ratRows, PaperReference{
			Metric:   row.RAT.String() + " failure rate",
			Paper:    ratOrderNote(row.RAT),
			Measured: fmt.Sprintf("%.2f per 1000 h (%d BSes)", row.Prevalence, row.BSes),
		})
	}
	r.addSection("Figure 14 — failure prevalence by BS RAT",
		"Paper ordering: 3G lowest (idle), 5G highest.", ratRows, "")

	r.addSection("Figure 15 — normalized prevalence by signal level",
		"Levels 0→4 decrease monotonically; level 5 jumps above levels 1–4 (transport hubs).",
		nil, RenderLevels("all RATs", vanilla.Figure15()))
	r.addSection("Figure 16 — per-RAT signal levels", "", nil,
		RenderLevels("4G", vanilla.Figure16(telephony.RAT4G))+
			RenderLevels("5G", vanilla.Figure16(telephony.RAT5G)))

	var worstRows []PaperReference
	for _, pair := range Figure17Pairs() {
		p := Figure17(vanilla.input(), pair[0], pair[1])
		wi, wj, worst := -1, -1, 0.0
		for i := 0; i < telephony.NumSignalLevels; i++ {
			for j := 0; j < telephony.NumSignalLevels; j++ {
				if p.Observed[i][j] && p.Increase[i][j] > worst {
					worst, wi, wj = p.Increase[i][j], i, j
				}
			}
		}
		measured := "(unobserved)"
		if wi >= 0 {
			measured = fmt.Sprintf("level-%d → level-%d at %+.3f", wi, wj, worst)
		}
		worstRows = append(worstRows, PaperReference{
			Metric:   fmt.Sprintf("%v→%v worst cell", pair[0], pair[1]),
			Paper:    "into level-0",
			Measured: measured,
		})
	}
	r.addSection("Figure 17 — RAT-transition failure increases",
		"Paper's 17f: 4G level-1..4 → 5G level-0 raise prevalence by up to +0.37; the dark cells sit in the level-0 column.",
		worstRows, "")

	if cfg.TIMP != nil {
		t := cfg.TIMP
		r.addSection("TIMP recovery optimization (Figure 18, Eq. 1)", "", []PaperReference{
			{"Optimal probations", "21 s, 6 s, 16 s", fmt.Sprintf("%.1f s, %.1f s, %.1f s", t.Probations[0], t.Probations[1], t.Probations[2])},
			{"Expected recovery (optimized)", "27.8 s", fmt.Sprintf("%.1f s", t.Cost)},
			{"Expected recovery (60 s default)", "38 s", fmt.Sprintf("%.1f s", t.DefaultCost)},
			{"Improvement", "26.8%", fmt.Sprintf("%.1f%%", t.Improvement*100)},
			{"Self-recovery samples", "2.3B events", fmt.Sprintf("%d", t.Samples)},
		}, "")
	}

	if patched != nil {
		rep := compareEnhancementFrom(vanilla, patched)
		rows := []PaperReference{
			{"5G failure frequency change", "−40.3%", fmt.Sprintf("%+.1f%%", rep.FiveGFrequencyChange*100)},
			{"5G failure prevalence change", "−10%", fmt.Sprintf("%+.1f%%", rep.FiveGPrevalenceChange*100)},
		}
		for _, kd := range rep.ByKind {
			rows = append(rows, PaperReference{
				Metric:   fmt.Sprintf("%v frequency change (5G)", kd.Kind),
				Paper:    "see §4.3",
				Measured: fmt.Sprintf("%+.1f%%", kd.FrequencyChange*100),
			})
		}
		rows = append(rows,
			PaperReference{"Mean Data_Stall duration change", "−38%", fmt.Sprintf("%+.1f%%", rep.StallDurationChange*100)},
			PaperReference{"Total failure duration change", "−36%", fmt.Sprintf("%+.1f%%", rep.TotalDurationChange*100)},
			PaperReference{"Median failure duration", "6 s → 2 s",
				fmt.Sprintf("%.1f s → %.1f s", rep.MedianDurationBefore.Seconds(), rep.MedianDurationAfter.Seconds())},
		)
		r.addSection("Figures 19–21 — deployed enhancements (§4.3)", "", rows, "")
	}

	if cfg.Overhead != nil {
		o := cfg.Overhead
		r.addSection("Monitoring overhead (§2.2)", "", []PaperReference{
			{"Mean CPU within failures", "<2%", fmt.Sprintf("%.3f%% (ok=%v)", o.MeanCPUUtilization*100, o.WithinTypicalBudget)},
			{"Worst CPU", "<8%", fmt.Sprintf("%.3f%%", o.MaxCPUUtilization*100)},
			{"Worst memory", "<2 MB", fmt.Sprintf("%d B", o.MaxMemoryBytes)},
			{"Worst storage", "<20 MB", fmt.Sprintf("%d B", o.MaxStorageBytes)},
			{"Worst network over the window", "~160 MB", fmt.Sprintf("%d B", o.MaxNetworkBytes)},
		}, "")
	}

	if gs := guidelinesFrom(vanilla); len(gs) > 0 {
		r.addSection("Guidelines derived from the data (§4.1)", "", nil, RenderGuidelines(gs))
	}

	if len(cfg.FPClasses) > 0 {
		type kv struct {
			k string
			v int
		}
		var list []kv
		for k, v := range cfg.FPClasses {
			list = append(list, kv{k, v})
		}
		sort.Slice(list, func(i, j int) bool { return list[i].v > list[j].v })
		var rows []PaperReference
		for _, e := range list {
			rows = append(rows, PaperReference{Metric: e.k, Paper: "filtered", Measured: fmt.Sprintf("%d", e.v)})
		}
		rows = append(rows, PaperReference{Metric: "recorded (true failures)", Paper: "-", Measured: fmt.Sprintf("%d", cfg.Recorded)})
		r.addSection("False-positive filtering (§2.2)", "", rows, "")
	}
	return r
}

func (r *Report) addSection(title, intro string, rows []PaperReference, body string) {
	r.Sections = append(r.Sections, ReportSection{Title: title, Intro: intro, Rows: rows, Body: body})
}

func groupRows(groups []GroupStats) []PaperReference {
	var rows []PaperReference
	for _, g := range groups {
		rows = append(rows, PaperReference{
			Metric:   g.Name,
			Paper:    "-",
			Measured: fmt.Sprintf("prevalence %.1f%%, frequency %.1f", g.Prevalence*100, g.Frequency),
		})
	}
	return rows
}

func ratOrderNote(rat telephony.RAT) string {
	switch rat {
	case telephony.RAT3G:
		return "lowest (idle)"
	case telephony.RAT5G:
		return "highest"
	default:
		return "mid"
	}
}

// Markdown renders the report.
func (r *Report) Markdown(elapsed time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# EXPERIMENTS — paper vs. measured\n\n")
	fmt.Fprintf(&b, "Reproduction of *A Nationwide Study on Cellular Reliability* (SIGCOMM 2021).\n")
	fmt.Fprintf(&b, "Fleet: %d simulated devices over %.0f months (seed %d); the paper measured 70M real phones.\n",
		r.Devices, r.Months, r.Seed)
	fmt.Fprintf(&b, "Absolute counts scale with fleet size; distribution shapes, orderings and\nrelative improvements are the reproduction targets.\n\n")

	fmt.Fprintf(&b, "## General statistics (§3.1, Figures 3 and 4)\n\n")
	writeRows(&b, r.GeneralRows)
	fmt.Fprintf(&b, "\nNote: our mean duration sits below the paper's 188 s because the modeled\nrecovery mechanism caps most stalls; the skew (most failures short, a\nmulti-hour tail from neglected remote BSes) is preserved.\n\n")

	for _, s := range r.Sections {
		fmt.Fprintf(&b, "## %s\n\n", s.Title)
		if s.Intro != "" {
			fmt.Fprintf(&b, "%s\n\n", s.Intro)
		}
		if len(s.Rows) > 0 {
			writeRows(&b, s.Rows)
			fmt.Fprintln(&b)
		}
		if s.Body != "" {
			fmt.Fprintf(&b, "```\n%s```\n\n", s.Body)
		}
	}
	fmt.Fprintf(&b, "---\nGenerated in %v.\n", elapsed.Round(time.Millisecond))
	return b.String()
}

func writeRows(b *strings.Builder, rows []PaperReference) {
	fmt.Fprintf(b, "| Metric | Paper | Measured |\n|---|---|---|\n")
	for _, row := range rows {
		fmt.Fprintf(b, "| %s | %s | %s |\n", row.Metric, row.Paper, row.Measured)
	}
}
