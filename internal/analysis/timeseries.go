package analysis

import (
	"time"

	"repro/internal/failure"
)

// TimeBucket is one interval of the failure time series.
type TimeBucket struct {
	Start  time.Duration
	Total  int
	ByKind map[failure.Kind]int
}

// TimeSeries buckets failures over the measurement window — the view that
// exposes injected regional outages (correlated spikes) and verifies the
// generator is otherwise stationary across the eight months.
func TimeSeries(in Input, bucket time.Duration) []TimeBucket {
	if bucket <= 0 {
		bucket = 7 * 24 * time.Hour
	}
	return runOne(in.Dataset, func() *timeSeriesVisitor { return newTimeSeriesVisitor(bucket) }).series()
}

// SpikeIndex measures how bursty a series is: the maximum bucket divided
// by the median bucket (a stationary series sits near 1–2; an injected
// outage pushes it up).
func SpikeIndex(series []TimeBucket) float64 {
	if len(series) == 0 {
		return 0
	}
	counts := make([]float64, 0, len(series))
	var maxV float64
	for _, b := range series {
		v := float64(b.Total)
		counts = append(counts, v)
		if v > maxV {
			maxV = v
		}
	}
	med := medianOf(counts)
	if med <= 0 {
		return 0
	}
	return maxV / med
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ { // insertion sort: series are short
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	m := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[m]
	}
	return (cp[m-1] + cp[m]) / 2
}
