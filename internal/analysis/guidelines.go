package analysis

import (
	"fmt"
	"strings"

	"repro/internal/simnet"
	"repro/internal/telephony"
)

// Audience is who a guideline is addressed to (§4.1 addresses phone
// vendors, mobile ISPs, and OS developers).
type Audience string

// Guideline audiences.
const (
	AudienceVendor Audience = "phone-vendor"
	AudienceISP    Audience = "mobile-isp"
	AudienceOS     Audience = "os-developer"
)

// Guideline is one data-backed recommendation.
type Guideline struct {
	Audience Audience
	Finding  string
	Advice   string
	// Evidence quantifies the finding from this dataset.
	Evidence string
}

// Guidelines derives the paper's §4.1 guidance from the measured dataset:
// each recommendation is emitted only when its supporting finding actually
// holds in the data, with the measured numbers attached as evidence.
func Guidelines(in Input) []Guideline {
	return guidelinesFrom(NewPass(in))
}

func guidelinesFrom(src source) []Guideline {
	var out []Guideline

	// 5G modules raise failure rates → vendors should validate harder.
	if fiveG, non5G := src.By5G(); fiveG.Devices > 0 && non5G.Devices > 0 &&
		fiveG.Frequency > non5G.Frequency {
		out = append(out, Guideline{
			Audience: AudienceVendor,
			Finding:  "5G phones fail more prevalently and frequently than non-5G phones",
			Advice:   "validate new 5G modules' coordination and compatibility with existing hardware/software before rollout",
			Evidence: fmt.Sprintf("5G: %.1f failures/phone vs non-5G Android 10: %.1f", fiveG.Frequency, non5G.Frequency),
		})
	}

	// Newer OS raises failure rates → test RAT policies before pushing.
	if a9, a10 := src.ByAndroidVersion(); a9.Devices > 0 && a10.Devices > 0 &&
		a10.Frequency > a9.Frequency {
		out = append(out, Guideline{
			Audience: AudienceOS,
			Finding:  "Android 10 phones fail more than Android 9 phones (blind 5G preference, young code)",
			Advice:   "test new characteristics such as the 4G/5G switching policy before pushing a new OS to phone models",
			Evidence: fmt.Sprintf("Android 10 (non-5G): %.1f failures/phone vs Android 9: %.1f", a10.Frequency, a9.Frequency),
		})
	}

	// Idle 3G → ISPs can offload onto it.
	rat := map[telephony.RAT]RATPrevalence{}
	for _, r := range src.Figure14() {
		rat[r.RAT] = r
	}
	if r3, r4 := rat[telephony.RAT3G], rat[telephony.RAT4G]; r3.DwellHours > 0 &&
		r3.Prevalence < r4.Prevalence {
		out = append(out, Guideline{
			Audience: AudienceISP,
			Finding:  "3G base stations are relatively idle and fail less than 2G/4G",
			Advice:   "make better use of idle 3G infrastructure to relieve busy 2G/4G base stations",
			Evidence: fmt.Sprintf("3G: %.2f failures/1000h vs 4G: %.2f", r3.Prevalence, r4.Prevalence),
		})
	}

	// Level-5 anomaly at dense deployments → control hub BS density.
	levels := src.Figure15()
	anomaly := true
	for l := 1; l <= 4; l++ {
		if levels[5].Normalized <= levels[l].Normalized {
			anomaly = false
		}
	}
	if anomaly {
		out = append(out, Guideline{
			Audience: AudienceISP,
			Finding:  "excellent (level-5) RSS carries a higher normalized failure likelihood than levels 1-4 — dense uncoordinated deployment around transport hubs",
			Advice:   "control BS deployment density in public-transport areas and coordinate cross-ISP infrastructure sharing",
			Evidence: fmt.Sprintf("normalized prevalence level-5: %.4f vs level-4: %.4f", levels[5].Normalized, levels[4].Normalized),
		})
	}

	// ISP-B coverage gap.
	isps := src.ByISP()
	if b, c := isps[simnet.ISPB], isps[simnet.ISPC]; b.Devices > 0 &&
		b.Prevalence > c.Prevalence {
		out = append(out, Guideline{
			Audience: AudienceISP,
			Finding:  "ISP-B subscribers see the highest failure prevalence (inferior signal coverage from higher-frequency bands)",
			Advice:   "densify coverage or acquire lower-frequency spectrum where failures concentrate",
			Evidence: fmt.Sprintf("prevalence: %s %.1f%% vs %s %.1f%%", b.Name, b.Prevalence*100, c.Name, c.Prevalence*100),
		})
	}

	// Stall recovery is too conservative when self-healing dominates.
	if f := src.Figure10(); f.Under10 > 0.5 {
		out = append(out, Guideline{
			Audience: AudienceOS,
			Finding:  "most Data_Stall failures self-heal long before the one-minute probation expires",
			Advice:   "replace the fixed one-minute recovery trigger with a data-driven (TIMP) trigger",
			Evidence: fmt.Sprintf("%.0f%% of stalls self-fix within 10 s; first-stage cleanup fixes %.0f%% once executed", f.Under10*100, f.FirstOpFixRate*100),
		})
	}
	return out
}

// RenderGuidelines formats the recommendations.
func RenderGuidelines(gs []Guideline) string {
	var b strings.Builder
	for _, g := range gs {
		fmt.Fprintf(&b, "[%s]\n  finding:  %s\n  advice:   %s\n  evidence: %s\n", g.Audience, g.Finding, g.Advice, g.Evidence)
	}
	return b.String()
}
