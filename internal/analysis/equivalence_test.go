package analysis

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/telephony"
)

// The legacy multi-pass oracle must satisfy the same extraction surface as
// the fused engine pass.
var _ source = legacySource{}

// TestEngineMatchesLegacy asserts that the single-pass visitor engine
// produces results identical to the sequential multi-pass implementation on
// the fixed-seed scenario dataset — figure by figure, via DeepEqual.
func TestEngineMatchesLegacy(t *testing.T) {
	van, _ := setup(t)
	pass := NewPass(van)
	legacy := legacySource{van}

	check := func(name string, got, want any) {
		t.Helper()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: engine pass diverges from legacy scan\n got: %+v\nwant: %+v", name, got, want)
		}
	}

	check("Table1", pass.Table1(catalogueCE), legacy.Table1(catalogueCE))
	check("Table2", pass.Table2(10), legacy.Table2(10))
	check("Figure3", pass.Figure3(), legacy.Figure3())
	check("Figure4", pass.Figure4(), legacy.Figure4())
	{
		gf, gn := pass.By5G()
		wf, wn := legacy.By5G()
		check("By5G/5g", gf, wf)
		check("By5G/non5g", gn, wn)
	}
	{
		g9, g10 := pass.ByAndroidVersion()
		w9, w10 := legacy.ByAndroidVersion()
		check("ByAndroidVersion/9", g9, w9)
		check("ByAndroidVersion/10", g10, w10)
	}
	check("ByISP", pass.ByISP(), legacy.ByISP())
	check("Figure10", pass.Figure10(), legacy.Figure10())
	check("Figure11", pass.Figure11(100), legacy.Figure11(100))
	check("Figure14", pass.Figure14(), legacy.Figure14())
	check("Figure15", pass.Figure15(), legacy.Figure15())
	check("Figure16/4G", pass.Figure16(telephony.RAT4G), legacy.Figure16(telephony.RAT4G))
	check("Figure16/5G", pass.Figure16(telephony.RAT5G), legacy.Figure16(telephony.RAT5G))

	for _, kind := range []failure.Kind{failure.DataSetupError, failure.DataStall, failure.OutOfService} {
		check("kindDurations/"+kind.String(), pass.kindDurations(kind), legacy.kindDurations(kind))
	}
	check("allDurations", pass.allDurations(), legacy.allDurations())
	check("fiveGKindStats", pass.fiveGKindStats(), legacy.fiveGKindStats())

	check("DurationByKind", pass.DurationByKind(), legacyDurationByKind(van))
	check("ByRegion", pass.ByRegion(), legacyByRegion(van))
	check("EstimateOpSuccess", pass.EstimateOpSuccess(), legacyEstimateOpSuccess(van))
	check("TimeSeries", TimeSeries(van, 7*24*time.Hour), legacyTimeSeries(van, 7*24*time.Hour))
	check("TimeSeries/day", TimeSeries(van, 24*time.Hour), legacyTimeSeries(van, 24*time.Hour))
}

// TestStandaloneWrappersMatchPass asserts the package-level convenience
// functions agree with the shared Pass (each wrapper runs its own engine
// pass, so this also exercises single-visitor passes).
func TestStandaloneWrappersMatchPass(t *testing.T) {
	van, _ := setup(t)
	pass := NewPass(van)

	if got, want := Table2(van, 10), pass.Table2(10); !reflect.DeepEqual(got, want) {
		t.Errorf("Table2 wrapper: %+v != %+v", got, want)
	}
	if got, want := Figure3(van), pass.Figure3(); !reflect.DeepEqual(got, want) {
		t.Errorf("Figure3 wrapper: %+v != %+v", got, want)
	}
	if got, want := Figure11(van, 100), pass.Figure11(100); !reflect.DeepEqual(got, want) {
		t.Errorf("Figure11 wrapper: %+v != %+v", got, want)
	}
	if got, want := Figure15(van), pass.Figure15(); !reflect.DeepEqual(got, want) {
		t.Errorf("Figure15 wrapper: %+v != %+v", got, want)
	}
}

// TestReportMatchesLegacy renders the full markdown report through both
// paths and requires byte equality — the strongest end-to-end check that
// the engine rewrite changed nothing observable.
func TestReportMatchesLegacy(t *testing.T) {
	van, pat := setup(t)
	cfg := ReportConfig{
		Devices:   van.Population.Total,
		Months:    4,
		Seed:      17,
		Catalogue: catalogueCE,
	}
	const elapsed = 42 * time.Second

	engine := buildReportFrom(NewPass(van), NewPass(pat), cfg).Markdown(elapsed)
	legacy := buildReportFrom(legacySource{van}, legacySource{pat}, cfg).Markdown(elapsed)
	if engine != legacy {
		t.Fatalf("report markdown diverges between engine and legacy paths\nengine %d bytes, legacy %d bytes", len(engine), len(legacy))
	}

	engineClaims := RenderClaims(checkClaimsFrom(NewPass(van)))
	legacyClaims := RenderClaims(checkClaimsFrom(legacySource{van}))
	if engineClaims != legacyClaims {
		t.Fatalf("claims diverge:\nengine:\n%s\nlegacy:\n%s", engineClaims, legacyClaims)
	}

	engineGuide := guidelinesFrom(NewPass(van))
	legacyGuide := guidelinesFrom(legacySource{van})
	if !reflect.DeepEqual(engineGuide, legacyGuide) {
		t.Fatalf("guidelines diverge:\nengine: %+v\nlegacy: %+v", engineGuide, legacyGuide)
	}

	engineEnh := compareEnhancementFrom(NewPass(van), NewPass(pat))
	legacyEnh := compareEnhancementFrom(legacySource{van}, legacySource{pat})
	if !reflect.DeepEqual(engineEnh, legacyEnh) {
		t.Fatalf("enhancement comparison diverges:\nengine: %+v\nlegacy: %+v", engineEnh, legacyEnh)
	}
}
