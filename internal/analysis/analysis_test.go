package analysis

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/android"
	"repro/internal/device"
	"repro/internal/failure"
	"repro/internal/fleet"
	"repro/internal/simnet"
	"repro/internal/telephony"
	"repro/internal/trace"
)

var (
	once        sync.Once
	vanillaIn   Input
	patchedIn   Input
	vanillaReS  *fleet.Result
	catalogueCE []ModelCatalogueEntry
)

func setup(t *testing.T) (Input, Input) {
	t.Helper()
	once.Do(func() {
		base := fleet.Scenario{Seed: 17, NumDevices: 4000, Workers: 4}
		van, err := fleet.Run(base)
		if err != nil {
			t.Fatal(err)
		}
		pat, err := fleet.Run(base.Patched(android.PaperTIMPTrigger))
		if err != nil {
			t.Fatal(err)
		}
		vanillaReS = van
		vanillaIn = FromResult(van)
		patchedIn = FromResult(pat)
		for _, m := range device.Models() {
			catalogueCE = append(catalogueCE, ModelCatalogueEntry{
				ID: m.ID, CPUGHz: m.CPUGHz, MemoryGB: m.MemoryGB, StorageGB: m.StorageGB,
				FiveG: m.FiveG, Android: m.Android,
				Prevalence: m.Prevalence, Frequency: m.Frequency,
			})
		}
	})
	return vanillaIn, patchedIn
}

func TestTable1TracksPaperValues(t *testing.T) {
	in, _ := setup(t)
	rows := Table1(in, catalogueCE)
	if len(rows) != 34 {
		t.Fatalf("rows = %d, want 34", len(rows))
	}
	// Measured prevalence should correlate strongly with Table 1 across
	// models (same ordering of reliable vs unreliable models).
	var big, small int
	for _, r := range rows {
		if r.Devices < 20 {
			continue // too few samples for a stable estimate
		}
		if r.PaperPrevalence > 0.25 && r.Prevalence > 0.15 {
			big++
		}
		if r.PaperPrevalence < 0.05 && r.Prevalence < 0.10 {
			small++
		}
	}
	if big == 0 || small == 0 {
		t.Errorf("measured prevalences do not track paper values (big=%d small=%d)", big, small)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Model") || len(strings.Split(out, "\n")) < 35 {
		t.Error("render too short")
	}
}

func TestTable2TopCauses(t *testing.T) {
	in, _ := setup(t)
	rows := Table2(in, 10)
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	// GPRS_REGISTRATION_FAIL leads in the paper; with hub EMM skew our
	// top cause is either it or an EMM cause, but it must rank high.
	foundGPRS := false
	var shareSum float64
	for i, r := range rows {
		if i > 0 && r.Share > rows[i-1].Share {
			t.Error("rows not sorted by share")
		}
		shareSum += r.Share
		if r.Cause == telephony.CauseGPRSRegistrationFail {
			foundGPRS = true
			if r.PaperShare != 0.128 {
				t.Errorf("paper share = %v", r.PaperShare)
			}
		}
		if r.Cause.IsFalsePositive() {
			t.Errorf("false positive %v in Table 2", r.Name)
		}
	}
	if !foundGPRS {
		t.Error("GPRS_REGISTRATION_FAIL missing from top 10")
	}
	if shareSum < 0.3 || shareSum > 0.95 {
		t.Errorf("top-10 share sum = %.2f (paper: 46.7%%)", shareSum)
	}
	if !strings.Contains(RenderTable2(rows), "GPRS_REGISTRATION_FAIL") {
		t.Error("render missing cause names")
	}
}

func TestFigure3FailuresPerPhone(t *testing.T) {
	in, _ := setup(t)
	f := Figure3(in)
	if f.Mean < 15 || f.Mean > 80 {
		t.Errorf("mean failures per phone = %.1f (paper: 33)", f.Mean)
	}
	// Paper: 77% of phones experience no failures.
	if f.ZeroShare < 0.70 || f.ZeroShare > 0.85 {
		t.Errorf("zero share = %.2f (paper: 0.77)", f.ZeroShare)
	}
	// Paper: 95% of phones see no Out_of_Service events.
	if f.OOSFreeShare < 0.90 {
		t.Errorf("OOS-free share = %.2f (paper: 0.95)", f.OOSFreeShare)
	}
	// Setup > stall > OOS per-capita means (16 / 14 / 3).
	setup := f.MeanPerKind[failure.DataSetupError]
	stall := f.MeanPerKind[failure.DataStall]
	oos := f.MeanPerKind[failure.OutOfService]
	if !(setup > stall && stall > oos) {
		t.Errorf("per-kind means setup=%.1f stall=%.1f oos=%.1f; want setup>stall>oos", setup, stall, oos)
	}
	if f.Max <= 10*f.Mean {
		t.Errorf("max %.0f should dwarf mean %.1f (paper max: 198,228)", f.Max, f.Mean)
	}
	if f.CDF.P(0) != f.ZeroShare {
		t.Error("CDF inconsistent with zero share")
	}
}

func TestFigure4Durations(t *testing.T) {
	in, _ := setup(t)
	d := Figure4(in)
	if d.Mean <= 0 || d.Median <= 0 {
		t.Fatalf("degenerate durations: %+v", d)
	}
	// Highly skewed distribution: most failures are short, the tail long.
	if d.Under30 < 0.60 {
		t.Errorf("fraction under 30s = %.2f (paper: 0.708)", d.Under30)
	}
	if d.Max < 10*time.Minute {
		t.Errorf("max duration %v; long-tail outages expected", d.Max)
	}
	if d.Mean < d.Median {
		t.Error("skew: mean should exceed median")
	}
	// Data_Stall dominates total failure duration (paper: 94%; our
	// simulator's recovery-capped stalls still dominate at >30%).
	if d.StallShareOfDuration < 0.30 {
		t.Errorf("stall duration share = %.2f", d.StallShareOfDuration)
	}
}

func TestBy5GAndAndroidOrdering(t *testing.T) {
	in, _ := setup(t)
	fiveG, non5G := By5G(in)
	if fiveG.Prevalence <= non5G.Prevalence || fiveG.Frequency <= non5G.Frequency {
		t.Errorf("5G %+v should exceed non-5G %+v", fiveG, non5G)
	}
	a9, a10 := ByAndroidVersion(in)
	if a10.Prevalence <= a9.Prevalence || a10.Frequency <= a9.Frequency {
		t.Errorf("Android 10 %+v should exceed Android 9 %+v", a10, a9)
	}
	out := RenderGroups("by 5G", []GroupStats{fiveG, non5G})
	if !strings.Contains(out, "5G") {
		t.Error("render broken")
	}
}

func TestFigure10AutoFix(t *testing.T) {
	in, _ := setup(t)
	f := Figure10(in)
	if f.CDF.N() == 0 {
		t.Fatal("no auto-fix samples")
	}
	if math.Abs(f.Under10-0.60) > 0.10 {
		t.Errorf("P(auto-fix <= 10s) = %.2f (paper: 0.60)", f.Under10)
	}
	if f.Under300 < 0.80 {
		t.Errorf("P(auto-fix <= 300s) = %.2f (paper: >0.80)", f.Under300)
	}
	// First-stage cleanup effectiveness once executed (paper: 75%).
	if f.FirstOpFixRate < 0.5 || f.FirstOpFixRate > 0.95 {
		t.Errorf("first-op fix rate = %.2f (paper: 0.75)", f.FirstOpFixRate)
	}
}

func TestFigure11Ranking(t *testing.T) {
	in, _ := setup(t)
	r := Figure11(in, 100)
	if len(r.Counts) == 0 {
		t.Fatal("no BS ranking")
	}
	if r.Fit.A <= 0.3 {
		t.Errorf("Zipf exponent = %.2f, want clearly positive skew (paper: 0.82)", r.Fit.A)
	}
	if float64(r.Max) < 10*r.Mean {
		t.Errorf("max %d vs mean %.1f: ranking should be heavily skewed", r.Max, r.Mean)
	}
	if r.Median > r.Mean {
		t.Error("skew: median should be below mean")
	}
	// Top-ranked BSes concentrate in crowded areas (paper's finding).
	if r.TopUrbanShare < 0.5 {
		t.Errorf("top urban/hub share = %.2f, want majority", r.TopUrbanShare)
	}
	if !strings.Contains(RenderRanking(r), "Zipf") {
		t.Error("render broken")
	}
}

func TestByISPOrdering(t *testing.T) {
	in, _ := setup(t)
	groups := ByISP(in)
	b, a, c := groups[simnet.ISPB], groups[simnet.ISPA], groups[simnet.ISPC]
	if !(b.Prevalence > a.Prevalence && a.Prevalence > c.Prevalence) {
		t.Errorf("ISP prevalence ordering: B=%.3f A=%.3f C=%.3f", b.Prevalence, a.Prevalence, c.Prevalence)
	}
	if !(b.Frequency > c.Frequency) {
		t.Errorf("ISP frequency ordering: B=%.1f C=%.1f", b.Frequency, c.Frequency)
	}
}

func TestFigure14RATOrdering(t *testing.T) {
	in, _ := setup(t)
	rows := Figure14(in)
	byRAT := map[telephony.RAT]RATPrevalence{}
	for _, r := range rows {
		byRAT[r.RAT] = r
	}
	// Figure 14: 3G BSes see lower failure prevalence than 2G and 4G;
	// 5G BSes the highest.
	if byRAT[telephony.RAT3G].Prevalence >= byRAT[telephony.RAT2G].Prevalence {
		t.Errorf("3G prevalence %.3f should be below 2G %.3f",
			byRAT[telephony.RAT3G].Prevalence, byRAT[telephony.RAT2G].Prevalence)
	}
	if byRAT[telephony.RAT3G].Prevalence >= byRAT[telephony.RAT4G].Prevalence {
		t.Errorf("3G prevalence %.3f should be below 4G %.3f",
			byRAT[telephony.RAT3G].Prevalence, byRAT[telephony.RAT4G].Prevalence)
	}
	if byRAT[telephony.RAT5G].Prevalence <= byRAT[telephony.RAT4G].Prevalence {
		t.Errorf("5G prevalence %.3f should exceed 4G %.3f",
			byRAT[telephony.RAT5G].Prevalence, byRAT[telephony.RAT4G].Prevalence)
	}
	for _, r := range rows {
		if r.BSes == 0 {
			t.Errorf("no BSes support %v", r.RAT)
		}
	}
}

func TestFigure15SignalAnomaly(t *testing.T) {
	in, _ := setup(t)
	levels := Figure15(in)
	// Normalized prevalence decreases monotonically from level 0 to 4...
	for l := 1; l <= 4; l++ {
		if levels[l].Normalized >= levels[l-1].Normalized {
			t.Errorf("normalized prevalence not decreasing at level %d: %.4f >= %.4f",
				l, levels[l].Normalized, levels[l-1].Normalized)
		}
	}
	// ...then jumps at level 5 above every level 1-4 (the transport-hub
	// anomaly).
	for l := 1; l <= 4; l++ {
		if levels[5].Normalized <= levels[l].Normalized {
			t.Errorf("level-5 normalized prevalence %.4f should exceed level-%d %.4f",
				levels[5].Normalized, l, levels[l].Normalized)
		}
	}
	out := RenderLevels("fig15", levels)
	if !strings.Contains(out, "level-5") {
		t.Error("render broken")
	}
}

func TestFigure16PerRAT(t *testing.T) {
	in, _ := setup(t)
	l4 := Figure16(in, telephony.RAT4G)
	l5 := Figure16(in, telephony.RAT5G)
	if l4[0].Normalized <= l4[4].Normalized {
		t.Error("4G level-0 should be riskier than level-4")
	}
	// 5G rows exist only where 5G was camped.
	var any5 bool
	for _, l := range l5 {
		if l.Exposed > 0 {
			any5 = true
		}
	}
	if !any5 {
		t.Error("no 5G exposure recorded")
	}
}

func TestFigure17DarkCellsAtLevelZero(t *testing.T) {
	in, _ := setup(t)
	p := Figure17(in, telephony.RAT4G, telephony.RAT5G)
	// The j=0 column must carry the largest increases where observed
	// (Figure 17f's dark cells).
	var maxJ0, maxRest float64
	for i := 0; i < telephony.NumSignalLevels; i++ {
		if p.Observed[i][0] && p.Increase[i][0] > maxJ0 {
			maxJ0 = p.Increase[i][0]
		}
		for j := 1; j < telephony.NumSignalLevels; j++ {
			if p.Observed[i][j] && p.Increase[i][j] > maxRest {
				maxRest = p.Increase[i][j]
			}
		}
	}
	if maxJ0 <= maxRest {
		t.Errorf("level-0 column max increase %.3f should exceed other columns' %.3f", maxJ0, maxRest)
	}
	if !strings.Contains(RenderHeatmap(p), "j=0") {
		t.Error("render broken")
	}
	if len(Figure17Pairs()) != 6 {
		t.Error("Figure 17 has six panels")
	}
}

func TestEnhancementReport(t *testing.T) {
	van, pat := setup(t)
	rep := CompareEnhancement(van, pat)
	if rep.FiveGFrequencyChange > -0.20 || rep.FiveGFrequencyChange < -0.70 {
		t.Errorf("5G frequency change = %.2f (paper: -0.403)", rep.FiveGFrequencyChange)
	}
	if rep.FiveGPrevalenceChange > 0.02 {
		t.Errorf("5G prevalence change = %.2f, should not increase", rep.FiveGPrevalenceChange)
	}
	if rep.StallDurationChange > -0.20 || rep.StallDurationChange < -0.70 {
		t.Errorf("stall duration change = %.2f (paper: -0.38)", rep.StallDurationChange)
	}
	if rep.TotalDurationChange >= 0 {
		t.Errorf("total duration change = %.2f, should be a reduction", rep.TotalDurationChange)
	}
	if len(rep.ByKind) != 3 {
		t.Fatalf("ByKind = %d entries", len(rep.ByKind))
	}
	for _, kd := range rep.ByKind {
		if kd.Kind == failure.DataStall && kd.FrequencyChange > 0.1 {
			t.Errorf("stall frequency should drop on 5G phones, got %+.2f", kd.FrequencyChange)
		}
	}
	// The trigger change must visibly shift the stall duration CDF.
	if rep.StallKS < 0.05 {
		t.Errorf("stall KS distance = %.3f, want a visible distribution shift", rep.StallKS)
	}
	out := RenderEnhancement(rep)
	if !strings.Contains(out, "paper") {
		t.Error("render broken")
	}
}

func TestOverheadReport(t *testing.T) {
	_, _ = setup(t)
	o := vanillaReS.Overhead
	rep := CheckOverhead(o.MeanCPUUtilization, o.MaxCPUUtilization, o.MaxMemoryBytes, o.MaxStorageBytes, o.MaxNetworkBytes, 8)
	if !rep.WithinTypicalBudget {
		t.Errorf("typical budget violated: %+v", rep)
	}
	if !rep.WithinWorstBudget {
		t.Errorf("worst-case budget violated: %+v", rep)
	}
	bad := CheckOverhead(0.5, 0.9, 1<<30, 1<<30, 1<<40, 0)
	if bad.WithinTypicalBudget || bad.WithinWorstBudget {
		t.Error("absurd overheads passed the budget check")
	}
}

func TestDurationByKind(t *testing.T) {
	in, _ := setup(t)
	m := DurationByKind(in)
	if _, ok := m[failure.DataStall]; !ok {
		t.Fatal("no stall durations")
	}
	if m[failure.DataStall].Mean <= m[failure.DataSetupError].Mean {
		t.Error("stalls should last longer than setup-error episodes on average")
	}
}

func TestRenderCDF(t *testing.T) {
	in, _ := setup(t)
	d := Figure4(in)
	out := RenderCDF("durations", "s", d.CDF, 12)
	if !strings.Contains(out, "#") || !strings.Contains(out, "durations") {
		t.Error("render broken")
	}
}

func TestHardwareCorrelation(t *testing.T) {
	in, _ := setup(t)
	rows := HardwareCorrelation(in, catalogueCE)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]FeatureCorrelation{}
	for _, r := range rows {
		byName[r.Feature] = r
		if r.WithPrevalence < -1 || r.WithPrevalence > 1 || r.WithFrequency < -1 || r.WithFrequency > 1 {
			t.Fatalf("correlation out of range: %+v", r)
		}
	}
	// §3.2: Android version and 5G capability drive failures; both should
	// correlate positively with prevalence, and Android 10 strongly so.
	if byName["android10"].WithPrevalence <= 0.2 {
		t.Errorf("android10 r = %+.2f, want clearly positive", byName["android10"].WithPrevalence)
	}
	if byName["5g_capable"].WithPrevalence <= 0 {
		t.Errorf("5g r = %+.2f, want positive", byName["5g_capable"].WithPrevalence)
	}
	// The counter-intuitive §3.2 finding: better hardware does NOT reduce
	// failures (its correlation with prevalence is not negative).
	if byName["cpu_ghz"].WithPrevalence < -0.1 {
		t.Errorf("cpu r = %+.2f; better hardware should not appear protective", byName["cpu_ghz"].WithPrevalence)
	}
	out := RenderCorrelation(rows)
	if !strings.Contains(out, "android10") {
		t.Error("render broken")
	}
}

func TestBuildReport(t *testing.T) {
	van, pat := setup(t)
	o := vanillaReS.Overhead
	overhead := CheckOverhead(o.MeanCPUUtilization, o.MaxCPUUtilization, o.MaxMemoryBytes, o.MaxStorageBytes, o.MaxNetworkBytes, 8)
	rep := BuildReport(van, &pat, ReportConfig{
		Devices:   vanillaReS.Population.Total,
		Months:    8,
		Seed:      17,
		Catalogue: catalogueCE,
		TIMP:      &TIMPSummary{Probations: [3]float64{21, 6, 16}, Cost: 27.8, DefaultCost: 38, Improvement: 0.268, Samples: 1000},
		Overhead:  &overhead,
		FPClasses: map[string]int{"bs-overload": 10, "system-side": 3},
		Recorded:  vanillaReS.Dataset.Len(),
	})
	if len(rep.GeneralRows) < 10 {
		t.Fatalf("general rows = %d", len(rep.GeneralRows))
	}
	md := rep.Markdown(time.Second)
	for _, want := range []string{
		"# EXPERIMENTS", "Table 1", "Table 2", "Figure 10", "Figure 11",
		"Figure 15", "Figure 17", "TIMP", "Figures 19–21", "Monitoring overhead",
		"False-positive filtering", "5G failure frequency change",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// Without optional blocks, the report still builds.
	slim := BuildReport(van, nil, ReportConfig{Catalogue: catalogueCE})
	if strings.Contains(slim.Markdown(0), "Figures 19–21") {
		t.Error("enhancement section should be absent without a patched input")
	}
}

func TestTimeSeriesStationaryAndSpikes(t *testing.T) {
	in, _ := setup(t)
	series := TimeSeries(in, 7*24*time.Hour)
	if len(series) < 30 {
		t.Fatalf("buckets = %d over 8 months of weekly buckets", len(series))
	}
	// The vanilla generator is stationary: no bucket dwarfs the median.
	if idx := SpikeIndex(series); idx > 3 {
		t.Errorf("spike index = %.1f for a stationary fleet", idx)
	}
	total := 0
	for _, b := range series {
		total += b.Total
		if b.ByKind == nil {
			t.Fatal("bucket without kind map")
		}
	}
	if total != in.Dataset.Len() {
		t.Errorf("series total %d, dataset %d", total, in.Dataset.Len())
	}
	if SpikeIndex(nil) != 0 {
		t.Error("empty series spike index should be 0")
	}
}

func TestByRegionNeglectedRemote(t *testing.T) {
	in, _ := setup(t)
	rows := ByRegion(in)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byRegion := map[string]RegionStats{}
	for _, r := range rows {
		byRegion[r.Region.String()] = r
	}
	urban, remote := byRegion["urban"], byRegion["remote"]
	if urban.Events == 0 {
		t.Fatal("no urban failures")
	}
	// Urban hosts the most failures (crowded areas, §3.3)...
	for _, r := range rows {
		if r.Region.String() != "urban" && r.Events > urban.Events {
			t.Errorf("%v events %d exceed urban %d", r.Region, r.Events, urban.Events)
		}
	}
	// ...while remote failures last far longer (neglected infrastructure).
	if remote.Events > 0 && remote.MeanDuration < 2*urban.MeanDuration {
		t.Errorf("remote mean %v should dwarf urban %v", remote.MeanDuration, urban.MeanDuration)
	}
}

func TestGuidelinesDerivedFromData(t *testing.T) {
	in, _ := setup(t)
	gs := Guidelines(in)
	// Every §4.1 recommendation should fire on a standard vanilla fleet.
	if len(gs) < 5 {
		t.Fatalf("guidelines = %d, want the full §4.1 set", len(gs))
	}
	audiences := map[Audience]int{}
	for _, g := range gs {
		audiences[g.Audience]++
		if g.Finding == "" || g.Advice == "" || g.Evidence == "" {
			t.Errorf("incomplete guideline: %+v", g)
		}
	}
	for _, a := range []Audience{AudienceVendor, AudienceISP, AudienceOS} {
		if audiences[a] == 0 {
			t.Errorf("no guidance for %s", a)
		}
	}
	out := RenderGuidelines(gs)
	if !strings.Contains(out, "TIMP") || !strings.Contains(out, "idle 3G") {
		t.Errorf("render missing key recommendations:\n%s", out)
	}
}

func TestGuidelinesEmptyDataset(t *testing.T) {
	in := Input{
		Dataset:     trace.NewDataset(),
		Transitions: &fleet.TransitionMatrix{},
		Dwell:       &fleet.DwellStats{},
		Network:     simnet.FromStations(nil),
	}
	// No findings hold on an empty dataset; must not panic and must stay
	// quiet rather than inventing advice.
	if gs := Guidelines(in); len(gs) != 0 {
		t.Errorf("empty dataset produced %d guidelines", len(gs))
	}
}

func TestClaimsAllPassOnStandardFleet(t *testing.T) {
	in, _ := setup(t)
	results := CheckClaims(in)
	if len(results) < 15 {
		t.Fatalf("claims = %d", len(results))
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("[%s] failed: %s (measured: %s)", r.ID, r.Text, r.Detail)
		}
	}
	out := RenderClaims(results)
	if !strings.Contains(out, "claims reproduced") {
		t.Error("render broken")
	}
}

func TestEstimateOpSuccess(t *testing.T) {
	in, _ := setup(t)
	est := EstimateOpSuccess(in)
	if est.Executions[0] == 0 {
		t.Fatal("no first-stage executions observed")
	}
	// Paper: cleanup fixes ~75% once executed; our generator uses the
	// same rate, so the estimate should land near it.
	if math.Abs(est.Rates[0]-0.75) > 0.1 {
		t.Errorf("op1 rate = %.2f, want ≈0.75", est.Rates[0])
	}
	// Later stages execute less often (earlier stages fix most stalls).
	if est.Executions[1] >= est.Executions[0] || est.Executions[2] >= est.Executions[1] {
		t.Errorf("execution counts not decreasing: %v", est.Executions)
	}
	for i, r := range est.Rates {
		if r < 0 || r > 1 {
			t.Errorf("rate %d = %v", i, r)
		}
	}
}

func TestRenderRegions(t *testing.T) {
	in, _ := setup(t)
	out := RenderRegions(ByRegion(in))
	if !strings.Contains(out, "remote") || !strings.Contains(out, "urban") {
		t.Errorf("render: %s", out)
	}
}
