package analysis

import (
	"encoding/json"
	"time"

	"repro/internal/failure"
	"repro/internal/telephony"
)

// This file defines the canonical machine-readable rendering of a pass:
// every figure the fused engine extracts, marshaled with a fixed field
// order and fixed topN/point counts. The byte layout is the streaming=batch
// contract (invariant I5): `cellanalyze -figures-json` over a final
// snapshot and `/api/live/figures` after the collector drains must produce
// *identical bytes*, because both call FiguresJSON over equal accumulator
// state. Anything order-sensitive (map iteration, topN ties) is resolved
// deterministically before marshaling: maps become kind-ordered slices,
// and every ranking the engine emits already breaks ties on stable keys.

// jsonTopCounts caps Figure 11's per-BS count dump in the JSON document;
// the full ranking is summarized by the fit and the moments.
const jsonTopCounts = 100

// jsonCDFPoints is the fixed number of CDF sample points per figure.
const jsonCDFPoints = 64

// KindMeanDoc is one per-kind mean in Figure 3's JSON rendering.
type KindMeanDoc struct {
	Kind string  `json:"kind"`
	Mean float64 `json:"mean"`
}

// Figure3Doc is Figure 3 in JSON form.
type Figure3Doc struct {
	Mean         float64       `json:"mean"`
	Max          float64       `json:"max"`
	ZeroShare    float64       `json:"zero_share"`
	OOSFreeShare float64       `json:"oos_free_share"`
	MeanPerKind  []KindMeanDoc `json:"mean_per_kind"`
	CDF          [][2]float64  `json:"cdf"`
}

// DurationDoc is a duration distribution in JSON form (durations in
// nanoseconds, CDF over seconds).
type DurationDoc struct {
	Mean       time.Duration `json:"mean_ns"`
	Median     time.Duration `json:"median_ns"`
	Max        time.Duration `json:"max_ns"`
	Under30    float64       `json:"under_30s"`
	StallShare float64       `json:"stall_share_of_duration"`
	CDF        [][2]float64  `json:"cdf_s"`
}

func durationDoc(d DurationStats) DurationDoc {
	return DurationDoc{
		Mean: d.Mean, Median: d.Median, Max: d.Max,
		Under30: d.Under30, StallShare: d.StallShareOfDuration,
		CDF: d.CDF.Points(jsonCDFPoints),
	}
}

// KindDurationDoc is one failure kind's duration distribution.
type KindDurationDoc struct {
	Kind string      `json:"kind"`
	Dist DurationDoc `json:"dist"`
}

// GroupDoc is a device-group prevalence/frequency pair.
type GroupDoc struct {
	Name       string  `json:"name"`
	Devices    int     `json:"devices"`
	Failing    int     `json:"failing"`
	Events     int     `json:"events"`
	Prevalence float64 `json:"prevalence"`
	Frequency  float64 `json:"frequency"`
}

func groupDoc(g GroupStats) GroupDoc {
	return GroupDoc{Name: g.Name, Devices: g.Devices, Failing: g.Failing,
		Events: g.Events, Prevalence: g.Prevalence, Frequency: g.Frequency}
}

// Figure10Doc is the Data_Stall self-recovery distribution.
type Figure10Doc struct {
	Under10        float64      `json:"under_10s"`
	Under300       float64      `json:"under_300s"`
	FirstOpFixRate float64      `json:"first_op_fix_rate"`
	CDF            [][2]float64 `json:"cdf_s"`
}

// Figure11Doc is the BS failure ranking summary.
type Figure11Doc struct {
	Stations      int      `json:"stations"`
	FitA          float64  `json:"zipf_a"`
	FitB          float64  `json:"zipf_b"`
	FitR2         float64  `json:"zipf_r2"`
	Median        float64  `json:"median"`
	Mean          float64  `json:"mean"`
	Max           uint64   `json:"max"`
	TopUrbanShare float64  `json:"top_urban_share"`
	TopCounts     []uint64 `json:"top_counts"`
}

// RATDoc is one RAT's normalized failure prevalence (Figure 14).
type RATDoc struct {
	RAT        string  `json:"rat"`
	Events     int64   `json:"events"`
	DwellHours float64 `json:"dwell_hours"`
	Prevalence float64 `json:"prevalence_per_1000h"`
	BSes       int64   `json:"bses"`
}

// LevelDoc is one signal level's normalized prevalence (Figures 15/16).
type LevelDoc struct {
	Level      int     `json:"level"`
	Raw        float64 `json:"raw"`
	Normalized float64 `json:"normalized"`
	Exposed    int64   `json:"exposed"`
}

func levelDocs(levels [telephony.NumSignalLevels]LevelPrevalence) []LevelDoc {
	out := make([]LevelDoc, 0, len(levels))
	for _, l := range levels {
		out = append(out, LevelDoc{Level: int(l.Level), Raw: l.Raw, Normalized: l.Normalized, Exposed: l.Exposed})
	}
	return out
}

// TransitionDoc is one Figure 17 panel.
type TransitionDoc struct {
	FromRAT  string                                                        `json:"from_rat"`
	ToRAT    string                                                        `json:"to_rat"`
	MeanRate float64                                                       `json:"mean_rate"`
	Increase [telephony.NumSignalLevels][telephony.NumSignalLevels]float64 `json:"increase"`
	Observed [telephony.NumSignalLevels][telephony.NumSignalLevels]bool    `json:"observed"`
}

// RegionDoc is one region's failure statistics.
type RegionDoc struct {
	Region       string        `json:"region"`
	Events       int           `json:"events"`
	MeanDuration time.Duration `json:"mean_duration_ns"`
	MaxDuration  time.Duration `json:"max_duration_ns"`
}

// Table1Doc is one Table 1 row.
type Table1Doc struct {
	ModelID         int     `json:"model_id"`
	FiveG           bool    `json:"five_g"`
	Android         int     `json:"android"`
	Devices         int     `json:"devices"`
	Prevalence      float64 `json:"prevalence"`
	Frequency       float64 `json:"frequency"`
	PaperPrevalence float64 `json:"paper_prevalence"`
	PaperFrequency  float64 `json:"paper_frequency"`
}

// Table2Doc is one Table 2 row.
type Table2Doc struct {
	Cause      int     `json:"cause"`
	Name       string  `json:"name"`
	Share      float64 `json:"share"`
	PaperShare float64 `json:"paper_share"`
}

// CorrelationDoc is one §3.2 feature-correlation row.
type CorrelationDoc struct {
	Feature        string  `json:"feature"`
	WithPrevalence float64 `json:"with_prevalence"`
	WithFrequency  float64 `json:"with_frequency"`
}

// OpSuccessDoc is the measured recovery-operation effectiveness.
type OpSuccessDoc struct {
	Rates      [3]float64 `json:"rates"`
	Executions [3]int     `json:"executions"`
}

// FiguresDoc bundles every figure of one pass for JSON rendering.
type FiguresDoc struct {
	Events      int               `json:"events"`
	Table1      []Table1Doc       `json:"table1"`
	Table2      []Table2Doc       `json:"table2"`
	Correlation []CorrelationDoc  `json:"correlation"`
	Figure3     Figure3Doc        `json:"figure3"`
	Figure4     DurationDoc       `json:"figure4"`
	ByKind      []KindDurationDoc `json:"duration_by_kind"`
	FiveG       GroupDoc          `json:"by_5g"`
	Non5G       GroupDoc          `json:"by_5g_control"`
	Android9    GroupDoc          `json:"by_android9"`
	Android10   GroupDoc          `json:"by_android10"`
	ByISP       []GroupDoc        `json:"by_isp"`
	Figure10    Figure10Doc       `json:"figure10"`
	Figure11    Figure11Doc       `json:"figure11"`
	Figure14    []RATDoc          `json:"figure14"`
	Figure15    []LevelDoc        `json:"figure15"`
	Figure16A   []LevelDoc        `json:"figure16_4g"`
	Figure16B   []LevelDoc        `json:"figure16_5g"`
	Figure17    []TransitionDoc   `json:"figure17"`
	Regions     []RegionDoc       `json:"regions"`
	OpSuccess   OpSuccessDoc      `json:"op_success"`
}

// FiguresDocOf extracts every figure from a pass into the canonical
// document. It works identically whether the pass came from a batch sweep
// or from the streaming engine's accumulators.
func FiguresDocOf(p *Pass, catalogue []ModelCatalogueEntry) FiguresDoc {
	doc := FiguresDoc{Events: len(p.allDurations())}

	for _, r := range p.Table1(catalogue) {
		doc.Table1 = append(doc.Table1, Table1Doc{
			ModelID: r.ModelID, FiveG: r.FiveG, Android: r.Android, Devices: r.Devices,
			Prevalence: r.Prevalence, Frequency: r.Frequency,
			PaperPrevalence: r.PaperPrevalence, PaperFrequency: r.PaperFrequency,
		})
	}
	for _, r := range p.Table2(10) {
		doc.Table2 = append(doc.Table2, Table2Doc{
			Cause: int(r.Cause), Name: r.Name, Share: r.Share, PaperShare: r.PaperShare,
		})
	}
	for _, c := range p.HardwareCorrelation(catalogue) {
		doc.Correlation = append(doc.Correlation, CorrelationDoc{
			Feature: c.Feature, WithPrevalence: c.WithPrevalence, WithFrequency: c.WithFrequency,
		})
	}

	f3 := p.Figure3()
	doc.Figure3 = Figure3Doc{
		Mean: f3.Mean, Max: f3.Max, ZeroShare: f3.ZeroShare, OOSFreeShare: f3.OOSFreeShare,
		CDF: f3.CDF.Points(jsonCDFPoints),
	}
	for k := failure.Kind(0); k < failure.NumKinds; k++ {
		doc.Figure3.MeanPerKind = append(doc.Figure3.MeanPerKind,
			KindMeanDoc{Kind: k.String(), Mean: f3.MeanPerKind[k]})
	}

	doc.Figure4 = durationDoc(p.Figure4())

	byKind := p.DurationByKind()
	for k := failure.Kind(0); k < failure.NumKinds; k++ {
		d, ok := byKind[k]
		if !ok {
			continue
		}
		doc.ByKind = append(doc.ByKind, KindDurationDoc{Kind: k.String(), Dist: durationDoc(d)})
	}

	f5, n5 := p.By5G()
	doc.FiveG, doc.Non5G = groupDoc(f5), groupDoc(n5)
	a9, a10 := p.ByAndroidVersion()
	doc.Android9, doc.Android10 = groupDoc(a9), groupDoc(a10)
	for _, g := range p.ByISP() {
		doc.ByISP = append(doc.ByISP, groupDoc(g))
	}

	f10 := p.Figure10()
	doc.Figure10 = Figure10Doc{
		Under10: f10.Under10, Under300: f10.Under300, FirstOpFixRate: f10.FirstOpFixRate,
		CDF: f10.CDF.Points(jsonCDFPoints),
	}

	f11 := p.Figure11(jsonTopCounts)
	top := f11.Counts
	if len(top) > jsonTopCounts {
		top = top[:jsonTopCounts]
	}
	doc.Figure11 = Figure11Doc{
		Stations: len(f11.Counts),
		FitA:     f11.Fit.A, FitB: f11.Fit.B, FitR2: f11.Fit.R2,
		Median: f11.Median, Mean: f11.Mean, Max: f11.Max,
		TopUrbanShare: f11.TopUrbanShare,
		TopCounts:     append([]uint64(nil), top...),
	}

	for _, r := range p.Figure14() {
		doc.Figure14 = append(doc.Figure14, RATDoc{
			RAT: r.RAT.String(), Events: r.Events, DwellHours: r.DwellHours,
			Prevalence: r.Prevalence, BSes: r.BSes,
		})
	}
	doc.Figure15 = levelDocs(p.Figure15())
	doc.Figure16A = levelDocs(p.Figure16(telephony.RAT4G))
	doc.Figure16B = levelDocs(p.Figure16(telephony.RAT5G))

	for _, pair := range Figure17Pairs() {
		panel := p.Figure17(pair[0], pair[1])
		doc.Figure17 = append(doc.Figure17, TransitionDoc{
			FromRAT: panel.FromRAT.String(), ToRAT: panel.ToRAT.String(),
			MeanRate: panel.MeanRate, Increase: panel.Increase, Observed: panel.Observed,
		})
	}

	for _, r := range p.ByRegion() {
		doc.Regions = append(doc.Regions, RegionDoc{
			Region: r.Region.String(), Events: r.Events,
			MeanDuration: r.MeanDuration, MaxDuration: r.MaxDuration,
		})
	}

	op := p.EstimateOpSuccess()
	doc.OpSuccess = OpSuccessDoc{Rates: op.Rates, Executions: op.Executions}
	return doc
}

// marshalDoc is the single marshal call both the batch CLI and the live
// endpoints use — indentation and the trailing newline are part of the
// pinned byte layout.
func marshalDoc(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FiguresJSON renders the canonical figures document for a pass.
func (p *Pass) FiguresJSON(catalogue []ModelCatalogueEntry) ([]byte, error) {
	return marshalDoc(FiguresDocOf(p, catalogue))
}

// ClaimsDoc is the claims scorecard in JSON form.
type ClaimsDoc struct {
	Passed int           `json:"passed"`
	Total  int           `json:"total"`
	Claims []ClaimResult `json:"claims"`
}

// ClaimsDocOf evaluates every claim against a pass.
func ClaimsDocOf(p *Pass) ClaimsDoc {
	rs := p.Claims()
	doc := ClaimsDoc{Total: len(rs), Claims: rs}
	for _, r := range rs {
		if r.Pass {
			doc.Passed++
		}
	}
	return doc
}

// ClaimsJSON renders the claims scorecard for a pass.
func (p *Pass) ClaimsJSON() ([]byte, error) {
	return marshalDoc(ClaimsDocOf(p))
}
