package analysis

import (
	"slices"
	"time"

	"repro/internal/android"
	"repro/internal/failure"
	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telephony"
)

// numRATs mirrors the fleet aggregates' RAT axis (unknown + 2G..5G).
const numRATs = 5

// ---------------------------------------------------------------------------
// deviceVisitor: every per-device aggregate of the pass in ONE lookup per
// event. Table 1, Figure 3, the group comparisons (Figures 6-9, 12-13),
// the signal-level device sets (Figures 15/16) and the 5G per-kind
// enhancement numerators all key by DeviceID; folding them into a single
// state record is what makes the fused pass beat the legacy scans — the
// old path paid four separate map operations per event for the same
// figures.

// devState is one device's accumulated state. levelBits packs the Figure
// 15/16 "device failed at this level (per RAT / any RAT)" sets into a
// bitmask: bit rat*NumSignalLevels+level for rat < numRATs, bit 30+level
// for any-RAT (36 bits used).
type devState struct {
	seen        bool
	fiveG       bool
	android     int8
	modelID     int32
	isp         simnet.ISPID
	total       int32
	byKind      [failure.NumKinds]int32
	fiveGByKind [failure.NumKinds]int32
	levelBits   uint64
}

// denseDeviceLimit bounds the slice-backed fast path. Fleet device IDs are
// small sequential integers, so virtually all traffic takes the dense
// branch; arbitrary 64-bit IDs spill to the sparse map.
const denseDeviceLimit = 1 << 21

type deviceVisitor struct {
	dense  []devState
	sparse map[uint64]*devState
}

func newDeviceVisitor(hint int) *deviceVisitor {
	v := &deviceVisitor{sparse: map[uint64]*devState{}}
	// Pre-size the dense array for large passes: fleet device IDs are small
	// sequential integers, so a million-event pass would otherwise pay a
	// chain of grow-copies on its way up from the initial size.
	if n := hint / 32; n >= 1024 {
		if n > 1<<15 {
			n = 1 << 15
		}
		v.dense = make([]devState, n)
	}
	return v
}

func (v *deviceVisitor) state(id uint64) *devState {
	if id < denseDeviceLimit {
		if i := int(id); i < len(v.dense) {
			return &v.dense[i]
		}
		v.growDense(int(id) + 1)
		return &v.dense[id]
	}
	d := v.sparse[id]
	if d == nil {
		d = &devState{}
		v.sparse[id] = d
	}
	return d
}

func (v *deviceVisitor) growDense(n int) {
	if cap(v.dense) >= n {
		v.dense = v.dense[:n]
		return
	}
	c := 2 * cap(v.dense)
	if c < 1024 {
		c = 1024
	}
	if c < n {
		c = n
	}
	if c > denseDeviceLimit {
		c = denseDeviceLimit
	}
	grown := make([]devState, n, c)
	copy(grown, v.dense)
	v.dense = grown
}

func (v *deviceVisitor) Visit(e *failure.Event) {
	d := v.state(e.DeviceID)
	if !d.seen {
		d.seen = true
		d.modelID = int32(e.ModelID)
		d.android = int8(e.AndroidVersion)
		d.fiveG = e.FiveGCapable
		d.isp = e.ISP
	}
	d.total++
	if int(e.Kind) < failure.NumKinds {
		d.byKind[e.Kind]++
		if e.FiveGCapable {
			d.fiveGByKind[e.Kind]++
		}
	}
	if e.Level.Valid() {
		d.levelBits |= 1 << (30 + uint(e.Level))
		if int(e.RAT) < numRATs {
			d.levelBits |= 1 << (uint(e.RAT)*telephony.NumSignalLevels + uint(e.Level))
		}
	}
}

// each visits every device's state. Finishers only consume per-device
// aggregates whose combination is order-independent (integer sums, set
// sizes, ECDF inputs that are sorted on construction), so iteration order
// does not affect any figure.
func (v *deviceVisitor) each(fn func(id uint64, d *devState)) {
	for i := range v.dense {
		if v.dense[i].seen {
			fn(uint64(i), &v.dense[i])
		}
	}
	for id, d := range v.sparse {
		fn(id, d)
	}
}

func (v *deviceVisitor) Merge(other Visitor) {
	// A device's first event in shard order supplies its metadata, exactly
	// as a sequential scan would; later shards only add counts and bits.
	other.(*deviceVisitor).each(func(id uint64, od *devState) {
		d := v.state(id)
		if !d.seen {
			*d = *od
			return
		}
		d.total += od.total
		for k := range d.byKind {
			d.byKind[k] += od.byKind[k]
			d.fiveGByKind[k] += od.fiveGByKind[k]
		}
		d.levelBits |= od.levelBits
	})
}

func (v *deviceVisitor) table1(pop fleet.Population, catalogue []ModelCatalogueEntry) []ModelRow {
	failing := make(map[int]int)
	events := make(map[int]int)
	v.each(func(_ uint64, d *devState) {
		failing[int(d.modelID)]++
		events[int(d.modelID)] += int(d.total)
	})
	rows := make([]ModelRow, 0, len(catalogue))
	for _, m := range catalogue {
		devices := pop.ByModel[m.ID]
		row := ModelRow{
			ModelID: m.ID, FiveG: m.FiveG, Android: m.Android,
			Devices:         devices,
			PaperPrevalence: m.Prevalence,
			PaperFrequency:  m.Frequency,
		}
		if devices > 0 {
			row.Prevalence = float64(failing[m.ID]) / float64(devices)
			row.Frequency = float64(events[m.ID]) / float64(devices)
		}
		rows = append(rows, row)
	}
	return rows
}

func (v *deviceVisitor) figure3(pop fleet.Population) FailuresPerPhone {
	total := pop.Total
	out := FailuresPerPhone{MeanPerKind: map[failure.Kind]float64{}}
	counts := make([]float64, 0, total)
	failingDevs := 0
	oosDevices := 0
	var sum float64
	kindSums := map[failure.Kind]float64{}
	v.each(func(_ uint64, d *devState) {
		failingDevs++
		c := float64(d.total)
		counts = append(counts, c)
		sum += c
		if c > out.Max {
			out.Max = c
		}
		for k, n := range d.byKind {
			kindSums[failure.Kind(k)] += float64(n)
		}
		if d.byKind[failure.OutOfService] > 0 {
			oosDevices++
		}
	})
	for i := failingDevs; i < total; i++ {
		counts = append(counts, 0)
	}
	out.CDF = stats.NewECDF(counts)
	if total > 0 {
		out.Mean = sum / float64(total)
		out.ZeroShare = float64(total-failingDevs) / float64(total)
		out.OOSFreeShare = float64(total-oosDevices) / float64(total)
		for k, s := range kindSums {
			out.MeanPerKind[k] = s / float64(total)
		}
	}
	return out
}

func (v *deviceVisitor) by5G(pop fleet.Population) (fiveG, non5G GroupStats) {
	var f5, e5, f10, e10 int
	v.each(func(_ uint64, d *devState) {
		switch {
		case d.fiveG:
			f5++
			e5 += int(d.total)
		case d.android == 10:
			f10++
			e10 += int(d.total)
		}
	})
	return makeGroup("5G", pop.FiveG, f5, e5),
		makeGroup("non-5G (Android 10)", pop.Android10No5G, f10, e10)
}

func (v *deviceVisitor) byAndroidVersion(pop fleet.Population) (android9, android10 GroupStats) {
	var f9, e9, f10, e10 int
	v.each(func(_ uint64, d *devState) {
		switch {
		case d.android == 9:
			f9++
			e9 += int(d.total)
		case !d.fiveG:
			f10++
			e10 += int(d.total)
		}
	})
	return makeGroup("Android 9", pop.Android9, f9, e9),
		makeGroup("Android 10 (non-5G)", pop.Android10No5G, f10, e10)
}

func (v *deviceVisitor) byISP(pop fleet.Population) [simnet.NumISPs]GroupStats {
	var failing, events [simnet.NumISPs]int
	v.each(func(_ uint64, d *devState) {
		failing[d.isp]++
		events[d.isp] += int(d.total)
	})
	var out [simnet.NumISPs]GroupStats
	for i := range out {
		id := simnet.ISPID(i)
		out[i] = makeGroup(id.String(), pop.ByISP[i], failing[i], events[i])
	}
	return out
}

func (v *deviceVisitor) figure15(dwell *fleet.DwellStats) [telephony.NumSignalLevels]LevelPrevalence {
	var failing [telephony.NumSignalLevels]int
	v.each(func(_ uint64, d *devState) {
		for l := 0; l < telephony.NumSignalLevels; l++ {
			if d.levelBits&(1<<(30+uint(l))) != 0 {
				failing[l]++
			}
		}
	})
	var out [telephony.NumSignalLevels]LevelPrevalence
	for l := 0; l < telephony.NumSignalLevels; l++ {
		var exposed int64
		var seconds float64
		for rat := 0; rat < numRATs; rat++ {
			exposed += dwell.DevicesExposed[rat][l]
			seconds += dwell.Seconds[rat][l]
		}
		row := LevelPrevalence{Level: telephony.SignalLevel(l), Exposed: exposed}
		if exposed > 0 {
			row.Raw = float64(failing[l]) / float64(exposed)
			meanHours := seconds / float64(exposed) / 3600
			if meanHours > 0 {
				row.Normalized = row.Raw / meanHours
			}
		}
		out[l] = row
	}
	return out
}

func (v *deviceVisitor) figure16(dwell *fleet.DwellStats, rat telephony.RAT) [telephony.NumSignalLevels]LevelPrevalence {
	var failing [telephony.NumSignalLevels]int
	v.each(func(_ uint64, d *devState) {
		for l := 0; l < telephony.NumSignalLevels; l++ {
			if d.levelBits&(1<<(uint(rat)*telephony.NumSignalLevels+uint(l))) != 0 {
				failing[l]++
			}
		}
	})
	var out [telephony.NumSignalLevels]LevelPrevalence
	for l := 0; l < telephony.NumSignalLevels; l++ {
		exposed := dwell.DevicesExposed[rat][l]
		seconds := dwell.Seconds[rat][l]
		row := LevelPrevalence{Level: telephony.SignalLevel(l), Exposed: exposed}
		if exposed > 0 {
			row.Raw = float64(failing[l]) / float64(exposed)
			meanHours := seconds / float64(exposed) / 3600
			if meanHours > 0 {
				row.Normalized = row.Raw / meanHours
			}
		}
		out[l] = row
	}
	return out
}

// kindAgg is a per-kind 5G aggregate: distinct failing devices and events.
type kindAgg struct {
	devices, events int
}

func (v *deviceVisitor) fiveGKindStats() map[failure.Kind]kindAgg {
	var devices, events [failure.NumKinds]int
	v.each(func(_ uint64, d *devState) {
		for k := 0; k < failure.NumKinds; k++ {
			if n := d.fiveGByKind[k]; n > 0 {
				devices[k]++
				events[k] += int(n)
			}
		}
	})
	out := map[failure.Kind]kindAgg{}
	for k := 0; k < failure.NumKinds; k++ {
		if events[k] > 0 {
			out[failure.Kind(k)] = kindAgg{devices: devices[k], events: events[k]}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// causeVisitor: Table 2's Data_Setup_Error cause decomposition.

type causeVisitor struct {
	counts map[telephony.FailCause]int
	total  int
}

func newCauseVisitor() *causeVisitor { return &causeVisitor{counts: map[telephony.FailCause]int{}} }

func (v *causeVisitor) Visit(e *failure.Event) {
	if e.Kind == failure.DataSetupError {
		v.counts[e.Cause]++
		v.total++
	}
}

func (v *causeVisitor) Merge(other Visitor) {
	o := other.(*causeVisitor)
	for cause, n := range o.counts {
		v.counts[cause] += n
	}
	v.total += o.total
}

func (v *causeVisitor) table2(topN int) []CauseRow {
	rows := make([]CauseRow, 0, len(v.counts))
	for cause, n := range v.counts {
		info := telephony.Info(cause)
		rows = append(rows, CauseRow{
			Cause:       cause,
			Name:        info.Name,
			Description: info.Description,
			Share:       float64(n) / float64(max(v.total, 1)),
			PaperShare:  info.Table2Share / 100,
		})
	}
	// Ties broken by cause code so the topN cut is deterministic across
	// map iteration orders.
	slices.SortFunc(rows, func(a, b CauseRow) int {
		if a.Share != b.Share {
			if a.Share > b.Share {
				return -1
			}
			return 1
		}
		return int(a.Cause) - int(b.Cause)
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

// ---------------------------------------------------------------------------
// durationVisitor: Figure 4 plus the all-failure duration samples the
// enhancement comparison winsorizes.

type durationVisitor struct {
	durs         []float64
	total, stall time.Duration
	maxDur       time.Duration
}

// newDurationVisitor pre-sizes the sample slice; hint is the number of
// events this visitor instance is expected to see (0 if unknown).
func newDurationVisitor(hint int) *durationVisitor {
	v := &durationVisitor{}
	if hint > 0 {
		v.durs = make([]float64, 0, hint)
	}
	return v
}

func (v *durationVisitor) Visit(e *failure.Event) {
	v.visitSec(e, e.Duration.Seconds())
}

// visitSec is Visit with the seconds conversion hoisted, so a composite
// visitor can share one conversion across sub-visitors.
func (v *durationVisitor) visitSec(e *failure.Event, sec float64) {
	v.durs = append(v.durs, sec)
	v.total += e.Duration
	if e.Kind == failure.DataStall {
		v.stall += e.Duration
	}
	if e.Duration > v.maxDur {
		v.maxDur = e.Duration
	}
}

func (v *durationVisitor) Merge(other Visitor) {
	o := other.(*durationVisitor)
	v.durs = append(v.durs, o.durs...)
	v.total += o.total
	v.stall += o.stall
	if o.maxDur > v.maxDur {
		v.maxDur = o.maxDur
	}
}

func (v *durationVisitor) figure4() DurationStats {
	out := DurationStats{CDF: stats.NewECDF(v.durs), Max: v.maxDur}
	if len(v.durs) > 0 {
		out.Mean = time.Duration(out.CDF.Mean() * float64(time.Second))
		out.Median = time.Duration(out.CDF.Quantile(0.5) * float64(time.Second))
		out.Under30 = out.CDF.P(30)
	}
	if v.total > 0 {
		out.StallShareOfDuration = float64(v.stall) / float64(v.total)
	}
	return out
}

// ---------------------------------------------------------------------------
// kindDurationVisitor: per-kind duration samples (DurationByKind and the
// enhancement comparison's winsorized/KS inputs), array-indexed by kind.

type kindDurationVisitor struct {
	byKind [failure.NumKinds][]float64
	hint   int
}

// newKindDurationVisitor pre-sizes each kind's sample slice on first use;
// hint is the number of events this visitor instance is expected to see
// (0 if unknown).
func newKindDurationVisitor(hint int) *kindDurationVisitor {
	// Half the pass, not a NumKinds split: the trace is dominated by two or
	// three kinds, and a mid-stream grow-copy of a multi-megabyte slice
	// costs far more than the over-reserved capacity.
	return &kindDurationVisitor{hint: hint / 2}
}

func (v *kindDurationVisitor) Visit(e *failure.Event) {
	v.visitSec(e, e.Duration.Seconds())
}

func (v *kindDurationVisitor) visitSec(e *failure.Event, sec float64) {
	if int(e.Kind) < failure.NumKinds {
		xs := v.byKind[e.Kind]
		if xs == nil && v.hint > 0 {
			xs = make([]float64, 0, v.hint)
		}
		v.byKind[e.Kind] = append(xs, sec)
	}
}

func (v *kindDurationVisitor) Merge(other Visitor) {
	o := other.(*kindDurationVisitor)
	for k := range v.byKind {
		v.byKind[k] = append(v.byKind[k], o.byKind[k]...)
	}
}

func (v *kindDurationVisitor) kindDurations(kind failure.Kind) []float64 {
	if int(kind) < failure.NumKinds {
		return v.byKind[kind]
	}
	return nil
}

func (v *kindDurationVisitor) durationByKind() map[failure.Kind]DurationStats {
	out := map[failure.Kind]DurationStats{}
	for k := range v.byKind {
		xs := v.byKind[k]
		if len(xs) == 0 {
			continue
		}
		cdf := stats.NewECDF(xs)
		out[failure.Kind(k)] = DurationStats{
			CDF:    cdf,
			Mean:   time.Duration(cdf.Mean() * float64(time.Second)),
			Median: time.Duration(cdf.Quantile(0.5) * float64(time.Second)),
			Max:    time.Duration(cdf.Max() * float64(time.Second)),
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// stallVisitor: Figure 10's self-recovery distribution and the per-stage
// recovery-operation estimate, both restricted to Data_Stall events.

type stallVisitor struct {
	xs              []float64
	op1Exec, op1Fix int
	executions      [3]int
	fixed           [3]int
}

func newStallVisitor() *stallVisitor { return &stallVisitor{} }

func (v *stallVisitor) Visit(e *failure.Event) {
	if e.Kind != failure.DataStall {
		return
	}
	if e.AutoFixTime > 0 {
		v.xs = append(v.xs, e.AutoFixTime.Seconds())
	}
	if e.OpsExecuted >= 1 {
		v.op1Exec++
		if e.ResolvedBy == android.ResolvedOp1 {
			v.op1Fix++
		}
	}
	for stage := 0; stage < 3 && stage < e.OpsExecuted; stage++ {
		v.executions[stage]++
	}
	switch e.ResolvedBy {
	case android.ResolvedOp1:
		v.fixed[0]++
	case android.ResolvedOp2:
		v.fixed[1]++
	case android.ResolvedOp3:
		v.fixed[2]++
	}
}

func (v *stallVisitor) Merge(other Visitor) {
	o := other.(*stallVisitor)
	v.xs = append(v.xs, o.xs...)
	v.op1Exec += o.op1Exec
	v.op1Fix += o.op1Fix
	for i := range v.executions {
		v.executions[i] += o.executions[i]
		v.fixed[i] += o.fixed[i]
	}
}

func (v *stallVisitor) figure10() StallAutoFix {
	out := StallAutoFix{CDF: stats.NewECDF(v.xs)}
	if len(v.xs) > 0 {
		out.Under10 = out.CDF.P(10)
		out.Under300 = out.CDF.P(300)
	}
	if v.op1Exec > 0 {
		out.FirstOpFixRate = float64(v.op1Fix) / float64(v.op1Exec)
	}
	return out
}

func (v *stallVisitor) opSuccess() OpSuccessEstimate {
	est := OpSuccessEstimate{Executions: v.executions}
	for i := 0; i < 3; i++ {
		if est.Executions[i] > 0 {
			est.Rates[i] = float64(v.fixed[i]) / float64(est.Executions[i])
		}
	}
	return est
}

// ---------------------------------------------------------------------------
// bsVisitor: Figure 11's per-BS failure counts, in an open-addressed
// counter table. The per-event hot path is one hash + linear probe on flat
// arrays — measurably cheaper than a Go map at a million events, and the
// table is the single biggest per-event cost left after the device fusion.

// bsSlot keeps a station's key, count and urban flag in 16 bytes so a
// probe costs one cache line, not three. The urban flag rides in the top
// bit of cu; the low 63 bits are the count.
type bsSlot struct {
	key uint64
	cu  uint64
}

const bsUrbanBit = uint64(1) << 63

func (s *bsSlot) cnt() uint64   { return s.cu &^ bsUrbanBit }
func (s *bsSlot) isUrban() bool { return s.cu&bsUrbanBit != 0 }

type bsVisitor struct {
	slots []bsSlot
	used  int
	limit int // grow when used exceeds this (7/8 load factor)

	// GlobalID zero cannot live in slots (zero marks an empty slot), so it
	// gets dedicated fields.
	zeroCount uint64
	zeroUrban bool
}

const bsInitialSlots = 1 << 10

func newBSVisitor(hint int) *bsVisitor {
	// Size the table for the pass up front: a cell appears many times, so
	// hint/8 slots comfortably covers the unique-station count of a large
	// trace without the rehash chain from the minimum size.
	slots := bsInitialSlots
	for slots < hint/8 && slots < 1<<17 {
		slots *= 2
	}
	v := &bsVisitor{}
	v.alloc(slots)
	return v
}

func (v *bsVisitor) alloc(n int) {
	v.slots = make([]bsSlot, n)
	v.used = 0
	v.limit = n - n/8
}

// bsHash is a splitmix64-style finalizer: GlobalIDs concentrate entropy in
// a few bit ranges (MCC/MNC in the high bits), so they need mixing before
// masking down to a table index.
func bsHash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (v *bsVisitor) add(id, n uint64, urban bool) {
	if id == 0 {
		v.zeroCount += n
		v.zeroUrban = v.zeroUrban || urban
		return
	}
	if v.used >= v.limit {
		v.rehash()
	}
	cu := n
	if urban {
		cu |= bsUrbanBit
	}
	mask := uint64(len(v.slots) - 1)
	i := bsHash(id) & mask
	for {
		s := &v.slots[i]
		switch s.key {
		case id:
			s.cu = (s.cu + n) | (cu & bsUrbanBit)
			return
		case 0:
			s.key = id
			s.cu = cu
			v.used++
			return
		}
		i = (i + 1) & mask
	}
}

func (v *bsVisitor) rehash() {
	old := v.slots
	v.alloc(2 * len(old))
	for i := range old {
		if old[i].key != 0 {
			v.add(old[i].key, old[i].cnt(), old[i].isUrban())
		}
	}
}

func (v *bsVisitor) Visit(e *failure.Event) {
	v.add(e.Cell.GlobalID(), 1, e.Region == geo.Urban || e.Region == geo.TransportHub)
}

func (v *bsVisitor) Merge(other Visitor) {
	o := other.(*bsVisitor)
	for i := range o.slots {
		if s := &o.slots[i]; s.key != 0 {
			v.add(s.key, s.cnt(), s.isUrban())
		}
	}
	v.zeroCount += o.zeroCount
	v.zeroUrban = v.zeroUrban || o.zeroUrban
}

func (v *bsVisitor) figure11(topN int) BSRanking {
	type kv struct {
		id    uint64
		n     uint64
		urban bool
	}
	list := make([]kv, 0, v.used+1)
	for i := range v.slots {
		if s := &v.slots[i]; s.key != 0 {
			list = append(list, kv{s.key, s.cnt(), s.isUrban()})
		}
	}
	if v.zeroCount > 0 {
		list = append(list, kv{0, v.zeroCount, v.zeroUrban})
	}
	// Ties broken by BS id so the topN urban share is deterministic across
	// table layouts.
	slices.SortFunc(list, func(a, b kv) int {
		if a.n != b.n {
			if a.n > b.n {
				return -1
			}
			return 1
		}
		switch {
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		}
		return 0
	})

	out := BSRanking{}
	var sum uint64
	xs := make([]float64, len(list))
	for i, e := range list {
		out.Counts = append(out.Counts, e.n)
		sum += e.n
		xs[i] = float64(e.n)
		if e.n > out.Max {
			out.Max = e.n
		}
	}
	if len(list) > 0 {
		out.Mean = float64(sum) / float64(len(list))
		ecdf := stats.NewECDF(xs)
		out.Median = ecdf.Quantile(0.5)
		if fit, err := stats.FitZipf(out.Counts); err == nil {
			out.Fit = fit
		}
		if topN > len(list) {
			topN = len(list)
		}
		urbanTop := 0
		for _, e := range list[:topN] {
			if e.urban {
				urbanTop++
			}
		}
		if topN > 0 {
			out.TopUrbanShare = float64(urbanTop) / float64(topN)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// ratVisitor: Figure 14's per-RAT event counts (dwell and BS census come
// from the Input at finish time).

type ratVisitor struct {
	events [numRATs]int64
}

func newRATVisitor() *ratVisitor { return &ratVisitor{} }

func (v *ratVisitor) Visit(e *failure.Event) {
	if int(e.RAT) < len(v.events) {
		v.events[e.RAT]++
	}
}

func (v *ratVisitor) Merge(other Visitor) {
	o := other.(*ratVisitor)
	for i := range v.events {
		v.events[i] += o.events[i]
	}
}

func (v *ratVisitor) figure14(dwell *fleet.DwellStats, network *simnet.Network) []RATPrevalence {
	out := make([]RATPrevalence, 0, len(telephony.AllRATs))
	for _, rat := range telephony.AllRATs {
		row := RATPrevalence{RAT: rat, Events: v.events[rat]}
		for l := 0; l < telephony.NumSignalLevels; l++ {
			row.DwellHours += dwell.Seconds[rat][l] / 3600
		}
		for _, bs := range network.Stations {
			if bs.Supports(rat) {
				row.BSes++
			}
		}
		if row.DwellHours > 0 {
			row.Prevalence = float64(row.Events) / row.DwellHours * 1000
		}
		out = append(out, row)
	}
	return out
}

// ---------------------------------------------------------------------------
// regionVisitor: per-region failure statistics.

type regionVisitor struct {
	events [geo.NumRegions]int
	total  [geo.NumRegions]time.Duration
	maxd   [geo.NumRegions]time.Duration
}

func newRegionVisitor() *regionVisitor { return &regionVisitor{} }

func (v *regionVisitor) Visit(e *failure.Event) {
	r := e.Region
	if int(r) >= geo.NumRegions {
		return
	}
	v.events[r]++
	v.total[r] += e.Duration
	if e.Duration > v.maxd[r] {
		v.maxd[r] = e.Duration
	}
}

func (v *regionVisitor) Merge(other Visitor) {
	o := other.(*regionVisitor)
	for r := 0; r < geo.NumRegions; r++ {
		v.events[r] += o.events[r]
		v.total[r] += o.total[r]
		if o.maxd[r] > v.maxd[r] {
			v.maxd[r] = o.maxd[r]
		}
	}
}

func (v *regionVisitor) byRegion() []RegionStats {
	out := make([]RegionStats, 0, geo.NumRegions)
	for r := geo.Region(0); r < geo.NumRegions; r++ {
		rs := RegionStats{Region: r, Events: v.events[r], MaxDuration: v.maxd[r]}
		if v.events[r] > 0 {
			rs.MeanDuration = v.total[r] / time.Duration(v.events[r])
		}
		out = append(out, rs)
	}
	return out
}

// ---------------------------------------------------------------------------
// timeSeriesVisitor: the bucketed failure time series.

type timeSeriesVisitor struct {
	bucket time.Duration
	totals []int
	byKind []map[failure.Kind]int
}

func newTimeSeriesVisitor(bucket time.Duration) *timeSeriesVisitor {
	return &timeSeriesVisitor{bucket: bucket}
}

func (v *timeSeriesVisitor) Visit(e *failure.Event) {
	i := int(e.Start / v.bucket)
	if i < 0 {
		return
	}
	for len(v.totals) <= i {
		v.totals = append(v.totals, 0)
		v.byKind = append(v.byKind, nil)
	}
	v.totals[i]++
	if v.byKind[i] == nil {
		v.byKind[i] = map[failure.Kind]int{}
	}
	v.byKind[i][e.Kind]++
}

func (v *timeSeriesVisitor) Merge(other Visitor) {
	o := other.(*timeSeriesVisitor)
	for len(v.totals) < len(o.totals) {
		v.totals = append(v.totals, 0)
		v.byKind = append(v.byKind, nil)
	}
	for i, n := range o.totals {
		v.totals[i] += n
		for k, c := range o.byKind[i] {
			if v.byKind[i] == nil {
				v.byKind[i] = map[failure.Kind]int{}
			}
			v.byKind[i][k] += c
		}
	}
}

func (v *timeSeriesVisitor) series() []TimeBucket {
	n := len(v.totals)
	if n == 0 {
		n = 1 // an empty dataset still yields one empty bucket
	}
	out := make([]TimeBucket, n)
	for i := range out {
		out[i] = TimeBucket{Start: time.Duration(i) * v.bucket, ByKind: map[failure.Kind]int{}}
		if i < len(v.totals) {
			out[i].Total = v.totals[i]
			for k, c := range v.byKind[i] {
				out[i].ByKind[k] = c
			}
		}
	}
	return out
}
