package analysis

import (
	"time"

	"repro/internal/failure"
	"repro/internal/stats"
)

// windowQuantiles are the duration quantiles each window bucket's P²
// sketch tracks (seconds).
var windowQuantiles = []float64{0.5, 0.9, 0.99}

func newWindowSketch() *stats.QuantileSet {
	s, err := stats.NewQuantileSet(windowQuantiles...)
	if err != nil {
		// The quantile list is a compile-time constant in (0, 1).
		panic("analysis: invalid window quantiles: " + err.Error())
	}
	return s
}

// windowBucket is one bucket of the sliding window: counters plus an
// O(1)-memory duration sketch, so the window never retains raw samples.
type windowBucket struct {
	idx    int64 // absolute bucket index this slot holds; -1 = empty
	events int64
	byKind [failure.NumKinds]int64
	durSum float64 // seconds
	durMax float64 // seconds
	sketch *stats.QuantileSet
}

func (b *windowBucket) reset(idx int64) {
	b.idx = idx
	b.events = 0
	b.byKind = [failure.NumKinds]int64{}
	b.durSum, b.durMax = 0, 0
	b.sketch = newWindowSketch()
}

// windowAccum maintains a sliding window over the virtual timeline of
// event Start times: a ring of n buckets of width bucketDur, keyed by
// absolute bucket index (Start / bucketDur). The window covers the n most
// recent buckets ending at the highest index observed; events older than
// the floor are counted and dropped, and stale ring slots are reclaimed
// lazily on their next write. The accumulator is not safe for concurrent
// use — the streaming engine serializes access.
type windowAccum struct {
	bucketDur time.Duration
	buckets   []windowBucket
	head      int64 // highest absolute bucket index seen; -1 before any event
	late      int64 // events below the window floor, dropped
}

func newWindowAccum(n int, bucketDur time.Duration) *windowAccum {
	if n <= 0 {
		n = 1
	}
	if bucketDur <= 0 {
		bucketDur = time.Hour
	}
	w := &windowAccum{bucketDur: bucketDur, head: -1, buckets: make([]windowBucket, n)}
	for i := range w.buckets {
		w.buckets[i].idx = -1
	}
	return w
}

// bucketIndex maps a virtual start time to its absolute bucket index.
// Negative starts (malformed input) clamp to bucket zero.
func (w *windowAccum) bucketIndex(start time.Duration) int64 {
	if start < 0 {
		return 0
	}
	return int64(start / w.bucketDur)
}

// floor is the lowest absolute bucket index still inside the window.
func (w *windowAccum) floor() int64 {
	if w.head < 0 {
		return 0
	}
	f := w.head - int64(len(w.buckets)) + 1
	if f < 0 {
		f = 0
	}
	return f
}

// Add feeds one event.
func (w *windowAccum) Add(e *failure.Event) {
	idx := w.bucketIndex(e.Start)
	if w.head >= 0 && idx < w.floor() {
		w.late++
		return
	}
	if idx > w.head {
		w.head = idx
	}
	b := &w.buckets[idx%int64(len(w.buckets))]
	if b.idx != idx {
		b.reset(idx)
	}
	b.events++
	b.byKind[e.Kind]++
	sec := e.Duration.Seconds()
	b.durSum += sec
	if sec > b.durMax {
		b.durMax = sec
	}
	b.sketch.Add(sec)
}

// KindCountDoc is one failure kind's event count in a window snapshot.
type KindCountDoc struct {
	Kind  string `json:"kind"`
	Count int64  `json:"count"`
}

// WindowSnapshot summarizes the sliding window for the live API.
type WindowSnapshot struct {
	BucketSeconds float64        `json:"bucket_seconds"`
	Buckets       int            `json:"buckets"`
	FromSeconds   float64        `json:"from_seconds"`
	ToSeconds     float64        `json:"to_seconds"`
	Events        int64          `json:"events"`
	ByKind        []KindCountDoc `json:"by_kind"`
	LateDrops     int64          `json:"late_drops"`
	DurMean       float64        `json:"dur_mean_s"`
	DurMax        float64        `json:"dur_max_s"`
	DurP50        float64        `json:"dur_p50_s"`
	DurP90        float64        `json:"dur_p90_s"`
	DurP99        float64        `json:"dur_p99_s"`
	Samples       int            `json:"samples"`
}

// snapshot merges every non-stale bucket into a window summary. Sketches
// merge into a fresh set (Merge never mutates its argument), so queries
// leave the accumulator untouched.
func (w *windowAccum) snapshot() WindowSnapshot {
	snap := WindowSnapshot{
		BucketSeconds: w.bucketDur.Seconds(),
		Buckets:       len(w.buckets),
		LateDrops:     w.late,
	}
	var kinds [failure.NumKinds]int64
	if w.head >= 0 {
		floor := w.floor()
		snap.FromSeconds = (time.Duration(floor) * w.bucketDur).Seconds()
		snap.ToSeconds = (time.Duration(w.head+1) * w.bucketDur).Seconds()
		merged := newWindowSketch()
		var durSum float64
		for i := range w.buckets {
			b := &w.buckets[i]
			if b.idx < floor || b.idx > w.head {
				continue
			}
			snap.Events += b.events
			for k, n := range b.byKind {
				kinds[k] += n
			}
			durSum += b.durSum
			if b.durMax > snap.DurMax {
				snap.DurMax = b.durMax
			}
			merged.Merge(b.sketch)
		}
		snap.Samples = merged.N()
		if snap.Events > 0 {
			qs := merged.Quantiles()
			snap.DurP50, snap.DurP90, snap.DurP99 = qs[0], qs[1], qs[2]
			snap.DurMean = durSum / float64(snap.Events)
		}
	}
	for k := failure.Kind(0); k < failure.NumKinds; k++ {
		snap.ByKind = append(snap.ByKind, KindCountDoc{Kind: k.String(), Count: kinds[k]})
	}
	return snap
}
