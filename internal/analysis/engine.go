package analysis

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/failure"
	"repro/internal/trace"
)

// Visitor is one figure's streaming accumulator. The engine delivers every
// event of a dataset shard to Visit, then combines per-worker partials with
// Merge. Merge is always called on the pass-wide base visitor with the
// partials in shard index order, so order-sensitive state (sample slices,
// first-event-wins metadata) combines exactly as a sequential Dataset.Each
// would have produced it.
type Visitor interface {
	Visit(e *failure.Event)
	Merge(other Visitor)
}

// passWorkers picks the worker count for a pass: capped by GOMAXPROCS, by
// the number of physical CPUs (an oversubscribed GOMAXPROCS only adds
// preemption churn and duplicate visitor state to a CPU-bound scan), and
// by the shard count.
func passWorkers(ds *trace.Dataset) int {
	if ds == nil {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < w {
		w = n
	}
	if ns := ds.NumShards(); ns < w {
		w = ns
	}
	if w < 1 {
		w = 1
	}
	return w
}

// passHint estimates how many events a single worker's visitor set will
// see; constructors use it to pre-size sample slices.
func passHint(ds *trace.Dataset) int {
	if ds == nil {
		return 0
	}
	return ds.Len()/passWorkers(ds) + 1
}

// runPass runs one pass over the dataset. Shards are split into contiguous
// blocks, one block per worker; each worker feeds its block — in ascending
// shard order — to its own visitor set from the factory. Worker sets are
// merged into the base set in worker index order, which with contiguous
// blocks IS shard index order, so the result is bit-identical to a
// sequential scan for any worker count. A single-worker pass skips the
// partial sets entirely and visits straight into the base set.
func runPass(ds *trace.Dataset, factory func() []Visitor) []Visitor {
	base := factory()
	if ds == nil {
		return base
	}
	start := time.Now()
	ns := ds.NumShards()
	workers := passWorkers(ds)

	visitBlock := func(vs []Visitor, lo, hi int) int64 {
		var n int64
		for s := lo; s < hi; s++ {
			if ds.ShardLen(s) == 0 {
				continue
			}
			ds.EachShard(s, func(e *failure.Event) {
				for _, v := range vs {
					v.Visit(e)
				}
				n++
			})
		}
		return n
	}

	var visited int64
	if workers == 1 {
		visited = visitBlock(base, 0, ns)
	} else {
		per := (ns + workers - 1) / workers
		sets := make([][]Visitor, workers)
		counts := make([]int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * per
			hi := lo + per
			if hi > ns {
				hi = ns
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				vs := factory()
				counts[w] = visitBlock(vs, lo, hi)
				sets[w] = vs
			}(w, lo, hi)
		}
		wg.Wait()
		for w, vs := range sets {
			if vs == nil {
				continue
			}
			visited += counts[w]
			for i, v := range vs {
				base[i].Merge(v)
			}
		}
	}

	elapsed := time.Since(start)
	mPasses.Inc()
	mPassSeconds.Observe(elapsed.Seconds())
	mEventsVisited.Add(visited)
	mPassWorkers.Set(float64(workers))
	if s := elapsed.Seconds(); s > 0 {
		mEventsPerSec.Set(float64(visited) / s)
	}
	return base
}

// runOne runs a single-visitor pass, for the standalone per-figure entry
// points.
func runOne[T Visitor](ds *trace.Dataset, mk func() T) T {
	return runPass(ds, func() []Visitor { return []Visitor{mk()} })[0].(T)
}
