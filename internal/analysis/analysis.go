// Package analysis recomputes every table and figure of the paper's
// evaluation from a collected failure dataset. It never reads the fleet
// generator's calibration: prevalence, frequency, durations, shares and
// correlations are all derived from events, population denominators, dwell
// accounting and the BS census, so a run of the pipeline validates the
// whole measurement stack end to end.
package analysis

import (
	"sort"
	"time"

	"repro/internal/failure"
	"repro/internal/fleet"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telephony"
	"repro/internal/trace"
)

// Input bundles a fleet run's outputs for analysis.
type Input struct {
	Dataset     *trace.Dataset
	Population  fleet.Population
	Transitions *fleet.TransitionMatrix
	Dwell       *fleet.DwellStats
	Network     *simnet.Network
}

// FromResult adapts a fleet result.
func FromResult(res *fleet.Result) Input {
	return Input{
		Dataset:     res.Dataset,
		Population:  res.Population,
		Transitions: &res.Transitions,
		Dwell:       &res.Dwell,
		Network:     res.Network,
	}
}

// perDevice summarises one device's events.
type perDevice struct {
	modelID int
	fiveG   bool
	android int
	isp     simnet.ISPID
	total   int
	byKind  [failure.NumKinds]int
}

// scan builds per-device aggregates once; most figures reuse it.
func (in Input) scan() map[uint64]*perDevice {
	devs := make(map[uint64]*perDevice)
	in.Dataset.Each(func(e *failure.Event) {
		d := devs[e.DeviceID]
		if d == nil {
			d = &perDevice{modelID: e.ModelID, fiveG: e.FiveGCapable, android: e.AndroidVersion, isp: e.ISP}
			devs[e.DeviceID] = d
		}
		d.total++
		if int(e.Kind) < len(d.byKind) {
			d.byKind[e.Kind]++
		}
	})
	return devs
}

// GroupStats is the prevalence/frequency pair the paper reports for a
// device group.
type GroupStats struct {
	Name       string
	Devices    int
	Failing    int
	Events     int
	Prevalence float64
	Frequency  float64
}

func makeGroup(name string, devices, failing, events int) GroupStats {
	g := GroupStats{Name: name, Devices: devices, Failing: failing, Events: events}
	if devices > 0 {
		g.Prevalence = float64(failing) / float64(devices)
		g.Frequency = float64(events) / float64(devices)
	}
	return g
}

// ModelRow is one row of the reproduced Table 1 / Figures 2 and 5.
type ModelRow struct {
	ModelID         int
	FiveG           bool
	Android         int
	Devices         int
	Prevalence      float64
	Frequency       float64
	PaperPrevalence float64
	PaperFrequency  float64
}

// Table1 recomputes per-model prevalence and frequency and pairs them with
// the paper's Table 1 values.
func Table1(in Input, catalogue []ModelCatalogueEntry) []ModelRow {
	failing := make(map[int]int)
	events := make(map[int]int)
	for _, d := range in.scan() {
		failing[d.modelID]++
		events[d.modelID] += d.total
	}
	rows := make([]ModelRow, 0, len(catalogue))
	for _, m := range catalogue {
		devices := in.Population.ByModel[m.ID]
		row := ModelRow{
			ModelID: m.ID, FiveG: m.FiveG, Android: m.Android,
			Devices:         devices,
			PaperPrevalence: m.Prevalence,
			PaperFrequency:  m.Frequency,
		}
		if devices > 0 {
			row.Prevalence = float64(failing[m.ID]) / float64(devices)
			row.Frequency = float64(events[m.ID]) / float64(devices)
		}
		rows = append(rows, row)
	}
	return rows
}

// ModelCatalogueEntry mirrors the device catalogue without importing it
// (keeps the analysis decoupled from the generator).
type ModelCatalogueEntry struct {
	ID         int
	CPUGHz     float64
	MemoryGB   int
	StorageGB  int
	FiveG      bool
	Android    int
	Prevalence float64
	Frequency  float64
}

// CauseRow is one row of the reproduced Table 2.
type CauseRow struct {
	Cause       telephony.FailCause
	Name        string
	Description string
	Share       float64 // fraction of Data_Setup_Error events
	PaperShare  float64 // Table 2's published share (0 if outside top 10)
}

// Table2 decomposes Data_Setup_Error events by protocol error code and
// returns the topN rows by share.
func Table2(in Input, topN int) []CauseRow {
	counts := map[telephony.FailCause]int{}
	total := 0
	in.Dataset.Each(func(e *failure.Event) {
		if e.Kind == failure.DataSetupError {
			counts[e.Cause]++
			total++
		}
	})
	rows := make([]CauseRow, 0, len(counts))
	for cause, n := range counts {
		info := telephony.Info(cause)
		rows = append(rows, CauseRow{
			Cause:       cause,
			Name:        info.Name,
			Description: info.Description,
			Share:       float64(n) / float64(max(total, 1)),
			PaperShare:  info.Table2Share / 100,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Share > rows[j].Share })
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

// FailuresPerPhone reproduces Figure 3: the distribution of failures per
// device and the per-kind per-capita means (paper: 16 setup, 14 stall,
// 3 OOS, 33 total on average; 77% of phones see none).
type FailuresPerPhone struct {
	CDF         *stats.ECDF
	Mean        float64
	Max         float64
	ZeroShare   float64
	MeanPerKind map[failure.Kind]float64
	// OOSFreeShare is the fraction of phones with no Out_of_Service
	// events (paper: 95%).
	OOSFreeShare float64
}

// Figure3 computes the failures-per-phone distribution.
func Figure3(in Input) FailuresPerPhone {
	devs := in.scan()
	total := in.Population.Total
	out := FailuresPerPhone{MeanPerKind: map[failure.Kind]float64{}}
	counts := make([]float64, 0, total)
	oosDevices := 0
	var sum float64
	kindSums := map[failure.Kind]float64{}
	for _, d := range devs {
		c := float64(d.total)
		counts = append(counts, c)
		sum += c
		if c > out.Max {
			out.Max = c
		}
		for k, n := range d.byKind {
			kindSums[failure.Kind(k)] += float64(n)
		}
		if d.byKind[failure.OutOfService] > 0 {
			oosDevices++
		}
	}
	for i := len(devs); i < total; i++ {
		counts = append(counts, 0)
	}
	out.CDF = stats.NewECDF(counts)
	if total > 0 {
		out.Mean = sum / float64(total)
		out.ZeroShare = float64(total-len(devs)) / float64(total)
		out.OOSFreeShare = float64(total-oosDevices) / float64(total)
		for k, s := range kindSums {
			out.MeanPerKind[k] = s / float64(total)
		}
	}
	return out
}

// DurationStats reproduces Figure 4: the failure-duration distribution.
type DurationStats struct {
	CDF     *stats.ECDF // seconds
	Mean    time.Duration
	Median  time.Duration
	Max     time.Duration
	Under30 float64 // fraction of failures shorter than 30 s (paper: 70.8%)
	// StallShareOfDuration is Data_Stall's share of total failure
	// duration (paper: 94%).
	StallShareOfDuration float64
}

// Figure4 computes the duration distribution over all failures.
func Figure4(in Input) DurationStats {
	var durs []float64
	var total, stall time.Duration
	var maxDur time.Duration
	in.Dataset.Each(func(e *failure.Event) {
		durs = append(durs, e.Duration.Seconds())
		total += e.Duration
		if e.Kind == failure.DataStall {
			stall += e.Duration
		}
		if e.Duration > maxDur {
			maxDur = e.Duration
		}
	})
	out := DurationStats{CDF: stats.NewECDF(durs), Max: maxDur}
	if n := len(durs); n > 0 {
		out.Mean = time.Duration(out.CDF.Mean() * float64(time.Second))
		out.Median = time.Duration(out.CDF.Quantile(0.5) * float64(time.Second))
		out.Under30 = out.CDF.P(30)
	}
	if total > 0 {
		out.StallShareOfDuration = float64(stall) / float64(total)
	}
	return out
}

// By5G reproduces Figures 6 and 7: 5G models versus non-5G Android 10
// models (the paper's footnote-4 fair comparison group).
func By5G(in Input) (fiveG, non5G GroupStats) {
	devs := in.scan()
	var f5, e5, f10, e10 int
	for _, d := range devs {
		switch {
		case d.fiveG:
			f5++
			e5 += d.total
		case d.android == 10:
			f10++
			e10 += d.total
		}
	}
	return makeGroup("5G", in.Population.FiveG, f5, e5),
		makeGroup("non-5G (Android 10)", in.Population.Android10No5G, f10, e10)
}

// ByAndroidVersion reproduces Figures 8 and 9: Android 9 versus non-5G
// Android 10.
func ByAndroidVersion(in Input) (android9, android10 GroupStats) {
	devs := in.scan()
	var f9, e9, f10, e10 int
	for _, d := range devs {
		switch {
		case d.android == 9:
			f9++
			e9 += d.total
		case !d.fiveG:
			f10++
			e10 += d.total
		}
	}
	return makeGroup("Android 9", in.Population.Android9, f9, e9),
		makeGroup("Android 10 (non-5G)", in.Population.Android10No5G, f10, e10)
}

// ByISP reproduces Figures 12 and 13.
func ByISP(in Input) [simnet.NumISPs]GroupStats {
	devs := in.scan()
	var failing, events [simnet.NumISPs]int
	for _, d := range devs {
		failing[d.isp]++
		events[d.isp] += d.total
	}
	var out [simnet.NumISPs]GroupStats
	for i := range out {
		id := simnet.ISPID(i)
		out[i] = makeGroup(id.String(), in.Population.ByISP[i], failing[i], events[i])
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
