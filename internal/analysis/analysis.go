// Package analysis recomputes every table and figure of the paper's
// evaluation from a collected failure dataset. It never reads the fleet
// generator's calibration: prevalence, frequency, durations, shares and
// correlations are all derived from events, population denominators, dwell
// accounting and the BS census, so a run of the pipeline validates the
// whole measurement stack end to end.
//
// Figures are computed by a single-pass visitor engine (engine.go): each
// figure registers a streaming Visitor, one parallel sweep per dataset
// shard feeds them all, and per-shard partials merge in shard order so
// results are bit-identical to a sequential scan. The standalone functions
// below each run a one-visitor pass; NewPass fuses all of them into one
// sweep for the report, claims and guidelines layers.
package analysis

import (
	"time"

	"repro/internal/failure"
	"repro/internal/fleet"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telephony"
	"repro/internal/trace"
)

// Input bundles a fleet run's outputs for analysis.
type Input struct {
	Dataset     *trace.Dataset
	Population  fleet.Population
	Transitions *fleet.TransitionMatrix
	Dwell       *fleet.DwellStats
	Network     *simnet.Network
}

// FromResult adapts a fleet result.
func FromResult(res *fleet.Result) Input {
	return Input{
		Dataset:     res.Dataset,
		Population:  res.Population,
		Transitions: &res.Transitions,
		Dwell:       &res.Dwell,
		Network:     res.Network,
	}
}

// perDevice summarises one device's events.
type perDevice struct {
	modelID int
	fiveG   bool
	android int
	isp     simnet.ISPID
	total   int
	byKind  [failure.NumKinds]int
}

// GroupStats is the prevalence/frequency pair the paper reports for a
// device group.
type GroupStats struct {
	Name       string
	Devices    int
	Failing    int
	Events     int
	Prevalence float64
	Frequency  float64
}

func makeGroup(name string, devices, failing, events int) GroupStats {
	g := GroupStats{Name: name, Devices: devices, Failing: failing, Events: events}
	if devices > 0 {
		g.Prevalence = float64(failing) / float64(devices)
		g.Frequency = float64(events) / float64(devices)
	}
	return g
}

// ModelRow is one row of the reproduced Table 1 / Figures 2 and 5.
type ModelRow struct {
	ModelID         int
	FiveG           bool
	Android         int
	Devices         int
	Prevalence      float64
	Frequency       float64
	PaperPrevalence float64
	PaperFrequency  float64
}

// Table1 recomputes per-model prevalence and frequency and pairs them with
// the paper's Table 1 values.
func Table1(in Input, catalogue []ModelCatalogueEntry) []ModelRow {
	return runOne(in.Dataset, func() *deviceVisitor { return newDeviceVisitor(passHint(in.Dataset)) }).table1(in.Population, catalogue)
}

// ModelCatalogueEntry mirrors the device catalogue without importing it
// (keeps the analysis decoupled from the generator).
type ModelCatalogueEntry struct {
	ID         int
	CPUGHz     float64
	MemoryGB   int
	StorageGB  int
	FiveG      bool
	Android    int
	Prevalence float64
	Frequency  float64
}

// CauseRow is one row of the reproduced Table 2.
type CauseRow struct {
	Cause       telephony.FailCause
	Name        string
	Description string
	Share       float64 // fraction of Data_Setup_Error events
	PaperShare  float64 // Table 2's published share (0 if outside top 10)
}

// Table2 decomposes Data_Setup_Error events by protocol error code and
// returns the topN rows by share.
func Table2(in Input, topN int) []CauseRow {
	return runOne(in.Dataset, newCauseVisitor).table2(topN)
}

// FailuresPerPhone reproduces Figure 3: the distribution of failures per
// device and the per-kind per-capita means (paper: 16 setup, 14 stall,
// 3 OOS, 33 total on average; 77% of phones see none).
type FailuresPerPhone struct {
	CDF         *stats.ECDF
	Mean        float64
	Max         float64
	ZeroShare   float64
	MeanPerKind map[failure.Kind]float64
	// OOSFreeShare is the fraction of phones with no Out_of_Service
	// events (paper: 95%).
	OOSFreeShare float64
}

// Figure3 computes the failures-per-phone distribution.
func Figure3(in Input) FailuresPerPhone {
	return runOne(in.Dataset, func() *deviceVisitor { return newDeviceVisitor(passHint(in.Dataset)) }).figure3(in.Population)
}

// DurationStats reproduces Figure 4: the failure-duration distribution.
type DurationStats struct {
	CDF     *stats.ECDF // seconds
	Mean    time.Duration
	Median  time.Duration
	Max     time.Duration
	Under30 float64 // fraction of failures shorter than 30 s (paper: 70.8%)
	// StallShareOfDuration is Data_Stall's share of total failure
	// duration (paper: 94%).
	StallShareOfDuration float64
}

// Figure4 computes the duration distribution over all failures.
func Figure4(in Input) DurationStats {
	return runOne(in.Dataset, func() *durationVisitor { return newDurationVisitor(passHint(in.Dataset)) }).figure4()
}

// By5G reproduces Figures 6 and 7: 5G models versus non-5G Android 10
// models (the paper's footnote-4 fair comparison group).
func By5G(in Input) (fiveG, non5G GroupStats) {
	return runOne(in.Dataset, func() *deviceVisitor { return newDeviceVisitor(passHint(in.Dataset)) }).by5G(in.Population)
}

// ByAndroidVersion reproduces Figures 8 and 9: Android 9 versus non-5G
// Android 10.
func ByAndroidVersion(in Input) (android9, android10 GroupStats) {
	return runOne(in.Dataset, func() *deviceVisitor { return newDeviceVisitor(passHint(in.Dataset)) }).byAndroidVersion(in.Population)
}

// ByISP reproduces Figures 12 and 13.
func ByISP(in Input) [simnet.NumISPs]GroupStats {
	return runOne(in.Dataset, func() *deviceVisitor { return newDeviceVisitor(passHint(in.Dataset)) }).byISP(in.Population)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
