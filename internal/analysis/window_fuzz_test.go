package analysis

import (
	"math"
	"testing"
	"time"

	"repro/internal/failure"
)

// FuzzWindowAccum drives the sliding-window accumulator with arbitrary
// arrival sequences — forward jumps, backward (late) arrivals, negative
// starts, bucket-boundary values — against an independent map-based model
// of the window semantics, and checks the merged P² sketch invariants on
// every snapshot. Three bytes encode one event: a step selector, a step
// size, and a duration.
func FuzzWindowAccum(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{2, 1, 10, 2, 1, 20, 7, 200, 30, 0, 90, 40})
	f.Add([]byte{7, 255, 1, 0, 255, 2, 2, 0, 3, 2, 0, 4, 2, 0, 5})
	seq := make([]byte, 0, 3*64)
	for i := 0; i < 64; i++ {
		seq = append(seq, byte(i%5), byte(i*7), byte(i))
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		const bucketDur = time.Minute
		n := 3
		if len(data) > 0 {
			n = 1 + int(data[0]%7)
		}
		w := newWindowAccum(n, bucketDur)

		// Independent model: per absolute bucket index, the same counters
		// the ring keeps, windowed at snapshot time by [floor, head].
		type modelBucket struct {
			events int64
			byKind [failure.NumKinds]int64
			durSum float64
			durMax float64
			durs   []float64
		}
		model := map[int64]*modelBucket{}
		var head int64 = -1
		var late int64
		mFloor := func() int64 {
			if head < 0 {
				return 0
			}
			fl := head - int64(n) + 1
			if fl < 0 {
				fl = 0
			}
			return fl
		}

		check := func() {
			t.Helper()
			snap := w.snapshot()
			if snap.LateDrops != late {
				t.Fatalf("late: got %d want %d", snap.LateDrops, late)
			}
			var events int64
			var durSum, durMax float64
			var kinds [failure.NumKinds]int64
			var minDur = math.Inf(1)
			var samples int
			if head >= 0 {
				fl := mFloor()
				if snap.FromSeconds != (time.Duration(fl) * bucketDur).Seconds() {
					t.Fatalf("from: got %v want bucket %d", snap.FromSeconds, fl)
				}
				if snap.ToSeconds != (time.Duration(head+1) * bucketDur).Seconds() {
					t.Fatalf("to: got %v want bucket %d", snap.ToSeconds, head+1)
				}
				// Sum in ring-slot order so the float accumulation order
				// matches snapshot() exactly.
				for slot := int64(0); slot < int64(n); slot++ {
					for idx := fl; idx <= head; idx++ {
						if idx%int64(n) != slot {
							continue
						}
						b := model[idx]
						if b == nil {
							continue
						}
						events += b.events
						durSum += b.durSum
						if b.durMax > durMax {
							durMax = b.durMax
						}
						for k, c := range b.byKind {
							kinds[k] += c
						}
						samples += len(b.durs)
						for _, d := range b.durs {
							if d < minDur {
								minDur = d
							}
						}
					}
				}
			}
			if snap.Events != events {
				t.Fatalf("events: got %d want %d", snap.Events, events)
			}
			if snap.Samples != samples {
				t.Fatalf("sketch samples: got %d want %d", snap.Samples, samples)
			}
			if snap.DurMax != durMax {
				t.Fatalf("durMax: got %v want %v", snap.DurMax, durMax)
			}
			var kindSum int64
			for i, kc := range snap.ByKind {
				if kc.Count != kinds[i] {
					t.Fatalf("kind %s: got %d want %d", kc.Kind, kc.Count, kinds[i])
				}
				kindSum += kc.Count
			}
			if kindSum != snap.Events {
				t.Fatalf("by_kind sums to %d, events %d", kindSum, snap.Events)
			}
			if events > 0 {
				if want := durSum / float64(events); snap.DurMean != want {
					t.Fatalf("durMean: got %v want %v", snap.DurMean, want)
				}
				// Merged P² estimates must stay inside the observed sample
				// range — the merge preserves the min/max extremes.
				for _, q := range []float64{snap.DurP50, snap.DurP90, snap.DurP99} {
					if q < minDur || q > durMax || math.IsNaN(q) {
						t.Fatalf("quantile %v outside window sample range [%v, %v]", q, minDur, durMax)
					}
				}
			}
		}

		var cur time.Duration
		for i := 0; i+2 < len(data); i += 3 {
			sel, size, durB := data[i], data[i+1], data[i+2]
			step := time.Duration(size) * bucketDur / 4
			switch sel % 5 {
			case 0: // backward, possibly below the floor or negative
				cur -= step * 4
			case 1: // exact bucket-boundary landing
				cur = (cur/bucketDur + time.Duration(size%8)) * bucketDur
			case 2: // small forward drift
				cur += step
			case 3: // stay put
			case 4: // far forward jump (staleness-invalidates slots)
				cur += time.Duration(size) * bucketDur
			}
			e := failure.Event{
				Kind:     failure.Kind(int(durB) % int(failure.NumKinds)),
				Start:    cur,
				Duration: time.Duration(durB) * time.Second,
			}

			// Mirror Add against the model.
			idx := int64(0)
			if cur > 0 {
				idx = int64(cur / bucketDur)
			}
			if head >= 0 && idx < mFloor() {
				late++
			} else {
				if idx > head {
					head = idx
				}
				b := model[idx]
				if b == nil {
					b = &modelBucket{}
					model[idx] = b
				}
				b.events++
				b.byKind[e.Kind]++
				sec := e.Duration.Seconds()
				b.durSum += sec
				if sec > b.durMax {
					b.durMax = sec
				}
				b.durs = append(b.durs, sec)
			}

			w.Add(&e)
			if i%15 == 0 {
				check() // interleaved queries must not perturb state
			}
		}
		check()
	})
}
