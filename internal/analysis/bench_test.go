package analysis

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/android"
	"repro/internal/failure"
	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/simnet"
	"repro/internal/telephony"
	"repro/internal/trace"
)

// benchEvents sizes the synthetic benchmark dataset at roughly one million
// events — the scale of the paper's nationwide trace per analysis window.
const benchEvents = 1 << 20

// benchInput builds a deterministic synthetic Input of n events. The field
// mix is chosen so every visitor has real work: three failure kinds, a
// spread of causes, devices, models, cells, RATs, and signal levels, with
// stall-recovery metadata on the Data_Stall slice.
func benchInput(n int) Input {
	r := rand.New(rand.NewSource(42))
	const nDevices = 20000
	const nCells = 2000

	type dev struct {
		model   int
		fiveG   bool
		android int
		isp     simnet.ISPID
	}
	devs := make([]dev, nDevices)
	var pop fleet.Population
	pop.Total = nDevices
	for i := range devs {
		d := dev{
			model:   1 + r.Intn(34),
			isp:     simnet.ISPID(r.Intn(simnet.NumISPs)),
			android: 9 + r.Intn(2),
		}
		d.fiveG = d.model%5 == 0 && d.android == 10
		devs[i] = d
		pop.ByModel[d.model]++
		pop.ByISP[d.isp]++
		switch {
		case d.fiveG:
			pop.FiveG++
		case d.android == 9:
			pop.Android9++
		default:
			pop.Android10No5G++
		}
	}

	causes := []telephony.FailCause{
		telephony.CauseSignalLost, 27, 33, 38, 50, 29,
	}
	events := make([]failure.Event, n)
	for i := range events {
		id := uint64(r.Intn(nDevices))
		d := devs[id]
		e := failure.Event{
			Kind:           failure.Kind(r.Intn(3)),
			DeviceID:       id,
			ModelID:        d.model,
			AndroidVersion: d.android,
			FiveGCapable:   d.fiveG,
			ISP:            d.isp,
			Cell: telephony.CellIdentity{
				MCC: 460, MNC: uint16(d.isp),
				LAC: uint32(r.Intn(nCells) / 64), CID: uint32(r.Intn(nCells)),
			},
			Region:   geo.Region(r.Intn(geo.NumRegions)),
			RAT:      telephony.AllRATs[r.Intn(len(telephony.AllRATs))],
			Level:    telephony.SignalLevel(r.Intn(telephony.NumSignalLevels)),
			Start:    time.Duration(r.Intn(120*24)) * time.Minute,
			Duration: time.Duration(1+r.Intn(300)) * time.Second,
		}
		if e.Kind == failure.DataSetupError {
			e.Cause = causes[r.Intn(len(causes))]
		}
		if e.Kind == failure.DataStall {
			e.OpsExecuted = r.Intn(4)
			switch e.OpsExecuted {
			case 1:
				e.ResolvedBy = android.ResolvedOp1
			case 2:
				e.ResolvedBy = android.ResolvedOp2
			case 3:
				e.ResolvedBy = android.ResolvedOp3
			default:
				e.AutoFixTime = time.Duration(1+r.Intn(600)) * time.Second
			}
		}
		events[i] = e
	}

	dwell := &fleet.DwellStats{}
	for rat := 0; rat < 5; rat++ {
		for l := 0; l < telephony.NumSignalLevels; l++ {
			dwell.Seconds[rat][l] = float64(3600 * (1 + rat + l) * 100)
			dwell.DevicesExposed[rat][l] = int64(nDevices / (1 + l))
		}
	}

	return Input{
		Dataset:     trace.FromEvents(events),
		Population:  pop,
		Transitions: &fleet.TransitionMatrix{},
		Dwell:       dwell,
		Network:     simnet.FromStations(nil),
	}
}

// benchCatalogue is a minimal Table-1 model list for the synthetic fleet.
func benchCatalogue() []ModelCatalogueEntry {
	out := make([]ModelCatalogueEntry, 0, 34)
	for id := 1; id <= 34; id++ {
		out = append(out, ModelCatalogueEntry{
			ID: id, FiveG: id%5 == 0, Android: 9 + id%2,
		})
	}
	return out
}

// sweep pulls every figure the report needs from src — the full extraction
// surface. Against legacySource this issues one dataset scan per figure;
// against a Pass all scanning already happened in the single fused pass.
func sweep(src source, catalogue []ModelCatalogueEntry) int {
	n := 0
	n += len(src.Table1(catalogue))
	n += len(src.Table2(10))
	n += src.Figure3().CDF.N()
	n += src.Figure4().CDF.N()
	f, n5 := src.By5G()
	n += f.Devices + n5.Devices
	a9, a10 := src.ByAndroidVersion()
	n += a9.Devices + a10.Devices
	for _, g := range src.ByISP() {
		n += g.Devices
	}
	n += src.Figure10().CDF.N()
	n += len(src.Figure11(100).Counts)
	n += len(src.Figure14())
	n += len(src.Figure15())
	n += len(src.Figure16(telephony.RAT4G))
	n += len(src.Figure16(telephony.RAT5G))
	n += len(src.kindDurations(failure.DataStall))
	n += len(src.allDurations())
	n += len(src.fiveGKindStats())
	return n
}

// BenchmarkAnalysisLegacyMultiPass measures the pre-engine path: every
// figure extraction runs its own sequential Dataset.Each scan.
func BenchmarkAnalysisLegacyMultiPass(b *testing.B) {
	in := benchInput(benchEvents)
	catalogue := benchCatalogue()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sweep(legacySource{in}, catalogue) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkAnalysisSinglePass measures the fused engine: one pass feeds
// the same extraction surface.
func BenchmarkAnalysisSinglePass(b *testing.B) {
	in := benchInput(benchEvents)
	catalogue := benchCatalogue()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sweep(NewPass(in), catalogue) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// benchEntry is one BENCH_analysis.json record.
type benchEntry struct {
	Date          string  `json:"date"`
	GoVersion     string  `json:"go_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Events        int     `json:"events"`
	LegacySeconds float64 `json:"legacy_seconds"`
	EngineSeconds float64 `json:"engine_seconds"`
	Speedup       float64 `json:"speedup"`
}

// TestWriteBenchArtifact times one legacy sweep against one engine sweep
// and appends the result to the JSON file named by BENCH_ANALYSIS_OUT.
// It is skipped in normal test runs; CI's bench-smoke step and the
// recorded BENCH_analysis.json entries come from here.
func TestWriteBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_ANALYSIS_OUT")
	if out == "" {
		t.Skip("set BENCH_ANALYSIS_OUT to record a benchmark artifact")
	}
	date := os.Getenv("BENCH_ANALYSIS_DATE") // keep artifacts reproducible in CI

	in := benchInput(benchEvents)
	catalogue := benchCatalogue()

	timeSweep := func(mk func() source) float64 {
		best := 0.0
		for i := 0; i < 2; i++ { // best of two: first run also warms caches
			start := time.Now()
			if sweep(mk(), catalogue) == 0 {
				t.Fatal("empty sweep")
			}
			sec := time.Since(start).Seconds()
			if best == 0 || sec < best {
				best = sec
			}
		}
		return best
	}
	legacySec := timeSweep(func() source { return legacySource{in} })
	engineSec := timeSweep(func() source { return NewPass(in) })

	entry := benchEntry{
		Date:          date,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Events:        benchEvents,
		LegacySeconds: legacySec,
		EngineSeconds: engineSec,
		Speedup:       legacySec / engineSec,
	}

	var entries []benchEntry
	if raw, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(raw, &entries); err != nil {
			t.Fatalf("existing %s is not a benchEntry list: %v", out, err)
		}
	}
	entries = append(entries, entry)
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("legacy %.3fs engine %.3fs speedup %.2fx -> %s\n",
		legacySec, engineSec, entry.Speedup, out)
}
