package analysis

import (
	"repro/internal/failure"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// source is the figure-extraction surface the report, claims, guidelines
// and enhancement layers are written against. Pass implements it with the
// fused single-pass engine; the legacy multi-pass oracle in the tests
// implements it with the original per-figure scans. The unexported methods
// keep implementations inside this package.
type source interface {
	input() Input
	Table1(catalogue []ModelCatalogueEntry) []ModelRow
	Table2(topN int) []CauseRow
	Figure3() FailuresPerPhone
	Figure4() DurationStats
	By5G() (fiveG, non5G GroupStats)
	ByAndroidVersion() (android9, android10 GroupStats)
	ByISP() [simnet.NumISPs]GroupStats
	Figure10() StallAutoFix
	Figure11(topN int) BSRanking
	Figure14() []RATPrevalence
	Figure15() [telephony.NumSignalLevels]LevelPrevalence
	Figure16(rat telephony.RAT) [telephony.NumSignalLevels]LevelPrevalence
	kindDurations(kind failure.Kind) []float64
	allDurations() []float64
	fiveGKindStats() map[failure.Kind]kindAgg
}

// passVisitor fuses every figure's visitor into one composite with a
// concrete Visit, so the engine's hot loop pays one dynamic dispatch per
// event instead of one per figure. The sub-visitor calls devirtualize and
// the small ones inline.
type passVisitor struct {
	dev     *deviceVisitor
	cause   *causeVisitor
	dur     *durationVisitor
	kindDur *kindDurationVisitor
	stall   *stallVisitor
	bs      *bsVisitor
	rat     *ratVisitor
	region  *regionVisitor
}

func newPassVisitor(hint int) *passVisitor {
	return &passVisitor{
		dev:     newDeviceVisitor(hint),
		cause:   newCauseVisitor(),
		dur:     newDurationVisitor(hint),
		kindDur: newKindDurationVisitor(hint),
		stall:   newStallVisitor(),
		bs:      newBSVisitor(hint),
		rat:     newRATVisitor(),
		region:  newRegionVisitor(),
	}
}

func (v *passVisitor) Visit(e *failure.Event) {
	v.dev.Visit(e)
	v.cause.Visit(e)
	sec := e.Duration.Seconds()
	v.dur.visitSec(e, sec)
	v.kindDur.visitSec(e, sec)
	v.stall.Visit(e)
	v.bs.Visit(e)
	v.rat.Visit(e)
	v.region.Visit(e)
}

func (v *passVisitor) Merge(other Visitor) {
	o := other.(*passVisitor)
	v.dev.Merge(o.dev)
	v.cause.Merge(o.cause)
	v.dur.Merge(o.dur)
	v.kindDur.Merge(o.kindDur)
	v.stall.Merge(o.stall)
	v.bs.Merge(o.bs)
	v.rat.Merge(o.rat)
	v.region.Merge(o.region)
}

// Pass holds the accumulated state of one engine pass over a dataset:
// every figure's visitor, filled by a single parallel sweep. Build one
// with NewPass and extract as many figures as needed; nothing rescans.
type Pass struct {
	in Input
	*passVisitor
}

// NewPass runs the single fused pass over the input's dataset.
func NewPass(in Input) *Pass {
	hint := passHint(in.Dataset)
	pv := runOne(in.Dataset, func() *passVisitor { return newPassVisitor(hint) })
	return &Pass{in: in, passVisitor: pv}
}

func (p *Pass) input() Input { return p.in }

// Table1 extracts the per-model prevalence/frequency table.
func (p *Pass) Table1(catalogue []ModelCatalogueEntry) []ModelRow {
	return p.dev.table1(p.in.Population, catalogue)
}

// Table2 extracts the top Data_Setup_Error cause rows.
func (p *Pass) Table2(topN int) []CauseRow { return p.cause.table2(topN) }

// Figure3 extracts the failures-per-phone distribution.
func (p *Pass) Figure3() FailuresPerPhone { return p.dev.figure3(p.in.Population) }

// Figure4 extracts the failure-duration distribution.
func (p *Pass) Figure4() DurationStats { return p.dur.figure4() }

// By5G extracts the 5G versus non-5G comparison.
func (p *Pass) By5G() (fiveG, non5G GroupStats) { return p.dev.by5G(p.in.Population) }

// ByAndroidVersion extracts the Android 9 versus 10 comparison.
func (p *Pass) ByAndroidVersion() (android9, android10 GroupStats) {
	return p.dev.byAndroidVersion(p.in.Population)
}

// ByISP extracts the per-ISP comparison.
func (p *Pass) ByISP() [simnet.NumISPs]GroupStats { return p.dev.byISP(p.in.Population) }

// Figure10 extracts the Data_Stall self-recovery distribution.
func (p *Pass) Figure10() StallAutoFix { return p.stall.figure10() }

// Figure11 extracts the BS failure ranking.
func (p *Pass) Figure11(topN int) BSRanking { return p.bs.figure11(topN) }

// Figure14 extracts per-RAT normalized failure prevalence.
func (p *Pass) Figure14() []RATPrevalence { return p.rat.figure14(p.in.Dwell, p.in.Network) }

// Figure15 extracts normalized prevalence per signal level across RATs.
func (p *Pass) Figure15() [telephony.NumSignalLevels]LevelPrevalence {
	return p.dev.figure15(p.in.Dwell)
}

// Figure16 extracts normalized prevalence per signal level for one RAT.
func (p *Pass) Figure16(rat telephony.RAT) [telephony.NumSignalLevels]LevelPrevalence {
	return p.dev.figure16(p.in.Dwell, rat)
}

// Figure17 extracts the transition-failure increase panel for a RAT pair
// (pure: derived from the transition matrix, not the event stream).
func (p *Pass) Figure17(fromRAT, toRAT telephony.RAT) TransitionIncrease {
	return Figure17(p.in, fromRAT, toRAT)
}

// DurationByKind extracts per-kind duration statistics.
func (p *Pass) DurationByKind() map[failure.Kind]DurationStats {
	return p.kindDur.durationByKind()
}

// ByRegion extracts per-region failure statistics.
func (p *Pass) ByRegion() []RegionStats { return p.region.byRegion() }

// EstimateOpSuccess extracts the per-stage recovery-operation fix rates.
func (p *Pass) EstimateOpSuccess() OpSuccessEstimate { return p.stall.opSuccess() }

// HardwareCorrelation extracts the §3.2 feature-correlation table.
func (p *Pass) HardwareCorrelation(catalogue []ModelCatalogueEntry) []FeatureCorrelation {
	return hardwareCorrelationFromRows(p.Table1(catalogue), catalogue)
}

// Claims evaluates every paper claim against this pass.
func (p *Pass) Claims() []ClaimResult { return checkClaimsFrom(p) }

// Guidelines derives the §4.1 guidance from this pass.
func (p *Pass) Guidelines() []Guideline { return guidelinesFrom(p) }

func (p *Pass) kindDurations(kind failure.Kind) []float64 { return p.kindDur.kindDurations(kind) }

func (p *Pass) allDurations() []float64 { return p.dur.durs }

func (p *Pass) fiveGKindStats() map[failure.Kind]kindAgg { return p.dev.fiveGKindStats() }
