// Package device holds the studied phone population: the 34 hardware
// models of Table 1 with their measured reliability characteristics, and
// the per-device failure-intensity sampling that reproduces the paper's
// prevalence ("fraction of devices with at least one failure") and
// frequency ("average number of failures per phone") for each model.
package device

import "fmt"

// Model is one row of Table 1. Prevalence and Frequency are the paper's
// measured values; the fleet simulator uses them as generator parameters
// and the analysis pipeline recomputes both from simulated events — the
// round trip validates the whole pipeline.
type Model struct {
	ID        int // 1-based, ordered low-end to high-end
	CPUGHz    float64
	MemoryGB  int
	StorageGB int
	FiveG     bool
	Android   int     // major version: 9 or 10
	UserShare float64 // fraction of the fleet using this model
	// Prevalence is the fraction of this model's devices with >=1 failure
	// during the 8-month study.
	Prevalence float64
	// Frequency is the mean number of failures per device of this model.
	Frequency float64
}

func (m Model) String() string {
	g := "-"
	if m.FiveG {
		g = "5G"
	}
	return fmt.Sprintf("model-%02d(%.2fGHz/%dGB/%dGB/%s/Android%d)",
		m.ID, m.CPUGHz, m.MemoryGB, m.StorageGB, g, m.Android)
}

// catalogue is Table 1 verbatim (user percentages renormalized to sum 1).
var catalogue = []Model{
	{1, 1.80, 2, 16, false, 10, 0.0271, 0.28, 35.9},
	{2, 1.95, 2, 16, false, 9, 0.0302, 0.13, 23.8},
	{3, 2.00, 2, 16, false, 9, 0.0731, 0.10, 13.8},
	{4, 2.00, 3, 32, false, 9, 0.0390, 0.19, 22.4},
	{5, 2.00, 3, 32, false, 9, 0.0285, 0.21, 28.2},
	{6, 2.00, 3, 32, false, 10, 0.0433, 0.04, 5.3},
	{7, 2.00, 3, 32, false, 10, 0.0144, 0.05, 6.4},
	{8, 2.00, 3, 32, false, 9, 0.0407, 0.0015, 2.3},
	{9, 2.00, 3, 32, false, 10, 0.0547, 0.02, 2.6},
	{10, 2.20, 4, 32, false, 9, 0.0578, 0.27, 36.8},
	{11, 1.80, 4, 64, false, 10, 0.0118, 0.25, 28.5},
	{12, 2.00, 4, 64, false, 10, 0.0144, 0.33, 43.5},
	{13, 2.05, 6, 64, false, 10, 0.0539, 0.26, 18.7},
	{14, 2.20, 6, 64, false, 9, 0.0298, 0.15, 17.9},
	{15, 2.20, 4, 128, false, 10, 0.0398, 0.25, 26.7},
	{16, 2.20, 4, 128, false, 10, 0.0302, 0.19, 28.0},
	{17, 2.20, 6, 64, false, 10, 0.0109, 0.28, 48.4},
	{18, 2.20, 6, 64, false, 10, 0.0026, 0.13, 38.8},
	{19, 2.20, 6, 64, false, 10, 0.0131, 0.24, 44.8},
	{20, 2.20, 6, 64, false, 10, 0.0057, 0.21, 33.0},
	{21, 2.20, 6, 64, false, 10, 0.0280, 0.36, 46.6},
	{22, 2.20, 6, 128, false, 9, 0.0044, 0.38, 61.1},
	{23, 2.40, 6, 64, true, 10, 0.0084, 0.44, 49.6},
	{24, 2.40, 6, 128, true, 10, 0.0325, 0.37, 38.0},
	{25, 2.45, 6, 64, false, 9, 0.0499, 0.14, 19.6},
	{26, 2.45, 6, 64, false, 9, 0.0215, 0.17, 24.6},
	{27, 2.80, 6, 64, false, 10, 0.0184, 0.22, 54.2},
	{28, 2.80, 6, 64, false, 10, 0.0714, 0.28, 58.1},
	{29, 2.80, 6, 64, false, 10, 0.0131, 0.30, 65.1},
	{30, 2.80, 6, 128, false, 10, 0.0101, 0.30, 90.2},
	{31, 2.84, 6, 64, false, 10, 0.0188, 0.28, 61.7},
	{32, 2.84, 6, 64, false, 10, 0.0363, 0.29, 57.8},
	{33, 2.84, 8, 128, true, 10, 0.0478, 0.32, 70.9},
	{34, 2.84, 8, 256, true, 10, 0.0184, 0.25, 79.3},
}

// Models returns the 34-model catalogue with user shares normalized to
// sum exactly 1.
func Models() []Model {
	out := make([]Model, len(catalogue))
	copy(out, catalogue)
	total := 0.0
	for _, m := range out {
		total += m.UserShare
	}
	for i := range out {
		out[i].UserShare /= total
	}
	return out
}

// ByID returns the model with the given 1-based ID.
func ByID(id int) (Model, bool) {
	if id < 1 || id > len(catalogue) {
		return Model{}, false
	}
	m := Models()[id-1]
	return m, true
}

// NumModels is the catalogue size.
const NumModels = 34

// FiveGModels returns the 5G-capable models (23, 24, 33, 34).
func FiveGModels() []Model {
	var out []Model
	for _, m := range Models() {
		if m.FiveG {
			out = append(out, m)
		}
	}
	return out
}

// WeightedPrevalence returns the user-share-weighted mean prevalence
// (the paper's overall 23%).
func WeightedPrevalence() float64 {
	sum := 0.0
	for _, m := range Models() {
		sum += m.UserShare * m.Prevalence
	}
	return sum
}

// WeightedFrequency returns the user-share-weighted mean failures per
// phone (the paper's overall 33).
func WeightedFrequency() float64 {
	sum := 0.0
	for _, m := range Models() {
		sum += m.UserShare * m.Frequency
	}
	return sum
}
