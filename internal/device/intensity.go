package device

import (
	"math"

	"repro/internal/rng"
)

// Intensity is a device's sampled failure behaviour over the study window.
type Intensity struct {
	// Prone is false for devices that never fail (77% of the fleet).
	Prone bool
	// ExpectedFailures is the device's expected failure count across the
	// whole study window (Poisson mean), zero when not prone.
	ExpectedFailures float64
	// OOSProne marks the minority of failing devices that experience
	// Out_of_Service events (only ~5% of all phones see any, §3.1).
	OOSProne bool
}

// IntensityParams shapes the per-device heterogeneity.
type IntensityParams struct {
	// TailSigma is the lognormal sigma of per-device intensity among
	// failure-prone devices; larger values lengthen the tail (the paper's
	// maximum is 198,228 failures on a single phone).
	TailSigma float64
	// OOSProneFraction is the fraction of failing devices that see
	// Out_of_Service events (~5% of all phones / ~23% prevalence).
	OOSProneFraction float64
}

// DefaultIntensityParams returns the calibration used by the standard
// scenario.
func DefaultIntensityParams() IntensityParams {
	return IntensityParams{TailSigma: 1.3, OOSProneFraction: 0.22}
}

// SampleIntensity draws a device's failure intensity for its model:
// the device fails at all with probability Prevalence, and failing
// devices draw a lognormal intensity whose mean is Frequency/Prevalence,
// reproducing both Table 1 columns simultaneously.
func SampleIntensity(r *rng.Source, m Model, p IntensityParams) Intensity {
	if p.TailSigma <= 0 {
		p.TailSigma = DefaultIntensityParams().TailSigma
	}
	if p.OOSProneFraction <= 0 {
		p.OOSProneFraction = DefaultIntensityParams().OOSProneFraction
	}
	if m.Prevalence <= 0 || m.Frequency <= 0 {
		return Intensity{}
	}
	if !r.Bool(m.Prevalence) {
		return Intensity{}
	}
	meanGivenProne := m.Frequency / m.Prevalence
	// Lognormal with E[X] = meanGivenProne: mu = ln(mean) - sigma^2/2.
	mu := math.Log(meanGivenProne) - p.TailSigma*p.TailSigma/2
	expected := r.LogNormal(mu, p.TailSigma)
	// A prone device must realistically produce at least one failure;
	// clamp the Poisson mean away from zero.
	if expected < 1 {
		expected = 1
	}
	return Intensity{
		Prone:            true,
		ExpectedFailures: expected,
		OOSProne:         r.Bool(p.OOSProneFraction),
	}
}

// Poisson draws a Poisson variate with the given mean. Knuth's method for
// small means, normal approximation for large ones (the extreme per-device
// counts make the exact method unusable).
func Poisson(r *rng.Source, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}
