package device

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestCatalogueSize(t *testing.T) {
	ms := Models()
	if len(ms) != NumModels || NumModels != 34 {
		t.Fatalf("catalogue has %d models, want 34", len(ms))
	}
}

func TestCatalogueMatchesPaperHeadlines(t *testing.T) {
	ms := Models()
	var userSum float64
	minPrev, maxPrev := math.Inf(1), math.Inf(-1)
	minFreq, maxFreq := math.Inf(1), math.Inf(-1)
	fiveG := 0
	for _, m := range ms {
		userSum += m.UserShare
		minPrev = math.Min(minPrev, m.Prevalence)
		maxPrev = math.Max(maxPrev, m.Prevalence)
		minFreq = math.Min(minFreq, m.Frequency)
		maxFreq = math.Max(maxFreq, m.Frequency)
		if m.FiveG {
			fiveG++
			if m.Android != 10 {
				t.Errorf("5G model %d must run Android 10", m.ID)
			}
		}
		if m.Android != 9 && m.Android != 10 {
			t.Errorf("model %d has Android %d", m.ID, m.Android)
		}
	}
	if math.Abs(userSum-1) > 1e-9 {
		t.Errorf("user shares sum to %v after normalization", userSum)
	}
	if fiveG != 4 {
		t.Errorf("%d 5G models, want 4 (models 23, 24, 33, 34)", fiveG)
	}
	// Paper: prevalence ranges 0.15%–45% (Table 1 shows 0.15%–44%).
	if minPrev != 0.0015 || math.Abs(maxPrev-0.44) > 1e-9 {
		t.Errorf("prevalence range [%v, %v], want [0.0015, 0.44]", minPrev, maxPrev)
	}
	// Frequency range 2.3–90.2.
	if minFreq != 2.3 || maxFreq != 90.2 {
		t.Errorf("frequency range [%v, %v], want [2.3, 90.2]", minFreq, maxFreq)
	}
	// Weighted averages: ~23% prevalence, ~33 failures/phone.
	if p := WeightedPrevalence(); math.Abs(p-0.23) > 0.03 {
		t.Errorf("weighted prevalence = %.3f, want ≈0.23", p)
	}
	if f := WeightedFrequency(); math.Abs(f-33) > 4 {
		t.Errorf("weighted frequency = %.1f, want ≈33", f)
	}
}

func TestByID(t *testing.T) {
	m, ok := ByID(23)
	if !ok || !m.FiveG || m.ID != 23 {
		t.Errorf("ByID(23) = %+v, %v", m, ok)
	}
	if _, ok := ByID(0); ok {
		t.Error("ByID(0) should fail")
	}
	if _, ok := ByID(35); ok {
		t.Error("ByID(35) should fail")
	}
}

func TestFiveGModels(t *testing.T) {
	got := FiveGModels()
	want := []int{23, 24, 33, 34}
	if len(got) != len(want) {
		t.Fatalf("FiveGModels = %v", got)
	}
	for i, m := range got {
		if m.ID != want[i] {
			t.Errorf("FiveGModels[%d].ID = %d, want %d", i, m.ID, want[i])
		}
	}
}

func TestModelString(t *testing.T) {
	m, _ := ByID(33)
	s := m.String()
	if s == "" || s[:8] != "model-33" {
		t.Errorf("String = %q", s)
	}
}

func TestSampleIntensityReproducesPrevalence(t *testing.T) {
	r := rng.New(1)
	m, _ := ByID(21) // prevalence 36%
	const n = 50000
	prone := 0
	for i := 0; i < n; i++ {
		if SampleIntensity(r, m, DefaultIntensityParams()).Prone {
			prone++
		}
	}
	got := float64(prone) / n
	if math.Abs(got-m.Prevalence) > 0.01 {
		t.Errorf("prone fraction = %.3f, want ≈%.2f", got, m.Prevalence)
	}
}

func TestSampleIntensityReproducesFrequency(t *testing.T) {
	r := rng.New(2)
	m, _ := ByID(28) // frequency 58.1
	const n = 200000
	total := 0.0
	for i := 0; i < n; i++ {
		in := SampleIntensity(r, m, DefaultIntensityParams())
		total += in.ExpectedFailures
	}
	got := total / n
	// Mean expected failures per device (prone and not) ≈ Frequency.
	// The lognormal tail makes this noisy; accept 15%.
	if math.Abs(got-m.Frequency)/m.Frequency > 0.15 {
		t.Errorf("mean expected failures = %.1f, want ≈%.1f", got, m.Frequency)
	}
}

func TestSampleIntensityHeavyTail(t *testing.T) {
	r := rng.New(3)
	m, _ := ByID(30)
	maxSeen, total, prone := 0.0, 0.0, 0
	for i := 0; i < 100000; i++ {
		in := SampleIntensity(r, m, DefaultIntensityParams())
		if in.Prone {
			prone++
			total += in.ExpectedFailures
			if in.ExpectedFailures > maxSeen {
				maxSeen = in.ExpectedFailures
			}
		}
	}
	mean := total / float64(prone)
	if maxSeen < 20*mean {
		t.Errorf("tail too light: max %.0f vs mean %.0f (paper max is 198k vs mean 33)", maxSeen, mean)
	}
}

func TestSampleIntensityNonProneIsZero(t *testing.T) {
	r := rng.New(4)
	m := Model{Prevalence: 0, Frequency: 5}
	for i := 0; i < 100; i++ {
		if in := SampleIntensity(r, m, DefaultIntensityParams()); in.Prone || in.ExpectedFailures != 0 {
			t.Fatal("zero-prevalence model produced failures")
		}
	}
}

func TestSampleIntensityMinimumOneFailure(t *testing.T) {
	r := rng.New(5)
	m, _ := ByID(8) // frequency 2.3, prevalence 0.15%
	for i := 0; i < 200000; i++ {
		in := SampleIntensity(r, m, DefaultIntensityParams())
		if in.Prone && in.ExpectedFailures < 1 {
			t.Fatal("prone device with expected failures < 1")
		}
	}
}

func TestOOSProneFraction(t *testing.T) {
	r := rng.New(6)
	m, _ := ByID(28)
	prone, oos := 0, 0
	for i := 0; i < 100000; i++ {
		in := SampleIntensity(r, m, DefaultIntensityParams())
		if in.Prone {
			prone++
			if in.OOSProne {
				oos++
			}
		}
	}
	got := float64(oos) / float64(prone)
	if math.Abs(got-0.22) > 0.02 {
		t.Errorf("OOS-prone fraction = %.3f, want ≈0.22", got)
	}
}

func TestPoissonSmallMean(t *testing.T) {
	r := rng.New(7)
	const mean = 3.5
	n, total := 200000, 0
	for i := 0; i < n; i++ {
		total += Poisson(r, mean)
	}
	got := float64(total) / float64(n)
	if math.Abs(got-mean) > 0.05 {
		t.Errorf("Poisson(%v) sample mean = %.3f", mean, got)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	r := rng.New(8)
	const mean = 500.0
	n, total := 20000, 0
	for i := 0; i < n; i++ {
		k := Poisson(r, mean)
		if k < 0 {
			t.Fatal("negative Poisson draw")
		}
		total += k
	}
	got := float64(total) / float64(n)
	if math.Abs(got-mean)/mean > 0.01 {
		t.Errorf("Poisson(%v) sample mean = %.1f", mean, got)
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := rng.New(9)
	if Poisson(r, 0) != 0 || Poisson(r, -3) != 0 {
		t.Error("non-positive mean should draw 0")
	}
}
