package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.sorted() {
		fmt.Fprintf(bw, "# HELP %s %s\n", e.name, escapeHelp(e.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.m.metricType())
		switch m := e.m.(type) {
		case *Counter:
			fmt.Fprintf(bw, "%s %d\n", e.name, m.Value())
		case *Gauge:
			fmt.Fprintf(bw, "%s %s\n", e.name, formatFloat(m.Value()))
		case *Histogram:
			writePromHistogram(bw, e.name, "", m)
		case *CounterVec:
			keys, cs := m.f.snapshot()
			for i, k := range keys {
				fmt.Fprintf(bw, "%s{%s} %d\n", e.name, k, cs[i].Value())
			}
		case *GaugeVec:
			keys, gs := m.f.snapshot()
			for i, k := range keys {
				fmt.Fprintf(bw, "%s{%s} %s\n", e.name, k, formatFloat(gs[i].Value()))
			}
		case *HistogramVec:
			keys, hs := m.f.snapshot()
			for i, k := range keys {
				writePromHistogram(bw, e.name, k, hs[i])
			}
		}
	}
	return bw.Flush()
}

// writePromHistogram emits cumulative _bucket lines (only for buckets
// the data reaches, to keep 52 mostly-empty buckets out of the output),
// then the mandatory +Inf bucket, _sum, and _count. extraLabels is a
// pre-rendered `k="v",...` string or empty.
func writePromHistogram(w io.Writer, name, extraLabels string, h *Histogram) {
	sep := ""
	if extraLabels != "" {
		sep = ","
	}
	var cum int64
	for i := 0; i <= histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, extraLabels, sep, formatFloat(histBound(i)), cum)
	}
	if extraLabels == "" {
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
		return
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, extraLabels, h.Count())
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, extraLabels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, extraLabels, h.Count())
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// jsonHistogram is a histogram's JSON form: count, sum, and the
// non-empty buckets as {le, n} pairs.
type jsonHistogram struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

type jsonBucket struct {
	LE float64 `json:"le"`
	N  int64   `json:"n"` // non-cumulative count in this bucket
}

func jsonHistValue(h *Histogram) jsonHistogram {
	out := jsonHistogram{Count: h.Count(), Sum: h.Sum()}
	for i := 0; i <= histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			le := histBound(i)
			if math.IsInf(le, 1) {
				le = math.MaxFloat64
			}
			out.Buckets = append(out.Buckets, jsonBucket{LE: le, N: n})
		}
	}
	return out
}

// WriteJSON renders every registered metric as one JSON object keyed by
// metric name: counters and gauges as {type, value}, vecs with a
// per-labelset value map, histograms as {count, sum, buckets}.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	for _, e := range r.sorted() {
		switch m := e.m.(type) {
		case *Counter:
			out[e.name] = map[string]any{"type": "counter", "value": m.Value()}
		case *Gauge:
			out[e.name] = map[string]any{"type": "gauge", "value": m.Value()}
		case *Histogram:
			out[e.name] = map[string]any{"type": "histogram", "value": jsonHistValue(m)}
		case *CounterVec:
			keys, cs := m.f.snapshot()
			vals := make(map[string]int64, len(keys))
			for i, k := range keys {
				vals[k] = cs[i].Value()
			}
			out[e.name] = map[string]any{"type": "counter", "labels": m.f.labels, "values": vals}
		case *GaugeVec:
			keys, gs := m.f.snapshot()
			vals := make(map[string]float64, len(keys))
			for i, k := range keys {
				vals[k] = gs[i].Value()
			}
			out[e.name] = map[string]any{"type": "gauge", "labels": m.f.labels, "values": vals}
		case *HistogramVec:
			keys, hs := m.f.snapshot()
			vals := make(map[string]jsonHistogram, len(keys))
			for i, k := range keys {
				vals[k] = jsonHistValue(hs[i])
			}
			out[e.name] = map[string]any{"type": "histogram", "labels": m.f.labels, "values": vals}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler returns the /metrics endpoint: Prometheus text exposition by
// default, the JSON dump with ?format=json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Handler returns the default registry's /metrics endpoint.
func Handler() http.Handler { return std.Handler() }

// Summary renders counters and gauges whose names start with one of the
// prefixes (all scalars when no prefix is given) as a one-line
// "name=value" list — the cellsim end-of-run stderr summary. Histograms
// report their observation count as name_count; empty vecs are omitted.
func (r *Registry) Summary(prefixes ...string) string {
	match := func(name string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	var parts []string
	for _, e := range r.sorted() {
		if !match(e.name) {
			continue
		}
		switch m := e.m.(type) {
		case *Counter:
			parts = append(parts, e.name+"="+strconv.FormatInt(m.Value(), 10))
		case *Gauge:
			parts = append(parts, e.name+"="+formatFloat(m.Value()))
		case *Histogram:
			parts = append(parts, e.name+"_count="+strconv.FormatInt(m.Count(), 10))
		case *CounterVec, *GaugeVec, *HistogramVec:
			if v := scalarValue(e.m); v != 0 {
				parts = append(parts, e.name+"="+formatFloat(v))
			}
		}
	}
	return strings.Join(parts, " ")
}
