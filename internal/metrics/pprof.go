package metrics

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof attaches the net/http/pprof profiling handlers to mux
// under /debug/pprof/. Opt-in from the serving commands (cellserve,
// collector) via their -pprof flag: profiling endpoints expose stack
// and heap contents, so they stay off unless asked for.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
