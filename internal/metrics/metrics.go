// Package metrics is a tiny, dependency-free metrics facility for the
// reproduction's runtime components: the fleet runner, the trace
// pipeline, the monitoring service, and the long-running commands.
//
// The paper's Android-MOD deployment only worked at 70M-phone scale
// because the collection pipeline itself was continuously monitored
// (§3.3: per-device CPU/memory/traffic budgets); this package gives the
// simulated fleet the same property. A Registry holds named counters,
// gauges, histograms, and labeled families of each, exposes them as
// Prometheus text exposition or a JSON dump, and serves both over HTTP.
//
// Design constraints, in order:
//
//   - The increment path must be safe for concurrent shard workers and
//     add zero allocations per event: counters and gauges are single
//     atomics, histograms use fixed power-of-two buckets indexed with
//     math.Frexp (no search, no lock, no allocation). Verified by
//     BenchmarkCounterInc and friends.
//   - Labeled lookups (With) take a mutex and may allocate; hot paths
//     resolve their handles once, up front, and keep them.
//   - No dependencies beyond the standard library.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The increment path is a
// single atomic add: safe for concurrent use, zero allocations.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits in a
// single atomic word.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add applies a delta with a CAS loop (allocation-free).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket layout: fixed log-scale (power-of-two) upper bounds
// 2^histMinExp .. 2^histMaxExp, plus an implicit +Inf overflow bucket.
// The span covers microsecond-scale latencies through multi-gigabyte
// byte counts without configuration.
const (
	histMinExp  = -20 // 2^-20 ≈ 9.5e-7
	histMaxExp  = 30  // 2^30 ≈ 1.07e9
	histBuckets = histMaxExp - histMinExp + 1
)

// Histogram counts observations in fixed log-scale buckets. Observe is
// lock-free and allocation-free.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Int64 // last bucket is +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.buckets[histBucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// histBucketIndex maps a value to its bucket: the smallest i with
// v <= bound(i), where bound(i) = 2^(histMinExp+i); values beyond the
// last bound land in the overflow bucket.
func histBucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	// Frexp gives v = frac × 2^exp with frac in [0.5, 1), so v <= 2^exp
	// and 2^exp is the tightest power-of-two upper bound (exact powers
	// of two return frac = 0.5, exp = log2(v)+1; bound 2×v is still
	// correct, just one bucket up — acceptable for a log-scale sketch).
	_, exp := math.Frexp(v)
	switch {
	case exp < histMinExp:
		return 0
	case exp > histMaxExp:
		return histBuckets // +Inf
	default:
		return exp - histMinExp
	}
}

// histBound returns bucket i's upper bound (math.Inf for the overflow).
func histBound(i int) float64 {
	if i >= histBuckets {
		return math.Inf(1)
	}
	return math.Ldexp(1, histMinExp+i)
}

// metric is the interface expositions iterate over.
type metric interface {
	metricType() string // "counter" | "gauge" | "histogram"
}

func (*Counter) metricType() string   { return "counter" }
func (*Gauge) metricType() string     { return "gauge" }
func (*Histogram) metricType() string { return "histogram" }

// family is a set of metrics of one kind distinguished by label values
// (a Prometheus "vec"). With locks; resolve handles outside hot loops.
type family[M metric] struct {
	labels   []string
	mu       sync.Mutex
	children map[string]M
	newChild func() M
}

func (f *family[M]) with(values []string) M {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels %v", len(values), len(f.labels), f.labels))
	}
	key := labelKey(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := f.newChild()
	f.children[key] = c
	return c
}

// snapshot returns the children sorted by rendered label key.
func (f *family[M]) snapshot() (keys []string, children []M) {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys = make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children = make([]M, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	return keys, children
}

// labelKey renders `l1="v1",l2="v2"`, which doubles as the exposition
// form inside the braces.
func labelKey(labels, values []string) string {
	out := make([]byte, 0, 32)
	for i, l := range labels {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, l...)
		out = append(out, '=')
		out = strconv.AppendQuote(out, values[i])
	}
	return string(out)
}

// CounterVec is a labeled family of counters.
type CounterVec struct{ f family[*Counter] }

// With returns the counter for the given label values, creating it on
// first use. Not for hot paths: resolve once and keep the handle.
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values) }

func (*CounterVec) metricType() string { return "counter" }

// GaugeVec is a labeled family of gauges.
type GaugeVec struct{ f family[*Gauge] }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.with(values) }

func (*GaugeVec) metricType() string { return "gauge" }

// HistogramVec is a labeled family of histograms.
type HistogramVec struct{ f family[*Histogram] }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values) }

func (*HistogramVec) metricType() string { return "histogram" }

// entry is one registered metric with its exposition metadata.
type entry struct {
	name string
	help string
	m    metric
}

// Registry holds named metrics and renders them. Registration takes a
// lock and is expected at package init; reads (expositions) snapshot
// under the same lock but read atomics without one.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byName  map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

func (r *Registry) register(name, help string, m metric) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("metrics: duplicate metric name " + name)
	}
	e := &entry{name: name, help: help, m: m}
	r.byName[name] = e
	r.entries = append(r.entries, e)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, c)
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, g)
	return g
}

// NewHistogram registers and returns a histogram.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	h := &Histogram{}
	r.register(name, help, h)
	return h
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{f: family[*Counter]{
		labels:   labels,
		children: make(map[string]*Counter),
		newChild: func() *Counter { return &Counter{} },
	}}
	r.register(name, help, v)
	return v
}

// NewGaugeVec registers and returns a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{f: family[*Gauge]{
		labels:   labels,
		children: make(map[string]*Gauge),
		newChild: func() *Gauge { return &Gauge{} },
	}}
	r.register(name, help, v)
	return v
}

// NewHistogramVec registers and returns a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, labels ...string) *HistogramVec {
	v := &HistogramVec{f: family[*Histogram]{
		labels:   labels,
		children: make(map[string]*Histogram),
		newChild: func() *Histogram { return &Histogram{} },
	}}
	r.register(name, help, v)
	return v
}

// sorted returns the entries ordered by name.
func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	out := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Value returns the current scalar value of the named metric: a
// counter's count, a gauge's value, a vec's sum over children, or a
// histogram's observation count. ok is false for unknown names.
func (r *Registry) Value(name string) (v float64, ok bool) {
	r.mu.Lock()
	e, ok := r.byName[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return scalarValue(e.m), true
}

func scalarValue(m metric) float64 {
	switch m := m.(type) {
	case *Counter:
		return float64(m.Value())
	case *Gauge:
		return m.Value()
	case *Histogram:
		return float64(m.Count())
	case *CounterVec:
		var sum float64
		_, cs := m.f.snapshot()
		for _, c := range cs {
			sum += float64(c.Value())
		}
		return sum
	case *GaugeVec:
		var sum float64
		_, gs := m.f.snapshot()
		for _, g := range gs {
			sum += g.Value()
		}
		return sum
	case *HistogramVec:
		var sum float64
		_, hs := m.f.snapshot()
		for _, h := range hs {
			sum += float64(h.Count())
		}
		return sum
	}
	return 0
}

// std is the process-wide default registry; package-level metrics in
// the fleet, trace, and monitor packages register here at init.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// NewCounter registers a counter on the default registry.
func NewCounter(name, help string) *Counter { return std.NewCounter(name, help) }

// NewGauge registers a gauge on the default registry.
func NewGauge(name, help string) *Gauge { return std.NewGauge(name, help) }

// NewHistogram registers a histogram on the default registry.
func NewHistogram(name, help string) *Histogram { return std.NewHistogram(name, help) }

// NewCounterVec registers a labeled counter family on the default registry.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return std.NewCounterVec(name, help, labels...)
}

// NewGaugeVec registers a labeled gauge family on the default registry.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return std.NewGaugeVec(name, help, labels...)
}

// NewHistogramVec registers a labeled histogram family on the default registry.
func NewHistogramVec(name, help string, labels ...string) *HistogramVec {
	return std.NewHistogramVec(name, help, labels...)
}
