package metrics

import "testing"

// The fleet hot path increments counters per simulated event; the whole
// point of the atomics-only design is that this costs one atomic add
// and zero allocations. These benchmarks are the proof.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().NewCounter("bench_counter", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().NewCounter("bench_counter", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().NewGauge("bench_gauge", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().NewHistogram("bench_hist", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

// BenchmarkVecPreResolved is the supported hot-path pattern for labeled
// metrics: With once, then bare Incs.
func BenchmarkVecPreResolved(b *testing.B) {
	v := NewRegistry().NewCounterVec("bench_vec", "", "shard")
	c := v.With("0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
