package metrics

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// testRegistry builds a registry with one of everything, with known
// values, shared by the exposition tests.
func testRegistry() *Registry {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "Requests handled.")
	g := r.NewGauge("test_queue_depth", "Current queue depth.")
	v := r.NewCounterVec("test_filtered_total", "Filtered by class.", "class")
	h := r.NewHistogram("test_latency_seconds", "Request latency.")
	c.Add(3)
	g.Set(7.5)
	v.With("dns").Add(2)
	v.With("balance").Inc()
	h.Observe(0.75)
	h.Observe(0.75)
	h.Observe(3)
	return r
}

// TestPrometheusExposition is the golden-text test for the counter,
// gauge, labeled-family, and histogram renderings.
func TestPrometheusExposition(t *testing.T) {
	var sb strings.Builder
	if err := testRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_filtered_total Filtered by class.
# TYPE test_filtered_total counter
test_filtered_total{class="balance"} 1
test_filtered_total{class="dns"} 2
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="4"} 3
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 4.5
test_latency_seconds_count 3
# HELP test_queue_depth Current queue depth.
# TYPE test_queue_depth gauge
test_queue_depth 7.5
# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestJSONDump(t *testing.T) {
	var sb strings.Builder
	if err := testRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out map[string]map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if v := out["test_requests_total"]["value"]; v != float64(3) {
		t.Errorf("test_requests_total = %v, want 3", v)
	}
	if v := out["test_queue_depth"]["value"]; v != 7.5 {
		t.Errorf("test_queue_depth = %v, want 7.5", v)
	}
	vals, ok := out["test_filtered_total"]["values"].(map[string]any)
	if !ok || vals[`class="dns"`] != float64(2) {
		t.Errorf("test_filtered_total values = %v", out["test_filtered_total"])
	}
	hist, ok := out["test_latency_seconds"]["value"].(map[string]any)
	if !ok || hist["count"] != float64(3) || hist["sum"] != 4.5 {
		t.Errorf("test_latency_seconds = %v", out["test_latency_seconds"])
	}
}

// TestHandler exercises the /metrics endpoint in both formats.
func TestHandler(t *testing.T) {
	srv := httptest.NewServer(testRegistry().Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ct)
	}
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		"test_requests_total 3",
		`test_latency_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("text exposition missing %q:\n%s", want, body)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q, want application/json", ct)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("JSON endpoint returned invalid JSON: %v", err)
	}
}

// TestConcurrentIncrements hammers every metric kind from many
// goroutines; run under -race in CI.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "")
	v := r.NewCounterVec("v", "", "worker")

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine := v.With(string(rune('a' + w)))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i))
				mine.Inc()
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	var sum int64
	_, cs := v.f.snapshot()
	for _, child := range cs {
		sum += child.Value()
	}
	if sum != workers*iters {
		t.Errorf("vec sum = %d, want %d", sum, workers*iters)
	}
}

func TestValueAndSummary(t *testing.T) {
	r := testRegistry()
	if v, ok := r.Value("test_requests_total"); !ok || v != 3 {
		t.Errorf("Value(test_requests_total) = %v, %v", v, ok)
	}
	if v, ok := r.Value("test_filtered_total"); !ok || v != 3 {
		t.Errorf("Value(test_filtered_total) = %v, %v (want sum over children = 3)", v, ok)
	}
	if _, ok := r.Value("nope"); ok {
		t.Error("Value(nope) reported ok")
	}
	sum := r.Summary("test_requests_", "test_queue_")
	if sum != "test_queue_depth=7.5 test_requests_total=3" {
		t.Errorf("Summary = %q", sum)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v     float64
		bound float64
	}{
		{0, math.Ldexp(1, histMinExp)},    // non-positive → first bucket
		{-3, math.Ldexp(1, histMinExp)},   // negative → first bucket
		{1e-9, math.Ldexp(1, histMinExp)}, // below span → first bucket
		{0.75, 1},                         // frac in (0.5,1)
		{1, 2},                            // exact power of two rounds up one bucket
		{1e12, math.Inf(1)},               // beyond span → overflow
		{math.NaN(), math.Ldexp(1, histMinExp)},
	}
	for _, tc := range cases {
		got := histBound(histBucketIndex(tc.v))
		if got != tc.bound && !(math.IsInf(got, 1) && math.IsInf(tc.bound, 1)) {
			t.Errorf("bucket bound for %v = %v, want %v", tc.v, got, tc.bound)
		}
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.NewCounter("dup", "")
	r.NewCounter("dup", "")
}
