// Package faultinject is the deterministic fault-injection subsystem of
// the fleet simulator: a seeded, virtual-time fault scheduler that
// composes named campaigns of correlated degradation — base-station
// blackouts and flaps, regional RSS degradation windows, ISP-wide
// control-plane error storms, RAT capability downgrades, and device-side
// stall storms — and superimposes them on a generated radio environment.
//
// The calibrated generators of internal/simnet sample smooth marginal
// distributions; they reproduce the paper's landscape figures but never
// stress the detection and recovery paths the way the measured fleet was
// stressed (2.32B failures include bursty, spatially correlated outages:
// neglected rural BSes dying for hours, LTE control-plane storms, 5G
// rollout instability). A Campaign expresses exactly those conditions as
// (target selector, window, intensity) rules; a compiled Injector applies
// them deterministically, so a chaos run is as reproducible as a calm one
// and invariant tests can assert on its aggregates byte-for-byte.
//
// Determinism contract: rule compilation (which BSes a blackout darkens,
// flap phases) draws only from streams split off the scenario seed and
// the rule name, and all per-device fault decisions in the fleet runner
// draw from per-device streams — so results are independent of the worker
// count, exactly like the unfaulted simulator.
package faultinject

import (
	"fmt"
	"time"

	"repro/internal/failure"
	"repro/internal/geo"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// Class is the kind of fault a rule injects.
type Class uint8

// Fault classes. Each maps to a stressor the paper's fleet experienced;
// see DESIGN.md for the section-by-section mapping.
const (
	// ClassBSBlackout takes a fraction of matching base stations fully
	// out of service for the window (long-neglected infrastructure,
	// §3.1's multi-hour outages).
	ClassBSBlackout Class = iota
	// ClassBSFlap cycles matching base stations down and up with a duty
	// cycle inside the window (intermittently failing hardware).
	ClassBSFlap
	// ClassRSSDegrade shifts sampled signal levels down for devices in
	// matching regions (weather/interference windows; Figure 15's
	// level-dependent hazard seen from the other side).
	ClassRSSDegrade
	// ClassSetupStorm injects extra Data_Setup_Error episodes with an
	// elevated cause mix for matching subscribers (ISP control-plane
	// incidents; §3.3's per-ISP discrepancy under stress).
	ClassSetupStorm
	// ClassRATDowngrade blocks one access technology for an ISP during
	// the window (a 5G core outage forcing fallback camps; §3.3 RAT
	// discrepancy).
	ClassRATDowngrade
	// ClassStallStorm injects extra Data_Stall episodes for matching
	// devices (device/OS-side anomalies; the TIMP recovery path's load).
	ClassStallStorm
	// ClassCollectorOutage fails upload attempts before a connection is
	// made (the backend is unreachable), forcing device-side buffering,
	// backoff, and spill — the paper's WiFi-gated store-and-forward path
	// under a dead backend.
	ClassCollectorOutage
	// ClassAckLoss delivers the batch and severs the connection before
	// the acknowledgement — the duplicate-risk fault the seq/dedup
	// machinery exists for.
	ClassAckLoss
	// ClassLinkFlaky makes the upload link lossy and slow: attempts are
	// cut mid-frame or delayed, exercising truncated-batch handling and
	// retry pacing.
	ClassLinkFlaky

	NumClasses = 9
)

func (c Class) String() string {
	switch c {
	case ClassBSBlackout:
		return "bs-blackout"
	case ClassBSFlap:
		return "bs-flap"
	case ClassRSSDegrade:
		return "rss-degrade"
	case ClassSetupStorm:
		return "setup-storm"
	case ClassRATDowngrade:
		return "rat-downgrade"
	case ClassStallStorm:
		return "stall-storm"
	case ClassCollectorOutage:
		return "collector-outage"
	case ClassAckLoss:
		return "ack-loss"
	case ClassLinkFlaky:
		return "link-flaky"
	default:
		return "unknown"
	}
}

// IsNetwork reports whether the class faults the device→collector upload
// path rather than the radio environment. Network rules fire per upload
// attempt with probability Intensity and apply for the whole run (upload
// attempts happen outside virtual time, so windows do not apply).
func (c Class) IsNetwork() bool {
	switch c {
	case ClassCollectorOutage, ClassAckLoss, ClassLinkFlaky:
		return true
	}
	return false
}

// ParseClass maps a class name to its Class.
func ParseClass(s string) (Class, error) {
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown fault class %q", s)
}

// Selector narrows which part of the fleet or deployment a rule targets.
// Zero-valued fields match everything.
type Selector struct {
	// ISP restricts the rule to one carrier (nil = all three).
	ISP *simnet.ISPID
	// Region restricts the rule to base stations / camps in one region
	// type (nil = everywhere).
	Region *geo.Region
	// RAT names the blocked technology for ClassRATDowngrade rules.
	RAT telephony.RAT
	// BSFraction is the fraction of selector-matching base stations a
	// blackout or flap rule darkens (blackout/flap only; (0, 1]).
	BSFraction float64
}

// MatchBS reports whether a base station falls under the selector.
func (sel Selector) MatchBS(bs *simnet.BaseStation) bool {
	if bs == nil {
		return false
	}
	if sel.ISP != nil && bs.ISP != *sel.ISP {
		return false
	}
	if sel.Region != nil && bs.Region != *sel.Region {
		return false
	}
	return true
}

// MatchCamp reports whether a device of the given ISP camped on att falls
// under the selector (used by storm rules).
func (sel Selector) MatchCamp(isp simnet.ISPID, att simnet.Attachment) bool {
	if sel.ISP != nil && isp != *sel.ISP {
		return false
	}
	if sel.Region != nil {
		if att.BS == nil || att.BS.Region != *sel.Region {
			return false
		}
	}
	return true
}

// Rule is one fault: a class, a target selector, a virtual-time window,
// and an intensity whose meaning depends on the class.
type Rule struct {
	// Name labels the rule in reports and metrics; unique per campaign.
	Name string
	// Class selects the fault mechanism.
	Class Class
	// Sel narrows the target.
	Sel Selector
	// Start and Window bound the fault in virtual time since the run
	// began.
	Start  time.Duration
	Window time.Duration
	// Intensity is class-dependent: expected extra episodes per exposed
	// device over the full window (setup/stall storms) or the number of
	// signal levels to subtract (rss-degrade).
	Intensity float64
	// Period and DutyDown shape ClassBSFlap: each affected BS is down
	// for the first DutyDown fraction of every Period, phase-shifted
	// per BS.
	Period   time.Duration
	DutyDown float64
	// Causes overrides the Data_Setup_Error cause mix for setup storms
	// (empty: the environment's calibrated mix).
	Causes []telephony.FailCause
}

// End returns the virtual time the rule's window closes.
func (r *Rule) End() time.Duration { return r.Start + r.Window }

// ActiveAt reports whether the rule's window covers virtual time at.
func (r *Rule) ActiveAt(at time.Duration) bool {
	return at >= r.Start && at < r.End()
}

// Validate checks one rule.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("faultinject: rule needs a name")
	}
	if r.Class >= NumClasses {
		return fmt.Errorf("faultinject: rule %q: invalid class %d", r.Name, r.Class)
	}
	if r.Class.IsNetwork() {
		// Network faults fire per upload attempt, outside virtual time:
		// a window would be silently inert, so reject it outright.
		if r.Start != 0 || r.Window != 0 {
			return fmt.Errorf("faultinject: rule %q: network faults apply run-wide; remove start/window", r.Name)
		}
		if r.Intensity <= 0 || r.Intensity > 1 {
			return fmt.Errorf("faultinject: rule %q: network fault probability must be in (0, 1]", r.Name)
		}
		return nil
	}
	if r.Start < 0 || r.Window <= 0 {
		return fmt.Errorf("faultinject: rule %q: window must be positive and start non-negative", r.Name)
	}
	switch r.Class {
	case ClassBSBlackout, ClassBSFlap:
		if r.Sel.BSFraction <= 0 || r.Sel.BSFraction > 1 {
			return fmt.Errorf("faultinject: rule %q: bs_fraction must be in (0, 1]", r.Name)
		}
		if r.Class == ClassBSFlap {
			if r.Period <= 0 || r.DutyDown <= 0 || r.DutyDown >= 1 {
				return fmt.Errorf("faultinject: rule %q: flap needs period > 0 and duty_down in (0, 1)", r.Name)
			}
		}
	case ClassRSSDegrade:
		if r.Intensity < 1 || r.Intensity > float64(telephony.NumSignalLevels-1) {
			return fmt.Errorf("faultinject: rule %q: rss-degrade levels must be in [1, %d]", r.Name, telephony.NumSignalLevels-1)
		}
	case ClassSetupStorm, ClassStallStorm:
		if r.Intensity <= 0 {
			return fmt.Errorf("faultinject: rule %q: storm needs episodes_per_device > 0", r.Name)
		}
		for _, c := range r.Causes {
			if telephony.Info(c).Name == "UNKNOWN" {
				return fmt.Errorf("faultinject: rule %q: unknown fail cause %d", r.Name, int(c))
			}
		}
	case ClassRATDowngrade:
		if r.Sel.RAT == telephony.RATUnknown {
			return fmt.Errorf("faultinject: rule %q: rat-downgrade needs a rat", r.Name)
		}
	}
	return nil
}

// Campaign is a named set of fault rules applied together.
type Campaign struct {
	Name  string
	Rules []Rule
}

// Validate checks the whole campaign.
func (c *Campaign) Validate() error {
	if c == nil {
		return nil
	}
	if c.Name == "" {
		return fmt.Errorf("faultinject: campaign needs a name")
	}
	if len(c.Rules) == 0 {
		return fmt.Errorf("faultinject: campaign %q has no rules", c.Name)
	}
	seen := make(map[string]bool, len(c.Rules))
	for i := range c.Rules {
		r := &c.Rules[i]
		if err := r.Validate(); err != nil {
			return err
		}
		if seen[r.Name] {
			return fmt.Errorf("faultinject: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
	return nil
}

// HasNetworkRules reports whether any rule faults the upload path; such
// campaigns need the fleet runner to wire the injector into uploaders.
func (c *Campaign) HasNetworkRules() bool {
	if c == nil {
		return false
	}
	for i := range c.Rules {
		if c.Rules[i].Class.IsNetwork() {
			return true
		}
	}
	return false
}

// ExpectedKind returns the failure kind whose absolute count a rule class
// pushes up, and whether the class shifts the kind mix at all. The chaos
// invariant checker compares a faulted run's counts against a calm
// baseline in this direction.
func (c Class) ExpectedKind() (kind failure.Kind, ok bool) {
	switch c {
	case ClassBSBlackout, ClassBSFlap:
		return failure.OutOfService, true
	case ClassSetupStorm:
		return failure.DataSetupError, true
	case ClassStallStorm:
		return failure.DataStall, true
	default:
		return 0, false
	}
}

// DefaultBlackoutCampaign is the bundled campaign `cellcheck chaos` runs
// when no campaign file is given: a two-week urban blackout on ISP-A,
// a suburban flap window, and an ISP-B control-plane setup storm — enough
// to exercise the Out_of_Service fallback, the Data_Setup_Error retry
// machinery, and the Data_Stall recovery engine in one run. window is the
// scenario's measurement window; the campaign scales itself to sit inside
// it.
func DefaultBlackoutCampaign(window time.Duration) *Campaign {
	ispA, ispB := simnet.ISPA, simnet.ISPB
	urban, suburban := geo.Urban, geo.Suburban
	q := window / 4
	return &Campaign{
		Name: "bundled-bs-blackout",
		Rules: []Rule{
			{
				Name:  "urban-blackout",
				Class: ClassBSBlackout,
				Sel:   Selector{ISP: &ispA, Region: &urban, BSFraction: 0.35},
				Start: q, Window: q,
			},
			{
				Name:  "suburban-flap",
				Class: ClassBSFlap,
				Sel:   Selector{Region: &suburban, BSFraction: 0.25},
				Start: 2 * q, Window: q / 2,
				Period: 6 * time.Hour, DutyDown: 0.4,
			},
			{
				Name:  "ispb-setup-storm",
				Class: ClassSetupStorm,
				Sel:   Selector{ISP: &ispB},
				Start: q / 2, Window: q,
				Intensity: 3,
				Causes: []telephony.FailCause{
					telephony.CauseEMMAccessBarred,
					telephony.CauseInvalidEMMState,
					telephony.CauseGPRSRegistrationFail,
				},
			},
			{
				Name:  "device-stall-storm",
				Class: ClassStallStorm,
				Sel:   Selector{},
				Start: 3 * q, Window: q / 2,
				Intensity: 1.5,
			},
		},
	}
}

// DefaultNetworkCampaign is the bundled campaign `cellcheck chaos -network`
// runs: the blackout campaign's radio-side stressors plus a hostile
// device→collector path — backend outages, acks lost in flight, and a
// lossy, slow link — so the at-least-once upload pipeline's I4 invariant
// (no loss, no duplication in the Dataset) is exercised alongside the
// detection and recovery machinery.
func DefaultNetworkCampaign(window time.Duration) *Campaign {
	c := DefaultBlackoutCampaign(window)
	c.Name = "bundled-network-chaos"
	c.Rules = append(c.Rules,
		Rule{
			Name:      "collector-outage",
			Class:     ClassCollectorOutage,
			Intensity: 0.3,
		},
		Rule{
			Name:      "ack-loss",
			Class:     ClassAckLoss,
			Intensity: 0.35,
		},
		Rule{
			Name:      "flaky-link",
			Class:     ClassLinkFlaky,
			Intensity: 0.3,
		},
	)
	return c
}
