package faultinject

import (
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func netCampaign(p float64) *Campaign {
	return &Campaign{
		Name: "net-test",
		Rules: []Rule{
			{Name: "outage", Class: ClassCollectorOutage, Intensity: p},
			{Name: "ack-loss", Class: ClassAckLoss, Intensity: p},
			{Name: "flaky", Class: ClassLinkFlaky, Intensity: p},
		},
	}
}

func TestNetworkRuleValidation(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		want string // substring of the expected error; "" = valid
	}{
		{"valid", Rule{Name: "x", Class: ClassAckLoss, Intensity: 0.5}, ""},
		{"p one", Rule{Name: "x", Class: ClassCollectorOutage, Intensity: 1}, ""},
		{"p zero", Rule{Name: "x", Class: ClassAckLoss}, "probability"},
		{"p high", Rule{Name: "x", Class: ClassLinkFlaky, Intensity: 1.5}, "probability"},
		{"window", Rule{Name: "x", Class: ClassAckLoss, Intensity: 0.5, Window: time.Hour}, "run-wide"},
		{"start", Rule{Name: "x", Class: ClassAckLoss, Intensity: 0.5, Start: time.Hour}, "run-wide"},
	}
	for _, tc := range cases {
		err := tc.rule.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestNetworkCampaignParse(t *testing.T) {
	c, err := ParseCampaign(strings.NewReader(`{
		"name": "lossy-backend",
		"rules": [
			{"name": "outage", "class": "collector-outage", "probability": 0.25},
			{"name": "lost-acks", "class": "ack-loss", "probability": 0.4},
			{"name": "radio", "class": "bs-blackout", "region": "rural",
			 "bs_fraction": 0.4, "start_days": 10, "window_days": 7}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if !c.HasNetworkRules() {
		t.Error("HasNetworkRules = false")
	}
	if c.Rules[0].Intensity != 0.25 || c.Rules[1].Intensity != 0.4 {
		t.Errorf("probabilities not mapped: %v, %v", c.Rules[0].Intensity, c.Rules[1].Intensity)
	}
	if c.Rules[2].Class.IsNetwork() {
		t.Error("bs-blackout misclassified as network")
	}
}

func TestDefaultNetworkCampaign(t *testing.T) {
	c := DefaultNetworkCampaign(120 * 24 * time.Hour)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.HasNetworkRules() {
		t.Error("bundled network campaign has no network rules")
	}
	if c.Name != "bundled-network-chaos" {
		t.Errorf("name = %q", c.Name)
	}
	// It must be a strict superset of the blackout campaign's stressors.
	if base := DefaultBlackoutCampaign(120 * 24 * time.Hour); len(c.Rules) != len(base.Rules)+3 {
		t.Errorf("rules = %d, want %d", len(c.Rules), len(base.Rules)+3)
	}
}

// TestUploadFaultDeterministicPerDevice compiles the same campaign twice
// and asserts each device sees the identical fault sequence — the
// worker-count-independence contract extended to the upload path.
func TestUploadFaultDeterministicPerDevice(t *testing.T) {
	const seed, attempts = 42, 200
	devices := []uint64{1, 7, 1000}
	run := func() map[uint64][]trace.UploadFaultClass {
		inj, err := Compile(netCampaign(0.3), nil, seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[uint64][]trace.UploadFaultClass)
		// Interleave devices to show cross-device ordering is irrelevant.
		for a := 0; a < attempts; a++ {
			for _, d := range devices {
				out[d] = append(out[d], inj.UploadFault(d, uint64(a+1)))
			}
		}
		return out
	}
	a, b := run(), run()
	sawFault := false
	for _, d := range devices {
		for i := range a[d] {
			if a[d][i] != b[d][i] {
				t.Fatalf("device %d attempt %d: %v vs %v", d, i, a[d][i], b[d][i])
			}
			if a[d][i] != trace.FaultNone {
				sawFault = true
			}
		}
	}
	if !sawFault {
		t.Fatal("no faults fired at p=0.3 over 600 attempts")
	}
}

// TestUploadOutcomeRecovery checks the injected/recovered life cycle: an
// acked attempt concludes every outstanding episode on that device, so a
// run whose uploads all eventually succeed reports Unresolved() == 0.
func TestUploadOutcomeRecovery(t *testing.T) {
	inj, err := Compile(netCampaign(1), nil, 7) // p=1: every attempt faults
	if err != nil {
		t.Fatal(err)
	}
	if !inj.HasNetworkFaults() {
		t.Fatal("HasNetworkFaults = false")
	}
	for a := 0; a < 5; a++ {
		if f := inj.UploadFault(3, uint64(a+1)); f == trace.FaultNone {
			t.Fatalf("attempt %d: no fault at p=1", a)
		}
		inj.UploadOutcome(3, false)
	}
	rep := inj.Report()
	if rep.TotalInjected() != 5 || rep.Unresolved() != 5 {
		t.Fatalf("injected=%d unresolved=%d, want 5/5", rep.TotalInjected(), rep.Unresolved())
	}
	inj.UploadOutcome(3, true) // the eventual ack concludes them all
	if rep = inj.Report(); rep.Unresolved() != 0 {
		t.Fatalf("Unresolved = %d after ack, want 0", rep.Unresolved())
	}
	// An ack for a device with no outstanding episodes is a no-op.
	inj.UploadOutcome(99, true)
	if rep = inj.Report(); rep.Unresolved() != 0 || rep.TotalInjected() != 5 {
		t.Fatalf("stray ack changed accounting: %+v", rep)
	}
}

func TestNilInjectorNetworkFaults(t *testing.T) {
	var inj *Injector
	if inj.HasNetworkFaults() {
		t.Error("nil injector reports network faults")
	}
	if f := inj.UploadFault(1, 1); f != trace.FaultNone {
		t.Errorf("nil injector injected %v", f)
	}
	inj.UploadOutcome(1, true) // must not panic
}
