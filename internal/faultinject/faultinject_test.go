package faultinject

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

func testStations(n int) []*simnet.BaseStation {
	out := make([]*simnet.BaseStation, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, &simnet.BaseStation{
			ISP:    simnet.ISPID(i % simnet.NumISPs),
			Region: geo.Region(i % geo.NumRegions),
			RATs:   []telephony.RAT{telephony.RAT4G, telephony.RAT3G},
		})
	}
	return out
}

func TestClassRoundTrip(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("volcano"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
}

func TestRuleValidation(t *testing.T) {
	isp := simnet.ISPA
	ok := Rule{Name: "r", Class: ClassBSBlackout, Sel: Selector{BSFraction: 0.5},
		Start: time.Hour, Window: time.Hour}
	cases := []struct {
		name string
		mut  func(*Rule)
		want string // substring of the expected error; "" means valid
	}{
		{"valid", func(r *Rule) {}, ""},
		{"no name", func(r *Rule) { r.Name = "" }, "needs a name"},
		{"bad class", func(r *Rule) { r.Class = NumClasses }, "invalid class"},
		{"zero window", func(r *Rule) { r.Window = 0 }, "window"},
		{"negative start", func(r *Rule) { r.Start = -time.Hour }, "start"},
		{"fraction too high", func(r *Rule) { r.Sel.BSFraction = 1.5 }, "bs_fraction"},
		{"fraction zero", func(r *Rule) { r.Sel.BSFraction = 0 }, "bs_fraction"},
		{"flap no period", func(r *Rule) { r.Class = ClassBSFlap; r.DutyDown = 0.5 }, "period"},
		{"flap duty one", func(r *Rule) { r.Class = ClassBSFlap; r.Period = time.Hour; r.DutyDown = 1 }, "duty_down"},
		{"rss zero levels", func(r *Rule) { r.Class = ClassRSSDegrade; r.Intensity = 0 }, "levels"},
		{"rss too many levels", func(r *Rule) { r.Class = ClassRSSDegrade; r.Intensity = 9 }, "levels"},
		{"storm no intensity", func(r *Rule) { r.Class = ClassSetupStorm }, "episodes_per_device"},
		{"storm unknown cause", func(r *Rule) {
			r.Class = ClassSetupStorm
			r.Intensity = 1
			r.Causes = []telephony.FailCause{999999}
		}, "unknown fail cause"},
		{"downgrade no rat", func(r *Rule) { r.Class = ClassRATDowngrade }, "needs a rat"},
		{"downgrade ok", func(r *Rule) {
			r.Class = ClassRATDowngrade
			r.Sel = Selector{ISP: &isp, RAT: telephony.RAT5G}
		}, ""},
	}
	for _, tc := range cases {
		r := ok
		tc.mut(&r)
		err := r.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	rule := Rule{Name: "r", Class: ClassStallStorm, Start: 0, Window: time.Hour, Intensity: 1}
	if err := (&Campaign{Name: "c", Rules: []Rule{rule}}).Validate(); err != nil {
		t.Errorf("valid campaign rejected: %v", err)
	}
	if err := (&Campaign{Rules: []Rule{rule}}).Validate(); err == nil {
		t.Error("unnamed campaign accepted")
	}
	if err := (&Campaign{Name: "c"}).Validate(); err == nil {
		t.Error("empty campaign accepted")
	}
	if err := (&Campaign{Name: "c", Rules: []Rule{rule, rule}}).Validate(); err == nil {
		t.Error("duplicate rule names accepted")
	}
	var nilCampaign *Campaign
	if err := nilCampaign.Validate(); err != nil {
		t.Errorf("nil campaign should validate (calm run): %v", err)
	}
}

func TestSelectorMatching(t *testing.T) {
	ispA := simnet.ISPA
	urban := geo.Urban
	bs := &simnet.BaseStation{ISP: simnet.ISPA, Region: geo.Urban}
	if !(Selector{}).MatchBS(bs) {
		t.Error("zero selector must match everything")
	}
	if !(Selector{ISP: &ispA, Region: &urban}).MatchBS(bs) {
		t.Error("exact selector must match")
	}
	ispB := simnet.ISPB
	if (Selector{ISP: &ispB}).MatchBS(bs) {
		t.Error("wrong-ISP selector matched")
	}
	if (Selector{}).MatchBS(nil) {
		t.Error("nil BS matched")
	}
	att := simnet.Attachment{BS: bs}
	if !(Selector{Region: &urban}).MatchCamp(simnet.ISPC, att) {
		t.Error("region camp match failed")
	}
	if (Selector{Region: &urban}).MatchCamp(simnet.ISPA, simnet.Attachment{}) {
		t.Error("region selector matched a dead camp")
	}
}

func TestCompileDeterministicAndSeedSensitive(t *testing.T) {
	stations := testStations(300)
	c := DefaultBlackoutCampaign(EightMonthsWindow)
	a, err := Compile(c, stations, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(c, stations, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rules() {
		if a.Rules()[i].AffectedBS() != b.Rules()[i].AffectedBS() {
			t.Errorf("rule %d: same seed chose different station counts", i)
		}
	}
	// The blackout must actually darken some stations of the 300.
	if a.Rules()[0].AffectedBS() == 0 {
		t.Error("blackout selected no stations")
	}
	other, err := Compile(c, stations, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Rules() {
		if a.Rules()[i].AffectedBS() != other.Rules()[i].AffectedBS() {
			same = false
		}
	}
	if same {
		t.Log("seed 7 and 8 selected identical station counts for every rule (possible, but suspicious)")
	}
	if inj, err := Compile(nil, stations, 7); err != nil || inj != nil {
		t.Errorf("nil campaign must compile to a nil injector, got %v, %v", inj, err)
	}
}

// EightMonthsWindow mirrors fleet.EightMonths without importing fleet
// (which would create an import cycle in tests).
const EightMonthsWindow = 8 * 30 * 24 * time.Hour

func TestFlapDutyCycle(t *testing.T) {
	urban := geo.Urban
	c := &Campaign{Name: "flap", Rules: []Rule{{
		Name: "f", Class: ClassBSFlap,
		Sel:   Selector{Region: &urban, BSFraction: 1},
		Start: 0, Window: 100 * time.Hour,
		Period: 10 * time.Hour, DutyDown: 0.3,
	}}}
	stations := testStations(50)
	inj, err := Compile(c, stations, 1)
	if err != nil {
		t.Fatal(err)
	}
	var flapped *simnet.BaseStation
	for _, bs := range stations {
		if bs.Region == geo.Urban {
			flapped = bs
			break
		}
	}
	if flapped == nil {
		t.Fatal("no urban station generated")
	}
	down, up := 0, 0
	for h := 0; h < 100; h++ {
		if inj.BSDown(flapped, time.Duration(h)*time.Hour) {
			down++
		} else {
			up++
		}
	}
	// 30% duty cycle over ten 10h periods: expect roughly 30 down hours.
	if down < 20 || down > 40 {
		t.Errorf("flap was down %d/100 hours, want ≈30", down)
	}
	if inj.BSDown(flapped, 101*time.Hour) {
		t.Error("flap active outside its window")
	}
	// Non-matching station never flaps.
	for _, bs := range stations {
		if bs.Region != geo.Urban {
			if inj.BSDown(bs, 2*time.Hour) {
				t.Error("non-urban station flapped")
			}
			break
		}
	}
}

func TestOverlayShiftAndBlock(t *testing.T) {
	ispA := simnet.ISPA
	rural := geo.Rural
	c := &Campaign{Name: "ov", Rules: []Rule{
		{Name: "rss", Class: ClassRSSDegrade, Sel: Selector{Region: &rural},
			Start: time.Hour, Window: time.Hour, Intensity: 2},
		{Name: "down5g", Class: ClassRATDowngrade, Sel: Selector{ISP: &ispA, RAT: telephony.RAT5G},
			Start: time.Hour, Window: time.Hour},
	}}
	inj, err := Compile(c, testStations(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.LevelShift(simnet.ISPB, geo.Rural, 90*time.Minute); got != 2 {
		t.Errorf("LevelShift in window = %d, want 2", got)
	}
	if got := inj.LevelShift(simnet.ISPB, geo.Rural, 3*time.Hour); got != 0 {
		t.Errorf("LevelShift outside window = %d, want 0", got)
	}
	if got := inj.LevelShift(simnet.ISPB, geo.Urban, 90*time.Minute); got != 0 {
		t.Errorf("LevelShift wrong region = %d, want 0", got)
	}
	if !inj.RATBlocked(simnet.ISPA, telephony.RAT5G, 90*time.Minute) {
		t.Error("5G should be blocked for ISP-A inside the window")
	}
	if inj.RATBlocked(simnet.ISPB, telephony.RAT5G, 90*time.Minute) {
		t.Error("5G blocked for the wrong ISP")
	}
	if inj.RATBlocked(simnet.ISPA, telephony.RAT4G, 90*time.Minute) {
		t.Error("4G blocked by a 5G rule")
	}
	var nilInj *Injector
	if nilInj.LevelShift(simnet.ISPA, geo.Urban, 0) != 0 || nilInj.RATBlocked(simnet.ISPA, telephony.RAT5G, 0) {
		t.Error("nil injector must be a no-op overlay")
	}
}

func TestReportAccounting(t *testing.T) {
	c := &Campaign{Name: "acct", Rules: []Rule{
		{Name: "s", Class: ClassStallStorm, Start: 0, Window: time.Hour, Intensity: 1},
	}}
	inj, err := Compile(c, testStations(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	ar := inj.Rules()[0]
	ar.NoteInjected()
	ar.NoteInjected()
	ar.NoteRecovered()
	ar.NoteDropped()
	rep := inj.Report()
	if rep.Campaign != "acct" {
		t.Errorf("campaign name %q", rep.Campaign)
	}
	rr := rep.Rules[0]
	if rr.Injected != 2 || rr.Recovered != 1 || rr.Dropped != 1 {
		t.Errorf("counts %+v", rr)
	}
	if rep.Unresolved() != 1 || rep.TotalInjected() != 2 {
		t.Errorf("Unresolved=%d TotalInjected=%d", rep.Unresolved(), rep.TotalInjected())
	}
	if !strings.Contains(rep.String(), "injected=2") {
		t.Errorf("String() = %q", rep.String())
	}
	var nilRep *Report
	if nilRep.Unresolved() != 0 || nilRep.String() == "" {
		t.Error("nil report helpers must be safe")
	}
}

func TestExpectedKind(t *testing.T) {
	bearing := 0
	for c := Class(0); c < NumClasses; c++ {
		if _, ok := c.ExpectedKind(); ok {
			bearing++
		}
	}
	if bearing != 4 {
		t.Errorf("episode-bearing classes = %d, want 4 (blackout, flap, setup-storm, stall-storm)", bearing)
	}
}

func TestDefaultBlackoutCampaignValid(t *testing.T) {
	c := DefaultBlackoutCampaign(EightMonthsWindow)
	if err := c.Validate(); err != nil {
		t.Fatalf("bundled campaign invalid: %v", err)
	}
	for _, r := range c.Rules {
		if r.End() > EightMonthsWindow {
			t.Errorf("rule %q extends past the window", r.Name)
		}
	}
}
