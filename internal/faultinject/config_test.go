package faultinject

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

const goodCampaignJSON = `{
  "name": "ispb-lte-incident",
  "rules": [
    {"name": "core-storm", "class": "setup-storm", "isp": "ISP-B",
     "start_days": 30, "window_days": 14, "episodes_per_device": 3,
     "causes": ["EMM_ACCESS_BARRED", "INVALID_EMM_STATE"]},
    {"name": "rural-blackout", "class": "bs-blackout", "region": "rural",
     "bs_fraction": 0.4, "start_days": 60, "window_days": 7},
    {"name": "urban-flap", "class": "bs-flap", "region": "urban",
     "bs_fraction": 0.2, "start_days": 10, "window_days": 5,
     "period_hours": 6, "duty_down": 0.3},
    {"name": "weather", "class": "rss-degrade", "region": "remote",
     "start_days": 0, "window_days": 30, "levels": 2},
    {"name": "no5g", "class": "rat-downgrade", "isp": "ISP-A", "rat": "5G",
     "start_days": 90, "window_days": 10},
    {"name": "os-bug", "class": "stall-storm",
     "start_days": 100, "window_days": 14, "episodes_per_device": 1.5}
  ]
}`

func TestParseCampaignGood(t *testing.T) {
	c, err := ParseCampaign(strings.NewReader(goodCampaignJSON))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "ispb-lte-incident" || len(c.Rules) != 6 {
		t.Fatalf("campaign %q with %d rules", c.Name, len(c.Rules))
	}
	storm := c.Rules[0]
	if storm.Class != ClassSetupStorm || storm.Sel.ISP == nil || *storm.Sel.ISP != simnet.ISPB {
		t.Errorf("storm rule mis-parsed: %+v", storm)
	}
	if storm.Start != 30*24*time.Hour || storm.Window != 14*24*time.Hour {
		t.Errorf("storm window mis-parsed: start=%v window=%v", storm.Start, storm.Window)
	}
	if len(storm.Causes) != 2 || storm.Causes[0] != telephony.CauseEMMAccessBarred {
		t.Errorf("storm causes mis-parsed: %v", storm.Causes)
	}
	blackout := c.Rules[1]
	if blackout.Sel.Region == nil || *blackout.Sel.Region != geo.Rural || blackout.Sel.BSFraction != 0.4 {
		t.Errorf("blackout rule mis-parsed: %+v", blackout)
	}
	flap := c.Rules[2]
	if flap.Period != 6*time.Hour || flap.DutyDown != 0.3 {
		t.Errorf("flap rule mis-parsed: %+v", flap)
	}
	rss := c.Rules[3]
	if rss.Intensity != 2 {
		t.Errorf("rss levels mis-parsed: %v", rss.Intensity)
	}
	down := c.Rules[4]
	if down.Sel.RAT != telephony.RAT5G {
		t.Errorf("downgrade RAT mis-parsed: %v", down.Sel.RAT)
	}
}

func TestParseCampaignErrors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"malformed", `{`, "bad campaign JSON"},
		{"unknown field", `{"name":"c","rules":[],"oops":1}`, "bad campaign JSON"},
		{"trailing data", `{"name":"c","rules":[{"name":"r","class":"stall-storm","window_days":1,"episodes_per_device":1}]} {}`, "trailing data"},
		{"no rules", `{"name":"c","rules":[]}`, "no rules"},
		{"unknown class", `{"name":"c","rules":[{"name":"r","class":"meteor","window_days":1}]}`, "unknown fault class"},
		{"unknown isp", `{"name":"c","rules":[{"name":"r","class":"stall-storm","isp":"ISP-Z","window_days":1,"episodes_per_device":1}]}`, "unknown ISP"},
		{"unknown region", `{"name":"c","rules":[{"name":"r","class":"bs-blackout","region":"ocean","bs_fraction":0.5,"window_days":1}]}`, "unknown region"},
		{"unknown rat", `{"name":"c","rules":[{"name":"r","class":"rat-downgrade","rat":"6G","window_days":1}]}`, "unknown RAT"},
		{"unknown cause", `{"name":"c","rules":[{"name":"r","class":"setup-storm","window_days":1,"episodes_per_device":1,"causes":["NOT_A_CAUSE"]}]}`, "unknown fail cause"},
		{"invalid rule", `{"name":"c","rules":[{"name":"r","class":"bs-blackout","window_days":1}]}`, "bs_fraction"},
	}
	for _, tc := range cases {
		_, err := ParseCampaign(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestLoadCampaign(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.json")
	if err := os.WriteFile(path, []byte(goodCampaignJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCampaign(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rules) != 6 {
		t.Errorf("loaded %d rules", len(c.Rules))
	}
	if _, err := LoadCampaign(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCampaign(bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("bad file error should carry the path, got %v", err)
	}
}

// FuzzParseCampaign pins the parser's contract: arbitrary input must
// either parse into a campaign that validates, or return an error — never
// panic.
func FuzzParseCampaign(f *testing.F) {
	f.Add(goodCampaignJSON)
	f.Add(`{}`)
	f.Add(`{"name":"c","rules":[]}`)
	f.Add(`{"name":"c","rules":[{"name":"r","class":"bs-blackout","bs_fraction":0.5,"window_days":1}]}`)
	f.Add(`{"name":"c","rules":[{"name":"r","class":"rss-degrade","levels":2,"window_days":-1}]}`)
	f.Add(`[1,2,3]`)
	f.Add(`null`)
	f.Add(`{"name":" ","rules":[{"name":"r","class":"stall-storm","window_days":1e308,"episodes_per_device":1e308}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ParseCampaign(strings.NewReader(in))
		if err != nil {
			return
		}
		if c == nil {
			t.Fatal("nil campaign with nil error")
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parsed campaign fails validation: %v", err)
		}
	})
}
