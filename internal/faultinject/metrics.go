package faultinject

import "repro/internal/metrics"

// Runtime telemetry for fault campaigns, following the repo's metrics
// discipline: the labeled handles are resolved once at init (With locks),
// so the Note* calls on the episode path are single atomic adds.
var (
	mCampaigns = metrics.NewCounter("faultinject_campaigns_compiled_total",
		"Fault campaigns compiled into injectors.")
	mInjectedVec = metrics.NewCounterVec("faultinject_injected_total",
		"Fault episodes that started executing on a device, by fault class.", "class")
	mRecoveredVec = metrics.NewCounterVec("faultinject_recovered_total",
		"Injected fault episodes that ran to conclusion, by fault class.", "class")
	mDroppedVec = metrics.NewCounterVec("faultinject_dropped_total",
		"Planned fault episodes that never started (saturated device, event cap, no serving BS), by fault class.", "class")
	mActive = metrics.NewGauge("faultinject_active",
		"Injected fault episodes currently in flight across all campaigns.")

	mInjected  [NumClasses]*metrics.Counter
	mRecovered [NumClasses]*metrics.Counter
	mDropped   [NumClasses]*metrics.Counter
)

func init() {
	for c := Class(0); c < NumClasses; c++ {
		mInjected[c] = mInjectedVec.With(c.String())
		mRecovered[c] = mRecoveredVec.With(c.String())
		mDropped[c] = mDroppedVec.With(c.String())
	}
}
