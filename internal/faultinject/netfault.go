package faultinject

import (
	"repro/internal/rng"
	"repro/internal/trace"
)

// The injector doubles as the upload-path chaos source: it implements
// trace.UploadChaos, so the fleet runner can hand the same compiled
// campaign to every uploader and get deterministic transport faults.
var _ trace.UploadChaos = (*Injector)(nil)

// netDevice is one device's upload-fault state: a dedicated RNG stream
// per network rule (split off the scenario seed, the rule name, and the
// device id, so the draw sequence depends only on that device's attempt
// order — never on worker count or scheduling), plus the count of
// injected-but-unrecovered episodes per rule.
type netDevice struct {
	streams     []*rng.Source
	outstanding []int64
}

// HasNetworkFaults reports whether the compiled campaign contains any
// upload-path rules; callers skip the uploader wiring entirely otherwise.
func (inj *Injector) HasNetworkFaults() bool {
	return inj != nil && len(inj.netRules) > 0
}

// UploadFault implements trace.UploadChaos: consulted once per batch send
// attempt. Every network rule draws on every attempt — firing or not —
// so each rule's stream position is a pure function of the device's
// attempt count and the first rule that fires (campaign order) wins.
func (inj *Injector) UploadFault(device, seq uint64) trace.UploadFaultClass {
	if !inj.HasNetworkFaults() {
		return trace.FaultNone
	}
	inj.netMu.Lock()
	defer inj.netMu.Unlock()
	nd := inj.netDevs[device]
	if nd == nil {
		nd = &netDevice{
			streams:     make([]*rng.Source, len(inj.netRules)),
			outstanding: make([]int64, len(inj.netRules)),
		}
		for i, ar := range inj.netRules {
			nd.streams[i] = rng.SplitIndexed(inj.seed, "netfault/"+ar.Name, int(device))
		}
		inj.netDevs[device] = nd
	}
	selected := -1
	for i, ar := range inj.netRules {
		if nd.streams[i].Bool(ar.Intensity) && selected < 0 {
			selected = i
		}
	}
	if selected < 0 {
		return trace.FaultNone
	}
	ar := inj.netRules[selected]
	ar.NoteInjected()
	nd.outstanding[selected]++
	switch ar.Class {
	case ClassCollectorOutage:
		return trace.FaultDial
	case ClassAckLoss:
		return trace.FaultAckLoss
	case ClassLinkFlaky:
		// A flaky link is lossy or slow in equal measure; the coin comes
		// from the rule's own stream, so it only advances when the rule
		// fires — still a pure function of the device's attempt history.
		if nd.streams[selected].Bool(0.5) {
			return trace.FaultTruncate
		}
		return trace.FaultSlow
	}
	return trace.FaultNone
}

// UploadOutcome implements trace.UploadChaos. An acknowledged batch
// proves the device's upload path works again, so every outstanding
// episode on that device concludes — the network analogue of a device
// returning to a legal steady state after a radio fault.
func (inj *Injector) UploadOutcome(device uint64, acked bool) {
	if !inj.HasNetworkFaults() || !acked {
		return
	}
	inj.netMu.Lock()
	defer inj.netMu.Unlock()
	nd := inj.netDevs[device]
	if nd == nil {
		return
	}
	for i, n := range nd.outstanding {
		for ; n > 0; n-- {
			inj.netRules[i].NoteRecovered()
		}
		nd.outstanding[i] = 0
	}
}
