package faultinject

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// ActiveRule is one compiled campaign rule: the rule itself, the concrete
// base stations it darkens (for blackouts and flaps), and its episode
// life-cycle counters. Counters are atomics because every worker shard
// touches them; they feed telemetry and the post-run Report, never the
// simulation, so they cannot perturb determinism.
type ActiveRule struct {
	Rule

	// down holds the selected blackout/flap targets; phase the per-BS
	// flap phase offset. Both are written only during Compile and read-
	// only afterwards, so shards may consult them without locks.
	down  map[*simnet.BaseStation]struct{}
	phase map[*simnet.BaseStation]time.Duration

	causePick *rng.Categorical

	injected  atomic.Int64
	recovered atomic.Int64
	dropped   atomic.Int64
}

// AffectedBS returns how many base stations the rule darkens (0 for
// classes that do not target stations).
func (ar *ActiveRule) AffectedBS() int { return len(ar.down) }

// NoteInjected records that an episode planned by this rule actually
// started executing on a device.
func (ar *ActiveRule) NoteInjected() {
	ar.injected.Add(1)
	mInjected[ar.Class].Inc()
	mActive.Add(1)
}

// NoteRecovered records that an injected episode ran to conclusion — the
// device returned to a legal steady state and the monitor recorded or
// filtered the event, exactly as a real outage would end.
func (ar *ActiveRule) NoteRecovered() {
	ar.recovered.Add(1)
	mRecovered[ar.Class].Inc()
	mActive.Add(-1)
}

// NoteDropped records that a planned episode never started (the device
// was saturated past the retry budget, hit its event cap, or had no
// serving BS to fail against).
func (ar *ActiveRule) NoteDropped() {
	ar.dropped.Add(1)
	mDropped[ar.Class].Inc()
}

// SampleCause draws a Data_Setup_Error cause from the rule's override mix
// (ok is false when the rule has none and the environment mix applies).
func (ar *ActiveRule) SampleCause(r *rng.Source) (telephony.FailCause, bool) {
	if ar.causePick == nil {
		return telephony.CauseNone, false
	}
	return ar.Causes[ar.causePick.Draw(r)], true
}

// downAt reports whether the rule holds bs out of service at virtual
// time at.
func (ar *ActiveRule) downAt(bs *simnet.BaseStation, at time.Duration) bool {
	if !ar.ActiveAt(at) {
		return false
	}
	if _, ok := ar.down[bs]; !ok {
		return false
	}
	if ar.Class == ClassBSBlackout {
		return true
	}
	// Flap: down during the first DutyDown of each period, phase-shifted
	// per BS so a flap rule does not synchronize the whole deployment.
	pos := math.Mod((at - ar.Start + ar.phase[bs]).Seconds(), ar.Period.Seconds())
	return pos < ar.DutyDown*ar.Period.Seconds()
}

// Injector is a compiled campaign bound to one deployment. It is shared
// across worker shards and implements simnet.Overlay; the overlay queries
// are read-only, and the network-fault state (netfault.go) is the one
// mutable part, guarded by its own mutex.
type Injector struct {
	campaign *Campaign
	rules    []*ActiveRule
	seed     int64

	// Per-class rule indices so the hot overlay queries skip unrelated
	// rules.
	downRules  []*ActiveRule // blackout + flap
	shiftRules []*ActiveRule // rss-degrade
	ratRules   []*ActiveRule // rat-downgrade
	stormRules []*ActiveRule // setup-storm + stall-storm
	netRules   []*ActiveRule // collector-outage + ack-loss + link-flaky

	netMu   sync.Mutex
	netDevs map[uint64]*netDevice
}

// Compile binds a campaign to a deployment. Station selection for
// blackout/flap rules draws from a stream split off (seed, rule name), so
// the same campaign on the same deployment darkens the same stations for
// any worker count. A nil campaign compiles to a nil injector.
func Compile(c *Campaign, stations []*simnet.BaseStation, seed int64) (*Injector, error) {
	if c == nil {
		return nil, nil
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{campaign: c, seed: seed, netDevs: make(map[uint64]*netDevice)}
	for i := range c.Rules {
		ar := &ActiveRule{Rule: c.Rules[i]}
		switch ar.Class {
		case ClassCollectorOutage, ClassAckLoss, ClassLinkFlaky:
			inj.netRules = append(inj.netRules, ar)
		case ClassBSBlackout, ClassBSFlap:
			r := rng.SplitIndexed(seed, "faultinject/"+ar.Name, i)
			ar.down = make(map[*simnet.BaseStation]struct{})
			if ar.Class == ClassBSFlap {
				ar.phase = make(map[*simnet.BaseStation]time.Duration)
			}
			for _, bs := range stations {
				if !ar.Sel.MatchBS(bs) || !r.Bool(ar.Sel.BSFraction) {
					continue
				}
				ar.down[bs] = struct{}{}
				if ar.Class == ClassBSFlap {
					ar.phase[bs] = time.Duration(r.Float64() * float64(ar.Period))
				}
			}
			inj.downRules = append(inj.downRules, ar)
		case ClassRSSDegrade:
			inj.shiftRules = append(inj.shiftRules, ar)
		case ClassRATDowngrade:
			inj.ratRules = append(inj.ratRules, ar)
		case ClassSetupStorm, ClassStallStorm:
			if len(ar.Causes) > 0 {
				ws := make([]float64, len(ar.Causes))
				for j := range ws {
					ws[j] = 1
				}
				ar.causePick = rng.NewCategorical(ws)
			}
			inj.stormRules = append(inj.stormRules, ar)
		}
		inj.rules = append(inj.rules, ar)
	}
	mCampaigns.Inc()
	return inj, nil
}

// Campaign returns the source campaign.
func (inj *Injector) Campaign() *Campaign { return inj.campaign }

// Rules returns the compiled rules in campaign order.
func (inj *Injector) Rules() []*ActiveRule { return inj.rules }

// StormRules returns the compiled setup-storm and stall-storm rules.
func (inj *Injector) StormRules() []*ActiveRule { return inj.stormRules }

// DownRuleFor returns the first rule holding bs out of service at virtual
// time at, or nil when the station is up.
func (inj *Injector) DownRuleFor(bs *simnet.BaseStation, at time.Duration) *ActiveRule {
	if inj == nil || bs == nil {
		return nil
	}
	for _, ar := range inj.downRules {
		if ar.downAt(bs, at) {
			return ar
		}
	}
	return nil
}

// BSDown reports whether any rule holds bs out of service at virtual
// time at.
func (inj *Injector) BSDown(bs *simnet.BaseStation, at time.Duration) bool {
	return inj.DownRuleFor(bs, at) != nil
}

// LevelShift implements simnet.Overlay: the summed signal-level downshift
// of every rss-degrade rule covering (isp, region) at virtual time at.
func (inj *Injector) LevelShift(isp simnet.ISPID, region geo.Region, at time.Duration) int {
	if inj == nil {
		return 0
	}
	shift := 0
	for _, ar := range inj.shiftRules {
		if !ar.ActiveAt(at) {
			continue
		}
		if ar.Sel.ISP != nil && *ar.Sel.ISP != isp {
			continue
		}
		if ar.Sel.Region != nil && *ar.Sel.Region != region {
			continue
		}
		shift += int(math.Round(ar.Intensity))
	}
	return shift
}

// RATBlocked implements simnet.Overlay: whether a rat-downgrade rule
// blocks the technology for the ISP at virtual time at.
func (inj *Injector) RATBlocked(isp simnet.ISPID, rat telephony.RAT, at time.Duration) bool {
	if inj == nil {
		return false
	}
	for _, ar := range inj.ratRules {
		if !ar.ActiveAt(at) || ar.Sel.RAT != rat {
			continue
		}
		if ar.Sel.ISP != nil && *ar.Sel.ISP != isp {
			continue
		}
		return true
	}
	return false
}

// RuleReport is one rule's episode accounting after a run.
type RuleReport struct {
	Name       string
	Class      string
	AffectedBS int
	Injected   int64
	Recovered  int64
	Dropped    int64
}

// Report summarizes a campaign's execution: per-rule injected, recovered
// and dropped episode counts. Unresolved() == 0 is the core recovery
// invariant — every injected outage concluded inside the run.
type Report struct {
	Campaign string
	Rules    []RuleReport
}

// Report snapshots the injector's counters (call after the run).
func (inj *Injector) Report() *Report {
	if inj == nil {
		return nil
	}
	rep := &Report{Campaign: inj.campaign.Name}
	for _, ar := range inj.rules {
		rep.Rules = append(rep.Rules, RuleReport{
			Name:       ar.Name,
			Class:      ar.Class.String(),
			AffectedBS: ar.AffectedBS(),
			Injected:   ar.injected.Load(),
			Recovered:  ar.recovered.Load(),
			Dropped:    ar.dropped.Load(),
		})
	}
	return rep
}

// Unresolved returns the number of injected episodes that never
// concluded.
func (r *Report) Unresolved() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for _, rr := range r.Rules {
		n += rr.Injected - rr.Recovered
	}
	return n
}

// TotalInjected returns the number of episodes that started across all
// rules.
func (r *Report) TotalInjected() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for _, rr := range r.Rules {
		n += rr.Injected
	}
	return n
}

// String renders a one-line-per-rule summary.
func (r *Report) String() string {
	if r == nil {
		return "no fault campaign"
	}
	out := fmt.Sprintf("campaign %q:", r.Campaign)
	for _, rr := range r.Rules {
		out += fmt.Sprintf("\n  %-20s %-13s injected=%-6d recovered=%-6d dropped=%-4d", rr.Name, rr.Class, rr.Injected, rr.Recovered, rr.Dropped)
		if rr.AffectedBS > 0 {
			out += fmt.Sprintf(" bs=%d", rr.AffectedBS)
		}
	}
	return out
}
