package faultinject

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/geo"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// CampaignConfig is the on-disk JSON form of a Campaign, in human units
// (days, hours, registry names) rather than internal ones. Example:
//
//	{
//	  "name": "ispb-lte-incident",
//	  "rules": [
//	    {"name": "core-storm", "class": "setup-storm", "isp": "ISP-B",
//	     "start_days": 30, "window_days": 14, "episodes_per_device": 3,
//	     "causes": ["EMM_ACCESS_BARRED", "INVALID_EMM_STATE"]},
//	    {"name": "rural-blackout", "class": "bs-blackout", "region": "rural",
//	     "bs_fraction": 0.4, "start_days": 60, "window_days": 7}
//	  ]
//	}
type CampaignConfig struct {
	Name  string       `json:"name"`
	Rules []RuleConfig `json:"rules"`
}

// RuleConfig is the JSON form of one Rule.
type RuleConfig struct {
	Name  string `json:"name"`
	Class string `json:"class"`

	// Selector, all optional: ISP by display name ("ISP-A"), region by
	// name ("urban", ... "transport-hub"), RAT by name ("2G".."5G").
	ISP        string  `json:"isp,omitempty"`
	Region     string  `json:"region,omitempty"`
	RAT        string  `json:"rat,omitempty"`
	BSFraction float64 `json:"bs_fraction,omitempty"`

	StartDays  float64 `json:"start_days"`
	WindowDays float64 `json:"window_days"`

	// Class-specific intensity knobs; exactly one family applies.
	Levels            int     `json:"levels,omitempty"`              // rss-degrade
	EpisodesPerDevice float64 `json:"episodes_per_device,omitempty"` // storms
	Probability       float64 `json:"probability,omitempty"`         // network faults, per upload attempt

	PeriodHours float64 `json:"period_hours,omitempty"` // bs-flap
	DutyDown    float64 `json:"duty_down,omitempty"`    // bs-flap

	Causes []string `json:"causes,omitempty"` // setup-storm cause names
}

// ParseCampaign decodes and validates a JSON campaign. Unknown fields are
// rejected so typos in campaign files surface as errors instead of
// silently inert rules.
func ParseCampaign(r io.Reader) (*Campaign, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg CampaignConfig
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("faultinject: bad campaign JSON: %w", err)
	}
	// A second document in the same stream is a malformed file, not a
	// second campaign.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("faultinject: trailing data after campaign document")
	}
	return cfg.Campaign()
}

// LoadCampaign reads a campaign from a JSON file.
func LoadCampaign(path string) (*Campaign, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := ParseCampaign(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// Campaign converts the config to a validated Campaign.
func (cfg *CampaignConfig) Campaign() (*Campaign, error) {
	c := &Campaign{Name: cfg.Name}
	for i := range cfg.Rules {
		r, err := cfg.Rules[i].rule()
		if err != nil {
			return nil, err
		}
		c.Rules = append(c.Rules, r)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

const day = 24 * time.Hour

func (rc *RuleConfig) rule() (Rule, error) {
	class, err := ParseClass(rc.Class)
	if err != nil {
		return Rule{}, fmt.Errorf("faultinject: rule %q: %w", rc.Name, err)
	}
	r := Rule{
		Name:   rc.Name,
		Class:  class,
		Start:  time.Duration(rc.StartDays * float64(day)),
		Window: time.Duration(rc.WindowDays * float64(day)),
		Period: time.Duration(rc.PeriodHours * float64(time.Hour)),
		Sel:    Selector{BSFraction: rc.BSFraction},
	}
	r.DutyDown = rc.DutyDown
	if rc.ISP != "" {
		isp, err := parseISP(rc.ISP)
		if err != nil {
			return Rule{}, fmt.Errorf("faultinject: rule %q: %w", rc.Name, err)
		}
		r.Sel.ISP = &isp
	}
	if rc.Region != "" {
		reg, err := parseRegion(rc.Region)
		if err != nil {
			return Rule{}, fmt.Errorf("faultinject: rule %q: %w", rc.Name, err)
		}
		r.Sel.Region = &reg
	}
	if rc.RAT != "" {
		rat, err := parseRAT(rc.RAT)
		if err != nil {
			return Rule{}, fmt.Errorf("faultinject: rule %q: %w", rc.Name, err)
		}
		r.Sel.RAT = rat
	}
	switch class {
	case ClassRSSDegrade:
		r.Intensity = float64(rc.Levels)
	case ClassSetupStorm, ClassStallStorm:
		r.Intensity = rc.EpisodesPerDevice
	case ClassCollectorOutage, ClassAckLoss, ClassLinkFlaky:
		r.Intensity = rc.Probability
	}
	for _, name := range rc.Causes {
		cause, err := parseCause(name)
		if err != nil {
			return Rule{}, fmt.Errorf("faultinject: rule %q: %w", rc.Name, err)
		}
		r.Causes = append(r.Causes, cause)
	}
	return r, nil
}

func parseISP(s string) (simnet.ISPID, error) {
	for id := simnet.ISPID(0); id < simnet.NumISPs; id++ {
		if id.String() == s {
			return id, nil
		}
	}
	return 0, fmt.Errorf("unknown ISP %q", s)
}

func parseRegion(s string) (geo.Region, error) {
	for reg := geo.Region(0); reg < geo.NumRegions; reg++ {
		if reg.String() == s {
			return reg, nil
		}
	}
	return 0, fmt.Errorf("unknown region %q", s)
}

func parseRAT(s string) (telephony.RAT, error) {
	for _, rat := range []telephony.RAT{telephony.RAT2G, telephony.RAT3G, telephony.RAT4G, telephony.RAT5G} {
		if rat.String() == s {
			return rat, nil
		}
	}
	return telephony.RATUnknown, fmt.Errorf("unknown RAT %q", s)
}

func parseCause(s string) (telephony.FailCause, error) {
	for _, info := range telephony.AllCauses() {
		if info.Name == s {
			return info.Cause, nil
		}
	}
	return telephony.CauseNone, fmt.Errorf("unknown fail cause %q", s)
}
