// Package geo models the geographic context of base stations and devices.
//
// The paper attributes several findings to geography: top-ranking failing
// BSes concentrate in crowded urban areas; extremely long failures (up to
// 25.5 hours) come from neglected BSes in remote mountain/offshore regions;
// and the level-5 RSS anomaly comes from densely deployed BSes around
// public transport hubs.
package geo

// Region classifies where a base station is deployed.
type Region uint8

// Regions.
const (
	Urban Region = iota
	Suburban
	Rural
	Remote       // mountain / offshore; BSes long neglected and in disrepair
	TransportHub // dense multi-ISP deployment; excellent RSS, heavy interference

	NumRegions = 5
)

func (r Region) String() string {
	switch r {
	case Urban:
		return "urban"
	case Suburban:
		return "suburban"
	case Rural:
		return "rural"
	case Remote:
		return "remote"
	case TransportHub:
		return "transport-hub"
	default:
		return "unknown"
	}
}

// Profile captures the per-region parameters the radio environment uses.
type Profile struct {
	Region Region
	// BSShare is the fraction of deployed BSes in this region type.
	BSShare float64
	// TrafficShare is the fraction of device attach time spent here;
	// population concentrates in urban areas and hubs.
	TrafficShare float64
	// InterferenceFactor scales failure hazard from ambient interference
	// and adjacent-channel overlap (highest at transport hubs, §3.3).
	InterferenceFactor float64
	// NeglectFactor scales failure duration: remote BSes are "long
	// neglected and in disrepair", producing multi-hour outages.
	NeglectFactor float64
	// DenseDeployment marks regions where ISPs deploy without coordination
	// at high density, triggering EMM mobility-management failures despite
	// excellent RSS.
	DenseDeployment bool
	// DwellFactor scales how long a visit to this region lasts relative
	// to a normal camp: transport-hub visits are brief (passing through a
	// station), which is why excellent-RSS failures look so dense once
	// prevalence is normalized by connected time (Figure 15).
	DwellFactor float64
}

// Profiles returns the per-region parameter table indexed by Region.
func Profiles() [NumRegions]Profile {
	return [NumRegions]Profile{
		Urban:        {Region: Urban, BSShare: 0.42, TrafficShare: 0.55, InterferenceFactor: 1.3, NeglectFactor: 1.0, DwellFactor: 1.0},
		Suburban:     {Region: Suburban, BSShare: 0.30, TrafficShare: 0.25, InterferenceFactor: 1.0, NeglectFactor: 1.2, DwellFactor: 1.0},
		Rural:        {Region: Rural, BSShare: 0.20, TrafficShare: 0.10, InterferenceFactor: 0.8, NeglectFactor: 2.0, DwellFactor: 1.0},
		Remote:       {Region: Remote, BSShare: 0.05, TrafficShare: 0.02, InterferenceFactor: 0.7, NeglectFactor: 12.0, DwellFactor: 1.0},
		TransportHub: {Region: TransportHub, BSShare: 0.03, TrafficShare: 0.08, InterferenceFactor: 2.2, NeglectFactor: 1.0, DenseDeployment: true, DwellFactor: 0.12},
	}
}

// Profile returns the parameters for a single region.
func (r Region) Profile() Profile {
	if int(r) >= NumRegions {
		return Profile{Region: r}
	}
	return Profiles()[r]
}
