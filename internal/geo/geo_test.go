package geo

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestRegionStrings(t *testing.T) {
	want := map[Region]string{
		Urban: "urban", Suburban: "suburban", Rural: "rural",
		Remote: "remote", TransportHub: "transport-hub", Region(99): "unknown",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}

func TestProfileSharesSum(t *testing.T) {
	var bs, traffic float64
	for _, p := range Profiles() {
		bs += p.BSShare
		traffic += p.TrafficShare
	}
	if math.Abs(bs-1) > 1e-9 {
		t.Errorf("BS shares sum to %v, want 1", bs)
	}
	if math.Abs(traffic-1) > 1e-9 {
		t.Errorf("traffic shares sum to %v, want 1", traffic)
	}
}

func TestProfileIndexConsistency(t *testing.T) {
	for i, p := range Profiles() {
		if p.Region != Region(i) {
			t.Errorf("profile at index %d has Region %v", i, p.Region)
		}
		if p.Region.Profile() != p {
			t.Errorf("Profile() accessor mismatch for %v", p.Region)
		}
	}
}

func TestPaperDrivenOrderings(t *testing.T) {
	ps := Profiles()
	// Transport hubs have the strongest interference (dense uncoordinated
	// deployment, adjacent-channel overlap).
	for _, p := range ps {
		if p.Region != TransportHub && p.InterferenceFactor >= ps[TransportHub].InterferenceFactor {
			t.Errorf("%v interference %v >= transport hub %v", p.Region, p.InterferenceFactor, ps[TransportHub].InterferenceFactor)
		}
	}
	// Remote regions have by far the largest neglect factor (25.5 h outages).
	for _, p := range ps {
		if p.Region != Remote && p.NeglectFactor >= ps[Remote].NeglectFactor {
			t.Errorf("%v neglect %v >= remote %v", p.Region, p.NeglectFactor, ps[Remote].NeglectFactor)
		}
	}
	if !ps[TransportHub].DenseDeployment {
		t.Error("transport hub must be dense-deployment")
	}
	if ps[Urban].DenseDeployment {
		t.Error("urban must not be flagged dense-deployment")
	}
}

func TestOutOfRangeProfile(t *testing.T) {
	p := Region(200).Profile()
	if p.BSShare != 0 || p.TrafficShare != 0 {
		t.Error("out-of-range region should produce zero profile")
	}
}

func TestMobilityStationaryDistribution(t *testing.T) {
	r := rng.New(11)
	visits := make([]int, NumRegions)
	const devices, steps = 200, 400
	for d := 0; d < devices; d++ {
		m := NewMobility(r)
		for s := 0; s < steps; s++ {
			visits[m.Next(r)]++
		}
	}
	total := float64(devices * steps)
	for _, p := range Profiles() {
		got := float64(visits[p.Region]) / total
		// The Markov chain's stationary distribution tracks traffic shares
		// loosely (self-loops skew it); require the right order of magnitude.
		if got < p.TrafficShare/3 || got > p.TrafficShare*3+0.05 {
			t.Errorf("%v visit share %.3f vs traffic share %.3f", p.Region, got, p.TrafficShare)
		}
	}
}

func TestMobilityPersistence(t *testing.T) {
	r := rng.New(12)
	m := NewMobility(r)
	same, steps := 0, 2000
	prev := m.Region()
	for i := 0; i < steps; i++ {
		cur := m.Next(r)
		if cur == prev {
			same++
		}
		prev = cur
	}
	// Visits are persistent: the self-transition rate is far above what
	// i.i.d. sampling over traffic shares would give (~0.40).
	if frac := float64(same) / float64(steps); frac < 0.55 {
		t.Errorf("self-transition rate %.2f, want persistent (> 0.55)", frac)
	}
}

func TestMobilityHubIsTransient(t *testing.T) {
	r := rng.New(13)
	m := NewMobility(r)
	hubRuns, runLen := 0, 0
	var totalRun int
	for i := 0; i < 50000; i++ {
		if m.Next(r) == TransportHub {
			runLen++
		} else if runLen > 0 {
			hubRuns++
			totalRun += runLen
			runLen = 0
		}
	}
	if hubRuns == 0 {
		t.Skip("no hub visits in the sample")
	}
	if mean := float64(totalRun) / float64(hubRuns); mean > 2.5 {
		t.Errorf("mean hub stay %.1f steps; hub visits must be brief", mean)
	}
}

func TestMobilityDeterministic(t *testing.T) {
	a, b := NewMobility(rng.New(7)), NewMobility(rng.New(7))
	ra, rb := rng.New(8), rng.New(8)
	for i := 0; i < 100; i++ {
		if a.Next(ra) != b.Next(rb) {
			t.Fatal("mobility not deterministic")
		}
	}
}
