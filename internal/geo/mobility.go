package geo

import "repro/internal/rng"

// Mobility is a per-device Markov model over region types: a phone that is
// in a suburb now is most likely still in a suburb at the next sample, with
// occasional commutes through transport hubs. Stationary visit frequencies
// stay close to the TrafficShare profile, but visits are *persistent*,
// which matters for dwell accounting and for RAT-transition dynamics (a
// commuter hits the hub twice a day; an i.i.d. sampler smears those visits
// uniformly).
type Mobility struct {
	state Region
	rows  *[NumRegions]*rng.Categorical
}

// mobilityRows builds the shared transition table: strong self-loops with
// off-diagonal mass proportional to the destination's traffic share.
var mobilityRows = func() *[NumRegions]*rng.Categorical {
	profiles := Profiles()
	var rows [NumRegions]*rng.Categorical
	for from := 0; from < NumRegions; from++ {
		stay := 0.72
		if Region(from) == TransportHub {
			stay = 0.15 // nobody lives at the station
		}
		ws := make([]float64, NumRegions)
		var offTotal float64
		for to := 0; to < NumRegions; to++ {
			if to != from {
				offTotal += profiles[to].TrafficShare
			}
		}
		for to := 0; to < NumRegions; to++ {
			if to == from {
				ws[to] = stay
			} else {
				ws[to] = (1 - stay) * profiles[to].TrafficShare / offTotal
			}
		}
		rows[from] = rng.NewCategorical(ws)
	}
	return &rows
}()

// NewMobility starts a device at a region drawn from the traffic shares.
func NewMobility(r *rng.Source) *Mobility {
	profiles := Profiles()
	ws := make([]float64, NumRegions)
	for i, p := range profiles {
		ws[i] = p.TrafficShare
	}
	start := Region(rng.NewCategorical(ws).Draw(r))
	return &Mobility{state: start, rows: mobilityRows}
}

// Region returns the current region.
func (m *Mobility) Region() Region { return m.state }

// Next advances one mobility step and returns the new region.
func (m *Mobility) Next(r *rng.Source) Region {
	m.state = Region(m.rows[m.state].Draw(r))
	return m.state
}
