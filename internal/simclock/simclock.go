// Package simclock provides a deterministic discrete-event simulation
// runtime: a virtual clock and an event scheduler.
//
// The paper's measurement spans eight months of wall-clock time on real
// phones. We substitute virtual time: every timer in the reproduced Android
// stack (probation timers, probe timeouts, stall detection windows) is
// scheduled on a Scheduler, so months of fleet activity execute in seconds
// and runs are exactly reproducible for a given seed.
//
// Internally the scheduler is a two-level timer wheel: events for the
// current coarse tick live in a small value-type binary heap, while events
// for future ticks are batched into unsorted per-tick buckets (an O(1)
// append) and heapified only when their tick is promoted. Months-out
// episode plans therefore never pay per-event heap maintenance against the
// sub-second timers of the episode currently executing, and the value-type
// event records mean Post/PostIdx scheduling allocates nothing. The
// execution order is identical to a single global (at, seq) min-heap.
package simclock

import (
	"fmt"
	"time"
)

// Time is virtual time elapsed since the start of the simulation.
type Time = time.Duration

// tickSpan is the wheel granularity. One virtual hour keeps an episode's
// burst of sub-minute timers inside the current-tick heap while spreading
// a window's worth of planned episodes across cheap unsorted buckets.
const tickSpan = time.Hour

// event is one scheduled entry. Events are stored by value in the wheel's
// slices; only handle-carrying entries (At/After) allocate a Timer.
type event struct {
	at  Time
	seq uint64
	fn  func()
	ifn func(int32)
	idx int32
	t   *Timer
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; a fleet run shards devices across independent
// Schedulers instead of sharing one.
type Scheduler struct {
	now    Time
	seq    uint64
	halted bool

	// curTick is the most recently promoted wheel tick. cur is a min-heap
	// on (at, seq) holding every event due at or before curTick's end; far
	// holds unsorted buckets for strictly later ticks, ordered by the
	// ticks min-heap. queued counts all stored events, including stopped
	// timers not yet popped.
	curTick int64
	cur     []event
	far     map[int64][]event
	ticks   []int64
	free    [][]event
	queued  int
}

// NewScheduler returns a Scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{far: make(map[int64][]event)}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Timer is a handle to a scheduled event; it can be stopped before firing.
type Timer struct {
	at      Time
	stopped bool
	fired   bool
}

// Stop cancels the timer. It reports whether the call prevented the timer
// from firing (false if it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && !t.fired && !t.stopped }

// When returns the virtual time at which the timer fires (or fired).
func (t *Timer) When() Time { return t.at }

// At schedules fn to run at absolute virtual time at and returns a
// stoppable handle. Scheduling in the past panics: it is always a logic
// error in a discrete-event model.
func (s *Scheduler) At(at Time, fn func()) *Timer {
	if fn == nil {
		panic("simclock: nil event function")
	}
	t := &Timer{at: at}
	s.schedule(event{at: at, fn: fn, t: t})
	return t
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Post schedules fn at absolute virtual time at without a handle. It is
// the fire-and-forget variant of At for call sites that never Stop the
// timer: no Timer is allocated and the event lives by value in the wheel.
func (s *Scheduler) Post(at Time, fn func()) {
	if fn == nil {
		panic("simclock: nil event function")
	}
	s.schedule(event{at: at, fn: fn})
}

// PostAfter schedules fn to run d after the current virtual time, without
// a handle.
func (s *Scheduler) PostAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.Post(s.now+d, fn)
}

// PostIdx schedules fn(idx) at absolute virtual time at. A caller that
// pre-plans many events can reuse one method-value fn for all of them and
// pass the plan index here, so scheduling N events costs zero allocations
// instead of N closures.
func (s *Scheduler) PostIdx(at Time, fn func(int32), idx int32) {
	if fn == nil {
		panic("simclock: nil event function")
	}
	s.schedule(event{at: at, ifn: fn, idx: idx})
}

// schedule stamps the event's sequence number and files it: current-tick
// (or earlier, for schedules issued between Runs) events go straight into
// the sorted heap, future ticks into unsorted buckets.
func (s *Scheduler) schedule(e event) {
	if e.at < s.now {
		panic(fmt.Sprintf("simclock: schedule at %v before now %v", e.at, s.now))
	}
	s.seq++
	e.seq = s.seq
	s.queued++
	tk := int64(e.at / tickSpan)
	if tk <= s.curTick {
		s.pushCur(e)
		return
	}
	b, ok := s.far[tk]
	if !ok {
		if n := len(s.free); n > 0 {
			b = s.free[n-1]
			s.free = s.free[:n-1]
		}
		s.pushTick(tk)
	}
	s.far[tk] = append(b, e)
}

// promote drains bucket after bucket into the current-tick heap until it
// holds at least one event, reporting whether any event is pending.
func (s *Scheduler) promote() bool {
	for len(s.cur) == 0 {
		if len(s.ticks) == 0 {
			return false
		}
		tk := s.popTick()
		b := s.far[tk]
		delete(s.far, tk)
		s.curTick = tk
		// Adopt the bucket's storage as the new heap and recycle the
		// drained heap's array as a future bucket.
		if cap(s.cur) > 0 {
			s.free = append(s.free, s.cur[:0])
		}
		s.cur = b
		for i := len(b)/2 - 1; i >= 0; i-- {
			s.siftDown(i)
		}
	}
	return true
}

// Step executes the single earliest pending event, advancing the clock to
// its deadline. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for {
		if len(s.cur) == 0 && !s.promote() {
			return false
		}
		e := s.popCur()
		s.queued--
		if e.t != nil {
			if e.t.stopped {
				continue
			}
			e.t.fired = true
		}
		s.now = e.at
		if e.fn != nil {
			e.fn()
		} else {
			e.ifn(e.idx)
		}
		return true
	}
}

// peekAt returns the deadline of the earliest pending event, discarding
// stopped timers it encounters on the way.
func (s *Scheduler) peekAt() (Time, bool) {
	for {
		if len(s.cur) == 0 && !s.promote() {
			return 0, false
		}
		e := &s.cur[0]
		if e.t != nil && e.t.stopped {
			s.popCur()
			s.queued--
			continue
		}
		return e.at, true
	}
}

// Run executes events in timestamp order until the queue is empty, the
// clock passes until, or Halt is called. It returns the number of events
// executed. The clock is left at until if the queue drained earlier, so a
// subsequent Run continues from a well-defined point.
func (s *Scheduler) Run(until Time) int {
	s.halted = false
	n := 0
	for !s.halted {
		at, ok := s.peekAt()
		if !ok || at > until {
			break
		}
		s.Step()
		n++
	}
	if !s.halted && s.now < until {
		s.now = until
	}
	return n
}

// RunAll executes events until the queue is empty or Halt is called,
// returning the number of events executed.
func (s *Scheduler) RunAll() int {
	s.halted = false
	n := 0
	for !s.halted && s.Step() {
		n++
	}
	return n
}

// Halt stops a Run/RunAll in progress after the current event returns.
func (s *Scheduler) Halt() { s.halted = true }

// Reset returns the scheduler to its initial state — clock at zero, no
// pending events — while retaining its internal storage. A fleet worker
// lane runs one device to completion, Resets, and reuses the scheduler
// for the next device, so steady-state simulation does not grow the heap.
func (s *Scheduler) Reset() {
	s.now, s.seq, s.curTick = 0, 0, 0
	s.halted = false
	s.queued = 0
	for i := range s.cur {
		s.cur[i] = event{}
	}
	s.cur = s.cur[:0]
	for tk, b := range s.far {
		for i := range b {
			b[i] = event{}
		}
		s.free = append(s.free, b[:0])
		delete(s.far, tk)
	}
	s.ticks = s.ticks[:0]
}

// QueueLen returns the raw event-queue length, including stopped-but-
// unpopped timers. Unlike Pending it is O(1), so instrumentation (the
// fleet's per-shard queue-depth gauge) can sample it every simulated
// hour without scanning the heap.
func (s *Scheduler) QueueLen() int { return s.queued }

// Pending returns the number of pending (not stopped) events.
func (s *Scheduler) Pending() int {
	n := 0
	for i := range s.cur {
		if e := &s.cur[i]; e.t == nil || !e.t.stopped {
			n++
		}
	}
	for _, b := range s.far {
		for i := range b {
			if e := &b[i]; e.t == nil || !e.t.stopped {
				n++
			}
		}
	}
	return n
}

// --- current-tick heap: min-heap on (at, seq) over value events ---------

func (s *Scheduler) pushCur(e event) {
	s.cur = append(s.cur, e)
	i := len(s.cur) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(&s.cur[i], &s.cur[parent]) {
			break
		}
		s.cur[i], s.cur[parent] = s.cur[parent], s.cur[i]
		i = parent
	}
}

func (s *Scheduler) popCur() event {
	e := s.cur[0]
	n := len(s.cur) - 1
	s.cur[0] = s.cur[n]
	s.cur[n] = event{}
	s.cur = s.cur[:n]
	if n > 0 {
		s.siftDown(0)
	}
	return e
}

func (s *Scheduler) siftDown(i int) {
	n := len(s.cur)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && evLess(&s.cur[r], &s.cur[l]) {
			min = r
		}
		if !evLess(&s.cur[min], &s.cur[i]) {
			return
		}
		s.cur[i], s.cur[min] = s.cur[min], s.cur[i]
		i = min
	}
}

// evLess orders events by (at, seq); seq breaks ties so same-time events
// fire in scheduling order, which keeps runs deterministic.
func evLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// --- tick heap: min-heap over bucket keys -------------------------------

func (s *Scheduler) pushTick(tk int64) {
	s.ticks = append(s.ticks, tk)
	i := len(s.ticks) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.ticks[i] >= s.ticks[parent] {
			break
		}
		s.ticks[i], s.ticks[parent] = s.ticks[parent], s.ticks[i]
		i = parent
	}
}

func (s *Scheduler) popTick() int64 {
	tk := s.ticks[0]
	n := len(s.ticks) - 1
	s.ticks[0] = s.ticks[n]
	s.ticks = s.ticks[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && s.ticks[r] < s.ticks[l] {
			min = r
		}
		if s.ticks[min] >= s.ticks[i] {
			break
		}
		s.ticks[i], s.ticks[min] = s.ticks[min], s.ticks[i]
		i = min
	}
	return tk
}
