// Package simclock provides a deterministic discrete-event simulation
// runtime: a virtual clock and an event scheduler.
//
// The paper's measurement spans eight months of wall-clock time on real
// phones. We substitute virtual time: every timer in the reproduced Android
// stack (probation timers, probe timeouts, stall detection windows) is
// scheduled on a Scheduler, so months of fleet activity execute in seconds
// and runs are exactly reproducible for a given seed.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is virtual time elapsed since the start of the simulation.
type Time = time.Duration

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; a fleet run shards devices across independent
// Schedulers instead of sharing one.
type Scheduler struct {
	now    Time
	queue  eventQueue
	seq    uint64
	halted bool
}

// NewScheduler returns a Scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Timer is a handle to a scheduled event; it can be stopped before firing.
type Timer struct {
	at      Time
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
}

// Stop cancels the timer. It reports whether the call prevented the timer
// from firing (false if it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && !t.fired && !t.stopped }

// When returns the virtual time at which the timer fires (or fired).
func (t *Timer) When() Time { return t.at }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it is always a logic error in a discrete-event model.
func (s *Scheduler) At(at Time, fn func()) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("simclock: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("simclock: nil event function")
	}
	s.seq++
	t := &Timer{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.queue, t)
	return t
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its deadline. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 {
		t := heap.Pop(&s.queue).(*Timer)
		if t.stopped {
			continue
		}
		s.now = t.at
		t.fired = true
		t.fn()
		return true
	}
	return false
}

// Run executes events in timestamp order until the queue is empty, the
// clock passes until, or Halt is called. It returns the number of events
// executed. The clock is left at until if the queue drained earlier, so a
// subsequent Run continues from a well-defined point.
func (s *Scheduler) Run(until Time) int {
	s.halted = false
	n := 0
	for !s.halted {
		t := s.peek()
		if t == nil || t.at > until {
			break
		}
		s.Step()
		n++
	}
	if !s.halted && s.now < until {
		s.now = until
	}
	return n
}

// RunAll executes events until the queue is empty or Halt is called,
// returning the number of events executed.
func (s *Scheduler) RunAll() int {
	s.halted = false
	n := 0
	for !s.halted && s.Step() {
		n++
	}
	return n
}

// Halt stops a Run/RunAll in progress after the current event returns.
func (s *Scheduler) Halt() { s.halted = true }

// QueueLen returns the raw event-queue length, including stopped-but-
// unpopped timers. Unlike Pending it is O(1), so instrumentation (the
// fleet's per-shard queue-depth gauge) can sample it every simulated
// hour without scanning the heap.
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// Pending returns the number of pending (not stopped) events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, t := range s.queue {
		if !t.stopped {
			n++
		}
	}
	return n
}

func (s *Scheduler) peek() *Timer {
	for s.queue.Len() > 0 {
		t := s.queue[0]
		if t.stopped {
			heap.Pop(&s.queue)
			continue
		}
		return t
	}
	return nil
}

// eventQueue is a min-heap on (at, seq); seq breaks ties so same-time events
// fire in scheduling order, which keeps runs deterministic.
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*Timer)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
