package simclock

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(3*time.Second, func() { got = append(got, 3) })
	s.At(1*time.Second, func() { got = append(got, 1) })
	s.At(2*time.Second, func() { got = append(got, 2) })
	if n := s.RunAll(); n != 3 {
		t.Fatalf("RunAll executed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", s.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.RunAll()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestAfterAdvancesFromNow(t *testing.T) {
	s := NewScheduler()
	var fired Time
	s.At(5*time.Second, func() {
		s.After(2*time.Second, func() { fired = s.Now() })
	})
	s.RunAll()
	if fired != 7*time.Second {
		t.Errorf("nested After fired at %v, want 7s", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler()
	ran := false
	timer := s.At(time.Second, func() { ran = true })
	if !timer.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !timer.Stop() {
		t.Fatal("Stop should report true on an active timer")
	}
	if timer.Stop() {
		t.Error("second Stop should report false")
	}
	s.RunAll()
	if ran {
		t.Error("stopped timer fired")
	}
	if timer.Active() {
		t.Error("stopped timer still active")
	}
}

func TestStopAfterFire(t *testing.T) {
	s := NewScheduler()
	timer := s.At(time.Second, func() {})
	s.RunAll()
	if timer.Stop() {
		t.Error("Stop after fire should report false")
	}
	if timer.Active() {
		t.Error("fired timer reported active")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() { count++ })
	}
	n := s.Run(5 * time.Second)
	if n != 5 || count != 5 {
		t.Fatalf("Run(5s) executed %d events (count %d), want 5", n, count)
	}
	if s.Now() != 5*time.Second {
		t.Errorf("Now() = %v, want 5s", s.Now())
	}
	n = s.Run(20 * time.Second)
	if n != 5 || count != 10 {
		t.Fatalf("second Run executed %d (count %d), want 5 more", n, count)
	}
	// Queue drained before until: clock parks at until.
	if s.Now() != 20*time.Second {
		t.Errorf("Now() = %v, want 20s after drained Run", s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.RunAll()
	if count != 3 {
		t.Fatalf("Halt did not stop run: executed %d events", count)
	}
	// A later Run resumes.
	s.Run(20 * time.Second)
	if count != 10 {
		t.Fatalf("resumed run executed %d total, want 10", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10*time.Second, func() {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(time.Second, func() {})
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := NewScheduler()
	s.At(5*time.Second, func() {
		s.After(-time.Second, func() {})
	})
	s.RunAll() // must not panic
	if s.Now() != 5*time.Second {
		t.Errorf("Now() = %v, want 5s", s.Now())
	}
}

func TestPending(t *testing.T) {
	s := NewScheduler()
	a := s.At(time.Second, func() {})
	s.At(2*time.Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	a.Stop()
	if s.Pending() != 1 {
		t.Fatalf("Pending after stop = %d, want 1", s.Pending())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := NewScheduler()
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestManyEventsDeterministic(t *testing.T) {
	run := func() []Time {
		s := NewScheduler()
		var fired []Time
		// Interleave scheduling from inside events.
		var spawn func(depth int)
		spawn = func(depth int) {
			fired = append(fired, s.Now())
			if depth < 3 {
				s.After(time.Duration(depth+1)*time.Millisecond, func() { spawn(depth + 1) })
				s.After(time.Duration(depth+2)*time.Millisecond, func() { spawn(depth + 1) })
			}
		}
		for i := 0; i < 50; i++ {
			d := time.Duration(i%7) * time.Millisecond
			s.At(d, func() { spawn(0) })
		}
		s.RunAll()
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic firing time at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
