package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestWheelMatchesReferenceOrder drives the wheel scheduler with a
// randomized workload — schedules far beyond the current tick, same-tick
// bursts, exact ties, and events that schedule more events — and checks
// the execution order against a straightforward sorted-by-(at, seq) model.
func TestWheelMatchesReferenceOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		s := NewScheduler()

		type ref struct {
			at  Time
			seq int
		}
		var want []ref
		var got []ref
		seq := 0

		var add func(at Time, depth int)
		add = func(at Time, depth int) {
			seq++
			id := seq
			want = append(want, ref{at, id})
			s.Post(at, func() {
				got = append(got, ref{at, id})
				if depth < 2 && r.Intn(3) == 0 {
					// Events scheduling events, both same-tick and far.
					add(s.Now()+time.Duration(r.Intn(90))*time.Minute, depth+1)
				}
			})
		}
		for i := 0; i < 200; i++ {
			// Mix sub-tick offsets, exact duplicates, and far ticks.
			at := time.Duration(r.Intn(96)) * 15 * time.Minute
			add(at, 0)
			if r.Intn(4) == 0 {
				add(at, 0) // exact tie: must fire in scheduling order
			}
		}
		s.RunAll()

		sort.SliceStable(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].seq < want[j].seq
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: executed %d events, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: event %d fired as %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestPostIdxOrderAndArgs checks that handle-free indexed events interleave
// correctly with Timer events and deliver their indices.
func TestPostIdxOrderAndArgs(t *testing.T) {
	s := NewScheduler()
	var got []int32
	record := func(i int32) { got = append(got, i) }
	s.PostIdx(2*time.Hour, record, 2)
	s.PostIdx(time.Hour, record, 1)
	stop := s.At(90*time.Minute, func() { t.Fatal("stopped timer fired") })
	s.PostIdx(3*time.Hour, record, 3)
	stop.Stop()
	if n := s.RunAll(); n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("indices fired as %v, want [1 2 3]", got)
	}
}

// TestResetReuse checks that a Reset scheduler behaves exactly like a
// fresh one: clock at zero, pending events discarded, ordering intact.
func TestResetReuse(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.Post(10*time.Hour, func() { fired++ })
	s.Post(time.Hour, func() { fired++ })
	s.Run(2 * time.Hour)
	if fired != 1 {
		t.Fatalf("fired %d before reset, want 1", fired)
	}
	s.Reset()
	if s.Now() != 0 || s.QueueLen() != 0 || s.Pending() != 0 {
		t.Fatalf("after Reset: now=%v queue=%d pending=%d, want zeros", s.Now(), s.QueueLen(), s.Pending())
	}
	// The discarded 10h event must not resurface; new events must fire in
	// order from a zero clock.
	var order []int
	s.Post(30*time.Minute, func() { order = append(order, 1) })
	s.Post(5*time.Hour, func() { order = append(order, 2) })
	s.Run(12 * time.Hour)
	if fired != 1 {
		t.Fatalf("pre-reset event leaked: fired=%d", fired)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("post-reset order %v, want [1 2]", order)
	}
	if s.Now() != 12*time.Hour {
		t.Fatalf("now=%v after Run, want 12h", s.Now())
	}
}

// TestScheduleBehindPromotedTick schedules an event for an earlier tick
// than the already-promoted one (legal between Runs as long as it is not
// in the past) and checks it still fires first.
func TestScheduleBehindPromotedTick(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.Post(5*time.Hour+time.Minute, func() { order = append(order, 2) })
	// Force promotion of the 5h bucket without firing it.
	if at, ok := s.peekAt(); !ok || at != 5*time.Hour+time.Minute {
		t.Fatalf("peek = %v %v", at, ok)
	}
	s.Post(time.Hour, func() { order = append(order, 1) })
	s.RunAll()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order %v, want [1 2]", order)
	}
}
