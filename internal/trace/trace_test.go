package trace

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

func sampleEvents(n int) []failure.Event {
	events := make([]failure.Event, n)
	for i := range events {
		events[i] = failure.Event{
			Kind:           failure.Kind(i % 3),
			DeviceID:       uint64(i),
			ModelID:        i % 34,
			AndroidVersion: 9 + i%2,
			ISP:            simnet.ISPID(i % 3),
			RAT:            telephony.RAT4G,
			Level:          telephony.SignalLevel(i % 6),
			Cause:          telephony.CauseSignalLost,
			Start:          time.Duration(i) * time.Minute,
			Duration:       time.Duration(10+i) * time.Second,
		}
	}
	if n > 1 {
		events[1].Transition = &failure.TransitionInfo{
			FromRAT: telephony.RAT4G, ToRAT: telephony.RAT5G,
			FromLevel: telephony.Level4, ToLevel: telephony.Level0,
		}
	}
	return events
}

func TestBatchRoundTrip(t *testing.T) {
	var buf bytesBuffer
	in := &Batch{DeviceID: 42, Events: sampleEvents(10)}
	n, err := WriteBatch(&buf, in)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("WriteBatch reported %d bytes, wrote %d", n, len(buf))
	}
	out, wire, err := ReadBatch(bytesReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if wire != n {
		t.Errorf("ReadBatch wire size = %d, want %d", wire, n)
	}
	if out.DeviceID != 42 || len(out.Events) != 10 {
		t.Fatalf("decoded %d events for device %d", len(out.Events), out.DeviceID)
	}
	if out.Events[3] != in.Events[3] {
		t.Errorf("event 3 mismatch: %+v vs %+v", out.Events[3], in.Events[3])
	}
	if out.Events[1].Transition == nil || *out.Events[1].Transition != *in.Events[1].Transition {
		t.Error("transition info lost in round trip")
	}
}

func TestReadBatchEOF(t *testing.T) {
	if _, _, err := ReadBatch(bytesReader(nil)); err != io.EOF {
		t.Errorf("empty stream error = %v, want io.EOF", err)
	}
}

func TestReadBatchCorruptHeader(t *testing.T) {
	// Implausibly large length prefix must not allocate.
	buf := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0}
	if _, _, err := ReadBatch(bytesReader(buf)); err == nil {
		t.Error("corrupt header accepted")
	}
	// Truncated payload.
	var ok bytesBuffer
	WriteBatch(&ok, &Batch{DeviceID: 1, Events: sampleEvents(2)})
	if _, _, err := ReadBatch(bytesReader(ok[:len(ok)-3])); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestCompressionActuallyShrinks(t *testing.T) {
	var buf bytesBuffer
	events := sampleEvents(1000)
	if _, err := WriteBatch(&buf, &Batch{DeviceID: 1, Events: events}); err != nil {
		t.Fatal(err)
	}
	// A failure.Event is well over 100 bytes in memory; gob+gzip should
	// get far below that per event for repetitive fleet data.
	perEvent := len(buf) / len(events)
	if perEvent > 64 {
		t.Errorf("compressed size %d bytes/event, want <= 64 (monthly budget depends on it)", perEvent)
	}
}

func TestDatasetAppendAndQuery(t *testing.T) {
	ds := NewDataset()
	ds.Append(sampleEvents(5)...)
	ds.Append(sampleEvents(3)...)
	if ds.Len() != 8 {
		t.Fatalf("Len = %d, want 8", ds.Len())
	}
	count := 0
	ds.Each(func(e *failure.Event) {
		if e == nil {
			t.Fatal("nil event")
		}
		count++
	})
	if count != 8 {
		t.Errorf("Each visited %d, want 8", count)
	}
	evs := ds.Events()
	evs[0].DeviceID = 999999
	if ds.Events()[0].DeviceID == 999999 {
		t.Error("Events() must return a copy")
	}
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dataset.gob.gz")
	ds := NewDataset()
	ds.Append(sampleEvents(50)...)
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 50 {
		t.Fatalf("loaded %d events, want 50", got.Len())
	}
	a, b := ds.Events(), got.Events()
	for i := range a {
		if a[i].DeviceID != b[i].DeviceID || a[i].Duration != b[i].Duration {
			t.Fatalf("event %d mismatch after save/load", i)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing file should error")
	}
}

func TestCollectorAndUploaderEndToEnd(t *testing.T) {
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	up := NewUploader(col.Addr(), 7)
	for _, e := range sampleEvents(20) {
		up.Record(e)
	}
	if up.Pending() != 20 {
		t.Fatalf("pending = %d, want 20 (no WiFi yet)", up.Pending())
	}
	if err := up.Flush(); err == nil {
		t.Fatal("Flush without WiFi should fail")
	}
	up.SetWiFi(true) // triggers flush
	waitFor(t, func() bool { return up.Pending() == 0 })
	waitFor(t, func() bool { return ds.Len() == 20 })
	if up.SentBytes() == 0 {
		t.Error("SentBytes not accounted")
	}
	batches, _ := col.Stats()
	if batches != 1 {
		t.Errorf("collector batches = %d, want 1", batches)
	}

	// Records while on WiFi upload immediately.
	up.Record(sampleEvents(1)[0])
	waitFor(t, func() bool { return ds.Len() == 21 })

	// Losing WiFi buffers again.
	up.SetWiFi(false)
	up.Record(sampleEvents(1)[0])
	if up.Pending() != 1 {
		t.Errorf("pending = %d after record without WiFi", up.Pending())
	}
}

func TestUploaderFlushEmptyIsNil(t *testing.T) {
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	up := NewUploader(col.Addr(), 1)
	up.SetWiFi(true)
	if err := up.Flush(); err != nil {
		t.Errorf("empty flush error: %v", err)
	}
}

func TestUploaderDialFailureKeepsEvents(t *testing.T) {
	up := NewUploader("127.0.0.1:1", 1) // nothing listens on port 1
	up.SetWiFi(true)
	up.Record(sampleEvents(1)[0])
	if up.Pending() != 1 {
		t.Errorf("events lost on dial failure: pending = %d", up.Pending())
	}
	if err := up.Flush(); err == nil {
		t.Error("flush to dead collector should error")
	}
}

func TestCollectorMultipleConnections(t *testing.T) {
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	const uploaders = 8
	done := make(chan error, uploaders)
	for i := 0; i < uploaders; i++ {
		go func(id int) {
			up := NewUploader(col.Addr(), uint64(id))
			up.SetWiFi(true)
			for _, e := range sampleEvents(25) {
				up.Record(e)
			}
			done <- up.Flush()
		}(i)
	}
	for i := 0; i < uploaders; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return ds.Len() == uploaders*25 })
}

func TestNewCollectorNilDataset(t *testing.T) {
	if _, err := NewCollector("127.0.0.1:0", nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}

func TestWriteCSV(t *testing.T) {
	ds := NewDataset()
	ds.Append(sampleEvents(10)...)
	var buf bytesBuffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(buf)), "\n")
	if len(lines) != 11 {
		t.Fatalf("lines = %d, want header + 10", len(lines))
	}
	if !strings.HasPrefix(lines[0], "device_id,model_id") {
		t.Errorf("header = %q", lines[0])
	}
	// The transition event carries its columns.
	found := false
	for _, l := range lines[1:] {
		if strings.Contains(l, "4G,4,5G,0") {
			found = true
		}
	}
	if !found {
		t.Error("transition columns missing")
	}
	// Parse back with the csv reader for structural validity.
	rows, err := csv.NewReader(bytesReader(buf)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if len(r) != 21 {
			t.Fatalf("row %d has %d columns", i, len(r))
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	ds := NewDataset()
	ds.Append(sampleEvents(5)...)
	var buf bytesBuffer
	if err := ds.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(buf)), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
	for i, l := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(l), &obj); err != nil {
			t.Fatalf("line %d invalid JSON: %v", i, err)
		}
		if _, ok := obj["device_id"]; !ok {
			t.Fatalf("line %d missing device_id", i)
		}
	}
	if !strings.Contains(string(buf), `"transition"`) {
		t.Error("transition object missing from JSONL")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytesBuffer
	sw := NewStreamWriter(&buf, 7) // odd chunk to force partial final frame
	events := sampleEvents(100)
	for _, e := range events {
		if err := sw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != 100 {
		t.Errorf("Count = %d", sw.Count())
	}
	var got []failure.Event
	if err := EachStream(bytesReader(buf), func(e *failure.Event) { got = append(got, *e) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("read %d events", len(got))
	}
	for i := range got {
		if got[i].DeviceID != events[i].DeviceID || got[i].Duration != events[i].Duration {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestStreamReaderIncremental(t *testing.T) {
	var buf bytesBuffer
	sw := NewStreamWriter(&buf, 0) // default chunk
	for _, e := range sampleEvents(10) {
		sw.Write(e)
	}
	sw.Flush()
	sr := NewStreamReader(bytesReader(buf))
	for i := 0; i < 10; i++ {
		e, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if e.DeviceID != uint64(i) {
			t.Fatalf("event %d out of order: %d", i, e.DeviceID)
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Errorf("err = %v, want io.EOF", err)
	}
	// Errors are sticky.
	if _, err := sr.Next(); err != io.EOF {
		t.Errorf("second err = %v", err)
	}
}

func TestStreamCorruption(t *testing.T) {
	var buf bytesBuffer
	sw := NewStreamWriter(&buf, 5)
	for _, e := range sampleEvents(10) {
		sw.Write(e)
	}
	sw.Flush()
	// Truncate mid-frame: the reader must surface a non-EOF error.
	err := EachStream(bytesReader(buf[:len(buf)-4]), func(*failure.Event) {})
	if err == nil {
		t.Error("truncated stream read cleanly")
	}
}

func TestDatasetWriteStream(t *testing.T) {
	ds := NewDataset()
	ds.Append(sampleEvents(50)...)
	var buf bytesBuffer
	if err := ds.WriteStream(&buf, 16); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := EachStream(bytesReader(buf), func(*failure.Event) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("streamed %d events", n)
	}
}

func TestCollectorStreamingQuantiles(t *testing.T) {
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	up := NewUploader(col.Addr(), 1)
	up.SetWiFi(true)
	// Durations 10..409 seconds across 400 events.
	events := make([]failure.Event, 400)
	for i := range events {
		events[i] = failure.Event{DeviceID: uint64(i), Duration: time.Duration(10+i) * time.Second}
	}
	for _, e := range events {
		up.Record(e)
	}
	if err := up.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ds.Len() == 400 })
	p50, p90, p99 := col.DurationQuantiles()
	if p50 < 180 || p50 > 240 {
		t.Errorf("p50 = %v, want ≈210", p50)
	}
	if p90 < 330 || p90 > 400 {
		t.Errorf("p90 = %v, want ≈370", p90)
	}
	if p99 < 380 || p99 > 410 {
		t.Errorf("p99 = %v, want ≈405", p99)
	}
	if !(p50 < p90 && p90 < p99) {
		t.Errorf("quantiles not ordered: %v %v %v", p50, p90, p99)
	}
}

func TestFilterAndMerge(t *testing.T) {
	ds := NewDataset()
	ds.Append(sampleEvents(30)...)
	stalls := ds.Filter(func(e *failure.Event) bool { return e.Kind == failure.DataStall })
	if stalls.Len() == 0 || stalls.Len() >= ds.Len() {
		t.Fatalf("filtered %d of %d", stalls.Len(), ds.Len())
	}
	stalls.Each(func(e *failure.Event) {
		if e.Kind != failure.DataStall {
			t.Fatalf("filter leaked %v", e.Kind)
		}
	})
	// The filtered dataset is independent of the source.
	before := ds.Len()
	stalls.Append(sampleEvents(1)...)
	if ds.Len() != before {
		t.Error("filter result aliases the source")
	}

	other := NewDataset()
	other.Append(sampleEvents(5)...)
	merged := Merge(ds, other, nil)
	if merged.Len() != ds.Len()+5 {
		t.Errorf("merged %d, want %d", merged.Len(), ds.Len()+5)
	}
}

func TestUploaderFlushThreshold(t *testing.T) {
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	up := NewUploader(col.Addr(), 1)
	up.FlushThreshold = 10
	up.SetWiFi(true)
	for _, e := range sampleEvents(9) {
		up.Record(e) // below threshold: stays buffered
	}
	if up.Pending() != 9 {
		t.Fatalf("pending = %d, want 9 buffered", up.Pending())
	}
	up.Record(sampleEvents(1)[0]) // hits threshold: uploads
	waitFor(t, func() bool { return ds.Len() == 10 })
	if up.Pending() != 0 {
		t.Errorf("pending = %d after threshold flush", up.Pending())
	}
}
