package trace

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func apiServer(t *testing.T, n int) (*httptest.Server, func()) {
	t.Helper()
	ds := NewDataset()
	ds.Append(sampleEvents(n)...)
	mux := http.NewServeMux()
	NewQueryAPI(ds).Routes(mux)
	srv := httptest.NewServer(mux)
	return srv, srv.Close
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestAPIStats(t *testing.T) {
	srv, done := apiServer(t, 30)
	defer done()
	var out struct {
		Events  int            `json:"events"`
		Devices int            `json:"devices"`
		ByKind  map[string]int `json:"by_kind"`
	}
	resp := getJSON(t, srv.URL+"/api/stats", &out)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Events != 30 || out.Devices != 30 {
		t.Errorf("stats = %+v", out)
	}
	if len(out.ByKind) != 3 {
		t.Errorf("kinds = %v", out.ByKind)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
}

func TestAPIEventsLimitAndFilter(t *testing.T) {
	srv, done := apiServer(t, 50)
	defer done()
	var rows []map[string]any
	getJSON(t, srv.URL+"/api/events?limit=7", &rows)
	if len(rows) != 7 {
		t.Errorf("limit ignored: %d rows", len(rows))
	}
	rows = nil
	getJSON(t, srv.URL+"/api/events?kind=Data_Stall&limit=1000", &rows)
	if len(rows) == 0 {
		t.Fatal("no stall rows")
	}
	for _, r := range rows {
		if r["kind"] != "Data_Stall" {
			t.Fatalf("filter leaked: %v", r["kind"])
		}
	}
	resp, err := http.Get(srv.URL + "/api/events?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit status = %d", resp.StatusCode)
	}
}

func TestAPIDigest(t *testing.T) {
	srv, done := apiServer(t, 25)
	defer done()
	var out struct {
		Events int    `json:"events"`
		Digest string `json:"digest"`
	}
	resp := getJSON(t, srv.URL+"/api/digest", &out)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Events != 25 {
		t.Errorf("events = %d, want 25", out.Events)
	}
	ds := NewDataset()
	ds.Append(sampleEvents(25)...)
	if want := ds.MultisetDigest().String(); out.Digest != want {
		t.Errorf("digest = %s, want %s", out.Digest, want)
	}
}

func TestAPIByModelAndISP(t *testing.T) {
	srv, done := apiServer(t, 60)
	defer done()
	var models []struct {
		ModelID int `json:"model_id"`
		Events  int `json:"events"`
		Devices int `json:"devices"`
	}
	getJSON(t, srv.URL+"/api/by-model", &models)
	if len(models) == 0 {
		t.Fatal("no model rows")
	}
	totalEvents := 0
	for _, m := range models {
		if m.Events < m.Devices {
			t.Errorf("model %d: events %d < devices %d", m.ModelID, m.Events, m.Devices)
		}
		totalEvents += m.Events
	}
	// sampleEvents uses ModelID = i % 34, so model 0 events are excluded
	// from 1..34 rows; the rest must be accounted for.
	if totalEvents == 0 {
		t.Error("no events attributed")
	}

	var isps []struct {
		ISP    string `json:"isp"`
		Events int    `json:"events"`
	}
	getJSON(t, srv.URL+"/api/by-isp", &isps)
	if len(isps) != 3 {
		t.Fatalf("isp rows = %d", len(isps))
	}
	sum := 0
	for _, r := range isps {
		sum += r.Events
	}
	if sum != 60 {
		t.Errorf("ISP events sum %d, want 60", sum)
	}
}

// brokenResponseWriter fails every Write, simulating a client that hung
// up mid-response.
type brokenResponseWriter struct{ hdr http.Header }

func (w *brokenResponseWriter) Header() http.Header {
	if w.hdr == nil {
		w.hdr = http.Header{}
	}
	return w.hdr
}
func (w *brokenResponseWriter) Write([]byte) (int, error) {
	return 0, errConnGone
}
func (w *brokenResponseWriter) WriteHeader(int) {}

var errConnGone = errors.New("client gone")

// TestWriteJSONEncodeErrorCounted pins the satellite fix: a JSON encode
// failure on the query API must increment trace_http_encode_errors_total
// instead of being silently dropped.
func TestWriteJSONEncodeErrorCounted(t *testing.T) {
	before := mHTTPEncodeErrors.Value()
	writeJSON(&brokenResponseWriter{}, map[string]int{"x": 1})
	if got := mHTTPEncodeErrors.Value() - before; got != 1 {
		t.Fatalf("encode errors counted = %d, want 1", got)
	}
	// Sanity: a healthy writer must not bump the counter.
	rec := httptest.NewRecorder()
	before = mHTTPEncodeErrors.Value()
	writeJSON(rec, map[string]int{"x": 1})
	if got := mHTTPEncodeErrors.Value() - before; got != 0 {
		t.Fatalf("healthy encode bumped counter by %d", got)
	}
	if rec.Body.Len() == 0 {
		t.Fatal("healthy encode wrote nothing")
	}
}
