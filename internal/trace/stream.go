package trace

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/failure"
)

// StreamWriter writes events as a sequence of framed, compressed batches,
// so a reader can process a dataset of any size with O(1) memory —
// the format a backend ingesting billions of events actually needs.
type StreamWriter struct {
	w     io.Writer
	buf   []failure.Event
	chunk int
	wrote int
}

// DefaultStreamChunk is the events-per-frame default.
const DefaultStreamChunk = 4096

// NewStreamWriter creates a writer flushing every chunkSize events
// (<=0 uses DefaultStreamChunk).
func NewStreamWriter(w io.Writer, chunkSize int) *StreamWriter {
	if chunkSize <= 0 {
		chunkSize = DefaultStreamChunk
	}
	return &StreamWriter{w: w, chunk: chunkSize}
}

// Write buffers one event, flushing a frame when the chunk fills.
func (sw *StreamWriter) Write(e failure.Event) error {
	sw.buf = append(sw.buf, e)
	if len(sw.buf) >= sw.chunk {
		return sw.Flush()
	}
	return nil
}

// Flush writes any buffered events as a frame. New streams are written
// in the v3 codec; StreamReader decodes either dialect, so files written
// before the codec switch remain readable.
func (sw *StreamWriter) Flush() error {
	if len(sw.buf) == 0 {
		return nil
	}
	if _, err := WriteBatchV3(sw.w, &Batch{Events: sw.buf}); err != nil {
		return err
	}
	sw.wrote += len(sw.buf)
	sw.buf = sw.buf[:0]
	return nil
}

// Count returns the number of events durably written (flushed).
func (sw *StreamWriter) Count() int { return sw.wrote }

// StreamReader iterates a stream written by StreamWriter.
type StreamReader struct {
	br  *bufio.Reader
	cur []failure.Event
	idx int
	err error
}

// NewStreamReader wraps r.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{br: bufio.NewReader(r)}
}

// Next returns the next event, or io.EOF at a clean end of stream.
func (sr *StreamReader) Next() (*failure.Event, error) {
	if sr.err != nil {
		return nil, sr.err
	}
	for sr.idx >= len(sr.cur) {
		b, _, _, err := ReadBatchAny(sr.br)
		if err != nil {
			sr.err = err
			return nil, err
		}
		sr.cur = b.Events
		sr.idx = 0
	}
	e := &sr.cur[sr.idx]
	sr.idx++
	return e, nil
}

// EachStream reads every event from r, calling fn; it returns nil on a
// clean EOF.
func EachStream(r io.Reader, fn func(*failure.Event)) error {
	sr := NewStreamReader(r)
	for {
		e, err := sr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("trace: stream read: %w", err)
		}
		fn(e)
	}
}

// WriteStream dumps the dataset in streaming format.
func (d *Dataset) WriteStream(w io.Writer, chunkSize int) error {
	sw := NewStreamWriter(w, chunkSize)
	var werr error
	d.Each(func(e *failure.Event) {
		if werr == nil {
			werr = sw.Write(*e)
		}
	})
	if werr != nil {
		return werr
	}
	return sw.Flush()
}
