package trace

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"repro/internal/failure"
)

// FuzzReadBatch hardens the wire decoder: arbitrary bytes must never
// panic or over-allocate, and valid frames must round-trip.
func FuzzReadBatch(f *testing.F) {
	var valid bytesBuffer
	WriteBatch(&valid, &Batch{DeviceID: 3, Events: sampleEvents(3)})
	f.Add([]byte(valid))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, _, err := ReadBatch(bytesReader(data))
		if err != nil {
			return
		}
		// A successfully decoded batch must be internally consistent.
		for i := range b.Events {
			_ = b.Events[i].Kind.String()
		}
	})
}

// FuzzWireV3RoundTrip hardens the v3 decoder two ways at once: arbitrary
// bytes must never panic or over-allocate, and any input that *does*
// decode must re-encode/decode to the identical batch — which, combined
// with TestWireV3GobOracle, pins v3 to the gob dialect's semantics.
func FuzzWireV3RoundTrip(f *testing.F) {
	seed1, _ := AppendBatchV3(nil, &Batch{DeviceID: 3, Seq: 1, Events: sampleEvents(3)})
	seed2, _ := AppendBatchV3(nil, &Batch{DeviceID: 1, Seq: 9, Events: sampleEvents(400)}) // gzip'd
	seed3, _ := AppendBatchV3(nil, &Batch{DeviceID: 0, Seq: 0})
	f.Add(seed1)
	f.Add(seed2)
	f.Add(seed3)
	f.Add([]byte{versionV3})
	f.Add([]byte{versionV3, 0x01, 0, 0, 0, 2, 0x1f, 0x8b})
	f.Add([]byte{versionV3, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, _, _, err := ReadBatchAny(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		frame, err := AppendBatchV3(nil, b)
		if err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		again, _, _, err := ReadBatchAny(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(b, again) {
			t.Fatalf("v3 re-encode not stable:\n was %+v\n now %+v", b, again)
		}
	})
}

// FuzzStreamReader: the framed stream reader must terminate on any input.
func FuzzStreamReader(f *testing.F) {
	var valid bytesBuffer
	sw := NewStreamWriter(&valid, 2)
	for _, e := range sampleEvents(5) {
		sw.Write(e)
	}
	sw.Flush()
	f.Add([]byte(valid))
	f.Add([]byte{0, 0, 0, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := 0
		_ = EachStream(bytesReader(data), func(e *failure.Event) {
			n++
			if n > 1_000_000 {
				t.Fatal("unbounded event stream from finite input")
			}
		})
	})
}
