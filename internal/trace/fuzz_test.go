package trace

import (
	"testing"

	"repro/internal/failure"
)

// FuzzReadBatch hardens the wire decoder: arbitrary bytes must never
// panic or over-allocate, and valid frames must round-trip.
func FuzzReadBatch(f *testing.F) {
	var valid bytesBuffer
	WriteBatch(&valid, &Batch{DeviceID: 3, Events: sampleEvents(3)})
	f.Add([]byte(valid))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, _, err := ReadBatch(bytesReader(data))
		if err != nil {
			return
		}
		// A successfully decoded batch must be internally consistent.
		for i := range b.Events {
			_ = b.Events[i].Kind.String()
		}
	})
}

// FuzzStreamReader: the framed stream reader must terminate on any input.
func FuzzStreamReader(f *testing.F) {
	var valid bytesBuffer
	sw := NewStreamWriter(&valid, 2)
	for _, e := range sampleEvents(5) {
		sw.Write(e)
	}
	sw.Flush()
	f.Add([]byte(valid))
	f.Add([]byte{0, 0, 0, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := 0
		_ = EachStream(bytesReader(data), func(e *failure.Event) {
			n++
			if n > 1_000_000 {
				t.Fatal("unbounded event stream from finite input")
			}
		})
	})
}
