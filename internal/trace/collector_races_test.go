package trace

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// TestDrainDeadlineSurvivesArmRace forces the historical overwrite race
// through the armDeadlineHook seam: a serve goroutine reads
// draining=false, parks at the seam, Drain runs its deadline pass, and
// then the goroutine arms. Before the fix the arm happened outside the
// mutex, so it overwrote the drain deadline with the full idle timeout
// and Drain's wg.Wait sat until ReadTimeout (30s here — the test timed
// out). With decision and arm under c.mu, Drain's pass is ordered after
// the arm and the drain deadline wins.
func TestDrainDeadlineSurvivesArmRace(t *testing.T) {
	// Install the seam before the collector exists: goroutine creation is
	// then the happens-before edge that publishes the hook to the serve
	// loops.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	armDeadlineHook = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	defer func() { armDeadlineHook = nil }()

	col, err := NewCollectorWith("127.0.0.1:0", NewDataset(), CollectorOptions{
		ReadTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	<-entered // the serve goroutine decided "not draining" and is parked pre-arm

	drainErr := make(chan error, 1)
	go func() { drainErr <- col.Drain(100 * time.Millisecond) }()
	// Let Drain reach its deadline pass (it queues on c.mu, which the
	// parked arm still holds), then release the arm.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case err := <-drainErr:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain hung: the idle timeout overwrote the drain deadline")
	}
}

// TestCloseDuringDrainWaitsForAck interleaves Close with an in-progress
// Drain while a batch is crossing the wire. The old Close force-closed
// every connection immediately, cutting the half-sent frame and voiding
// the drain guarantee; now it must wait for the drain, so the batch
// completes, is stored, and is acked.
func TestCloseDuringDrainWaitsForAck(t *testing.T) {
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	frame, err := AppendBatchV3(nil, &Batch{DeviceID: 4, Seq: 1, Events: sampleEvents(6)})
	if err != nil {
		t.Fatal(err)
	}
	half := len(frame) / 2
	if _, err := conn.Write(frame[:half]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		col.mu.Lock()
		defer col.mu.Unlock()
		return len(col.conns) == 1
	})

	drainErr := make(chan error, 1)
	go func() { drainErr <- col.Drain(5 * time.Second) }()
	waitFor(t, func() bool {
		col.mu.Lock()
		defer col.mu.Unlock()
		return col.draining
	})
	closeErr := make(chan error, 1)
	go func() { closeErr <- col.Close() }()
	// Close must park behind the drain, not force-close the conn.
	time.Sleep(100 * time.Millisecond)
	select {
	case err := <-closeErr:
		t.Fatalf("Close returned (%v) while the drain was still in progress", err)
	default:
	}

	if _, err := conn.Write(frame[half:]); err != nil {
		t.Fatalf("connection cut mid-frame during drain: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	kind, seq, _, err := readReply(conn)
	if err != nil || kind != batchAck || seq != 1 {
		t.Fatalf("reply = kind 0x%02x seq %d err %v, want ack for seq 1", kind, seq, err)
	}
	conn.Close() // frame boundary: let the serve loop exit without waiting out the grace

	for i := 0; i < 2; i++ {
		select {
		case err := <-drainErr:
			if err != nil {
				t.Fatalf("Drain: %v", err)
			}
		case err := <-closeErr:
			if err != nil {
				t.Fatalf("Close: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Drain/Close did not both return")
		}
	}
	if got := ds.Len(); got != 6 {
		t.Fatalf("dataset has %d events after acked drain, want 6", got)
	}
}

// TestShedHandshakeSpeaksEachDialect puts the collector over its
// connection cap and probes the shed path in all three dialects: v2 and
// v3 clients must receive the 13-byte retry-after nack, while a v1
// client — which would misparse those bytes as a garbage length prefix —
// must be shed by a bare close with zero reply bytes.
func TestShedHandshakeSpeaksEachDialect(t *testing.T) {
	col, err := NewCollectorWith("127.0.0.1:0", NewDataset(), CollectorOptions{
		MaxConns:   1,
		RetryAfter: 77 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	hog, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Close()
	waitFor(t, func() bool {
		col.mu.Lock()
		defer col.mu.Unlock()
		return len(col.conns) == 1
	})

	for _, version := range []byte{versionV3, versionV2} {
		probe, err := net.Dial("tcp", col.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := probe.Write([]byte{version}); err != nil {
			t.Fatal(err)
		}
		probe.SetReadDeadline(time.Now().Add(2 * time.Second))
		kind, _, retryAfter, err := readReply(probe)
		probe.Close()
		if err != nil || kind != batchNack {
			t.Fatalf("dialect 0x%02x: reply kind 0x%02x err %v, want nack", version, kind, err)
		}
		if retryAfter != 77*time.Millisecond {
			t.Errorf("dialect 0x%02x: retry-after = %v, want 77ms", version, retryAfter)
		}
	}

	// v1: the first byte of a legacy length prefix is <= 0x04. The shed
	// reply would be unparseable, so the collector must just close.
	legacy, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if _, err := legacy.Write([]byte{0x00}); err != nil {
		t.Fatal(err)
	}
	legacy.SetReadDeadline(time.Now().Add(2 * time.Second))
	var buf [replyLen]byte
	n, err := legacy.Read(buf[:])
	if n != 0 || err != io.EOF {
		t.Fatalf("legacy shed wrote %d reply bytes (err %v), want a bare close", n, err)
	}
	if got := col.Nacks(); got != 3 {
		t.Errorf("Nacks = %d, want 3 (every dialect's shed counts)", got)
	}
}

// TestMalformedV3FrameDropsConnUnacked feeds the collector a frame with
// a valid v3 header and a garbage body: the connection must be dropped
// with no reply bytes, the drop metric must move, and nothing may reach
// the dataset.
func TestMalformedV3FrameDropsConnUnacked(t *testing.T) {
	before := mColDropped.Value()
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	conn, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// versionV3 ++ flags 0 ++ body len 4 ++ a varint that never terminates.
	if _, err := conn.Write([]byte{versionV3, 0x00, 0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var buf [replyLen]byte
	n, err := conn.Read(buf[:])
	if n != 0 || err != io.EOF {
		t.Fatalf("collector replied %d bytes (err %v) to a malformed frame, want a bare close", n, err)
	}
	waitFor(t, func() bool { return mColDropped.Value() > before })
	if ds.Len() != 0 {
		t.Fatalf("dataset has %d events from a malformed frame", ds.Len())
	}
}

// TestTruncatedFrameBackoffThenRestartRecovery is the uploader-side view
// of the malformed-frame path, carried across a collector crash: a
// truncated v3 frame fails the flush (backoff armed, drop counted, no
// event lost), the collector is SIGKILLed and rebooted from its segment
// store, and the uploader's retry then lands everything exactly once.
func TestTruncatedFrameBackoffThenRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSegStore(dir, SegStoreOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset()
	col, err := NewCollectorWith("127.0.0.1:0", ds, CollectorOptions{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	addr := col.Addr()
	dropBefore := mColDropped.Value()

	up := NewUploader(addr, 7)
	up.SetChaos(&scriptedChaos{faults: []UploadFaultClass{FaultTruncate}})
	up.SetWiFi(true)
	up.FlushThreshold = 100
	events := sampleEvents(10)
	var want Digest
	for _, e := range events {
		up.Record(e)
		want.Add(EventDigest(&e))
	}
	if err := up.Flush(); err == nil {
		t.Fatal("truncated send reported success")
	}
	if up.RetryDelay() <= 0 {
		t.Error("failed flush did not arm the backoff timer")
	}
	if up.Pending() != 10 {
		t.Fatalf("Pending = %d after truncated send, want 10 (no loss)", up.Pending())
	}
	waitFor(t, func() bool { return mColDropped.Value() > dropBefore })
	if ds.Len() != 0 {
		t.Fatalf("dataset has %d events from a truncated frame", ds.Len())
	}

	// Crash the collector and its store, then reboot from disk.
	col.Kill()
	st.Kill()
	got := NewDataset()
	st2, err := OpenSegStore(dir, SegStoreOptions{}, ReplayInto(got))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got.Len() != 0 {
		t.Fatalf("replay produced %d events from a store that admitted nothing", got.Len())
	}
	col2, err := NewCollectorWith(addr, got, CollectorOptions{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer col2.Close()

	if err := up.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Len() == 10 })
	if up.Pending() != 0 {
		t.Errorf("Pending = %d after acked retry", up.Pending())
	}
	if d := got.MultisetDigest(); d != want {
		t.Errorf("recovered multiset %s != recorded %s", d, want)
	}
}

// TestDuplicateAckWaitsForDurableAppend holds a fresh batch's durable
// append in flight (persistHook) while the same (device, seq) arrives on
// a second connection. The duplicate must not be acked before the
// original append lands — an early ack would let the device trim a batch
// that a crash could still lose — and afterwards both connections are
// acked while the batch is stored exactly once.
func TestDuplicateAckWaitsForDurableAppend(t *testing.T) {
	st, err := OpenSegStore(t.TempDir(), SegStoreOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Install the seam before the collector exists so goroutine creation
	// publishes it to the serve loops.
	hold := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	persistHook = func(*Batch) {
		once.Do(func() {
			close(entered)
			<-hold
		})
	}
	defer func() { persistHook = nil }()

	ds := NewDataset()
	col, err := NewCollectorWith("127.0.0.1:0", ds, CollectorOptions{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	frame, err := AppendBatchV3(nil, &Batch{DeviceID: 9, Seq: 1, Events: sampleEvents(5)})
	if err != nil {
		t.Fatal(err)
	}
	a, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Write(frame); err != nil {
		t.Fatal(err)
	}
	<-entered // A's append is in flight, unacked

	b, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The duplicate must be parked, not acked, while the append pends.
	b.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	var peek [1]byte
	var ne net.Error
	if _, err := b.Read(peek[:]); !(errors.As(err, &ne) && ne.Timeout()) {
		t.Fatalf("duplicate got a reply before the append was durable (read err %v)", err)
	}

	close(hold)
	for name, conn := range map[string]net.Conn{"original": a, "duplicate": b} {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		kind, seq, _, err := readReply(conn)
		if err != nil || kind != batchAck || seq != 1 {
			t.Fatalf("%s reply = kind 0x%02x seq %d err %v, want ack for seq 1", name, kind, seq, err)
		}
	}
	if got := ds.Len(); got != 5 {
		t.Fatalf("dataset has %d events, want 5 (stored once)", got)
	}
	if col.DedupHits() != 1 {
		t.Errorf("DedupHits = %d, want 1", col.DedupHits())
	}
	frames := 0
	for _, info := range st.Segments() {
		frames += info.Frames
	}
	if frames != 1 {
		t.Errorf("store holds %d frames, want 1 (duplicate must not be appended)", frames)
	}
}

// TestCollectorRestartFromStoreDedupsRetries is exactly-once across a
// crash: an ack is lost after the batch became durable, the collector is
// SIGKILLed, a new one boots from the replayed store on the same
// address, and the device's retry must dedup against the replayed
// high-water mark instead of double-storing.
func TestCollectorRestartFromStoreDedupsRetries(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSegStore(dir, SegStoreOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset()
	col, err := NewCollectorWith("127.0.0.1:0", ds, CollectorOptions{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	addr := col.Addr()

	up := NewUploader(addr, 7)
	up.SetChaos(&scriptedChaos{faults: []UploadFaultClass{FaultAckLoss}})
	up.SetWiFi(true)
	up.FlushThreshold = 100
	events := sampleEvents(10)
	var want Digest
	for _, e := range events {
		up.Record(e)
		want.Add(EventDigest(&e))
	}
	if err := up.Flush(); !errors.Is(err, ErrAckLost) {
		t.Fatalf("Flush error = %v, want ErrAckLost", err)
	}
	waitFor(t, func() bool { return ds.Len() == 10 })

	col.Kill()
	st.Kill()

	got := NewDataset()
	st2, err := OpenSegStore(dir, SegStoreOptions{}, ReplayInto(got))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got.Len() != 10 {
		t.Fatalf("replayed %d events, want 10 (the durable batch)", got.Len())
	}
	if m := st2.Marks()[7]; m != 1 {
		t.Fatalf("replayed mark = %d, want 1", m)
	}
	col2, err := NewCollectorWith(addr, got, CollectorOptions{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer col2.Close()

	// The retry of the never-acked batch must dedup, not double-store.
	if err := up.Flush(); err != nil {
		t.Fatal(err)
	}
	if up.Pending() != 0 {
		t.Errorf("Pending = %d after acked retry", up.Pending())
	}
	if got.Len() != 10 {
		t.Fatalf("dataset has %d events after the retry, want exactly 10", got.Len())
	}
	if col2.DedupHits() != 1 {
		t.Errorf("DedupHits = %d on the rebooted collector, want 1", col2.DedupHits())
	}
	if d := got.MultisetDigest(); d != want {
		t.Errorf("multiset %s after restart != recorded %s", d, want)
	}
}
