package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SegStore is the collector's crash-durable backing store: an append-only
// directory of fixed-size segment files, each a sequence of v3 wire
// frames (one frame per admitted batch, reusing the wirev3 encoder and
// its pooled gzip state). The active segment receives appends; once it
// crosses SegmentSize it is sealed — sealed segments are immutable and
// can be read from disk without touching the append path. An in-memory
// index maps (device, seq range) → segment for the /api/segments query
// path, and per-device seq high-water marks are checkpointed alongside
// the segments so a restarted collector re-acks retried batches instead
// of double-storing them.
//
// Durability model: Append performs one direct unbuffered write per
// frame, so once Append returns — and therefore before the collector
// acks the batch — the frame has left the process (it survives SIGKILL
// in the page cache; sealing additionally fsyncs the finished file).
// A crash can leave at most a torn final frame in the active segment,
// and a torn frame is by construction unacknowledged: OpenSegStore
// truncates it away and the device's retry re-delivers it. Everything
// before the tear decodes cleanly and is replayed, so the rebuilt marks
// cover every batch that was ever acked — exactly-once storage holds
// across the crash.
type SegStore struct {
	dir string
	opt SegStoreOptions

	mu            sync.Mutex
	f             *os.File // active segment, opened O_APPEND
	activeOff     int64
	segs          []*segment        // id order; the last entry is the active segment
	marks         map[uint64]uint64 // per-device acked seq high-water mark
	sealedThrough uint64            // highest sealed segment id; sealed files are immutable forever
	appends       int               // appends since the last checkpoint
	truncated     int64             // torn-tail bytes dropped at open
	closed        bool

	cpStop chan struct{}
	cpDone chan struct{}
}

// SegStoreOptions tunes the store. The zero value selects defaults.
type SegStoreOptions struct {
	// SegmentSize is the byte threshold past which the active segment is
	// sealed and a new one opened. <= 0 uses 8 MiB.
	SegmentSize int64
	// Checkpoint is the cadence of the background mark/index checkpoint.
	// The checkpoint is an accelerator, not a correctness requirement —
	// replay rebuilds the marks from the frames themselves — so losing
	// the window since the last checkpoint loses nothing. <= 0 uses 2s.
	Checkpoint time.Duration
	// ReadOnly opens the store to adopt a dead collector's directory:
	// replay runs normally (rebuilding marks and index, truncating a torn
	// tail frame — safe even here, since a torn frame was by construction
	// never acknowledged), every segment including the tail is treated as
	// sealed and readable, and then nothing is ever written again: no
	// active segment, no checkpoints, Append and Checkpoint fail. A fleet
	// survivor uses this to serve the dead collector's segments in merged
	// queries and to harvest its marks for SeedMarks.
	ReadOnly bool
}

func (o SegStoreOptions) withDefaults() SegStoreOptions {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 8 << 20
	}
	if o.Checkpoint <= 0 {
		o.Checkpoint = 2 * time.Second
	}
	return o
}

// segment is one file's index entry.
type segment struct {
	id      uint64
	sealed  bool
	bytes   int64
	frames  int
	events  int
	devices map[uint64]*segRange
}

// segRange is one device's footprint within a segment.
type segRange struct {
	minSeq, maxSeq uint64
	events         int
}

func (s *segment) note(device, seq uint64, events int) {
	r := s.devices[device]
	if r == nil {
		r = &segRange{minSeq: seq, maxSeq: seq}
		s.devices[device] = r
	} else {
		if seq < r.minSeq {
			r.minSeq = seq
		}
		if seq > r.maxSeq {
			r.maxSeq = seq
		}
	}
	r.events += events
}

// SegmentInfo is the JSON-facing index entry for one segment.
type SegmentInfo struct {
	ID      uint64        `json:"id"`
	Sealed  bool          `json:"sealed"`
	Bytes   int64         `json:"bytes"`
	Frames  int           `json:"frames"`
	Events  int           `json:"events"`
	Devices []DeviceRange `json:"devices"`
}

// DeviceRange is one device's (seq range, event count) within a segment.
type DeviceRange struct {
	Device uint64 `json:"device"`
	MinSeq uint64 `json:"min_seq"`
	MaxSeq uint64 `json:"max_seq"`
	Events int    `json:"events"`
}

var (
	errSegStoreClosed   = errors.New("trace: segment store is closed")
	errSegStoreReadOnly = errors.New("trace: segment store is read-only")
)

const checkpointName = "checkpoint.json"

// checkpointFile is the on-disk checkpoint: the per-device high-water
// marks plus enough of the index to name the active segment. Replay
// merges these marks with the frame-derived ones (taking the max per
// device), so a stale checkpoint can only be caught up, never regress
// the dedup gate.
type checkpointFile struct {
	ActiveSegment uint64            `json:"active_segment"`
	ActiveBytes   int64             `json:"active_bytes"`
	SealedThrough uint64            `json:"sealed_through"`
	Marks         map[uint64]uint64 `json:"marks"`
}

func segFileName(id uint64) string { return fmt.Sprintf("seg-%06d.v3s", id) }

func parseSegFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".v3s") {
		return 0, false
	}
	id, err := strconv.ParseUint(name[len("seg-"):len(name)-len(".v3s")], 10, 64)
	if err != nil || id == 0 {
		return 0, false
	}
	return id, true
}

func (s *SegStore) segPath(id uint64) string { return filepath.Join(s.dir, segFileName(id)) }

// OpenSegStore opens (creating if needed) the store rooted at dir and
// replays every existing segment to rebuild the index and the per-device
// marks. Each replayed batch is passed to onBatch (may be nil) in append
// order — boot uses this to rebuild the in-memory dataset. A torn final
// frame in the unsealed tail is truncated away (it was never acked); a
// decode failure anywhere else is corruption and an error.
func OpenSegStore(dir string, opt SegStoreOptions, onBatch func(*Batch)) (*SegStore, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: segstore: %w", err)
	}
	s := &SegStore{
		dir:    dir,
		opt:    opt,
		marks:  make(map[uint64]uint64),
		cpStop: make(chan struct{}),
		cpDone: make(chan struct{}),
	}

	var cp checkpointFile
	if raw, err := os.ReadFile(filepath.Join(dir, checkpointName)); err == nil {
		if err := json.Unmarshal(raw, &cp); err != nil {
			return nil, fmt.Errorf("trace: segstore: checkpoint: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("trace: segstore: %w", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace: segstore: %w", err)
	}
	var ids []uint64
	for _, ent := range entries {
		if id, ok := parseSegFileName(ent.Name()); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	s.sealedThrough = cp.SealedThrough
	for i, id := range ids {
		// Only a segment past the checkpointed seal boundary may be a
		// crashed unsealed tail; sealed files are immutable forever, so a
		// decode error inside one is corruption, never a torn write.
		tail := i == len(ids)-1 && id > cp.SealedThrough
		seg, err := s.replaySegment(id, tail, onBatch)
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	// Checkpoint marks can only be behind the frame-derived ones (marks
	// advance strictly with durable appends), but merge defensively.
	for dev, seq := range cp.Marks {
		if seq > s.marks[dev] {
			s.marks[dev] = seq
		}
	}

	if opt.ReadOnly {
		// Adopt mode: seal everything in memory so ReadSegment and the
		// query APIs can serve the whole directory, and never write — no
		// active segment, no checkpoint loop. The on-disk checkpoint stays
		// as the dead process left it; a later read-write reopen replays
		// from the frames as usual.
		for _, seg := range s.segs {
			if !seg.sealed {
				seg.sealed = true
				s.sealedThrough = seg.id
			}
		}
		close(s.cpDone) // no checkpoint loop to wait out on Close/Kill
		return s, nil
	}

	// The highest-numbered segment resumes as the active tail unless it
	// was already sealed (clean close) or has crossed the size threshold;
	// either way a sealed file is never appended to again.
	nextID := uint64(1)
	if n := len(s.segs); n > 0 {
		tail := s.segs[n-1]
		nextID = tail.id + 1
		if !tail.sealed && tail.bytes < opt.SegmentSize {
			f, err := os.OpenFile(s.segPath(tail.id), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("trace: segstore: %w", err)
			}
			s.f, s.activeOff = f, tail.bytes
		} else if !tail.sealed {
			tail.sealed = true
			s.sealedThrough = tail.id
			mSegSealed.Inc()
		}
	}
	if s.f == nil {
		if err := s.openSegmentLocked(nextID); err != nil {
			return nil, err
		}
	}
	if err := s.checkpointLocked(); err != nil {
		s.f.Close()
		return nil, err
	}
	go s.checkpointLoop()
	return s, nil
}

// replaySegment decodes one segment file frame by frame, rebuilding its
// index entry, advancing the marks, and feeding onBatch. For the tail
// segment a decode error past the last good frame is a torn write from a
// crash: the file is truncated back to the frame boundary. For a sealed
// segment any decode error is corruption.
func (s *SegStore) replaySegment(id uint64, tail bool, onBatch func(*Batch)) (*segment, error) {
	path := s.segPath(id)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: segstore: %w", err)
	}
	defer f.Close()
	seg := &segment{id: id, sealed: !tail, devices: make(map[uint64]*segRange)}
	br := bufio.NewReaderSize(f, 1<<16)
	good := int64(0)
	for {
		b, wire, _, err := ReadBatchAny(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !tail {
				return nil, fmt.Errorf("trace: segstore: sealed segment %s is corrupt at offset %d: %w", path, good, err)
			}
			// Torn tail: the frame was cut mid-write by a crash, so its
			// batch was never acked — drop it and let the retry restore it.
			size := int64(0)
			if fi, err := f.Stat(); err == nil {
				size = fi.Size()
			}
			if err := os.Truncate(path, good); err != nil {
				return nil, fmt.Errorf("trace: segstore: truncate torn tail of %s: %w", path, err)
			}
			s.truncated += size - good
			mSegTruncated.Add(size - good)
			break
		}
		good += int64(wire)
		seg.frames++
		seg.events += len(b.Events)
		seg.note(b.DeviceID, b.Seq, len(b.Events))
		if b.Seq > s.marks[b.DeviceID] {
			s.marks[b.DeviceID] = b.Seq
		}
		mSegReplayed.Inc()
		if onBatch != nil {
			onBatch(b)
		}
	}
	seg.bytes = good
	return seg, nil
}

// openSegmentLocked creates and activates segment id.
func (s *SegStore) openSegmentLocked(id uint64) error {
	f, err := os.OpenFile(s.segPath(id), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("trace: segstore: %w", err)
	}
	s.f, s.activeOff = f, 0
	s.segs = append(s.segs, &segment{id: id, devices: make(map[uint64]*segRange)})
	return nil
}

// Append encodes b as one v3 frame and appends it to the active segment
// with a single unbuffered write, advancing the index and the device's
// high-water mark. When the write returns, the frame is durable against
// process death — callers ack only after Append succeeds. Crossing
// SegmentSize seals the segment (fsync, mark immutable, checkpoint) and
// opens the next one.
func (s *SegStore) Append(b *Batch) error {
	fp := getScratch(1 << 10)
	defer putScratch(fp)
	frame, err := AppendBatchV3((*fp)[:0], b)
	if err != nil {
		return err
	}
	*fp = frame

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errSegStoreClosed
	}
	if s.opt.ReadOnly {
		return errSegStoreReadOnly
	}
	if _, err := s.f.Write(frame); err != nil {
		// A partial append would corrupt the next frame's framing: roll the
		// file back to the last frame boundary before reporting failure.
		s.f.Truncate(s.activeOff)
		return fmt.Errorf("trace: segstore: append: %w", err)
	}
	s.activeOff += int64(len(frame))
	seg := s.segs[len(s.segs)-1]
	seg.bytes = s.activeOff
	seg.frames++
	seg.events += len(b.Events)
	seg.note(b.DeviceID, b.Seq, len(b.Events))
	if b.Seq > s.marks[b.DeviceID] {
		s.marks[b.DeviceID] = b.Seq
	}
	s.appends++
	mSegAppends.Inc()
	mSegBytes.Add(int64(len(frame)))
	if s.activeOff >= s.opt.SegmentSize {
		return s.sealLocked()
	}
	return nil
}

// sealLocked closes out the active segment — fsync so the finished file
// survives power loss, not just process death — marks it immutable,
// checkpoints, and opens the successor.
func (s *SegStore) sealLocked() error {
	seg := s.segs[len(s.segs)-1]
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("trace: segstore: seal: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("trace: segstore: seal: %w", err)
	}
	seg.sealed = true
	s.sealedThrough = seg.id
	mSegSealed.Inc()
	if err := s.openSegmentLocked(seg.id + 1); err != nil {
		return err
	}
	return s.checkpointLocked()
}

// checkpointLocked writes the checkpoint atomically (temp file + rename).
func (s *SegStore) checkpointLocked() error {
	cp := checkpointFile{
		ActiveSegment: s.segs[len(s.segs)-1].id,
		ActiveBytes:   s.activeOff,
		SealedThrough: s.sealedThrough,
		Marks:         s.marks,
	}
	raw, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Errorf("trace: segstore: checkpoint: %w", err)
	}
	tmp := filepath.Join(s.dir, checkpointName+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("trace: segstore: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, checkpointName)); err != nil {
		return fmt.Errorf("trace: segstore: checkpoint: %w", err)
	}
	s.appends = 0
	mSegCheckpoints.Inc()
	return nil
}

// Checkpoint forces a mark/index checkpoint now.
func (s *SegStore) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errSegStoreClosed
	}
	if s.opt.ReadOnly {
		return errSegStoreReadOnly
	}
	return s.checkpointLocked()
}

// checkpointLoop writes the periodic checkpoint whenever appends happened
// since the last one.
func (s *SegStore) checkpointLoop() {
	defer close(s.cpDone)
	tick := time.NewTicker(s.opt.Checkpoint)
	defer tick.Stop()
	for {
		select {
		case <-s.cpStop:
			return
		case <-tick.C:
			s.mu.Lock()
			if !s.closed && s.appends > 0 {
				s.checkpointLocked()
			}
			s.mu.Unlock()
		}
	}
}

// Dir returns the store's root directory.
func (s *SegStore) Dir() string { return s.dir }

// TruncatedBytes reports how many torn-tail bytes the last open dropped.
func (s *SegStore) TruncatedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.truncated
}

// Marks returns a copy of the per-device acked seq high-water marks —
// the state a restarted collector seeds its dedup gate from.
func (s *SegStore) Marks() map[uint64]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]uint64, len(s.marks))
	for dev, seq := range s.marks {
		out[dev] = seq
	}
	return out
}

// Segments returns the index: one entry per segment in id order, device
// ranges sorted by device. The snapshot is decoupled from the append
// path — queries never block ingest.
func (s *SegStore) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SegmentInfo, 0, len(s.segs))
	for _, seg := range s.segs {
		info := SegmentInfo{
			ID: seg.id, Sealed: seg.sealed, Bytes: seg.bytes,
			Frames: seg.frames, Events: seg.events,
			Devices: make([]DeviceRange, 0, len(seg.devices)),
		}
		for dev, r := range seg.devices {
			info.Devices = append(info.Devices, DeviceRange{
				Device: dev, MinSeq: r.minSeq, MaxSeq: r.maxSeq, Events: r.events,
			})
		}
		sort.Slice(info.Devices, func(i, j int) bool { return info.Devices[i].Device < info.Devices[j].Device })
		out = append(out, info)
	}
	return out
}

// sealedPath resolves id to its file path if the segment exists and is
// sealed. Only sealed segments are readable: they are immutable, so the
// read needs no coordination with the append path.
func (s *SegStore) sealedPath(id uint64) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		if seg.id == id {
			if !seg.sealed {
				return "", fmt.Errorf("trace: segstore: segment %d is not sealed yet", id)
			}
			return s.segPath(id), nil
		}
	}
	return "", fmt.Errorf("trace: segstore: no segment %d", id)
}

// ReadSegment streams the batches of sealed segment id from disk in
// append order. It holds no store lock while reading, so ingest into the
// active segment continues unimpeded.
func (s *SegStore) ReadSegment(id uint64, fn func(*Batch) error) error {
	path, err := s.sealedPath(id)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trace: segstore: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	for {
		b, _, _, err := ReadBatchAny(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("trace: segstore: read segment %d: %w", id, err)
		}
		if err := fn(b); err != nil {
			return err
		}
	}
}

// Close seals the active segment, writes a final checkpoint, and stops
// the background checkpointer. After Close every segment is sealed and
// remains readable via ReadSegment.
func (s *SegStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.opt.ReadOnly {
		// Nothing was ever open for writing; there is nothing to seal.
		s.mu.Unlock()
		close(s.cpStop)
		<-s.cpDone
		return nil
	}
	var err error
	if serr := s.f.Sync(); serr != nil {
		err = serr
	}
	if cerr := s.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	tail := s.segs[len(s.segs)-1]
	tail.sealed = true
	s.sealedThrough = tail.id
	mSegSealed.Inc()
	if cerr := s.checkpointLocked(); cerr != nil && err == nil {
		err = cerr
	}
	s.mu.Unlock()
	close(s.cpStop)
	<-s.cpDone
	return err
}

// Kill simulates a crash for tests and the chaos harness: the file
// handle closes and the checkpointer stops, but no seal, sync, or final
// checkpoint is written — the directory is left exactly as SIGKILL
// would leave it, and in-flight Appends fail without acking.
func (s *SegStore) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.f != nil {
		s.f.Close()
	}
	s.mu.Unlock()
	close(s.cpStop)
	<-s.cpDone
}
