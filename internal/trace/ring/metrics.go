package ring

import "repro/internal/metrics"

var (
	mMembership = metrics.NewCounter("ring_membership_changes_total",
		"Router membership changes: members joining or leaving the consistent-hash ring (address updates excluded).")
)
