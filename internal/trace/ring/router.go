package ring

import (
	"sync"
)

// Router is the shared, thread-safe view of the ring that uploaders and
// collectors consult: membership is keyed by stable member *names* (so a
// collector restarted on a different port is an address update, not a
// membership change), and Target resolves a device straight to the
// current owner's dial address. Router implements trace.TargetRouter.
type Router struct {
	mu    sync.Mutex
	ring  *Ring
	addrs map[string]string
}

// NewRouter creates a router over an empty ring with the given seed and
// virtual-node count (vnodes <= 0 uses DefaultVNodes).
func NewRouter(seed int64, vnodes int) *Router {
	return &Router{ring: New(seed, vnodes), addrs: make(map[string]string)}
}

// Add joins a member under name at addr. Adding a name already present
// only updates its address (no membership change).
func (r *Router) Add(name, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.addrs[name]; !ok {
		r.ring.Add(name)
		mMembership.Inc()
	}
	r.addrs[name] = addr
}

// Remove drops a member; its devices re-route to the survivors on the
// very next Target call. Unknown names are a no-op.
func (r *Router) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.addrs[name]; !ok {
		return
	}
	delete(r.addrs, name)
	r.ring.Remove(name)
	mMembership.Inc()
}

// SetAddr updates a present member's dial address (a restart on a new
// port); it reports whether the member was known.
func (r *Router) SetAddr(name, addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.addrs[name]; !ok {
		return false
	}
	r.addrs[name] = addr
	return true
}

// Target resolves the collector address device should upload to now, or
// "" when the ring is empty (trace.TargetRouter).
func (r *Router) Target(device uint64) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	name, ok := r.ring.Lookup(device)
	if !ok {
		return ""
	}
	return r.addrs[name]
}

// Owner returns the owning member's name for device.
func (r *Router) Owner(device uint64) (name string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Lookup(device)
}

// Owns returns a predicate suitable for trace.CollectorOptions.Owns: it
// answers, per batch, whether the named member currently owns the
// device. The predicate tracks later membership changes — it reads the
// live ring on every call.
func (r *Router) Owns(name string) func(device uint64) bool {
	return func(device uint64) bool {
		owner, ok := r.Owner(device)
		return ok && owner == name
	}
}

// Addr returns the member's dial address, if present.
func (r *Router) Addr(name string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.addrs[name]
	return a, ok
}

// Members returns the member names in sorted order.
func (r *Router) Members() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Members()
}

// Snapshot returns an independent copy of the current ring, for
// evaluating a planned membership change without exposing it.
func (r *Router) Snapshot() *Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Clone()
}
