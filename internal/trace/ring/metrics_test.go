package ring

import (
	"testing"

	"repro/internal/metrics"
)

func metricVal(t *testing.T, name string) float64 {
	t.Helper()
	v, ok := metrics.Default().Value(name)
	if !ok {
		t.Fatalf("metric %s not registered", name)
	}
	return v
}

// TestMembershipMetric: joins and leaves move
// ring_membership_changes_total; address updates do not.
func TestMembershipMetric(t *testing.T) {
	before := metricVal(t, "ring_membership_changes_total")
	rt := NewRouter(1, 16)
	rt.Add("a", "addr1")
	rt.Add("b", "addr2")
	rt.Add("a", "addr1-moved") // address update, not a membership change
	rt.SetAddr("b", "addr2-moved")
	rt.Remove("ghost") // unknown: no change
	rt.Remove("a")
	if got, want := metricVal(t, "ring_membership_changes_total")-before, 3.0; got != want {
		t.Fatalf("ring_membership_changes_total moved by %v, want %v (add a, add b, remove a)", got, want)
	}
}
