package ring

import (
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/trace"
)

// oneShotAckLoss injects exactly one ack-loss fault: the batch (dev,
// seq) is delivered and durably stored, but the connection dies before
// the ack — the duplicate-risk case a takeover must dedup.
type oneShotAckLoss struct {
	dev, seq uint64
	used     bool
}

func (c *oneShotAckLoss) UploadFault(device, seq uint64) trace.UploadFaultClass {
	if !c.used && device == c.dev && seq == c.seq {
		c.used = true
		return trace.FaultAckLoss
	}
	return trace.FaultNone
}

func (c *oneShotAckLoss) UploadOutcome(device uint64, acked bool) {}

// TestFleetFailoverExactlyOnce drives a 3-collector fleet through a
// mid-run SIGKILL of one member and checks the I7 contract end to end:
// the shared dataset equals the recorded multiset exactly once, a batch
// the victim stored without acking dedups on its survivor (seeded
// marks), and the union of sealed segments — served through Sources,
// including the victim's adopted read-only store — replays to the same
// digest.
func TestFleetFailoverExactlyOnce(t *testing.T) {
	ds := trace.NewDataset()
	fc, err := StartFleet(3, ds, FleetOptions{
		Seed:   7,
		VNodes: 64,
		Dir:    t.TempDir(),
		Store:  trace.SegStoreOptions{SegmentSize: 1 << 20, Checkpoint: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	const devices = 8
	var (
		recorded       trace.Digest
		recordedEvents int
		ups            [devices]*trace.Uploader
	)
	record := func(dev uint64, n int) {
		u := ups[dev]
		for i := 0; i < n; i++ {
			e := failure.Event{DeviceID: dev, Kind: failure.DataStall, Duration: time.Duration(i+1) * time.Second}
			recorded.Add(trace.EventDigest(&e))
			recordedEvents++
			u.Record(e)
		}
	}
	for dev := uint64(0); dev < devices; dev++ {
		u := trace.NewUploader(fc.Router().Target(dev), dev)
		u.SetRouter(fc.Router())
		// High threshold: flushes happen only where the test places them,
		// so the ack-lost batch is not retried before the failover.
		u.FlushThreshold = 1 << 20
		u.SetWiFi(true)
		ups[dev] = u
		defer u.Close()
	}

	// Wave 1: everyone uploads to their ring-assigned owner.
	for dev := uint64(0); dev < devices; dev++ {
		record(dev, 8)
		if err := ups[dev].Flush(); err != nil {
			t.Fatalf("wave-1 flush dev %d: %v", dev, err)
		}
	}

	// The victim is whoever owns device 0. Before killing it, make it
	// durably store one more batch whose ack is lost: the retry must hit
	// the survivor and dedup against the seeded marks.
	victim := fc.OwnerIndex(0)
	if victim < 0 {
		t.Fatal("no owner for device 0")
	}
	ups[0].SetChaos(&oneShotAckLoss{dev: 0, seq: 2})
	record(0, 4)
	if err := ups[0].Flush(); err == nil {
		t.Fatal("ack-loss flush unexpectedly succeeded")
	}
	ups[0].SetChaos(nil)
	// The fault severed the client side only; wait for the victim to
	// finish the durable admit (visible in the shared dataset, appended
	// after persist) so the kill provably leaves the batch on disk.
	for deadline := time.Now().Add(5 * time.Second); ds.Len() < recordedEvents; {
		if time.Now().After(deadline) {
			t.Fatalf("ack-lost batch never admitted: %d/%d", ds.Len(), recordedEvents)
		}
		time.Sleep(time.Millisecond)
	}

	takeover0 := metricVal(t, "trace_collector_takeover_devices")
	if err := fc.Fail(victim); err != nil {
		t.Fatal(err)
	}
	if fc.Alive(victim) {
		t.Fatal("victim still alive after Fail")
	}
	if metricVal(t, "trace_collector_takeover_devices") <= takeover0 {
		t.Fatal("trace_collector_takeover_devices did not move on takeover")
	}
	if got := fc.OwnerIndex(0); got == victim || got < 0 {
		t.Fatalf("device 0 still owned by the dead member (owner %d)", got)
	}

	// Wave 2: the router now names survivors; every uploader (including
	// the victim's former devices) must land exactly once.
	for dev := uint64(0); dev < devices; dev++ {
		record(dev, 8)
		if err := ups[dev].Flush(); err != nil {
			t.Fatalf("wave-2 flush dev %d: %v", dev, err)
		}
	}

	if ups[0].Reroutes() == 0 {
		t.Fatal("device 0 never rerouted off the dead collector")
	}
	if fc.DedupHits() == 0 {
		t.Fatal("the survivor never deduped the victim's ack-lost batch")
	}
	if got := ds.Len(); got != recordedEvents {
		t.Fatalf("dataset holds %d events, recorded %d", got, recordedEvents)
	}
	if got := ds.MultisetDigest(); got != recorded {
		t.Fatalf("dataset digest %s != recorded %s", got, recorded)
	}

	// Durable union: seal the survivors and replay every source — the
	// victim's segments come from its adopted read-only store.
	if err := fc.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := fc.CloseStores(); err != nil {
		t.Fatal(err)
	}
	sources := fc.Sources()
	if len(sources) != 3 {
		t.Fatalf("Sources returned %d stores, want 3 (dead member adopted)", len(sources))
	}
	var stored trace.Digest
	storedEvents := 0
	for _, src := range sources {
		for _, info := range src.Store.Segments() {
			if !info.Sealed {
				t.Fatalf("%s segment %d not sealed after CloseStores", src.Name, info.ID)
			}
			err := src.Store.ReadSegment(info.ID, func(b *trace.Batch) error {
				for i := range b.Events {
					stored.Add(trace.EventDigest(&b.Events[i]))
					storedEvents++
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if storedEvents != recordedEvents || stored != recorded {
		t.Fatalf("segment union: %d events digest %s, recorded %d digest %s",
			storedEvents, stored, recordedEvents, recorded)
	}
}

// TestFleetRefusesLastCollector: the harness will not kill the only
// live member.
func TestFleetRefusesLastCollector(t *testing.T) {
	ds := trace.NewDataset()
	fc, err := StartFleet(2, ds, FleetOptions{Seed: 1, VNodes: 16, Dir: t.TempDir(),
		Store: trace.SegStoreOptions{Checkpoint: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if err := fc.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := fc.Fail(0); err == nil {
		t.Fatal("double Fail succeeded")
	}
	if err := fc.Fail(1); err == nil {
		t.Fatal("failing the last live collector succeeded")
	}
}
