package ring

import (
	"runtime"
	"sync"
	"testing"
)

// assign computes the full DeviceID→member map for devices [0, k).
func assign(r *Ring, k uint64) map[uint64]string {
	out := make(map[uint64]string, k)
	for d := uint64(0); d < k; d++ {
		m, ok := r.Lookup(d)
		if !ok {
			return nil
		}
		out[d] = m
	}
	return out
}

// TestRingDeterministic: same seed + membership ⇒ identical assignment,
// regardless of member insertion order, GOMAXPROCS, or which goroutine
// asks. Placement must be a pure function of (seed, membership) or a
// fleet and its uploaders could not agree on ownership without a
// coordination service.
func TestRingDeterministic(t *testing.T) {
	const k = 2000
	a := New(7, 256)
	a.Add("col-0", "col-1", "col-2")
	want := assign(a, k)

	// Different insertion order, incremental adds.
	b := New(7, 256)
	b.Add("col-2")
	b.Add("col-1")
	b.Add("col-0")
	if got := assign(b, k); len(got) != k {
		t.Fatal("empty assignment")
	} else {
		for d, m := range want {
			if got[d] != m {
				t.Fatalf("device %d: insertion order changed owner %s -> %s", d, m, got[d])
			}
		}
	}

	// Same lookups under different GOMAXPROCS, from concurrent readers.
	for _, procs := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(procs)
		results := make([]map[uint64]string, 4)
		var wg sync.WaitGroup
		for i := range results {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = assign(a, k)
			}(i)
		}
		wg.Wait()
		runtime.GOMAXPROCS(prev)
		for i, got := range results {
			for d, m := range want {
				if got[d] != m {
					t.Fatalf("GOMAXPROCS=%d reader %d: device %d owner %s, want %s", procs, i, d, got[d], m)
				}
			}
		}
	}

	// A fresh ring with a different seed must NOT reproduce the same
	// assignment (otherwise the seed is not actually feeding the hash).
	c := New(8, 256)
	c.Add("col-0", "col-1", "col-2")
	same := 0
	for d, m := range assign(c, k) {
		if want[d] == m {
			same++
		}
	}
	if same == k {
		t.Fatal("seed does not affect placement")
	}
}

// TestRingRebalanceBound: removing one member moves exactly that
// member's keys — every survivor-owned device keeps its owner — and,
// with the committed (seed, vnodes, K), the moved set stays within
// ceil(K/N) for every possible victim. The configuration is pinned
// deterministically (seed 294, 1024 vnodes, K=1000 splits 333/333/334),
// so this doubles as a balance regression test on the hash.
func TestRingRebalanceBound(t *testing.T) {
	const (
		seed   = 294
		vnodes = 1024
		k      = 1000
	)
	members := []string{"col-0", "col-1", "col-2"}
	ceil := (k + len(members) - 1) / len(members)

	base := New(seed, vnodes)
	base.Add(members...)
	before := assign(base, k)

	owned := map[string]int{}
	for _, m := range before {
		owned[m]++
	}
	for _, m := range members {
		if owned[m] > ceil {
			t.Fatalf("member %s owns %d keys, over ceil(K/N)=%d — pinned balance regressed", m, owned[m], ceil)
		}
	}

	for _, victim := range members {
		r := base.Clone()
		r.Remove(victim)
		after := assign(r, k)
		moved := 0
		for d, m := range before {
			switch {
			case m == victim:
				moved++
				if after[d] == victim {
					t.Fatalf("victim %s still owns device %d after removal", victim, d)
				}
			case after[d] != m:
				t.Fatalf("losing %s moved device %d from survivor %s to %s", victim, d, m, after[d])
			}
		}
		if moved != owned[victim] {
			t.Fatalf("losing %s moved %d keys, want exactly its %d", victim, moved, owned[victim])
		}
		if moved > ceil {
			t.Fatalf("losing %s moved %d keys > ceil(K/N)=%d", victim, moved, ceil)
		}
	}
}

func TestRingEdges(t *testing.T) {
	r := New(1, 8)
	if _, ok := r.Lookup(42); ok {
		t.Fatal("empty ring returned an owner")
	}
	r.Add("only")
	for d := uint64(0); d < 100; d++ {
		if m, ok := r.Lookup(d); !ok || m != "only" {
			t.Fatalf("single-member ring: device %d -> %q, %v", d, m, ok)
		}
	}
	r.Add("only") // idempotent
	if n := len(r.points); n != 8 {
		t.Fatalf("re-adding a member duplicated points: %d", n)
	}
	r.Remove("ghost") // unknown: no-op
	if r.Len() != 1 {
		t.Fatalf("Len = %d after removing unknown member", r.Len())
	}

	c := r.Clone()
	c.Remove("only")
	if _, ok := c.Lookup(1); ok {
		t.Fatal("clone still routes after removing its only member")
	}
	if m, ok := r.Lookup(1); !ok || m != "only" {
		t.Fatal("mutating a clone leaked into the original")
	}
}

func TestRouterTargetAndOwns(t *testing.T) {
	rt := NewRouter(7, 64)
	if rt.Target(5) != "" {
		t.Fatal("empty router returned a target")
	}
	rt.Add("a", "1.1.1.1:1")
	rt.Add("b", "2.2.2.2:2")

	ownsA, ownsB := rt.Owns("a"), rt.Owns("b")
	for d := uint64(0); d < 500; d++ {
		name, ok := rt.Owner(d)
		if !ok {
			t.Fatalf("no owner for device %d", d)
		}
		wantAddr, _ := rt.Addr(name)
		if got := rt.Target(d); got != wantAddr {
			t.Fatalf("device %d: Target %q, owner %s addr %q", d, got, name, wantAddr)
		}
		if ownsA(d) != (name == "a") || ownsB(d) != (name == "b") {
			t.Fatalf("device %d: Owns disagrees with Owner %s", d, name)
		}
	}

	// A restart on a new port is an address update: same owners, new dial
	// target, no membership change.
	if !rt.SetAddr("a", "1.1.1.1:99") {
		t.Fatal("SetAddr on a present member reported absent")
	}
	if rt.SetAddr("ghost", "x") {
		t.Fatal("SetAddr on an absent member reported present")
	}
	for d := uint64(0); d < 500; d++ {
		if name, _ := rt.Owner(d); name == "a" {
			if got := rt.Target(d); got != "1.1.1.1:99" {
				t.Fatalf("device %d: Target %q after SetAddr", d, got)
			}
		}
	}

	// Removal re-routes the dead member's devices to the survivor; the
	// Owns predicate tracks the live ring.
	rt.Remove("a")
	for d := uint64(0); d < 500; d++ {
		if got := rt.Target(d); got != "2.2.2.2:2" {
			t.Fatalf("device %d routed to %q after removal", d, got)
		}
		if ownsA(d) {
			t.Fatalf("removed member still owns device %d", d)
		}
		if !ownsB(d) {
			t.Fatalf("survivor does not own device %d", d)
		}
	}
}
