package ring

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/trace"
)

// FleetOptions configures StartFleet. The zero value works: collectors
// listen on ephemeral localhost ports and stores use their defaults.
type FleetOptions struct {
	// Seed fixes the ring placement (device → collector), so fleet runs
	// are reproducible end to end.
	Seed int64
	// VNodes is the per-member virtual-node count; <= 0 uses
	// DefaultVNodes.
	VNodes int
	// Dir is the root under which each member gets its own segment-store
	// directory (Dir/col-N). Required — the fleet exists to be durable.
	Dir string
	// Collector is the per-member collector template; Store and Owns are
	// overwritten per member, everything else (OnAdmit, MaxConns, ...)
	// applies to each.
	Collector trace.CollectorOptions
	// Store is the per-member segment-store template.
	Store trace.SegStoreOptions
	// Replay, when set, overrides the boot-replay callback (default:
	// trace.ReplayInto the shared dataset). cellserve uses this to also
	// feed the streaming engine during replay.
	Replay func(*trace.Batch)
}

// member is one collector of the fleet.
type member struct {
	name    string
	dir     string
	col     *trace.Collector
	store   *trace.SegStore // read-write while alive
	adopted *trace.SegStore // read-only reopen of dir after Fail
	alive   bool
}

// FleetCollector runs N store-backed collectors behind one consistent-
// hash router — the multi-collector ingestion tier. All members append
// into one shared Dataset (its per-shard locking makes concurrent
// admits from different collectors safe), while durability is
// per-member: each collector acks only after the batch is in its own
// segment store. Ownership is enforced at admit time via
// CollectorOptions.Owns, so a batch routed to the wrong member — e.g.
// sent moments before its uploader observes a membership change — is
// refused with a redirect nack instead of being stored twice.
//
// Fail kills one member the way SIGKILL would and runs the takeover
// sequence; the dead member's sealed segments stay queryable through
// Sources/MergeAPI via a read-only reopen of its directory.
type FleetCollector struct {
	mu      sync.Mutex
	opt     FleetOptions
	ds      *trace.Dataset
	router  *Router
	members []*member
}

// StartFleet opens n store-backed collectors (replaying any existing
// per-member directories into ds first) and joins them all to a fresh
// router. Member names are "col-0" … "col-{n-1}"; their stores live in
// opt.Dir/col-N.
func StartFleet(n int, ds *trace.Dataset, opt FleetOptions) (*FleetCollector, error) {
	if n <= 0 {
		return nil, errors.New("ring: fleet needs at least one collector")
	}
	if opt.Dir == "" {
		return nil, errors.New("ring: FleetOptions.Dir is required")
	}
	if ds == nil {
		return nil, errors.New("ring: nil dataset")
	}
	replay := opt.Replay
	if replay == nil {
		replay = trace.ReplayInto(ds)
	}
	f := &FleetCollector{
		opt:    opt,
		ds:     ds,
		router: NewRouter(opt.Seed, opt.VNodes),
	}
	for i := 0; i < n; i++ {
		m := &member{
			name: fmt.Sprintf("col-%d", i),
			dir:  filepath.Join(opt.Dir, fmt.Sprintf("col-%d", i)),
		}
		store, err := trace.OpenSegStore(m.dir, opt.Store, replay)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("ring: fleet member %s: %w", m.name, err)
		}
		copt := opt.Collector
		copt.Store = store
		copt.Owns = f.router.Owns(m.name)
		col, err := trace.NewCollectorWith("127.0.0.1:0", ds, copt)
		if err != nil {
			store.Close()
			f.Close()
			return nil, fmt.Errorf("ring: fleet member %s: %w", m.name, err)
		}
		m.store, m.col, m.alive = store, col, true
		f.members = append(f.members, m)
		// Join only after the collector listens: from the first moment the
		// ring can route a device here, the address accepts connections.
		f.router.Add(m.name, col.Addr())
	}
	return f, nil
}

// Router returns the fleet's router — hand it to uploaders (SetRouter)
// or Scenario.UploadRouter.
func (f *FleetCollector) Router() *Router { return f.router }

// Len returns the member count, dead members included.
func (f *FleetCollector) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.members)
}

// Addr returns member i's listen address.
func (f *FleetCollector) Addr(i int) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.members[i].col.Addr()
}

// OwnerIndex returns the index of the member currently owning device,
// or -1 on an empty ring.
func (f *FleetCollector) OwnerIndex(device uint64) int {
	name, ok := f.router.Owner(device)
	if !ok {
		return -1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, m := range f.members {
		if m.name == name {
			return i
		}
	}
	return -1
}

// Alive reports whether member i has not been failed.
func (f *FleetCollector) Alive(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.members[i].alive
}

// Fail SIGKILLs member i and runs the takeover sequence:
//
//  1. Kill the collector and its store — no drain, no seal, no final
//     checkpoint; in-flight appends fail unacked, exactly like process
//     death.
//  2. Reopen the dead directory read-only. Replay rebuilds the dead
//     member's acked high-water marks from disk truth (a torn tail
//     frame is truncated — it was never acked, the device's retry
//     restores it elsewhere) without touching the shared dataset: every
//     admitted event is already there.
//  3. Seed the survivors' dedup gates with those marks *before* the
//     routing change is visible, each survivor getting the marks of
//     exactly the devices the post-removal ring hands it. A device
//     whose batch was durable on the dead member but whose ack died
//     with it will retry that same sequence number at its new owner —
//     the seeded mark turns that retry into a dedup ack instead of a
//     double store.
//  4. Remove the member from the router. Uploaders re-resolve on their
//     next send and land on the survivors; a stale send racing the
//     change gets a wrong-collector redirect from the Owns gate.
//
// The adopted read-only store remains registered in Sources, so merged
// queries keep serving the dead member's sealed segments.
func (f *FleetCollector) Fail(i int) error {
	f.mu.Lock()
	if i < 0 || i >= len(f.members) {
		f.mu.Unlock()
		return fmt.Errorf("ring: no fleet member %d", i)
	}
	m := f.members[i]
	if !m.alive {
		f.mu.Unlock()
		return fmt.Errorf("ring: fleet member %s already failed", m.name)
	}
	alive := 0
	for _, o := range f.members {
		if o.alive {
			alive++
		}
	}
	if alive == 1 {
		f.mu.Unlock()
		return errors.New("ring: refusing to fail the last live collector")
	}
	m.alive = false
	f.mu.Unlock()

	m.col.Kill()
	m.store.Kill()

	adopted, err := trace.OpenSegStore(m.dir, trace.SegStoreOptions{
		SegmentSize: f.opt.Store.SegmentSize,
		Checkpoint:  f.opt.Store.Checkpoint,
		ReadOnly:    true,
	}, nil)
	if err != nil {
		return fmt.Errorf("ring: adopt %s: %w", m.name, err)
	}

	// Plan the takeover on a clone so marks land on the survivors before
	// any uploader can be routed to them for these devices.
	next := f.router.Snapshot()
	next.Remove(m.name)
	perSurvivor := make(map[string]map[uint64]uint64)
	for dev, seq := range adopted.Marks() {
		owner, ok := next.Lookup(dev)
		if !ok {
			break
		}
		marks := perSurvivor[owner]
		if marks == nil {
			marks = make(map[uint64]uint64)
			perSurvivor[owner] = marks
		}
		marks[dev] = seq
	}
	f.mu.Lock()
	m.adopted = adopted
	for _, o := range f.members {
		if o.alive && len(perSurvivor[o.name]) > 0 {
			o.col.SeedMarks(perSurvivor[o.name])
		}
	}
	f.mu.Unlock()

	f.router.Remove(m.name)
	return nil
}

// Sources returns every member's queryable store — the live read-write
// store for survivors, the adopted read-only store for failed members —
// in member order. Pass this to trace.NewMergeAPI.
func (f *FleetCollector) Sources() []trace.StoreSource {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]trace.StoreSource, 0, len(f.members))
	for _, m := range f.members {
		st := m.store
		if !m.alive {
			st = m.adopted
		}
		if st != nil {
			out = append(out, trace.StoreSource{Name: m.name, Store: st})
		}
	}
	return out
}

// Drain gracefully drains every live collector (in parallel; grace is
// shared wall-clock, not per member) so in-flight uploads conclude at a
// batch boundary.
func (f *FleetCollector) Drain(grace time.Duration) error {
	f.mu.Lock()
	live := make([]*member, 0, len(f.members))
	for _, m := range f.members {
		if m.alive {
			live = append(live, m)
		}
	}
	f.mu.Unlock()
	errc := make(chan error, len(live))
	for _, m := range live {
		go func(m *member) { errc <- m.col.Drain(grace) }(m)
	}
	var err error
	for range live {
		if e := <-errc; e != nil && err == nil {
			err = e
		}
	}
	return err
}

// CloseStores seals every live member's store (the tail segment seals,
// so the full fleet becomes queryable) without stopping the collectors.
// Call after Drain when the run is over and the segments are about to
// be read back.
func (f *FleetCollector) CloseStores() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var err error
	for _, m := range f.members {
		if m.alive && m.store != nil {
			if e := m.store.Close(); e != nil && err == nil {
				err = e
			}
		}
	}
	return err
}

// DedupHits sums dedup hits across live members — takeover replays
// surface here on the survivors.
func (f *FleetCollector) DedupHits() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, m := range f.members {
		if m.alive {
			n += m.col.DedupHits()
		}
	}
	return n
}

// Redirects sums wrong-collector redirect nacks across live members.
func (f *FleetCollector) Redirects() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, m := range f.members {
		if m.alive {
			n += m.col.Redirects()
		}
	}
	return n
}

// Stats sums batches and wire bytes received across live members.
func (f *FleetCollector) Stats() (batches int, rxBytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.members {
		if m.alive {
			b, rx := m.col.Stats()
			batches += b
			rxBytes += rx
		}
	}
	return batches, rxBytes
}

// Close tears the whole fleet down: every live collector closes (open
// connections force-closed), every store — live or adopted — closes.
func (f *FleetCollector) Close() error {
	f.mu.Lock()
	members := append([]*member(nil), f.members...)
	f.mu.Unlock()
	var err error
	for _, m := range members {
		if m.alive && m.col != nil {
			if e := m.col.Close(); e != nil && err == nil {
				err = e
			}
		}
		if m.store != nil {
			if e := m.store.Close(); e != nil && err == nil {
				err = e
			}
		}
		if m.adopted != nil {
			if e := m.adopted.Close(); e != nil && err == nil {
				err = e
			}
		}
	}
	return err
}
