// Package ring routes devices to collectors: a seed-deterministic
// consistent-hash ring with virtual nodes (Ring), a thread-safe
// name→address router uploaders consult before every send (Router), and
// a FleetCollector harness that runs N store-backed collectors behind
// one ring with mid-run failover — the ingestion tier that makes the
// number of collectors a deployment knob.
package ring

import (
	"sort"
)

// DefaultVNodes is the virtual-node count per member when the caller
// passes <= 0. More vnodes smooth the key distribution (imbalance
// shrinks roughly with 1/sqrt(vnodes)) at the cost of a larger sorted
// point table; 512 keeps a 3-member ring within a few percent of even
// at negligible memory.
const DefaultVNodes = 512

// Ring is a consistent-hash ring mapping device IDs to member names.
// Placement is a pure function of (seed, membership): the same seed and
// members produce the identical assignment in every process, on every
// GOMAXPROCS, in every iteration order — which is what lets a fleet of
// collectors and thousands of uploaders agree on ownership without a
// coordination service. Removing a member moves only the keys that
// member owned (they redistribute to the survivors); every other key
// keeps its owner.
//
// Ring itself is not safe for concurrent mutation; Router wraps it with
// a lock for shared use.
type Ring struct {
	seed    int64
	vnodes  int
	members map[string]struct{}
	points  []point // sorted by (hash, member, vnode)
}

// point is one virtual node on the ring.
type point struct {
	hash   uint64
	member string
	vnode  int
}

// New creates an empty ring. vnodes <= 0 uses DefaultVNodes.
func New(seed int64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{seed: seed, vnodes: vnodes, members: make(map[string]struct{})}
}

// fnv1a64 constants.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// foldUint folds 8 bytes of x into an FNV-1a state.
func foldUint(h, x uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h ^= (x >> i) & 0xff
		h *= fnvPrime
	}
	return h
}

// mix64 is the splitmix64 finisher: FNV alone correlates nearby inputs
// (sequential device IDs, vnode indices), which would clump points on
// the ring; the finisher avalanches every input bit across the output.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pointHash positions one virtual node: hash of (seed, member, vnode).
func (r *Ring) pointHash(member string, vnode int) uint64 {
	h := uint64(fnvOffset)
	h = foldUint(h, uint64(r.seed))
	for i := 0; i < len(member); i++ {
		h ^= uint64(member[i])
		h *= fnvPrime
	}
	h = foldUint(h, uint64(vnode))
	return mix64(h)
}

// keyHash positions a device ID on the same circle.
func (r *Ring) keyHash(device uint64) uint64 {
	h := uint64(fnvOffset)
	h = foldUint(h, uint64(r.seed))
	h = foldUint(h, device)
	return mix64(h)
}

// Add inserts members (idempotently) and re-sorts the point table.
func (r *Ring) Add(members ...string) {
	changed := false
	for _, m := range members {
		if _, ok := r.members[m]; ok || m == "" {
			continue
		}
		r.members[m] = struct{}{}
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, point{hash: r.pointHash(m, v), member: m, vnode: v})
		}
		changed = true
	}
	if changed {
		r.sortPoints()
	}
}

// Remove deletes a member and its points; unknown members are a no-op.
// The surviving points keep their positions, so only the removed
// member's keys change owner.
func (r *Ring) Remove(member string) {
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// sortPoints orders the table by hash; ties (astronomically unlikely,
// but determinism must not hinge on luck) break by member name, then
// vnode index, so the assignment never depends on insertion order.
func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.member != b.member {
			return a.member < b.member
		}
		return a.vnode < b.vnode
	})
}

// Lookup returns the member owning device: the first virtual node at or
// clockwise of the device's hash, wrapping at the top. ok is false only
// on an empty ring.
func (r *Ring) Lookup(device uint64) (member string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := r.keyHash(device)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member, true
}

// Members returns the member names in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Clone returns an independent copy, so a planned membership change can
// be evaluated (e.g. who inherits a dead member's devices) before the
// live ring exposes it.
func (r *Ring) Clone() *Ring {
	c := &Ring{
		seed:    r.seed,
		vnodes:  r.vnodes,
		members: make(map[string]struct{}, len(r.members)),
		points:  append([]point(nil), r.points...),
	}
	for m := range r.members {
		c.members[m] = struct{}{}
	}
	return c
}
