package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/android"
	"repro/internal/failure"
	"repro/internal/geo"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// Wire dialect v3: a hand-rolled binary batch encoding.
//
// The v1/v2 payload is gob wrapped in gzip, both constructed fresh per
// batch: gob re-transmits its type descriptors on every frame and walks
// each event by reflection, and the throwaway gzip writer allocates its
// whole deflate state per call. At fleet scale the wire path — not the
// simulation — becomes the bottleneck. v3 keeps the outer shape of the
// protocol (one tagged frame per batch, the 13-byte v2 ack/nack reply,
// per-device Seq dedup) and replaces the payload encoding:
//
//	frame   = versionV3 byte (0xA3) ++ flags byte ++ uint32 BE body len
//	          ++ body
//	body    = payload, or gzip(payload) when flags&v3FlagGzip != 0
//	payload = uvarint DeviceID ++ uvarint Seq
//	          ++ uvarint #strings ++ { uvarint len ++ bytes }   (APN table)
//	          ++ uvarint #cells   ++ { cell record }            (BS table)
//	          ++ uvarint #events  ++ { event record }
//
// All multi-byte integers inside the payload are varints (zigzag for
// signed values); enum fields (Kind, ISP, Region, RAT, Level,
// ResolvedBy) are single bytes. The highly repetitive per-event context
// — the camped cell identity and the APN string — is interned in
// per-frame tables and referenced by index, so a thousand events camped
// on a handful of cells cost a varint each instead of 14 bytes. Optional
// fields (stall recovery outcome, transition info) sit behind a per-event
// flag bitmask instead of gob's reflection-driven presence encoding.
//
// Compression is a per-frame flag: payloads under v3CompressMin bytes
// skip gzip entirely (a small batch spends more cycles on deflate setup
// than it saves on the wire), larger ones use a pooled BestSpeed writer.
// Encode and decode scratch — buffers, intern tables, gzip state — is
// recycled through sync.Pools, so a steady-state uploader or collector
// allocates only the decoded events themselves.
//
// The first frame byte keeps the three dialects disjoint: v1 starts with
// a length-prefix byte <= 0x04 (64 MiB cap), v2 with 0xA2, v3 with 0xA3.
// One listener serves all three (ReadBatchAny); v3 clients receive the
// same 13-byte reply as v2 clients.
const (
	// versionV3 prefixes every v3 upload frame.
	versionV3 = 0xA3
	// v3FlagGzip marks a gzip-compressed body.
	v3FlagGzip = 0x01
	// v3CompressMin is the raw payload size below which the encoder skips
	// gzip. The binary payload is already compact — interned tables,
	// delta-coded varints, no type descriptors — so deflate buys roughly
	// 2x the bytes at roughly 10x the CPU of the encode itself. On the
	// CPU-bound ingest path that trade only pays off for large frames
	// (multi-thousand-event batches, stream and spill files); typical
	// per-device upload batches ship raw.
	v3CompressMin = 1 << 15
	// v3MinEventBytes is the smallest possible encoded event (every varint
	// one byte, no optional fields) — the decoder's allocation bound.
	v3MinEventBytes = 14
	// v3MinCellBytes is the smallest possible cell-table record.
	v3MinCellBytes = 5
)

// Dialect identifies a wire encoding for uploads. The zero value is
// treated as DialectV3 everywhere a dialect is consumed, so existing
// callers pick up the fast path without code changes.
type Dialect uint8

// Wire dialects.
const (
	// DialectV1 is the legacy unversioned frame: uint32 BE length +
	// gzip(gob), acknowledged with a bare 0x06 byte.
	DialectV1 Dialect = iota + 1
	// DialectV2 is the sequenced gob dialect: 0xA2 + v1 frame, 13-byte
	// ack/nack replies.
	DialectV2
	// DialectV3 is the binary dialect described above: 0xA3 frames,
	// 13-byte ack/nack replies.
	DialectV3
)

func (d Dialect) String() string {
	switch d {
	case DialectV1:
		return "v1"
	case DialectV2:
		return "v2"
	case 0, DialectV3:
		return "v3"
	default:
		return "unknown"
	}
}

// ParseDialect maps a configuration string to a dialect: "v3"/"" select
// the binary codec, "v2" the sequenced gob frames.
func ParseDialect(s string) (Dialect, error) {
	switch s {
	case "", "v3":
		return DialectV3, nil
	case "v2":
		return DialectV2, nil
	default:
		return 0, fmt.Errorf("trace: unknown wire dialect %q (want v2 or v3)", s)
	}
}

// errV3Malformed wraps every structural decode failure, so callers can
// distinguish a corrupt frame from an I/O error.
var errV3Malformed = errors.New("trace: malformed v3 frame")

// ---------------------------------------------------------------------------
// Pools. The encoder scratch, the frame/payload buffers, and the gzip
// state survive across batches; only decoded events escape.

// v3Enc is one encoder's reusable scratch: the event-section buffer, the
// assembled payload, and the intern tables.
type v3Enc struct {
	payload []byte
	events  []byte
	frame   []byte
	strs    []string
	strIdx  map[string]int
	cells   []telephony.CellIdentity
	cellIdx map[telephony.CellIdentity]int
}

var v3EncPool = sync.Pool{New: func() any {
	return &v3Enc{
		strIdx:  make(map[string]int, 8),
		cellIdx: make(map[telephony.CellIdentity]int, 64),
	}
}}

func (enc *v3Enc) reset() {
	enc.payload = enc.payload[:0]
	enc.events = enc.events[:0]
	enc.frame = enc.frame[:0]
	if len(enc.strs) > 0 {
		clear(enc.strIdx)
		enc.strs = enc.strs[:0]
	}
	if len(enc.cells) > 0 {
		clear(enc.cellIdx)
		enc.cells = enc.cells[:0]
	}
}

// gzipSpeedPool recycles BestSpeed writers for the v3 body.
var gzipSpeedPool = sync.Pool{New: func() any {
	zw, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
	return zw
}}

// scratchPool recycles byte slices for compressed bodies and decode
// buffers (both dialects).
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

func getScratch(n int) *[]byte {
	p := scratchPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, 0, n)
	}
	*p = (*p)[:0]
	return p
}

func putScratch(p *[]byte) {
	if cap(*p) > maxBatchWire {
		return // don't park a pathological allocation in the pool
	}
	scratchPool.Put(p)
}

// ---------------------------------------------------------------------------
// Encoding.

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func (enc *v3Enc) internStr(s string) int {
	if i, ok := enc.strIdx[s]; ok {
		return i
	}
	i := len(enc.strs)
	enc.strs = append(enc.strs, s)
	enc.strIdx[s] = i
	return i
}

func (enc *v3Enc) internCell(c telephony.CellIdentity) int {
	if i, ok := enc.cellIdx[c]; ok {
		return i
	}
	i := len(enc.cells)
	enc.cells = append(enc.cells, c)
	enc.cellIdx[c] = i
	return i
}

// Per-event optional-field flags.
const (
	v3EvFiveG      = 1 << 0
	v3EvDenseBS    = 1 << 1
	v3EvResolved   = 1 << 2
	v3EvOps        = 1 << 3
	v3EvAutoFix    = 1 << 4
	v3EvTransition = 1 << 5
	v3EvKnownBits  = v3EvFiveG | v3EvDenseBS | v3EvResolved | v3EvOps | v3EvAutoFix | v3EvTransition
)

// appendEvent encodes one event into the scratch event section. prevDev
// is the previous event's DeviceID (the batch DeviceID for the first
// event); device IDs are delta-coded since a batch is usually one
// device's — or one shard's contiguous range of — events.
func (enc *v3Enc) appendEvent(e *failure.Event, prevDev uint64) {
	var flags byte
	if e.FiveGCapable {
		flags |= v3EvFiveG
	}
	if e.DenseBS {
		flags |= v3EvDenseBS
	}
	if e.ResolvedBy != 0 {
		flags |= v3EvResolved
	}
	if e.OpsExecuted != 0 {
		flags |= v3EvOps
	}
	if e.AutoFixTime != 0 {
		flags |= v3EvAutoFix
	}
	if e.Transition != nil {
		flags |= v3EvTransition
	}
	b := append(enc.events, byte(e.Kind), flags)
	b = binary.AppendUvarint(b, zigzag(int64(e.DeviceID-prevDev)))
	b = binary.AppendUvarint(b, zigzag(int64(e.ModelID)))
	b = binary.AppendUvarint(b, zigzag(int64(e.AndroidVersion)))
	b = append(b, byte(e.ISP))
	b = binary.AppendUvarint(b, uint64(enc.internCell(e.Cell)))
	b = append(b, byte(e.Region), byte(e.RAT), byte(e.Level))
	b = binary.AppendUvarint(b, uint64(enc.internStr(string(e.APN))))
	b = binary.AppendUvarint(b, zigzag(int64(e.Cause)))
	b = binary.AppendUvarint(b, zigzag(int64(e.Start)))
	b = binary.AppendUvarint(b, zigzag(int64(e.Duration)))
	if flags&v3EvResolved != 0 {
		b = append(b, byte(e.ResolvedBy))
	}
	if flags&v3EvOps != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.OpsExecuted)))
	}
	if flags&v3EvAutoFix != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.AutoFixTime)))
	}
	if tr := e.Transition; tr != nil {
		b = append(b, byte(tr.FromRAT), byte(tr.ToRAT), byte(tr.FromLevel), byte(tr.ToLevel))
	}
	enc.events = b
}

// AppendBatchV3 appends one complete v3 wire frame (tag, flags, length,
// body) for b to dst and returns the extended slice. Encoder scratch and
// gzip state come from pools, so steady-state encoding does not allocate
// beyond dst's growth.
func AppendBatchV3(dst []byte, b *Batch) ([]byte, error) {
	enc := v3EncPool.Get().(*v3Enc)
	defer v3EncPool.Put(enc)
	enc.reset()

	prev := b.DeviceID
	for i := range b.Events {
		enc.appendEvent(&b.Events[i], prev)
		prev = b.Events[i].DeviceID
	}

	p := enc.payload
	p = binary.AppendUvarint(p, b.DeviceID)
	p = binary.AppendUvarint(p, b.Seq)
	p = binary.AppendUvarint(p, uint64(len(enc.strs)))
	for _, s := range enc.strs {
		p = binary.AppendUvarint(p, uint64(len(s)))
		p = append(p, s...)
	}
	p = binary.AppendUvarint(p, uint64(len(enc.cells)))
	for _, c := range enc.cells {
		p = binary.AppendUvarint(p, uint64(c.MCC))
		p = binary.AppendUvarint(p, uint64(c.MNC))
		p = binary.AppendUvarint(p, uint64(c.LAC))
		p = binary.AppendUvarint(p, uint64(c.CID))
		if c.CDMA {
			p = append(p, 1)
		} else {
			p = append(p, 0)
		}
	}
	p = binary.AppendUvarint(p, uint64(len(b.Events)))
	p = append(p, enc.events...)
	enc.payload = p
	if len(p) > maxBatchWire {
		return dst, fmt.Errorf("trace: batch payload %d bytes exceeds wire limit %d; split the batch", len(p), maxBatchWire)
	}

	body := p
	var flags byte
	if len(p) >= v3CompressMin {
		zw := gzipSpeedPool.Get().(*gzip.Writer)
		enc.frame = enc.frame[:0]
		fw := (*bytesBuffer)(&enc.frame)
		zw.Reset(fw)
		if _, err := zw.Write(p); err != nil {
			gzipSpeedPool.Put(zw)
			return dst, fmt.Errorf("trace: compress batch: %w", err)
		}
		if err := zw.Close(); err != nil {
			gzipSpeedPool.Put(zw)
			return dst, fmt.Errorf("trace: compress batch: %w", err)
		}
		gzipSpeedPool.Put(zw)
		if len(enc.frame) < len(p) {
			body = enc.frame
			flags = v3FlagGzip
		}
	}
	if len(body) > maxBatchWire {
		return dst, fmt.Errorf("trace: batch payload %d bytes exceeds wire limit %d; split the batch", len(body), maxBatchWire)
	}

	dst = append(dst, versionV3, flags)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	dst = append(dst, hdr[:]...)
	return append(dst, body...), nil
}

// WriteBatchV3 writes one v3 frame to w, returning its wire size.
func WriteBatchV3(w io.Writer, b *Batch) (int, error) {
	fp := getScratch(256)
	defer putScratch(fp)
	frame, err := AppendBatchV3((*fp)[:0], b)
	if err != nil {
		return 0, err
	}
	*fp = frame
	if _, err := w.Write(frame); err != nil {
		return 0, err
	}
	return len(frame), nil
}

// ---------------------------------------------------------------------------
// Decoding.

// v3cur is a bounds-checked cursor over a decoded payload.
type v3cur struct {
	b   []byte
	off int
}

func (c *v3cur) remaining() int { return len(c.b) - c.off }

func (c *v3cur) byte() (byte, error) {
	if c.off >= len(c.b) {
		return 0, errV3Malformed
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *v3cur) uvarint() (uint64, error) {
	// Fast path: most fields (deltas, indexes, small counts) fit one byte.
	if c.off < len(c.b) {
		if b := c.b[c.off]; b < 0x80 {
			c.off++
			return uint64(b), nil
		}
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, errV3Malformed
	}
	c.off += n
	return v, nil
}

func (c *v3cur) varint() (int64, error) {
	u, err := c.uvarint()
	return unzigzag(u), err
}

// decodeBatchV3 parses one raw (decompressed) v3 payload. Every count is
// bounded by the bytes actually present, so a corrupt frame can neither
// panic nor drive an allocation bomb.
func decodeBatchV3(payload []byte) (*Batch, error) {
	cur := v3cur{b: payload}
	b := &Batch{}
	var err error
	if b.DeviceID, err = cur.uvarint(); err != nil {
		return nil, err
	}
	if b.Seq, err = cur.uvarint(); err != nil {
		return nil, err
	}

	nStrs, err := cur.uvarint()
	if err != nil || nStrs > uint64(cur.remaining()) {
		return nil, errV3Malformed
	}
	strs := make([]string, 0, nStrs)
	for i := uint64(0); i < nStrs; i++ {
		n, err := cur.uvarint()
		if err != nil || n > uint64(cur.remaining()) {
			return nil, errV3Malformed
		}
		strs = append(strs, string(cur.b[cur.off:cur.off+int(n)]))
		cur.off += int(n)
	}

	nCells, err := cur.uvarint()
	if err != nil || nCells > uint64(cur.remaining()/v3MinCellBytes) {
		return nil, errV3Malformed
	}
	cells := make([]telephony.CellIdentity, 0, nCells)
	for i := uint64(0); i < nCells; i++ {
		var c telephony.CellIdentity
		mcc, err := cur.uvarint()
		if err != nil || mcc > 0xFFFF {
			return nil, errV3Malformed
		}
		mnc, err := cur.uvarint()
		if err != nil || mnc > 0xFFFF {
			return nil, errV3Malformed
		}
		lac, err := cur.uvarint()
		if err != nil || lac > 0xFFFFFFFF {
			return nil, errV3Malformed
		}
		cid, err := cur.uvarint()
		if err != nil || cid > 0xFFFFFFFF {
			return nil, errV3Malformed
		}
		cdma, err := cur.byte()
		if err != nil || cdma > 1 {
			return nil, errV3Malformed
		}
		c.MCC, c.MNC, c.LAC, c.CID, c.CDMA = uint16(mcc), uint16(mnc), uint32(lac), uint32(cid), cdma == 1
		cells = append(cells, c)
	}

	nEvents, err := cur.uvarint()
	if err != nil || nEvents > uint64(cur.remaining()/v3MinEventBytes) {
		return nil, errV3Malformed
	}
	if nEvents == 0 {
		if cur.remaining() != 0 {
			return nil, errV3Malformed
		}
		return b, nil
	}
	events := make([]failure.Event, nEvents)
	// Transitions are bulk-allocated once the count is known; pointers are
	// assigned after the backing slice stops growing.
	transIdx := make([]int, 0)
	var trans []failure.TransitionInfo
	prevDev := b.DeviceID
	for i := range events {
		e := &events[i]
		kind, err := cur.byte()
		if err != nil {
			return nil, err
		}
		flags, err := cur.byte()
		if err != nil || flags&^byte(v3EvKnownBits) != 0 {
			return nil, errV3Malformed
		}
		e.Kind = failure.Kind(kind)
		e.FiveGCapable = flags&v3EvFiveG != 0
		e.DenseBS = flags&v3EvDenseBS != 0
		dd, err := cur.varint()
		if err != nil {
			return nil, err
		}
		e.DeviceID = prevDev + uint64(dd)
		prevDev = e.DeviceID
		model, err := cur.varint()
		if err != nil {
			return nil, err
		}
		e.ModelID = int(model)
		av, err := cur.varint()
		if err != nil {
			return nil, err
		}
		e.AndroidVersion = int(av)
		isp, err := cur.byte()
		if err != nil {
			return nil, err
		}
		e.ISP = simnet.ISPID(isp)
		ci, err := cur.uvarint()
		if err != nil || ci >= uint64(len(cells)) {
			return nil, errV3Malformed
		}
		e.Cell = cells[ci]
		region, err := cur.byte()
		if err != nil {
			return nil, err
		}
		e.Region = geo.Region(region)
		rat, err := cur.byte()
		if err != nil {
			return nil, err
		}
		e.RAT = telephony.RAT(rat)
		level, err := cur.byte()
		if err != nil {
			return nil, err
		}
		e.Level = telephony.SignalLevel(level)
		si, err := cur.uvarint()
		if err != nil || si >= uint64(len(strs)) {
			return nil, errV3Malformed
		}
		e.APN = telephony.APN(strs[si])
		cause, err := cur.varint()
		if err != nil {
			return nil, err
		}
		e.Cause = telephony.FailCause(cause)
		start, err := cur.varint()
		if err != nil {
			return nil, err
		}
		e.Start = time.Duration(start)
		dur, err := cur.varint()
		if err != nil {
			return nil, err
		}
		e.Duration = time.Duration(dur)
		if flags&v3EvResolved != 0 {
			rb, err := cur.byte()
			if err != nil {
				return nil, err
			}
			e.ResolvedBy = android.ResolvedBy(rb)
		}
		if flags&v3EvOps != 0 {
			ops, err := cur.varint()
			if err != nil {
				return nil, err
			}
			e.OpsExecuted = int(ops)
		}
		if flags&v3EvAutoFix != 0 {
			af, err := cur.varint()
			if err != nil {
				return nil, err
			}
			e.AutoFixTime = time.Duration(af)
		}
		if flags&v3EvTransition != 0 {
			var tr failure.TransitionInfo
			fr, err := cur.byte()
			if err != nil {
				return nil, err
			}
			to, err := cur.byte()
			if err != nil {
				return nil, err
			}
			fl, err := cur.byte()
			if err != nil {
				return nil, err
			}
			tl, err := cur.byte()
			if err != nil {
				return nil, err
			}
			tr.FromRAT, tr.ToRAT = telephony.RAT(fr), telephony.RAT(to)
			tr.FromLevel, tr.ToLevel = telephony.SignalLevel(fl), telephony.SignalLevel(tl)
			trans = append(trans, tr)
			transIdx = append(transIdx, i)
		}
	}
	if cur.remaining() != 0 {
		return nil, errV3Malformed
	}
	for k, i := range transIdx {
		events[i].Transition = &trans[k]
	}
	b.Events = events
	return b, nil
}

// readBatchV3Body reads one v3 frame after its 0xA3 tag has been
// consumed, returning the batch and the bytes read (excluding the tag).
func readBatchV3Body(r io.Reader) (*Batch, int, error) {
	var hdr [5]byte // flags + uint32 BE body length
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("trace: read v3 batch header: %w", err)
	}
	flags := hdr[0]
	if flags&^byte(v3FlagGzip) != 0 {
		return nil, 0, errV3Malformed
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n == 0 || n > maxBatchWire {
		return nil, 0, fmt.Errorf("trace: implausible v3 batch size %d", n)
	}
	bodyP := getScratch(int(n))
	defer putScratch(bodyP)
	body := (*bodyP)[:n]
	*bodyP = body
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 0, fmt.Errorf("trace: read v3 batch payload: %w", err)
	}

	payload := body
	var rawP *[]byte
	if flags&v3FlagGzip != 0 {
		zr, err := getGzipReader(bytesReader(body))
		if err != nil {
			return nil, 0, fmt.Errorf("trace: decompress v3 batch: %w", err)
		}
		rawP = getScratch(4 * int(n))
		raw, err := readAllLimit((*rawP)[:0], zr, maxBatchWire)
		putGzipReader(zr)
		if err != nil {
			putScratch(rawP)
			return nil, 0, fmt.Errorf("trace: decompress v3 batch: %w", err)
		}
		*rawP = raw
		payload = raw
	}
	b, err := decodeBatchV3(payload)
	if rawP != nil {
		putScratch(rawP)
	}
	if err != nil {
		return nil, 0, err
	}
	return b, len(hdr) + int(n), nil
}

// readAllLimit appends r's contents to dst, erroring past limit bytes —
// the decompression-bomb guard for v3 bodies.
func readAllLimit(dst []byte, r io.Reader, limit int) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if len(dst) > limit {
			return dst, fmt.Errorf("trace: v3 payload exceeds %d-byte limit", limit)
		}
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// gzipReaderPool recycles inflate state across frames (both dialects).
var gzipReaderPool = sync.Pool{New: func() any { return new(gzip.Reader) }}

func getGzipReader(r io.Reader) (*gzip.Reader, error) {
	zr := gzipReaderPool.Get().(*gzip.Reader)
	if err := zr.Reset(r); err != nil {
		gzipReaderPool.Put(zr)
		return nil, err
	}
	return zr, nil
}

func putGzipReader(zr *gzip.Reader) {
	zr.Close()
	gzipReaderPool.Put(zr)
}

// ReadBatchAny reads one frame of any dialect from br, dispatching on
// the first byte: 0xA3 selects v3, 0xA2 the sequenced gob dialect, and
// anything else (necessarily <= 0x04, the length prefix of a capped v1
// frame) the legacy dialect. It returns the batch, the total wire bytes
// consumed (including any tag byte), and the dialect that was spoken.
// io.EOF is returned only for a stream ending cleanly at a frame
// boundary.
func ReadBatchAny(br *bufio.Reader) (*Batch, int, Dialect, error) {
	first, err := br.Peek(1)
	if err != nil {
		if err == io.EOF {
			return nil, 0, 0, io.EOF
		}
		return nil, 0, 0, fmt.Errorf("trace: read batch tag: %w", err)
	}
	switch first[0] {
	case versionV3:
		br.ReadByte()
		b, n, err := readBatchV3Body(br)
		return b, n + 1, DialectV3, err
	case versionV2:
		br.ReadByte()
		b, n, err := ReadBatch(br)
		return b, n + 1, DialectV2, err
	default:
		b, n, err := ReadBatch(br)
		return b, n, DialectV1, err
	}
}

// appendBatchFrame encodes one complete wire frame for b in the given
// dialect, appending to dst: the uploader's zero-copy frame builder.
func appendBatchFrame(dst []byte, b *Batch, d Dialect) ([]byte, error) {
	switch d {
	case DialectV2:
		buf := bytesBuffer(append(dst, versionV2))
		if _, err := WriteBatch(&buf, b); err != nil {
			return dst, err
		}
		return buf, nil
	case DialectV1:
		buf := bytesBuffer(dst)
		if _, err := WriteBatch(&buf, b); err != nil {
			return dst, err
		}
		return buf, nil
	default: // DialectV3 and the zero value
		return AppendBatchV3(dst, b)
	}
}
