package trace

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failure"
)

// retargetAckLoss injects one ack-loss on a specific (device, seq): the
// batch lands durably, the ack does not.
type retargetAckLoss struct {
	dev, seq uint64
	used     bool
}

func (c *retargetAckLoss) UploadFault(device, seq uint64) UploadFaultClass {
	if !c.used && device == c.dev && seq == c.seq {
		c.used = true
		return FaultAckLoss
	}
	return FaultNone
}

func (c *retargetAckLoss) UploadOutcome(device uint64, acked bool) {}

// TestRetargetMidFlushNoDuplicates reconnects an uploader to a collector
// restarted on a *different* port mid-flush: the old collector dies with
// one durably stored but unacked batch, a background flusher keeps
// retrying against the dead address, and Retarget lands concurrently
// with those flushes. The replayed marks on the new collector must dedup
// the retried batch (no duplicate admit), every later event must arrive
// exactly once, and no goroutine may leak.
func TestRetargetMidFlushNoDuplicates(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	ds := NewDataset()

	st1, err := OpenSegStore(dir, SegStoreOptions{Checkpoint: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	col1, err := NewCollectorWith("127.0.0.1:0", ds, CollectorOptions{Store: st1})
	if err != nil {
		t.Fatal(err)
	}
	oldAddr := col1.Addr()

	const dev = 42
	u := NewUploader(oldAddr, dev)
	u.FlushThreshold = 1 << 20
	u.SetWiFi(true)
	defer u.Close()

	var recorded Digest
	recordedEvents := 0
	record := func(n int) {
		for i := 0; i < n; i++ {
			e := failure.Event{DeviceID: dev, Kind: failure.DataStall, Duration: time.Duration(i+1) * time.Second}
			recorded.Add(EventDigest(&e))
			recordedEvents++
			u.Record(e)
		}
	}

	// Seqs 1..3 acked normally; seq 4 stored durably but its ack is lost.
	for i := 0; i < 3; i++ {
		record(5)
		if err := u.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	u.SetChaos(&retargetAckLoss{dev: dev, seq: 4})
	record(5)
	if err := u.Flush(); err == nil {
		t.Fatal("ack-loss flush unexpectedly succeeded")
	}
	u.SetChaos(nil)
	for deadline := time.Now().Add(5 * time.Second); ds.Len() < recordedEvents; {
		if time.Now().After(deadline) {
			t.Fatalf("ack-lost batch never admitted: %d/%d", ds.Len(), recordedEvents)
		}
		time.Sleep(time.Millisecond)
	}

	// SIGKILL the collector, then keep flushing against the dead address
	// from a background goroutine while the restart happens.
	col1.Kill()
	st1.Kill()
	record(5) // seals as seq 5 on the next flush

	stop := make(chan struct{})
	flusherDone := make(chan struct{})
	go func() {
		defer close(flusherDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			u.Flush()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Restart on a different port. Replay rebuilds the dedup marks from
	// the same directory; the dataset already holds everything admitted,
	// so replay must not re-append (onBatch nil).
	st2, err := OpenSegStore(dir, SegStoreOptions{Checkpoint: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	col2, err := NewCollectorWith("127.0.0.1:0", ds, CollectorOptions{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer col2.Close()
	if col2.Addr() == oldAddr {
		t.Skipf("ephemeral port %s reused; cannot exercise a different-port restart", oldAddr)
	}

	if !u.Retarget(col2.Addr()) {
		t.Fatal("Retarget reported no change for a new address")
	}
	for deadline := time.Now().Add(10 * time.Second); u.Pending() > 0; {
		if time.Now().After(deadline) {
			t.Fatalf("pending never drained after retarget: %d events left, last err %v", u.Pending(), u.LastErr())
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	<-flusherDone

	// Exactly once across the retarget: the retried seq-4 batch deduped
	// against the replayed marks instead of being re-admitted.
	if got := ds.Len(); got != recordedEvents {
		t.Fatalf("dataset holds %d events, recorded %d — duplicate or lost admit across retarget", got, recordedEvents)
	}
	if got := ds.MultisetDigest(); got != recorded {
		t.Fatalf("dataset digest %s != recorded %s", got, recorded)
	}
	if col2.DedupHits() == 0 {
		t.Fatal("restarted collector never deduped the retried batch")
	}
	if u.Reroutes() == 0 {
		t.Fatal("uploader reroute counter did not move")
	}

	// No goroutine leak: after closing everything, the count settles back
	// to (about) the baseline.
	u.Close()
	col2.Close()
	st2.Close()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d at start", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// flipRouter names addrA on the first resolution and addrB afterwards —
// the shape of a ring observing a membership change between an
// uploader's pre-send check and its redirect recovery.
type flipRouter struct {
	calls        atomic.Int64
	addrA, addrB string
}

func (r *flipRouter) Target(device uint64) string {
	if r.calls.Add(1) == 1 {
		return r.addrA
	}
	return r.addrB
}

// TestWrongCollectorRedirect: a collector whose Owns disclaims the
// device refuses the batch with a redirect nack and stores nothing;
// with a router installed, the very same Flush recovers by re-resolving
// and retrying at the owner.
func TestWrongCollectorRedirect(t *testing.T) {
	ds := NewDataset()
	refuse, err := NewCollectorWith("127.0.0.1:0", NewDataset(), CollectorOptions{
		Owns: func(device uint64) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer refuse.Close()
	accept, err := NewCollectorWith("127.0.0.1:0", ds, CollectorOptions{
		Owns: func(device uint64) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer accept.Close()

	// Without a router the redirect surfaces as ErrWrongCollector.
	u := NewUploader(refuse.Addr(), 7)
	u.FlushThreshold = 1 << 20 // no best-effort flushes; sends are counted below
	u.SetWiFi(true)
	defer u.Close()
	u.Record(failure.Event{DeviceID: 7, Kind: failure.DataStall, Duration: time.Second})
	if err := u.Flush(); !errors.Is(err, ErrWrongCollector) {
		t.Fatalf("Flush = %v, want ErrWrongCollector", err)
	}
	if refuse.Redirects() != 1 {
		t.Fatalf("refusing collector counted %d redirects, want 1", refuse.Redirects())
	}
	if ds.Len() != 0 {
		t.Fatal("a refused batch reached the dataset")
	}

	// With a router that flips to the owner after the first resolution,
	// one Flush absorbs the redirect: refuse → re-resolve → deliver.
	u.SetRouter(&flipRouter{addrA: refuse.Addr(), addrB: accept.Addr()})
	if err := u.Flush(); err != nil {
		t.Fatalf("router-recovered flush: %v", err)
	}
	if ds.Len() != 1 {
		t.Fatalf("owner holds %d events, want 1", ds.Len())
	}
	if refuse.Redirects() != 2 {
		t.Fatalf("refusing collector counted %d redirects, want 2", refuse.Redirects())
	}
	if u.Reroutes() != 1 {
		t.Fatalf("uploader rerouted %d times, want 1", u.Reroutes())
	}
}
