package trace

import "repro/internal/metrics"

// Trace-pipeline metrics: the device-side uploader and the backend
// collector. Counters are process-wide (all uploaders/collectors in the
// process share them), matching how a deployment would scrape one
// exporter per process.
var (
	mUpBatches = metrics.NewCounter("trace_uploader_batches_total",
		"Batches successfully uploaded and acknowledged.")
	mUpEvents = metrics.NewCounter("trace_uploader_events_total",
		"Events successfully uploaded.")
	mUpBytes = metrics.NewCounter("trace_uploader_bytes_total",
		"Wire bytes successfully uploaded (post-compression).")
	mUpRetries = metrics.NewCounter("trace_uploader_flush_retries_total",
		"Flush attempts that failed (dial, write, or ack), leaving events buffered for retry.")
	mColBatches = metrics.NewCounter("trace_collector_batches_accepted_total",
		"Batches decoded, stored, and acknowledged by collectors.")
	mColEvents = metrics.NewCounter("trace_collector_events_decoded_total",
		"Events decoded out of accepted batches.")
	mColDropped = metrics.NewCounter("trace_collector_batches_dropped_total",
		"Connections dropped on a malformed or truncated batch read, or on a failed durable append.")
	mColRxBytes = metrics.NewCounter("trace_collector_rx_bytes_total",
		"Wire bytes received by collectors (length prefix plus compressed payload).")
	mDatasetEvents = metrics.NewGauge("trace_dataset_events",
		"Events in the serving process's primary dataset (set by collectors and cellserve).")
	mUploadSeconds = metrics.NewHistogram("trace_upload_seconds",
		"Wall-clock seconds per successful batch upload (dial through ack).")
	mUpBackoffTotal = metrics.NewCounter("trace_uploader_backoff_total",
		"Failed flushes that armed the exponential-backoff timer.")
	mUpBackoffSeconds = metrics.NewHistogram("trace_uploader_backoff_seconds",
		"Backoff delay armed after each failed flush, in seconds.")
	mUpBackoffSuppressed = metrics.NewCounter("trace_uploader_backoff_suppressed_total",
		"Best-effort flushes skipped because the backoff timer had not expired.")
	mUpSpilled = metrics.NewCounter("trace_uploader_spilled_events_total",
		"Events moved from the in-memory buffer to the on-disk spill WAL.")
	mUpDropped = metrics.NewCounter("trace_uploader_dropped_events_total",
		"Events dropped oldest-first because the buffer cap was hit with no spill WAL.")
	mColDedupHits = metrics.NewCounter("trace_collector_dedup_hits_total",
		"Re-sent batches acknowledged without re-appending (per-device seq dedup).")
	mColNacks = metrics.NewCounter("trace_collector_nacks_total",
		"Connections shed because the connection cap was reached (versioned dialects get a retry-after nack, legacy a close).")
	mColOpenConns = metrics.NewGauge("trace_collector_open_connections",
		"Connections currently served by collectors in this process.")
	mHTTPEncodeErrors = metrics.NewCounter("trace_http_encode_errors_total",
		"JSON encode failures while writing query-API responses (client gone or unmarshalable value).")
	mSegAppends = metrics.NewCounter("trace_segstore_batches_appended_total",
		"Batches durably appended to the collector's segment store.")
	mSegBytes = metrics.NewCounter("trace_segstore_bytes_written_total",
		"Frame bytes appended to segment files.")
	mSegSealed = metrics.NewCounter("trace_segstore_segments_sealed_total",
		"Segments sealed (made immutable) after crossing the size threshold or at close.")
	mSegCheckpoints = metrics.NewCounter("trace_segstore_checkpoints_total",
		"Mark/index checkpoints written (periodic, at seal, and at close).")
	mSegReplayed = metrics.NewCounter("trace_segstore_batches_replayed_total",
		"Batches replayed from segment files while reopening a store.")
	mSegTruncated = metrics.NewCounter("trace_segstore_truncated_bytes_total",
		"Torn-tail bytes dropped when reopening a store after a crash (always an unacked final frame).")
	mUpReroutes = metrics.NewCounter("trace_uploader_reroutes_total",
		"Uploader target switches: Retarget calls (direct or router-driven) that changed the collector address.")
	mColTakeover = metrics.NewCounter("trace_collector_takeover_devices",
		"Devices whose acked high-water marks a surviving collector inherited from a dead collector's store (SeedMarks).")
)
