package trace

import (
	"net/http"
	"sort"
)

// StoreSource names one collector's segment store for merged queries.
// After a failover the dead collector's directory keeps appearing here,
// reopened read-only, so its sealed segments stay queryable alongside
// the survivors'.
type StoreSource struct {
	Name  string
	Store *SegStore
}

// MergeAPI serves the union of several collectors' segment stores as one
// index — the query tier of the collector fleet. Paths and response
// shapes mirror StoreAPI with one addition: every index entry carries
// the owning collector's name, and the per-segment endpoints take a
// mandatory `collector` parameter, because segment ids are only unique
// within one store.
//
//	GET /api/segments                                        — merged index across every source
//	GET /api/segments/events?collector=C&id=N[&device=D][&limit=K]
//	GET /api/segments/data?collector=C&id=N
//
// Sources are re-fetched per request, so membership changes (a death, an
// adopted read-only store) are visible to the next query without
// re-registering routes. Like StoreAPI, every read touches only sealed
// immutable files: merged queries never block any collector's ingest.
type MergeAPI struct {
	sources func() []StoreSource
}

// NewMergeAPI builds the merged query layer over a dynamic source list.
// sources must be safe for concurrent calls.
func NewMergeAPI(sources func() []StoreSource) *MergeAPI {
	return &MergeAPI{sources: sources}
}

// Routes registers the API on mux under /api/segments.
func (a *MergeAPI) Routes(mux *http.ServeMux) {
	mux.HandleFunc("/api/segments", a.handleIndex)
	mux.HandleFunc("/api/segments/events", a.handleEvents)
	mux.HandleFunc("/api/segments/data", a.handleData)
}

// MergedSegmentInfo is one index entry of the merged view: a segment
// plus the collector whose store holds it.
type MergedSegmentInfo struct {
	Collector string `json:"collector"`
	SegmentInfo
}

func (a *MergeAPI) handleIndex(w http.ResponseWriter, r *http.Request) {
	srcs := a.sources()
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].Name < srcs[j].Name })
	out := []MergedSegmentInfo{}
	for _, src := range srcs {
		for _, info := range src.Store.Segments() {
			out = append(out, MergedSegmentInfo{Collector: src.Name, SegmentInfo: info})
		}
	}
	writeJSON(w, out)
}

// resolve maps the mandatory collector parameter to its store; on
// failure it has already written the error response.
func (a *MergeAPI) resolve(w http.ResponseWriter, r *http.Request) (*SegStore, bool) {
	name := r.URL.Query().Get("collector")
	if name == "" {
		http.Error(w, "missing collector", http.StatusBadRequest)
		return nil, false
	}
	for _, src := range a.sources() {
		if src.Name == name {
			return src.Store, true
		}
	}
	http.Error(w, "no collector "+name, http.StatusNotFound)
	return nil, false
}

func (a *MergeAPI) handleEvents(w http.ResponseWriter, r *http.Request) {
	st, ok := a.resolve(w, r)
	if !ok {
		return
	}
	id, ok := segmentID(w, r)
	if !ok {
		return
	}
	q, ok := parseEventsQuery(w, r)
	if !ok {
		return
	}
	resp, err := segmentEvents(st, id, q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, resp)
}

func (a *MergeAPI) handleData(w http.ResponseWriter, r *http.Request) {
	st, ok := a.resolve(w, r)
	if !ok {
		return
	}
	id, ok := segmentID(w, r)
	if !ok {
		return
	}
	streamSegment(w, st, id)
}
