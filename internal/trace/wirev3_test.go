package trace

import (
	"bufio"
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/android"
	"repro/internal/failure"
	"repro/internal/geo"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// gnarlyEvents builds a batch exercising every optional field, extreme
// values, and repetitive context the v3 codec interns.
func gnarlyEvents() []failure.Event {
	cells := []telephony.CellIdentity{
		{MCC: 460, MNC: 0, LAC: 4301, CID: 190211},
		{MCC: 460, MNC: 1, LAC: 0xFFFFFFFF, CID: 0xFFFFFFFF, CDMA: true},
		{},
	}
	events := make([]failure.Event, 64)
	for i := range events {
		events[i] = failure.Event{
			Kind:           failure.Kind(i % failure.NumKinds),
			DeviceID:       uint64(i) * 1_000_003,
			ModelID:        i % 34,
			AndroidVersion: 9 + i%2,
			FiveGCapable:   i%2 == 0,
			ISP:            simnet.ISPID(i % 3),
			Cell:           cells[i%len(cells)],
			Region:         geo.Region(i % 4),
			DenseBS:        i%3 == 0,
			RAT:            telephony.RAT(i % 4),
			Level:          telephony.SignalLevel(i % 6),
			APN:            [4]telephony.APN{"default", "ims", "mms", "supl"}[i%4],
			Cause:          telephony.FailCause(int32(i) - 32), // negative causes too
			Start:          time.Duration(i-8) * time.Minute,   // negative starts survive zigzag
			Duration:       time.Duration(i) * time.Second,
		}
		if i%4 == 1 {
			events[i].ResolvedBy = android.ResolvedBy(1 + i%3)
			events[i].OpsExecuted = i
			events[i].AutoFixTime = time.Duration(i) * time.Millisecond
		}
		if i%5 == 2 {
			events[i].Transition = &failure.TransitionInfo{
				FromRAT: telephony.RAT(i % 4), ToRAT: telephony.RAT((i + 1) % 4),
				FromLevel: telephony.SignalLevel(i % 6), ToLevel: telephony.SignalLevel((i + 2) % 6),
			}
		}
	}
	events[0].DeviceID = 0
	events[1].DeviceID = ^uint64(0) // max device ID delta-codes from 0
	return events
}

func v3RoundTrip(t *testing.T, in *Batch) *Batch {
	t.Helper()
	frame, err := AppendBatchV3(nil, in)
	if err != nil {
		t.Fatalf("AppendBatchV3: %v", err)
	}
	out, wire, dialect, err := ReadBatchAny(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatalf("ReadBatchAny: %v", err)
	}
	if dialect != DialectV3 {
		t.Fatalf("dialect = %v, want v3", dialect)
	}
	if wire != len(frame) {
		t.Fatalf("wire = %d, want %d", wire, len(frame))
	}
	return out
}

func TestWireV3RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		events []failure.Event
	}{
		{"sample", sampleEvents(10)},
		{"gnarly", gnarlyEvents()},
		{"single", sampleEvents(1)},
		{"empty", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := &Batch{DeviceID: 42, Seq: 7, Events: tc.events}
			out := v3RoundTrip(t, in)
			if !reflect.DeepEqual(in, out) {
				t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
			}
		})
	}
}

// TestWireV3GobOracle pins the v3 round trip to what the gob dialect
// produces for the same batch: identical structs, including the
// empty-events case where gob decodes a nil slice.
func TestWireV3GobOracle(t *testing.T) {
	for _, events := range [][]failure.Event{sampleEvents(33), gnarlyEvents(), nil} {
		in := &Batch{DeviceID: 9, Seq: 3, Events: events}
		var gobFrame bytesBuffer
		if _, err := WriteBatch(&gobFrame, in); err != nil {
			t.Fatal(err)
		}
		oracle, _, err := ReadBatch(bytesReader(gobFrame))
		if err != nil {
			t.Fatal(err)
		}
		got := v3RoundTrip(t, in)
		if !reflect.DeepEqual(oracle, got) {
			t.Fatalf("v3 decode != gob oracle:\ngob: %+v\n v3: %+v", oracle, got)
		}
	}
}

// TestWireV3Compression checks the per-frame compression flag: small
// batches ship raw, big repetitive ones gzip and actually shrink below
// the gob dialect's wire size.
func TestWireV3Compression(t *testing.T) {
	small, err := AppendBatchV3(nil, &Batch{DeviceID: 1, Seq: 1, Events: sampleEvents(2)})
	if err != nil {
		t.Fatal(err)
	}
	if small[1]&v3FlagGzip != 0 {
		t.Errorf("small batch compressed; want raw below %d bytes", v3CompressMin)
	}
	big := &Batch{DeviceID: 1, Seq: 1, Events: sampleEvents(2000)}
	frame, err := AppendBatchV3(nil, big)
	if err != nil {
		t.Fatal(err)
	}
	if frame[1]&v3FlagGzip == 0 {
		t.Error("large batch not compressed")
	}
	var gobFrame bytesBuffer
	if _, err := WriteBatch(&gobFrame, big); err != nil {
		t.Fatal(err)
	}
	if len(frame) >= len(gobFrame) {
		t.Errorf("v3 frame %d bytes >= gob frame %d bytes", len(frame), len(gobFrame))
	}
	if got := v3RoundTrip(t, big); !reflect.DeepEqual(big, got) {
		t.Fatal("compressed round trip mismatch")
	}
}

// TestWireV3CorruptRejected feeds the decoder truncations and targeted
// corruptions of a valid frame; every one must error without panicking,
// and io.EOF may only surface for the empty prefix.
func TestWireV3CorruptRejected(t *testing.T) {
	frame, err := AppendBatchV3(nil, &Batch{DeviceID: 5, Seq: 2, Events: gnarlyEvents()})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(frame); cut += 7 {
		if _, _, _, err := ReadBatchAny(bufio.NewReader(bytes.NewReader(frame[:cut]))); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(frame))
		}
	}
	corrupt := func(name string, mut func([]byte)) {
		c := append([]byte(nil), frame...)
		mut(c)
		if _, _, _, err := ReadBatchAny(bufio.NewReader(bytes.NewReader(c))); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	corrupt("reserved frame flag", func(b []byte) { b[1] |= 0x80 })
	corrupt("oversize length", func(b []byte) { b[2], b[3], b[4], b[5] = 0xFF, 0xFF, 0xFF, 0xFF })
	corrupt("zero length", func(b []byte) { b[2], b[3], b[4], b[5] = 0, 0, 0, 0 })
	corrupt("garbled gzip body", func(b []byte) {
		for i := 6; i < len(b); i++ {
			b[i] ^= 0xA5
		}
	})

	// Raw (uncompressed) payload corruptions: build a tiny frame that skips
	// gzip, then poke at payload fields directly.
	raw, err := AppendBatchV3(nil, &Batch{DeviceID: 1, Seq: 1, Events: sampleEvents(2)})
	if err != nil {
		t.Fatal(err)
	}
	if raw[1]&v3FlagGzip != 0 {
		t.Fatal("tiny frame unexpectedly compressed")
	}
	for i := 6; i < len(raw); i++ {
		c := append([]byte(nil), raw...)
		c[i] ^= 0xFF
		b, _, _, err := ReadBatchAny(bufio.NewReader(bytes.NewReader(c)))
		// A flipped byte may still decode to *some* structurally valid
		// batch (it only touches values); it must never panic, and if it
		// errors the error must be non-nil — both checked implicitly.
		_ = b
		_ = err
	}
	// Trailing junk after the last event must be rejected.
	c := append([]byte(nil), raw...)
	c = append(c, 0x01)
	c[2], c[3], c[4], c[5] = byte((len(c)-6)>>24), byte((len(c)-6)>>16), byte((len(c)-6)>>8), byte(len(c)-6)
	if _, _, _, err := ReadBatchAny(bufio.NewReader(bytes.NewReader(c))); err == nil {
		t.Error("trailing junk accepted")
	}
}

// TestAppendBatchFrameDialects checks the uploader's frame builder emits
// each dialect's expected tag and that all decode back identically.
func TestAppendBatchFrameDialects(t *testing.T) {
	in := &Batch{DeviceID: 11, Seq: 4, Events: sampleEvents(20)}
	for _, d := range []Dialect{DialectV1, DialectV2, DialectV3, 0} {
		frame, err := appendBatchFrame(nil, in, d)
		if err != nil {
			t.Fatalf("dialect %v: %v", d, err)
		}
		out, wire, got, err := ReadBatchAny(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("dialect %v: decode: %v", d, err)
		}
		want := d
		if d == 0 {
			want = DialectV3
		}
		if got != want {
			t.Errorf("dialect %v decoded as %v", d, got)
		}
		if wire != len(frame) {
			t.Errorf("dialect %v: wire %d != frame %d", d, wire, len(frame))
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("dialect %v round trip mismatch", d)
		}
	}
}

// TestCrossDialectCollector interleaves v2 and v3 uploaders on one
// collector and checks the stored multiset digest equals single-dialect
// runs of the same fleet.
func TestCrossDialectCollector(t *testing.T) {
	run := func(dialectFor func(i int) Dialect) (Digest, int) {
		ds := NewDataset()
		col, err := NewCollector("127.0.0.1:0", ds)
		if err != nil {
			t.Fatal(err)
		}
		defer col.Close()
		const uploaders = 8
		var wg sync.WaitGroup
		for i := 0; i < uploaders; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				up := NewUploader(col.Addr(), uint64(i+1))
				up.Dialect = dialectFor(i)
				up.FlushThreshold = 100
				up.SetWiFi(true)
				for _, e := range sampleEvents(40) {
					e.DeviceID = uint64(i + 1)
					up.Record(e)
				}
				if err := up.Flush(); err != nil {
					t.Errorf("uploader %d: %v", i, err)
				}
				up.Close()
			}(i)
		}
		wg.Wait()
		if err := col.Drain(time.Second); err != nil {
			t.Fatal(err)
		}
		return ds.MultisetDigest(), ds.Len()
	}

	mixed, nMixed := run(func(i int) Dialect {
		if i%2 == 0 {
			return DialectV3
		}
		return DialectV2
	})
	allV3, nV3 := run(func(int) Dialect { return DialectV3 })
	allV2, nV2 := run(func(int) Dialect { return DialectV2 })
	if nMixed != 8*40 || nV3 != nMixed || nV2 != nMixed {
		t.Fatalf("event counts differ: mixed=%d v3=%d v2=%d want %d", nMixed, nV3, nV2, 8*40)
	}
	if mixed != allV3 || mixed != allV2 {
		t.Fatalf("digest differs across dialect mixes:\nmixed %s\n  v3  %s\n  v2  %s", mixed, allV3, allV2)
	}
}

// TestShardedAdmitConcurrency hammers one collector with many devices on
// concurrent connections, with duplicate sends, and checks the sharded
// admit path accounts and dedups exactly like the single-mutex one did.
func TestShardedAdmitConcurrency(t *testing.T) {
	ds := NewDataset()
	col, err := NewCollectorWith("127.0.0.1:0", ds, CollectorOptions{AdmitShards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	const devices = 32
	var want Digest
	var wantMu sync.Mutex
	var wg sync.WaitGroup
	for dev := 1; dev <= devices; dev++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			events := sampleEvents(25)
			for i := range events {
				events[i].DeviceID = uint64(dev)
			}
			var local Digest
			for i := range events {
				local.Add(EventDigest(&events[i]))
			}
			wantMu.Lock()
			want.Add(local)
			wantMu.Unlock()

			up := NewUploader(col.Addr(), uint64(dev))
			up.FlushThreshold = 1000
			up.SetWiFi(true)
			for _, e := range events {
				up.Record(e)
			}
			if err := up.Flush(); err != nil {
				t.Errorf("device %d: %v", dev, err)
			}
			up.Close()

			// Re-send the identical sealed batch on a fresh connection: the
			// per-device high-water mark must dedup it on whatever shard the
			// device hashes to.
			dup := NewUploader(col.Addr(), uint64(dev))
			dup.FlushThreshold = 1000
			dup.SetWiFi(true)
			for _, e := range events {
				dup.Record(e)
			}
			if err := dup.Flush(); err != nil {
				t.Errorf("device %d dup: %v", dev, err)
			}
			dup.Close()
		}(dev)
	}
	wg.Wait()
	if err := col.Drain(time.Second); err != nil {
		t.Fatal(err)
	}

	if got := ds.Len(); got != devices*25 {
		t.Fatalf("dataset has %d events, want %d (dups must not append)", got, devices*25)
	}
	if got := ds.MultisetDigest(); got != want {
		t.Fatalf("stored multiset digest %s != recorded %s", got, want)
	}
	if got := col.DedupHits(); got != devices {
		t.Errorf("DedupHits = %d, want %d", got, devices)
	}
	batches, rx := col.Stats()
	if batches != devices {
		t.Errorf("Stats batches = %d, want %d", batches, devices)
	}
	if rx <= 0 {
		t.Errorf("Stats rxBytes = %d, want > 0", rx)
	}
	p50, p90, p99 := col.DurationQuantiles()
	if !(p50 > 0 && p50 <= p90 && p90 <= p99) {
		t.Errorf("merged quantiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
}
