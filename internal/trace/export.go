package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/failure"
)

// csvHeader is the column layout of WriteCSV.
var csvHeader = []string{
	"device_id", "model_id", "android", "five_g", "kind", "isp",
	"cell", "region", "dense_bs", "rat", "level", "cause",
	"start_s", "duration_s", "resolved_by", "ops_executed", "auto_fix_s",
	"trans_from_rat", "trans_from_level", "trans_to_rat", "trans_to_level",
}

// WriteCSV exports the dataset for external plotting tools. One row per
// event; transition columns are empty for non-transition failures.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	var werr error
	d.Each(func(e *failure.Event) {
		if werr != nil {
			return
		}
		row := []string{
			strconv.FormatUint(e.DeviceID, 10),
			strconv.Itoa(e.ModelID),
			strconv.Itoa(e.AndroidVersion),
			strconv.FormatBool(e.FiveGCapable),
			e.Kind.String(),
			e.ISP.String(),
			e.Cell.String(),
			e.Region.String(),
			strconv.FormatBool(e.DenseBS),
			e.RAT.String(),
			strconv.Itoa(int(e.Level)),
			e.Cause.String(),
			fmt.Sprintf("%.3f", e.Start.Seconds()),
			fmt.Sprintf("%.3f", e.Duration.Seconds()),
			e.ResolvedBy.String(),
			strconv.Itoa(e.OpsExecuted),
			fmt.Sprintf("%.3f", e.AutoFixTime.Seconds()),
			"", "", "", "",
		}
		if tr := e.Transition; tr != nil {
			row[17] = tr.FromRAT.String()
			row[18] = strconv.Itoa(int(tr.FromLevel))
			row[19] = tr.ToRAT.String()
			row[20] = strconv.Itoa(int(tr.ToLevel))
		}
		werr = cw.Write(row)
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}

// jsonEvent is the JSONL export shape with stable, snake_case field names.
type jsonEvent struct {
	DeviceID   uint64  `json:"device_id"`
	ModelID    int     `json:"model_id"`
	Android    int     `json:"android"`
	FiveG      bool    `json:"five_g"`
	Kind       string  `json:"kind"`
	ISP        string  `json:"isp"`
	Cell       string  `json:"cell"`
	Region     string  `json:"region"`
	DenseBS    bool    `json:"dense_bs"`
	RAT        string  `json:"rat"`
	Level      int     `json:"level"`
	Cause      string  `json:"cause"`
	StartS     float64 `json:"start_s"`
	DurationS  float64 `json:"duration_s"`
	ResolvedBy string  `json:"resolved_by,omitempty"`
	Ops        int     `json:"ops_executed,omitempty"`
	AutoFixS   float64 `json:"auto_fix_s,omitempty"`
	Transition *struct {
		FromRAT   string `json:"from_rat"`
		FromLevel int    `json:"from_level"`
		ToRAT     string `json:"to_rat"`
		ToLevel   int    `json:"to_level"`
	} `json:"transition,omitempty"`
}

// WriteJSONL exports the dataset as JSON Lines.
func (d *Dataset) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	var werr error
	d.Each(func(e *failure.Event) {
		if werr != nil {
			return
		}
		je := jsonEvent{
			DeviceID: e.DeviceID, ModelID: e.ModelID, Android: e.AndroidVersion,
			FiveG: e.FiveGCapable, Kind: e.Kind.String(), ISP: e.ISP.String(),
			Cell: e.Cell.String(), Region: e.Region.String(), DenseBS: e.DenseBS,
			RAT: e.RAT.String(), Level: int(e.Level), Cause: e.Cause.String(),
			StartS: e.Start.Seconds(), DurationS: e.Duration.Seconds(),
			Ops: e.OpsExecuted, AutoFixS: e.AutoFixTime.Seconds(),
		}
		if e.ResolvedBy != 0 {
			je.ResolvedBy = e.ResolvedBy.String()
		}
		if tr := e.Transition; tr != nil {
			je.Transition = &struct {
				FromRAT   string `json:"from_rat"`
				FromLevel int    `json:"from_level"`
				ToRAT     string `json:"to_rat"`
				ToLevel   int    `json:"to_level"`
			}{tr.FromRAT.String(), int(tr.FromLevel), tr.ToRAT.String(), int(tr.ToLevel)}
		}
		werr = enc.Encode(je)
	})
	return werr
}
