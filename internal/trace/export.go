package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"unicode/utf8"

	"repro/internal/failure"
)

// csvHeader is the column layout of WriteCSV.
var csvHeader = []string{
	"device_id", "model_id", "android", "five_g", "kind", "isp",
	"cell", "region", "dense_bs", "rat", "level", "cause",
	"start_s", "duration_s", "resolved_by", "ops_executed", "auto_fix_s",
	"trans_from_rat", "trans_from_level", "trans_to_rat", "trans_to_level",
}

// WriteCSV exports the dataset for external plotting tools. One row per
// event; transition columns are empty for non-transition failures.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	var werr error
	d.Each(func(e *failure.Event) {
		if werr != nil {
			return
		}
		row := []string{
			strconv.FormatUint(e.DeviceID, 10),
			strconv.Itoa(e.ModelID),
			strconv.Itoa(e.AndroidVersion),
			strconv.FormatBool(e.FiveGCapable),
			e.Kind.String(),
			e.ISP.String(),
			e.Cell.String(),
			e.Region.String(),
			strconv.FormatBool(e.DenseBS),
			e.RAT.String(),
			strconv.Itoa(int(e.Level)),
			e.Cause.String(),
			fmt.Sprintf("%.3f", e.Start.Seconds()),
			fmt.Sprintf("%.3f", e.Duration.Seconds()),
			e.ResolvedBy.String(),
			strconv.Itoa(e.OpsExecuted),
			fmt.Sprintf("%.3f", e.AutoFixTime.Seconds()),
			"", "", "", "",
		}
		if tr := e.Transition; tr != nil {
			row[17] = tr.FromRAT.String()
			row[18] = strconv.Itoa(int(tr.FromLevel))
			row[19] = tr.ToRAT.String()
			row[20] = strconv.Itoa(int(tr.ToLevel))
		}
		werr = cw.Write(row)
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSONL exports the dataset as JSON Lines: stable snake_case field
// names, one event per line. Lines are built with direct byte appends
// into a pooled buffer instead of a per-event struct fed to a reflective
// json.Encoder; the output is byte-identical to the old encoder (same
// field order, omitempty semantics, float formatting, string escaping,
// trailing newline — pinned by TestJSONLGolden).
func (d *Dataset) WriteJSONL(w io.Writer) error {
	bp := getScratch(1 << 15)
	defer putScratch(bp)
	buf := (*bp)[:0]
	var werr error
	d.Each(func(e *failure.Event) {
		if werr != nil {
			return
		}
		buf = appendJSONEvent(buf, e)
		if len(buf) >= 1<<15 {
			_, werr = w.Write(buf)
			buf = buf[:0]
		}
	})
	*bp = buf
	if werr != nil {
		return werr
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendJSONEvent appends one JSONL line for e, replicating the
// encoding/json output for the legacy jsonEvent struct byte for byte.
func appendJSONEvent(dst []byte, e *failure.Event) []byte {
	dst = append(dst, `{"device_id":`...)
	dst = strconv.AppendUint(dst, e.DeviceID, 10)
	dst = append(dst, `,"model_id":`...)
	dst = strconv.AppendInt(dst, int64(e.ModelID), 10)
	dst = append(dst, `,"android":`...)
	dst = strconv.AppendInt(dst, int64(e.AndroidVersion), 10)
	dst = append(dst, `,"five_g":`...)
	dst = strconv.AppendBool(dst, e.FiveGCapable)
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, e.Kind.String())
	dst = append(dst, `,"isp":`...)
	dst = appendJSONString(dst, e.ISP.String())
	dst = append(dst, `,"cell":`...)
	dst = appendJSONString(dst, e.Cell.String())
	dst = append(dst, `,"region":`...)
	dst = appendJSONString(dst, e.Region.String())
	dst = append(dst, `,"dense_bs":`...)
	dst = strconv.AppendBool(dst, e.DenseBS)
	dst = append(dst, `,"rat":`...)
	dst = appendJSONString(dst, e.RAT.String())
	dst = append(dst, `,"level":`...)
	dst = strconv.AppendInt(dst, int64(e.Level), 10)
	dst = append(dst, `,"cause":`...)
	dst = appendJSONString(dst, e.Cause.String())
	dst = append(dst, `,"start_s":`...)
	dst = appendJSONFloat(dst, e.Start.Seconds())
	dst = append(dst, `,"duration_s":`...)
	dst = appendJSONFloat(dst, e.Duration.Seconds())
	if e.ResolvedBy != 0 {
		if s := e.ResolvedBy.String(); s != "" {
			dst = append(dst, `,"resolved_by":`...)
			dst = appendJSONString(dst, s)
		}
	}
	if e.OpsExecuted != 0 {
		dst = append(dst, `,"ops_executed":`...)
		dst = strconv.AppendInt(dst, int64(e.OpsExecuted), 10)
	}
	if s := e.AutoFixTime.Seconds(); s != 0 {
		dst = append(dst, `,"auto_fix_s":`...)
		dst = appendJSONFloat(dst, s)
	}
	if tr := e.Transition; tr != nil {
		dst = append(dst, `,"transition":{"from_rat":`...)
		dst = appendJSONString(dst, tr.FromRAT.String())
		dst = append(dst, `,"from_level":`...)
		dst = strconv.AppendInt(dst, int64(tr.FromLevel), 10)
		dst = append(dst, `,"to_rat":`...)
		dst = appendJSONString(dst, tr.ToRAT.String())
		dst = append(dst, `,"to_level":`...)
		dst = strconv.AppendInt(dst, int64(tr.ToLevel), 10)
		dst = append(dst, '}')
	}
	return append(dst, '}', '\n')
}

// appendJSONFloat mirrors encoding/json's float64 formatting: shortest
// representation, 'e' format only for very small or very large
// magnitudes, with the exponent's leading zero stripped (1e-09 → 1e-9).
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

const jsonHexDigits = "0123456789abcdef"

// appendJSONString mirrors encoding/json's HTML-escaping string encoder:
// quotes, backslashes, control bytes, <, >, &, U+2028/U+2029, and
// invalid UTF-8 are escaped exactly as the standard encoder does.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Other control bytes, plus <, >, & (HTML escaping).
				dst = append(dst, '\\', 'u', '0', '0', jsonHexDigits[b>>4], jsonHexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
