package trace

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/failure"
	"repro/internal/rng"
)

// Backoff defaults: the first failed flush waits ~100ms, doubling per
// consecutive failure up to 5s. Fleet runs override these via SetBackoff
// with scenario-scaled values and a seeded jitter stream.
const (
	defaultBackoffBase = 100 * time.Millisecond
	defaultBackoffMax  = 5 * time.Second
)

// Injected-fault sentinels, so tests and chaos accounting can tell an
// injected failure from a genuine network one in wrapped errors.
var (
	errInjectedOutage   = errors.New("injected collector outage")
	errInjectedTruncate = errors.New("injected mid-frame disconnect")
)

// Uploader buffers a device's events and uploads them to the collector
// only when WiFi is available, exactly like Android-MOD ("the recorded
// data are uploaded to our backend server only when there is WiFi
// connectivity").
//
// Delivery is at-least-once and duplicate-free (v2 wire protocol, see
// wire.go): Flush seals the pending buffer into a batch with a
// device-local sequence number, and a sealed batch is retained — in
// memory, or in the spill WAL once the buffer cap forces it to disk —
// until the collector acknowledges that exact sequence number. Failed
// flushes arm an exponential-backoff timer with seeded jitter; Record's
// best-effort flushes respect the timer (so a dead collector is not
// hammered once per event), while an explicit Flush always attempts.
//
// The target collector is no longer fixed at construction: Retarget
// switches the uploader to a new address mid-run (the open connection to
// the old collector is dropped lazily before the next send), and
// SetRouter installs a TargetRouter the uploader consults before every
// send so ring membership changes re-route the device without any
// per-uploader bookkeeping. A collector that does not own this device
// under the routing ring answers with a redirect nack (ErrWrongCollector);
// the uploader re-resolves the owner and retries there, falling back to
// the ordinary backoff machinery when the router still names the same
// target.
type Uploader struct {
	addr string // guarded by mu; see Retarget

	// FlushThreshold is how many events accumulate before an on-WiFi
	// Record triggers an upload (default 1: immediate). Batching
	// amortizes the TCP round trip; SetWiFi(true) and Flush always drain
	// everything regardless.
	FlushThreshold int

	// BufferLimit caps the in-memory backlog (pending + sealed events).
	// When a Record pushes past it, the backlog moves to the spill WAL if
	// EnableSpill configured one, otherwise the oldest events are dropped
	// (accounted in Dropped). 0 means unbounded.
	BufferLimit int

	// Dialect selects the wire encoding for sends: DialectV3 (the zero
	// value) or DialectV2. Both carry sequence numbers and receive the
	// 13-byte ack/nack reply, so delivery semantics are identical; v3 is
	// the fast binary codec, v2 the gob frames older collectors expect.
	Dialect Dialect

	// sendMu serializes Flush so concurrent flushes cannot double-send;
	// it also guards the persistent connection and the frame buffer.
	sendMu sync.Mutex
	conn   net.Conn
	rd     *bufio.Reader
	frame  []byte // reused wire-frame scratch, guarded by sendMu

	mu          sync.Mutex
	deviceID    uint64
	pending     []failure.Event
	sealed      []*Batch // acked-pending batches, ascending Seq
	nextSeq     uint64
	wifi        bool
	sentBytes   int64
	uploads     int
	retries     int
	lastErr     error
	consecFails int
	backoffBase time.Duration
	backoffMax  time.Duration
	jitter      *rng.Source
	nextAttempt time.Time
	suppressed  int64
	spill       *spillWAL
	spilled     int64
	dropped     int64
	chaos       UploadChaos
	router      TargetRouter
	retargeted  bool // addr changed since the connection was dialed
	reroutes    int64
}

// TargetRouter resolves which collector address a device should upload
// to right now. Implementations (ring.Router) are consulted before every
// send, so membership changes re-route in-flight uploaders without the
// caller touching each one. Target must be safe for concurrent use and
// may return "" when no collector is known (the uploader then keeps its
// current address).
type TargetRouter interface {
	Target(device uint64) string
}

// NewUploader creates an uploader for a device targeting the collector at
// addr. The target can be changed later with Retarget or a SetRouter
// router.
func NewUploader(addr string, deviceID uint64) *Uploader {
	return &Uploader{addr: addr, deviceID: deviceID}
}

// Addr returns the collector address the next send will dial.
func (u *Uploader) Addr() string {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.addr
}

// Retarget points the uploader at a new collector address and reports
// whether the target actually changed. It is safe to call concurrently
// with a running Flush: only u.mu is taken (never sendMu), the in-flight
// send finishes against the old collector, and the stale connection is
// dropped before the next send dials the new address. A retarget disarms
// the backoff timer — the new collector deserves an immediate attempt —
// and the sealed-batch/WAL retry machinery carries unacknowledged batches
// over unchanged, so the survivor's dedup marks see the same sequence
// numbers a retry to the old collector would have carried.
func (u *Uploader) Retarget(addr string) bool {
	u.mu.Lock()
	if addr == "" || addr == u.addr {
		u.mu.Unlock()
		return false
	}
	u.addr = addr
	u.retargeted = true
	u.consecFails = 0
	u.nextAttempt = time.Time{}
	u.reroutes++
	u.mu.Unlock()
	mUpReroutes.Inc()
	return true
}

// SetRouter installs (or, with nil, removes) a router consulted before
// every send; when it names a different collector than the current
// target, the uploader retargets automatically.
func (u *Uploader) SetRouter(r TargetRouter) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.router = r
}

// Reroutes returns how many times the uploader switched collectors.
func (u *Uploader) Reroutes() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.reroutes
}

// maybeRetarget re-resolves the device's owner through the router, if
// any, and reports whether the target changed.
func (u *Uploader) maybeRetarget() bool {
	u.mu.Lock()
	r := u.router
	dev := u.deviceID
	u.mu.Unlock()
	if r == nil {
		return false
	}
	return u.Retarget(r.Target(dev))
}

// SetBackoff configures the exponential backoff armed by failed flushes:
// base doubles per consecutive failure up to max, and jitter (may be nil
// for full, deterministic delays) spreads retries so a fleet recovering
// from a collector outage does not reconnect in lockstep. Split the
// jitter source off the device's RNG stream to keep runs reproducible.
func (u *Uploader) SetBackoff(base, max time.Duration, jitter *rng.Source) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.backoffBase, u.backoffMax, u.jitter = base, max, jitter
}

// SetChaos installs a transport fault injector consulted once per batch
// send attempt. Pass nil to disable.
func (u *Uploader) SetChaos(c UploadChaos) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.chaos = c
}

// EnableSpill configures an on-disk WAL in dir for overflow past
// BufferLimit. The file is private to this uploader and removed on Close.
func (u *Uploader) EnableSpill(dir string) error {
	w, err := openSpillWAL(filepath.Join(dir, fmt.Sprintf("uploader-%d.wal", u.deviceID)))
	if err != nil {
		return err
	}
	u.mu.Lock()
	old := u.spill
	u.spill = w
	u.mu.Unlock()
	if old != nil {
		old.close()
	}
	return nil
}

// Record buffers an event for upload.
func (u *Uploader) Record(e failure.Event) {
	u.mu.Lock()
	u.pending = append(u.pending, e)
	u.enforceLimitLocked()
	threshold := u.FlushThreshold
	if threshold < 1 {
		threshold = 1
	}
	backlog := len(u.sealed) > 0 || (u.spill != nil && u.spill.batchCount() > 0)
	flush := u.wifi && (len(u.pending) >= threshold || backlog)
	u.mu.Unlock()
	if flush {
		u.flush(true) // best effort; events stay buffered on failure
	}
}

// enforceLimitLocked applies BufferLimit after an append. With a spill
// WAL the whole in-memory backlog moves to disk oldest-first (sealed
// batches, then the pending buffer sealed as one more batch) so the WAL's
// ascending-seq invariant holds; without one, oldest events are dropped.
func (u *Uploader) enforceLimitLocked() {
	limit := u.BufferLimit
	if limit <= 0 {
		return
	}
	total := len(u.pending)
	for _, b := range u.sealed {
		total += len(b.Events)
	}
	if total <= limit {
		return
	}
	if u.spill != nil {
		u.sealLocked()
		for len(u.sealed) > 0 {
			b := u.sealed[0]
			if err := u.spill.append(b); err != nil {
				// Disk trouble: keep the rest in memory and let the
				// drop-oldest path below bound it.
				break
			}
			u.sealed = u.sealed[1:]
			u.spilled += int64(len(b.Events))
			mUpSpilled.Add(int64(len(b.Events)))
		}
		if len(u.sealed) == 0 {
			return
		}
		total = 0
		for _, b := range u.sealed {
			total += len(b.Events)
		}
	}
	for total > limit && len(u.sealed) > 0 {
		n := len(u.sealed[0].Events)
		u.sealed = u.sealed[1:]
		total -= n
		u.dropped += int64(n)
		mUpDropped.Add(int64(n))
	}
	if over := total - limit; over > 0 {
		u.pending = append(u.pending[:0], u.pending[over:]...)
		u.dropped += int64(over)
		mUpDropped.Add(int64(over))
	}
}

// sealLocked moves the pending buffer into a sealed batch carrying the
// next sequence number. The seq is assigned exactly once; retries re-send
// the identical batch so the collector can dedup it.
func (u *Uploader) sealLocked() {
	if len(u.pending) == 0 {
		return
	}
	u.nextSeq++
	u.sealed = append(u.sealed, &Batch{
		DeviceID: u.deviceID,
		Seq:      u.nextSeq,
		Events:   append([]failure.Event(nil), u.pending...),
	})
	u.pending = u.pending[:0]
}

// Pending returns the number of buffered events not yet acknowledged by
// the collector: the pending buffer, sealed batches, and the spill WAL.
func (u *Uploader) Pending() int {
	u.mu.Lock()
	n := len(u.pending)
	for _, b := range u.sealed {
		n += len(b.Events)
	}
	spill := u.spill
	u.mu.Unlock()
	if spill != nil {
		n += int(spill.pendingEvents())
	}
	return n
}

// SentBytes returns total wire bytes uploaded (network budget accounting).
func (u *Uploader) SentBytes() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.sentBytes
}

// FlushRetries returns how many Flush attempts failed on the network
// (events stayed buffered and were retried later).
func (u *Uploader) FlushRetries() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.retries
}

// LastErr returns the most recent flush failure, or nil after a
// successful send. It makes Record's best-effort flush failures
// observable instead of silently swallowed.
func (u *Uploader) LastErr() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.lastErr
}

// ConsecutiveFailures returns how many flush attempts have failed since
// the last acknowledged batch.
func (u *Uploader) ConsecutiveFailures() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.consecFails
}

// Spilled returns how many events have moved to the spill WAL.
func (u *Uploader) Spilled() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.spilled
}

// Dropped returns how many events were shed oldest-first at the buffer
// cap.
func (u *Uploader) Dropped() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.dropped
}

// Suppressed returns how many best-effort flushes the backoff timer
// skipped.
func (u *Uploader) Suppressed() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.suppressed
}

// RetryDelay returns how long the backoff timer has left, or 0 when the
// next attempt may go immediately.
func (u *Uploader) RetryDelay() time.Duration {
	u.mu.Lock()
	defer u.mu.Unlock()
	if d := time.Until(u.nextAttempt); d > 0 {
		return d
	}
	return 0
}

// SetWiFi updates connectivity; gaining WiFi flushes the buffer.
func (u *Uploader) SetWiFi(on bool) {
	u.mu.Lock()
	u.wifi = on
	n := len(u.pending) + len(u.sealed)
	if u.spill != nil {
		n += u.spill.batchCount()
	}
	u.mu.Unlock()
	if on && n > 0 {
		u.Flush()
	}
}

// Close releases the persistent connection and the spill WAL. Buffered
// events are not flushed; call Flush first if they should survive.
func (u *Uploader) Close() error {
	u.sendMu.Lock()
	defer u.sendMu.Unlock()
	u.dropConn()
	u.mu.Lock()
	spill := u.spill
	u.spill = nil
	u.mu.Unlock()
	if spill != nil {
		return spill.close()
	}
	return nil
}

// Flush uploads all buffered events if WiFi is available, oldest first:
// the spill WAL, then sealed batches, then the current pending buffer
// (sealed on entry). It stops at the first failure, leaving everything
// unacknowledged buffered for the next attempt.
func (u *Uploader) Flush() error { return u.flush(false) }

func (u *Uploader) flush(bestEffort bool) error {
	u.sendMu.Lock()
	defer u.sendMu.Unlock()
	u.mu.Lock()
	if !u.wifi {
		u.mu.Unlock()
		return ErrNoWiFi
	}
	if bestEffort && time.Now().Before(u.nextAttempt) {
		u.suppressed++
		u.mu.Unlock()
		mUpBackoffSuppressed.Inc()
		return nil
	}
	u.sealLocked()
	spill := u.spill
	hasWork := len(u.sealed) > 0 || (spill != nil && spill.batchCount() > 0)
	u.mu.Unlock()
	if !hasWork {
		return nil
	}

	start := time.Now()
	sentBatches := 0
	// send consults the router first, then delivers; a redirect nack from
	// a collector that lost ownership of this device mid-flight earns one
	// immediate retry at the freshly resolved owner before the failure
	// arms backoff.
	send := func(b *Batch) (int, error) {
		u.maybeRetarget()
		w, err := u.sendOne(b)
		if err != nil && errors.Is(err, ErrWrongCollector) && u.maybeRetarget() {
			w, err = u.sendOne(b)
		}
		return w, err
	}
	for {
		// The WAL holds the oldest sequence numbers, so it drains first;
		// sending a sealed batch while lower seqs sit on disk would make
		// the collector's high-water mark discard them as duplicates.
		if spill != nil {
			b, wire, err := spill.peek()
			if err != nil {
				err = fmt.Errorf("trace: spill WAL read: %w", err)
				u.noteFailure(err)
				return err
			}
			if b != nil {
				w, err := send(b)
				if err != nil {
					u.noteFailure(err)
					return err
				}
				spill.advance(wire, len(b.Events))
				u.noteSuccess(w, len(b.Events))
				sentBatches++
				continue
			}
		}
		u.mu.Lock()
		if len(u.sealed) == 0 {
			u.mu.Unlock()
			break
		}
		b := u.sealed[0]
		u.mu.Unlock()
		w, err := send(b)
		if err != nil {
			u.noteFailure(err)
			return err
		}
		u.mu.Lock()
		// Record's overflow path may have moved the batch to the WAL
		// mid-send; the WAL copy will be re-sent and dedup'd, so only pop
		// it here if it is still the head.
		if len(u.sealed) > 0 && u.sealed[0] == b {
			u.sealed = append([]*Batch(nil), u.sealed[1:]...)
		}
		u.mu.Unlock()
		u.noteSuccess(w, len(b.Events))
		sentBatches++
	}
	if sentBatches > 0 {
		mUploadSeconds.Observe(time.Since(start).Seconds())
	}
	return nil
}

// sendOne delivers one sealed batch over the persistent connection
// (dialing if needed) and waits for its reply. It returns the wire bytes
// written on success. Any failure closes the connection so the next
// attempt starts from a clean dial.
func (u *Uploader) sendOne(b *Batch) (int, error) {
	u.mu.Lock()
	chaos := u.chaos
	addr := u.addr
	stale := u.retargeted
	u.retargeted = false
	u.mu.Unlock()
	fault := FaultNone
	if chaos != nil {
		fault = chaos.UploadFault(b.DeviceID, b.Seq)
	}
	acked := false
	if chaos != nil {
		defer func() { chaos.UploadOutcome(b.DeviceID, acked) }()
	}
	if fault == FaultDial {
		u.dropConn()
		return 0, fmt.Errorf("trace: dial collector: %w", errInjectedOutage)
	}
	if stale {
		// Retarget changed the address since this connection was dialed;
		// finish the switch here, where sendMu is held.
		u.dropConn()
	}
	if u.conn == nil {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return 0, fmt.Errorf("trace: dial collector: %w", err)
		}
		u.conn = conn
		u.rd = bufio.NewReader(conn)
	}
	u.conn.SetDeadline(time.Now().Add(30 * time.Second))
	if fault == FaultSlow {
		time.Sleep(chaosSlowDelay)
	}
	frame, err := appendBatchFrame(u.frame[:0], b, u.Dialect)
	if err != nil {
		return 0, fmt.Errorf("trace: upload: %w", err)
	}
	u.frame = frame
	wire := len(frame)
	if fault == FaultTruncate {
		u.conn.Write(frame[:len(frame)/2])
		u.dropConn()
		return 0, fmt.Errorf("trace: upload: %w", errInjectedTruncate)
	}
	if _, err := u.conn.Write(frame); err != nil {
		u.dropConn()
		return 0, fmt.Errorf("trace: upload: %w", err)
	}
	if fault == FaultAckLoss {
		// The batch is fully written; sever the connection before reading
		// the reply. Whether the collector stored it is deliberately
		// unknown — the retry plus collector dedup must make it exactly
		// once either way.
		u.dropConn()
		return 0, fmt.Errorf("%w (injected)", ErrAckLost)
	}
	kind, seq, retryAfter, err := readReply(u.rd)
	if err != nil {
		u.dropConn()
		return 0, fmt.Errorf("%w: %v", ErrAckLost, err)
	}
	if kind == batchWrongCollector {
		// Redirect nack: the collector decoded the batch but does not own
		// this device under its ring view, and stored nothing. It closes
		// its side after replying; drop ours and let the caller re-resolve
		// the owner.
		u.dropConn()
		return 0, fmt.Errorf("%w (addr %s, seq %d)", ErrWrongCollector, addr, seq)
	}
	if kind == batchNack {
		// The collector shed us; it closes its side after the nack, so
		// drop ours too and honor the suggested backoff.
		u.dropConn()
		return 0, &NackError{RetryAfter: retryAfter}
	}
	if seq != b.Seq {
		u.dropConn()
		return 0, fmt.Errorf("%w: acked seq %d, sent %d", ErrBadAck, seq, b.Seq)
	}
	acked = true
	return wire, nil
}

// dropConn closes the persistent connection; the next send re-dials.
// Caller must hold sendMu.
func (u *Uploader) dropConn() {
	if u.conn != nil {
		u.conn.Close()
		u.conn = nil
		u.rd = nil
	}
}

// noteSuccess accounts one acknowledged batch and disarms the backoff.
func (u *Uploader) noteSuccess(wire, events int) {
	mUpBatches.Inc()
	mUpEvents.Add(int64(events))
	mUpBytes.Add(int64(wire))
	u.mu.Lock()
	u.sentBytes += int64(wire)
	u.uploads++
	u.consecFails = 0
	u.lastErr = nil
	u.nextAttempt = time.Time{}
	u.mu.Unlock()
}

// noteFailure accounts a failed flush and arms the backoff timer: base
// doubled per consecutive failure, capped, jittered into [d/2, d) when a
// jitter source is configured, with a nack's retry-after as a floor.
func (u *Uploader) noteFailure(err error) {
	mUpRetries.Inc()
	u.mu.Lock()
	u.retries++
	u.consecFails++
	u.lastErr = err
	base, max := u.backoffBase, u.backoffMax
	if base <= 0 {
		base = defaultBackoffBase
	}
	if max <= 0 {
		max = defaultBackoffMax
	}
	d := base
	for i := 1; i < u.consecFails && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if u.jitter != nil {
		d = d/2 + time.Duration(u.jitter.Float64()*float64(d/2))
	}
	var nack *NackError
	if errors.As(err, &nack) && nack.RetryAfter > d {
		d = nack.RetryAfter
	}
	u.nextAttempt = time.Now().Add(d)
	u.mu.Unlock()
	mUpBackoffTotal.Inc()
	mUpBackoffSeconds.Observe(d.Seconds())
}
