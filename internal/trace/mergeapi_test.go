package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// mergeAPIFixture builds two stores with disjoint devices and a merged
// API over both.
func mergeAPIFixture(t *testing.T) (map[string]*SegStore, *httptest.Server) {
	t.Helper()
	stores := map[string]*SegStore{}
	for name, dev := range map[string]uint64{"col-0": 3, "col-1": 8} {
		st, err := OpenSegStore(t.TempDir(), SegStoreOptions{SegmentSize: 1024}, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		for _, b := range storeBatches(dev, 6, 8) {
			if err := st.Append(b); err != nil {
				t.Fatal(err)
			}
		}
		stores[name] = st
	}
	api := NewMergeAPI(func() []StoreSource {
		return []StoreSource{
			{Name: "col-0", Store: stores["col-0"]},
			{Name: "col-1", Store: stores["col-1"]},
		}
	})
	mux := http.NewServeMux()
	api.Routes(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return stores, srv
}

// TestMergeAPIIndex: the merged index is the concatenation of every
// source's index, each entry naming its collector.
func TestMergeAPIIndex(t *testing.T) {
	stores, srv := mergeAPIFixture(t)
	code, body := storeAPIGet(t, srv, "/api/segments")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var got []MergedSegmentInfo
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	perCollector := map[string]int{}
	for _, info := range got {
		perCollector[info.Collector]++
	}
	for name, st := range stores {
		if want := len(st.Segments()); perCollector[name] != want {
			t.Fatalf("merged index has %d segments for %s, store has %d", perCollector[name], name, want)
		}
	}
}

// TestMergeAPIEventsAndData: per-segment endpoints route by collector
// name, reuse the single-store decode (truncated marker included), and
// the raw data round-trips through the wire reader.
func TestMergeAPIEventsAndData(t *testing.T) {
	stores, srv := mergeAPIFixture(t)
	id := stores["col-1"].Segments()[0].ID

	code, body := storeAPIGet(t, srv, fmt.Sprintf("/api/segments/events?collector=col-1&id=%d&limit=5", id))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var resp SegmentEventsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 5 || !resp.Truncated {
		t.Fatalf("limit=5: %d rows truncated=%v", len(resp.Rows), resp.Truncated)
	}
	for _, r := range resp.Rows {
		if r.DeviceID != 8 {
			t.Fatalf("col-1 serves device 8 only, got a row for device %d", r.DeviceID)
		}
	}

	code, body = storeAPIGet(t, srv, fmt.Sprintf("/api/segments/data?collector=col-1&id=%d", id))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	got := NewDataset()
	br := bufio.NewReader(bytesReader(body))
	for {
		if _, err := br.Peek(1); err == io.EOF {
			break
		}
		b, _, _, err := ReadBatchAny(br)
		if err != nil {
			t.Fatal(err)
		}
		got.Append(b.Events...)
	}
	want := NewDataset()
	if err := stores["col-1"].ReadSegment(id, func(b *Batch) error {
		want.Append(b.Events...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got.MultisetDigest() != want.MultisetDigest() {
		t.Fatal("merged data download does not round-trip the segment")
	}

	for _, tc := range []struct {
		path string
		code int
	}{
		{fmt.Sprintf("/api/segments/events?id=%d", id), http.StatusBadRequest},
		{fmt.Sprintf("/api/segments/events?collector=ghost&id=%d", id), http.StatusNotFound},
		{"/api/segments/events?collector=col-1", http.StatusBadRequest},
		{fmt.Sprintf("/api/segments/data?collector=ghost&id=%d", id), http.StatusNotFound},
	} {
		if code, _ := storeAPIGet(t, srv, tc.path); code != tc.code {
			t.Errorf("GET %s = %d, want %d", tc.path, code, tc.code)
		}
	}
}
