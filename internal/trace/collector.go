package trace

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/failure"
	"repro/internal/stats"
)

// CollectorOptions tunes the backend's robustness envelope. The zero
// value selects production-ish defaults; tests shrink them to provoke
// shedding and drain paths quickly.
type CollectorOptions struct {
	// MaxConns caps concurrently served connections. A connection
	// arriving past the cap is shed: it gets a nack reply carrying
	// RetryAfter and is closed without reading a byte, so overload never
	// grows the goroutine count unboundedly. <= 0 uses 256.
	MaxConns int
	// ReadTimeout is the per-read idle deadline on a served connection.
	// A device that goes silent mid-connection (suspended phone, dead
	// radio) releases its server resources after this long instead of
	// parking a goroutine forever. <= 0 uses 2 minutes.
	ReadTimeout time.Duration
	// RetryAfter is the backoff floor suggested in shed nacks.
	// <= 0 uses 500ms.
	RetryAfter time.Duration
	// OnAdmit, when set, observes every batch that passes the dedup gate,
	// immediately after its events are appended to the dataset. It sees
	// exactly the admitted multiset — duplicate deliveries never reach it —
	// so a streaming consumer stays equal to the stored dataset. The slice
	// is freshly decoded per frame and ownership transfers to the hook.
	// The hook runs on the serve goroutine: it must not block (hand off to
	// a queue and return).
	OnAdmit func(events []failure.Event)
	// AdmitShards is the number of independent admit shards. Dedup marks,
	// batch/byte accounting, and quantile sketches are partitioned by
	// DeviceID across shards, so concurrent connections admit without
	// contending on one mutex. <= 0 uses 16 (matching DefaultShards).
	AdmitShards int
}

func (o CollectorOptions) withDefaults() CollectorOptions {
	if o.MaxConns <= 0 {
		o.MaxConns = 256
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 2 * time.Minute
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 500 * time.Millisecond
	}
	if o.AdmitShards <= 0 {
		o.AdmitShards = DefaultShards
	}
	return o
}

// Collector is the backend TCP server that receives uploaded batches.
// Alongside storing events it tracks streaming duration percentiles with
// P² sketches, so operational dashboards get p50/p90/p99 without the
// backend retaining samples.
//
// Ingestion is at-least-once and duplicate-free: sequenced batches carry
// (DeviceID, Seq) and the collector remembers, per device, the highest
// acknowledged sequence number. A batch re-sent after a lost ack is
// acknowledged again without re-appending, so retries never skew the
// dataset (see the wire-protocol comment in wire.go).
//
// The admit path is sharded by DeviceID: dedup marks, accounting, and
// quantile sketches live in opt.AdmitShards independent shards, and the
// dataset append is pinned to the batch's DeviceID shard, so concurrent
// connections admit in parallel. A device always lands on the same
// shard, which preserves the per-device dedup ordering — and therefore
// the admitted-multiset contract OnAdmit consumers rely on (I5).
type Collector struct {
	ln  net.Listener
	ds  *Dataset
	opt CollectorOptions

	// mu guards connection lifecycle only; admit-path state is sharded.
	mu         sync.Mutex
	conns      map[net.Conn]struct{}
	nacks      int64
	closed     bool
	draining   bool
	drainUntil time.Time

	shards []collectorShard
	wg     sync.WaitGroup
}

// collectorShard is one DeviceID-partition of the admit path. Each shard
// has its own mutex, so the only cross-connection contention is between
// devices that hash to the same shard.
type collectorShard struct {
	mu        sync.Mutex
	lastSeq   map[uint64]uint64 // per-device acked high-water mark
	batches   int
	rxBytes   int64
	dedupHits int64
	quantiles *stats.QuantileSet
	_         [32]byte // pad to keep hot shard state off shared cache lines
}

// NewCollector starts a collector on addr (e.g. "127.0.0.1:0") feeding ds
// with default options.
func NewCollector(addr string, ds *Dataset) (*Collector, error) {
	return NewCollectorWith(addr, ds, CollectorOptions{})
}

// NewCollectorWith starts a collector with explicit options.
func NewCollectorWith(addr string, ds *Dataset, opt CollectorOptions) (*Collector, error) {
	if ds == nil {
		return nil, errors.New("trace: nil dataset")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	c := &Collector{
		ln:     ln,
		ds:     ds,
		opt:    opt,
		conns:  make(map[net.Conn]struct{}),
		shards: make([]collectorShard, opt.AdmitShards),
	}
	for i := range c.shards {
		qs, err := stats.NewQuantileSet(0.5, 0.9, 0.99)
		if err != nil {
			ln.Close()
			return nil, err
		}
		c.shards[i].lastSeq = make(map[uint64]uint64)
		c.shards[i].quantiles = qs
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// shardFor returns the admit shard owning device. All of a device's
// batches — and therefore all of its sequence numbers — route to the
// same shard, so per-device dedup needs no cross-shard coordination.
func (c *Collector) shardFor(device uint64) *collectorShard {
	return &c.shards[device%uint64(len(c.shards))]
}

// Addr returns the collector's listen address.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

// Stats returns the number of batches and wire bytes received, summed
// across admit shards.
func (c *Collector) Stats() (batches int, rxBytes int64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		batches += sh.batches
		rxBytes += sh.rxBytes
		sh.mu.Unlock()
	}
	return batches, rxBytes
}

// DedupHits returns how many re-sent batches were acknowledged without
// being re-appended.
func (c *Collector) DedupHits() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.dedupHits
		sh.mu.Unlock()
	}
	return n
}

// Nacks returns how many connections were shed with a nack reply.
func (c *Collector) Nacks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nacks
}

// DurationQuantiles returns the streaming p50/p90/p99 of received failure
// durations, in seconds. Per-shard P² sketches are merged at query time
// (count-weighted), so the admit path never shares a sketch across
// connections.
func (c *Collector) DurationQuantiles() (p50, p90, p99 float64) {
	c.shards[0].mu.Lock()
	merged := c.shards[0].quantiles.Clone()
	c.shards[0].mu.Unlock()
	for i := 1; i < len(c.shards); i++ {
		sh := &c.shards[i]
		sh.mu.Lock()
		if sh.quantiles.N() > 0 {
			merged.Merge(sh.quantiles)
		}
		sh.mu.Unlock()
	}
	qs := merged.Quantiles()
	return qs[0], qs[1], qs[2]
}

// Close stops the collector and waits for in-flight connections. Open
// connections are force-closed: a serve goroutine parked in ReadBatch on
// an idle client would otherwise keep Close waiting forever. Use Drain
// for the graceful variant that acks in-flight batches first.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	open := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		open = append(open, conn)
	}
	c.mu.Unlock()
	err := c.ln.Close()
	for _, conn := range open {
		conn.Close()
	}
	c.wg.Wait()
	return err
}

// Drain shuts the collector down gracefully: the listener closes so no
// new connection is admitted, and every open connection gets up to grace
// to finish (and be acked for) the batch it is currently sending before
// its serve loop exits at the next frame boundary. Only after all serve
// goroutines return does Drain come back — so every acknowledged batch is
// in the dataset, and nothing acked was cut off mid-store.
func (c *Collector) Drain(grace time.Duration) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.draining = true
	c.drainUntil = time.Now().Add(grace)
	open := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		open = append(open, conn)
	}
	until := c.drainUntil
	c.mu.Unlock()
	err := c.ln.Close()
	// Re-arm deadlines on connections already parked in a read, so idle
	// ones wake at the drain deadline instead of their idle timeout.
	for _, conn := range open {
		conn.SetReadDeadline(until)
	}
	c.wg.Wait()
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return err
}

// admitConn registers a new connection, enforcing the connection cap.
// Over the cap the connection is shed: one nack reply, then close. It
// reports whether the caller should serve the connection.
func (c *Collector) admitConn(conn net.Conn) bool {
	c.mu.Lock()
	if c.closed || c.draining {
		c.mu.Unlock()
		conn.Close()
		return false
	}
	if len(c.conns) >= c.opt.MaxConns {
		c.nacks++
		retry := c.opt.RetryAfter
		c.mu.Unlock()
		mColNacks.Inc()
		conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		writeReply(conn, batchNack, 0, retry)
		conn.Close()
		return false
	}
	c.conns[conn] = struct{}{}
	mColOpenConns.Set(float64(len(c.conns)))
	c.mu.Unlock()
	return true
}

func (c *Collector) untrack(conn net.Conn) {
	c.mu.Lock()
	delete(c.conns, conn)
	mColOpenConns.Set(float64(len(c.conns)))
	c.mu.Unlock()
}

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !c.admitConn(conn) {
			continue
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			defer c.untrack(conn)
			c.serve(conn)
		}()
	}
}

// armDeadline sets the next read deadline: the idle timeout in steady
// state, the drain deadline once Drain has been called.
func (c *Collector) armDeadline(conn net.Conn) {
	c.mu.Lock()
	draining, until := c.draining, c.drainUntil
	c.mu.Unlock()
	if draining {
		conn.SetReadDeadline(until)
		return
	}
	conn.SetReadDeadline(time.Now().Add(c.opt.ReadTimeout))
}

func (c *Collector) serve(conn net.Conn) {
	br := bufio.NewReader(conn)
	for {
		c.armDeadline(conn)
		if _, err := br.Peek(1); err != nil {
			// Clean EOF, idle timeout, or drain deadline at a frame
			// boundary: nothing in flight, nothing lost. Anything else
			// (e.g. a force-close with unread bytes) counts as a drop.
			var ne net.Error
			if err != io.EOF && !(errors.As(err, &ne) && ne.Timeout()) {
				mColDropped.Inc()
			}
			return
		}
		b, wire, dialect, err := ReadBatchAny(br)
		if err != nil {
			// Malformed or truncated stream: drop the connection. The
			// batch was never stored, so the device's retry is safe.
			mColDropped.Inc()
			return
		}
		versioned := dialect != DialectV1
		fresh := c.admit(b, wire, versioned)
		if fresh {
			// Pin the append to the batch's DeviceID shard: deterministic
			// placement, and two connections carrying different devices
			// lock different dataset shards.
			c.ds.AppendShard(int(b.DeviceID%uint64(c.ds.NumShards())), b.Events...)
			mColBatches.Inc()
			mColEvents.Add(int64(len(b.Events)))
			mDatasetEvents.Set(float64(c.ds.Len()))
			if c.opt.OnAdmit != nil {
				c.opt.OnAdmit(b.Events)
			}
		}
		mColRxBytes.Add(int64(wire))
		// Acknowledge once the batch is durably in the dataset (or known
		// to be a duplicate of one that already is), so the device can
		// trim its buffer knowing nothing was lost in flight.
		if versioned {
			if err := writeReply(conn, batchAck, b.Seq, 0); err != nil {
				return
			}
		} else {
			if _, err := conn.Write([]byte{batchAck}); err != nil {
				return
			}
		}
	}
}

// admit records a received batch and decides whether it is fresh. For
// versioned batches the per-device high-water mark dedups retries; the
// mark advances *before* the append so a concurrent retry of the same
// batch on another connection can never double-append. Only the batch's
// DeviceID shard is locked.
func (c *Collector) admit(b *Batch, wire int, versioned bool) (fresh bool) {
	sh := c.shardFor(b.DeviceID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.rxBytes += int64(wire)
	if versioned && b.Seq > 0 {
		if last, ok := sh.lastSeq[b.DeviceID]; ok && b.Seq <= last {
			sh.dedupHits++
			mColDedupHits.Inc()
			return false
		}
		sh.lastSeq[b.DeviceID] = b.Seq
	}
	sh.batches++
	for i := range b.Events {
		sh.quantiles.Add(b.Events[i].Duration.Seconds())
	}
	return true
}
