package trace

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/failure"
	"repro/internal/stats"
)

// CollectorOptions tunes the backend's robustness envelope. The zero
// value selects production-ish defaults; tests shrink them to provoke
// shedding and drain paths quickly.
type CollectorOptions struct {
	// MaxConns caps concurrently served connections. A connection
	// arriving past the cap is shed: the shed handshake peeks the first
	// frame byte to learn the client's dialect, replies with a nack
	// carrying RetryAfter when the dialect can parse one (v2/v3), and
	// closes — so overload never grows the serve-goroutine count
	// unboundedly and legacy clients never see unparseable reply bytes.
	// <= 0 uses 256.
	MaxConns int
	// ReadTimeout is the per-read idle deadline on a served connection.
	// A device that goes silent mid-connection (suspended phone, dead
	// radio) releases its server resources after this long instead of
	// parking a goroutine forever. <= 0 uses 2 minutes.
	ReadTimeout time.Duration
	// RetryAfter is the backoff floor suggested in shed nacks.
	// <= 0 uses 500ms.
	RetryAfter time.Duration
	// OnAdmit, when set, observes every batch that passes the dedup gate,
	// immediately after its events are appended to the dataset. It sees
	// exactly the admitted multiset — duplicate deliveries never reach it —
	// so a streaming consumer stays equal to the stored dataset. The slice
	// is freshly decoded per frame and ownership transfers to the hook.
	// The hook runs on the serve goroutine: it must not block (hand off to
	// a queue and return).
	OnAdmit func(events []failure.Event)
	// AdmitShards is the number of independent admit shards. Dedup marks,
	// batch/byte accounting, and quantile sketches are partitioned by
	// DeviceID across shards, so concurrent connections admit without
	// contending on one mutex. <= 0 uses 16 (matching DefaultShards).
	AdmitShards int
	// Store, when set, makes admitted batches crash-durable: every fresh
	// batch is appended to the segment store before its ack is written,
	// and the store's replayed high-water marks seed the dedup gate at
	// construction — a collector rebooted from disk re-acks retried
	// batches instead of double-storing them. A store append failure
	// drops the connection unacked, so the device's retry re-delivers.
	Store *SegStore
	// Owns, when set, restricts this collector to the devices a routing
	// ring assigns it. A decoded batch whose device it does not own is
	// refused before the dedup gate and before any store append: versioned
	// clients get a wrong-collector redirect nack (they re-resolve the
	// owner and retry there), legacy clients a bare close (their retry
	// path re-resolves through whatever pointed them here). The check is
	// consulted per batch, so ring changes take effect on in-flight
	// connections at the next frame boundary. It must be safe for
	// concurrent use.
	Owns func(device uint64) bool
}

func (o CollectorOptions) withDefaults() CollectorOptions {
	if o.MaxConns <= 0 {
		o.MaxConns = 256
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 2 * time.Minute
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 500 * time.Millisecond
	}
	if o.AdmitShards <= 0 {
		o.AdmitShards = DefaultShards
	}
	return o
}

// Collector is the backend TCP server that receives uploaded batches.
// Alongside storing events it tracks streaming duration percentiles with
// P² sketches, so operational dashboards get p50/p90/p99 without the
// backend retaining samples.
//
// Ingestion is at-least-once and duplicate-free: sequenced batches carry
// (DeviceID, Seq) and the collector remembers, per device, the highest
// acknowledged sequence number. A batch re-sent after a lost ack is
// acknowledged again without re-appending, so retries never skew the
// dataset (see the wire-protocol comment in wire.go). With a SegStore
// attached the marks survive the process: acks are written only after
// the batch is durably appended, and a rebooted collector replays the
// store to restore both the dataset and the dedup marks.
//
// The admit path is sharded by DeviceID: dedup marks, accounting, and
// quantile sketches live in opt.AdmitShards independent shards, and the
// dataset append is pinned to the batch's DeviceID shard, so concurrent
// connections admit in parallel. A device always lands on the same
// shard, which preserves the per-device dedup ordering — and therefore
// the admitted-multiset contract OnAdmit consumers rely on (I5).
type Collector struct {
	ln  net.Listener
	ds  *Dataset
	opt CollectorOptions

	// mu guards connection lifecycle only; admit-path state is sharded.
	mu         sync.Mutex
	conns      map[net.Conn]struct{}
	shed       map[net.Conn]struct{} // over-cap conns in their shed handshake
	nacks      int64
	redirects  int64
	closed     bool
	draining   bool
	drainUntil time.Time
	drainDone  chan struct{} // non-nil once Drain starts; closed when it finishes

	shards []collectorShard
	wg     sync.WaitGroup
}

// collectorShard is one DeviceID-partition of the admit path. Each shard
// has its own mutex, so the only cross-connection contention is between
// devices that hash to the same shard.
type collectorShard struct {
	mu        sync.Mutex
	lastSeq   map[uint64]uint64         // per-device acked (durable) high-water mark
	pending   map[uint64]*pendingAppend // per-device in-flight durable append
	batches   int
	rxBytes   int64
	dedupHits int64
	quantiles *stats.QuantileSet
	_         [32]byte // pad to keep hot shard state off shared cache lines
}

// pendingAppend tracks one in-flight durable append. The high-water mark
// only advances once the append has landed (ack ⇒ durable), so a
// duplicate arriving while the original is still being persisted can
// neither be re-appended (the pending entry gates it) nor be acked early
// (the duplicate's connection parks on done and inherits the outcome).
type pendingAppend struct {
	seq  uint64
	done chan struct{}
	err  error
}

// admitDecision is the outcome of the dedup gate for one batch.
type admitDecision int

const (
	// admitFresh: first sight of this batch — persist, append, then ack.
	admitFresh admitDecision = iota
	// admitDup: a duplicate of a durably stored batch — ack immediately.
	admitDup
	// admitWait: a duplicate of a batch whose durable append is still in
	// flight on another connection — wait for its outcome before acking.
	admitWait
)

// NewCollector starts a collector on addr (e.g. "127.0.0.1:0") feeding ds
// with default options.
func NewCollector(addr string, ds *Dataset) (*Collector, error) {
	return NewCollectorWith(addr, ds, CollectorOptions{})
}

// NewCollectorWith starts a collector with explicit options.
func NewCollectorWith(addr string, ds *Dataset, opt CollectorOptions) (*Collector, error) {
	if ds == nil {
		return nil, errors.New("trace: nil dataset")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	c := &Collector{
		ln:     ln,
		ds:     ds,
		opt:    opt,
		conns:  make(map[net.Conn]struct{}),
		shed:   make(map[net.Conn]struct{}),
		shards: make([]collectorShard, opt.AdmitShards),
	}
	for i := range c.shards {
		qs, err := stats.NewQuantileSet(0.5, 0.9, 0.99)
		if err != nil {
			ln.Close()
			return nil, err
		}
		c.shards[i].lastSeq = make(map[uint64]uint64)
		c.shards[i].pending = make(map[uint64]*pendingAppend)
		c.shards[i].quantiles = qs
	}
	// Seed the dedup gate from the store's replayed high-water marks: a
	// batch acked before the previous process died dedups here instead of
	// being double-stored.
	if opt.Store != nil {
		for dev, seq := range opt.Store.Marks() {
			c.shardFor(dev).lastSeq[dev] = seq
		}
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// shardFor returns the admit shard owning device. All of a device's
// batches — and therefore all of its sequence numbers — route to the
// same shard, so per-device dedup needs no cross-shard coordination.
func (c *Collector) shardFor(device uint64) *collectorShard {
	return &c.shards[device%uint64(len(c.shards))]
}

// Addr returns the collector's listen address.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

// Stats returns the number of batches and wire bytes received, summed
// across admit shards.
func (c *Collector) Stats() (batches int, rxBytes int64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		batches += sh.batches
		rxBytes += sh.rxBytes
		sh.mu.Unlock()
	}
	return batches, rxBytes
}

// DedupHits returns how many re-sent batches were acknowledged without
// being re-appended.
func (c *Collector) DedupHits() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.dedupHits
		sh.mu.Unlock()
	}
	return n
}

// Nacks returns how many connections were shed over the connection cap
// (versioned clients get a retry-after nack; legacy clients a bare close).
func (c *Collector) Nacks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nacks
}

// Redirects returns how many batches were refused with a wrong-collector
// redirect because opt.Owns disclaimed their device.
func (c *Collector) Redirects() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.redirects
}

// SeedMarks raises the per-device acked high-water marks to at least the
// given sequence numbers and returns how many devices had a mark newly
// set or raised. A survivor taking over a dead collector's devices seeds
// the marks replayed from the dead store here *before* the ring exposes
// the reroute, so a device retrying a batch the dead collector had
// durably stored (ack lost in the crash) dedups on the survivor instead
// of being double-stored — the takeover half of invariant I7.
func (c *Collector) SeedMarks(marks map[uint64]uint64) int {
	seeded := 0
	for dev, seq := range marks {
		sh := c.shardFor(dev)
		sh.mu.Lock()
		if seq > sh.lastSeq[dev] {
			sh.lastSeq[dev] = seq
			seeded++
		}
		sh.mu.Unlock()
	}
	if seeded > 0 {
		mColTakeover.Add(int64(seeded))
	}
	return seeded
}

// DurationQuantiles returns the streaming p50/p90/p99 of received failure
// durations, in seconds. Per-shard P² sketches are merged at query time
// (count-weighted), so the admit path never shares a sketch across
// connections.
func (c *Collector) DurationQuantiles() (p50, p90, p99 float64) {
	c.shards[0].mu.Lock()
	merged := c.shards[0].quantiles.Clone()
	c.shards[0].mu.Unlock()
	for i := 1; i < len(c.shards); i++ {
		sh := &c.shards[i]
		sh.mu.Lock()
		if sh.quantiles.N() > 0 {
			merged.Merge(sh.quantiles)
		}
		sh.mu.Unlock()
	}
	qs := merged.Quantiles()
	return qs[0], qs[1], qs[2]
}

// Close stops the collector and waits for in-flight connections. Open
// connections are force-closed: a serve goroutine parked in ReadBatch on
// an idle client would otherwise keep Close waiting forever. Use Drain
// for the graceful variant that acks in-flight batches first. A Close
// that arrives while a Drain is in progress waits for the drain instead
// of force-closing: cutting connections mid-ack during Drain's wg.Wait
// window would silently void the drain guarantee.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	if c.draining {
		done := c.drainDone
		c.mu.Unlock()
		<-done
		return nil
	}
	c.closed = true
	open := c.openConnsLocked()
	c.mu.Unlock()
	err := c.ln.Close()
	for _, conn := range open {
		conn.Close()
	}
	c.wg.Wait()
	return err
}

// openConnsLocked snapshots every live connection — served and shed —
// for a force-close pass. Caller holds c.mu.
func (c *Collector) openConnsLocked() []net.Conn {
	open := make([]net.Conn, 0, len(c.conns)+len(c.shed))
	for conn := range c.conns {
		open = append(open, conn)
	}
	for conn := range c.shed {
		open = append(open, conn)
	}
	return open
}

// Drain shuts the collector down gracefully: the listener closes so no
// new connection is admitted, and every open connection gets up to grace
// to finish (and be acked for) the batch it is currently sending before
// its serve loop exits at the next frame boundary. Only after all serve
// goroutines return does Drain come back — so every acknowledged batch is
// in the dataset, and nothing acked was cut off mid-store. A concurrent
// Drain or Close waits for the first Drain to finish.
func (c *Collector) Drain(grace time.Duration) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	if c.draining {
		done := c.drainDone
		c.mu.Unlock()
		<-done
		return nil
	}
	c.draining = true
	c.drainUntil = time.Now().Add(grace)
	done := make(chan struct{})
	c.drainDone = done
	// Re-arm deadlines on connections already parked in a read, so idle
	// ones wake at the drain deadline instead of their idle timeout. This
	// happens under c.mu — the same mutex armDeadline holds across its
	// decision and its arming — so a serve goroutine that read
	// draining=false can no longer overwrite the drain deadline with the
	// full idle timeout afterwards.
	for conn := range c.conns {
		conn.SetReadDeadline(c.drainUntil)
	}
	// Shed connections carry nothing admitted; close them now so the
	// drain never waits out a shed handshake deadline.
	for conn := range c.shed {
		conn.Close()
	}
	c.mu.Unlock()
	err := c.ln.Close()
	c.wg.Wait()
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	close(done)
	return err
}

// Kill force-closes the listener and every connection immediately — no
// grace, no acks, nothing flushed — approximating SIGKILL for the
// crash/restart harness. It waits for the serve goroutines only so the
// caller can safely reopen the store directory in-process; a batch
// mid-admit at the kill either completed its durable append (its retry
// will be deduped after replay) or did not (its retry will be stored) —
// exactly the two outcomes a real SIGKILL leaves on disk. Pair with
// SegStore.Kill to also fail in-flight appends.
func (c *Collector) Kill() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	open := c.openConnsLocked()
	c.mu.Unlock()
	c.ln.Close()
	for _, conn := range open {
		conn.Close()
	}
	c.wg.Wait()
}

// admitConn registers a new connection, enforcing the connection cap.
// Over the cap the connection is handed to a shed goroutine and refused.
// It reports whether the caller should serve the connection.
func (c *Collector) admitConn(conn net.Conn) bool {
	c.mu.Lock()
	if c.closed || c.draining {
		c.mu.Unlock()
		conn.Close()
		return false
	}
	if len(c.conns) >= c.opt.MaxConns {
		c.nacks++
		retry := c.opt.RetryAfter
		c.shed[conn] = struct{}{}
		c.wg.Add(1)
		c.mu.Unlock()
		mColNacks.Inc()
		go c.shedConn(conn, retry)
		return false
	}
	c.conns[conn] = struct{}{}
	mColOpenConns.Set(float64(len(c.conns)))
	c.mu.Unlock()
	return true
}

// shedConn sheds one over-cap connection in its own dialect. The nack
// reply is 13 bytes only the versioned framings can parse — a legacy v1
// client would misread them as a garbage length prefix — so the shed
// path first reads the client's opening frame byte: 0xA2/0xA3 name a
// versioned dialect and get the retry-after nack; anything else is v1
// and is shed by close alone (the legacy uploader treats the EOF as a
// retriable failure). A client that sends nothing within the handshake
// deadline is closed silently.
func (c *Collector) shedConn(conn net.Conn, retry time.Duration) {
	defer c.wg.Done()
	defer conn.Close()
	defer func() {
		c.mu.Lock()
		delete(c.shed, conn)
		c.mu.Unlock()
	}()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return
	}
	if first[0] == versionV2 || first[0] == versionV3 {
		conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		writeReply(conn, batchNack, 0, retry)
	}
}

func (c *Collector) untrack(conn net.Conn) {
	c.mu.Lock()
	delete(c.conns, conn)
	mColOpenConns.Set(float64(len(c.conns)))
	c.mu.Unlock()
}

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !c.admitConn(conn) {
			continue
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			defer c.untrack(conn)
			c.serve(conn)
		}()
	}
}

// armDeadlineHook, when non-nil, runs between armDeadline's drain-state
// decision and its SetReadDeadline call — the seam of the historical
// overwrite race, kept as a test hook so the regression test can force
// the exact interleaving that used to lose the drain deadline.
var armDeadlineHook func()

// armDeadline sets the next read deadline: the idle timeout in steady
// state, the drain deadline once Drain has been called. Decision and
// arming both happen under c.mu — the mutex Drain holds while re-arming
// open connections — so a goroutine that decided "not draining", lost
// the CPU, and then armed the full idle timeout over Drain's freshly-set
// deadline (leaving wg.Wait parked for up to ReadTimeout past the grace)
// can no longer interleave.
func (c *Collector) armDeadline(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	draining, until := c.draining, c.drainUntil
	if h := armDeadlineHook; h != nil {
		h()
	}
	if draining {
		conn.SetReadDeadline(until)
		return
	}
	conn.SetReadDeadline(time.Now().Add(c.opt.ReadTimeout))
}

func (c *Collector) serve(conn net.Conn) {
	br := bufio.NewReader(conn)
	for {
		c.armDeadline(conn)
		if _, err := br.Peek(1); err != nil {
			// Clean EOF, idle timeout, or drain deadline at a frame
			// boundary: nothing in flight, nothing lost. Anything else
			// (e.g. a force-close with unread bytes) counts as a drop.
			var ne net.Error
			if err != io.EOF && !(errors.As(err, &ne) && ne.Timeout()) {
				mColDropped.Inc()
			}
			return
		}
		b, wire, dialect, err := ReadBatchAny(br)
		if err != nil {
			// Malformed or truncated stream: drop the connection. The
			// batch was never stored, so the device's retry is safe.
			mColDropped.Inc()
			return
		}
		versioned := dialect != DialectV1
		if own := c.opt.Owns; own != nil && !own(b.DeviceID) {
			// Not ours under the ring: refuse before the dedup gate and
			// before any store append, then drop the connection — the
			// client must re-resolve the owner, not keep streaming here.
			c.mu.Lock()
			c.redirects++
			c.mu.Unlock()
			if versioned {
				writeReply(conn, batchWrongCollector, b.Seq, c.opt.RetryAfter)
			}
			return
		}
		dec, p := c.admit(b, wire, versioned)
		switch dec {
		case admitWait:
			// Another connection is persisting this very batch. Ack only
			// once that append is durable; if it failed, drop the
			// connection unacked so the device keeps retrying.
			<-p.done
			if p.err != nil {
				return
			}
		case admitFresh:
			perr := c.persist(b)
			if perr == nil {
				// Pin the append to the batch's DeviceID shard:
				// deterministic placement, and two connections carrying
				// different devices lock different dataset shards.
				c.ds.AppendShard(int(b.DeviceID%uint64(c.ds.NumShards())), b.Events...)
				mColBatches.Inc()
				mColEvents.Add(int64(len(b.Events)))
				mDatasetEvents.Set(float64(c.ds.Len()))
				if c.opt.OnAdmit != nil {
					c.opt.OnAdmit(b.Events)
				}
			}
			c.finishAdmit(b, p, perr)
			if perr != nil {
				// The batch is not durable: drop the connection without
				// acking and let the device's retry re-deliver it.
				mColDropped.Inc()
				return
			}
		}
		mColRxBytes.Add(int64(wire))
		// Acknowledge once the batch is durably in the dataset (or known
		// to be a duplicate of one that already is), so the device can
		// trim its buffer knowing nothing was lost in flight.
		if versioned {
			if err := writeReply(conn, batchAck, b.Seq, 0); err != nil {
				return
			}
		} else {
			if _, err := conn.Write([]byte{batchAck}); err != nil {
				return
			}
		}
	}
}

// admit runs a received batch through the dedup gate. For versioned
// batches the per-device high-water mark dedups retries of durably
// stored batches, and a pending entry gates retries of batches whose
// durable append is still in flight: the mark itself only advances in
// finishAdmit, once the append has landed, so an ack can never precede
// durability. Only the batch's DeviceID shard is locked.
func (c *Collector) admit(b *Batch, wire int, versioned bool) (admitDecision, *pendingAppend) {
	sh := c.shardFor(b.DeviceID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.rxBytes += int64(wire)
	if versioned && b.Seq > 0 {
		if last, ok := sh.lastSeq[b.DeviceID]; ok && b.Seq <= last {
			sh.dedupHits++
			mColDedupHits.Inc()
			return admitDup, nil
		}
		if p := sh.pending[b.DeviceID]; p != nil && b.Seq <= p.seq {
			sh.dedupHits++
			mColDedupHits.Inc()
			return admitWait, p
		}
		p := &pendingAppend{seq: b.Seq, done: make(chan struct{})}
		sh.pending[b.DeviceID] = p
		sh.batches++
		for i := range b.Events {
			sh.quantiles.Add(b.Events[i].Duration.Seconds())
		}
		return admitFresh, p
	}
	sh.batches++
	for i := range b.Events {
		sh.quantiles.Add(b.Events[i].Duration.Seconds())
	}
	return admitFresh, nil
}

// persistHook, when non-nil, observes each fresh batch immediately
// before its durable append — a test seam for holding an append in
// flight while a duplicate delivery arrives on another connection.
var persistHook func(*Batch)

// persist makes b durable before it is acknowledged. Without a store
// this is a no-op: the in-memory dataset is then the only copy, exactly
// the pre-store behavior.
func (c *Collector) persist(b *Batch) error {
	if h := persistHook; h != nil {
		h(b)
	}
	if c.opt.Store == nil {
		return nil
	}
	return c.opt.Store.Append(b)
}

// finishAdmit publishes the outcome of a fresh batch's durable append:
// on success the device's high-water mark advances (later duplicates ack
// immediately), on failure it stays put so the retry is admitted as
// fresh. Either way, connections parked on the pending entry are
// released with the outcome. p is nil for unsequenced batches, which
// carry no dedup state.
func (c *Collector) finishAdmit(b *Batch, p *pendingAppend, err error) {
	if p == nil {
		return
	}
	sh := c.shardFor(b.DeviceID)
	sh.mu.Lock()
	if err == nil && b.Seq > sh.lastSeq[b.DeviceID] {
		sh.lastSeq[b.DeviceID] = b.Seq
	}
	if sh.pending[b.DeviceID] == p {
		delete(sh.pending, b.DeviceID)
	}
	p.err = err
	sh.mu.Unlock()
	close(p.done)
}
