package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/failure"
)

// legacyJSONEvent is the retired reflective JSONL shape, kept here as the
// byte-for-byte oracle for the append-based encoder in export.go.
type legacyJSONEvent struct {
	DeviceID   uint64  `json:"device_id"`
	ModelID    int     `json:"model_id"`
	Android    int     `json:"android"`
	FiveG      bool    `json:"five_g"`
	Kind       string  `json:"kind"`
	ISP        string  `json:"isp"`
	Cell       string  `json:"cell"`
	Region     string  `json:"region"`
	DenseBS    bool    `json:"dense_bs"`
	RAT        string  `json:"rat"`
	Level      int     `json:"level"`
	Cause      string  `json:"cause"`
	StartS     float64 `json:"start_s"`
	DurationS  float64 `json:"duration_s"`
	ResolvedBy string  `json:"resolved_by,omitempty"`
	Ops        int     `json:"ops_executed,omitempty"`
	AutoFixS   float64 `json:"auto_fix_s,omitempty"`
	Transition *struct {
		FromRAT   string `json:"from_rat"`
		FromLevel int    `json:"from_level"`
		ToRAT     string `json:"to_rat"`
		ToLevel   int    `json:"to_level"`
	} `json:"transition,omitempty"`
}

// legacyWriteJSONL is the old implementation verbatim: per-event struct
// through a reflective json.Encoder.
func legacyWriteJSONL(d *Dataset, buf *bytes.Buffer) error {
	enc := json.NewEncoder(buf)
	var werr error
	d.Each(func(e *failure.Event) {
		if werr != nil {
			return
		}
		je := legacyJSONEvent{
			DeviceID: e.DeviceID, ModelID: e.ModelID, Android: e.AndroidVersion,
			FiveG: e.FiveGCapable, Kind: e.Kind.String(), ISP: e.ISP.String(),
			Cell: e.Cell.String(), Region: e.Region.String(), DenseBS: e.DenseBS,
			RAT: e.RAT.String(), Level: int(e.Level), Cause: e.Cause.String(),
			StartS: e.Start.Seconds(), DurationS: e.Duration.Seconds(),
			Ops: e.OpsExecuted, AutoFixS: e.AutoFixTime.Seconds(),
		}
		if e.ResolvedBy != 0 {
			je.ResolvedBy = e.ResolvedBy.String()
		}
		if tr := e.Transition; tr != nil {
			je.Transition = &struct {
				FromRAT   string `json:"from_rat"`
				FromLevel int    `json:"from_level"`
				ToRAT     string `json:"to_rat"`
				ToLevel   int    `json:"to_level"`
			}{tr.FromRAT.String(), int(tr.FromLevel), tr.ToRAT.String(), int(tr.ToLevel)}
		}
		werr = enc.Encode(je)
	})
	return werr
}

// TestJSONLGolden pins the append-based JSONL writer to the reflective
// encoder's output, byte for byte, over events exercising omitempty
// branches, transitions, and float edge cases (sub-microsecond seconds
// force the 'e' format with exponent cleanup).
func TestJSONLGolden(t *testing.T) {
	events := gnarlyEvents()
	// Float formatting edges: 1ns → 1e-9 ('e' format, stripped exponent
	// zero), and a large start exercising 'f' format precision.
	events[0].Start = 1 * time.Nanosecond
	events[0].Duration = 123 * time.Nanosecond
	events[3].AutoFixTime = 1 * time.Nanosecond
	events[4].Start = 2_000_000 * time.Hour
	events[5].Duration = 1500 * time.Nanosecond // 1.5e-6: just above the 'e' cutoff
	events[6].Duration = 999 * time.Nanosecond  // 9.99e-7: just below
	ds := FromEvents(events)

	var want bytes.Buffer
	if err := legacyWriteJSONL(ds, &want); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := ds.WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		wl, gl := strings.Split(want.String(), "\n"), strings.Split(got.String(), "\n")
		for i := range wl {
			if i >= len(gl) || wl[i] != gl[i] {
				t.Fatalf("JSONL line %d diverges:\nwant %s\n got %s", i, wl[i], gl[i])
			}
		}
		t.Fatal("JSONL output differs in length")
	}
}

// TestJSONStringEscaping pins the string escaper against encoding/json
// for the hostile cases: quotes, control bytes, HTML characters, line
// separators, and invalid UTF-8.
func TestJSONStringEscaping(t *testing.T) {
	for _, s := range []string{
		"", "plain", `quote" and \ backslash`, "tab\tnewline\ncr\r",
		"ctrl\x00\x01\x1f", "<script>&amp;</script>",
		"line sep s", "bad\xffutf8", "emoji \U0001F4F6 ok",
	} {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONString(nil, s)
		if !bytes.Equal(want, got) {
			t.Errorf("escape(%q):\nwant %s\n got %s", s, want, got)
		}
	}
}

// TestJSONLMatchesEncoderOnSamples double-checks with the standard
// sample fixture (CSV untouched; JSONL is the hot export).
func TestJSONLMatchesEncoderOnSamples(t *testing.T) {
	ds := FromEvents(sampleEvents(50))
	var want, got bytes.Buffer
	if err := legacyWriteJSONL(ds, &want); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("JSONL output differs from encoding/json oracle")
	}
	if !strings.Contains(got.String(), `"cell":"cell:0-0-0-0"`) {
		t.Error("expected cell field in output")
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(got.String(), "\n", 2)[0]), &first); err != nil {
		t.Fatalf("first line is not valid JSON: %v", err)
	}
	if _, ok := first["device_id"]; !ok {
		t.Error("first line missing device_id")
	}
}
