// Package trace implements the measurement data pipeline of Android-MOD:
// failure events are batched per device, compressed, and uploaded to a
// backend collector for centralized analysis (§2.2–2.3). Uploads are gated
// on WiFi connectivity to spare the (possibly failing) cellular link, and
// per-device network budgets are accounted so the <100 KB/month overhead
// claim can be checked.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/failure"
)

// Batch is one upload unit: a device's buffered failure events. Seq is
// the device-local sequence number assigned when the batch is sealed for
// upload (v2 wire protocol, see wire.go); it is zero for batches that
// predate sequencing, e.g. StreamWriter chunks on disk.
type Batch struct {
	DeviceID uint64
	Seq      uint64
	Events   []failure.Event
}

// maxBatchWire caps a batch's wire size (64 MiB) in both directions: a
// corrupt length prefix cannot drive an allocation bomb on the reader,
// and a writer refuses to emit a frame the reader would reject.
const maxBatchWire = 64 << 20

// WriteBatch writes a length-prefixed, gzip-compressed, gob-encoded batch.
// A payload exceeding maxBatchWire is an error: emitting it would at best
// be rejected by every reader and at worst (past 4 GiB) silently truncate
// the uint32 length prefix and corrupt the stream.
func WriteBatch(w io.Writer, b *Batch) (int, error) {
	return writeBatchLimit(w, b, maxBatchWire)
}

func writeBatchLimit(w io.Writer, b *Batch, limit int) (int, error) {
	// The gob encoder must be fresh per frame — each frame re-transmits
	// its type descriptors, so a collector can decode any frame in
	// isolation — but the payload buffer and the deflate state are
	// recycled through pools, so the legacy path no longer reallocates
	// its compressor per batch.
	pp := getScratch(1 << 12)
	defer putScratch(pp)
	payload := bytesBuffer((*pp)[:0])
	zw := gzipDefaultPool.Get().(*gzip.Writer)
	zw.Reset(&payload)
	if err := gob.NewEncoder(zw).Encode(b); err != nil {
		gzipDefaultPool.Put(zw)
		return 0, fmt.Errorf("trace: encode batch: %w", err)
	}
	if err := zw.Close(); err != nil {
		gzipDefaultPool.Put(zw)
		return 0, fmt.Errorf("trace: compress batch: %w", err)
	}
	gzipDefaultPool.Put(zw)
	*pp = payload
	if len(payload) > limit {
		return 0, fmt.Errorf("trace: batch payload %d bytes exceeds wire limit %d; split the batch", len(payload), limit)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return 4 + len(payload), nil
}

// gzipDefaultPool recycles default-level writers for the v1/v2 dialects
// (the level gzip.NewWriter always used, so wire bytes are unchanged).
var gzipDefaultPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// ReadBatch reads one batch written by WriteBatch, returning the batch and
// its exact wire size (length prefix + compressed payload) so callers can
// account real network bytes. It returns io.EOF when the stream ends
// cleanly at a batch boundary.
func ReadBatch(r io.Reader) (*Batch, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("trace: read batch header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxBatchWire {
		return nil, 0, fmt.Errorf("trace: implausible batch size %d", n)
	}
	pp := getScratch(int(n))
	defer putScratch(pp)
	payload := (*pp)[:n]
	*pp = payload
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("trace: read batch payload: %w", err)
	}
	zr, err := getGzipReader(bytesReader(payload))
	if err != nil {
		return nil, 0, fmt.Errorf("trace: decompress batch: %w", err)
	}
	defer putGzipReader(zr)
	var b Batch
	if err := gob.NewDecoder(zr).Decode(&b); err != nil {
		return nil, 0, fmt.Errorf("trace: decode batch: %w", err)
	}
	return &b, 4 + int(n), nil
}

// bytesBuffer is a minimal append-only buffer implementing io.Writer.
type bytesBuffer []byte

func (b *bytesBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// DefaultShards is the shard count of NewDataset. Sixteen comfortably
// exceeds the fleet's default worker count, so pinned appenders rarely
// share a shard, while keeping per-shard segments large enough for the
// analysis engine to amortize its per-shard visitor setup.
const DefaultShards = 16

// Dataset is the centralized event store the analysis pipeline reads.
// Events live in per-shard append-only segment lists: concurrent
// producers (fleet shards, collector connections) append to distinct
// shards without contending on one global mutex, and the analysis engine
// runs one worker per shard. A published segment is never mutated, so
// iteration only locks a shard long enough to snapshot its segment list.
//
// Iteration order is deterministic for deterministic producers: shards
// are visited in index order, segments within a shard in publish order.
// Fleet workers pin their shard via AppendShard, so a fixed-seed run
// yields the same Each order for any worker count.
type Dataset struct {
	shards []datasetShard
	rr     atomic.Uint64 // round-robin cursor for unpinned Appends
}

type datasetShard struct {
	mu   sync.Mutex
	segs [][]failure.Event
	n    atomic.Int64
}

// snapshot returns the shard's current segment list. The returned slice
// is capped at its length, so a concurrent append (which only ever grows
// segs) cannot alias into it; segments themselves are immutable.
func (sh *datasetShard) snapshot() [][]failure.Event {
	sh.mu.Lock()
	segs := sh.segs[:len(sh.segs):len(sh.segs)]
	sh.mu.Unlock()
	return segs
}

// NewDataset returns an empty dataset with DefaultShards shards.
func NewDataset() *Dataset { return NewDatasetShards(DefaultShards) }

// NewDatasetShards returns an empty dataset with n shards (min 1).
func NewDatasetShards(n int) *Dataset {
	if n < 1 {
		n = 1
	}
	return &Dataset{shards: make([]datasetShard, n)}
}

// FromEvents builds a dataset from an ordered event slice, partitioning
// it into contiguous per-shard chunks so Each preserves the slice order.
func FromEvents(events []failure.Event) *Dataset {
	d := NewDataset()
	ns := len(d.shards)
	base, rem := len(events)/ns, len(events)%ns
	off := 0
	for s := 0; s < ns; s++ {
		n := base
		if s < rem {
			n++
		}
		if n == 0 {
			continue
		}
		seg := append([]failure.Event(nil), events[off:off+n]...)
		off += n
		sh := &d.shards[s]
		sh.segs = append(sh.segs, seg)
		sh.n.Store(int64(n))
	}
	return d
}

// NumShards returns the dataset's shard count.
func (d *Dataset) NumShards() int { return len(d.shards) }

// Append adds events to a shard chosen round-robin. Each call publishes
// one segment; producers that need deterministic placement should use
// AppendShard.
func (d *Dataset) Append(events ...failure.Event) {
	d.AppendShard(int(d.rr.Add(1)-1)%len(d.shards), events...)
}

// AppendShard adds events to shard (mod NumShards) as one immutable
// segment. The events are copied, so the caller may reuse its buffer.
func (d *Dataset) AppendShard(shard int, events ...failure.Event) {
	if len(events) == 0 {
		return
	}
	seg := append([]failure.Event(nil), events...)
	sh := &d.shards[shard%len(d.shards)]
	sh.mu.Lock()
	sh.segs = append(sh.segs, seg)
	sh.n.Add(int64(len(seg)))
	sh.mu.Unlock()
}

// PublishShard adds events to shard (mod NumShards) as one immutable
// segment WITHOUT copying: the dataset takes ownership of the slice and
// the caller must never modify it again. The fleet runner's canonical
// merge uses this to publish contiguous views of one sorted event array,
// so a multi-million-event dataset is materialized exactly once.
func (d *Dataset) PublishShard(shard int, events []failure.Event) {
	if len(events) == 0 {
		return
	}
	sh := &d.shards[shard%len(d.shards)]
	sh.mu.Lock()
	sh.segs = append(sh.segs, events)
	sh.n.Add(int64(len(events)))
	sh.mu.Unlock()
}

// Len returns the number of stored events.
func (d *Dataset) Len() int {
	var n int64
	for i := range d.shards {
		n += d.shards[i].n.Load()
	}
	return int(n)
}

// ShardLen returns the number of events in shard (mod NumShards).
func (d *Dataset) ShardLen(shard int) int {
	return int(d.shards[shard%len(d.shards)].n.Load())
}

// Each calls fn for every event: shards in index order, segments in
// publish order. fn must not retain the pointer across calls.
func (d *Dataset) Each(fn func(*failure.Event)) {
	for s := range d.shards {
		d.EachShard(s, fn)
	}
}

// EachShard calls fn for every event in shard (mod NumShards), in
// publish order. Distinct shards may be iterated concurrently.
func (d *Dataset) EachShard(shard int, fn func(*failure.Event)) {
	for _, seg := range d.shards[shard%len(d.shards)].snapshot() {
		for i := range seg {
			fn(&seg[i])
		}
	}
}

// ExposeSize publishes the dataset's current length on the
// trace_dataset_events gauge. Collectors do this automatically as
// batches arrive; snapshot servers (cellserve) call it once on load.
func (d *Dataset) ExposeSize() { mDatasetEvents.Set(float64(d.Len())) }

// Events returns a copy of all stored events in Each order.
func (d *Dataset) Events() []failure.Event {
	out := make([]failure.Event, 0, d.Len())
	d.Each(func(e *failure.Event) { out = append(out, *e) })
	return out
}

// SaveFile persists the dataset as a single gzip+gob stream. The on-disk
// format is a flat event slice in Each order, independent of sharding.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	zw := gzip.NewWriter(bw)
	if err := gob.NewEncoder(zw).Encode(d.Events()); err != nil {
		return fmt.Errorf("trace: save dataset: %w", err)
	}
	if err := zw.Close(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset written by SaveFile.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("trace: open dataset: %w", err)
	}
	defer zr.Close()
	var events []failure.Event
	if err := gob.NewDecoder(zr).Decode(&events); err != nil {
		return nil, fmt.Errorf("trace: load dataset: %w", err)
	}
	return FromEvents(events), nil
}

// Filter returns a new dataset with the events matching pred, preserving
// the source's shard layout (events stay in their shard).
func (d *Dataset) Filter(pred func(*failure.Event) bool) *Dataset {
	out := NewDatasetShards(len(d.shards))
	for s := range d.shards {
		var seg []failure.Event
		d.EachShard(s, func(e *failure.Event) {
			if pred(e) {
				seg = append(seg, *e)
			}
		})
		if len(seg) > 0 {
			sh := &out.shards[s]
			sh.segs = append(sh.segs, seg)
			sh.n.Store(int64(len(seg)))
		}
	}
	return out
}

// Merge combines datasets into a new one whose shard list is the
// concatenation of the sources' shards, so Each order is all of the
// first dataset's events, then the second's, and so on. Segments are
// shared with the sources (they are immutable), not copied.
func Merge(ds ...*Dataset) *Dataset {
	total := 0
	for _, d := range ds {
		if d != nil {
			total += len(d.shards)
		}
	}
	if total == 0 {
		return NewDataset()
	}
	out := &Dataset{shards: make([]datasetShard, total)}
	i := 0
	for _, d := range ds {
		if d == nil {
			continue
		}
		for s := range d.shards {
			segs := d.shards[s].snapshot()
			sh := &out.shards[i]
			i++
			if len(segs) == 0 {
				continue
			}
			sh.segs = segs
			var n int64
			for _, seg := range segs {
				n += int64(len(seg))
			}
			sh.n.Store(n)
		}
	}
	return out
}
