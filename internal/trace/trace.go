// Package trace implements the measurement data pipeline of Android-MOD:
// failure events are batched per device, compressed, and uploaded to a
// backend collector for centralized analysis (§2.2–2.3). Uploads are gated
// on WiFi connectivity to spare the (possibly failing) cellular link, and
// per-device network budgets are accounted so the <100 KB/month overhead
// claim can be checked.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failure"
	"repro/internal/stats"
)

// Batch is one upload unit: a device's buffered failure events.
type Batch struct {
	DeviceID uint64
	Events   []failure.Event
}

// maxBatchWire caps a batch's wire size (64 MiB) in both directions: a
// corrupt length prefix cannot drive an allocation bomb on the reader,
// and a writer refuses to emit a frame the reader would reject.
const maxBatchWire = 64 << 20

// WriteBatch writes a length-prefixed, gzip-compressed, gob-encoded batch.
// A payload exceeding maxBatchWire is an error: emitting it would at best
// be rejected by every reader and at worst (past 4 GiB) silently truncate
// the uint32 length prefix and corrupt the stream.
func WriteBatch(w io.Writer, b *Batch) (int, error) {
	return writeBatchLimit(w, b, maxBatchWire)
}

func writeBatchLimit(w io.Writer, b *Batch, limit int) (int, error) {
	var payload bytesBuffer
	zw := gzip.NewWriter(&payload)
	if err := gob.NewEncoder(zw).Encode(b); err != nil {
		return 0, fmt.Errorf("trace: encode batch: %w", err)
	}
	if err := zw.Close(); err != nil {
		return 0, fmt.Errorf("trace: compress batch: %w", err)
	}
	if len(payload) > limit {
		return 0, fmt.Errorf("trace: batch payload %d bytes exceeds wire limit %d; split the batch", len(payload), limit)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return 4 + len(payload), nil
}

// ReadBatch reads one batch written by WriteBatch, returning the batch and
// its exact wire size (length prefix + compressed payload) so callers can
// account real network bytes. It returns io.EOF when the stream ends
// cleanly at a batch boundary.
func ReadBatch(r io.Reader) (*Batch, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("trace: read batch header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxBatchWire {
		return nil, 0, fmt.Errorf("trace: implausible batch size %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("trace: read batch payload: %w", err)
	}
	zr, err := gzip.NewReader(bytesReader(payload))
	if err != nil {
		return nil, 0, fmt.Errorf("trace: decompress batch: %w", err)
	}
	defer zr.Close()
	var b Batch
	if err := gob.NewDecoder(zr).Decode(&b); err != nil {
		return nil, 0, fmt.Errorf("trace: decode batch: %w", err)
	}
	return &b, 4 + int(n), nil
}

// bytesBuffer is a minimal append-only buffer implementing io.Writer.
type bytesBuffer []byte

func (b *bytesBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// DefaultShards is the shard count of NewDataset. Sixteen comfortably
// exceeds the fleet's default worker count, so pinned appenders rarely
// share a shard, while keeping per-shard segments large enough for the
// analysis engine to amortize its per-shard visitor setup.
const DefaultShards = 16

// Dataset is the centralized event store the analysis pipeline reads.
// Events live in per-shard append-only segment lists: concurrent
// producers (fleet shards, collector connections) append to distinct
// shards without contending on one global mutex, and the analysis engine
// runs one worker per shard. A published segment is never mutated, so
// iteration only locks a shard long enough to snapshot its segment list.
//
// Iteration order is deterministic for deterministic producers: shards
// are visited in index order, segments within a shard in publish order.
// Fleet workers pin their shard via AppendShard, so a fixed-seed run
// yields the same Each order for any worker count.
type Dataset struct {
	shards []datasetShard
	rr     atomic.Uint64 // round-robin cursor for unpinned Appends
}

type datasetShard struct {
	mu   sync.Mutex
	segs [][]failure.Event
	n    atomic.Int64
}

// snapshot returns the shard's current segment list. The returned slice
// is capped at its length, so a concurrent append (which only ever grows
// segs) cannot alias into it; segments themselves are immutable.
func (sh *datasetShard) snapshot() [][]failure.Event {
	sh.mu.Lock()
	segs := sh.segs[:len(sh.segs):len(sh.segs)]
	sh.mu.Unlock()
	return segs
}

// NewDataset returns an empty dataset with DefaultShards shards.
func NewDataset() *Dataset { return NewDatasetShards(DefaultShards) }

// NewDatasetShards returns an empty dataset with n shards (min 1).
func NewDatasetShards(n int) *Dataset {
	if n < 1 {
		n = 1
	}
	return &Dataset{shards: make([]datasetShard, n)}
}

// FromEvents builds a dataset from an ordered event slice, partitioning
// it into contiguous per-shard chunks so Each preserves the slice order.
func FromEvents(events []failure.Event) *Dataset {
	d := NewDataset()
	ns := len(d.shards)
	base, rem := len(events)/ns, len(events)%ns
	off := 0
	for s := 0; s < ns; s++ {
		n := base
		if s < rem {
			n++
		}
		if n == 0 {
			continue
		}
		seg := append([]failure.Event(nil), events[off:off+n]...)
		off += n
		sh := &d.shards[s]
		sh.segs = append(sh.segs, seg)
		sh.n.Store(int64(n))
	}
	return d
}

// NumShards returns the dataset's shard count.
func (d *Dataset) NumShards() int { return len(d.shards) }

// Append adds events to a shard chosen round-robin. Each call publishes
// one segment; producers that need deterministic placement should use
// AppendShard.
func (d *Dataset) Append(events ...failure.Event) {
	d.AppendShard(int(d.rr.Add(1)-1)%len(d.shards), events...)
}

// AppendShard adds events to shard (mod NumShards) as one immutable
// segment. The events are copied, so the caller may reuse its buffer.
func (d *Dataset) AppendShard(shard int, events ...failure.Event) {
	if len(events) == 0 {
		return
	}
	seg := append([]failure.Event(nil), events...)
	sh := &d.shards[shard%len(d.shards)]
	sh.mu.Lock()
	sh.segs = append(sh.segs, seg)
	sh.n.Add(int64(len(seg)))
	sh.mu.Unlock()
}

// Len returns the number of stored events.
func (d *Dataset) Len() int {
	var n int64
	for i := range d.shards {
		n += d.shards[i].n.Load()
	}
	return int(n)
}

// ShardLen returns the number of events in shard (mod NumShards).
func (d *Dataset) ShardLen(shard int) int {
	return int(d.shards[shard%len(d.shards)].n.Load())
}

// Each calls fn for every event: shards in index order, segments in
// publish order. fn must not retain the pointer across calls.
func (d *Dataset) Each(fn func(*failure.Event)) {
	for s := range d.shards {
		d.EachShard(s, fn)
	}
}

// EachShard calls fn for every event in shard (mod NumShards), in
// publish order. Distinct shards may be iterated concurrently.
func (d *Dataset) EachShard(shard int, fn func(*failure.Event)) {
	for _, seg := range d.shards[shard%len(d.shards)].snapshot() {
		for i := range seg {
			fn(&seg[i])
		}
	}
}

// ExposeSize publishes the dataset's current length on the
// trace_dataset_events gauge. Collectors do this automatically as
// batches arrive; snapshot servers (cellserve) call it once on load.
func (d *Dataset) ExposeSize() { mDatasetEvents.Set(float64(d.Len())) }

// Events returns a copy of all stored events in Each order.
func (d *Dataset) Events() []failure.Event {
	out := make([]failure.Event, 0, d.Len())
	d.Each(func(e *failure.Event) { out = append(out, *e) })
	return out
}

// SaveFile persists the dataset as a single gzip+gob stream. The on-disk
// format is a flat event slice in Each order, independent of sharding.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	zw := gzip.NewWriter(bw)
	if err := gob.NewEncoder(zw).Encode(d.Events()); err != nil {
		return fmt.Errorf("trace: save dataset: %w", err)
	}
	if err := zw.Close(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset written by SaveFile.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("trace: open dataset: %w", err)
	}
	defer zr.Close()
	var events []failure.Event
	if err := gob.NewDecoder(zr).Decode(&events); err != nil {
		return nil, fmt.Errorf("trace: load dataset: %w", err)
	}
	return FromEvents(events), nil
}

// Filter returns a new dataset with the events matching pred, preserving
// the source's shard layout (events stay in their shard).
func (d *Dataset) Filter(pred func(*failure.Event) bool) *Dataset {
	out := NewDatasetShards(len(d.shards))
	for s := range d.shards {
		var seg []failure.Event
		d.EachShard(s, func(e *failure.Event) {
			if pred(e) {
				seg = append(seg, *e)
			}
		})
		if len(seg) > 0 {
			sh := &out.shards[s]
			sh.segs = append(sh.segs, seg)
			sh.n.Store(int64(len(seg)))
		}
	}
	return out
}

// Merge combines datasets into a new one whose shard list is the
// concatenation of the sources' shards, so Each order is all of the
// first dataset's events, then the second's, and so on. Segments are
// shared with the sources (they are immutable), not copied.
func Merge(ds ...*Dataset) *Dataset {
	total := 0
	for _, d := range ds {
		if d != nil {
			total += len(d.shards)
		}
	}
	if total == 0 {
		return NewDataset()
	}
	out := &Dataset{shards: make([]datasetShard, total)}
	i := 0
	for _, d := range ds {
		if d == nil {
			continue
		}
		for s := range d.shards {
			segs := d.shards[s].snapshot()
			sh := &out.shards[i]
			i++
			if len(segs) == 0 {
				continue
			}
			sh.segs = segs
			var n int64
			for _, seg := range segs {
				n += int64(len(seg))
			}
			sh.n.Store(n)
		}
	}
	return out
}

// Collector is the backend TCP server that receives uploaded batches.
// Alongside storing events it tracks streaming duration percentiles with
// P² sketches, so operational dashboards get p50/p90/p99 without the
// backend retaining samples.
type Collector struct {
	ln net.Listener
	ds *Dataset

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	batches   int
	rxBytes   int64
	closed    bool
	quantiles *stats.QuantileSet
	wg        sync.WaitGroup
}

// NewCollector starts a collector on addr (e.g. "127.0.0.1:0") feeding ds.
func NewCollector(addr string, ds *Dataset) (*Collector, error) {
	if ds == nil {
		return nil, errors.New("trace: nil dataset")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	qs, err := stats.NewQuantileSet(0.5, 0.9, 0.99)
	if err != nil {
		ln.Close()
		return nil, err
	}
	c := &Collector{ln: ln, ds: ds, conns: make(map[net.Conn]struct{}), quantiles: qs}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the collector's listen address.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

// Stats returns the number of batches and wire bytes received.
func (c *Collector) Stats() (batches int, rxBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches, c.rxBytes
}

// DurationQuantiles returns the streaming p50/p90/p99 of received failure
// durations, in seconds.
func (c *Collector) DurationQuantiles() (p50, p90, p99 float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	qs := c.quantiles.Quantiles()
	return qs[0], qs[1], qs[2]
}

// Close stops the collector and waits for in-flight connections. Open
// connections are force-closed: a serve goroutine parked in ReadBatch on
// an idle client would otherwise keep Close waiting forever.
func (c *Collector) Close() error {
	c.mu.Lock()
	c.closed = true
	open := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		open = append(open, conn)
	}
	c.mu.Unlock()
	err := c.ln.Close()
	for _, conn := range open {
		conn.Close()
	}
	c.wg.Wait()
	return err
}

// track registers an open connection; it reports false (and the caller
// must drop the conn) if the collector is already closed — the race
// where Accept hands out a conn just as Close snapshots the open set.
func (c *Collector) track(conn net.Conn) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.conns[conn] = struct{}{}
	return true
}

func (c *Collector) untrack(conn net.Conn) {
	c.mu.Lock()
	delete(c.conns, conn)
	c.mu.Unlock()
}

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			if !c.track(conn) {
				return
			}
			defer c.untrack(conn)
			c.serve(conn)
		}()
	}
}

func (c *Collector) serve(conn net.Conn) {
	br := bufio.NewReader(conn)
	for {
		b, wire, err := ReadBatch(br)
		if err != nil {
			if err != io.EOF {
				// Malformed or truncated stream: drop the connection
				// (clean EOF at a batch boundary is not a drop).
				mColDropped.Inc()
			}
			return
		}
		c.ds.Append(b.Events...)
		mColBatches.Inc()
		mColEvents.Add(int64(len(b.Events)))
		mColRxBytes.Add(int64(wire))
		mDatasetEvents.Set(float64(c.ds.Len()))
		c.mu.Lock()
		c.batches++
		c.rxBytes += int64(wire)
		for i := range b.Events {
			c.quantiles.Add(b.Events[i].Duration.Seconds())
		}
		c.mu.Unlock()
		// Acknowledge once the batch is durably in the dataset, so the
		// device can trim its buffer knowing nothing was lost in flight.
		if _, err := conn.Write([]byte{batchAck}); err != nil {
			return
		}
	}
}

// batchAck is the single-byte acknowledgement for a stored batch.
const batchAck = 0x06

// Uploader buffers a device's events and uploads them to the collector
// only when WiFi is available, exactly like Android-MOD ("the recorded
// data are uploaded to our backend server only when there is WiFi
// connectivity").
type Uploader struct {
	addr string

	// FlushThreshold is how many events accumulate before an on-WiFi
	// Record triggers an upload (default 1: immediate). Batching
	// amortizes the TCP round trip; SetWiFi(true) and Flush always drain
	// everything regardless.
	FlushThreshold int

	// sendMu serializes Flush so concurrent flushes cannot double-send.
	sendMu    sync.Mutex
	mu        sync.Mutex
	deviceID  uint64
	pending   []failure.Event
	wifi      bool
	sentBytes int64
	uploads   int
	retries   int
}

// NewUploader creates an uploader for a device targeting the collector at
// addr.
func NewUploader(addr string, deviceID uint64) *Uploader {
	return &Uploader{addr: addr, deviceID: deviceID}
}

// Record buffers an event for upload.
func (u *Uploader) Record(e failure.Event) {
	u.mu.Lock()
	u.pending = append(u.pending, e)
	threshold := u.FlushThreshold
	if threshold < 1 {
		threshold = 1
	}
	flush := u.wifi && len(u.pending) >= threshold
	u.mu.Unlock()
	if flush {
		u.Flush() // best effort; events stay buffered on failure
	}
}

// Pending returns the number of buffered events.
func (u *Uploader) Pending() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.pending)
}

// SentBytes returns total wire bytes uploaded (network budget accounting).
func (u *Uploader) SentBytes() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.sentBytes
}

// FlushRetries returns how many Flush attempts failed on the network
// (events stayed buffered and were retried later).
func (u *Uploader) FlushRetries() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.retries
}

// SetWiFi updates connectivity; gaining WiFi flushes the buffer.
func (u *Uploader) SetWiFi(on bool) {
	u.mu.Lock()
	u.wifi = on
	n := len(u.pending)
	u.mu.Unlock()
	if on && n > 0 {
		u.Flush()
	}
}

// Flush uploads all buffered events if WiFi is available.
func (u *Uploader) Flush() error {
	u.sendMu.Lock()
	defer u.sendMu.Unlock()
	u.mu.Lock()
	if !u.wifi {
		u.mu.Unlock()
		return errors.New("trace: no WiFi connectivity")
	}
	if len(u.pending) == 0 {
		u.mu.Unlock()
		return nil
	}
	// Copy the batch under the lock. Slicing pending directly would hand
	// gob a view of the live backing array with the mutex released: a
	// concurrent Record can append into that same array mid-encode.
	sent := len(u.pending)
	batch := &Batch{DeviceID: u.deviceID, Events: append([]failure.Event(nil), u.pending...)}
	u.mu.Unlock()

	start := time.Now()
	conn, err := net.Dial("tcp", u.addr)
	if err != nil {
		u.noteRetry()
		return fmt.Errorf("trace: dial collector: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	n, err := WriteBatch(conn, batch)
	if err != nil {
		u.noteRetry()
		return fmt.Errorf("trace: upload: %w", err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack[0] != batchAck {
		u.noteRetry()
		return fmt.Errorf("trace: collector did not acknowledge batch: %w", err)
	}
	mUpBatches.Inc()
	mUpEvents.Add(int64(len(batch.Events)))
	mUpBytes.Add(int64(n))
	mUploadSeconds.Observe(time.Since(start).Seconds())
	u.mu.Lock()
	u.sentBytes += int64(n)
	u.uploads++
	// Only events recorded mid-flight stay pending. Re-base into a fresh
	// slice rather than re-slicing: pending[sent:] would keep the sent
	// prefix reachable (and growing) for the uploader's whole lifetime.
	u.pending = append([]failure.Event(nil), u.pending[sent:]...)
	u.mu.Unlock()
	return nil
}

// noteRetry accounts a failed network flush: the events stay buffered,
// so a later Flush will retry them.
func (u *Uploader) noteRetry() {
	mUpRetries.Inc()
	u.mu.Lock()
	u.retries++
	u.mu.Unlock()
}
