// Package trace implements the measurement data pipeline of Android-MOD:
// failure events are batched per device, compressed, and uploaded to a
// backend collector for centralized analysis (§2.2–2.3). Uploads are gated
// on WiFi connectivity to spare the (possibly failing) cellular link, and
// per-device network budgets are accounted so the <100 KB/month overhead
// claim can be checked.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/failure"
	"repro/internal/stats"
)

// Batch is one upload unit: a device's buffered failure events.
type Batch struct {
	DeviceID uint64
	Events   []failure.Event
}

// maxBatchWire caps a decoded batch's wire size (64 MiB) so a corrupt
// length prefix cannot drive an allocation bomb.
const maxBatchWire = 64 << 20

// WriteBatch writes a length-prefixed, gzip-compressed, gob-encoded batch.
func WriteBatch(w io.Writer, b *Batch) (int, error) {
	var payload bytesBuffer
	zw := gzip.NewWriter(&payload)
	if err := gob.NewEncoder(zw).Encode(b); err != nil {
		return 0, fmt.Errorf("trace: encode batch: %w", err)
	}
	if err := zw.Close(); err != nil {
		return 0, fmt.Errorf("trace: compress batch: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return 4 + len(payload), nil
}

// ReadBatch reads one batch written by WriteBatch. It returns io.EOF when
// the stream ends cleanly at a batch boundary.
func ReadBatch(r io.Reader) (*Batch, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("trace: read batch header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxBatchWire {
		return nil, fmt.Errorf("trace: implausible batch size %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("trace: read batch payload: %w", err)
	}
	zr, err := gzip.NewReader(bytesReader(payload))
	if err != nil {
		return nil, fmt.Errorf("trace: decompress batch: %w", err)
	}
	defer zr.Close()
	var b Batch
	if err := gob.NewDecoder(zr).Decode(&b); err != nil {
		return nil, fmt.Errorf("trace: decode batch: %w", err)
	}
	return &b, nil
}

// bytesBuffer is a minimal append-only buffer implementing io.Writer.
type bytesBuffer []byte

func (b *bytesBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// Dataset is the centralized event store the analysis pipeline reads.
// It is safe for concurrent appends (fleet shards and collector
// connections feed it in parallel).
type Dataset struct {
	mu     sync.RWMutex
	events []failure.Event
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset { return &Dataset{} }

// Append adds events.
func (d *Dataset) Append(events ...failure.Event) {
	d.mu.Lock()
	d.events = append(d.events, events...)
	d.mu.Unlock()
}

// Len returns the number of stored events.
func (d *Dataset) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.events)
}

// Each calls fn for every event. fn must not retain pointers into the
// event's Transition across calls if it mutates the dataset.
func (d *Dataset) Each(fn func(*failure.Event)) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for i := range d.events {
		fn(&d.events[i])
	}
}

// ExposeSize publishes the dataset's current length on the
// trace_dataset_events gauge. Collectors do this automatically as
// batches arrive; snapshot servers (cellserve) call it once on load.
func (d *Dataset) ExposeSize() { mDatasetEvents.Set(float64(d.Len())) }

// Events returns a copy of all stored events.
func (d *Dataset) Events() []failure.Event {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]failure.Event(nil), d.events...)
}

// SaveFile persists the dataset as a single gzip+gob stream.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	zw := gzip.NewWriter(bw)
	d.mu.RLock()
	err = gob.NewEncoder(zw).Encode(d.events)
	d.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("trace: save dataset: %w", err)
	}
	if err := zw.Close(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset written by SaveFile.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("trace: open dataset: %w", err)
	}
	defer zr.Close()
	var events []failure.Event
	if err := gob.NewDecoder(zr).Decode(&events); err != nil {
		return nil, fmt.Errorf("trace: load dataset: %w", err)
	}
	return &Dataset{events: events}, nil
}

// Collector is the backend TCP server that receives uploaded batches.
// Alongside storing events it tracks streaming duration percentiles with
// P² sketches, so operational dashboards get p50/p90/p99 without the
// backend retaining samples.
type Collector struct {
	ln net.Listener
	ds *Dataset

	mu        sync.Mutex
	batches   int
	rxBytes   int64
	closed    bool
	quantiles *stats.QuantileSet
	wg        sync.WaitGroup
}

// NewCollector starts a collector on addr (e.g. "127.0.0.1:0") feeding ds.
func NewCollector(addr string, ds *Dataset) (*Collector, error) {
	if ds == nil {
		return nil, errors.New("trace: nil dataset")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	qs, err := stats.NewQuantileSet(0.5, 0.9, 0.99)
	if err != nil {
		ln.Close()
		return nil, err
	}
	c := &Collector{ln: ln, ds: ds, quantiles: qs}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the collector's listen address.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

// Stats returns the number of batches and payload bytes received.
func (c *Collector) Stats() (batches int, rxBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches, c.rxBytes
}

// DurationQuantiles returns the streaming p50/p90/p99 of received failure
// durations, in seconds.
func (c *Collector) DurationQuantiles() (p50, p90, p99 float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	qs := c.quantiles.Quantiles()
	return qs[0], qs[1], qs[2]
}

// Close stops the collector and waits for in-flight connections.
func (c *Collector) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	err := c.ln.Close()
	c.wg.Wait()
	return err
}

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			c.serve(conn)
		}()
	}
}

func (c *Collector) serve(conn net.Conn) {
	br := bufio.NewReader(conn)
	for {
		b, err := ReadBatch(br)
		if err != nil {
			if err != io.EOF {
				// Malformed or truncated stream: drop the connection
				// (clean EOF at a batch boundary is not a drop).
				mColDropped.Inc()
			}
			return
		}
		c.ds.Append(b.Events...)
		mColBatches.Inc()
		mColEvents.Add(int64(len(b.Events)))
		mColRxBytes.Add(int64(approxBatchSize(b)))
		mDatasetEvents.Set(float64(c.ds.Len()))
		c.mu.Lock()
		c.batches++
		c.rxBytes += int64(approxBatchSize(b))
		for i := range b.Events {
			c.quantiles.Add(b.Events[i].Duration.Seconds())
		}
		c.mu.Unlock()
		// Acknowledge once the batch is durably in the dataset, so the
		// device can trim its buffer knowing nothing was lost in flight.
		if _, err := conn.Write([]byte{batchAck}); err != nil {
			return
		}
	}
}

// batchAck is the single-byte acknowledgement for a stored batch.
const batchAck = 0x06

func approxBatchSize(b *Batch) int {
	return len(b.Events) * 96 // bookkeeping estimate only
}

// Uploader buffers a device's events and uploads them to the collector
// only when WiFi is available, exactly like Android-MOD ("the recorded
// data are uploaded to our backend server only when there is WiFi
// connectivity").
type Uploader struct {
	addr string

	// FlushThreshold is how many events accumulate before an on-WiFi
	// Record triggers an upload (default 1: immediate). Batching
	// amortizes the TCP round trip; SetWiFi(true) and Flush always drain
	// everything regardless.
	FlushThreshold int

	// sendMu serializes Flush so concurrent flushes cannot double-send.
	sendMu    sync.Mutex
	mu        sync.Mutex
	deviceID  uint64
	pending   []failure.Event
	wifi      bool
	sentBytes int64
	uploads   int
	retries   int
}

// NewUploader creates an uploader for a device targeting the collector at
// addr.
func NewUploader(addr string, deviceID uint64) *Uploader {
	return &Uploader{addr: addr, deviceID: deviceID}
}

// Record buffers an event for upload.
func (u *Uploader) Record(e failure.Event) {
	u.mu.Lock()
	u.pending = append(u.pending, e)
	threshold := u.FlushThreshold
	if threshold < 1 {
		threshold = 1
	}
	flush := u.wifi && len(u.pending) >= threshold
	u.mu.Unlock()
	if flush {
		u.Flush() // best effort; events stay buffered on failure
	}
}

// Pending returns the number of buffered events.
func (u *Uploader) Pending() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.pending)
}

// SentBytes returns total wire bytes uploaded (network budget accounting).
func (u *Uploader) SentBytes() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.sentBytes
}

// FlushRetries returns how many Flush attempts failed on the network
// (events stayed buffered and were retried later).
func (u *Uploader) FlushRetries() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.retries
}

// SetWiFi updates connectivity; gaining WiFi flushes the buffer.
func (u *Uploader) SetWiFi(on bool) {
	u.mu.Lock()
	u.wifi = on
	n := len(u.pending)
	u.mu.Unlock()
	if on && n > 0 {
		u.Flush()
	}
}

// Flush uploads all buffered events if WiFi is available.
func (u *Uploader) Flush() error {
	u.sendMu.Lock()
	defer u.sendMu.Unlock()
	u.mu.Lock()
	if !u.wifi {
		u.mu.Unlock()
		return errors.New("trace: no WiFi connectivity")
	}
	if len(u.pending) == 0 {
		u.mu.Unlock()
		return nil
	}
	batch := &Batch{DeviceID: u.deviceID, Events: u.pending}
	u.mu.Unlock()

	start := time.Now()
	conn, err := net.Dial("tcp", u.addr)
	if err != nil {
		u.noteRetry()
		return fmt.Errorf("trace: dial collector: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	n, err := WriteBatch(conn, batch)
	if err != nil {
		u.noteRetry()
		return fmt.Errorf("trace: upload: %w", err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack[0] != batchAck {
		u.noteRetry()
		return fmt.Errorf("trace: collector did not acknowledge batch: %w", err)
	}
	mUpBatches.Inc()
	mUpEvents.Add(int64(len(batch.Events)))
	mUpBytes.Add(int64(n))
	mUploadSeconds.Observe(time.Since(start).Seconds())
	u.mu.Lock()
	u.sentBytes += int64(n)
	u.uploads++
	// Only clear what was sent; events recorded mid-flight stay pending.
	u.pending = u.pending[len(batch.Events):]
	u.mu.Unlock()
	return nil
}

// noteRetry accounts a failed network flush: the events stay buffered,
// so a later Flush will retry them.
func (u *Uploader) noteRetry() {
	mUpRetries.Inc()
	u.mu.Lock()
	u.retries++
	u.mu.Unlock()
}

// Filter returns a new dataset with the events matching pred.
func (d *Dataset) Filter(pred func(*failure.Event) bool) *Dataset {
	out := NewDataset()
	d.Each(func(e *failure.Event) {
		if pred(e) {
			out.events = append(out.events, *e)
		}
	})
	return out
}

// Merge combines datasets into a new one.
func Merge(ds ...*Dataset) *Dataset {
	out := NewDataset()
	for _, d := range ds {
		if d == nil {
			continue
		}
		d.mu.RLock()
		out.events = append(out.events, d.events...)
		d.mu.RUnlock()
	}
	return out
}
