package trace

import (
	"net"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/metrics"
)

func metricVal(t *testing.T, name string) float64 {
	t.Helper()
	v, ok := metrics.Default().Value(name)
	if !ok {
		t.Fatalf("metric %s not registered", name)
	}
	return v
}

// TestPipelineMetrics runs one upload round trip and checks the
// uploader and collector counters move together (deltas: the registry
// is process-wide).
func TestPipelineMetrics(t *testing.T) {
	upBatches0 := metricVal(t, "trace_uploader_batches_total")
	upEvents0 := metricVal(t, "trace_uploader_events_total")
	upBytes0 := metricVal(t, "trace_uploader_bytes_total")
	colBatches0 := metricVal(t, "trace_collector_batches_accepted_total")
	colEvents0 := metricVal(t, "trace_collector_events_decoded_total")

	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	up := NewUploader(col.Addr(), 42)
	up.SetWiFi(true)
	up.Record(failure.Event{Kind: failure.DataStall, Duration: 3 * time.Second})
	up.Record(failure.Event{Kind: failure.OutOfService, Duration: time.Second})
	if err := up.Flush(); err != nil {
		t.Fatal(err)
	}

	if d := metricVal(t, "trace_uploader_batches_total") - upBatches0; d < 1 {
		t.Errorf("uploader batches moved by %v, want >= 1", d)
	}
	if d := metricVal(t, "trace_uploader_events_total") - upEvents0; d != 2 {
		t.Errorf("uploader events moved by %v, want 2", d)
	}
	if d := metricVal(t, "trace_uploader_bytes_total") - upBytes0; d <= 0 {
		t.Errorf("uploader bytes moved by %v, want > 0", d)
	}
	if d := metricVal(t, "trace_collector_batches_accepted_total") - colBatches0; d < 1 {
		t.Errorf("collector batches moved by %v, want >= 1", d)
	}
	if d := metricVal(t, "trace_collector_events_decoded_total") - colEvents0; d != 2 {
		t.Errorf("collector events moved by %v, want 2", d)
	}
	if g := metricVal(t, "trace_dataset_events"); g != float64(ds.Len()) {
		t.Errorf("dataset gauge = %v, want %d", g, ds.Len())
	}
}

// TestUploaderFlushRetryMetrics checks failed flushes are counted (and
// stay pending for retry) when no collector is reachable.
func TestUploaderFlushRetryMetrics(t *testing.T) {
	// Reserve a port and close it so the dial reliably fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	retries0 := metricVal(t, "trace_uploader_flush_retries_total")
	up := NewUploader(addr, 7)
	up.SetWiFi(true)
	up.Record(failure.Event{Kind: failure.DataStall}) // triggers a failing flush
	if err := up.Flush(); err == nil {
		t.Fatal("Flush to closed port succeeded")
	}
	if up.FlushRetries() < 1 {
		t.Errorf("FlushRetries = %d, want >= 1", up.FlushRetries())
	}
	if d := metricVal(t, "trace_uploader_flush_retries_total") - retries0; d < 1 {
		t.Errorf("retry counter moved by %v, want >= 1", d)
	}
	if up.Pending() != 1 {
		t.Errorf("Pending = %d, want 1 (event kept for retry)", up.Pending())
	}
}

// TestRerouteAndTakeoverMetrics checks the failover counters:
// trace_uploader_reroutes_total moves on Retarget, and
// trace_collector_takeover_devices moves when seeded marks actually
// raise a device's high-water (not when they are stale).
func TestRerouteAndTakeoverMetrics(t *testing.T) {
	reroutes0 := metricVal(t, "trace_uploader_reroutes_total")
	up := NewUploader("127.0.0.1:1", 9)
	defer up.Close()
	if up.Retarget("") {
		t.Fatal("Retarget to empty address reported a change")
	}
	if up.Retarget("127.0.0.1:1") {
		t.Fatal("Retarget to the current address reported a change")
	}
	if !up.Retarget("127.0.0.1:2") {
		t.Fatal("Retarget to a new address reported no change")
	}
	if d := metricVal(t, "trace_uploader_reroutes_total") - reroutes0; d != 1 {
		t.Errorf("reroute counter moved by %v, want 1 (no-op retargets must not count)", d)
	}

	takeover0 := metricVal(t, "trace_collector_takeover_devices")
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if n := col.SeedMarks(map[uint64]uint64{3: 5, 4: 2}); n != 2 {
		t.Fatalf("SeedMarks raised %d devices, want 2", n)
	}
	if n := col.SeedMarks(map[uint64]uint64{3: 4}); n != 0 {
		t.Fatalf("stale SeedMarks raised %d devices, want 0", n)
	}
	if d := metricVal(t, "trace_collector_takeover_devices") - takeover0; d != 2 {
		t.Errorf("takeover counter moved by %v, want 2 (stale seeds must not count)", d)
	}
}

// TestCollectorDropMetrics checks a malformed stream bumps the dropped
// counter.
func TestCollectorDropMetrics(t *testing.T) {
	dropped0 := metricVal(t, "trace_collector_batches_dropped_total")
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0xff, 0xff, 0xff, 0xff}) // implausible length prefix
	conn.Close()
	col.Close() // waits for the connection handler to finish
	if d := metricVal(t, "trace_collector_batches_dropped_total") - dropped0; d != 1 {
		t.Errorf("dropped counter moved by %v, want 1", d)
	}
}
