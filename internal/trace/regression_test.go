package trace

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/failure"
)

// TestUploaderConcurrentRecordDuringFlush hammers Record from several
// goroutines while Flush runs concurrently. Run under -race this catches
// the historical aliasing bug where Flush handed gob a view of the live
// pending array with the mutex released; the loss check catches any
// re-base that drops events recorded mid-flight.
func TestUploaderConcurrentRecordDuringFlush(t *testing.T) {
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	up := NewUploader(col.Addr(), 7)
	up.SetWiFi(true)

	const (
		writers      = 4
		perWriter    = 200
		totalRecords = writers * perWriter
	)
	events := sampleEvents(totalRecords)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				up.Record(events[w*perWriter+i])
			}
		}(w)
	}
	stop := make(chan struct{})
	var fwg sync.WaitGroup
	fwg.Add(1)
	go func() {
		defer fwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				up.Flush() // races against the writers on purpose
			}
		}
	}()
	wg.Wait()
	close(stop)
	fwg.Wait()

	// Drain whatever the racing flusher left behind.
	for up.Pending() > 0 {
		if err := up.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return ds.Len() == totalRecords })
	if got := ds.Len(); got != totalRecords {
		t.Fatalf("collector stored %d events, recorded %d", got, totalRecords)
	}
}

// TestCollectorCloseWithIdleConnection dials a connection that never sends
// a batch and asserts Close still returns promptly. Before Close learned
// to force-close open connections, the serve goroutine parked in ReadBatch
// kept the WaitGroup waiting forever.
func TestCollectorCloseWithIdleConnection(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0", NewDataset())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Give the accept loop a moment to hand the conn to a serve goroutine,
	// so Close actually has an in-flight idle connection to unblock.
	time.Sleep(50 * time.Millisecond)

	closed := make(chan error, 1)
	go func() { closed <- col.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Collector.Close hung on an idle connection")
	}
}

// TestWriteBatchOversized asserts the writer refuses a payload above the
// wire limit instead of silently truncating the uint32 length prefix.
func TestWriteBatchOversized(t *testing.T) {
	var buf bytesBuffer
	b := &Batch{DeviceID: 1, Events: sampleEvents(100)}
	n, err := writeBatchLimit(&buf, b, 16) // tiny limit forces the oversize path
	if err == nil {
		t.Fatal("writeBatchLimit accepted an oversized batch")
	}
	if !strings.Contains(err.Error(), "exceeds wire limit") {
		t.Errorf("unexpected error: %v", err)
	}
	if n != 0 || len(buf) != 0 {
		t.Errorf("oversized batch leaked %d reported / %d written bytes onto the wire", n, len(buf))
	}
}

// TestDatasetShardDeterminism asserts shard-pinned appends reproduce the
// same Each order regardless of append interleaving across shards, and
// that FromEvents preserves the flat input order.
func TestDatasetShardDeterminism(t *testing.T) {
	events := sampleEvents(97)

	build := func(interleave bool) []failure.Event {
		ds := NewDatasetShards(4)
		if interleave {
			// Round-robin one event at a time across shards.
			for i, e := range events {
				ds.AppendShard(i%4, e)
			}
		} else {
			// Bulk per shard, shards in reverse order.
			for s := 3; s >= 0; s-- {
				var chunk []failure.Event
				for i := s; i < len(events); i += 4 {
					chunk = append(chunk, events[i])
				}
				ds.AppendShard(s, chunk...)
			}
		}
		var out []failure.Event
		ds.Each(func(e *failure.Event) { out = append(out, *e) })
		return out
	}

	a, b := build(true), build(false)
	if len(a) != len(events) || len(b) != len(events) {
		t.Fatalf("lost events: %d and %d of %d", len(a), len(b), len(events))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Each order depends on append interleaving at index %d", i)
		}
	}

	ds := FromEvents(events)
	var flat []failure.Event
	ds.Each(func(e *failure.Event) { flat = append(flat, *e) })
	if len(flat) != len(events) {
		t.Fatalf("FromEvents lost events: %d of %d", len(flat), len(events))
	}
	for i := range flat {
		if flat[i] != events[i] {
			t.Fatalf("FromEvents changed Each order at index %d", i)
		}
	}
}

// TestDatasetConcurrentAppendEach appends from several goroutines while a
// reader iterates; under -race this validates the snapshot discipline
// (published segments are immutable, Each never observes a torn append).
func TestDatasetConcurrentAppendEach(t *testing.T) {
	ds := NewDataset()
	events := sampleEvents(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ds.Append(events...)
			}
		}()
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 20; i++ {
			n := 0
			ds.Each(func(e *failure.Event) { n++ })
			if n%len(events) != 0 {
				t.Errorf("Each observed a torn append: %d events", n)
				return
			}
		}
	}()
	wg.Wait()
	<-readerDone
	if got, want := ds.Len(), 8*50*len(events); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}
