package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/failure"
)

// Upload wire protocol.
//
// The original (v1) protocol was one WriteBatch frame per upload with a
// single-byte acknowledgement — enough for a prototype, but it cannot
// distinguish "the collector stored the batch and the ack got lost" from
// "the batch never arrived", so a retry after a lost ack duplicated every
// event in the Dataset. Version 2 makes the path at-least-once *and*
// duplicate-free:
//
//	frame  = versionV2 byte (0xA2) ++ WriteBatch frame, Batch.Seq > 0
//	reply  = kind byte (ack 0x06 / nack 0x15) ++ seq uint64 BE ++
//	         retry-after milliseconds uint32 BE
//
// Every batch carries (DeviceID, Seq); Seq is assigned once when the
// batch is sealed and reused verbatim on every retry. The collector keeps
// a per-device high-water mark of acknowledged sequence numbers: a
// re-sent batch (Seq <= mark) is acknowledged again without re-appending.
// A nack tells the device the collector refused the batch (overload
// shedding) and how long to back off before retrying.
//
// The version byte cannot be confused with a v1 frame: v1 starts with the
// big-endian length prefix of a payload capped at maxBatchWire (64 MiB),
// so its first byte is always <= 0x04. Collectors therefore keep
// accepting v1 clients (StreamWriter files and old uploaders) on the same
// port, replying with the bare one-byte ack those clients expect.
const (
	// versionV2 prefixes every v2 upload frame.
	versionV2 = 0xA2
	// batchAck / batchNack are the reply kind bytes. batchAck doubles as
	// the complete v1 reply.
	batchAck  = 0x06
	batchNack = 0x15
	// batchWrongCollector is the redirect nack: the collector decoded the
	// batch but refuses it because, per its ring view, it does not own the
	// batch's device. The reply reuses the nack frame layout (seq +
	// retry-after floor); the collector closes its side afterwards. A
	// ring-aware uploader re-resolves the device's owner and retargets;
	// an uploader predating this kind treats the reply as malformed and
	// falls back to its ordinary retry/backoff path.
	batchWrongCollector = 0x17
	// replyLen is the fixed v2 reply size: kind + seq + retry-after ms.
	replyLen = 1 + 8 + 4
)

// Wire-protocol errors surfaced by Uploader.Flush.
var (
	// ErrBadAck reports a well-formed acknowledgement for the wrong
	// sequence number — a protocol violation, not a transient fault.
	ErrBadAck = errors.New("trace: collector acknowledged the wrong batch")
	// ErrAckLost reports that the connection died between delivering a
	// batch and reading its acknowledgement. The batch may or may not be
	// stored; the uploader must retry and rely on collector-side dedup.
	ErrAckLost = errors.New("trace: connection lost before the batch acknowledgement")
	// ErrNoWiFi reports a flush attempted without WiFi connectivity (the
	// paper's uploads are WiFi-gated).
	ErrNoWiFi = errors.New("trace: no WiFi connectivity")
	// ErrWrongCollector reports a redirect nack: the collector refused the
	// batch because it does not own the batch's device under the routing
	// ring. The batch was not stored; the uploader should re-resolve the
	// device's owner (Retarget / TargetRouter) and retry there.
	ErrWrongCollector = errors.New("trace: collector does not own this device")
)

// NackError is returned by Flush when the collector explicitly refused a
// batch (overload shedding). RetryAfter is the collector's suggested
// backoff floor.
type NackError struct {
	RetryAfter time.Duration
}

func (e *NackError) Error() string {
	return fmt.Sprintf("trace: collector refused batch, retry after %v", e.RetryAfter)
}

// writeReply emits one v2 reply frame.
func writeReply(w io.Writer, kind byte, seq uint64, retryAfter time.Duration) error {
	var buf [replyLen]byte
	buf[0] = kind
	binary.BigEndian.PutUint64(buf[1:9], seq)
	ms := retryAfter.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > int64(^uint32(0)) {
		ms = int64(^uint32(0))
	}
	binary.BigEndian.PutUint32(buf[9:], uint32(ms))
	_, err := w.Write(buf[:])
	return err
}

// readReply reads one v2 reply frame.
func readReply(r io.Reader) (kind byte, seq uint64, retryAfter time.Duration, err error) {
	var buf [replyLen]byte
	if _, err = io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, 0, err
	}
	kind = buf[0]
	if kind != batchAck && kind != batchNack && kind != batchWrongCollector {
		return 0, 0, 0, fmt.Errorf("trace: malformed reply kind 0x%02x", kind)
	}
	seq = binary.BigEndian.Uint64(buf[1:9])
	retryAfter = time.Duration(binary.BigEndian.Uint32(buf[9:])) * time.Millisecond
	return kind, seq, retryAfter, nil
}

// UploadFaultClass is a transport fault the chaos harness can inject into
// one upload attempt. The classes mirror what a real device fleet sees:
// unreachable backends, connections severed before or after delivery, and
// slow links.
type UploadFaultClass uint8

// Upload fault classes.
const (
	// FaultNone leaves the attempt alone.
	FaultNone UploadFaultClass = iota
	// FaultDial simulates a collector outage: the attempt fails before a
	// connection is made.
	FaultDial
	// FaultAckLoss delivers the batch, then severs the connection before
	// the acknowledgement is read — the duplicate-risk case.
	FaultAckLoss
	// FaultTruncate severs the connection mid-frame, so the collector
	// sees a truncated batch and stores nothing.
	FaultTruncate
	// FaultSlow delays the send (a slow link); the attempt still
	// completes.
	FaultSlow
)

func (c UploadFaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultDial:
		return "dial"
	case FaultAckLoss:
		return "ack-loss"
	case FaultTruncate:
		return "truncate"
	case FaultSlow:
		return "slow"
	default:
		return "unknown"
	}
}

// UploadChaos lets a fault injector intercept upload attempts. The
// uploader consults UploadFault exactly once per batch send attempt and
// reports every acknowledged batch through UploadOutcome, so the injector
// can account injected-vs-recovered faults deterministically.
type UploadChaos interface {
	// UploadFault returns the fault to apply to the device's next send
	// of the batch with the given sequence number.
	UploadFault(device, seq uint64) UploadFaultClass
	// UploadOutcome reports a completed attempt; acked is true when the
	// collector acknowledged the batch.
	UploadOutcome(device uint64, acked bool)
}

// chaosSlowDelay is the send delay a FaultSlow attempt sleeps.
const chaosSlowDelay = 15 * time.Millisecond

// Digest is an order-independent multiset digest over failure events:
// per-event SHA-256 hashes combined by wrapping word-wise addition.
// Because addition commutes, two event streams have equal digests iff
// they contain the same events with the same multiplicities, regardless
// of the order shards or collector connections appended them — exactly
// the property the chaos invariant "no loss, no duplication" needs to be
// checkable byte-for-byte across worker counts.
type Digest [4]uint64

// Add folds another digest in (commutative, associative).
func (d *Digest) Add(o Digest) {
	for i := range d {
		d[i] += o[i]
	}
}

// IsZero reports whether the digest is the empty-multiset digest.
func (d Digest) IsZero() bool { return d == Digest{} }

// String renders the digest as 64 hex characters.
func (d Digest) String() string {
	return fmt.Sprintf("%016x%016x%016x%016x", d[0], d[1], d[2], d[3])
}

// EventDigest hashes one event with its full in-situ context.
func EventDigest(e *failure.Event) Digest {
	h := sha256.New()
	ev := *e
	if t := ev.Transition; t != nil {
		ev.Transition = nil
		fmt.Fprintf(h, "%+v|%+v", ev, *t)
	} else {
		fmt.Fprintf(h, "%+v|", ev)
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	var d Digest
	for i := range d {
		d[i] = binary.BigEndian.Uint64(sum[8*i:])
	}
	return d
}

// MultisetDigest returns the order-independent digest of every stored
// event. Appending the same events in any order or sharding yields the
// same digest.
func (d *Dataset) MultisetDigest() Digest {
	var out Digest
	d.Each(func(e *failure.Event) { out.Add(EventDigest(e)) })
	return out
}
