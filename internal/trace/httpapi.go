package trace

import (
	"encoding/json"
	"log"
	"net/http"
	"strconv"

	"repro/internal/failure"
)

// QueryAPI serves read-only JSON views of a dataset over HTTP — the
// centralized-analysis side of the pipeline as a service. Handlers are
// plain net/http so the server composes with any mux.
//
//	GET /api/stats                  — dataset totals
//	GET /api/events?limit=N&kind=K  — raw events (filtered, truncated)
//	GET /api/by-model               — per-model event counts and devices
//	GET /api/by-isp                 — per-ISP event counts and devices
//	GET /api/digest                 — order-independent multiset digest
type QueryAPI struct {
	ds *Dataset
}

// NewQueryAPI wraps a dataset.
func NewQueryAPI(ds *Dataset) *QueryAPI { return &QueryAPI{ds: ds} }

// Routes registers the API on mux under /api/.
func (a *QueryAPI) Routes(mux *http.ServeMux) {
	mux.HandleFunc("/api/stats", a.handleStats)
	mux.HandleFunc("/api/events", a.handleEvents)
	mux.HandleFunc("/api/by-model", a.handleByModel)
	mux.HandleFunc("/api/by-isp", a.handleByISP)
	mux.HandleFunc("/api/digest", a.handleDigest)
}

// writeJSON encodes v to the response. An encode failure — a client that
// hung up mid-body, or an unmarshalable value — used to be silently
// dropped; it is now logged and counted on trace_http_encode_errors_total
// so truncated API responses show up on dashboards instead of vanishing.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		mHTTPEncodeErrors.Inc()
		log.Printf("trace: http api: encode response: %v", err)
	}
}

func (a *QueryAPI) handleStats(w http.ResponseWriter, r *http.Request) {
	type stats struct {
		Events  int            `json:"events"`
		Devices int            `json:"devices"`
		ByKind  map[string]int `json:"by_kind"`
	}
	out := stats{ByKind: map[string]int{}}
	devices := map[uint64]bool{}
	a.ds.Each(func(e *failure.Event) {
		out.Events++
		devices[e.DeviceID] = true
		out.ByKind[e.Kind.String()]++
	})
	out.Devices = len(devices)
	writeJSON(w, out)
}

func (a *QueryAPI) handleEvents(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 || n > 100000 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	kindFilter := r.URL.Query().Get("kind")
	type jsonRow struct {
		DeviceID uint64  `json:"device_id"`
		Kind     string  `json:"kind"`
		ISP      string  `json:"isp"`
		RAT      string  `json:"rat"`
		Level    int     `json:"level"`
		Cause    string  `json:"cause"`
		Duration float64 `json:"duration_s"`
	}
	var rows []jsonRow
	a.ds.Each(func(e *failure.Event) {
		if len(rows) >= limit {
			return
		}
		if kindFilter != "" && e.Kind.String() != kindFilter {
			return
		}
		rows = append(rows, jsonRow{
			DeviceID: e.DeviceID, Kind: e.Kind.String(), ISP: e.ISP.String(),
			RAT: e.RAT.String(), Level: int(e.Level), Cause: e.Cause.String(),
			Duration: e.Duration.Seconds(),
		})
	})
	writeJSON(w, rows)
}

func (a *QueryAPI) handleByModel(w http.ResponseWriter, r *http.Request) {
	type row struct {
		ModelID int `json:"model_id"`
		Events  int `json:"events"`
		Devices int `json:"devices"`
	}
	events := map[int]int{}
	devices := map[int]map[uint64]bool{}
	a.ds.Each(func(e *failure.Event) {
		events[e.ModelID]++
		if devices[e.ModelID] == nil {
			devices[e.ModelID] = map[uint64]bool{}
		}
		devices[e.ModelID][e.DeviceID] = true
	})
	out := make([]row, 0, len(events))
	for id := 1; id <= 34; id++ {
		if events[id] == 0 {
			continue
		}
		out = append(out, row{ModelID: id, Events: events[id], Devices: len(devices[id])})
	}
	writeJSON(w, out)
}

// handleDigest exposes the dataset's order-independent multiset digest,
// so an operator can compare a collector's stored dataset against the
// fleet's recorded digest (or another replica) with two curls instead of
// shipping snapshots around.
func (a *QueryAPI) handleDigest(w http.ResponseWriter, r *http.Request) {
	type digest struct {
		Events int    `json:"events"`
		Digest string `json:"digest"`
	}
	writeJSON(w, digest{Events: a.ds.Len(), Digest: a.ds.MultisetDigest().String()})
}

func (a *QueryAPI) handleByISP(w http.ResponseWriter, r *http.Request) {
	type row struct {
		ISP     string `json:"isp"`
		Events  int    `json:"events"`
		Devices int    `json:"devices"`
	}
	events := map[string]int{}
	devices := map[string]map[uint64]bool{}
	a.ds.Each(func(e *failure.Event) {
		k := e.ISP.String()
		events[k]++
		if devices[k] == nil {
			devices[k] = map[uint64]bool{}
		}
		devices[k][e.DeviceID] = true
	})
	var out []row
	for _, isp := range []string{"ISP-A", "ISP-B", "ISP-C"} {
		out = append(out, row{ISP: isp, Events: events[isp], Devices: len(devices[isp])})
	}
	writeJSON(w, out)
}
