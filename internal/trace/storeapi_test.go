package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// storeAPIFixture builds a store with several sealed segments plus an
// active tail, and an httptest server over its API.
func storeAPIFixture(t *testing.T) (*SegStore, *httptest.Server) {
	t.Helper()
	st, err := OpenSegStore(t.TempDir(), SegStoreOptions{SegmentSize: 1024}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for _, dev := range []uint64{3, 8} {
		for _, b := range storeBatches(dev, 6, 8) {
			if err := st.Append(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	mux := http.NewServeMux()
	NewStoreAPI(st).Routes(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return st, srv
}

func storeAPIGet(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestStoreAPIIndex checks /api/segments against the in-process index.
func TestStoreAPIIndex(t *testing.T) {
	st, srv := storeAPIFixture(t)
	code, body := storeAPIGet(t, srv, "/api/segments")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var got []SegmentInfo
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want := st.Segments()
	if len(got) != len(want) || len(got) < 2 {
		t.Fatalf("index has %d segments over HTTP, %d in process", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Sealed != want[i].Sealed ||
			got[i].Frames != want[i].Frames || got[i].Events != want[i].Events {
			t.Errorf("segment %d: HTTP %+v != process %+v", i, got[i], want[i])
		}
	}
}

// TestStoreAPIDataRoundTrip downloads a sealed segment's raw frames and
// decodes them with the collector's own reader: the batches must match
// what ReadSegment yields.
func TestStoreAPIDataRoundTrip(t *testing.T) {
	st, srv := storeAPIFixture(t)
	infos := st.Segments()
	id := infos[0].ID
	code, body := storeAPIGet(t, srv, fmt.Sprintf("/api/segments/data?id=%d", id))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	got := NewDataset()
	br := bufio.NewReader(bytesReader(body))
	frames := 0
	for {
		if _, err := br.Peek(1); err == io.EOF {
			break
		}
		b, _, _, err := ReadBatchAny(br)
		if err != nil {
			t.Fatal(err)
		}
		got.Append(b.Events...)
		frames++
	}
	want := NewDataset()
	if err := st.ReadSegment(id, func(b *Batch) error {
		want.Append(b.Events...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if frames != infos[0].Frames || got.MultisetDigest() != want.MultisetDigest() {
		t.Fatalf("downloaded %d frames digest %s, want %d frames digest %s",
			frames, got.MultisetDigest(), infos[0].Frames, want.MultisetDigest())
	}
}

// TestStoreAPIEventsFiltering exercises the decoded-row endpoint: device
// filtering, the row limit, and the truncated marker that tells a full
// page from an exhausted segment.
func TestStoreAPIEventsFiltering(t *testing.T) {
	st, srv := storeAPIFixture(t)
	info := st.Segments()[0]
	id := info.ID

	code, body := storeAPIGet(t, srv, fmt.Sprintf("/api/segments/events?id=%d&device=3", id))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var resp SegmentEventsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) == 0 {
		t.Fatal("device filter returned no rows")
	}
	for _, r := range resp.Rows {
		if r.DeviceID != 3 {
			t.Fatalf("row for device %d leaked through the device=3 filter", r.DeviceID)
		}
		if r.Kind == "" {
			t.Fatal("row missing decoded kind")
		}
	}

	code, body = storeAPIGet(t, srv, fmt.Sprintf("/api/segments/events?id=%d&limit=5", id))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	resp = SegmentEventsResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 5 {
		t.Fatalf("limit=5 returned %d rows", len(resp.Rows))
	}
	if !resp.Truncated {
		t.Fatal("limit=5 cut the segment short but truncated=false")
	}

	// A limit covering the whole segment must not report truncation even
	// when the page comes back exactly full.
	code, body = storeAPIGet(t, srv, fmt.Sprintf("/api/segments/events?id=%d&limit=%d", id, info.Events))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	resp = SegmentEventsResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != info.Events {
		t.Fatalf("limit=%d returned %d rows, want the whole segment", info.Events, len(resp.Rows))
	}
	if resp.Truncated {
		t.Fatal("an exactly-full final page reported truncated=true")
	}
}

// TestStoreAPIUnsealedAndBadRequests pins the error envelope: the active
// segment is not servable, unknown ids are 404s, and junk parameters are
// 400s.
func TestStoreAPIUnsealedAndBadRequests(t *testing.T) {
	st, srv := storeAPIFixture(t)
	infos := st.Segments()
	active := infos[len(infos)-1]
	if active.Sealed {
		t.Fatal("fixture tail unexpectedly sealed")
	}
	for _, tc := range []struct {
		path string
		code int
	}{
		{fmt.Sprintf("/api/segments/data?id=%d", active.ID), http.StatusNotFound},
		{fmt.Sprintf("/api/segments/events?id=%d", active.ID), http.StatusNotFound},
		{"/api/segments/data?id=999", http.StatusNotFound},
		{"/api/segments/data", http.StatusBadRequest},
		{"/api/segments/data?id=zero", http.StatusBadRequest},
		{fmt.Sprintf("/api/segments/events?id=%d&limit=0", infos[0].ID), http.StatusBadRequest},
		{fmt.Sprintf("/api/segments/events?id=%d&device=x", infos[0].ID), http.StatusBadRequest},
	} {
		if code, _ := storeAPIGet(t, srv, tc.path); code != tc.code {
			t.Errorf("GET %s = %d, want %d", tc.path, code, tc.code)
		}
	}
}
