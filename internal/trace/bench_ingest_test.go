package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/android"
	"repro/internal/failure"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// ingestBatch builds one realistic upload batch: n events from a single
// device camped on a handful of cells with a stable APN — the repetitive
// in-situ context the v3 string/cell tables intern. Roughly a quarter of
// events carry stall-recovery fields and a tenth a RAT transition,
// matching the optional-field density the paper's traces show.
func ingestBatch(device uint64, seq uint64, n int) *Batch {
	cells := []telephony.CellIdentity{
		{MCC: 460, MNC: 0, LAC: 4301, CID: 190211},
		{MCC: 460, MNC: 0, LAC: 4301, CID: 190217},
		{MCC: 460, MNC: 0, LAC: 4308, CID: 220833},
	}
	events := make([]failure.Event, n)
	for i := range events {
		events[i] = failure.Event{
			Kind:           failure.Kind(i % 3),
			DeviceID:       device,
			ModelID:        int(device % 34),
			AndroidVersion: 9 + int(device%2),
			FiveGCapable:   device%4 == 0,
			ISP:            simnet.ISPID(device % 3),
			Cell:           cells[i%len(cells)],
			DenseBS:        i%7 == 0,
			RAT:            telephony.RAT4G,
			Level:          telephony.SignalLevel(i % 6),
			APN:            "default",
			Cause:          telephony.CauseSignalLost,
			Start:          time.Duration(int(seq)*n+i) * time.Second,
			Duration:       time.Duration(10+i%300) * time.Second,
		}
		if i%4 == 1 {
			events[i].Kind = failure.DataStall
			events[i].ResolvedBy = android.ResolvedBy(1 + i%3)
			events[i].OpsExecuted = 1 + i%4
			events[i].AutoFixTime = time.Duration(i%90) * time.Second
		}
		if i%10 == 3 {
			events[i].Transition = &failure.TransitionInfo{
				FromRAT: telephony.RAT4G, ToRAT: telephony.RAT3G,
				FromLevel: telephony.Level3, ToLevel: telephony.Level1,
			}
		}
	}
	return &Batch{DeviceID: device, Seq: seq, Events: events}
}

// encodeFrame produces one wire frame for b in the dialect.
func encodeFrame(tb testing.TB, b *Batch, d Dialect) []byte {
	tb.Helper()
	frame, err := appendBatchFrame(nil, b, d)
	if err != nil {
		tb.Fatal(err)
	}
	return frame
}

// BenchmarkIngest is the wire-path benchmark family (see README "Ingest
// benchmark"): batch encode, batch decode, and end-to-end upload→admit
// through a live in-process collector at 8 connections, each measured
// for the gob (v2) dialect and the binary v3 codec in the same binary —
// so the v3-vs-gob ratio is hardware-independent.
func BenchmarkIngest(b *testing.B) {
	batch := ingestBatch(7, 1, 512)
	for _, d := range []Dialect{DialectV2, DialectV3} {
		b.Run("encode-"+d.String(), func(b *testing.B) {
			var frame []byte
			var err error
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				frame, err = appendBatchFrame(frame[:0], batch, d)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(frame)))
			b.ReportMetric(float64(len(batch.Events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
		b.Run("decode-"+d.String(), func(b *testing.B) {
			frame := encodeFrame(b, batch, d)
			rd := bytes.NewReader(frame)
			br := bufio.NewReader(rd)
			b.ReportAllocs()
			b.SetBytes(int64(len(frame)))
			for i := 0; i < b.N; i++ {
				rd.Reset(frame)
				br.Reset(rd)
				out, _, _, err := ReadBatchAny(br)
				if err != nil {
					b.Fatal(err)
				}
				if len(out.Events) != len(batch.Events) {
					b.Fatal("short decode")
				}
			}
			b.ReportMetric(float64(len(batch.Events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
		b.Run("e2e-"+d.String(), func(b *testing.B) {
			var ingest time.Duration
			events := 0
			for i := 0; i < b.N; i++ {
				el, n, _ := runIngestE2E(b, d, 8, 16, 256)
				ingest += el
				events += n
			}
			b.ReportMetric(float64(events)/ingest.Seconds(), "events/s")
		})
	}
}

// runIngestE2E drives conns concurrent uploaders, each sending batches
// sequenced batches of eventsPer events through a live collector with
// sharded admit. The clock covers upload through admit only — fixture
// events are pre-built and the digest is computed after Drain returns —
// so the elapsed time isolates the wire path the dialect controls.
func runIngestE2E(tb testing.TB, d Dialect, conns, batches, eventsPer int) (time.Duration, int, Digest) {
	tb.Helper()
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		tb.Fatal(err)
	}
	fixtures := make([][]failure.Event, conns)
	for c := range fixtures {
		events := make([]failure.Event, 0, batches*eventsPer)
		for s := 1; s <= batches; s++ {
			events = append(events, ingestBatch(uint64(c+1), uint64(s), eventsPer).Events...)
		}
		fixtures[c] = events
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			up := NewUploader(col.Addr(), uint64(c+1))
			up.Dialect = d
			up.FlushThreshold = eventsPer
			up.SetWiFi(true)
			for _, e := range fixtures[c] {
				up.Record(e)
			}
			if err := up.Flush(); err != nil {
				tb.Errorf("uploader %d: %v", c, err)
			}
			up.Close()
		}(c)
	}
	wg.Wait()
	if err := col.Drain(time.Second); err != nil {
		tb.Fatal(err)
	}
	elapsed := time.Since(start)
	return elapsed, ds.Len(), ds.MultisetDigest()
}

// ingestBenchEntry is one BENCH_ingest.json record. The *Speedup fields
// compare the v3 codec against the gob dialect in the same binary, so
// the ratios survive hardware changes even though absolute numbers
// do not.
type ingestBenchEntry struct {
	Date          string  `json:"date"`
	GoVersion     string  `json:"go_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	BatchEvents   int     `json:"batch_events"`
	GobEncDecNsEv float64 `json:"gob_encdec_ns_per_event"`
	V3EncDecNsEv  float64 `json:"v3_encdec_ns_per_event"`
	EncDecSpeedup float64 `json:"encdec_speedup"`
	GobWireBytes  int     `json:"gob_wire_bytes"`
	V3WireBytes   int     `json:"v3_wire_bytes"`
	E2EConns      int     `json:"e2e_conns"`
	E2EBatches    int     `json:"e2e_batches_per_conn"`
	GobE2EEventsS float64 `json:"gob_e2e_events_per_s"`
	V3E2EEventsS  float64 `json:"v3_e2e_events_per_s"`
	E2ESpeedup    float64 `json:"e2e_speedup"`
}

// TestWriteIngestBenchArtifact measures the gob dialect against the v3
// codec — batch encode+decode, then end-to-end upload→admit at 8
// concurrent connections — and appends the result to the JSON file named
// by BENCH_INGEST_OUT. It is skipped in normal test runs; CI's
// ingest-bench job and the recorded BENCH_ingest.json entries come from
// here.
//
// When BENCH_INGEST_BASELINE names a committed artifact, the test FAILS
// if either measured v3-vs-gob speedup falls below 85% of the baseline's
// most recent entry for the same configuration — the CI regression gate.
// The two e2e arms also cross-check: identical event counts and
// identical stored multiset digests (the codec is only a valid
// optimization while the admitted events are equal).
func TestWriteIngestBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_INGEST_OUT")
	if out == "" {
		t.Skip("set BENCH_INGEST_OUT to record a benchmark artifact")
	}
	date := os.Getenv("BENCH_INGEST_DATE") // keep artifacts reproducible in CI

	batchEvents := envIntT(t, "BENCH_INGEST_EVENTS", 512)
	reps := envIntT(t, "BENCH_INGEST_REPS", 400)
	conns := envIntT(t, "BENCH_INGEST_CONNS", 8)
	batches := envIntT(t, "BENCH_INGEST_BATCHES", 24)

	batch := ingestBatch(7, 1, batchEvents)

	// Encode+decode: one warm pass, then reps timed round trips per
	// dialect. ns/event over (encode + decode) is the codec figure.
	encdec := func(d Dialect) (nsPerEvent float64, wireBytes int) {
		frame := encodeFrame(t, batch, d)
		rd := bytes.NewReader(frame)
		br := bufio.NewReader(rd)
		start := time.Now()
		var err error
		for i := 0; i < reps; i++ {
			frame, err = appendBatchFrame(frame[:0], batch, d)
			if err != nil {
				t.Fatal(err)
			}
			rd.Reset(frame)
			br.Reset(rd)
			out, _, _, err := ReadBatchAny(br)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Events) != batchEvents {
				t.Fatal("short decode")
			}
		}
		sec := time.Since(start).Seconds()
		return sec * 1e9 / float64(reps*batchEvents), len(frame)
	}
	gobNs, gobWire := encdec(DialectV2)
	v3Ns, v3Wire := encdec(DialectV3)

	// End to end: same fleet shape on both dialects, digests must match.
	e2e := func(d Dialect) (eventsPerSec float64, n int, dig Digest) {
		el, n, dig := runIngestE2E(t, d, conns, batches, batchEvents)
		return float64(n) / el.Seconds(), n, dig
	}
	gobRate, gobN, gobDig := e2e(DialectV2)
	v3Rate, v3N, v3Dig := e2e(DialectV3)
	if gobN != v3N || gobDig != v3Dig {
		t.Fatalf("e2e arms diverge: %d vs %d events, digests equal=%v",
			gobN, v3N, gobDig == v3Dig)
	}
	if want := conns * batches * batchEvents; gobN != want {
		t.Fatalf("e2e admitted %d events, want %d", gobN, want)
	}

	entry := ingestBenchEntry{
		Date:          date,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		BatchEvents:   batchEvents,
		GobEncDecNsEv: gobNs,
		V3EncDecNsEv:  v3Ns,
		EncDecSpeedup: gobNs / v3Ns,
		GobWireBytes:  gobWire,
		V3WireBytes:   v3Wire,
		E2EConns:      conns,
		E2EBatches:    batches,
		GobE2EEventsS: gobRate,
		V3E2EEventsS:  v3Rate,
		E2ESpeedup:    v3Rate / gobRate,
	}

	if baseline := os.Getenv("BENCH_INGEST_BASELINE"); baseline != "" {
		gateIngestBench(t, baseline, entry)
	}

	var entries []ingestBenchEntry
	if raw, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(raw, &entries); err != nil {
			t.Fatalf("existing %s is not an ingestBenchEntry list: %v", out, err)
		}
	}
	entries = append(entries, entry)
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("ingest %d-event batches: encdec gob %.0fns/ev v3 %.0fns/ev (%.2fx), e2e@%d gob %.0f ev/s v3 %.0f ev/s (%.2fx) -> %s\n",
		batchEvents, gobNs, v3Ns, entry.EncDecSpeedup, conns, gobRate, v3Rate, entry.E2ESpeedup, out)
}

// gateIngestBench fails the test if either v3-vs-gob speedup regressed
// more than 15% below the baseline artifact's most recent entry for the
// same configuration. Speedup ratios — not absolute throughput —
// normalize away the hardware difference between the committing machine
// and the gating machine.
func gateIngestBench(t *testing.T, path string, entry ingestBenchEntry) {
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read baseline %s: %v", path, err)
	}
	var entries []ingestBenchEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatalf("baseline %s is not an ingestBenchEntry list: %v", path, err)
	}
	base := ingestBenchEntry{}
	for _, e := range entries {
		if e.BatchEvents == entry.BatchEvents && e.E2EConns == entry.E2EConns && e.EncDecSpeedup > 0 {
			base = e // last matching entry wins: the most recent recording
		}
	}
	if base.EncDecSpeedup == 0 {
		t.Logf("baseline %s has no entry for %d-event batches at %d conns; gate skipped",
			path, entry.BatchEvents, entry.E2EConns)
		return
	}
	const tolerance = 0.85
	if entry.EncDecSpeedup < base.EncDecSpeedup*tolerance {
		t.Fatalf("ingest bench regression: encode+decode speedup %.2fx is below 85%% of the %s baseline %.2fx",
			entry.EncDecSpeedup, base.Date, base.EncDecSpeedup)
	}
	if entry.E2ESpeedup < base.E2ESpeedup*tolerance {
		t.Fatalf("ingest bench regression: e2e speedup %.2fx is below 85%% of the %s baseline %.2fx",
			entry.E2ESpeedup, base.Date, base.E2ESpeedup)
	}
	t.Logf("ingest bench gate: encdec %.2fx vs baseline %.2fx, e2e %.2fx vs %.2fx (floor 85%%)",
		entry.EncDecSpeedup, base.EncDecSpeedup, entry.E2ESpeedup, base.E2ESpeedup)
}

func envIntT(t *testing.T, name string, def int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		t.Fatalf("%s=%q: want a positive integer", name, v)
	}
	return n
}
