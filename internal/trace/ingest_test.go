package trace

import (
	"bufio"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/rng"
)

// scriptedChaos replays a fixed fault sequence, one per send attempt, and
// records every outcome.
type scriptedChaos struct {
	mu       sync.Mutex
	faults   []UploadFaultClass
	outcomes []bool
}

func (s *scriptedChaos) UploadFault(device, seq uint64) UploadFaultClass {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.faults) == 0 {
		return FaultNone
	}
	f := s.faults[0]
	s.faults = s.faults[1:]
	return f
}

func (s *scriptedChaos) UploadOutcome(device uint64, acked bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.outcomes = append(s.outcomes, acked)
}

// TestAckLossRetryIsExactlyOnce is the dedup invariant in miniature: the
// ack is killed in flight after the collector stored the batch, the
// uploader retries, and every event must land in the dataset exactly
// once.
func TestAckLossRetryIsExactlyOnce(t *testing.T) {
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	up := NewUploader(col.Addr(), 7)
	up.SetChaos(&scriptedChaos{faults: []UploadFaultClass{FaultAckLoss}})
	up.SetWiFi(true)
	up.FlushThreshold = 100 // keep Record from flushing; Flush explicitly

	events := sampleEvents(10)
	for _, e := range events {
		up.Record(e)
	}
	if err := up.Flush(); !errors.Is(err, ErrAckLost) {
		t.Fatalf("Flush error = %v, want ErrAckLost", err)
	}
	// The batch was fully written before the connection died, so the
	// collector stores it; the uploader must still hold it unacked.
	waitFor(t, func() bool { return ds.Len() == 10 })
	if up.Pending() != 10 {
		t.Fatalf("Pending = %d after lost ack, want 10", up.Pending())
	}
	if up.LastErr() == nil || up.ConsecutiveFailures() != 1 {
		t.Errorf("LastErr = %v, ConsecutiveFailures = %d; want error and 1",
			up.LastErr(), up.ConsecutiveFailures())
	}

	// Retry: the collector must dedup the re-send, not re-append it.
	if err := up.Flush(); err != nil {
		t.Fatal(err)
	}
	if up.Pending() != 0 {
		t.Errorf("Pending = %d after acked retry", up.Pending())
	}
	if got := ds.Len(); got != 10 {
		t.Fatalf("Dataset.Len = %d after retry, want exactly 10 (no duplication)", got)
	}
	if col.DedupHits() != 1 {
		t.Errorf("DedupHits = %d, want 1", col.DedupHits())
	}
	if up.LastErr() != nil || up.ConsecutiveFailures() != 0 {
		t.Errorf("health not reset after success: %v, %d", up.LastErr(), up.ConsecutiveFailures())
	}
}

// TestTruncatedSendRetryIsExactlyOnce covers the other half of the
// ambiguity: the connection dies mid-frame, the collector stores nothing,
// and the retry must deliver the events exactly once.
func TestTruncatedSendRetryIsExactlyOnce(t *testing.T) {
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	up := NewUploader(col.Addr(), 7)
	up.SetChaos(&scriptedChaos{faults: []UploadFaultClass{FaultTruncate}})
	up.SetWiFi(true)
	up.FlushThreshold = 100

	for _, e := range sampleEvents(10) {
		up.Record(e)
	}
	if err := up.Flush(); err == nil {
		t.Fatal("truncated send reported success")
	}
	if err := up.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ds.Len() == 10 })
	if got := ds.Len(); got != 10 {
		t.Fatalf("Dataset.Len = %d, want 10", got)
	}
	if col.DedupHits() != 0 {
		t.Errorf("DedupHits = %d for a batch the collector never stored", col.DedupHits())
	}
}

// TestCollectorShedsOverCap fills the connection cap and asserts the next
// connection is refused with a nack carrying the configured retry-after —
// at both the wire level and through the uploader's NackError.
func TestCollectorShedsOverCap(t *testing.T) {
	col, err := NewCollectorWith("127.0.0.1:0", NewDataset(), CollectorOptions{
		MaxConns:   1,
		RetryAfter: 123 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	hog, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Close()
	// Wait until the hog occupies the single slot; a shed shows up as a
	// nack on a probe connection. The probe must announce its dialect
	// first — the shed handshake replies only to versioned clients.
	waitFor(t, func() bool {
		probe, err := net.Dial("tcp", col.Addr())
		if err != nil {
			return false
		}
		defer probe.Close()
		if _, err := probe.Write([]byte{versionV3}); err != nil {
			return false
		}
		probe.SetReadDeadline(time.Now().Add(time.Second))
		kind, _, retryAfter, err := readReply(probe)
		if err != nil || kind != batchNack {
			return false
		}
		if retryAfter != 123*time.Millisecond {
			t.Fatalf("nack retry-after = %v, want 123ms", retryAfter)
		}
		return true
	})
	if col.Nacks() == 0 {
		t.Fatal("Nacks did not move")
	}

	up := NewUploader(col.Addr(), 9)
	up.SetWiFi(true)
	up.FlushThreshold = 100
	up.Record(sampleEvents(1)[0])
	err = up.Flush()
	var nack *NackError
	if !errors.As(err, &nack) {
		t.Fatalf("Flush error = %v, want NackError", err)
	}
	if nack.RetryAfter != 123*time.Millisecond {
		t.Errorf("NackError.RetryAfter = %v", nack.RetryAfter)
	}
	if up.RetryDelay() <= 0 {
		t.Error("nack did not arm the backoff timer")
	}
	if up.Pending() != 1 {
		t.Errorf("Pending = %d after shed", up.Pending())
	}
}

// TestCollectorDrainNoGoroutineLeak loads a collector with live uploader
// connections, drains it, and asserts the goroutine count returns to the
// pre-collector baseline: overload plus graceful shutdown must not leak
// serve goroutines.
func TestCollectorDrainNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ds := NewDataset()
	col, err := NewCollectorWith("127.0.0.1:0", ds, CollectorOptions{MaxConns: 4})
	if err != nil {
		t.Fatal(err)
	}
	const uploaders = 4
	ups := make([]*Uploader, uploaders)
	for i := range ups {
		ups[i] = NewUploader(col.Addr(), uint64(i+1))
		ups[i].SetWiFi(true)
		for _, e := range sampleEvents(5) {
			ups[i].Record(e)
		}
		if err := ups[i].Flush(); err != nil {
			t.Fatal(err)
		}
		defer ups[i].Close()
	}
	waitFor(t, func() bool { return ds.Len() == uploaders*5 })

	done := make(chan error, 1)
	go func() { done <- col.Drain(2 * time.Second) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain hung")
	}
	// Everything acked before the drain must be stored.
	if got := ds.Len(); got != uploaders*5 {
		t.Fatalf("drained dataset has %d events, want %d", got, uploaders*5)
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline })
}

// TestUploaderBadAck wires the uploader to a misbehaving collector that
// acks the wrong sequence number and asserts the distinct ErrBadAck
// (previously this branch wrapped a nil error into %!w(<nil>)).
func TestUploaderBadAck(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, _, _, err := ReadBatchAny(bufio.NewReader(conn)); err != nil {
			return
		}
		writeReply(conn, batchAck, 99999, 0) // wrong seq on purpose
	}()

	up := NewUploader(ln.Addr().String(), 3)
	up.SetWiFi(true)
	up.FlushThreshold = 100
	up.Record(sampleEvents(1)[0])
	err = up.Flush()
	if !errors.Is(err, ErrBadAck) {
		t.Fatalf("Flush error = %v, want ErrBadAck", err)
	}
	if err != nil && len(err.Error()) == 0 {
		t.Error("empty error message")
	}
	if up.Pending() != 1 {
		t.Errorf("Pending = %d, want 1 (bad ack must not trim the buffer)", up.Pending())
	}
}

// TestUploaderSpillAndRecover overflows the in-memory cap into the spill
// WAL while offline, then recovers everything — content-identical, no
// loss, no duplication — once WiFi returns.
func TestUploaderSpillAndRecover(t *testing.T) {
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	up := NewUploader(col.Addr(), 11)
	up.BufferLimit = 10
	if err := up.EnableSpill(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer up.Close()

	events := sampleEvents(25)
	var want Digest
	for _, e := range events {
		up.Record(e) // offline: overflows past 10 into the WAL
		want.Add(EventDigest(&e))
	}
	if up.Spilled() == 0 {
		t.Fatal("nothing spilled past the buffer cap")
	}
	if up.Dropped() != 0 {
		t.Fatalf("Dropped = %d with a spill WAL configured", up.Dropped())
	}
	if up.Pending() != 25 {
		t.Fatalf("Pending = %d, want 25 (WAL counts)", up.Pending())
	}

	up.SetWiFi(true) // flushes WAL first, then the in-memory tail
	waitFor(t, func() bool { return ds.Len() == 25 })
	if up.Pending() != 0 {
		t.Errorf("Pending = %d after recovery", up.Pending())
	}
	if got := ds.MultisetDigest(); got != want {
		t.Errorf("recovered multiset digest %s != recorded %s", got, want)
	}
}

// TestUploaderDropOldestWithoutSpill asserts the no-WAL overflow policy:
// oldest events are shed and accounted.
func TestUploaderDropOldestWithoutSpill(t *testing.T) {
	up := NewUploader("127.0.0.1:1", 4)
	up.BufferLimit = 10
	for _, e := range sampleEvents(15) {
		up.Record(e)
	}
	if up.Pending() != 10 {
		t.Errorf("Pending = %d, want 10 (cap)", up.Pending())
	}
	if up.Dropped() != 5 {
		t.Errorf("Dropped = %d, want 5", up.Dropped())
	}
}

// TestUploaderBackoffSuppressesBestEffort checks a failed flush arms the
// backoff timer and Record's best-effort flushes respect it, while an
// explicit Flush still attempts.
func TestUploaderBackoffSuppressesBestEffort(t *testing.T) {
	// Reserve a port and close it so dials reliably fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	up := NewUploader(addr, 5)
	up.SetBackoff(time.Second, 4*time.Second, rng.SplitIndexed(1, "jitter", 5))
	up.SetWiFi(true)
	up.Record(sampleEvents(1)[0]) // best-effort flush fails, arms backoff
	if up.ConsecutiveFailures() != 1 || up.LastErr() == nil {
		t.Fatalf("failure not recorded: %d, %v", up.ConsecutiveFailures(), up.LastErr())
	}
	d := up.RetryDelay()
	if d < 400*time.Millisecond || d > time.Second {
		t.Errorf("RetryDelay = %v, want within jittered [500ms, 1s)", d)
	}
	suppressedBefore := up.Suppressed()
	up.Record(sampleEvents(1)[0]) // timer armed: must be suppressed
	if up.Suppressed() != suppressedBefore+1 {
		t.Errorf("best-effort flush not suppressed during backoff")
	}
	if up.ConsecutiveFailures() != 1 {
		t.Errorf("suppressed flush changed the failure count")
	}
	if err := up.Flush(); err == nil {
		t.Error("explicit Flush must attempt (and here fail) despite backoff")
	}
	if up.ConsecutiveFailures() != 2 {
		t.Errorf("explicit flush failure not counted: %d", up.ConsecutiveFailures())
	}
}

// TestLegacyClientStillAccepted sends a bare v1 frame (no version byte)
// and expects the single-byte ack old clients rely on.
func TestLegacyClientStillAccepted(t *testing.T) {
	ds := NewDataset()
	col, err := NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	conn, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := WriteBatch(conn, &Batch{DeviceID: 1, Events: sampleEvents(4)}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		t.Fatal(err)
	}
	if ack[0] != batchAck {
		t.Fatalf("legacy ack = 0x%02x", ack[0])
	}
	if ds.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ds.Len())
	}
}

// TestMultisetDigestProperties pins the digest's contract: order
// independence, duplicate sensitivity, and zero for the empty multiset.
func TestMultisetDigestProperties(t *testing.T) {
	events := sampleEvents(20)
	fwd := NewDataset()
	fwd.Append(events...)
	rev := NewDataset()
	for i := len(events) - 1; i >= 0; i-- {
		rev.Append(events[i])
	}
	if fwd.MultisetDigest() != rev.MultisetDigest() {
		t.Error("digest depends on append order")
	}
	dup := NewDataset()
	dup.Append(events...)
	dup.Append(events[0])
	if dup.MultisetDigest() == fwd.MultisetDigest() {
		t.Error("digest blind to a duplicated event")
	}
	if !NewDataset().MultisetDigest().IsZero() {
		t.Error("empty dataset digest not zero")
	}
	if got := fwd.MultisetDigest().String(); len(got) != 64 {
		t.Errorf("digest string %q not 64 hex chars", got)
	}
}

// Stream edge cases: empty stream, chunkSize <= 0, truncated final chunk.

func TestStreamEmpty(t *testing.T) {
	var buf bytesBuffer
	sw := NewStreamWriter(&buf, 8)
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != 0 || len(buf) != 0 {
		t.Fatalf("empty stream wrote %d events, %d bytes", sw.Count(), len(buf))
	}
	n := 0
	if err := EachStream(bytesReader(buf), func(*failure.Event) { n++ }); err != nil || n != 0 {
		t.Fatalf("EachStream on empty stream: %d events, err %v", n, err)
	}
	if _, err := NewStreamReader(bytesReader(nil)).Next(); err != io.EOF {
		t.Errorf("Next on empty stream = %v, want io.EOF", err)
	}
}

func TestStreamWriterNonPositiveChunk(t *testing.T) {
	for _, chunk := range []int{0, -1, -4096} {
		var buf bytesBuffer
		sw := NewStreamWriter(&buf, chunk)
		events := sampleEvents(10)
		for _, e := range events {
			if err := sw.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Flush(); err != nil {
			t.Fatal(err)
		}
		var got []failure.Event
		if err := EachStream(bytesReader(buf), func(e *failure.Event) { got = append(got, *e) }); err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if len(got) != 10 {
			t.Fatalf("chunk %d: read %d events", chunk, len(got))
		}
	}
}

func TestStreamTruncatedFinalChunk(t *testing.T) {
	var buf bytesBuffer
	sw := NewStreamWriter(&buf, 4)
	for _, e := range sampleEvents(10) { // 4 + 4 + 2: partial final frame
		sw.Write(e)
	}
	sw.Flush()
	// Sever inside the final frame; earlier events must still stream, and
	// the reader must surface a non-EOF error, not a clean end.
	sr := NewStreamReader(bytesReader(buf[:len(buf)-2]))
	n := 0
	var err error
	for {
		if _, err = sr.Next(); err != nil {
			break
		}
		n++
	}
	if err == io.EOF {
		t.Error("truncated final chunk read as clean EOF")
	}
	if n != 8 {
		t.Errorf("streamed %d events before the truncated frame, want 8", n)
	}
	// Sticky: further Nexts repeat the failure.
	if _, err2 := sr.Next(); err2 != err {
		t.Errorf("error not sticky: %v then %v", err, err2)
	}
}

// TestOnAdmitSeesExactlyTheAdmittedMultiset pins the admit-hook contract
// the live analysis engine builds on: the hook fires once per freshly
// admitted batch — behind the dedup gate, so a retried duplicate never
// reaches it — and the union of hook deliveries is exactly the stored
// multiset. Legacy-dialect batches (always fresh) reach the hook too.
func TestOnAdmitSeesExactlyTheAdmittedMultiset(t *testing.T) {
	ds := NewDataset()
	seen := NewDataset()
	var mu sync.Mutex
	var calls int
	col, err := NewCollectorWith("127.0.0.1:0", ds, CollectorOptions{
		OnAdmit: func(events []failure.Event) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			seen.Append(events...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// A lost ack forces a real duplicate delivery on the wire.
	up := NewUploader(col.Addr(), 7)
	up.SetChaos(&scriptedChaos{faults: []UploadFaultClass{FaultAckLoss}})
	up.SetWiFi(true)
	up.FlushThreshold = 100
	for _, e := range sampleEvents(10) {
		up.Record(e)
	}
	if err := up.Flush(); !errors.Is(err, ErrAckLost) {
		t.Fatalf("Flush error = %v, want ErrAckLost", err)
	}
	waitFor(t, func() bool { return ds.Len() == 10 })
	if err := up.Flush(); err != nil {
		t.Fatal(err)
	}
	if col.DedupHits() != 1 {
		t.Fatalf("DedupHits = %d, want 1 (the retry must have been deduped)", col.DedupHits())
	}
	mu.Lock()
	if calls != 1 {
		t.Errorf("OnAdmit calls = %d, want 1 — the deduped retry must not reach the hook", calls)
	}
	if got, want := seen.MultisetDigest(), ds.MultisetDigest(); got != want {
		t.Errorf("hook multiset %s != stored multiset %s", got, want)
	}
	mu.Unlock()

	// Legacy dialect: no sequence number, always admitted, hook fires.
	conn, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := WriteBatch(conn, &Batch{DeviceID: 2, Events: sampleEvents(4)}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ds.Len() == 14 })
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Errorf("OnAdmit calls = %d after legacy batch, want 2", calls)
	}
	if got, want := seen.MultisetDigest(), ds.MultisetDigest(); got != want {
		t.Errorf("hook multiset %s != stored multiset %s after legacy batch", got, want)
	}
}
