package trace

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
)

// StoreAPI serves read-only JSON and binary views of a segment store
// over HTTP — the queryable half of the collector's durable state.
// Sealed segments are immutable files, so every handler reads straight
// from disk without coordinating with the append path: queries never
// block ingest, and ingest never blocks queries.
//
//	GET /api/segments                          — the (device, seq range) → segment index
//	GET /api/segments/events?id=N[&device=D][&limit=K] — decoded rows from one sealed segment
//	GET /api/segments/data?id=N                — the raw v3 frames of one sealed segment
//
// The data endpoint streams the segment file verbatim: a client decodes
// it with the same ReadBatchAny/StreamReader loop the collector's
// replay uses, so "what the store holds" is re-derivable bit-for-bit
// without shipping snapshots around.
type StoreAPI struct {
	st *SegStore
}

// NewStoreAPI wraps a segment store.
func NewStoreAPI(st *SegStore) *StoreAPI { return &StoreAPI{st: st} }

// Routes registers the API on mux under /api/segments.
func (a *StoreAPI) Routes(mux *http.ServeMux) {
	mux.HandleFunc("/api/segments", a.handleIndex)
	mux.HandleFunc("/api/segments/events", a.handleEvents)
	mux.HandleFunc("/api/segments/data", a.handleData)
}

func (a *StoreAPI) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, a.st.Segments())
}

// segmentID parses the mandatory id query parameter.
func segmentID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
	if err != nil || id == 0 {
		http.Error(w, "bad or missing segment id", http.StatusBadRequest)
		return 0, false
	}
	return id, true
}

func (a *StoreAPI) handleEvents(w http.ResponseWriter, r *http.Request) {
	id, ok := segmentID(w, r)
	if !ok {
		return
	}
	q, ok := parseEventsQuery(w, r)
	if !ok {
		return
	}
	resp, err := segmentEvents(a.st, id, q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, resp)
}

// SegmentRow is one decoded event row in a segment-events response.
type SegmentRow struct {
	DeviceID uint64  `json:"device_id"`
	Seq      uint64  `json:"seq"`
	Kind     string  `json:"kind"`
	ISP      string  `json:"isp"`
	RAT      string  `json:"rat"`
	Level    int     `json:"level"`
	Cause    string  `json:"cause"`
	Duration float64 `json:"duration_s"`
}

// SegmentEventsResponse is the /api/segments/events envelope. Truncated
// reports that the row limit cut the read short — at least one more
// matching row remains in the segment — so a caller can tell a full page
// from an exhausted segment.
type SegmentEventsResponse struct {
	Rows      []SegmentRow `json:"rows"`
	Truncated bool         `json:"truncated"`
}

// eventsQuery is the parsed limit/device filter shared by the
// single-store and merged events endpoints.
type eventsQuery struct {
	limit    int
	device   uint64
	filtered bool
}

// parseEventsQuery validates limit and device; on failure it has already
// written the 400 response.
func parseEventsQuery(w http.ResponseWriter, r *http.Request) (eventsQuery, bool) {
	q := eventsQuery{limit: 100}
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 || n > 100000 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return q, false
		}
		q.limit = n
	}
	if s := r.URL.Query().Get("device"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad device", http.StatusBadRequest)
			return q, false
		}
		q.device, q.filtered = n, true
	}
	return q, true
}

// segmentEvents decodes up to q.limit matching rows from sealed segment
// id. Truncated is set only when a matching event actually exists past
// the limit, not merely because the page came back full.
func segmentEvents(st *SegStore, id uint64, q eventsQuery) (SegmentEventsResponse, error) {
	resp := SegmentEventsResponse{Rows: []SegmentRow{}}
	err := st.ReadSegment(id, func(b *Batch) error {
		if q.filtered && b.DeviceID != q.device {
			return nil
		}
		for i := range b.Events {
			if len(resp.Rows) >= q.limit {
				resp.Truncated = true
				return errStoreAPIDone
			}
			e := &b.Events[i]
			resp.Rows = append(resp.Rows, SegmentRow{
				DeviceID: e.DeviceID, Seq: b.Seq, Kind: e.Kind.String(),
				ISP: e.ISP.String(), RAT: e.RAT.String(), Level: int(e.Level),
				Cause: e.Cause.String(), Duration: e.Duration.Seconds(),
			})
		}
		return nil
	})
	if err != nil && err != errStoreAPIDone {
		return resp, err
	}
	return resp, nil
}

// errStoreAPIDone stops a segment read early once the row limit fills.
var errStoreAPIDone = fmt.Errorf("trace: store api: done")

func (a *StoreAPI) handleData(w http.ResponseWriter, r *http.Request) {
	id, ok := segmentID(w, r)
	if !ok {
		return
	}
	streamSegment(w, a.st, id)
}

// streamSegment copies sealed segment id of st verbatim to the response
// (shared by the single-store and merged data endpoints).
func streamSegment(w http.ResponseWriter, st *SegStore, id uint64) {
	path, err := st.sealedPath(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f)
}

// ReplayInto returns an OpenSegStore callback that rebuilds a dataset
// with the collector's shard placement (events pinned to the batch's
// DeviceID shard) — boot-time replay and live admission produce the same
// per-shard layout.
func ReplayInto(ds *Dataset) func(*Batch) {
	return func(b *Batch) {
		ds.AppendShard(int(b.DeviceID%uint64(ds.NumShards())), b.Events...)
	}
}
