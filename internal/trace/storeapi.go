package trace

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
)

// StoreAPI serves read-only JSON and binary views of a segment store
// over HTTP — the queryable half of the collector's durable state.
// Sealed segments are immutable files, so every handler reads straight
// from disk without coordinating with the append path: queries never
// block ingest, and ingest never blocks queries.
//
//	GET /api/segments                          — the (device, seq range) → segment index
//	GET /api/segments/events?id=N[&device=D][&limit=K] — decoded rows from one sealed segment
//	GET /api/segments/data?id=N                — the raw v3 frames of one sealed segment
//
// The data endpoint streams the segment file verbatim: a client decodes
// it with the same ReadBatchAny/StreamReader loop the collector's
// replay uses, so "what the store holds" is re-derivable bit-for-bit
// without shipping snapshots around.
type StoreAPI struct {
	st *SegStore
}

// NewStoreAPI wraps a segment store.
func NewStoreAPI(st *SegStore) *StoreAPI { return &StoreAPI{st: st} }

// Routes registers the API on mux under /api/segments.
func (a *StoreAPI) Routes(mux *http.ServeMux) {
	mux.HandleFunc("/api/segments", a.handleIndex)
	mux.HandleFunc("/api/segments/events", a.handleEvents)
	mux.HandleFunc("/api/segments/data", a.handleData)
}

func (a *StoreAPI) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, a.st.Segments())
}

// segmentID parses the mandatory id query parameter.
func segmentID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
	if err != nil || id == 0 {
		http.Error(w, "bad or missing segment id", http.StatusBadRequest)
		return 0, false
	}
	return id, true
}

func (a *StoreAPI) handleEvents(w http.ResponseWriter, r *http.Request) {
	id, ok := segmentID(w, r)
	if !ok {
		return
	}
	limit := 100
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 || n > 100000 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	var device uint64
	filtered := false
	if s := r.URL.Query().Get("device"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad device", http.StatusBadRequest)
			return
		}
		device, filtered = n, true
	}
	type jsonRow struct {
		DeviceID uint64  `json:"device_id"`
		Seq      uint64  `json:"seq"`
		Kind     string  `json:"kind"`
		ISP      string  `json:"isp"`
		RAT      string  `json:"rat"`
		Level    int     `json:"level"`
		Cause    string  `json:"cause"`
		Duration float64 `json:"duration_s"`
	}
	rows := []jsonRow{}
	err := a.st.ReadSegment(id, func(b *Batch) error {
		if filtered && b.DeviceID != device {
			return nil
		}
		for i := range b.Events {
			if len(rows) >= limit {
				return errStoreAPIDone
			}
			e := &b.Events[i]
			rows = append(rows, jsonRow{
				DeviceID: e.DeviceID, Seq: b.Seq, Kind: e.Kind.String(),
				ISP: e.ISP.String(), RAT: e.RAT.String(), Level: int(e.Level),
				Cause: e.Cause.String(), Duration: e.Duration.Seconds(),
			})
		}
		return nil
	})
	if err != nil && err != errStoreAPIDone {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, rows)
}

// errStoreAPIDone stops a segment read early once the row limit fills.
var errStoreAPIDone = fmt.Errorf("trace: store api: done")

func (a *StoreAPI) handleData(w http.ResponseWriter, r *http.Request) {
	id, ok := segmentID(w, r)
	if !ok {
		return
	}
	path, err := a.st.sealedPath(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f)
}

// ReplayInto returns an OpenSegStore callback that rebuilds a dataset
// with the collector's shard placement (events pinned to the batch's
// DeviceID shard) — boot-time replay and live admission produce the same
// per-shard layout.
func ReplayInto(ds *Dataset) func(*Batch) {
	return func(b *Batch) {
		ds.AppendShard(int(b.DeviceID%uint64(ds.NumShards())), b.Events...)
	}
}
