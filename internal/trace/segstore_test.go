package trace

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// storeBatches builds n sequenced batches for device dev, k events each.
func storeBatches(dev uint64, n, k int) []*Batch {
	out := make([]*Batch, 0, n)
	for i := 0; i < n; i++ {
		events := sampleEvents(k)
		for j := range events {
			events[j].DeviceID = dev
		}
		out = append(out, &Batch{DeviceID: dev, Seq: uint64(i + 1), Events: events})
	}
	return out
}

// TestSegStoreReplayRoundTrip closes a store cleanly and reopens it: the
// replayed dataset must be the exact multiset that was appended, the
// marks must match the highest appended seq per device, and every
// segment must be sealed after Close.
func TestSegStoreReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSegStore(dir, SegStoreOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := NewDataset()
	for _, dev := range []uint64{3, 9} {
		for _, b := range storeBatches(dev, 4, 5) {
			if err := st.Append(b); err != nil {
				t.Fatal(err)
			}
			ReplayInto(want)(b)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	got := NewDataset()
	st2, err := OpenSegStore(dir, SegStoreOptions{}, ReplayInto(got))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got.MultisetDigest() != want.MultisetDigest() || got.Len() != want.Len() {
		t.Fatalf("replayed dataset %d events %s, want %d events %s",
			got.Len(), got.MultisetDigest(), want.Len(), want.MultisetDigest())
	}
	marks := st2.Marks()
	if marks[3] != 4 || marks[9] != 4 {
		t.Fatalf("replayed marks = %v, want seq 4 for devices 3 and 9", marks)
	}
	for _, info := range st2.Segments() {
		if !info.Sealed && info.Frames > 0 {
			t.Errorf("segment %d holds replayed frames but is not sealed after a clean close", info.ID)
		}
	}
}

// TestSegStoreSealsAndIndexes drives the store over a tiny segment size
// so it rolls files, and checks the (device, seq range) index.
func TestSegStoreSealsAndIndexes(t *testing.T) {
	st, err := OpenSegStore(t.TempDir(), SegStoreOptions{SegmentSize: 1024}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	batches := storeBatches(7, 10, 8)
	for _, b := range batches {
		if err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	infos := st.Segments()
	if len(infos) < 2 {
		t.Fatalf("expected multiple segments past the 1KiB threshold, got %d", len(infos))
	}
	frames, events, sealed := 0, 0, 0
	var lastMax uint64
	for i, info := range infos {
		if info.ID != uint64(i+1) {
			t.Errorf("segment id %d at index %d, want %d", info.ID, i, i+1)
		}
		if info.Sealed {
			sealed++
		}
		frames += info.Frames
		events += info.Events
		for _, dr := range info.Devices {
			if dr.Device != 7 {
				t.Errorf("unexpected device %d in index", dr.Device)
			}
			if dr.MinSeq <= lastMax && info.Frames > 0 {
				t.Errorf("segment %d seq range [%d,%d] overlaps previous max %d",
					info.ID, dr.MinSeq, dr.MaxSeq, lastMax)
			}
			lastMax = dr.MaxSeq
		}
	}
	if frames != len(batches) || events != 10*8 {
		t.Fatalf("index sums: %d frames %d events, want %d and %d", frames, events, len(batches), 80)
	}
	if sealed == 0 {
		t.Fatal("no segment was sealed")
	}
}

// TestSegStoreTornTailTruncated simulates a crash mid-write: the final
// frame of the unsealed tail is cut short on disk. Reopen must truncate
// it away, keep everything before it, and leave the marks at the last
// intact frame — the torn batch was never acked, so its retry restores
// it.
func TestSegStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSegStore(dir, SegStoreOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range storeBatches(5, 3, 4) {
		if err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	st.Kill() // crash: no seal, no final checkpoint

	path := filepath.Join(dir, segFileName(1))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	got := NewDataset()
	st2, err := OpenSegStore(dir, SegStoreOptions{}, ReplayInto(got))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2*4 {
		t.Fatalf("replayed %d events after torn tail, want 8 (two intact frames)", got.Len())
	}
	if st2.TruncatedBytes() == 0 {
		t.Fatal("torn tail was not truncated")
	}
	if m := st2.Marks()[5]; m != 2 {
		t.Fatalf("mark = %d after torn seq-3 frame, want 2", m)
	}
	// The retry lands cleanly on the truncated tail.
	retry := storeBatches(5, 3, 4)[2]
	if err := st2.Append(retry); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	final := NewDataset()
	st3, err := OpenSegStore(dir, SegStoreOptions{}, ReplayInto(final))
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if final.Len() != 3*4 || st3.Marks()[5] != 3 {
		t.Fatalf("after retry: %d events, mark %d; want 12 and 3", final.Len(), st3.Marks()[5])
	}
}

// TestSegStoreKillLeavesStaleCheckpoint kills the store before the
// checkpoint cadence fires: the on-disk checkpoint still holds no marks,
// and reopen must rebuild them from the frames alone — the checkpoint is
// an accelerator, never the source of truth.
func TestSegStoreKillLeavesStaleCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSegStore(dir, SegStoreOptions{Checkpoint: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range storeBatches(11, 5, 2) {
		if err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	st.Kill()

	raw, err := os.ReadFile(filepath.Join(dir, checkpointName))
	if err != nil {
		t.Fatal(err)
	}
	var cp checkpointFile
	if err := json.Unmarshal(raw, &cp); err != nil {
		t.Fatal(err)
	}
	if len(cp.Marks) != 0 {
		t.Fatalf("checkpoint written after Kill carries marks %v — Kill must not checkpoint", cp.Marks)
	}
	st2, err := OpenSegStore(dir, SegStoreOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if m := st2.Marks()[11]; m != 5 {
		t.Fatalf("frame-derived mark = %d, want 5 despite the stale checkpoint", m)
	}
}

// TestSegStoreCheckpointMarksMerge plants a checkpoint whose mark runs
// ahead of the frames (as if segments had been pruned) and asserts the
// reopen takes the max — the dedup gate can only be caught up by a
// checkpoint, never regressed.
func TestSegStoreCheckpointMarksMerge(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSegStore(dir, SegStoreOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range storeBatches(2, 2, 3) {
		if err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	cp := checkpointFile{ActiveSegment: 1, Marks: map[uint64]uint64{2: 9, 4: 6}}
	raw, _ := json.Marshal(&cp)
	if err := os.WriteFile(filepath.Join(dir, checkpointName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenSegStore(dir, SegStoreOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	marks := st2.Marks()
	if marks[2] != 9 || marks[4] != 6 {
		t.Fatalf("merged marks = %v, want device 2 at 9 and device 4 at 6", marks)
	}
}

// TestSegStoreReadSegmentSealedOnly: the active segment is not readable
// (it is still being appended to); sealed ones stream their batches in
// append order.
func TestSegStoreReadSegmentSealedOnly(t *testing.T) {
	st, err := OpenSegStore(t.TempDir(), SegStoreOptions{SegmentSize: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, b := range storeBatches(1, 6, 6) {
		if err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	infos := st.Segments()
	active := infos[len(infos)-1]
	if active.Sealed {
		t.Fatal("tail segment unexpectedly sealed")
	}
	if err := st.ReadSegment(active.ID, func(*Batch) error { return nil }); err == nil {
		t.Fatal("ReadSegment on the active segment must fail")
	}
	var lastSeq uint64
	frames := 0
	if err := st.ReadSegment(infos[0].ID, func(b *Batch) error {
		if b.Seq <= lastSeq {
			t.Errorf("segment read out of append order: seq %d after %d", b.Seq, lastSeq)
		}
		lastSeq = b.Seq
		frames++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if frames != infos[0].Frames {
		t.Fatalf("read %d frames, index says %d", frames, infos[0].Frames)
	}
}

// TestSegStoreReadOnlyAdopt opens a killed collector's directory in
// read-only mode: the replayed marks match what the dead store held,
// every segment — including the former active tail — is sealed and
// readable, and writes are refused.
func TestSegStoreReadOnlyAdopt(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSegStore(dir, SegStoreOptions{SegmentSize: 512, Checkpoint: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := NewDataset()
	for _, dev := range []uint64{5, 9} {
		for _, b := range storeBatches(dev, 4, 6) {
			want.Append(b.Events...)
			if err := st.Append(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	liveSegs := len(st.Segments())
	st.Kill()

	ro, err := OpenSegStore(dir, SegStoreOptions{ReadOnly: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if marks := ro.Marks(); marks[5] != 4 || marks[9] != 4 {
		t.Fatalf("adopted marks = %v, want devices 5 and 9 at seq 4", marks)
	}
	infos := ro.Segments()
	if len(infos) != liveSegs {
		t.Fatalf("adopted store indexes %d segments, dead store had %d", len(infos), liveSegs)
	}
	got := NewDataset()
	for _, info := range infos {
		if !info.Sealed {
			t.Fatalf("adopted segment %d not sealed", info.ID)
		}
		if err := ro.ReadSegment(info.ID, func(b *Batch) error {
			got.Append(b.Events...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got.Len() != want.Len() || got.MultisetDigest() != want.MultisetDigest() {
		t.Fatalf("adopted replay: %d events digest %s, wrote %d digest %s",
			got.Len(), got.MultisetDigest(), want.Len(), want.MultisetDigest())
	}
	if err := ro.Append(storeBatches(5, 1, 1)[0]); !errors.Is(err, errSegStoreReadOnly) {
		t.Fatalf("Append on read-only store = %v, want errSegStoreReadOnly", err)
	}
	if err := ro.Checkpoint(); !errors.Is(err, errSegStoreReadOnly) {
		t.Fatalf("Checkpoint on read-only store = %v, want errSegStoreReadOnly", err)
	}
}
