package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
)

// spillWAL is the uploader's on-disk overflow buffer: a single append-only
// file of WriteBatch frames consumed front-to-back. Batches are appended
// in sequence order and only ever read back in that order, so the WAL
// preserves the uploader's seq invariant (every frame's Seq exceeds the
// previous frame's). A frame is not consumed until the collector has
// acknowledged it, so a crash or failed flush re-reads it — at-least-once,
// with collector-side dedup absorbing the re-send.
type spillWAL struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	readOff  int64
	writeOff int64
	batches  int
	events   int64
}

func openSpillWAL(path string) (*spillWAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace: open spill WAL: %w", err)
	}
	return &spillWAL{f: f, path: path}, nil
}

// offsetWriter adapts WriteAt to io.Writer so WriteBatch can append at a
// stable offset without seeking the shared file descriptor.
type offsetWriter struct {
	f   *os.File
	off int64
}

func (o *offsetWriter) Write(p []byte) (int, error) {
	n, err := o.f.WriteAt(p, o.off)
	o.off += int64(n)
	return n, err
}

// append writes one batch frame at the tail, in the v3 codec: the WAL is
// private to one uploader process (truncated on open), so its format can
// track the fastest dialect regardless of what the wire speaks.
func (w *spillWAL) append(b *Batch) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := WriteBatchV3(&offsetWriter{f: w.f, off: w.writeOff}, b)
	if err != nil {
		return fmt.Errorf("trace: spill batch: %w", err)
	}
	w.writeOff += int64(n)
	w.batches++
	w.events += int64(len(b.Events))
	return nil
}

// peek decodes the oldest unconsumed frame without consuming it. It
// returns (nil, 0, nil) when the WAL is empty.
func (w *spillWAL) peek() (*Batch, int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.batches == 0 {
		return nil, 0, nil
	}
	sec := io.NewSectionReader(w.f, w.readOff, w.writeOff-w.readOff)
	b, wire, _, err := ReadBatchAny(bufio.NewReader(sec))
	if err != nil {
		return nil, 0, err
	}
	return b, wire, nil
}

// advance consumes the frame peek returned, after it was acknowledged.
// Once the WAL drains, the file is truncated so disk use stays bounded by
// the backlog, not the lifetime total.
func (w *spillWAL) advance(wire, events int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.readOff += int64(wire)
	w.batches--
	w.events -= int64(events)
	if w.batches == 0 {
		w.f.Truncate(0)
		w.readOff, w.writeOff = 0, 0
	}
}

func (w *spillWAL) batchCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.batches
}

func (w *spillWAL) pendingEvents() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.events
}

// close closes and removes the WAL file; its contents are only meaningful
// to the uploader instance that wrote them.
func (w *spillWAL) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.f.Close()
	os.Remove(w.path)
	return err
}
