// Package anneal implements the simulated annealing search the paper uses
// (§4.2, citing Otten & van Ginneken) to find the probation triple
// (Pro0, Pro1, Pro2) minimizing the expected Data_Stall recovery time.
// The minimizer is generic over box-constrained continuous objectives.
package anneal

import (
	"math"

	"repro/internal/rng"
)

// Config tunes the annealing schedule.
type Config struct {
	// Iterations is the total number of candidate moves (default 20000).
	Iterations int
	// InitialTemp is the starting temperature, in objective units
	// (default: 10% of the initial objective value).
	InitialTemp float64
	// Cooling is the per-iteration geometric cooling factor (default
	// chosen so the temperature decays to 1e-4 of initial by the end).
	Cooling float64
	// StepFrac is the neighbourhood size as a fraction of each
	// dimension's range, shrinking with temperature (default 0.25).
	StepFrac float64
	// Restarts re-runs the search from fresh random points, keeping the
	// best (default 3).
	Restarts int
}

func (c Config) withDefaults(initialObjective float64) Config {
	if c.Iterations <= 0 {
		c.Iterations = 20000
	}
	if c.InitialTemp <= 0 {
		c.InitialTemp = math.Abs(initialObjective) * 0.1
		if c.InitialTemp == 0 {
			c.InitialTemp = 1
		}
	}
	if c.Cooling <= 0 || c.Cooling >= 1 {
		c.Cooling = math.Pow(1e-4, 1/float64(c.Iterations))
	}
	if c.StepFrac <= 0 {
		c.StepFrac = 0.25
	}
	if c.Restarts <= 0 {
		c.Restarts = 3
	}
	return c
}

// Minimize searches for the minimum of f over the box [lo[i], hi[i]].
// It returns the best point found and its objective value. f must be
// defined everywhere in the box. The search is deterministic for a given
// source.
func Minimize(r *rng.Source, lo, hi []float64, f func([]float64) float64, cfg Config) ([]float64, float64) {
	if len(lo) != len(hi) || len(lo) == 0 {
		panic("anneal: bad bounds")
	}
	dim := len(lo)
	for i := range lo {
		if hi[i] < lo[i] {
			panic("anneal: hi < lo")
		}
	}

	randomPoint := func() []float64 {
		x := make([]float64, dim)
		for i := range x {
			x[i] = r.Uniform(lo[i], hi[i])
		}
		return x
	}

	globalBest := randomPoint()
	globalBestV := f(globalBest)
	cfg = cfg.withDefaults(globalBestV)

	for restart := 0; restart < cfg.Restarts; restart++ {
		cur := randomPoint()
		if restart == 0 {
			copy(cur, globalBest)
		}
		curV := f(cur)
		best := append([]float64(nil), cur...)
		bestV := curV
		temp := cfg.InitialTemp

		cand := make([]float64, dim)
		for it := 0; it < cfg.Iterations; it++ {
			// Neighbour: perturb one random dimension, step size shrinking
			// with temperature.
			copy(cand, cur)
			i := r.Intn(dim)
			scale := cfg.StepFrac * (hi[i] - lo[i]) * math.Max(temp/cfg.InitialTemp, 0.02)
			cand[i] = clamp(cand[i]+r.Normal(0, scale), lo[i], hi[i])

			v := f(cand)
			if accept(r, curV, v, temp) {
				copy(cur, cand)
				curV = v
				if v < bestV {
					copy(best, cand)
					bestV = v
				}
			}
			temp *= cfg.Cooling
		}
		if bestV < globalBestV {
			globalBest, globalBestV = best, bestV
		}
	}
	return globalBest, globalBestV
}

func accept(r *rng.Source, cur, cand, temp float64) bool {
	if cand <= cur {
		return true
	}
	if temp <= 0 {
		return false
	}
	return r.Bool(math.Exp((cur - cand) / temp))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
