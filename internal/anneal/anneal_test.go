package anneal

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMinimizeQuadratic1D(t *testing.T) {
	r := rng.New(1)
	f := func(x []float64) float64 { return (x[0] - 3) * (x[0] - 3) }
	x, v := Minimize(r, []float64{-10}, []float64{10}, f, Config{})
	if math.Abs(x[0]-3) > 0.1 || v > 0.01 {
		t.Errorf("minimum at %v (f=%v), want x=3", x, v)
	}
}

func TestMinimizeQuadratic3D(t *testing.T) {
	r := rng.New(2)
	target := []float64{21, 6, 16}
	f := func(x []float64) float64 {
		s := 0.0
		for i := range x {
			d := x[i] - target[i]
			s += d * d
		}
		return s
	}
	lo := []float64{0, 0, 0}
	hi := []float64{60, 60, 60}
	x, _ := Minimize(r, lo, hi, f, Config{})
	for i := range x {
		if math.Abs(x[i]-target[i]) > 0.5 {
			t.Errorf("dim %d: %v, want %v", i, x[i], target[i])
		}
	}
}

func TestMinimizeMultimodal(t *testing.T) {
	// Rastrigin-like 2D function: global minimum at (0,0), many local ones.
	r := rng.New(3)
	f := func(x []float64) float64 {
		s := 20.0
		for _, v := range x {
			s += v*v - 10*math.Cos(2*math.Pi*v)
		}
		return s
	}
	x, v := Minimize(r, []float64{-5.12, -5.12}, []float64{5.12, 5.12}, f, Config{Iterations: 60000, Restarts: 5})
	if v > 1.5 {
		t.Errorf("failed to approach global minimum: x=%v f=%v", x, v)
	}
}

func TestMinimizeRespectsBounds(t *testing.T) {
	r := rng.New(4)
	// Minimum outside the box: must clamp to the boundary.
	f := func(x []float64) float64 { return (x[0] - 100) * (x[0] - 100) }
	x, _ := Minimize(r, []float64{0}, []float64{10}, f, Config{})
	if x[0] < 0 || x[0] > 10 {
		t.Fatalf("point %v escaped the box", x)
	}
	if math.Abs(x[0]-10) > 0.2 {
		t.Errorf("boundary minimum at %v, want ≈10", x[0])
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	f := func(x []float64) float64 { return math.Sin(x[0]) + x[0]*x[0]/50 }
	a, av := Minimize(rng.New(7), []float64{-10}, []float64{10}, f, Config{})
	b, bv := Minimize(rng.New(7), []float64{-10}, []float64{10}, f, Config{})
	if a[0] != b[0] || av != bv {
		t.Errorf("non-deterministic: %v/%v vs %v/%v", a, av, b, bv)
	}
}

func TestMinimizeDegenerateBox(t *testing.T) {
	r := rng.New(5)
	f := func(x []float64) float64 { return x[0] }
	x, v := Minimize(r, []float64{5}, []float64{5}, f, Config{Iterations: 100})
	if x[0] != 5 || v != 5 {
		t.Errorf("degenerate box: %v, %v", x, v)
	}
}

func TestMinimizeBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("hi < lo did not panic")
		}
	}()
	Minimize(rng.New(6), []float64{1}, []float64{0}, func([]float64) float64 { return 0 }, Config{})
}

func TestMinimizeEmptyBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty bounds did not panic")
		}
	}()
	Minimize(rng.New(6), nil, nil, func([]float64) float64 { return 0 }, Config{})
}

func TestZeroObjectiveDefaults(t *testing.T) {
	r := rng.New(8)
	f := func(x []float64) float64 { return 0 }
	_, v := Minimize(r, []float64{0}, []float64{1}, f, Config{Iterations: 50})
	if v != 0 {
		t.Errorf("flat objective value %v", v)
	}
}
